// Karlin-Altschul statistics: the computed ungapped parameters must hit the
// published NCBI values, and the derived bit scores / E-values must behave.
#include <gtest/gtest.h>

#include <cmath>

#include "valign/stats/karlin.hpp"

namespace valign::stats {
namespace {

TEST(Karlin, Blosum62UngappedMatchesPublishedValues) {
  // NCBI BLAST's published ungapped parameters for BLOSUM62:
  // lambda = 0.3176, K = 0.134, H = 0.4012.
  const KarlinParams p = ungapped_params(ScoreMatrix::blosum62());
  EXPECT_NEAR(p.lambda, 0.3176, 0.0005);
  EXPECT_NEAR(p.k, 0.134, 0.002);
  EXPECT_NEAR(p.h, 0.4012, 0.002);
  EXPECT_FALSE(p.gapped);
}

TEST(Karlin, Blosum45UngappedMatchesPublishedValues) {
  // Published: lambda = 0.2291, K = 0.0924, H = 0.2514.
  const KarlinParams p = ungapped_params(ScoreMatrix::blosum45());
  EXPECT_NEAR(p.lambda, 0.2291, 0.0005);
  EXPECT_NEAR(p.k, 0.0924, 0.002);
  EXPECT_NEAR(p.h, 0.2514, 0.002);
}

TEST(Karlin, BlastnDnaParameters) {
  // blastn's +1/-2 scoring: lambda = 1.33, K = 0.621.
  const KarlinParams p = ungapped_params(ScoreMatrix::dna(1, 2));
  EXPECT_NEAR(p.lambda, 1.33, 0.01);
  EXPECT_NEAR(p.k, 0.621, 0.005);
}

TEST(Karlin, LambdaSatisfiesDefiningEquation) {
  const ScoreMatrix& m = ScoreMatrix::blosum80();
  const auto freqs = robinson_frequencies();
  const double lambda = ungapped_lambda(m, freqs);
  double sum = 0.0, total = 0.0;
  for (int a = 0; a < 20; ++a) {
    for (int b = 0; b < 20; ++b) {
      const double p = freqs[static_cast<std::size_t>(a)] *
                       freqs[static_cast<std::size_t>(b)];
      sum += p * std::exp(lambda * m.score(a, b));
      total += p;
    }
  }
  EXPECT_NEAR(sum / total, 1.0, 1e-9);
}

TEST(Karlin, StricterMatricesHaveHigherEntropy) {
  // BLOSUM90 targets close homologs: more information per aligned pair.
  const double h45 = ungapped_params(ScoreMatrix::blosum45()).h;
  const double h62 = ungapped_params(ScoreMatrix::blosum62()).h;
  const double h90 = ungapped_params(ScoreMatrix::blosum90()).h;
  EXPECT_LT(h45, h62);
  EXPECT_LT(h62, h90);
}

TEST(Karlin, LookupUsesPublishedGappedForDefaultScheme) {
  const KarlinParams p = lookup_params(ScoreMatrix::blosum62(), GapPenalty{11, 1});
  EXPECT_TRUE(p.gapped);
  EXPECT_NEAR(p.lambda, 0.267, 1e-9);
  EXPECT_NEAR(p.k, 0.041, 1e-9);
  // A different scheme falls back to the computed ungapped parameters.
  const KarlinParams q = lookup_params(ScoreMatrix::blosum62(), GapPenalty{9, 2});
  EXPECT_FALSE(q.gapped);
  EXPECT_NEAR(q.lambda, 0.3176, 0.0005);
}

TEST(Karlin, BitScoreAndEvalueRelations) {
  const KarlinParams p = lookup_params(ScoreMatrix::blosum62(), GapPenalty{11, 1});
  // Bit score is affine in the raw score with positive slope.
  EXPECT_GT(bit_score(p, 100), bit_score(p, 50));
  const double slope =
      (bit_score(p, 101) - bit_score(p, 100));
  EXPECT_NEAR(slope, p.lambda / std::log(2.0), 1e-12);
  // E-value decreases with score and grows with the search space.
  EXPECT_LT(evalue(p, 100, 300, 1000000), evalue(p, 50, 300, 1000000));
  EXPECT_LT(evalue(p, 100, 300, 1000000), evalue(p, 100, 300, 100000000));
  // E = m * n * 2^{-S'} by definition.
  const double e = evalue(p, 80, 250, 5000000);
  EXPECT_NEAR(e, 250.0 * 5000000.0 * std::exp2(-bit_score(p, 80)), e * 1e-12);
}

TEST(Karlin, RejectsNonNegativeExpectedScore) {
  // A match-heavy "matrix" whose expected score is positive has no Gumbel
  // regime: lambda is undefined.
  std::vector<std::int8_t> scores(25, 1);  // 5x5 all +1
  const ScoreMatrix all_match("allmatch", Alphabet("ABCDE", 0), std::move(scores),
                              GapPenalty{1, 1});
  EXPECT_THROW((void)ungapped_lambda(all_match, dna_frequencies()), Error);
}

TEST(Karlin, FrequenciesAreNormalized) {
  double sum = 0.0;
  for (const double f : robinson_frequencies()) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-3);
  sum = 0.0;
  for (const double f : dna_frequencies()) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace valign::stats
