// BenchReport (valign.bench_report/1) serializer + parser tests: lossless
// round-trip, strictness on malformed documents, and tolerance of added keys
// within the major schema version.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "valign/common.hpp"
#include "valign/obs/bench_report.hpp"

namespace valign {
namespace {

obs::BenchReport sample_bench_report() {
  obs::BenchReport r;
  r.command = "bench_runtime";
  r.provenance.tool_version = "1.0.0";
  r.provenance.isa = "avx2";
  r.provenance.cpu_model = "Some CPU @ 2.10GHz";
  r.provenance.hostname = "hosty";
  r.provenance.timestamp_utc = "2026-08-07T10:00:00Z";
  r.provenance.git_describe = "abc1234-dirty";
  r.provenance.compiler = "gcc 12.2.0";
  r.provenance.threads = 8;
  r.provenance.bench_scale = 0.25;
  r.hw_reason = "hardware counters not supported on this machine (no PMU; VM?)";

  obs::BenchScenario a;
  a.name = "search.pair_sched";
  a.reps = 3;
  a.sec_min = 0.011;
  a.sec_median = 0.0125;
  a.sec_max = 0.019;
  a.cells = 73233612;
  a.gcups_median = 5.8586;
  r.scenarios.push_back(a);

  obs::BenchScenario b;
  b.name = "weird \"name\", with, commas\n";
  b.reps = 1;
  b.sec_median = 2.5;
  b.hw_available = true;
  b.hw.cycles = 1000;
  b.hw.instructions = 2500;
  b.hw.branch_misses = 3;
  b.hw.l1d_misses = 40;
  b.hw.llc_misses = 5;
  b.hw.ns_enabled = 100;
  b.hw.ns_running = 50;
  r.scenarios.push_back(b);
  return r;
}

TEST(BenchReport, JsonRoundTripIsLossless) {
  const obs::BenchReport r = sample_bench_report();
  const obs::BenchReport p = obs::BenchReport::from_json(r.json());

  EXPECT_EQ(p.schema, obs::kBenchReportSchema);
  EXPECT_EQ(p.command, r.command);
  EXPECT_EQ(p.provenance.tool_version, r.provenance.tool_version);
  EXPECT_EQ(p.provenance.isa, r.provenance.isa);
  EXPECT_EQ(p.provenance.cpu_model, r.provenance.cpu_model);
  EXPECT_EQ(p.provenance.hostname, r.provenance.hostname);
  EXPECT_EQ(p.provenance.timestamp_utc, r.provenance.timestamp_utc);
  EXPECT_EQ(p.provenance.git_describe, r.provenance.git_describe);
  EXPECT_EQ(p.provenance.compiler, r.provenance.compiler);
  EXPECT_EQ(p.provenance.threads, 8);
  EXPECT_DOUBLE_EQ(p.provenance.bench_scale, 0.25);
  EXPECT_EQ(p.hw_reason, r.hw_reason);

  ASSERT_EQ(p.scenarios.size(), 2u);
  const obs::BenchScenario* a = p.find("search.pair_sched");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->reps, 3);
  EXPECT_DOUBLE_EQ(a->sec_min, 0.011);
  EXPECT_DOUBLE_EQ(a->sec_median, 0.0125);
  EXPECT_DOUBLE_EQ(a->sec_max, 0.019);
  EXPECT_EQ(a->cells, 73233612u);
  EXPECT_DOUBLE_EQ(a->gcups_median, 5.8586);
  EXPECT_FALSE(a->hw_available);

  const obs::BenchScenario* b = p.find("weird \"name\", with, commas\n");
  ASSERT_NE(b, nullptr) << "escaped names must survive the round trip";
  EXPECT_TRUE(b->hw_available);
  EXPECT_EQ(b->hw.cycles, 1000u);
  EXPECT_EQ(b->hw.instructions, 2500u);
  EXPECT_EQ(b->hw.branch_misses, 3u);
  EXPECT_EQ(b->hw.l1d_misses, 40u);
  EXPECT_EQ(b->hw.llc_misses, 5u);
  EXPECT_EQ(b->hw.ns_enabled, 100u);
  EXPECT_EQ(b->hw.ns_running, 50u);

  // Serialization is deterministic: same report, same bytes.
  EXPECT_EQ(r.json(), r.json());
  EXPECT_EQ(p.json(), r.json()) << "parse+reserialize must be a fixed point";
}

TEST(BenchReport, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/valign_bench_rt.json";
  sample_bench_report().write_file(path);
  const obs::BenchReport p = obs::BenchReport::read_file(path);
  EXPECT_EQ(p.scenarios.size(), 2u);
  std::remove(path.c_str());

  EXPECT_THROW(sample_bench_report().write_file("/nonexistent-dir/x.json"),
               Error);
  EXPECT_THROW((void)obs::BenchReport::read_file("/nonexistent-dir/x.json"),
               Error);
}

TEST(BenchReport, RejectsMalformedDocuments) {
  EXPECT_THROW((void)obs::BenchReport::from_json(""), Error);
  EXPECT_THROW((void)obs::BenchReport::from_json("{"), Error);
  EXPECT_THROW((void)obs::BenchReport::from_json("[]"), Error);
  EXPECT_THROW((void)obs::BenchReport::from_json("{\"a\":1}{}"), Error)
      << "trailing garbage";
  EXPECT_THROW((void)obs::BenchReport::from_json(
                   R"({"schema":"valign.bench_report/1","scenarios":[{}]})"),
               Error)
      << "scenario without a name";
  EXPECT_THROW((void)obs::BenchReport::from_json(
                   R"({"schema":"valign.bench_report/1"})"),
               Error)
      << "missing scenarios array";
}

TEST(BenchReport, RejectsForeignSchemas) {
  EXPECT_THROW((void)obs::BenchReport::from_json(R"({"scenarios":[]})"), Error);
  EXPECT_THROW((void)obs::BenchReport::from_json(
                   R"({"schema":"valign.run_report/1","scenarios":[]})"),
               Error);
  EXPECT_THROW((void)obs::BenchReport::from_json(
                   R"({"schema":"valign.bench_report/2","scenarios":[]})"),
               Error)
      << "a future major version must be rejected, not misread";
  EXPECT_THROW((void)obs::BenchReport::from_json(
                   R"({"schema":"valign.bench_report/12","scenarios":[]})"),
               Error)
      << "major 12 is not minor evolution of major 1";
}

TEST(BenchReport, ToleratesAddedKeysWithinMajorVersion) {
  // A v1.x producer may add fields anywhere; a v1 consumer must ignore them.
  const std::string doc = R"({
    "schema": "valign.bench_report/1.3",
    "command": "bench_runtime",
    "new_top_level_section": {"nested": [1, 2, {"deep": true}]},
    "provenance": {"isa": "avx512", "future_field": null},
    "scenarios": [
      {"name": "s1", "reps": 2, "sec_median": 1.5,
       "future_metric": 9.9, "hw": {"available": false, "why": "x"}}
    ]
  })";
  const obs::BenchReport p = obs::BenchReport::from_json(doc);
  EXPECT_EQ(p.provenance.isa, "avx512");
  ASSERT_EQ(p.scenarios.size(), 1u);
  EXPECT_EQ(p.scenarios[0].reps, 2);
  EXPECT_DOUBLE_EQ(p.scenarios[0].sec_median, 1.5);
  EXPECT_FALSE(p.scenarios[0].hw_available);
}

}  // namespace
}  // namespace valign
