// Hardware counter module tests. The tier-1 suite must pass on hosts with
// and without a usable PMU, so everything that needs real counters is gated
// on perf_available(); the degradation contract (probe reason, no-op scopes)
// is asserted unconditionally.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "valign/obs/perf.hpp"
#include "valign/obs/trace.hpp"

namespace valign {
namespace {

volatile std::uint64_t g_spin_sink = 0;

void spin_some_work() {
  std::uint64_t x = 1;
  for (int i = 0; i < 2'000'000; ++i) x = x * 6364136223846793005ULL + 1;
  g_spin_sink = x;
}

// --- HwCounts arithmetic -----------------------------------------------------

TEST(HwCounts, AccumulateAndSaturatingDelta) {
  obs::HwCounts a;
  a.cycles = 100;
  a.instructions = 250;
  a.l1d_misses = 7;
  obs::HwCounts b;
  b.cycles = 50;
  b.instructions = 25;
  b.ns_enabled = 10;

  obs::HwCounts sum = a;
  sum += b;
  EXPECT_EQ(sum.cycles, 150u);
  EXPECT_EQ(sum.instructions, 275u);
  EXPECT_EQ(sum.l1d_misses, 7u);
  EXPECT_EQ(sum.ns_enabled, 10u);

  const obs::HwCounts delta = a - b;
  EXPECT_EQ(delta.cycles, 50u);
  EXPECT_EQ(delta.instructions, 225u);

  // Counters are monotonic in normal operation, but a multiplex rescale can
  // make a later reading smaller; deltas must clamp, not wrap.
  const obs::HwCounts neg = b - a;
  EXPECT_EQ(neg.cycles, 0u);
  EXPECT_EQ(neg.instructions, 0u);
  EXPECT_EQ(neg.ns_enabled, 10u);
}

TEST(HwCounts, IpcAndAny) {
  obs::HwCounts c;
  EXPECT_EQ(c.ipc(), 0.0);
  EXPECT_FALSE(c.any());
  c.cycles = 200;
  c.instructions = 500;
  EXPECT_DOUBLE_EQ(c.ipc(), 2.5);
  EXPECT_TRUE(c.any());
}

// --- probe / degradation -----------------------------------------------------

TEST(PerfProbe, IsCachedAndExplainsUnavailability) {
  const obs::PerfProbe& p1 = obs::perf_probe();
  const obs::PerfProbe& p2 = obs::perf_probe();
  EXPECT_EQ(&p1, &p2) << "probe must run once and cache";
  if (!p1.available) {
    EXPECT_FALSE(p1.reason.empty())
        << "an unavailable PMU must come with a human-readable reason";
  } else {
    EXPECT_TRUE(p1.reason.empty());
  }
}

TEST(PerfProbe, ReadThreadCountersMatchesProbe) {
  obs::HwCounts c;
  EXPECT_EQ(obs::read_thread_counters(c), obs::perf_available());
  if (obs::perf_available()) {
    spin_some_work();
    obs::HwCounts later;
    ASSERT_TRUE(obs::read_thread_counters(later));
    const obs::HwCounts delta = later - c;
    EXPECT_GT(delta.instructions, 0u) << "2M multiplies must retire instructions";
  }
}

// --- HwTable -----------------------------------------------------------------

TEST(HwTable, RecordSnapshotReset) {
  obs::HwTable table;
  obs::HwCounts d;
  d.cycles = 5;
  d.llc_misses = 2;
  table.record(0, d);
  table.record(0, d);
  table.record(obs::kHwRunSlot, d);

  EXPECT_EQ(table.stats(0).cycles, 10u);
  EXPECT_EQ(table.stats(0).llc_misses, 4u);
  EXPECT_EQ(table.stats(1).cycles, 0u);
  const auto snap = table.snapshot();
  EXPECT_EQ(snap[obs::kHwRunSlot].cycles, 5u);

  table.reset();
  EXPECT_FALSE(table.stats(0).any());
  EXPECT_FALSE(table.stats(obs::kHwRunSlot).any());
}

TEST(HwTable, OutOfRangeSlotsAreIgnored) {
  obs::HwTable table;
  obs::HwCounts d;
  d.cycles = 1;
  table.record(-1, d);
  table.record(obs::kHwSlotCount, d);
  for (int s = 0; s < obs::kHwSlotCount; ++s) {
    EXPECT_FALSE(table.stats(s).any());
  }
}

TEST(HwTable, ConcurrentRecordsDoNotLoseCounts) {
  obs::HwTable table;
  constexpr int kThreads = 4;
  constexpr int kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&table] {
      obs::HwCounts d;
      d.instructions = 3;
      for (int i = 0; i < kPer; ++i) table.record(2, d);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(table.stats(2).instructions,
            static_cast<std::uint64_t>(kThreads) * kPer * 3);
}

// --- PerfScope gating --------------------------------------------------------

TEST(PerfScope, DisabledScopeRecordsNothing) {
  obs::set_perf_enabled(false);
  obs::HwTable table;
  {
    obs::PerfScope s(0, table);
    EXPECT_FALSE(s.active());
    spin_some_work();
  }
  EXPECT_FALSE(table.stats(0).any());
}

TEST(PerfScope, EnabledScopeFollowsAvailability) {
  obs::set_perf_enabled(true);
  obs::HwTable table;
  {
    obs::PerfScope s(1, table);
    EXPECT_EQ(s.active(), obs::perf_available());
    spin_some_work();
    s.stop();
    s.stop();  // idempotent
    EXPECT_FALSE(s.active());
  }
  obs::set_perf_enabled(false);
  if (obs::perf_available()) {
    EXPECT_GT(table.stats(1).instructions, 0u);
  } else {
    EXPECT_FALSE(table.stats(1).any()) << "no PMU: scopes must stay silent";
  }
}

TEST(PerfScope, StageSpanCarriesCountersIntoMatchingSlot) {
  // StageSpan owns a PerfScope aimed at the stage's slot in the global
  // HwTable; with counters enabled and a real PMU, a span leaves a non-zero
  // per-stage sum behind.
  obs::HwTable::global().reset();
  obs::set_perf_enabled(true);
  {
    const obs::StageSpan span(obs::Stage::Align);
    spin_some_work();
  }
  obs::set_perf_enabled(false);
  const obs::HwCounts aligned =
      obs::HwTable::global().stats(static_cast<int>(obs::Stage::Align));
  if (obs::perf_available()) {
    EXPECT_GT(aligned.instructions, 0u);
  } else {
    EXPECT_FALSE(aligned.any());
  }
  obs::HwTable::global().reset();
}

}  // namespace
}  // namespace valign
