// Observability layer unit tests: metrics registry semantics, stage/trace
// spans, PassHist bucketing, and the RunReport serializers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "valign/common.hpp"
#include "valign/obs/metrics.hpp"
#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"

namespace valign {
namespace {

// --- PassHist ----------------------------------------------------------------

TEST(PassHist, BucketsExactCountsWithOverflowTail) {
  PassHist h;
  h.record(0);
  h.record(0);
  h.record(3);
  h.record(7);
  h.record(8);
  h.record(200);  // far past the last bucket
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.counts[7], 1u);
  EXPECT_EQ(h.counts[8], 2u) << "bucket 8 is '8 or more'";
  EXPECT_EQ(h.total(), 6u);
  EXPECT_TRUE(h.any_nonzero());

  PassHist other;
  other.record(3);
  h += other;
  EXPECT_EQ(h.counts[3], 2u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(PassHist, MergesThroughAlignStats) {
  AlignStats a, b;
  a.lazyf_hist.record(1);
  b.lazyf_hist.record(1);
  b.hscan_hist.record(4);
  a += b;
  EXPECT_EQ(a.lazyf_hist.counts[1], 2u);
  EXPECT_EQ(a.hscan_hist.counts[4], 1u);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, CountersGaugesAndHistogramsRoundTrip) {
  obs::Registry reg;
  reg.counter("a.count").add(3);
  reg.counter("a.count").add(2);  // same object
  reg.gauge("a.depth").record_max(7);
  reg.gauge("a.depth").record_max(4);  // lower: ignored
  const std::uint64_t bounds[] = {10, 100};
  obs::Histogram& h = reg.histogram("a.lat", bounds);
  h.record(5);
  h.record(50);
  h.record(5000);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  // Sorted by name.
  EXPECT_EQ(snap.samples[0].name, "a.count");
  EXPECT_EQ(snap.samples[0].value, 5);
  EXPECT_EQ(snap.samples[1].name, "a.depth");
  EXPECT_EQ(snap.samples[1].value, 7);
  EXPECT_EQ(snap.samples[2].name, "a.lat");
  EXPECT_EQ(snap.samples[2].value, 3);  // total count
  ASSERT_EQ(snap.samples[2].bucket_counts.size(), 3u);
  EXPECT_EQ(snap.samples[2].bucket_counts[0], 1u);
  EXPECT_EQ(snap.samples[2].bucket_counts[1], 1u);
  EXPECT_EQ(snap.samples[2].bucket_counts[2], 1u);  // overflow bucket
  EXPECT_EQ(snap.samples[2].sum, 5055u);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), Error);
  const std::uint64_t bounds[] = {1};
  EXPECT_THROW((void)reg.histogram("x", bounds), Error);
}

TEST(Registry, HistogramRejectsNonIncreasingBounds) {
  obs::Registry reg;
  const std::uint64_t bad[] = {10, 10};
  EXPECT_THROW((void)reg.histogram("h", bad), Error);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("n");
  c.add(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(&reg.counter("n"), &c) << "reset must not reallocate metric slots";
}

TEST(Registry, ConcurrentUpdatesDoNotLoseCounts) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("hot");
  const std::uint64_t bounds[] = {8};
  obs::Histogram& h = reg.histogram("hist", bounds);
  constexpr int kThreads = 4;
  constexpr int kPer = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        c.add(1);
        h.record(static_cast<std::uint64_t>(i % 16));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(h.total_count(), static_cast<std::uint64_t>(kThreads * kPer));
}

// --- Tracing -----------------------------------------------------------------

TEST(Trace, StageSpanAggregatesIntoTable) {
  obs::StageTable table;
  {
    const obs::StageSpan s(obs::Stage::Align, table);
  }
  {
    obs::StageSpan s(obs::Stage::Align, table);
    s.stop();
    s.stop();  // idempotent
  }
  const obs::StageStats st = table.stats(obs::Stage::Align);
  EXPECT_EQ(st.spans, 2u);
  EXPECT_GE(st.ns_max, 0u);
  EXPECT_EQ(table.stats(obs::Stage::Parse).spans, 0u);
}

TEST(Trace, TraceSpanIsGatedOnEnableFlag) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("t.us", obs::block_latency_bounds_us());

  obs::set_trace_enabled(false);
  { const obs::TraceSpan s(h); }
  EXPECT_EQ(h.total_count(), 0u) << "disabled tracing must record nothing";

  obs::set_trace_enabled(true);
  { const obs::TraceSpan s(h); }
  obs::set_trace_enabled(false);
  EXPECT_EQ(h.total_count(), 1u);
}

// --- RunReport ---------------------------------------------------------------

obs::RunReport sample_report() {
  obs::RunReport rr;
  rr.command = "search";
  rr.align_class = "SW";
  rr.approach = "auto";
  rr.isa = "avx2";
  rr.matrix = "blosum62";
  rr.gap_open = 11;
  rr.gap_extend = 1;
  rr.threads = 2;
  rr.sched = "pair";
  rr.queries = 4;
  rr.subjects = 100;
  rr.alignments = 400;
  rr.cells_real = 123456;
  rr.seconds = 0.5;
  rr.gcups_real = 0.000246912;
  rr.width_counts = {390, 10, 0};
  rr.totals.cells = 130000;
  rr.totals.lazyf_hist.record(0);
  rr.totals.lazyf_hist.record(2);
  rr.cache_lookups = 420;
  rr.cache_hits = 400;
  return rr;
}

TEST(RunReport, JsonContainsSchemaAndSections) {
  const std::string j = sample_report().json();
  for (const char* needle :
       {"\"schema\":\"valign.run_report/1\"", "\"command\":\"search\"",
        "\"config\"", "\"workload\"", "\"perf\"", "\"widths\"", "\"engine\"",
        "\"engine_cache\"", "\"stages\"", "\"metrics\"", "\"lazyf_pass_hist\"",
        "\"hscan_step_hist\"", "\"gcups_real\"", "\"last_bucket_is_overflow\"",
        // Additive valign.run_report/1 sections (provenance + hardware
        // counters) — consumers tolerant of added keys must keep working.
        "\"provenance\"", "\"hostname\"", "\"timestamp_utc\"",
        "\"cpu_isa_level\"", "\"git_describe\"", "\"hw\"", "\"available\"",
        "\"reason\"", "\"cycles\"", "\"ipc\""}) {
    EXPECT_NE(j.find(needle), std::string::npos) << "missing " << needle;
  }
  // Balanced braces — cheap well-formedness proxy without a JSON parser.
  long depth = 0;
  for (const char ch : j) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RunReport, JsonEscapesControlAndQuoteCharacters) {
  obs::RunReport rr = sample_report();
  rr.matrix = "we\"ird\\mat\n\x01";
  const std::string j = rr.json();
  EXPECT_NE(j.find("we\\\"ird\\\\mat\\n\\u0001"), std::string::npos);
}

TEST(RunReport, CsvIsFlatKeyValue) {
  std::ostringstream out;
  sample_report().write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("key,value"), std::string::npos);
  EXPECT_NE(csv.find("workload.alignments,400"), std::string::npos);
  EXPECT_NE(csv.find("engine_cache.hits,400"), std::string::npos);
}

TEST(RunReport, WriteFilePicksFormatByExtension) {
  const std::string dir = ::testing::TempDir();
  const std::string jpath = dir + "/valign_rr.json";
  const std::string cpath = dir + "/valign_rr.csv";
  sample_report().write_file(jpath);
  sample_report().write_file(cpath);

  std::ifstream jf(jpath), cf(cpath);
  std::string jline, cline;
  ASSERT_TRUE(std::getline(jf, jline));
  ASSERT_TRUE(std::getline(cf, cline));
  EXPECT_EQ(jline.front(), '{');
  EXPECT_EQ(cline, "key,value");
  std::remove(jpath.c_str());
  std::remove(cpath.c_str());

  EXPECT_THROW(sample_report().write_file("/nonexistent-dir/x.json"), Error);
}

TEST(RunReport, SerializationIsDeterministicAndOrdered) {
  // Two serializations of the same report must be byte-identical, and stage /
  // metric sections must be name-sorted, so reports from different runs diff
  // cleanly.
  obs::RunReport rr = sample_report();
  obs::MetricSample z;
  z.name = "z.last";
  z.kind = obs::MetricSample::Kind::Counter;
  z.value = 1;
  obs::MetricSample a = z;
  a.name = "a.first";
  rr.metrics.samples = {z, a};  // deliberately out of order

  const std::string j1 = rr.json();
  const std::string j2 = rr.json();
  EXPECT_EQ(j1, j2);

  EXPECT_LT(j1.find("\"a.first\""), j1.find("\"z.last\""));
  // Stage objects sorted by name: align < parse < reduce < report < schedule.
  const std::size_t stages = j1.find("\"stages\":{");
  ASSERT_NE(stages, std::string::npos);
  std::size_t prev = stages;
  for (const char* s : {"\"align\"", "\"parse\"", "\"reduce\"", "\"report\"",
                        "\"schedule\""}) {
    const std::size_t at = j1.find(s, stages);
    ASSERT_NE(at, std::string::npos) << s;
    EXPECT_GT(at, prev) << "stage " << s << " out of name order";
    prev = at;
  }

  std::ostringstream c1, c2;
  rr.write_csv(c1);
  rr.write_csv(c2);
  EXPECT_EQ(c1.str(), c2.str());
  EXPECT_LT(c1.str().find("metrics.a.first"), c1.str().find("metrics.z.last"));

  // A one-metric change must produce a one-line CSV diff, not a reshuffle.
  obs::RunReport rr2 = rr;
  rr2.metrics.samples[0].value = 2;  // z.last
  std::ostringstream c3;
  rr2.write_csv(c3);
  const std::string s1 = c1.str(), s3 = c3.str();
  std::istringstream l1(s1), l3(s3);
  std::string line1, line3;
  int differing = 0;
  while (std::getline(l1, line1) && std::getline(l3, line3)) {
    if (line1 != line3) ++differing;
  }
  EXPECT_EQ(differing, 1);
}

TEST(RunReport, CsvEscapesCommasAndQuotesInNames) {
  obs::RunReport rr = sample_report();
  obs::MetricSample weird;
  weird.name = "weird,metric\"quoted\"";
  weird.kind = obs::MetricSample::Kind::Gauge;
  weird.value = 5;
  rr.metrics.samples = {weird};
  rr.matrix = "mat,rix";

  std::ostringstream out;
  rr.write_csv(out);
  const std::string csv = out.str();
  // RFC 4180: field quoted, inner quotes doubled.
  EXPECT_NE(csv.find("\"metrics.weird,metric\"\"quoted\"\"\",5"),
            std::string::npos)
      << csv;
  EXPECT_NE(csv.find("config.matrix,\"mat,rix\""), std::string::npos);
  // Every data row still splits into exactly two CSV fields.
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    int commas_outside_quotes = 0;
    bool in_quotes = false;
    for (const char c : line) {
      if (c == '"') in_quotes = !in_quotes;
      else if (c == ',' && !in_quotes) ++commas_outside_quotes;
    }
    EXPECT_EQ(commas_outside_quotes, 1) << "bad row: " << line;
  }
}

TEST(RunReport, CsvLabelsOverflowBucketsUnambiguously) {
  obs::RunReport rr = sample_report();
  obs::MetricSample h;
  h.name = "lat";
  h.kind = obs::MetricSample::Kind::Histogram;
  h.value = 3;
  h.sum = 5055;
  h.bucket_bounds = {10, 100};
  h.bucket_counts = {1, 1, 1};
  rr.metrics.samples = {h};

  std::ostringstream out;
  rr.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("metrics.lat.bucket_le_10,1"), std::string::npos);
  EXPECT_NE(csv.find("metrics.lat.bucket_le_100,1"), std::string::npos);
  EXPECT_NE(csv.find("metrics.lat.bucket_overflow,1"), std::string::npos);
  // PassHist rows: exact buckets 0..7, then the "8 or more" tail.
  EXPECT_NE(csv.find("engine.lazyf_pass_hist.bucket_0,1"), std::string::npos);
  EXPECT_NE(csv.find("engine.lazyf_pass_hist.bucket_8_or_more,0"),
            std::string::npos);
  EXPECT_EQ(csv.find("bucket_8,"), std::string::npos)
      << "the overflow bucket must not look like an exact count";
}

TEST(RunReport, CaptureEnvironmentPullsGlobalState) {
  obs::Registry::global().counter("test.obs.capture_probe").add(7);
  { const obs::StageSpan s(obs::Stage::Report); }
  obs::RunReport rr;
  rr.capture_environment();
  EXPECT_FALSE(rr.version.empty());
  EXPECT_FALSE(rr.hostname.empty());
  EXPECT_FALSE(rr.timestamp_utc.empty());
  EXPECT_FALSE(rr.cpu_isa_level.empty());
  EXPECT_FALSE(rr.git_describe.empty());
  // Degradation contract: whenever counters are absent the reason says why.
  if (!rr.hw_available) EXPECT_FALSE(rr.hw_reason.empty());
  EXPECT_GE(rr.stages[static_cast<std::size_t>(obs::Stage::Report)].spans, 1u);
  bool found = false;
  for (const obs::MetricSample& s : rr.metrics.samples) {
    if (s.name == "test.obs.capture_probe") {
      found = true;
      EXPECT_GE(s.value, 7);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace valign
