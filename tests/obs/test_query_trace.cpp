// Request-scoped tracing: sink/drop semantics, the Chrome-trace timeline
// writer (validated with the in-repo obs::json parser), per-query span
// coverage over a real search, histogram quantiles, atomic file writes and
// the periodic metrics flusher.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "valign/apps/db_search.hpp"
#include "valign/obs/flush.hpp"
#include "valign/obs/json.hpp"
#include "valign/obs/metrics.hpp"
#include "valign/obs/query_trace.hpp"
#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"
#include "valign/workload/generator.hpp"

namespace valign {
namespace {

// The gtest build compiles with the default VALIGN_ENABLE_QUERY_TRACE=ON;
// the constexpr-false variant is covered by the build option itself.
static_assert(obs::query_trace_compiled(),
              "tests expect tracing compiled in (default configuration)");

/// Enables tracing for one test and restores the quiescent default after.
class QueryTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::query_trace_set_capacity(1 << 16);
    obs::query_trace_reset();
    obs::set_query_trace_enabled(true);
  }
  void TearDown() override {
    obs::set_query_trace_enabled(false);
    obs::query_trace_set_capacity(1 << 16);
    obs::query_trace_reset();
  }
};

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("valign_qt_" + name);
}

// --- Sink semantics ----------------------------------------------------------

TEST_F(QueryTraceTest, InstantsAndSlicesAreCollected) {
  obs::set_trace_thread_name("tester");
  const obs::TraceContext ctx(7);
  ctx.instant(obs::TraceEventKind::QueryBegin, 123);
  {
    obs::TraceSlice slice(obs::TraceEventKind::Align, ctx, 16, 8);
  }
  obs::trace_instant(obs::TraceEventKind::Enqueue, obs::kNoQuery, 0, 32);

  const obs::TraceLog log = obs::collect_query_trace();
  ASSERT_EQ(log.event_count(), 3u);
  EXPECT_EQ(log.dropped, 0u);

  const obs::ThreadTrace* mine = nullptr;
  for (const obs::ThreadTrace& t : log.threads) {
    if (t.name == "tester") mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->events.size(), 3u);
  EXPECT_EQ(mine->events[0].kind, obs::TraceEventKind::QueryBegin);
  EXPECT_EQ(mine->events[0].query, 7u);
  EXPECT_EQ(mine->events[0].a0, 123);
  EXPECT_EQ(mine->events[0].dur_ns, 0u) << "instants have no duration";
  // The slice is appended at stop, after the enqueue-free instant above; its
  // timestamp is its start and its duration is at least 1 ns.
  const obs::TraceEvent& slice = mine->events[1];
  EXPECT_EQ(slice.kind, obs::TraceEventKind::Align);
  EXPECT_GE(slice.dur_ns, 1u);
  EXPECT_EQ(slice.a0, 16);
  EXPECT_EQ(slice.a1, 8);
  // Per-thread timestamps are non-decreasing (single-producer sink).
  for (std::size_t i = 1; i < mine->events.size(); ++i) {
    EXPECT_GE(mine->events[i].ts_ns, mine->events[i - 1].ts_ns);
  }
}

TEST_F(QueryTraceTest, FullSinkDropsAndCounts) {
  obs::query_trace_set_capacity(4);
  obs::query_trace_reset();
  for (int i = 0; i < 10; ++i) {
    obs::trace_instant(obs::TraceEventKind::Retry, obs::kNoQuery, i);
  }
  const obs::TraceLog log = obs::collect_query_trace();
  EXPECT_EQ(log.event_count(), 4u) << "capacity bounds the buffer";
  EXPECT_EQ(log.dropped, 6u) << "overflow is dropped and counted, never blocks";
  // The first events survive; drops happen at the tail.
  bool found = false;
  for (const obs::ThreadTrace& t : log.threads) {
    if (t.events.size() == 4u) {
      found = true;
      EXPECT_EQ(t.dropped, 6u);
      EXPECT_EQ(t.events[0].a0, 0);
      EXPECT_EQ(t.events[3].a0, 3);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(QueryTraceTest, DisabledRecordsNothing) {
  obs::set_query_trace_enabled(false);
  obs::trace_instant(obs::TraceEventKind::Retry);
  const obs::TraceContext ctx(1);
  ctx.instant(obs::TraceEventKind::QueryBegin);
  {
    obs::TraceSlice slice(obs::TraceEventKind::Align, ctx);
  }
  const obs::TraceLog log = obs::collect_query_trace();
  EXPECT_EQ(log.event_count(), 0u);
  EXPECT_EQ(log.dropped, 0u);
}

TEST_F(QueryTraceTest, EventsSurviveThreadExit) {
  std::thread t([] {
    obs::set_trace_thread_name("short-lived");
    obs::trace_instant(obs::TraceEventKind::Dequeue, obs::kNoQuery, 5, 6);
  });
  t.join();
  const obs::TraceLog log = obs::collect_query_trace();
  const obs::ThreadTrace* found = nullptr;
  for (const obs::ThreadTrace& tt : log.threads) {
    if (tt.name == "short-lived") found = &tt;
  }
  ASSERT_NE(found, nullptr) << "a joined thread's events must still collect";
  ASSERT_EQ(found->events.size(), 1u);
  EXPECT_EQ(found->events[0].a0, 5);
}

// --- Timeline export ---------------------------------------------------------

/// One parsed Chrome-trace event with the fields the invariants need.
struct ParsedEvent {
  std::string ph;
  std::string cat;
  std::string id;
  double ts = 0.0;
  double dur = 0.0;
  std::uint64_t tid = 0;
};

std::vector<ParsedEvent> parsed_events(const obs::json::Value& doc) {
  std::vector<ParsedEvent> out;
  const obs::json::Value* events = doc.get("traceEvents");
  EXPECT_NE(events, nullptr);
  for (const obs::json::Value& e : events->array) {
    ParsedEvent p;
    p.ph = e.str_or("ph");
    p.cat = e.str_or("cat");
    p.id = e.str_or("id");
    p.ts = e.num_or("ts");
    p.dur = e.num_or("dur");
    p.tid = e.u64_or("tid");
    EXPECT_EQ(e.u64_or("pid"), 1u) << "single-process trace";
    out.push_back(std::move(p));
  }
  return out;
}

TEST_F(QueryTraceTest, TimelineJsonParsesAndPairsAsyncSpans) {
  obs::set_trace_thread_name("main");
  for (std::uint32_t q = 0; q < 3; ++q) {
    const obs::TraceContext ctx(q);
    ctx.instant(obs::TraceEventKind::QueryBegin, 100 + q);
    {
      obs::TraceSlice slice(obs::TraceEventKind::Align, ctx, 4, 8);
    }
    ctx.instant(obs::TraceEventKind::QueryEnd, 2);
  }
  const obs::TimelineWriter writer(obs::collect_query_trace());
  const obs::json::Value doc =
      obs::json::parse(writer.json(), "trace timeline");

  EXPECT_EQ(doc.str_or("schema"), "valign.trace_timeline/1");
  const obs::json::Value* other = doc.get("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->u64_or("queries"), 3u);
  EXPECT_EQ(other->u64_or("dropped"), 0u);

  const std::vector<ParsedEvent> events = parsed_events(doc);
  std::map<std::string, int> open_spans;  // id -> b minus e
  std::map<std::uint64_t, bool> named_tids;
  int slices = 0;
  for (const ParsedEvent& e : events) {
    EXPECT_GE(e.ts, 0.0);
    if (e.ph == "M") {
      named_tids[e.tid] = true;
    } else if (e.ph == "b") {
      EXPECT_EQ(e.cat, "query");
      EXPECT_EQ(e.tid, 0u) << "async query spans live on the query track";
      ++open_spans[e.id];
    } else if (e.ph == "e") {
      --open_spans[e.id];
      EXPECT_GE(open_spans[e.id], 0) << "e before b for id " << e.id;
    } else if (e.ph == "X") {
      EXPECT_GT(e.dur, 0.0);
      ++slices;
    }
  }
  EXPECT_EQ(slices, 3);
  ASSERT_EQ(open_spans.size(), 3u) << "one async id per query";
  for (const auto& [id, balance] : open_spans) {
    EXPECT_EQ(balance, 0) << "unbalanced b/e for " << id;
  }
  EXPECT_TRUE(named_tids[0]) << "query track has thread_name metadata";
  for (const ParsedEvent& e : events) {
    if (e.ph == "X" || e.ph == "i") {
      EXPECT_TRUE(named_tids[e.tid]) << "tid " << e.tid << " unnamed";
    }
  }
}

TEST_F(QueryTraceTest, TimelineWriteFileIsAtomic) {
  obs::trace_instant(obs::TraceEventKind::Flush, obs::kNoQuery, 1);
  const obs::TimelineWriter writer(obs::collect_query_trace());
  const auto path = temp_file("timeline.json");
  writer.write_file(path.string());
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NO_THROW(obs::json::parse(body.str(), "timeline file"));
  std::filesystem::remove(path);
}

// --- Coverage over a real search ---------------------------------------------

/// Fraction of the run's work window (reader/schedule/screen/align events)
/// covered by the union of per-query spans [first event ts, last event end].
/// The window is built from the per-thread work slices plus the parse and
/// schedule stages — NOT the align/reduce stage envelopes, whose tail is the
/// worker-join / stats-aggregation jitter after the last per-query event,
/// which no query span can attribute (and which makes the measure flaky on
/// a loaded host). The thread that runs the last work slice always emits
/// its QueryEnd after that slice closes, so the window end stays covered.
double query_span_coverage(const obs::TraceLog& log) {
  const auto is_work = [](const obs::TraceEvent& e) {
    switch (e.kind) {
      case obs::TraceEventKind::Screen:
      case obs::TraceEventKind::Escalate:
      case obs::TraceEventKind::Align:
        return true;
      case obs::TraceEventKind::Stage: {
        const auto s = static_cast<obs::Stage>(e.a0);
        return s == obs::Stage::Parse || s == obs::Stage::Schedule;
      }
      default:
        return false;
    }
  };
  std::uint64_t w0 = std::numeric_limits<std::uint64_t>::max(), w1 = 0;
  std::uint64_t first_begin = std::numeric_limits<std::uint64_t>::max();
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> spans;
  for (const obs::ThreadTrace& t : log.threads) {
    for (const obs::TraceEvent& e : t.events) {
      const std::uint64_t end = e.ts_ns + e.dur_ns;
      if (is_work(e)) {
        w0 = std::min(w0, e.ts_ns);
        w1 = std::max(w1, end);
      }
      if (e.query == obs::kNoQuery) continue;
      if (e.kind == obs::TraceEventKind::QueryBegin) {
        first_begin = std::min(first_begin, e.ts_ns);
      }
      auto [it, inserted] = spans.try_emplace(e.query, e.ts_ns, end);
      if (!inserted) {
        it->second.first = std::min(it->second.first, e.ts_ns);
        it->second.second = std::max(it->second.second, end);
      }
    }
  }
  // The window starts at query admission: parse work before the first
  // QueryBegin (the batch driver loads its FASTA inputs before query ids
  // exist) is unattributable by design.
  if (first_begin != std::numeric_limits<std::uint64_t>::max()) {
    w0 = std::max(w0, first_begin);
  }
  if (w0 >= w1) return 0.0;
  // Merge the per-query intervals and measure their overlap with [w0, w1].
  std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
  iv.reserve(spans.size());
  for (const auto& [q, s] : spans) iv.push_back(s);
  std::sort(iv.begin(), iv.end());
  std::uint64_t covered = 0, cur0 = 0, cur1 = 0;
  bool open = false;
  const auto flush = [&] {
    const std::uint64_t lo = std::max(cur0, w0);
    const std::uint64_t hi = std::min(cur1, w1);
    if (hi > lo) covered += hi - lo;
  };
  for (const auto& [a, b] : iv) {
    if (!open || a > cur1) {
      if (open) flush();
      cur0 = a;
      cur1 = b;
      open = true;
    } else {
      cur1 = std::max(cur1, b);
    }
  }
  if (open) flush();
  return static_cast<double>(covered) / static_cast<double>(w1 - w0);
}

TEST_F(QueryTraceTest, SearchSpansCoverTheWorkWindow) {
  const Dataset queries = workload::bacteria_2k(/*seed=*/21, /*count=*/4);
  const Dataset db = workload::uniprot_like(96, 22);  // >= 64: auto threshold
  apps::SearchConfig cfg;
  cfg.align.klass = AlignClass::Local;
  cfg.prefilter = PrefilterMode::Auto;
  cfg.top_k = 3;
  cfg.threads = 2;
  const apps::SearchReport rep = apps::search(queries, db, cfg);
  ASSERT_EQ(rep.top_hits.size(), queries.size());

  obs::TraceLog log = obs::collect_query_trace();
  ASSERT_GT(log.event_count(), 0u);
  std::map<std::uint32_t, int> begins, ends;
  bool saw_screen = false, saw_escalate = false;
  for (const obs::ThreadTrace& t : log.threads) {
    for (const obs::TraceEvent& e : t.events) {
      if (e.kind == obs::TraceEventKind::QueryBegin) ++begins[e.query];
      if (e.kind == obs::TraceEventKind::QueryEnd) ++ends[e.query];
      if (e.kind == obs::TraceEventKind::Screen) saw_screen = true;
      if (e.kind == obs::TraceEventKind::Escalate) saw_escalate = true;
    }
  }
  EXPECT_TRUE(saw_screen) << "prefiltered search records Screen slices";
  EXPECT_TRUE(saw_escalate);
  for (std::uint32_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(begins[q], 1) << "query " << q;
    EXPECT_EQ(ends[q], 1) << "query " << q;
  }
  // Acceptance: per-query spans cover >= 95% of the work window.
  EXPECT_GE(query_span_coverage(log), 0.95);

  // The same log renders to valid Chrome-trace JSON.
  const obs::TimelineWriter writer(std::move(log));
  const obs::json::Value doc =
      obs::json::parse(writer.json(), "search timeline");
  const obs::json::Value* other = doc.get("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->u64_or("queries"), queries.size());
}

TEST_F(QueryTraceTest, UnfilteredSearchRecordsAlignSlices) {
  const Dataset queries = workload::bacteria_2k(/*seed=*/31, /*count=*/3);
  const Dataset db = workload::uniprot_like(12, 32);  // < 64: prefilter stays off
  apps::SearchConfig cfg;
  cfg.align.klass = AlignClass::Local;
  cfg.top_k = 2;
  const apps::SearchReport rep = apps::search(queries, db, cfg);
  ASSERT_FALSE(rep.prefilter.enabled);

  const obs::TraceLog log = obs::collect_query_trace();
  bool saw_align = false;
  for (const obs::ThreadTrace& t : log.threads) {
    for (const obs::TraceEvent& e : t.events) {
      if (e.kind == obs::TraceEventKind::Align && e.query != obs::kNoQuery) {
        saw_align = true;
        EXPECT_GT(e.a0, 0) << "Align slices carry the pair count";
      }
    }
  }
  EXPECT_TRUE(saw_align);
  EXPECT_GE(query_span_coverage(log), 0.95);
}

// --- Quantiles ---------------------------------------------------------------

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  const std::uint64_t bounds[] = {10, 100};
  const std::uint64_t counts[] = {10, 0, 10};  // 10 in (0,10], 10 overflow
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.25), 5.0)
      << "rank 5 of 10 in bucket (0,10] -> midpoint";
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.75), 100.0)
      << "overflow bucket saturates at the last finite bound";
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 1.0), 100.0);
}

TEST(HistogramQuantile, EdgeCases) {
  const std::uint64_t bounds[] = {10, 100};
  const std::uint64_t none[] = {0, 0, 0};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, none, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, {}, 0.5), 0.0);
  const std::uint64_t one[] = {0, 4, 0};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, one, 0.0), 10.0)
      << "q=0 clamps to the bucket's low edge";
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, one, 0.5), 55.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, one, -1.0), 10.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, one, 2.0), 100.0);
}

TEST(HistogramQuantile, ReportEmitsPercentilesForHistograms) {
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t bounds[] = {10, 100, 1000};
  obs::Histogram& h = reg.histogram("test.query_trace.latency", bounds);
  for (int i = 0; i < 10; ++i) h.record(5);
  obs::RunReport rr;
  rr.command = "test";
  rr.capture_environment();
  std::ostringstream os;
  rr.write_json(os);
  const obs::json::Value doc = obs::json::parse(os.str(), "run report");
  const obs::json::Value* metrics = doc.get("metrics");
  ASSERT_NE(metrics, nullptr);
  bool found = false;
  for (const obs::json::Value& m : metrics->array) {
    if (m.str_or("name") != "test.query_trace.latency") continue;
    found = true;
    EXPECT_NE(m.get("p50"), nullptr);
    EXPECT_NE(m.get("p95"), nullptr);
    EXPECT_NE(m.get("p99"), nullptr);
    EXPECT_DOUBLE_EQ(m.num_or("p50"), 5.0);
    EXPECT_DOUBLE_EQ(m.num_or("p99"), 9.9);
  }
  EXPECT_TRUE(found);
}

// --- Atomic writes and the metrics flusher -----------------------------------

TEST(AtomicWrite, WritesViaTempAndRename) {
  const auto path = temp_file("atomic.txt");
  obs::atomic_write_file(path.string(),
                         [](std::ostream& out) { out << "payload\n"; });
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "payload");
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::filesystem::remove(path);
}

TEST(AtomicWrite, FailureLeavesNoArtifacts) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            "valign_qt_no_such_dir" / "report.json")
                               .string();
  EXPECT_THROW(
      obs::atomic_write_file(path, [](std::ostream& out) { out << "x"; }),
      Error);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(MetricsFlusher, WritesLiveSnapshotsAndFinalFlush) {
  const auto path = temp_file("snapshot.json");
  obs::RunReport proto;
  proto.command = "flusher-test";
  const std::uint64_t flushes_before =
      obs::Registry::global().counter("runtime.metrics.flushes").value();
  {
    obs::MetricsFlusher flusher(path.string(), 5, proto);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    flusher.stop();
    EXPECT_GE(flusher.flushes(), 1u);
  }
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  const obs::json::Value doc = obs::json::parse(body.str(), "snapshot");
  EXPECT_EQ(doc.str_or("command"), "flusher-test");
  const obs::json::Value* snap = doc.get("snapshot");
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->bool_or("live"));
  EXPECT_GE(snap->u64_or("seq"), 1u);
  EXPECT_GT(obs::Registry::global().counter("runtime.metrics.flushes").value(),
            flushes_before);
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::filesystem::remove(path);
}

TEST(MetricsFlusher, StopIsIdempotentAndFlushesShortRuns) {
  const auto path = temp_file("snapshot_short.json");
  obs::RunReport proto;
  proto.command = "short";
  obs::MetricsFlusher flusher(path.string(), 60000, proto);  // longer than test
  flusher.stop();
  flusher.stop();
  EXPECT_GE(flusher.flushes(), 1u) << "stop() performs a final flush";
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace valign
