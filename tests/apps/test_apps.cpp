// Database search and homology detection drivers against brute-force truth.
#include <gtest/gtest.h>

#include "valign/apps/db_search.hpp"
#include "valign/apps/homology.hpp"
#include "valign/core/scalar.hpp"
#include "valign/workload/generator.hpp"

namespace valign::apps {
namespace {

Dataset tiny_queries() { return workload::bacteria_2k(11, 6); }
Dataset tiny_db() { return workload::uniprot_like(15, 12); }

TEST(DbSearch, TopHitsMatchBruteForce) {
  const Dataset queries = tiny_queries();
  const Dataset db = tiny_db();
  SearchConfig cfg;
  cfg.align.klass = AlignClass::Local;
  cfg.top_k = 3;
  const SearchReport rep = search(queries, db, cfg);
  ASSERT_EQ(rep.top_hits.size(), queries.size());
  EXPECT_EQ(rep.alignments, queries.size() * db.size());

  ScalarAligner<AlignClass::Local> ref(ScoreMatrix::blosum62(),
                                       ScoreMatrix::blosum62().default_gaps());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ref.set_query(queries[q].codes());
    std::vector<std::int32_t> all;
    for (std::size_t d = 0; d < db.size(); ++d) {
      all.push_back(ref.align(db[d].codes()).score);
    }
    std::vector<std::int32_t> want = all;
    std::sort(want.rbegin(), want.rend());
    ASSERT_EQ(rep.top_hits[q].size(), 3u);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(rep.top_hits[q][k].score, want[k]) << "query " << q << " rank " << k;
      // The reported index really has that score.
      EXPECT_EQ(all[rep.top_hits[q][k].db_index], rep.top_hits[q][k].score);
    }
    // Sorted descending.
    for (std::size_t k = 1; k < rep.top_hits[q].size(); ++k) {
      EXPECT_GE(rep.top_hits[q][k - 1].score, rep.top_hits[q][k].score);
    }
  }
}

TEST(DbSearch, TopKLargerThanDbReturnsAll) {
  const Dataset queries = tiny_queries();
  const Dataset db = tiny_db();
  SearchConfig cfg;
  cfg.top_k = 1000;
  const SearchReport rep = search(queries, db, cfg);
  for (const auto& hits : rep.top_hits) {
    EXPECT_EQ(hits.size(), db.size());
  }
}

TEST(DbSearch, StatsAccumulate) {
  const Dataset queries = tiny_queries();
  const Dataset db = tiny_db();
  const SearchReport rep = search(queries, db, {});
  EXPECT_GT(rep.totals.cells, 0u);
  EXPECT_GT(rep.totals.columns, 0u);
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_GE(rep.gcups(), 0.0);
}

#if defined(VALIGN_HAVE_OPENMP)
TEST(DbSearch, ThreadedRunMatchesSerial) {
  const Dataset queries = tiny_queries();
  const Dataset db = tiny_db();
  SearchConfig serial, threaded;
  serial.threads = 1;
  threaded.threads = 4;
  const SearchReport a = search(queries, db, serial);
  const SearchReport b = search(queries, db, threaded);
  ASSERT_EQ(a.top_hits.size(), b.top_hits.size());
  for (std::size_t q = 0; q < a.top_hits.size(); ++q) {
    ASSERT_EQ(a.top_hits[q].size(), b.top_hits[q].size());
    for (std::size_t k = 0; k < a.top_hits[q].size(); ++k) {
      EXPECT_EQ(a.top_hits[q][k].score, b.top_hits[q][k].score);
    }
  }
  EXPECT_EQ(a.alignments, b.alignments);
}
#endif

TEST(Homology, EdgesMatchBruteForce) {
  const Dataset ds = workload::bacteria_2k(13, 12);
  HomologyConfig cfg;
  cfg.score_threshold = 80;
  const HomologyReport rep = detect(ds, cfg);
  EXPECT_EQ(rep.alignments, ds.size() * (ds.size() - 1) / 2);

  ScalarAligner<AlignClass::Local> ref(ScoreMatrix::blosum62(),
                                       ScoreMatrix::blosum62().default_gaps());
  std::size_t want_edges = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    ref.set_query(ds[i].codes());
    for (std::size_t j = i + 1; j < ds.size(); ++j) {
      if (ref.align(ds[j].codes()).score >= cfg.score_threshold) ++want_edges;
    }
  }
  EXPECT_EQ(rep.edges.size(), want_edges);
  for (const HomologyEdge& e : rep.edges) {
    ref.set_query(ds[e.a].codes());
    EXPECT_EQ(ref.align(ds[e.b].codes()).score, e.score);
    EXPECT_LT(e.a, e.b);
  }
}

TEST(Homology, ClustersAreConsistentWithEdges) {
  const Dataset ds = workload::bacteria_2k(17, 14);
  HomologyConfig cfg;
  cfg.score_threshold = 70;
  const HomologyReport rep = detect(ds, cfg);
  ASSERT_EQ(rep.cluster_of.size(), ds.size());
  // Every edge joins two sequences of the same cluster.
  for (const HomologyEdge& e : rep.edges) {
    EXPECT_EQ(rep.cluster_of[e.a], rep.cluster_of[e.b]);
  }
  EXPECT_GE(rep.cluster_count, 1u);
  EXPECT_LE(rep.cluster_count, ds.size());
  // No edges at an absurd threshold => every sequence is its own cluster.
  HomologyConfig strict;
  strict.score_threshold = 1000000;
  const HomologyReport none = detect(ds, strict);
  EXPECT_TRUE(none.edges.empty());
  EXPECT_EQ(none.cluster_count, ds.size());
}

TEST(Homology, HomologRichDatasetClustersTighter) {
  workload::GeneratorConfig lo, hi;
  lo.homolog_fraction = 0.0;
  lo.seed = 21;
  hi.homolog_fraction = 0.9;
  hi.seed = 21;
  const Dataset indep = workload::generate(14, lo);
  const Dataset related = workload::generate(14, hi);
  HomologyConfig cfg;
  cfg.score_threshold = 100;
  const auto rep_indep = detect(indep, cfg);
  const auto rep_related = detect(related, cfg);
  EXPECT_LT(rep_related.cluster_count, rep_indep.cluster_count);
}

}  // namespace
}  // namespace valign::apps
