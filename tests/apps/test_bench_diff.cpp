// bench_diff classification tests on synthetic reports, plus the CLI
// `valign bench-diff` exit-code contract (0 = clean, 1 = regression).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "valign/apps/bench_diff.hpp"
#include "valign/cli/cli.hpp"
#include "valign/obs/bench_report.hpp"

namespace valign {
namespace {

obs::BenchScenario scenario(const std::string& name, double sec_median) {
  obs::BenchScenario s;
  s.name = name;
  s.reps = 3;
  s.sec_min = sec_median * 0.9;
  s.sec_median = sec_median;
  s.sec_max = sec_median * 1.1;
  return s;
}

obs::BenchReport report_with(std::initializer_list<obs::BenchScenario> ss) {
  obs::BenchReport r;
  r.command = "test";
  r.scenarios = ss;
  return r;
}

TEST(BenchDiff, ClassifiesAgainstThreshold) {
  const obs::BenchReport base = report_with({
      scenario("steady", 1.0),
      scenario("faster", 1.0),
      scenario("slower", 1.0),
      scenario("gone", 1.0),
  });
  const obs::BenchReport cur = report_with({
      scenario("steady", 1.04),  // +4% < 5% threshold
      scenario("faster", 0.80),  // -20%
      scenario("slower", 1.30),  // +30%
      scenario("brand_new", 2.0),
  });

  const apps::BenchDiffResult res = apps::bench_diff(base, cur, {});
  EXPECT_EQ(res.improved, 1);
  EXPECT_EQ(res.unchanged, 1);
  EXPECT_EQ(res.regressed, 1);
  EXPECT_TRUE(res.has_regression());
  ASSERT_EQ(res.rows.size(), 5u);

  auto verdict_of = [&](const std::string& name) {
    for (const apps::BenchDiffRow& r : res.rows) {
      if (r.name == name) return r.verdict;
    }
    ADD_FAILURE() << "row missing: " << name;
    return apps::BenchVerdict::Unchanged;
  };
  EXPECT_EQ(verdict_of("steady"), apps::BenchVerdict::Unchanged);
  EXPECT_EQ(verdict_of("faster"), apps::BenchVerdict::Improved);
  EXPECT_EQ(verdict_of("slower"), apps::BenchVerdict::Regressed);
  EXPECT_EQ(verdict_of("gone"), apps::BenchVerdict::Removed);
  EXPECT_EQ(verdict_of("brand_new"), apps::BenchVerdict::Added);
}

TEST(BenchDiff, ThresholdIsConfigurable) {
  const obs::BenchReport base = report_with({scenario("s", 1.0)});
  const obs::BenchReport cur = report_with({scenario("s", 1.30)});

  apps::BenchDiffConfig loose;
  loose.threshold_pct = 50.0;
  EXPECT_FALSE(apps::bench_diff(base, cur, loose).has_regression());

  apps::BenchDiffConfig tight;
  tight.threshold_pct = 10.0;
  EXPECT_TRUE(apps::bench_diff(base, cur, tight).has_regression());
}

TEST(BenchDiff, ZeroMedianIsIncomparableNotRegressed) {
  const obs::BenchReport base = report_with({scenario("z", 0.0)});
  const obs::BenchReport cur = report_with({scenario("z", 5.0)});
  const apps::BenchDiffResult res = apps::bench_diff(base, cur, {});
  EXPECT_FALSE(res.has_regression());
  EXPECT_EQ(res.unchanged, 1);
}

TEST(BenchDiff, AddedAndRemovedNeverFail) {
  const obs::BenchReport base = report_with({scenario("only_base", 1.0)});
  const obs::BenchReport cur = report_with({scenario("only_cur", 1.0)});
  const apps::BenchDiffResult res = apps::bench_diff(base, cur, {});
  EXPECT_FALSE(res.has_regression());
  EXPECT_EQ(res.improved + res.unchanged + res.regressed, 0);
  EXPECT_EQ(res.rows.size(), 2u);
}

TEST(BenchDiff, PrintsTableAndSummary) {
  const obs::BenchReport base = report_with({scenario("hot_loop", 1.0)});
  const obs::BenchReport cur = report_with({scenario("hot_loop", 2.0)});
  const apps::BenchDiffConfig cfg;
  std::ostringstream out;
  apps::print_bench_diff(out, apps::bench_diff(base, cur, cfg), cfg);
  const std::string text = out.str();
  EXPECT_NE(text.find("hot_loop"), std::string::npos);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("+100.0%"), std::string::npos);
  EXPECT_NE(text.find("1 regressed"), std::string::npos);
}

// --- CLI exit codes ----------------------------------------------------------

std::string write_temp_report(const char* tag, const obs::BenchReport& r) {
  const std::string path =
      ::testing::TempDir() + "/valign_bd_" + tag + ".json";
  r.write_file(path);
  return path;
}

int run_cli(std::initializer_list<std::string> argv, std::string* text = nullptr) {
  std::vector<std::string_view> args(argv.begin(), argv.end());
  std::ostringstream out, err;
  const int rc = cli::run(args, out, err);
  if (text != nullptr) *text = out.str() + err.str();
  return rc;
}

TEST(BenchDiffCli, ExitCodesFollowVerdicts) {
  const std::string base =
      write_temp_report("base", report_with({scenario("s", 1.0)}));
  const std::string same =
      write_temp_report("same", report_with({scenario("s", 1.02)}));
  const std::string slow =
      write_temp_report("slow", report_with({scenario("s", 3.0)}));

  EXPECT_EQ(run_cli({"bench-diff", base, same}), 0);
  std::string text;
  EXPECT_EQ(run_cli({"bench-diff", base, slow}), 1);
  EXPECT_EQ(run_cli({"bench-diff", base, slow, "--threshold-pct", "300"}, &text), 0)
      << text;

  // Bad usage is an argument error (exit 2, docs/robustness.md taxonomy);
  // malformed inputs are runtime errors (exit 1). Never silent successes.
  EXPECT_EQ(run_cli({"bench-diff", base}), 2);
  EXPECT_EQ(run_cli({"bench-diff", base, "/nonexistent.json"}), 1);
  const std::string junk = ::testing::TempDir() + "/valign_bd_junk.json";
  std::ofstream(junk) << "not json";
  EXPECT_EQ(run_cli({"bench-diff", base, junk}, &text), 1);
  EXPECT_NE(text.find("error"), std::string::npos);

  std::remove(base.c_str());
  std::remove(same.c_str());
  std::remove(slow.c_str());
  std::remove(junk.c_str());
}

}  // namespace
}  // namespace valign
