// Alphabet encoding, Sequence/Dataset containers, FASTA round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "valign/io/fasta.hpp"
#include "valign/io/sequence.hpp"

namespace valign {
namespace {

TEST(Alphabet, ProteinEncodeDecode) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.size(), 24);
  EXPECT_EQ(a.encode('A'), 0);
  EXPECT_EQ(a.encode('a'), 0);
  EXPECT_EQ(a.encode('R'), 1);
  EXPECT_EQ(a.encode('*'), 23);
  EXPECT_EQ(a.decode(0), 'A');
  // Unknown alphabetic characters map to the 'X' wildcard.
  EXPECT_EQ(a.encode('J'), a.encode('X'));
  EXPECT_EQ(a.encode('O'), a.encode('X'));
  // Non-alphabetic characters stay unknown.
  EXPECT_EQ(a.encode('1'), -1);
  EXPECT_EQ(a.encode(' '), -1);
  EXPECT_TRUE(a.contains('W'));
  EXPECT_FALSE(a.contains('#'));
}

TEST(Alphabet, DnaEncodeDecode) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(a.size(), 5);
  EXPECT_EQ(a.encode('T'), 3);
  EXPECT_EQ(a.encode('t'), 3);
  EXPECT_EQ(a.encode('N'), 4);
  EXPECT_EQ(a.encode('R'), a.encode('N'));  // IUPAC ambiguity -> wildcard
  EXPECT_EQ(a.wildcard(), 'N');
}

TEST(Alphabet, WildcardMustBeInLetterSet) {
  EXPECT_THROW(Alphabet("ACGT", 'N'), Error);
}

TEST(Sequence, EncodesAndDecodes) {
  const Sequence s("test", "MKTAYIAKQR", Alphabet::protein());
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.name(), "test");
  EXPECT_EQ(s.to_string(), "MKTAYIAKQR");
  EXPECT_EQ(s[0], static_cast<std::uint8_t>(Alphabet::protein().encode('M')));
}

TEST(Sequence, SkipsWhitespaceAndLowercases) {
  const Sequence s("t", "mkta yiak\tqr", Alphabet::protein());
  EXPECT_EQ(s.to_string(), "MKTAYIAKQR");
}

TEST(Sequence, RejectsOutOfRangeCodes) {
  std::vector<std::uint8_t> bad = {0, 200};
  EXPECT_THROW(Sequence("t", std::move(bad), Alphabet::protein()), Error);
}

TEST(Dataset, Statistics) {
  Dataset ds(Alphabet::protein());
  ds.add(Sequence("a", "MKT", Alphabet::protein()));
  ds.add(Sequence("b", "MKTAYIA", Alphabet::protein()));
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.total_residues(), 10u);
  EXPECT_DOUBLE_EQ(ds.mean_length(), 5.0);
  EXPECT_EQ(ds.max_length(), 7u);
}

TEST(Dataset, RejectsForeignAlphabet) {
  Dataset ds(Alphabet::protein());
  EXPECT_THROW(ds.add(Sequence("d", "ACGT", Alphabet::dna())), Error);
}

TEST(Fasta, ReadsBasicRecords) {
  std::istringstream in(
      ">seq1 description ignored\n"
      "MKTAYI\n"
      "AKQR\n"
      "\n"
      ">seq2\n"
      "WWWW\n");
  const Dataset ds = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].name(), "seq1");
  EXPECT_EQ(ds[0].to_string(), "MKTAYIAKQR");
  EXPECT_EQ(ds[1].name(), "seq2");
  EXPECT_EQ(ds[1].to_string(), "WWWW");
}

TEST(Fasta, HandlesCrlfAndComments) {
  std::istringstream in(">s1\r\n; a classic comment\r\nMKT\r\n");
  const Dataset ds = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].to_string(), "MKT");
}

TEST(Fasta, FinalRecordWithoutTrailingNewline) {
  std::istringstream in(">s1\nMKT\n>s2\nWWW");  // EOF right after the residues
  const Dataset ds = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[1].name(), "s2");
  EXPECT_EQ(ds[1].to_string(), "WWW");
}

TEST(Fasta, CrlfFinalRecordWithoutTrailingNewline) {
  std::istringstream in(">s1\r\nMKT\r\n>s2\r\nWWW");
  const Dataset ds = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].to_string(), "MKT");
  EXPECT_EQ(ds[1].to_string(), "WWW");
}

TEST(Fasta, BlankLinesBetweenAndInsideRecords) {
  std::istringstream in(
      "\n"
      ">s1\n"
      "MK\n"
      "\n"
      "TA\n"
      "\n"
      "\n"
      ">s2\n"
      "\n"
      "WW\n"
      "\n");
  const Dataset ds = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].to_string(), "MKTA");
  EXPECT_EQ(ds[1].to_string(), "WW");
}

TEST(Fasta, WhitespaceOnlyLinesAreBlank) {
  // Lines of spaces/tabs (and stray "\r\r") must not count as residue data —
  // before the fix they either threw "data before first header" or slipped
  // an empty record past the no-residues check.
  std::istringstream in(
      "   \n"
      "\t\n"
      ">s1  \t\n"
      "MKT  \n"
      "AYI\t\r\n"
      "  \r\n"
      ">s2\r\r\n"
      "WW \t \n");
  const Dataset ds = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].name(), "s1");
  EXPECT_EQ(ds[0].to_string(), "MKTAYI");
  EXPECT_EQ(ds[1].name(), "s2");
  EXPECT_EQ(ds[1].to_string(), "WW");
}

TEST(Fasta, WhitespaceOnlyRecordBodyIsEmpty) {
  std::istringstream in(">only_blanks\n   \n\t\n>next\nAAA\n");
  EXPECT_THROW((void)read_fasta(in, Alphabet::protein()), Error);
}

TEST(Fasta, RejectsMalformedInput) {
  {
    std::istringstream in("MKT\n>late header\nAAA\n");
    EXPECT_THROW((void)read_fasta(in, Alphabet::protein()), Error);
  }
  {
    std::istringstream in(">empty_record\n>next\nAAA\n");
    EXPECT_THROW((void)read_fasta(in, Alphabet::protein()), Error);
  }
  {
    std::istringstream in(">\nAAA\n");
    EXPECT_THROW((void)read_fasta(in, Alphabet::protein()), Error);
  }
}

TEST(Fasta, RoundTripsWithWrapping) {
  Dataset ds(Alphabet::protein());
  ds.add(Sequence("long_one", std::string(157, 'W'), Alphabet::protein()));
  ds.add(Sequence("short", "MK", Alphabet::protein()));
  std::ostringstream out;
  write_fasta(out, ds, 60);
  std::istringstream in(out.str());
  const Dataset back = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "long_one");
  EXPECT_EQ(back[0].to_string(), std::string(157, 'W'));
  EXPECT_EQ(back[1].to_string(), "MK");
}

TEST(Fasta, WriteRejectsBadWidth) {
  Dataset ds(Alphabet::protein());
  std::ostringstream out;
  EXPECT_THROW(write_fasta(out, ds, 0), Error);
}

TEST(Fasta, FileHelpersThrowOnMissingPath) {
  EXPECT_THROW((void)read_fasta_file("/nonexistent/nope.fa", Alphabet::protein()),
               Error);
}

}  // namespace
}  // namespace valign
