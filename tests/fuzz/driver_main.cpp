// Fallback fuzz driver for toolchains without libFuzzer (gcc). Replays every
// corpus file through LLVMFuzzerTestOneInput, then spends the time budget on
// seeded random mutations of the corpus (byte flips, truncations, splices,
// random blobs). Accepts the libFuzzer flags scripts/check.sh passes:
//
//   fuzz_target [-max_total_time=SECONDS] [-seed=N] CORPUS_DIR...
//
// Not a coverage-guided fuzzer — a deterministic smoke harness with the same
// entry point, so the same targets run everywhere and CI can gate on them.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::string> load_corpus(const std::vector<std::string>& dirs) {
  std::vector<std::string> corpus;
  for (const std::string& dir : dirs) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      corpus.emplace_back(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
    }
    if (ec) std::fprintf(stderr, "warning: cannot read corpus dir %s\n",
                         dir.c_str());
  }
  return corpus;
}

std::string mutate(const std::vector<std::string>& corpus,
                   std::mt19937_64& rng) {
  std::uniform_int_distribution<int> kind(0, 3);
  auto pick = [&]() -> std::string {
    if (corpus.empty()) return {};
    return corpus[rng() % corpus.size()];
  };
  std::string s = pick();
  switch (kind(rng)) {
    case 0: {  // byte flips
      if (s.empty()) break;
      const std::size_t flips = 1 + rng() % 8;
      for (std::size_t i = 0; i < flips; ++i) {
        s[rng() % s.size()] = static_cast<char>(rng() & 0xff);
      }
      break;
    }
    case 1: {  // truncate
      if (!s.empty()) s.resize(rng() % s.size());
      break;
    }
    case 2: {  // splice two seeds
      const std::string other = pick();
      const std::size_t cut = s.empty() ? 0 : rng() % s.size();
      s = s.substr(0, cut) + other;
      break;
    }
    default: {  // random blob
      s.resize(rng() % 512);
      for (char& c : s) c = static_cast<char>(rng() & 0xff);
      break;
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  long max_total_time = 10;
  std::uint64_t seed = 0x5eedf00d;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "-max_total_time=", 16) == 0) {
      max_total_time = std::strtol(a + 16, nullptr, 10);
    } else if (std::strncmp(a, "-seed=", 6) == 0) {
      seed = std::strtoull(a + 6, nullptr, 10);
    } else if (a[0] == '-') {
      // Ignore other libFuzzer flags so the same command line works for both
      // drivers.
    } else {
      dirs.emplace_back(a);
    }
  }

  const std::vector<std::string> corpus = load_corpus(dirs);
  for (const std::string& input : corpus) {
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
  }

  std::mt19937_64 rng(seed);
  std::uint64_t execs = corpus.size();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(max_total_time);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string input = mutate(corpus, rng);
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
    ++execs;
  }
  std::printf("fallback driver: %llu execs, %zu corpus seeds, seed=%llu\n",
              static_cast<unsigned long long>(execs), corpus.size(),
              static_cast<unsigned long long>(seed));
  return 0;
}
