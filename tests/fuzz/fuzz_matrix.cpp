// Fuzz target: try_parse_ncbi_matrix is the non-throwing core of the matrix
// parser — arbitrary bytes must come back as a Status, never as an exception
// or a crash (truncated tables, NaN/overflow cells, duplicate headers, ...).
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "valign/matrices/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const auto parsed = valign::try_parse_ncbi_matrix(
      text, "fuzz", valign::GapPenalty{11, 1});
  if (parsed.ok()) {
    // A matrix that parsed must be internally consistent enough to render.
    (void)valign::format_ncbi_matrix(*parsed);
  }
  return 0;
}
