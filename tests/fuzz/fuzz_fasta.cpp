// Fuzz target: lenient FASTA parsing must never throw or crash on arbitrary
// bytes — every malformed record is quarantined, never fatal. Strict mode may
// throw, but only the typed StatusError; anything else (std::bad_alloc aside)
// is a bug the fuzzer should surface as a crash.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "valign/io/fasta.hpp"
#include "valign/robust/quarantine.hpp"
#include "valign/robust/status.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const valign::Alphabet alpha = valign::Alphabet::protein();

  {
    // Lenient: must swallow anything. Cap record size so adversarial inputs
    // can't balloon memory; oversized records land in quarantine.
    std::istringstream in(text);
    valign::robust::QuarantineStats q;
    const valign::FastaReaderConfig cfg{true, 1 << 16};
    (void)valign::read_fasta(in, alpha, cfg, &q);
  }
  {
    // Strict: the only acceptable exception is the typed taxonomy error.
    std::istringstream in(text);
    try {
      (void)valign::read_fasta(
          in, alpha, valign::FastaReaderConfig{false, 1 << 16}, nullptr);
    } catch (const valign::robust::StatusError&) {
      // expected for malformed input
    }
  }
  return 0;
}
