// Synthetic dataset generators: determinism, fitted statistics, mutation model.
#include <gtest/gtest.h>

#include "valign/core/scalar.hpp"
#include "valign/workload/generator.hpp"

namespace valign::workload {
namespace {

TEST(LengthModel, PresetsMatchPaperStatistics) {
  // Model means must sit near the paper's reported dataset means (§V).
  EXPECT_NEAR(LengthModel::bacteria_protein().model_mean(), 314.0, 15.0);
  EXPECT_NEAR(LengthModel::uniprot_protein().model_mean(), 356.0, 20.0);
  EXPECT_EQ(LengthModel::bacteria_protein().max_len, 3206u);
  EXPECT_EQ(LengthModel::uniprot_protein().max_len, 35213u);
  EXPECT_EQ(LengthModel::bacteria_dna().max_len, 14800000u);
  EXPECT_EQ(LengthModel::human_dna().max_len, 125000000u);
}

TEST(LengthModel, SamplesRespectClamps) {
  std::mt19937_64 rng(1);
  const LengthModel m = LengthModel::bacteria_protein();
  for (int i = 0; i < 5000; ++i) {
    const std::size_t len = m.sample(rng);
    EXPECT_GE(len, m.min_len);
    EXPECT_LE(len, m.max_len);
  }
}

TEST(LengthModel, MedianNear300ForProteins) {
  // Fig. 2c/d: "half of the sequences are length 300 or less".
  std::mt19937_64 rng(2);
  const LengthModel m = LengthModel::uniprot_protein();
  int below = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (m.sample(rng) <= 300) ++below;
  }
  const double frac = static_cast<double>(below) / kN;
  EXPECT_GT(frac, 0.40);
  EXPECT_LT(frac, 0.65);
}

TEST(Generator, DeterministicInSeed) {
  const Dataset a = bacteria_2k(7, 50);
  const Dataset b = bacteria_2k(7, 50);
  const Dataset c = bacteria_2k(8, 50);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff_from_c = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_string(), b[i].to_string());
    if (a[i].to_string() != c[i].to_string()) any_diff_from_c = true;
  }
  EXPECT_TRUE(any_diff_from_c);
}

TEST(Generator, Bacteria2kShape) {
  const Dataset ds = bacteria_2k(1, 2000);
  EXPECT_EQ(ds.size(), 2000u);
  EXPECT_NEAR(ds.mean_length(), 314.0, 45.0);
  EXPECT_LE(ds.max_length(), 3206u);
  EXPECT_EQ(&ds.alphabet(), &Alphabet::protein());
}

TEST(Generator, HomologFractionPlantsRealHomologs) {
  GeneratorConfig cfg;
  cfg.homolog_fraction = 1.0;  // every sequence after the first is derived
  cfg.seed = 3;
  const Dataset ds = generate(20, cfg);
  // Derived sequences must align strongly to some earlier sequence.
  ScalarAligner<AlignClass::Local> sw(ScoreMatrix::blosum62(), {11, 1});
  int strong = 0;
  for (std::size_t i = 1; i < ds.size(); ++i) {
    std::int32_t best = 0;
    sw.set_query(ds[i].codes());
    for (std::size_t j = 0; j < i; ++j) {
      best = std::max(best, sw.align(ds[j].codes()).score);
    }
    // An unrelated pair of ~300-residue random proteins scores < ~60.
    if (best > 100) ++strong;
  }
  EXPECT_GE(strong, 15);
}

TEST(Generator, ZeroHomologFractionIsIndependent) {
  GeneratorConfig cfg;
  cfg.homolog_fraction = 0.0;
  cfg.seed = 4;
  const Dataset ds = generate(10, cfg);
  EXPECT_EQ(ds.size(), 10u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_FALSE(ds[i].empty());
  }
}

TEST(Generator, DnaDatasets) {
  GeneratorConfig cfg;
  cfg.dna = true;
  cfg.lengths = LengthModel{"t", 6.0, 0.3, 100, 2000};
  cfg.seed = 5;
  const Dataset ds = generate(10, cfg);
  EXPECT_EQ(&ds.alphabet(), &Alphabet::dna());
  for (const Sequence& s : ds) {
    for (const char c : s.to_string()) {
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
    }
  }
}

TEST(Mutate, IdentityLimits) {
  std::mt19937_64 rng(6);
  const Sequence parent = Sequence("p", std::string(200, 'W'), Alphabet::protein());
  MutationModel none;
  none.substitution_rate = 0.0;
  none.indel_rate = 0.0;
  const Sequence same = mutate(parent, none, ResidueModel::protein(), rng, "c");
  EXPECT_EQ(same.to_string(), parent.to_string());

  MutationModel all;
  all.substitution_rate = 1.0;
  all.indel_rate = 0.0;
  const Sequence scrambled = mutate(parent, all, ResidueModel::protein(), rng, "c2");
  EXPECT_EQ(scrambled.size(), parent.size());
  int same_count = 0;
  const std::string sc = scrambled.to_string();
  for (char c : sc) {
    if (c == 'W') ++same_count;
  }
  // W has ~1% background frequency; nearly all positions change.
  EXPECT_LT(same_count, 20);
}

TEST(Mutate, IndelsChangeLength) {
  std::mt19937_64 rng(7);
  const Sequence parent = Sequence("p", std::string(500, 'A'), Alphabet::protein());
  MutationModel indel;
  indel.substitution_rate = 0.0;
  indel.indel_rate = 0.2;
  bool changed = false;
  for (int i = 0; i < 5; ++i) {
    const Sequence child = mutate(parent, indel, ResidueModel::protein(), rng, "c");
    if (child.size() != parent.size()) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(ResidueModel, ProteinCodesInRange) {
  std::mt19937_64 rng(8);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(ResidueModel::protein().sample(rng), 20);
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(ResidueModel::dna().sample(rng), 4);
  }
}

}  // namespace
}  // namespace valign::workload
