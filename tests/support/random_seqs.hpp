// Shared helpers for randomized alignment tests.
#pragma once

#include <random>
#include <vector>

#include "valign/io/sequence.hpp"

namespace valign::testing_support {

/// Random protein codes over the 20 standard residues.
inline std::vector<std::uint8_t> random_codes(std::size_t n, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> d(0, 19);
  std::vector<std::uint8_t> v(n);
  for (auto& c : v) c = static_cast<std::uint8_t>(d(rng));
  return v;
}

inline Sequence random_protein(std::string name, std::size_t n, std::mt19937_64& rng) {
  return Sequence(std::move(name), random_codes(n, rng), Alphabet::protein());
}

/// A pair with a planted strong local similarity: `core` is copied into both.
inline std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>
related_pair(std::size_t qlen, std::size_t dlen, std::size_t core_len,
             std::mt19937_64& rng) {
  auto q = random_codes(qlen, rng);
  auto d = random_codes(dlen, rng);
  const auto core = random_codes(core_len, rng);
  if (core_len <= qlen && core_len <= dlen) {
    std::uniform_int_distribution<std::size_t> qoff(0, qlen - core_len);
    std::uniform_int_distribution<std::size_t> doff(0, dlen - core_len);
    std::copy(core.begin(), core.end(), q.begin() + static_cast<std::ptrdiff_t>(qoff(rng)));
    std::copy(core.begin(), core.end(), d.begin() + static_cast<std::ptrdiff_t>(doff(rng)));
  }
  return {std::move(q), std::move(d)};
}

}  // namespace valign::testing_support
