// Operation counters and the counting vector wrapper — the machinery behind
// the Table II/III and Fig. 3 reproductions.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"
#include "valign/instrument/counting_vec.hpp"

namespace valign {
namespace {

namespace ins = instrument;
using CV16 = ins::CountingVec<simd::VEmul<std::int16_t, 8>>;
using testing_support::random_codes;

TEST(Counters, ResetAndSnapshot) {
  ins::reset();
  EXPECT_EQ(ins::snapshot().instruction_refs(), 0u);
  ins::count(ins::OpCategory::VecArith, 5);
  ins::count(ins::OpCategory::ScalarBranch, 2);
  const ins::OpCounts c = ins::snapshot();
  EXPECT_EQ(c[ins::OpCategory::VecArith], 5u);
  EXPECT_EQ(c[ins::OpCategory::ScalarBranch], 2u);
  EXPECT_EQ(c.vector_total(), 5u);
  EXPECT_EQ(c.scalar_total(), 2u);
  EXPECT_EQ(c.instruction_refs(), 7u);
  ins::reset();
  EXPECT_EQ(ins::snapshot().instruction_refs(), 0u);
}

TEST(Counters, AccumulateAndSummary) {
  ins::OpCounts a, b;
  a.by_category[0] = 3;
  b.by_category[0] = 4;
  a += b;
  EXPECT_EQ(a.by_category[0], 7u);
  EXPECT_NE(a.summary().find("vec-arith=7"), std::string::npos);
}

TEST(CountingVec, TalliesEveryCategory) {
  ins::reset();
  alignas(64) std::int16_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const CV16 a = CV16::load(buf);        // 1 vec-memory
  const CV16 b = CV16::broadcast(3);     // 1 vec-swizzle
  const CV16 c = CV16::adds(a, b);       // 1 vec-arith
  const CV16 d = CV16::max(c, a);        // 1 vec-compare
  (void)CV16::any_gt(d, a);              // 1 vec-compare + 1 vec-mask
  d.store(buf);                          // 1 vec-memory
  (void)CV16::shift_in(d, 0);            // 1 vec-swizzle
  const ins::OpCounts counts = ins::snapshot();
  EXPECT_EQ(counts[ins::OpCategory::VecMemory], 2u);
  EXPECT_EQ(counts[ins::OpCategory::VecArith], 1u);
  EXPECT_EQ(counts[ins::OpCategory::VecCompare], 2u);
  EXPECT_EQ(counts[ins::OpCategory::VecMask], 1u);
  EXPECT_EQ(counts[ins::OpCategory::VecSwizzle], 2u);
  EXPECT_EQ(counts.data_refs(), 2u);
}

TEST(CountingVec, SemanticsAreTransparent) {
  using V = simd::VEmul<std::int16_t, 8>;
  alignas(64) std::int16_t buf[8] = {-5, 0, 5, 100, -100, 32767, -32768, 1};
  const auto got = CV16::adds(CV16::load(buf), CV16::broadcast(10));
  const auto want = V::adds(V::load(buf), V::broadcast(10));
  alignas(64) std::int16_t g[8], w[8];
  got.store(g);
  want.store(w);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(g[i], w[i]);
  EXPECT_EQ(got.hmax(), want.hmax());
}

TEST(CountingVec, IsCountingTrait) {
  EXPECT_TRUE((ins::is_counting_v<CV16>));
  EXPECT_FALSE((ins::is_counting_v<simd::VEmul<std::int16_t, 8>>));
}

// --- The Fig. 3 signal: instrumented engines show the paper's mix ------------

template <template <AlignClass, class> class Engine, AlignClass C>
ins::OpCounts census(std::span<const std::uint8_t> q, std::span<const std::uint8_t> d) {
  using CV = ins::CountingVec<simd::VEmul<std::int32_t, 16>>;
  Engine<C, CV> eng(ScoreMatrix::blosum62(), GapPenalty{11, 1});
  eng.set_query(q);
  ins::reset();
  (void)eng.align(d);
  return ins::snapshot();
}

TEST(InstrumentedEngines, StripedCreatesMasksScanDoesNot) {
  std::mt19937_64 rng(42);
  const auto q = random_codes(300, rng);
  const auto d = random_codes(300, rng);
  const auto striped = census<StripedAligner, AlignClass::Local>(q, d);
  const auto scan = census<ScanAligner, AlignClass::Local>(q, d);
  // "Striped is the only one of the two that uses vector mask creation."
  EXPECT_GT(striped[ins::OpCategory::VecMask], 0u);
  EXPECT_EQ(scan[ins::OpCategory::VecMask], 0u);
  // "Scan uses more vector memory and swizzle operations."
  EXPECT_GT(scan[ins::OpCategory::VecSwizzle], striped[ins::OpCategory::VecSwizzle]);
}

TEST(InstrumentedEngines, StripedDoesMoreScalarWorkOnHomologyWorkload) {
  // Fig. 3's "Striped performs more scalar operations" was measured on the
  // homology detection problem, where the corrective loop fires constantly
  // (NW: C ~ 5 at 16 lanes). Reproduce on a homolog-containing pair.
  std::mt19937_64 rng(45);
  const auto [q, d] = testing_support::related_pair(300, 300, 150, rng);
  const auto nw_striped = census<StripedAligner, AlignClass::Global>(q, d);
  const auto nw_scan = census<ScanAligner, AlignClass::Global>(q, d);
  EXPECT_GT(nw_striped.scalar_total(), nw_scan.scalar_total());
  const auto sg_striped = census<StripedAligner, AlignClass::SemiGlobal>(q, d);
  const auto sg_scan = census<ScanAligner, AlignClass::SemiGlobal>(q, d);
  EXPECT_GT(sg_striped.scalar_total(), sg_scan.scalar_total());
}

TEST(InstrumentedEngines, NwStripedDoesTheMostWork) {
  std::mt19937_64 rng(43);
  const auto q = random_codes(250, rng);
  const auto d = random_codes(250, rng);
  const auto nw_striped = census<StripedAligner, AlignClass::Global>(q, d);
  const auto nw_scan = census<ScanAligner, AlignClass::Global>(q, d);
  const auto sw_striped = census<StripedAligner, AlignClass::Local>(q, d);
  const auto sw_scan = census<ScanAligner, AlignClass::Local>(q, d);
  // "NW Striped executes more instructions relative to any other case."
  EXPECT_GT(nw_striped.instruction_refs(), nw_scan.instruction_refs());
  EXPECT_GT(nw_striped.instruction_refs(), sw_striped.instruction_refs());
  EXPECT_GT(nw_striped.instruction_refs(), sw_scan.instruction_refs());
}

TEST(InstrumentedEngines, ScanCountsAreClassInsensitive) {
  // "For each category of instructions, Scan rarely varies between the three
  // classes of alignments performed."
  std::mt19937_64 rng(44);
  const auto q = random_codes(200, rng);
  const auto d = random_codes(200, rng);
  const auto nw = census<ScanAligner, AlignClass::Global>(q, d);
  const auto sg = census<ScanAligner, AlignClass::SemiGlobal>(q, d);
  const auto sw = census<ScanAligner, AlignClass::Local>(q, d);
  const auto near = [](std::uint64_t a, std::uint64_t b) {
    const double hi = static_cast<double>(std::max(a, b));
    const double lo = static_cast<double>(std::min(a, b));
    return lo / hi > 0.85;  // within 15%
  };
  EXPECT_TRUE(near(nw.vector_total(), sg.vector_total()));
  EXPECT_TRUE(near(nw.vector_total(), sw.vector_total()));
}

}  // namespace
}  // namespace valign
