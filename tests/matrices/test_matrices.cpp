// Substitution matrix data integrity and the NCBI-format parser.
#include <gtest/gtest.h>

#include "valign/matrices/matrix.hpp"
#include "valign/matrices/parser.hpp"

namespace valign {
namespace {

class BuiltinMatrixTest : public ::testing::TestWithParam<const ScoreMatrix*> {};

INSTANTIATE_TEST_SUITE_P(AllBuiltins, BuiltinMatrixTest,
                         ::testing::ValuesIn(ScoreMatrix::builtins().begin(),
                                             ScoreMatrix::builtins().end()),
                         [](const auto& info) { return info.param->name(); });

TEST_P(BuiltinMatrixTest, IsSymmetric) { EXPECT_TRUE(GetParam()->symmetric()); }

TEST_P(BuiltinMatrixTest, Has24LetterAlphabet) {
  EXPECT_EQ(GetParam()->size(), 24);
  EXPECT_EQ(GetParam()->alphabet().letters(), "ARNDCQEGHILKMFPSTWYVBZX*");
}

TEST_P(BuiltinMatrixTest, DiagonalIsRowMaximum) {
  const ScoreMatrix& m = *GetParam();
  // Every residue scores itself at least as high as any substitution
  // (true for all BLOSUM matrices over the 20 standard residues).
  for (int a = 0; a < 20; ++a) {
    for (int b = 0; b < 20; ++b) {
      EXPECT_LE(m.score(a, b), m.score(a, a))
          << m.name() << " " << m.alphabet().decode(a) << "/"
          << m.alphabet().decode(b);
    }
  }
}

TEST_P(BuiltinMatrixTest, ScoreRangeCached) {
  const ScoreMatrix& m = *GetParam();
  std::int8_t lo = 127, hi = -128;
  for (int a = 0; a < m.size(); ++a) {
    for (int b = 0; b < m.size(); ++b) {
      lo = std::min(lo, m.score(a, b));
      hi = std::max(hi, m.score(a, b));
    }
  }
  EXPECT_EQ(m.min_score(), lo);
  EXPECT_EQ(m.max_score(), hi);
}

TEST_P(BuiltinMatrixTest, GapDefaultsArePositiveMagnitudes) {
  const GapPenalty g = GetParam()->default_gaps();
  EXPECT_GT(g.open, 0);
  EXPECT_GT(g.extend, 0);
  EXPECT_GE(g.open, g.extend);
}

TEST(ScoreMatrix, Blosum62PublishedSpotValues) {
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  EXPECT_EQ(m.score_chars('W', 'W'), 11);
  EXPECT_EQ(m.score_chars('C', 'C'), 9);
  EXPECT_EQ(m.score_chars('A', 'A'), 4);
  EXPECT_EQ(m.score_chars('R', 'K'), 2);
  EXPECT_EQ(m.score_chars('W', 'A'), -3);
  EXPECT_EQ(m.score_chars('E', 'Z'), 4);
  EXPECT_EQ(m.default_gaps().open, 11);
  EXPECT_EQ(m.default_gaps().extend, 1);
}

TEST(ScoreMatrix, Blosum45and90SpotValues) {
  EXPECT_EQ(ScoreMatrix::blosum45().score_chars('W', 'W'), 15);
  EXPECT_EQ(ScoreMatrix::blosum50().score_chars('W', 'W'), 15);
  EXPECT_EQ(ScoreMatrix::blosum90().score_chars('W', 'W'), 11);
  EXPECT_EQ(ScoreMatrix::blosum45().default_gaps().open, 15);
  EXPECT_EQ(ScoreMatrix::blosum45().default_gaps().extend, 2);
  EXPECT_EQ(ScoreMatrix::blosum50().default_gaps().open, 13);
  EXPECT_EQ(ScoreMatrix::blosum80().default_gaps().open, 10);
}

TEST(ScoreMatrix, FromNameIsCaseInsensitive) {
  EXPECT_EQ(&ScoreMatrix::from_name("blosum62"), &ScoreMatrix::blosum62());
  EXPECT_EQ(&ScoreMatrix::from_name("BLOSUM80"), &ScoreMatrix::blosum80());
  EXPECT_THROW((void)ScoreMatrix::from_name("pam999"), Error);
}

TEST(ScoreMatrix, DnaMatrix) {
  const ScoreMatrix m = ScoreMatrix::dna(2, 3);
  EXPECT_EQ(m.score_chars('A', 'A'), 2);
  EXPECT_EQ(m.score_chars('A', 'C'), -3);
  EXPECT_EQ(m.score_chars('A', 'N'), 0);
  EXPECT_EQ(m.score_chars('N', 'N'), 0);
  EXPECT_TRUE(m.symmetric());
}

TEST(ScoreMatrix, ScoreCharsRejectsNonAlphabet) {
  // '1' is not alphabetic, so the protein wildcard does not absorb it.
  EXPECT_THROW((void)ScoreMatrix::blosum62().score_chars('1', 'A'), Error);
}

TEST(MatrixParser, ParsesMinimalMatrix) {
  const ScoreMatrix m = parse_ncbi_matrix(
      "# tiny\n"
      "   A  B\n"
      "A  1 -2\n"
      "B -2  3\n",
      "tiny", GapPenalty{5, 1});
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.score_chars('A', 'A'), 1);
  EXPECT_EQ(m.score_chars('B', 'B'), 3);
  EXPECT_EQ(m.score_chars('a', 'b'), -2);  // case-insensitive encode
  EXPECT_TRUE(m.symmetric());
}

TEST(MatrixParser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_ncbi_matrix("", "x", {}), Error);
  EXPECT_THROW((void)parse_ncbi_matrix("# only comments\n", "x", {}), Error);
  // Row label mismatch.
  EXPECT_THROW((void)parse_ncbi_matrix("   A  B\nB 1 2\nA 2 1\n", "x", {}), Error);
  // Too few columns.
  EXPECT_THROW((void)parse_ncbi_matrix("   A  B\nA 1\nB 1 2\n", "x", {}), Error);
  // Too many columns.
  EXPECT_THROW((void)parse_ncbi_matrix("   A  B\nA 1 2 3\nB 1 2\n", "x", {}), Error);
  // Missing rows.
  EXPECT_THROW((void)parse_ncbi_matrix("   A  B\nA 1 2\n", "x", {}), Error);
  // Score out of int8 range.
  EXPECT_THROW((void)parse_ncbi_matrix("   A\nA 1000\n", "x", {}), Error);
  // Multi-character header token.
  EXPECT_THROW((void)parse_ncbi_matrix("   AB\nA 1\n", "x", {}), Error);
}

TEST(MatrixParser, FormatRoundTrips) {
  const ScoreMatrix& orig = ScoreMatrix::blosum62();
  const std::string text = format_ncbi_matrix(orig);
  const ScoreMatrix back = parse_ncbi_matrix(text, "blosum62", orig.default_gaps());
  ASSERT_EQ(back.size(), orig.size());
  for (int a = 0; a < orig.size(); ++a) {
    for (int b = 0; b < orig.size(); ++b) {
      EXPECT_EQ(back.score(a, b), orig.score(a, b));
    }
  }
  EXPECT_EQ(back.alphabet().letters(), orig.alphabet().letters());
}

}  // namespace
}  // namespace valign
