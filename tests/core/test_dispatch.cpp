// Public API: Options resolution, ISA/width dispatch, overflow retry,
// the Table IV prescriptive selector, and error paths.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/core/calibrate.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/scalar.hpp"

namespace valign {
namespace {

using testing_support::random_codes;
using testing_support::related_pair;

class DispatchClassTest : public ::testing::TestWithParam<AlignClass> {};
INSTANTIATE_TEST_SUITE_P(AllClasses, DispatchClassTest,
                         ::testing::Values(AlignClass::Global,
                                           AlignClass::SemiGlobal,
                                           AlignClass::Local),
                         [](const auto& info) { return to_string(info.param); });

TEST_P(DispatchClassTest, AutoEverythingMatchesScalar) {
  std::mt19937_64 rng(1);
  Options opts;
  opts.klass = GetParam();
  Aligner aligner(opts);
  for (int i = 0; i < 20; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 250);
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    aligner.set_query(q);
    const AlignResult got = aligner.align(d);
    const AlignResult want =
        align_scalar(GetParam(), aligner.matrix(), aligner.gap(), q, d);
    EXPECT_EQ(got.score, want.score) << "iter " << i;
    EXPECT_FALSE(got.overflowed);  // Auto width must resolve overflow itself
  }
}

TEST_P(DispatchClassTest, EveryRequestedApproachAgrees) {
  std::mt19937_64 rng(2);
  const auto q = random_codes(120, rng);
  const auto d = random_codes(150, rng);
  const AlignResult want = align_scalar(GetParam(), ScoreMatrix::blosum62(),
                                        ScoreMatrix::blosum62().default_gaps(), q, d);
  for (const Approach a : {Approach::Scalar, Approach::Blocked, Approach::Diagonal,
                           Approach::Striped, Approach::Scan}) {
    Options opts;
    opts.klass = GetParam();
    opts.approach = a;
    opts.width = ElemWidth::W32;
    Aligner aligner(opts);
    aligner.set_query(q);
    EXPECT_EQ(aligner.align(d).score, want.score) << to_string(a);
  }
}

TEST(Dispatch, EveryAvailableIsaAgrees) {
  std::mt19937_64 rng(3);
  const auto q = random_codes(90, rng);
  const auto d = random_codes(110, rng);
  const AlignResult want = align_scalar(AlignClass::Local, ScoreMatrix::blosum62(),
                                        {11, 1}, q, d);
  for (const Isa isa : {Isa::Emul, Isa::SSE41, Isa::AVX2, Isa::AVX512}) {
    if (!simd::isa_available(isa)) continue;
    Options opts;
    opts.klass = AlignClass::Local;
    opts.approach = Approach::Scan;
    opts.isa = isa;
    opts.gap = {11, 1};
    Aligner aligner(opts);
    aligner.set_query(q);
    const AlignResult r = aligner.align(d);
    EXPECT_EQ(r.score, want.score) << to_string(isa);
    EXPECT_EQ(r.isa, isa);
  }
}

TEST(Dispatch, EmulLaneCounts) {
  std::mt19937_64 rng(4);
  const auto q = random_codes(100, rng);
  const auto d = random_codes(100, rng);
  const AlignResult want =
      align_scalar(AlignClass::SemiGlobal, ScoreMatrix::blosum62(), {11, 1}, q, d);
  for (const int lanes : {4, 8, 16, 32, 64}) {
    Options opts;
    opts.klass = AlignClass::SemiGlobal;
    opts.approach = Approach::Striped;
    opts.isa = Isa::Emul;
    opts.emul_lanes = lanes;
    opts.gap = {11, 1};
    Aligner aligner(opts);
    aligner.set_query(q);
    const AlignResult r = aligner.align(d);
    EXPECT_EQ(r.score, want.score) << lanes << " lanes";
    EXPECT_EQ(r.lanes, lanes);
  }
}

TEST(Dispatch, OverflowRetryWidensAutomatically) {
  // A long self-alignment scores ~5*len, far beyond int8 and int16 for
  // len = 8000 (score ~40000), forcing the ladder up to 32 bits.
  std::mt19937_64 rng(5);
  const auto q = random_codes(8000, rng);
  Options opts;
  opts.klass = AlignClass::Local;
  opts.approach = Approach::Striped;
  Aligner aligner(opts);
  aligner.set_query(q);
  const AlignResult r = aligner.align(q);
  EXPECT_FALSE(r.overflowed);
  EXPECT_EQ(r.bits, 32);
  EXPECT_GT(r.score, 32767);
}

TEST(Dispatch, FixedNarrowWidthReportsOverflow) {
  std::mt19937_64 rng(6);
  const auto q = random_codes(2000, rng);
  Options opts;
  opts.klass = AlignClass::Local;
  opts.approach = Approach::Scan;
  opts.width = ElemWidth::W8;
  if (!simd::isa_available(simd::best_isa()) || simd::best_isa() == Isa::Emul) {
    GTEST_SKIP() << "no native ISA for 8-bit";
  }
  Aligner aligner(opts);
  aligner.set_query(q);
  const AlignResult r = aligner.align(q);
  EXPECT_TRUE(r.overflowed);  // user pinned the width; we must not lie
}

TEST(Dispatch, WidthIsSafeRules) {
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  // Local is always allowed to try narrow widths.
  EXPECT_TRUE(width_is_safe(AlignClass::Local, 8, 100000, 100000, {11, 1}, m));
  // Global on tiny inputs fits 8-bit...
  EXPECT_TRUE(width_is_safe(AlignClass::Global, 8, 10, 10, {11, 1}, m));
  // ...but not on long ones (negative excursion).
  EXPECT_FALSE(width_is_safe(AlignClass::Global, 8, 200, 200, {11, 1}, m));
  // 16-bit holds considerably longer sequences.
  EXPECT_TRUE(width_is_safe(AlignClass::SemiGlobal, 16, 2000, 2000, {11, 1}, m));
  // BLOSUM62's worst mismatch is -4, so a gap-extend of 5 dominates:
  // 2*11 + 8000*5 = 40,022 exceeds the int16 range.
  EXPECT_FALSE(width_is_safe(AlignClass::SemiGlobal, 16, 4000, 4000, {11, 5}, m));
  // 32-bit always qualifies.
  EXPECT_TRUE(width_is_safe(AlignClass::Global, 32, 1000000, 1000000, {11, 1}, m));
}

TEST(Dispatch, DefaultsComeFromMatrix) {
  Options opts;
  opts.matrix = &ScoreMatrix::blosum45();
  Aligner aligner(opts);
  EXPECT_EQ(aligner.gap().open, 15);
  EXPECT_EQ(aligner.gap().extend, 2);
  Options opts2;
  opts2.matrix = &ScoreMatrix::blosum45();
  opts2.gap = {7, 3};
  Aligner a2(opts2);
  EXPECT_EQ(a2.gap().open, 7);
  EXPECT_EQ(a2.gap().extend, 3);
}

TEST(Dispatch, SequenceOverloads) {
  const Sequence q("q", "MKTAYIAKQRWW", Alphabet::protein());
  const Sequence d("d", "MKTAYIAKQRWW", Alphabet::protein());
  const AlignResult r = align(q, d, Options{.klass = AlignClass::Global});
  std::int32_t want = 0;
  for (const std::uint8_t c : q.codes()) want += ScoreMatrix::blosum62().score(c, c);
  EXPECT_EQ(r.score, want);
}

TEST(Dispatch, RejectsUnavailableIsa) {
  // Emul never fails; fabricate failure via an unsupported emul width request.
  Options opts;
  opts.isa = Isa::Emul;
  opts.approach = Approach::Blocked;  // emul factory is striped/scan-only
  Aligner aligner(opts);
  aligner.set_query(std::vector<std::uint8_t>{0, 1, 2});
  EXPECT_THROW((void)aligner.align(std::vector<std::uint8_t>{0, 1, 2}), Error);
}

// --- Table IV prescriptive selection -----------------------------------------

TEST(Prescribe, MatchesTableIV) {
  // NW: Striped below ~149, Scan above; stable across lanes.
  EXPECT_EQ(prescribe(AlignClass::Global, 4, 100), Approach::Striped);
  EXPECT_EQ(prescribe(AlignClass::Global, 16, 100), Approach::Striped);
  EXPECT_EQ(prescribe(AlignClass::Global, 8, 200), Approach::Scan);
  // SG: Scan below the crossover, Striped above; crossover grows with lanes.
  EXPECT_EQ(prescribe(AlignClass::SemiGlobal, 4, 100), Approach::Scan);
  EXPECT_EQ(prescribe(AlignClass::SemiGlobal, 4, 150), Approach::Striped);
  EXPECT_EQ(prescribe(AlignClass::SemiGlobal, 16, 200), Approach::Scan);
  EXPECT_EQ(prescribe(AlignClass::SemiGlobal, 16, 300), Approach::Striped);
  // SW: Scan below, Striped above; 77/77/152.
  EXPECT_EQ(prescribe(AlignClass::Local, 4, 50), Approach::Scan);
  EXPECT_EQ(prescribe(AlignClass::Local, 8, 100), Approach::Striped);
  EXPECT_EQ(prescribe(AlignClass::Local, 16, 100), Approach::Scan);
  EXPECT_EQ(prescribe(AlignClass::Local, 16, 200), Approach::Striped);
}

TEST(Prescribe, CrossoversGrowWithLanesForLocal) {
  EXPECT_LE(prescribe_crossover(AlignClass::Local, 4),
            prescribe_crossover(AlignClass::Local, 8));
  EXPECT_LE(prescribe_crossover(AlignClass::Local, 8),
            prescribe_crossover(AlignClass::Local, 16));
  // NW crossover is flat (paper: "consistently ... around 150").
  EXPECT_EQ(prescribe_crossover(AlignClass::Global, 4),
            prescribe_crossover(AlignClass::Global, 16));
  // Lane counts outside the measured set clamp to the nearest column.
  EXPECT_EQ(prescribe_crossover(AlignClass::Local, 32),
            prescribe_crossover(AlignClass::Local, 16));
  EXPECT_EQ(prescribe_crossover(AlignClass::Local, 2),
            prescribe_crossover(AlignClass::Local, 4));
}

TEST(Dispatch, AutoApproachFollowsEngineModel) {
  // Approach::Auto resolves through an injected EngineModel ahead of any
  // PrescriptionTable (precedence: model > prescription > pinned()).
  std::mt19937_64 rng(7);
  Options opts;
  opts.klass = AlignClass::Local;
  opts.width = ElemWidth::W32;
  EngineModel model;
  for (auto& row : model.cells)
    for (auto& c : row)
      c = {Approach::Scan, Approach::Deconstructed, 120};
  opts.model = &model;
  Aligner aligner(opts);
  {
    const auto q = random_codes(80, rng);
    aligner.set_query(q);
    const AlignResult r = aligner.align(random_codes(100, rng));
    EXPECT_EQ(r.approach, Approach::Scan);
  }
  {
    const auto q = random_codes(200, rng);
    aligner.set_query(q);
    const AlignResult r = aligner.align(random_codes(100, rng));
    EXPECT_EQ(r.approach, Approach::Deconstructed);
  }
}

TEST(Dispatch, AutoApproachDefaultsToPinnedModel) {
  // With nothing injected, Auto follows EngineModel::pinned().
  std::mt19937_64 rng(11);
  Options opts;
  opts.klass = AlignClass::Local;
  opts.width = ElemWidth::W32;
  Aligner aligner(opts);
  const int lanes = simd::native_lanes(aligner.isa(), 32);
  const auto q = random_codes(90, rng);
  aligner.set_query(q);
  const AlignResult r = aligner.align(random_codes(100, rng));
  EXPECT_EQ(r.approach,
            EngineModel::pinned().choose(AlignClass::Local, lanes, q.size()));
}

}  // namespace
}  // namespace valign
