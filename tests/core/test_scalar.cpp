// Scalar engine invariants and the traceback engine.
//
// The scalar engine is the ground truth for everything else, so it is tested
// against first principles: hand-computed alignments, algebraic invariants,
// and consistency between the score-only and full-table implementations.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/core/scalar.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {
namespace {

using testing_support::random_codes;

const ScoreMatrix& b62() { return ScoreMatrix::blosum62(); }
constexpr GapPenalty kGap{11, 1};

Sequence prot(const char* s) { return Sequence("s", s, Alphabet::protein()); }

std::int32_t score_of(AlignClass c, const Sequence& q, const Sequence& d,
                      GapPenalty g = kGap) {
  return align_scalar(c, b62(), g, q.codes(), d.codes()).score;
}

TEST(Scalar, IdenticalSequencesScoreSumOfDiagonal) {
  const Sequence s = prot("MKTAYIAKQRQISFVK");
  std::int32_t want = 0;
  for (const std::uint8_t c : s.codes()) want += b62().score(c, c);
  EXPECT_EQ(score_of(AlignClass::Global, s, s), want);
  EXPECT_EQ(score_of(AlignClass::SemiGlobal, s, s), want);
  EXPECT_EQ(score_of(AlignClass::Local, s, s), want);
}

TEST(Scalar, SingleResiduePair) {
  const Sequence a = prot("W");
  const Sequence b = prot("W");
  const Sequence c = prot("P");
  EXPECT_EQ(score_of(AlignClass::Global, a, b), 11);  // W/W in BLOSUM62
  EXPECT_EQ(score_of(AlignClass::Local, a, c), 0);    // W/P = -4 -> empty local
  EXPECT_EQ(score_of(AlignClass::Global, a, c), -4);  // forced substitution
}

TEST(Scalar, GlobalGapCosts) {
  // Aligning WW against W: one residue must be deleted.
  const Sequence q = prot("WW");
  const Sequence d = prot("W");
  // Best: match W/W (11) plus a length-1 gap (-(11+1)).
  EXPECT_EQ(score_of(AlignClass::Global, q, d), 11 - 12);
}

TEST(Scalar, EmptyInputs) {
  const Sequence e("e", std::vector<std::uint8_t>{}, Alphabet::protein());
  const Sequence s = prot("MKT");
  EXPECT_EQ(score_of(AlignClass::Global, e, s), -(11 + 3));
  EXPECT_EQ(score_of(AlignClass::Global, s, e), -(11 + 3));
  EXPECT_EQ(score_of(AlignClass::Global, e, e), 0);
  EXPECT_EQ(score_of(AlignClass::SemiGlobal, e, s), 0);
  EXPECT_EQ(score_of(AlignClass::Local, s, e), 0);
}

TEST(Scalar, SemiGlobalIgnoresEndGaps) {
  // The query appears verbatim inside a longer database sequence: SG should
  // find the full-score overlap with no gap penalties.
  const Sequence q = prot("WCWHCW");
  const Sequence d = prot("AAAAAWCWHCWAAAAA");
  std::int32_t want = 0;
  for (const std::uint8_t c : q.codes()) want += b62().score(c, c);
  EXPECT_EQ(score_of(AlignClass::SemiGlobal, q, d), want);
  // Global must pay for the flanks.
  EXPECT_LT(score_of(AlignClass::Global, q, d), want);
}

TEST(Scalar, ClassOrderingInvariant) {
  // For any input pair: SW >= SG >= NW (each relaxes constraints).
  std::mt19937_64 rng(99);
  for (int i = 0; i < 50; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 120);
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    const auto nw = align_scalar(AlignClass::Global, b62(), kGap, q, d).score;
    const auto sg = align_scalar(AlignClass::SemiGlobal, b62(), kGap, q, d).score;
    const auto sw = align_scalar(AlignClass::Local, b62(), kGap, q, d).score;
    EXPECT_GE(sw, sg);
    EXPECT_GE(sg, nw);
    EXPECT_GE(sw, 0);
  }
}

TEST(Scalar, SymmetryUnderSwap) {
  // Symmetric matrix => score(q,d) == score(d,q) for all classes.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 30; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 100);
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    for (const AlignClass c :
         {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
      EXPECT_EQ(align_scalar(c, b62(), kGap, q, d).score,
                align_scalar(c, b62(), kGap, d, q).score);
    }
  }
}

TEST(Scalar, LocalScoreMonotoneInExtension) {
  // Appending residues can never lower a local score.
  std::mt19937_64 rng(21);
  auto q = random_codes(60, rng);
  const auto d = random_codes(80, rng);
  std::int32_t prev = 0;
  for (int grow = 0; grow < 10; ++grow) {
    const auto cur = align_scalar(AlignClass::Local, b62(), kGap, q, d).score;
    EXPECT_GE(cur, prev);
    prev = cur;
    const auto extra = random_codes(5, rng);
    q.insert(q.end(), extra.begin(), extra.end());
  }
}

TEST(Scalar, EndPositionsPointAtOptimum) {
  std::mt19937_64 rng(33);
  const auto [q, d] = testing_support::related_pair(90, 120, 30, rng);
  const auto r = align_scalar(AlignClass::Local, b62(), kGap, q, d);
  ASSERT_GE(r.query_end, 0);
  ASSERT_GE(r.db_end, 0);
  // Truncating just past the reported ends preserves the score.
  std::vector<std::uint8_t> qt(q.begin(), q.begin() + r.query_end + 1);
  std::vector<std::uint8_t> dt(d.begin(), d.begin() + r.db_end + 1);
  EXPECT_EQ(align_scalar(AlignClass::Local, b62(), kGap, qt, dt).score, r.score);
}

// --- Traceback ---------------------------------------------------------------

/// Re-scores a traceback's alignment strings; must reproduce tb.score.
std::int64_t rescore(const Traceback& tb, AlignClass klass, const ScoreMatrix& m,
                     GapPenalty g) {
  std::int64_t s = 0;
  bool in_gap_q = false, in_gap_d = false;
  for (std::size_t i = 0; i < tb.aligned_query.size(); ++i) {
    const char qc = tb.aligned_query[i];
    const char dc = tb.aligned_db[i];
    if (qc == '-') {
      s -= in_gap_q ? g.extend : (g.open + g.extend);
      in_gap_q = true;
      in_gap_d = false;
    } else if (dc == '-') {
      s -= in_gap_d ? g.extend : (g.open + g.extend);
      in_gap_d = true;
      in_gap_q = false;
    } else {
      s += m.score_chars(qc, dc);
      in_gap_q = in_gap_d = false;
    }
  }
  (void)klass;
  return s;
}

class TracebackTest : public ::testing::TestWithParam<AlignClass> {};
INSTANTIATE_TEST_SUITE_P(AllClasses, TracebackTest,
                         ::testing::Values(AlignClass::Global,
                                           AlignClass::SemiGlobal,
                                           AlignClass::Local),
                         [](const auto& info) { return to_string(info.param); });

TEST_P(TracebackTest, ScoreMatchesScoreOnlyEngine) {
  std::mt19937_64 rng(55);
  for (int i = 0; i < 40; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 90);
    const Sequence q = testing_support::random_protein("q", len(rng), rng);
    const Sequence d = testing_support::random_protein("d", len(rng), rng);
    const auto tb = align_traceback(GetParam(), b62(), kGap, q, d);
    const auto so = align_scalar(GetParam(), b62(), kGap, q.codes(), d.codes());
    EXPECT_EQ(tb.score, so.score) << "iter " << i;
  }
}

TEST_P(TracebackTest, AlignmentStringsRescoreToReportedScore) {
  std::mt19937_64 rng(66);
  for (int i = 0; i < 40; ++i) {
    const auto [qv, dv] = testing_support::related_pair(70, 90, 25, rng);
    const Sequence q("q", qv, Alphabet::protein());
    const Sequence d("d", dv, Alphabet::protein());
    const auto tb = align_traceback(GetParam(), b62(), kGap, q, d);
    ASSERT_EQ(tb.aligned_query.size(), tb.aligned_db.size());
    ASSERT_EQ(tb.aligned_query.size(), tb.midline.size());
    if (GetParam() == AlignClass::Global) {
      EXPECT_EQ(rescore(tb, GetParam(), b62(), kGap), tb.score);
    } else {
      // SG/SW: the free outer gaps are not part of the alignment strings.
      EXPECT_EQ(rescore(tb, GetParam(), b62(), kGap), tb.score);
    }
  }
}

TEST_P(TracebackTest, CoordinatesConsistentWithStrings) {
  std::mt19937_64 rng(77);
  const auto [qv, dv] = testing_support::related_pair(60, 80, 20, rng);
  const Sequence q("q", qv, Alphabet::protein());
  const Sequence d("d", dv, Alphabet::protein());
  const auto tb = align_traceback(GetParam(), b62(), kGap, q, d);
  std::size_t q_res = 0, d_res = 0;
  for (char c : tb.aligned_query)
    if (c != '-') ++q_res;
  for (char c : tb.aligned_db)
    if (c != '-') ++d_res;
  EXPECT_EQ(static_cast<std::int64_t>(q_res),
            std::int64_t{tb.query_end} - tb.query_begin + 1);
  EXPECT_EQ(static_cast<std::int64_t>(d_res),
            std::int64_t{tb.db_end} - tb.db_begin + 1);
  EXPECT_EQ(tb.matches + tb.mismatches + tb.gap_cols, tb.aligned_query.size());
}

TEST(Traceback, GlobalCoversWholeSequences) {
  std::mt19937_64 rng(88);
  const Sequence q = testing_support::random_protein("q", 40, rng);
  const Sequence d = testing_support::random_protein("d", 55, rng);
  const auto tb = align_traceback(AlignClass::Global, b62(), kGap, q, d);
  EXPECT_EQ(tb.query_begin, 0);
  EXPECT_EQ(tb.db_begin, 0);
  EXPECT_EQ(tb.query_end, 39);
  EXPECT_EQ(tb.db_end, 54);
}

TEST(Traceback, PerfectLocalAlignmentIsAllMatches) {
  const Sequence s("s", "WCWHCWKY", Alphabet::protein());
  const auto tb = align_traceback(AlignClass::Local, b62(), kGap, s, s);
  EXPECT_EQ(tb.matches, 8u);
  EXPECT_EQ(tb.mismatches, 0u);
  EXPECT_EQ(tb.gap_cols, 0u);
  EXPECT_DOUBLE_EQ(tb.identity(), 1.0);
  EXPECT_EQ(tb.cigar, "8M");
}

TEST(Traceback, CigarEncodesGaps) {
  // WW vs W: global alignment must contain exactly one D (gap in db).
  const Sequence q("q", "WW", Alphabet::protein());
  const Sequence d("d", "W", Alphabet::protein());
  const auto tb = align_traceback(AlignClass::Global, b62(), kGap, q, d);
  std::size_t d_count = 0;
  for (char c : tb.cigar)
    if (c == 'D') ++d_count;
  EXPECT_EQ(d_count, 1u);
  EXPECT_EQ(tb.score, 11 - 12);
}

TEST(Traceback, RespectsCellLimit) {
  std::mt19937_64 rng(5);
  const Sequence q = testing_support::random_protein("q", 100, rng);
  const Sequence d = testing_support::random_protein("d", 100, rng);
  EXPECT_THROW((void)align_traceback(AlignClass::Global, b62(), kGap, q, d,
                                     SemiGlobalEnds{}, /*max_cells=*/100),
               Error);
}

}  // namespace
}  // namespace valign
