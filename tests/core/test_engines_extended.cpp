// Extended engine properties: golden regression scores, DNA alphabet,
// engine reuse, degenerate shapes, adversarial correction workloads, and
// linear-gap limits — the long tail beyond the core differential suite.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/core/blocked.hpp"
#include "valign/core/diagonal.hpp"
#include "valign/core/scalar.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {
namespace {

using simd::VEmul;
using testing_support::random_codes;

const ScoreMatrix& b62() { return ScoreMatrix::blosum62(); }
constexpr GapPenalty kGap{11, 1};

// --- Golden regression scores ------------------------------------------------
// Fixed inputs with hand-checkable optimal alignments. These protect against
// silent cross-version regressions that differential tests (which compare
// implementations to each other) cannot catch if the reference drifts too.

struct Golden {
  const char* q;
  const char* d;
  std::int32_t nw, sg, sw;
};

// Scores verified manually:
//  * identical pairs: sum of BLOSUM62 diagonal entries;
//  * "WW"/"W": one W match (11) minus a length-1 gap (12);
//  * disjoint alphabet halves: SW floors at 0, NW pays every substitution.
const Golden kGolden[] = {
    {"W", "W", 11, 11, 11},
    {"WW", "W", -1, 11, 11},
    {"MKTAYIAKQR", "MKTAYIAKQR", 49, 49, 49},
    // One substitution in the middle: Q->G at position 3 (Q/G = -2).
    {"MKQAYIAKQR", "MKGAYIAKQR", 49 - 5 - 2, 42, 42},
    // Prefix overlap: SG/SW take the common prefix, NW pays the tail gap.
    {"MKTAYI", "MKTAYIWWWW", 30 - (11 + 4), 30, 30},
    // Hydrophobic vs charged runs: everything mismatches.
    {"IIIII", "DDDDD", 5 * -3, 0, 0},
};

TEST(GoldenScores, ScalarEngine) {
  for (const Golden& g : kGolden) {
    const Sequence q("q", g.q, Alphabet::protein());
    const Sequence d("d", g.d, Alphabet::protein());
    EXPECT_EQ(align_scalar(AlignClass::Global, b62(), kGap, q.codes(), d.codes()).score,
              g.nw)
        << g.q << " / " << g.d;
    EXPECT_EQ(
        align_scalar(AlignClass::SemiGlobal, b62(), kGap, q.codes(), d.codes()).score,
        g.sg)
        << g.q << " / " << g.d;
    EXPECT_EQ(align_scalar(AlignClass::Local, b62(), kGap, q.codes(), d.codes()).score,
              g.sw)
        << g.q << " / " << g.d;
  }
}

TEST(GoldenScores, VectorEnginesAgree) {
  using V = VEmul<std::int32_t, 8>;
  for (const Golden& g : kGolden) {
    const Sequence q("q", g.q, Alphabet::protein());
    const Sequence d("d", g.d, Alphabet::protein());
    {
      StripedAligner<AlignClass::Global, V> e(b62(), kGap);
      e.set_query(q.codes());
      EXPECT_EQ(e.align(d.codes()).score, g.nw) << g.q;
    }
    {
      ScanAligner<AlignClass::SemiGlobal, V> e(b62(), kGap);
      e.set_query(q.codes());
      EXPECT_EQ(e.align(d.codes()).score, g.sg) << g.q;
    }
    {
      BlockedAligner<AlignClass::Local, V> e(b62(), kGap);
      e.set_query(q.codes());
      EXPECT_EQ(e.align(d.codes()).score, g.sw) << g.q;
    }
    {
      DiagonalAligner<AlignClass::Local, V> e(b62(), kGap);
      e.set_query(q.codes());
      EXPECT_EQ(e.align(d.codes()).score, g.sw) << g.q;
    }
  }
}

// --- DNA alphabet across every engine -----------------------------------------

TEST(DnaEngines, AllEnginesMatchScalar) {
  const ScoreMatrix dna = ScoreMatrix::dna(2, 3);
  const GapPenalty gap{10, 1};
  std::mt19937_64 rng(31);
  std::uniform_int_distribution<int> base(0, 3);
  using V = VEmul<std::int32_t, 16>;
  for (int iter = 0; iter < 6; ++iter) {
    std::uniform_int_distribution<std::size_t> len(1, 250);
    std::vector<std::uint8_t> q(len(rng)), d(len(rng));
    for (auto& c : q) c = static_cast<std::uint8_t>(base(rng));
    for (auto& c : d) c = static_cast<std::uint8_t>(base(rng));
    for (const AlignClass klass :
         {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
      const auto want = align_scalar(klass, dna, gap, q, d).score;
      AlignResult r1, r2;
      switch (klass) {
        case AlignClass::Global: {
          StripedAligner<AlignClass::Global, V> e1(dna, gap);
          ScanAligner<AlignClass::Global, V> e2(dna, gap);
          e1.set_query(q);
          e2.set_query(q);
          r1 = e1.align(d);
          r2 = e2.align(d);
          break;
        }
        case AlignClass::SemiGlobal: {
          StripedAligner<AlignClass::SemiGlobal, V> e1(dna, gap);
          ScanAligner<AlignClass::SemiGlobal, V> e2(dna, gap);
          e1.set_query(q);
          e2.set_query(q);
          r1 = e1.align(d);
          r2 = e2.align(d);
          break;
        }
        case AlignClass::Local: {
          StripedAligner<AlignClass::Local, V> e1(dna, gap);
          ScanAligner<AlignClass::Local, V> e2(dna, gap);
          e1.set_query(q);
          e2.set_query(q);
          r1 = e1.align(d);
          r2 = e2.align(d);
          break;
        }
      }
      EXPECT_EQ(r1.score, want) << "striped " << to_string(klass) << " iter " << iter;
      EXPECT_EQ(r2.score, want) << "scan " << to_string(klass) << " iter " << iter;
    }
  }
}

TEST(DnaEngines, WildcardNeverHelpsNorHurts) {
  // N scores 0 against everything, so replacing residues with N can only
  // lower (or keep) a local score, never raise it.
  const ScoreMatrix dna = ScoreMatrix::dna(2, 3);
  std::mt19937_64 rng(32);
  std::uniform_int_distribution<int> base(0, 3);
  std::vector<std::uint8_t> q(120), d(120);
  for (auto& c : q) c = static_cast<std::uint8_t>(base(rng));
  d = q;  // identical pair
  const auto full = align_scalar(AlignClass::Local, dna, {10, 1}, q, d).score;
  auto qn = q;
  for (std::size_t i = 0; i < qn.size(); i += 3) qn[i] = 4;  // N
  const auto masked = align_scalar(AlignClass::Local, dna, {10, 1}, qn, d).score;
  EXPECT_LT(masked, full);
  EXPECT_GE(masked, 0);
}

// --- Engine reuse --------------------------------------------------------------

TEST(EngineReuse, SetQueryRepeatedlyWithShrinkingAndGrowingQueries) {
  using V = VEmul<std::int32_t, 8>;
  StripedAligner<AlignClass::Local, V> striped(b62(), kGap);
  ScanAligner<AlignClass::Local, V> scan(b62(), kGap);
  ScalarAligner<AlignClass::Local> ref(b62(), kGap);
  std::mt19937_64 rng(33);
  // Lengths deliberately zig-zag to stress buffer reuse.
  for (const std::size_t qlen : {200u, 10u, 500u, 1u, 64u, 63u, 65u}) {
    const auto q = random_codes(qlen, rng);
    const auto d = random_codes(150, rng);
    striped.set_query(q);
    scan.set_query(q);
    ref.set_query(q);
    const auto want = ref.align(d);
    EXPECT_EQ(striped.align(d).score, want.score) << qlen;
    EXPECT_EQ(scan.align(d).score, want.score) << qlen;
  }
}

TEST(EngineReuse, RepeatedAlignIsDeterministic) {
  using V = VEmul<std::int32_t, 8>;
  std::mt19937_64 rng(34);
  const auto q = random_codes(130, rng);
  const auto d = random_codes(170, rng);
  ScanAligner<AlignClass::SemiGlobal, V> eng(b62(), kGap);
  eng.set_query(q);
  const auto first = eng.align(d);
  for (int i = 0; i < 5; ++i) {
    const auto again = eng.align(d);
    EXPECT_EQ(again.score, first.score);
    EXPECT_EQ(again.query_end, first.query_end);
    EXPECT_EQ(again.db_end, first.db_end);
  }
}

// --- Degenerate shapes ---------------------------------------------------------

TEST(DegenerateShapes, OneByNAndNByOne) {
  using V = VEmul<std::int32_t, 4>;
  std::mt19937_64 rng(35);
  const auto lone = random_codes(1, rng);
  const auto seq = random_codes(333, rng);
  for (const AlignClass klass :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    const auto want1 = align_scalar(klass, b62(), kGap, lone, seq).score;
    const auto want2 = align_scalar(klass, b62(), kGap, seq, lone).score;
    switch (klass) {
      case AlignClass::Global: {
        StripedAligner<AlignClass::Global, V> e(b62(), kGap);
        e.set_query(lone);
        EXPECT_EQ(e.align(seq).score, want1);
        e.set_query(seq);
        EXPECT_EQ(e.align(lone).score, want2);
        break;
      }
      case AlignClass::SemiGlobal: {
        ScanAligner<AlignClass::SemiGlobal, V> e(b62(), kGap);
        e.set_query(lone);
        EXPECT_EQ(e.align(seq).score, want1);
        e.set_query(seq);
        EXPECT_EQ(e.align(lone).score, want2);
        break;
      }
      case AlignClass::Local: {
        BlockedAligner<AlignClass::Local, V> e(b62(), kGap);
        e.set_query(lone);
        EXPECT_EQ(e.align(seq).score, want1);
        e.set_query(seq);
        EXPECT_EQ(e.align(lone).score, want2);
        break;
      }
    }
  }
}

TEST(DegenerateShapes, UniformResidueRuns) {
  // Maximal-similarity degenerate inputs: poly-W against poly-W of a
  // different length exercises the pure-gap decision everywhere.
  using V = VEmul<std::int32_t, 8>;
  const std::vector<std::uint8_t> w40(40, static_cast<std::uint8_t>(
                                             Alphabet::protein().encode('W')));
  const std::vector<std::uint8_t> w25(25, static_cast<std::uint8_t>(
                                             Alphabet::protein().encode('W')));
  const auto want = align_scalar(AlignClass::Global, b62(), kGap, w40, w25).score;
  // 25 matches (11 each) minus one gap of length 15.
  EXPECT_EQ(want, 25 * 11 - (11 + 15));
  StripedAligner<AlignClass::Global, V> striped(b62(), kGap);
  ScanAligner<AlignClass::Global, V> scan(b62(), kGap);
  striped.set_query(w40);
  scan.set_query(w40);
  EXPECT_EQ(striped.align(w25).score, want);
  EXPECT_EQ(scan.align(w25).score, want);
}

// --- Adversarial correction workloads ------------------------------------------

TEST(Adversarial, GapLadderMaximizesStripedCorrections) {
  // A query whose optimum threads long vertical gaps: high-scoring residues
  // at stripe-boundary-crossing spacings force the lazy-F loop to carry F
  // across many lanes. Striped must stay exact regardless.
  using V = VEmul<std::int32_t, 16>;
  const std::uint8_t W = static_cast<std::uint8_t>(Alphabet::protein().encode('W'));
  const std::uint8_t A = static_cast<std::uint8_t>(Alphabet::protein().encode('A'));
  std::vector<std::uint8_t> q(320, A);
  for (std::size_t i = 0; i < q.size(); i += 20) q[i] = W;
  std::vector<std::uint8_t> d(40, W);

  StripedAligner<AlignClass::Global, V> striped(b62(), GapPenalty{1, 0});
  ScalarAligner<AlignClass::Global> ref(b62(), GapPenalty{1, 0});
  striped.set_query(q);
  ref.set_query(q);
  const auto rs = striped.align(d);
  EXPECT_EQ(rs.score, ref.align(d).score);
  // The corrective loop really fired — heavily.
  EXPECT_GT(rs.stats.corrective_epochs, rs.stats.main_epochs / 4);
}

TEST(Adversarial, ZeroOpenGapsAcrossEngines) {
  // o = 0 makes gaps linear and maximally attractive; every engine's
  // open/extend bookkeeping must still agree with the ground truth.
  using V = VEmul<std::int32_t, 8>;
  std::mt19937_64 rng(36);
  const GapPenalty linear{0, 2};
  for (int iter = 0; iter < 6; ++iter) {
    const auto q = random_codes(90, rng);
    const auto d = random_codes(110, rng);
    const auto want = align_scalar(AlignClass::Local, b62(), linear, q, d).score;
    StripedAligner<AlignClass::Local, V> e1(b62(), linear);
    ScanAligner<AlignClass::Local, V> e2(b62(), linear);
    BlockedAligner<AlignClass::Local, V> e3(b62(), linear);
    DiagonalAligner<AlignClass::Local, V> e4(b62(), linear);
    e1.set_query(q);
    e2.set_query(q);
    e3.set_query(q);
    e4.set_query(q);
    EXPECT_EQ(e1.align(d).score, want) << iter;
    EXPECT_EQ(e2.align(d).score, want) << iter;
    EXPECT_EQ(e3.align(d).score, want) << iter;
    EXPECT_EQ(e4.align(d).score, want) << iter;
  }
}

TEST(Adversarial, HugeGapPenaltiesForbidGaps) {
  // With gaps priced beyond any possible match gain, NW degenerates into a
  // pure substitution alignment when lengths agree.
  using V = VEmul<std::int32_t, 8>;
  std::mt19937_64 rng(37);
  const auto q = random_codes(64, rng);
  const auto d = random_codes(64, rng);
  const GapPenalty huge{100, 20};
  std::int64_t diag = 0;
  for (std::size_t i = 0; i < q.size(); ++i) diag += b62().score(q[i], d[i]);
  const auto want = align_scalar(AlignClass::Global, b62(), huge, q, d).score;
  EXPECT_EQ(want, diag);
  ScanAligner<AlignClass::Global, V> scan(b62(), huge);
  scan.set_query(q);
  EXPECT_EQ(scan.align(d).score, want);
}

}  // namespace
}  // namespace valign
