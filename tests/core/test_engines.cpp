// Cross-engine property suite: every vector engine must reproduce the scalar
// ground truth for every alignment class, backend, element width and scoring
// scheme, and its work counters must satisfy the paper's complexity analysis.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/core/blocked.hpp"
#include "valign/core/diagonal.hpp"
#include "valign/core/scalar.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {
namespace {

using simd::V128;
using simd::V256;
using simd::V512;
using simd::VEmul;
using testing_support::random_codes;
using testing_support::related_pair;

template <class V>
class EngineVsScalarTest : public ::testing::Test {};

using Backends = ::testing::Types<
    VEmul<std::int32_t, 4>, VEmul<std::int32_t, 8>, VEmul<std::int16_t, 16>,
    VEmul<std::int16_t, 32>, VEmul<std::int16_t, 64>
#if defined(__SSE4_1__)
    ,
    V128<std::int16_t>, V128<std::int32_t>
#endif
#if defined(__AVX2__)
    ,
    V256<std::int16_t>, V256<std::int32_t>
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
    ,
    V512<std::int16_t>, V512<std::int32_t>
#endif
    >;
TYPED_TEST_SUITE(EngineVsScalarTest, Backends);

constexpr AlignClass kClasses[] = {AlignClass::Global, AlignClass::SemiGlobal,
                                   AlignClass::Local};

template <AlignClass C, class V, template <AlignClass, class> class Engine>
void sweep_vs_scalar(const ScoreMatrix& mat, GapPenalty gap, std::uint64_t seed,
                     int iters, std::size_t max_len, const char* tag) {
  Engine<C, V> eng(mat, gap);
  ScalarAligner<C> ref(mat, gap);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> len(1, max_len);
  for (int i = 0; i < iters; ++i) {
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    eng.set_query(q);
    ref.set_query(q);
    const AlignResult got = eng.align(d);
    if (got.overflowed) continue;  // narrow widths may legitimately bail
    const AlignResult want = ref.align(d);
    ASSERT_EQ(got.score, want.score)
        << tag << " " << to_string(C) << " iter " << i << " q=" << q.size()
        << " d=" << d.size();
  }
}

template <class V, template <AlignClass, class> class Engine>
void sweep_all_classes(const ScoreMatrix& mat, GapPenalty gap, std::uint64_t seed,
                       int iters, std::size_t max_len, const char* tag) {
  sweep_vs_scalar<AlignClass::Global, V, Engine>(mat, gap, seed, iters, max_len, tag);
  sweep_vs_scalar<AlignClass::SemiGlobal, V, Engine>(mat, gap, seed + 1, iters,
                                                     max_len, tag);
  sweep_vs_scalar<AlignClass::Local, V, Engine>(mat, gap, seed + 2, iters, max_len,
                                                tag);
}

TYPED_TEST(EngineVsScalarTest, StripedMatchesScalar) {
  sweep_all_classes<TypeParam, StripedAligner>(ScoreMatrix::blosum62(), {11, 1}, 101,
                                               10, 200, "striped");
}

TYPED_TEST(EngineVsScalarTest, ScanMatchesScalar) {
  sweep_all_classes<TypeParam, ScanAligner>(ScoreMatrix::blosum62(), {11, 1}, 202, 10,
                                            200, "scan");
}

TYPED_TEST(EngineVsScalarTest, BlockedMatchesScalar) {
  sweep_all_classes<TypeParam, BlockedAligner>(ScoreMatrix::blosum62(), {11, 1}, 303,
                                               8, 160, "blocked");
}

TYPED_TEST(EngineVsScalarTest, DiagonalMatchesScalar) {
  sweep_all_classes<TypeParam, DiagonalAligner>(ScoreMatrix::blosum62(), {11, 1}, 404,
                                                8, 160, "diagonal");
}

TYPED_TEST(EngineVsScalarTest, AlternativeScoringSchemes) {
  // Cheap gaps stress the corrective machinery (more, longer gaps win).
  sweep_all_classes<TypeParam, StripedAligner>(ScoreMatrix::blosum45(), {2, 1}, 505, 6,
                                               150, "striped-cheapgap");
  sweep_all_classes<TypeParam, ScanAligner>(ScoreMatrix::blosum45(), {2, 1}, 606, 6,
                                            150, "scan-cheapgap");
  // Zero extension (pure open cost per residue beyond the first).
  sweep_all_classes<TypeParam, StripedAligner>(ScoreMatrix::blosum90(), {8, 0}, 707, 6,
                                               120, "striped-e0");
  sweep_all_classes<TypeParam, ScanAligner>(ScoreMatrix::blosum90(), {8, 0}, 808, 6,
                                            120, "scan-e0");
}

TYPED_TEST(EngineVsScalarTest, PlantedHomologyPairs) {
  using V = TypeParam;
  std::mt19937_64 rng(909);
  StripedAligner<AlignClass::Local, V> striped(ScoreMatrix::blosum62(), {11, 1});
  ScanAligner<AlignClass::Local, V> scan(ScoreMatrix::blosum62(), {11, 1});
  ScalarAligner<AlignClass::Local> ref(ScoreMatrix::blosum62(), {11, 1});
  for (int i = 0; i < 10; ++i) {
    const auto [q, d] = related_pair(120, 150, 40, rng);
    striped.set_query(q);
    scan.set_query(q);
    ref.set_query(q);
    const auto want = ref.align(d);
    const auto r1 = striped.align(d);
    const auto r2 = scan.align(d);
    if (!r1.overflowed) EXPECT_EQ(r1.score, want.score);
    if (!r2.overflowed) EXPECT_EQ(r2.score, want.score);
    // A 40-residue identical core guarantees a strong hit.
    EXPECT_GT(want.score, 100);
  }
}

TYPED_TEST(EngineVsScalarTest, QueryShorterThanOneVector) {
  using V = TypeParam;
  std::mt19937_64 rng(111);
  for (std::size_t qlen : {std::size_t{1}, std::size_t{2},
                           static_cast<std::size_t>(V::lanes) - 1,
                           static_cast<std::size_t>(V::lanes)}) {
    if (qlen == 0) continue;
    const auto q = random_codes(qlen, rng);
    const auto d = random_codes(37, rng);
    for (const AlignClass c : kClasses) {
      const auto want = align_scalar(c, ScoreMatrix::blosum62(), {11, 1}, q, d);
      AlignResult got;
      switch (c) {
        case AlignClass::Global: {
          StripedAligner<AlignClass::Global, V> e(ScoreMatrix::blosum62(), {11, 1});
          e.set_query(q);
          got = e.align(d);
          break;
        }
        case AlignClass::SemiGlobal: {
          ScanAligner<AlignClass::SemiGlobal, V> e(ScoreMatrix::blosum62(), {11, 1});
          e.set_query(q);
          got = e.align(d);
          break;
        }
        case AlignClass::Local: {
          ScanAligner<AlignClass::Local, V> e(ScoreMatrix::blosum62(), {11, 1});
          e.set_query(q);
          got = e.align(d);
          break;
        }
      }
      if (!got.overflowed) EXPECT_EQ(got.score, want.score) << to_string(c);
    }
  }
}

TYPED_TEST(EngineVsScalarTest, EmptyInputs) {
  using V = TypeParam;
  const std::vector<std::uint8_t> empty;
  const std::vector<std::uint8_t> seq = {0, 1, 2, 3};
  StripedAligner<AlignClass::Global, V> nw(ScoreMatrix::blosum62(), {11, 1});
  nw.set_query(empty);
  EXPECT_EQ(nw.align(seq).score, -(11 + 4));
  nw.set_query(seq);
  EXPECT_EQ(nw.align(empty).score, -(11 + 4));
  ScanAligner<AlignClass::Local, V> sw(ScoreMatrix::blosum62(), {11, 1});
  sw.set_query(empty);
  EXPECT_EQ(sw.align(seq).score, 0);
}

TYPED_TEST(EngineVsScalarTest, ScanLogEqualsLinear) {
  using V = TypeParam;
  std::mt19937_64 rng(222);
  for (const AlignClass c : kClasses) {
    const auto q = random_codes(130, rng);
    const auto d = random_codes(170, rng);
    AlignResult lin, log;
    switch (c) {
      case AlignClass::Global: {
        ScanAligner<AlignClass::Global, V> a(ScoreMatrix::blosum62(), {11, 1},
                                             HscanKind::Linear);
        ScanAligner<AlignClass::Global, V> b(ScoreMatrix::blosum62(), {11, 1},
                                             HscanKind::Log);
        a.set_query(q);
        b.set_query(q);
        lin = a.align(d);
        log = b.align(d);
        break;
      }
      case AlignClass::SemiGlobal: {
        ScanAligner<AlignClass::SemiGlobal, V> a(ScoreMatrix::blosum62(), {11, 1},
                                                 HscanKind::Linear);
        ScanAligner<AlignClass::SemiGlobal, V> b(ScoreMatrix::blosum62(), {11, 1},
                                                 HscanKind::Log);
        a.set_query(q);
        b.set_query(q);
        lin = a.align(d);
        log = b.align(d);
        break;
      }
      case AlignClass::Local: {
        ScanAligner<AlignClass::Local, V> a(ScoreMatrix::blosum62(), {11, 1},
                                            HscanKind::Linear);
        ScanAligner<AlignClass::Local, V> b(ScoreMatrix::blosum62(), {11, 1},
                                            HscanKind::Log);
        a.set_query(q);
        b.set_query(q);
        lin = a.align(d);
        log = b.align(d);
        break;
      }
    }
    EXPECT_EQ(lin.score, log.score) << to_string(c);
  }
}

// --- Work-counter properties (§IV complexity analysis) -----------------------

TYPED_TEST(EngineVsScalarTest, ScanWorkCountersAreDeterministic) {
  using V = TypeParam;
  std::mt19937_64 rng(333);
  const auto q = random_codes(100, rng);
  const auto d = random_codes(140, rng);
  ScanAligner<AlignClass::Local, V> scan(ScoreMatrix::blosum62(), {11, 1});
  scan.set_query(q);
  const AlignResult r = scan.align(d);
  const std::uint64_t L = (q.size() + static_cast<std::size_t>(V::lanes) - 1) /
                          static_cast<std::size_t>(V::lanes);
  // Exactly two passes per column, p-1 horizontal steps per column.
  EXPECT_EQ(r.stats.main_epochs, 2 * L * d.size());
  EXPECT_EQ(r.stats.hscan_steps, static_cast<std::uint64_t>(V::lanes - 1) * d.size());
  EXPECT_EQ(r.stats.corrective_epochs, 0u);
  EXPECT_EQ(r.stats.columns, d.size());
}

TYPED_TEST(EngineVsScalarTest, StripedCorrectiveFactorBounded) {
  using V = TypeParam;
  std::mt19937_64 rng(444);
  const auto q = random_codes(150, rng);
  const auto d = random_codes(200, rng);
  StripedAligner<AlignClass::Local, V> striped(ScoreMatrix::blosum62(), {11, 1});
  striped.set_query(q);
  const AlignResult r = striped.align(d);
  const std::uint64_t L = (q.size() + static_cast<std::size_t>(V::lanes) - 1) /
                          static_cast<std::size_t>(V::lanes);
  EXPECT_EQ(r.stats.main_epochs, L * d.size());
  // The corrective loop may not exceed p passes of L epochs per column.
  EXPECT_LE(r.stats.corrective_epochs,
            static_cast<std::uint64_t>(V::lanes) * L * d.size());
  const double c = r.stats.corrective_factor(q.size(), V::lanes);
  EXPECT_GE(c, 0.0);
  EXPECT_LT(c, static_cast<double>(V::lanes));
}

TYPED_TEST(EngineVsScalarTest, LocalEndPositionsVerifyByTruncation) {
  using V = TypeParam;
  std::mt19937_64 rng(555);
  for (int i = 0; i < 6; ++i) {
    const auto [q, d] = related_pair(100, 130, 35, rng);
    for (int which = 0; which < 2; ++which) {
      AlignResult r;
      if (which == 0) {
        StripedAligner<AlignClass::Local, V> e(ScoreMatrix::blosum62(), {11, 1});
        e.set_query(q);
        r = e.align(d);
      } else {
        ScanAligner<AlignClass::Local, V> e(ScoreMatrix::blosum62(), {11, 1});
        e.set_query(q);
        r = e.align(d);
      }
      if (r.overflowed || r.score == 0) continue;
      ASSERT_GE(r.query_end, 0);
      ASSERT_GE(r.db_end, 0);
      std::vector<std::uint8_t> qt(q.begin(), q.begin() + r.query_end + 1);
      std::vector<std::uint8_t> dt(d.begin(), d.begin() + r.db_end + 1);
      EXPECT_EQ(align_scalar(AlignClass::Local, ScoreMatrix::blosum62(), {11, 1}, qt, dt)
                    .score,
                r.score)
          << (which == 0 ? "striped" : "scan");
    }
  }
}

// --- Overflow behaviour -------------------------------------------------------

TEST(EngineOverflow, Int8LocalSaturationIsFlaggedNotSilent) {
#if defined(__SSE4_1__)
  std::mt19937_64 rng(666);
  // A long identical pair scores far beyond int8 range.
  const auto q = random_codes(200, rng);
  StripedAligner<AlignClass::Local, V128<std::int8_t>> striped(ScoreMatrix::blosum62(),
                                                               {11, 1});
  ScanAligner<AlignClass::Local, V128<std::int8_t>> scan(ScoreMatrix::blosum62(),
                                                         {11, 1});
  striped.set_query(q);
  scan.set_query(q);
  const auto r1 = striped.align(q);
  const auto r2 = scan.align(q);
  EXPECT_TRUE(r1.overflowed);
  EXPECT_TRUE(r2.overflowed);
  const auto want = align_scalar(AlignClass::Local, ScoreMatrix::blosum62(), {11, 1}, q, q);
  EXPECT_GT(want.score, 127);
#else
  GTEST_SKIP() << "SSE4.1 not compiled in";
#endif
}

TEST(EngineOverflow, Int8LocalSmallScoresAreExact) {
#if defined(__SSE4_1__)
  std::mt19937_64 rng(777);
  int checked = 0;
  StripedAligner<AlignClass::Local, V128<std::int8_t>> striped(ScoreMatrix::blosum62(),
                                                               {11, 1});
  ScanAligner<AlignClass::Local, V128<std::int8_t>> scan(ScoreMatrix::blosum62(),
                                                         {11, 1});
  ScalarAligner<AlignClass::Local> ref(ScoreMatrix::blosum62(), {11, 1});
  for (int i = 0; i < 30; ++i) {
    // Unrelated random sequences: SW scores stay small.
    const auto q = random_codes(300, rng);
    const auto d = random_codes(300, rng);
    striped.set_query(q);
    scan.set_query(q);
    ref.set_query(q);
    const auto want = ref.align(d);
    const auto r1 = striped.align(d);
    const auto r2 = scan.align(d);
    if (!r1.overflowed) {
      EXPECT_EQ(r1.score, want.score);
      ++checked;
    }
    if (!r2.overflowed) EXPECT_EQ(r2.score, want.score);
  }
  EXPECT_GT(checked, 0);  // most random pairs stay within int8 range
#else
  GTEST_SKIP() << "SSE4.1 not compiled in";
#endif
}

// --- Query profile ------------------------------------------------------------

TEST(StripedProfileTest, LayoutAndPadding) {
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  std::vector<std::uint8_t> q = {0, 1, 2, 3, 4, 5, 6};  // 7 residues
  StripedProfile<std::int16_t> prof;
  prof.build(m, q, /*lanes=*/4);
  EXPECT_EQ(prof.seglen(), 2u);  // ceil(7/4)
  EXPECT_EQ(prof.lanes(), 4);
  // Row r = s*L + t; check every real cell against the matrix.
  for (int c = 0; c < m.size(); ++c) {
    for (std::size_t t = 0; t < prof.seglen(); ++t) {
      const std::int16_t* v = prof.epoch(c, t);
      for (int s = 0; s < 4; ++s) {
        const std::size_t r = static_cast<std::size_t>(s) * prof.seglen() + t;
        if (r < q.size()) {
          EXPECT_EQ(v[s], m.score(q[r], c)) << "c=" << c << " t=" << t << " s=" << s;
        } else {
          EXPECT_EQ(v[s], simd::ElemTraits<std::int16_t>::neg_inf);
        }
      }
    }
  }
}

TEST(SequentialProfileTest, LayoutAndPadding) {
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  std::vector<std::uint8_t> q = {7, 8, 9, 10, 11};
  SequentialProfile<std::int32_t> prof;
  prof.build(m, q, /*lanes=*/4);
  EXPECT_EQ(prof.blocks(), 2u);
  for (int c = 0; c < m.size(); ++c) {
    for (std::size_t b = 0; b < prof.blocks(); ++b) {
      const std::int32_t* v = prof.block(c, b);
      for (int s = 0; s < 4; ++s) {
        const std::size_t r = b * 4 + static_cast<std::size_t>(s);
        if (r < q.size()) {
          EXPECT_EQ(v[s], m.score(q[r], c));
        } else {
          EXPECT_EQ(v[s], simd::ElemTraits<std::int32_t>::neg_inf);
        }
      }
    }
  }
}

}  // namespace
}  // namespace valign
