// Host calibration of the Striped/Scan decision table.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/core/calibrate.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/prescribe.hpp"

namespace valign {
namespace {

TEST(PrescriptionTable, PaperValuesRoundTrip) {
  const PrescriptionTable t = PrescriptionTable::paper();
  for (const AlignClass c :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    for (const int lanes : {4, 8, 16}) {
      EXPECT_EQ(t.cross(c, lanes), prescribe_crossover(c, lanes));
      // choose() must agree with prescribe() on both sides of the crossover.
      const auto cr = static_cast<std::size_t>(t.cross(c, lanes));
      EXPECT_EQ(t.choose(c, lanes, cr - 1), prescribe(c, lanes, cr - 1));
      EXPECT_EQ(t.choose(c, lanes, cr + 1), prescribe(c, lanes, cr + 1));
    }
  }
}

TEST(PrescriptionTable, ZeroCrossoverMeansLongQueryWinnerEverywhere) {
  PrescriptionTable t = PrescriptionTable::paper();
  t.crossover[2][2] = 0;  // SW @16 lanes: no crossover observed
  // SW's long-query winner is Striped.
  EXPECT_EQ(t.choose(AlignClass::Local, 16, 10), Approach::Striped);
  EXPECT_EQ(t.choose(AlignClass::Local, 16, 1000), Approach::Striped);
  t.crossover[0][2] = 0;  // NW @16: long-query winner is Scan
  EXPECT_EQ(t.choose(AlignClass::Global, 16, 10), Approach::Scan);
}

TEST(PrescriptionTable, ToStringListsAllClasses) {
  const std::string s = PrescriptionTable::paper().to_string();
  EXPECT_NE(s.find("NW"), std::string::npos);
  EXPECT_NE(s.find("SG"), std::string::npos);
  EXPECT_NE(s.find("SW"), std::string::npos);
  EXPECT_NE(s.find("149"), std::string::npos);
}

TEST(Calibrate, ProducesAValidTable) {
  CalibrationConfig cfg;
  cfg.db_count = 8;
  cfg.lengths = {16, 64, 192};
  cfg.min_seconds = 0.001;  // keep the test fast; noise is fine here
  const PrescriptionTable t = calibrate(cfg);
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      const int c = t.crossover[static_cast<std::size_t>(row)]
                               [static_cast<std::size_t>(col)];
      // Either no crossover, inside the probed grid, or the paper fallback
      // for lane columns this host cannot run natively.
      EXPECT_GE(c, 0);
      EXPECT_LE(c, 300);
    }
  }
  // Directions are structural, not measured.
  EXPECT_FALSE(t.scan_wins_short[0]);  // NW
  EXPECT_TRUE(t.scan_wins_short[1]);   // SG
  EXPECT_TRUE(t.scan_wins_short[2]);   // SW
}

TEST(Calibrate, RejectsDegenerateConfig) {
  CalibrationConfig cfg;
  cfg.lengths = {100};
  EXPECT_THROW((void)calibrate(cfg), Error);
}

TEST(Aligner, UsesInjectedPrescriptionTable) {
  std::mt19937_64 rng(12);
  const auto q = testing_support::random_codes(100, rng);
  const auto d = testing_support::random_codes(100, rng);

  // A table that always prescribes Scan for SW (crossover above any qlen).
  PrescriptionTable scan_always = PrescriptionTable::paper();
  for (auto& row : scan_always.crossover) row = {1000000, 1000000, 1000000};

  Options opts;
  opts.klass = AlignClass::Local;
  opts.width = ElemWidth::W32;
  opts.prescription = &scan_always;
  Aligner aligner(opts);
  aligner.set_query(q);
  EXPECT_EQ(aligner.align(d).approach, Approach::Scan);

  // And one that always prescribes Striped.
  PrescriptionTable striped_always = PrescriptionTable::paper();
  for (auto& row : striped_always.crossover) row = {1, 1, 1};
  Options opts2 = opts;
  opts2.prescription = &striped_always;
  Aligner a2(opts2);
  a2.set_query(q);
  EXPECT_EQ(a2.align(d).approach, Approach::Striped);
}

}  // namespace
}  // namespace valign
