// Host calibration of the Striped/Scan decision table.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/apps/db_search.hpp"
#include "valign/core/calibrate.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/prefilter.hpp"
#include "valign/core/prescribe.hpp"
#include "valign/core/scalar.hpp"
#include "valign/workload/generator.hpp"

namespace valign {
namespace {

TEST(PrescriptionTable, PaperValuesRoundTrip) {
  const PrescriptionTable t = PrescriptionTable::paper();
  for (const AlignClass c :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    for (const int lanes : {4, 8, 16}) {
      EXPECT_EQ(t.cross(c, lanes), prescribe_crossover(c, lanes));
      // choose() must agree with prescribe() on both sides of the crossover.
      const auto cr = static_cast<std::size_t>(t.cross(c, lanes));
      EXPECT_EQ(t.choose(c, lanes, cr - 1), prescribe(c, lanes, cr - 1));
      EXPECT_EQ(t.choose(c, lanes, cr + 1), prescribe(c, lanes, cr + 1));
    }
  }
}

TEST(PrescriptionTable, ZeroCrossoverMeansLongQueryWinnerEverywhere) {
  PrescriptionTable t = PrescriptionTable::paper();
  t.crossover[2][2] = 0;  // SW @16 lanes: no crossover observed
  // SW's long-query winner is Striped.
  EXPECT_EQ(t.choose(AlignClass::Local, 16, 10), Approach::Striped);
  EXPECT_EQ(t.choose(AlignClass::Local, 16, 1000), Approach::Striped);
  t.crossover[0][2] = 0;  // NW @16: long-query winner is Scan
  EXPECT_EQ(t.choose(AlignClass::Global, 16, 10), Approach::Scan);
}

TEST(PrescriptionTable, ToStringListsAllClasses) {
  const std::string s = PrescriptionTable::paper().to_string();
  EXPECT_NE(s.find("NW"), std::string::npos);
  EXPECT_NE(s.find("SG"), std::string::npos);
  EXPECT_NE(s.find("SW"), std::string::npos);
  EXPECT_NE(s.find("149"), std::string::npos);
}

TEST(Calibrate, ProducesAValidTable) {
  CalibrationConfig cfg;
  cfg.db_count = 8;
  cfg.lengths = {16, 64, 192};
  cfg.min_seconds = 0.001;  // keep the test fast; noise is fine here
  const PrescriptionTable t = calibrate(cfg);
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      const int c = t.crossover[static_cast<std::size_t>(row)]
                               [static_cast<std::size_t>(col)];
      // Either no crossover, inside the probed grid, or the paper fallback
      // for lane columns this host cannot run natively.
      EXPECT_GE(c, 0);
      EXPECT_LE(c, 300);
    }
  }
  // Directions are structural, not measured.
  EXPECT_FALSE(t.scan_wins_short[0]);  // NW
  EXPECT_TRUE(t.scan_wins_short[1]);   // SG
  EXPECT_TRUE(t.scan_wins_short[2]);   // SW
}

TEST(Calibrate, RejectsDegenerateConfig) {
  CalibrationConfig cfg;
  cfg.lengths = {100};
  EXPECT_THROW((void)calibrate(cfg), Error);
}

TEST(Aligner, UsesInjectedPrescriptionTable) {
  std::mt19937_64 rng(12);
  const auto q = testing_support::random_codes(100, rng);
  const auto d = testing_support::random_codes(100, rng);

  // A table that always prescribes Scan for SW (crossover above any qlen).
  PrescriptionTable scan_always = PrescriptionTable::paper();
  for (auto& row : scan_always.crossover) row = {1000000, 1000000, 1000000};

  Options opts;
  opts.klass = AlignClass::Local;
  opts.width = ElemWidth::W32;
  opts.prescription = &scan_always;
  Aligner aligner(opts);
  aligner.set_query(q);
  EXPECT_EQ(aligner.align(d).approach, Approach::Scan);

  // And one that always prescribes Striped.
  PrescriptionTable striped_always = PrescriptionTable::paper();
  for (auto& row : striped_always.crossover) row = {1, 1, 1};
  Options opts2 = opts;
  opts2.prescription = &striped_always;
  Aligner a2(opts2);
  a2.set_query(q);
  EXPECT_EQ(a2.align(d).approach, Approach::Striped);
}

// --- three-engine model (docs/kernels.md) ------------------------------------

TEST(EngineModel, PaperModelNeverPicksDeconstructed) {
  // The paper() fallback is Table IV lifted verbatim: Striped/Scan only,
  // agreeing with the legacy prescription on both sides of each crossover.
  const EngineModel m = EngineModel::paper();
  for (const AlignClass c :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    for (const int lanes : {4, 8, 16}) {
      for (const std::size_t qlen : {10u, 100u, 200u, 1000u}) {
        const Approach a = m.choose(c, lanes, qlen);
        EXPECT_NE(a, Approach::Deconstructed);
        EXPECT_EQ(a, PrescriptionTable::paper().choose(c, lanes, qlen));
      }
    }
  }
}

TEST(EngineModel, ChooseFollowsCellWinnersAroundTheCrossover) {
  EngineModel m;
  m.cells[2][1] = {Approach::Scan, Approach::Deconstructed, 150};  // SW @8
  EXPECT_EQ(m.choose(AlignClass::Local, 8, 149), Approach::Scan);
  EXPECT_EQ(m.choose(AlignClass::Local, 8, 150), Approach::Deconstructed);
  // Zero crossover = one engine dominates the whole range.
  m.cells[2][1] = {Approach::Deconstructed, Approach::Deconstructed, 0};
  EXPECT_EQ(m.choose(AlignClass::Local, 8, 1), Approach::Deconstructed);
  EXPECT_EQ(m.choose(AlignClass::Local, 8, 100000), Approach::Deconstructed);
  // Lane counts outside {4,8,16} clamp to the nearest column.
  EXPECT_EQ(&m.cell(AlignClass::Local, 32), &m.cell(AlignClass::Local, 16));
  EXPECT_EQ(&m.cell(AlignClass::Local, 2), &m.cell(AlignClass::Local, 4));
}

TEST(EngineModel, PinnedIsWellFormedAndPrintable) {
  const EngineModel& m = EngineModel::pinned();
  const std::string s = m.to_string();
  EXPECT_NE(s.find("NW"), std::string::npos);
  EXPECT_NE(s.find("SG"), std::string::npos);
  EXPECT_NE(s.find("SW"), std::string::npos);
  for (const auto& row : m.cells) {
    for (const auto& c : row) {
      EXPECT_GE(c.crossover, 0);
      // Zero crossover must mean a single dominating winner.
      if (c.crossover == 0) EXPECT_EQ(c.short_winner, c.long_winner);
    }
  }
}

TEST(CalibrateEngines, ProducesAValidModel) {
  CalibrationConfig cfg;
  cfg.db_count = 8;
  cfg.lengths = {16, 64, 192};
  cfg.min_seconds = 0.001;  // keep the test fast; noise is fine here
  const EngineModel m = calibrate_engines(cfg);
  for (const auto& row : m.cells) {
    for (const auto& c : row) {
      EXPECT_GE(c.crossover, 0);
      EXPECT_LE(c.crossover, 300);
      if (c.crossover == 0) EXPECT_EQ(c.short_winner, c.long_winner);
    }
  }
}

TEST(CalibrateEngines, RejectsDegenerateConfig) {
  CalibrationConfig cfg;
  cfg.lengths = {100};
  EXPECT_THROW((void)calibrate_engines(cfg), Error);
}

// --- prefilter margin model (docs/prefilter.md) ------------------------------

/// The property the whole two-stage design rests on: for every pair the
/// screen either saturates (forced escalation) or yields an upper bound that
/// `screen + margin >= true` for every alignment class. A violation here is a
/// false negative — a hit the filter could silently drop.
TEST(PrefilterCalibration, ModelNeverFalseNegativeOnKnownScores) {
  std::mt19937_64 rng(202);
  std::uniform_int_distribution<std::size_t> len(15, 220);
  const auto query = testing_support::random_codes(96, rng);
  std::vector<std::vector<std::uint8_t>> db;
  for (std::size_t i = 0; i < 60; ++i) {
    db.push_back(testing_support::random_codes(len(rng), rng));
  }
  // A couple of high-identity subjects: large true scores stress the bound
  // where it is tightest (gap capping only helps gapped paths).
  db.push_back(query);
  db.emplace_back(query.begin(), query.begin() + 48);

  const ScoreMatrix& mat = ScoreMatrix::blosum62();
  const GapPenalty gap{11, 1};
  Options opts;
  opts.matrix = &mat;
  opts.gap = gap;
  Prefilter pf(opts);
  pf.set_query(query);
  std::vector<std::span<const std::uint8_t>> spans(db.begin(), db.end());
  std::vector<PrefilterVerdict> verdicts(db.size());
  pf.screen(spans, verdicts);

  const PrefilterModel model = PrefilterModel::conservative();
  ScalarAligner<AlignClass::Global> nw(mat, gap);
  ScalarAligner<AlignClass::SemiGlobal> sg(mat, gap);
  ScalarAligner<AlignClass::Local> sw(mat, gap);
  nw.set_query(query);
  sg.set_query(query);
  sw.set_query(query);
  for (std::size_t i = 0; i < db.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "subject " << i << " dlen=" << db[i].size());
    if (verdicts[i].escalate) continue;  // the saturation rail: always full DP
    const std::int64_t bound = verdicts[i].score;
    EXPECT_GE(bound + model.margin_for(AlignClass::Global), nw.align(db[i]).score);
    EXPECT_GE(bound + model.margin_for(AlignClass::SemiGlobal), sg.align(db[i]).score);
    EXPECT_GE(bound + model.margin_for(AlignClass::Local), sw.align(db[i]).score);
  }
}

TEST(PrefilterCalibration, SaturationRailIsExplicit) {
  // All-tryptophan pairs exceed any i8 (and, long enough, i16) screen: the
  // verdict must say escalate, and the stats must count the saturation. The
  // score field of a saturated verdict is meaningless and must not be relied
  // on — the rail, not the bound, is the contract.
  const std::uint8_t trp = 17;
  const std::vector<std::uint8_t> query(4000, trp);
  const std::vector<std::uint8_t> subject(4000, trp);  // 44000 > 32767 too
  Prefilter pf;
  pf.set_query(query);
  const std::span<const std::uint8_t> span(subject);
  std::vector<PrefilterVerdict> verdicts(1);
  pf.screen({&span, 1}, verdicts);
  EXPECT_TRUE(verdicts[0].escalate);
  EXPECT_EQ(pf.stats().saturated, 1u);
  EXPECT_EQ(pf.stats().pairs, 1u);
}

TEST(PrefilterCalibration, MeasuredMarginsAreZeroAndSane) {
  // The structural bound predicts exactly zero margin on any corpus; a
  // nonzero measurement would mean the screen undercounts somewhere, which
  // the differential battery would trip on as dropped hits.
  PrefilterCalibrationConfig cfg;
  cfg.db_count = 12;
  cfg.query_count = 2;
  cfg.seed = 5;
  const PrefilterModel model = calibrate_prefilter(cfg);
  for (const AlignClass klass :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    EXPECT_EQ(model.margin_for(klass), 0) << to_string(klass);
  }
  EXPECT_GE(model.saturated_pct, 0);
  EXPECT_LE(model.saturated_pct, 100);
  EXPECT_FALSE(model.to_string().empty());
}

TEST(PrefilterCalibration, SelectivityPinnedOnSeededCorpus) {
  // Regression pin for the seeded bench-like corpus, Local class — the
  // regime the prescreen is selective in (the i8 screen with uncapped
  // {11,1} gaps computes the exact SW score, so only the top-k band, its
  // ties and saturated pairs escalate). Bounds are generous: this trips on
  // the filter breaking, not on noise.
  const Dataset queries = workload::bacteria_2k(7, 3);
  const Dataset db = workload::uniprot_like(200, 8);
  apps::SearchConfig cfg;
  cfg.align.klass = AlignClass::Local;
  cfg.top_k = 5;
  cfg.prefilter = PrefilterMode::Force;
  const apps::SearchReport rep = apps::search(queries, db, cfg);

  EXPECT_EQ(rep.prefilter.screened, queries.size() * db.size());
  EXPECT_GE(rep.prefilter.escalated,
            queries.size() * static_cast<std::size_t>(cfg.top_k));
  EXPECT_GT(rep.prefilter.escaped, 0u)
      << "the filter stopped eliminating anything on the seeded corpus";
  const double sel = rep.prefilter.selectivity();
  EXPECT_GT(sel, 0.0);
  EXPECT_LT(sel, 0.50) << "selectivity regressed: most pairs escalate on a "
                          "corpus where the screen is exact";

  // The SemiGlobal screen is exact too but structurally looser (an SG path
  // must cross the whole matrix; the SW bound need not), so no selectivity
  // is pinned there — only the equality contract, which the differential
  // battery holds.
}

}  // namespace
}  // namespace valign
