// Tiled scan alignment (the paper's §VIII future-work proposal): correctness
// against the scalar ground truth and the untiled Scan engine, across tile
// sizes, classes, and alphabets.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/core/scalar.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/tiled.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {
namespace {

using simd::VEmul;
using testing_support::random_codes;

constexpr GapPenalty kGap{11, 1};
const ScoreMatrix& b62() { return ScoreMatrix::blosum62(); }

class TiledTileSizeTest : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(TileSizes, TiledTileSizeTest,
                         ::testing::Values(8, 16, 24, 64, 1024),
                         [](const auto& info) {
                           return "tile" + std::to_string(info.param);
                         });

TEST_P(TiledTileSizeTest, LocalMatchesScalar) {
  std::mt19937_64 rng(1000 + GetParam());
  using V = VEmul<std::int32_t, 8>;
  TiledScanAligner<AlignClass::Local, V> tiled(b62(), kGap, GetParam());
  ScalarAligner<AlignClass::Local> ref(b62(), kGap);
  for (int i = 0; i < 8; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 300);
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    tiled.set_query(q);
    ref.set_query(q);
    EXPECT_EQ(tiled.align(d).score, ref.align(d).score)
        << "iter " << i << " q=" << q.size() << " d=" << d.size();
  }
}

TEST_P(TiledTileSizeTest, GlobalMatchesScalar) {
  std::mt19937_64 rng(2000 + GetParam());
  using V = VEmul<std::int32_t, 8>;
  TiledScanAligner<AlignClass::Global, V> tiled(b62(), kGap, GetParam());
  ScalarAligner<AlignClass::Global> ref(b62(), kGap);
  for (int i = 0; i < 8; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 300);
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    tiled.set_query(q);
    ref.set_query(q);
    EXPECT_EQ(tiled.align(d).score, ref.align(d).score)
        << "iter " << i << " q=" << q.size() << " d=" << d.size();
  }
}

TEST(Tiled, TileRowsRoundedToLaneMultiple) {
  using V = VEmul<std::int32_t, 8>;
  TiledScanAligner<AlignClass::Local, V> t1(b62(), kGap, 1);
  EXPECT_EQ(t1.tile_rows(), 8u);
  TiledScanAligner<AlignClass::Local, V> t2(b62(), kGap, 13);
  EXPECT_EQ(t2.tile_rows(), 16u);
  TiledScanAligner<AlignClass::Local, V> t3(b62(), kGap, 16);
  EXPECT_EQ(t3.tile_rows(), 16u);
}

TEST(Tiled, SingleTileEqualsScanEngine) {
  std::mt19937_64 rng(3);
  using V = VEmul<std::int32_t, 8>;
  const auto q = random_codes(120, rng);
  const auto d = random_codes(150, rng);
  TiledScanAligner<AlignClass::Local, V> tiled(b62(), kGap, 4096);  // one tile
  ScanAligner<AlignClass::Local, V> scan(b62(), kGap);
  tiled.set_query(q);
  scan.set_query(q);
  const auto rt = tiled.align(d);
  const auto rs = scan.align(d);
  EXPECT_EQ(rt.score, rs.score);
  EXPECT_EQ(rt.query_end, rs.query_end);
  EXPECT_EQ(rt.db_end, rs.db_end);
}

TEST(Tiled, LocalEndPositionsVerifyByTruncation) {
  std::mt19937_64 rng(4);
  using V = VEmul<std::int32_t, 8>;
  for (int i = 0; i < 5; ++i) {
    const auto [q, d] = testing_support::related_pair(260, 300, 60, rng);
    TiledScanAligner<AlignClass::Local, V> tiled(b62(), kGap, 64);
    tiled.set_query(q);
    const AlignResult r = tiled.align(d);
    ASSERT_GE(r.query_end, 0);
    ASSERT_GE(r.db_end, 0);
    std::vector<std::uint8_t> qt(q.begin(), q.begin() + r.query_end + 1);
    std::vector<std::uint8_t> dt(d.begin(), d.begin() + r.db_end + 1);
    EXPECT_EQ(align_scalar(AlignClass::Local, b62(), kGap, qt, dt).score, r.score);
  }
}

#if defined(__AVX512F__) && defined(__AVX512BW__)
TEST(Tiled, NativeDnaLongSequences) {
  if (!simd::isa_available(Isa::AVX512)) GTEST_SKIP();
  // The intended use case: DNA-length sequences with a small alphabet.
  const ScoreMatrix dna = ScoreMatrix::dna(2, 3);
  const GapPenalty gap{10, 1};
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<int> base(0, 3);
  std::vector<std::uint8_t> q(20000), d(8000);
  for (auto& c : q) c = static_cast<std::uint8_t>(base(rng));
  for (auto& c : d) c = static_cast<std::uint8_t>(base(rng));
  // Plant a strong local hit.
  std::copy(d.begin() + 1000, d.begin() + 3000, q.begin() + 9000);

  using V = simd::V512<std::int32_t>;
  TiledScanAligner<AlignClass::Local, V> tiled(dna, gap, 4096);
  ScanAligner<AlignClass::Local, V> scan(dna, gap);
  tiled.set_query(q);
  scan.set_query(q);
  const auto rt = tiled.align(d);
  const auto rs = scan.align(d);
  EXPECT_EQ(rt.score, rs.score);
  EXPECT_GT(rt.score, 3000);  // the planted 2 kb identity scores ~4000
}
#endif

TEST(Tiled, EmptyInputs) {
  using V = VEmul<std::int32_t, 8>;
  TiledScanAligner<AlignClass::Global, V> nw(b62(), kGap, 64);
  const std::vector<std::uint8_t> empty;
  const std::vector<std::uint8_t> seq = {0, 1, 2};
  nw.set_query(empty);
  EXPECT_EQ(nw.align(seq).score, -(11 + 3));
  nw.set_query(seq);
  EXPECT_EQ(nw.align(empty).score, -(11 + 3));
  TiledScanAligner<AlignClass::Local, V> sw(b62(), kGap, 64);
  sw.set_query(empty);
  EXPECT_EQ(sw.align(seq).score, 0);
}

TEST(Tiled, StatsAccumulateAcrossTiles) {
  std::mt19937_64 rng(6);
  using V = VEmul<std::int32_t, 8>;
  const auto q = random_codes(200, rng);
  const auto d = random_codes(100, rng);
  TiledScanAligner<AlignClass::Local, V> tiled(b62(), kGap, 64);
  tiled.set_query(q);
  const AlignResult r = tiled.align(d);
  // 200 rows in 64-row tiles: 3 full tiles + 1 partial (8 rows -> L=1).
  // Epochs per column: 2 * (8+8+8+1); hscan steps: 4 tiles * 7 per column.
  EXPECT_EQ(r.stats.main_epochs, 2u * (8 + 8 + 8 + 1) * d.size());
  EXPECT_EQ(r.stats.hscan_steps, 4u * 7 * d.size());
  EXPECT_EQ(r.stats.columns, d.size());
}

}  // namespace
}  // namespace valign
