// Semi-global end-gap variants: all 16 free/pinned combinations validated
// against an independent brute-force reference for the scalar, striped and
// scan engines plus the traceback.
#include <gtest/gtest.h>

#include "../support/random_seqs.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/scalar.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {
namespace {

using testing_support::random_codes;

constexpr GapPenalty kGap{11, 1};
const ScoreMatrix& b62() { return ScoreMatrix::blosum62(); }

/// Independent reference: plain full-table DP with explicit end-flag logic,
/// written without sharing any code with the engines under test.
std::int64_t reference_sg(std::span<const std::uint8_t> q,
                          std::span<const std::uint8_t> d, GapPenalty gap,
                          const ScoreMatrix& mat, SemiGlobalEnds ends) {
  const std::size_t n = q.size();
  const std::size_t m = d.size();
  constexpr std::int64_t kInf = std::numeric_limits<std::int32_t>::min() / 2;
  const std::int64_t o = gap.open;
  const std::int64_t e = gap.extend;
  std::vector<std::vector<std::int64_t>> H(n + 1, std::vector<std::int64_t>(m + 1));
  std::vector<std::vector<std::int64_t>> E = H, F = H;
  for (std::size_t r = 0; r <= n; ++r) {
    H[r][0] = ends.free_db_begin ? 0 : -(o + static_cast<std::int64_t>(r) * e);
    E[r][0] = kInf;
    F[r][0] = kInf;
  }
  for (std::size_t j = 0; j <= m; ++j) {
    H[0][j] = ends.free_query_begin ? 0 : -(o + static_cast<std::int64_t>(j) * e);
    E[0][j] = kInf;
    F[0][j] = kInf;
  }
  H[0][0] = 0;
  for (std::size_t r = 1; r <= n; ++r) {
    for (std::size_t j = 1; j <= m; ++j) {
      E[r][j] = std::max(E[r][j - 1], H[r][j - 1] - o) - e;
      F[r][j] = std::max(F[r - 1][j], H[r - 1][j] - o) - e;
      H[r][j] = std::max({H[r - 1][j - 1] + mat.score(q[r - 1], d[j - 1]),
                          E[r][j], F[r][j]});
    }
  }
  std::int64_t best = H[n][m];
  if (ends.free_query_end) {
    for (std::size_t j = 0; j <= m; ++j) best = std::max(best, H[n][j]);
  }
  if (ends.free_db_end) {
    for (std::size_t r = 0; r <= n; ++r) best = std::max(best, H[r][m]);
  }
  return best;
}

std::vector<SemiGlobalEnds> all_combos() {
  std::vector<SemiGlobalEnds> out;
  for (int bits = 0; bits < 16; ++bits) {
    out.push_back(SemiGlobalEnds{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                                 (bits & 8) != 0});
  }
  return out;
}

std::string combo_name(const SemiGlobalEnds& e) {
  std::string s = "qb";
  s += e.free_query_begin ? '1' : '0';
  s += "qe";
  s += e.free_query_end ? '1' : '0';
  s += "db";
  s += e.free_db_begin ? '1' : '0';
  s += "de";
  s += e.free_db_end ? '1' : '0';
  return s;
}

class SgVariantTest : public ::testing::TestWithParam<SemiGlobalEnds> {};
INSTANTIATE_TEST_SUITE_P(AllCombos, SgVariantTest,
                         ::testing::ValuesIn(all_combos()),
                         [](const auto& info) { return combo_name(info.param); });

TEST_P(SgVariantTest, ScalarMatchesReference) {
  const SemiGlobalEnds ends = GetParam();
  std::mt19937_64 rng(500);
  ScalarAligner<AlignClass::SemiGlobal> eng(b62(), kGap, ends);
  for (int i = 0; i < 12; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 90);
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    eng.set_query(q);
    EXPECT_EQ(eng.align(d).score, reference_sg(q, d, kGap, b62(), ends))
        << "iter " << i;
  }
}

TEST_P(SgVariantTest, StripedAndScanMatchReference) {
  const SemiGlobalEnds ends = GetParam();
  std::mt19937_64 rng(600);
  using V = simd::VEmul<std::int32_t, 8>;
  StripedAligner<AlignClass::SemiGlobal, V> striped(b62(), kGap, ends);
  ScanAligner<AlignClass::SemiGlobal, V> scan(b62(), kGap, HscanKind::Linear, ends);
  for (int i = 0; i < 8; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 110);
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    striped.set_query(q);
    scan.set_query(q);
    const std::int64_t want = reference_sg(q, d, kGap, b62(), ends);
    EXPECT_EQ(striped.align(d).score, want) << "striped iter " << i;
    EXPECT_EQ(scan.align(d).score, want) << "scan iter " << i;
  }
}

#if defined(__AVX2__)
TEST_P(SgVariantTest, NativeBackendMatchesReference) {
  if (!simd::isa_available(Isa::AVX2)) GTEST_SKIP();
  const SemiGlobalEnds ends = GetParam();
  std::mt19937_64 rng(700);
  using V = simd::V256<std::int32_t>;
  StripedAligner<AlignClass::SemiGlobal, V> striped(b62(), kGap, ends);
  ScanAligner<AlignClass::SemiGlobal, V> scan(b62(), kGap, HscanKind::Linear, ends);
  for (int i = 0; i < 6; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 150);
    const auto q = random_codes(len(rng), rng);
    const auto d = random_codes(len(rng), rng);
    striped.set_query(q);
    scan.set_query(q);
    const std::int64_t want = reference_sg(q, d, kGap, b62(), ends);
    EXPECT_EQ(striped.align(d).score, want);
    EXPECT_EQ(scan.align(d).score, want);
  }
}
#endif

TEST_P(SgVariantTest, TracebackScoreMatchesReference) {
  const SemiGlobalEnds ends = GetParam();
  std::mt19937_64 rng(800);
  for (int i = 0; i < 5; ++i) {
    std::uniform_int_distribution<std::size_t> len(1, 60);
    const Sequence q = testing_support::random_protein("q", len(rng), rng);
    const Sequence d = testing_support::random_protein("d", len(rng), rng);
    const Traceback tb =
        align_traceback(AlignClass::SemiGlobal, b62(), kGap, q, d, ends);
    EXPECT_EQ(tb.score, reference_sg(q.codes(), d.codes(), kGap, b62(), ends))
        << "iter " << i;
  }
}

TEST_P(SgVariantTest, DispatchHonoursEnds) {
  const SemiGlobalEnds ends = GetParam();
  std::mt19937_64 rng(900);
  Options opts;
  opts.klass = AlignClass::SemiGlobal;
  opts.approach = Approach::Scan;
  opts.gap = kGap;
  opts.sg_ends = ends;
  Aligner aligner(opts);
  const auto q = random_codes(70, rng);
  const auto d = random_codes(85, rng);
  aligner.set_query(q);
  EXPECT_EQ(aligner.align(d).score, reference_sg(q, d, kGap, b62(), ends));
}

TEST(SgVariants, LimitsReproduceClassicClasses) {
  std::mt19937_64 rng(42);
  const auto q = random_codes(80, rng);
  const auto d = random_codes(95, rng);
  // All ends pinned == global alignment.
  SemiGlobalEnds pinned{false, false, false, false};
  ScalarAligner<AlignClass::SemiGlobal> as_nw(b62(), kGap, pinned);
  as_nw.set_query(q);
  EXPECT_EQ(as_nw.align(d).score,
            align_scalar(AlignClass::Global, b62(), kGap, q, d).score);
  // All ends free == classic SG (the engine default).
  ScalarAligner<AlignClass::SemiGlobal> as_sg(b62(), kGap, SemiGlobalEnds{});
  as_sg.set_query(q);
  EXPECT_EQ(as_sg.align(d).score,
            align_scalar(AlignClass::SemiGlobal, b62(), kGap, q, d).score);
}

TEST(SgVariants, ReadMappingShapeExample) {
  // A short "read" must be contained in a long "reference": free reference
  // (db) begin/end, pinned read ends. Scoring the read's verbatim occurrence
  // must yield the full match score.
  std::mt19937_64 rng(77);
  const auto read = random_codes(30, rng);
  auto ref = random_codes(200, rng);
  std::copy(read.begin(), read.end(), ref.begin() + 100);
  SemiGlobalEnds mapping;
  mapping.free_query_begin = true;   // leading reference residues free
  mapping.free_query_end = true;     // trailing reference residues free
  mapping.free_db_begin = false;     // the whole read must align
  mapping.free_db_end = false;
  ScalarAligner<AlignClass::SemiGlobal> eng(b62(), kGap, mapping);
  eng.set_query(read);
  std::int32_t want = 0;
  for (const std::uint8_t c : read) want += b62().score(c, c);
  EXPECT_EQ(eng.align(ref).score, want);
}

TEST(SgVariants, EmptyInputsRespectFlags) {
  const std::vector<std::uint8_t> empty;
  const std::vector<std::uint8_t> seq = {0, 1, 2, 3, 4};
  // Pinned query ends: an empty query forces the whole db into a paid gap.
  SemiGlobalEnds pinned_q{false, false, true, true};
  ScalarAligner<AlignClass::SemiGlobal> eng(b62(), kGap, pinned_q);
  eng.set_query(empty);
  EXPECT_EQ(eng.align(seq).score, -(11 + 5));
  // Free query ends: the db is absorbed for free.
  SemiGlobalEnds free_q{true, true, false, false};
  ScalarAligner<AlignClass::SemiGlobal> eng2(b62(), kGap, free_q);
  eng2.set_query(empty);
  EXPECT_EQ(eng2.align(seq).score, 0);
}

}  // namespace
}  // namespace valign
