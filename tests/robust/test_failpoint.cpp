// Failpoint registry and spec parsing (robust/failpoint.hpp).
#include <gtest/gtest.h>

#include <string>

#include "valign/robust/failpoint.hpp"

namespace valign::robust {
namespace {

/// Disarms everything on scope exit so tests can't leak armed failpoints
/// into later suites (the registry is process-global).
struct DisarmGuard {
  ~DisarmGuard() { FailpointRegistry::global().disarm_all(); }
};

TEST(Failpoint, SpecParsesNameProbCount) {
  const auto plain = parse_failpoint_spec("pipeline.pop");
  ASSERT_TRUE(plain.ok()) << plain.status().to_string();
  EXPECT_EQ(plain->name, "pipeline.pop");
  EXPECT_EQ(plain->prob, 1.0);
  EXPECT_EQ(plain->remaining, -1);

  const auto prob = parse_failpoint_spec("cache.build:0.25");
  ASSERT_TRUE(prob.ok()) << prob.status().to_string();
  EXPECT_EQ(prob->name, "cache.build");
  EXPECT_DOUBLE_EQ(prob->prob, 0.25);

  const auto full = parse_failpoint_spec("io.fasta.read:0.5:3");
  ASSERT_TRUE(full.ok()) << full.status().to_string();
  EXPECT_DOUBLE_EQ(full->prob, 0.5);
  EXPECT_EQ(full->remaining, 3);
}

TEST(Failpoint, SpecRejectsMalformedInput) {
  for (const char* bad : {"", ":0.5", "x:nan", "x:2.0", "x:-0.5", "x:0.5:-1",
                          "x:0.5:many", "x:0.5:1.5"}) {
    const auto r = parse_failpoint_spec(bad);
    EXPECT_FALSE(r.ok()) << "spec '" << bad << "' should not parse";
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
      // The message must be usable: it names the offending spec and the
      // expected grammar.
      EXPECT_NE(r.status().message().find("name[:prob[:count]]"),
                std::string::npos)
          << r.status().message();
    }
  }
}

TEST(Failpoint, DisarmedNeverFires) {
  const DisarmGuard guard;
  auto& reg = FailpointRegistry::global();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(reg.should_fire("pipeline.pop"));
  }
  EXPECT_TRUE(reg.armed().empty());
}

TEST(Failpoint, ArmedAtOneAlwaysFires) {
  const DisarmGuard guard;
  auto& reg = FailpointRegistry::global();
  reg.arm("pipeline.pop");
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(reg.should_fire("pipeline.pop"));
  }
  EXPECT_EQ(reg.fired("pipeline.pop"), 10u);
  EXPECT_FALSE(reg.should_fire("cache.build"));  // other sites untouched
}

TEST(Failpoint, CountBoundsFires) {
  const DisarmGuard guard;
  auto& reg = FailpointRegistry::global();
  reg.arm("cache.build", 1.0, 3);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (reg.should_fire("cache.build")) ++fires;
  }
  EXPECT_EQ(fires, 3);
}

TEST(Failpoint, ProbabilityIsSeededAndRoughlyCalibrated) {
  const DisarmGuard guard;
  auto& reg = FailpointRegistry::global();

  auto fires_with_seed = [&](std::uint64_t seed) {
    reg.set_seed(seed);
    reg.arm("io.fasta.read", 0.3);  // re-arm resets the counters
    int fires = 0;
    for (int i = 0; i < 1000; ++i) {
      if (reg.should_fire("io.fasta.read")) ++fires;
    }
    return fires;
  };

  const int a = fires_with_seed(12345);
  const int b = fires_with_seed(12345);
  EXPECT_EQ(a, b) << "same seed must reproduce the same firing sequence";
  // p=0.3 over 1000 draws: anything outside [200, 400] means a broken RNG
  // mapping, not bad luck (~7 sigma).
  EXPECT_GT(a, 200);
  EXPECT_LT(a, 400);
}

TEST(Failpoint, ArmSpecsParsesLists) {
  const DisarmGuard guard;
  auto& reg = FailpointRegistry::global();
  const Status ok = reg.arm_specs("pipeline.pop:0.5,cache.build:1.0:2");
  ASSERT_TRUE(ok.is_ok()) << ok.to_string();
  EXPECT_EQ(reg.armed().size(), 2u);

  const Status bad = reg.arm_specs("pipeline.pop:oops");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), StatusCode::InvalidArgument);
}

TEST(Failpoint, StateReportsEvaluations) {
  const DisarmGuard guard;
  auto& reg = FailpointRegistry::global();
  reg.arm("dispatch.ladder", 0.0);  // armed but never fires
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(reg.should_fire("dispatch.ladder"));
  }
  const auto armed = reg.armed();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].name, "dispatch.ladder");
  EXPECT_EQ(armed[0].evaluated, 5u);
  EXPECT_EQ(armed[0].fired, 0u);
}

TEST(Failpoint, MacroCompilesInEveryBuild) {
  // In failpoint builds the macro consults the registry; in release builds it
  // is an empty statement. Either way this must compile and not fire here.
  const DisarmGuard guard;
  bool fired = false;
  VALIGN_FAILPOINT("pipeline.pop", fired = true);
  EXPECT_FALSE(fired);
  if (failpoints_compiled()) {
    FailpointRegistry::global().arm("pipeline.pop");
    VALIGN_FAILPOINT("pipeline.pop", fired = true);
    EXPECT_TRUE(fired);
  }
}

}  // namespace
}  // namespace valign::robust
