// Status / StatusOr / StatusError taxonomy (robust/status.hpp).
#include <gtest/gtest.h>

#include <string>

#include "valign/robust/status.hpp"

namespace valign::robust {
namespace {

TEST(RobustStatus, CodesHaveStableSpellings) {
  EXPECT_STREQ(to_string(StatusCode::Ok), "ok");
  EXPECT_STREQ(to_string(StatusCode::InvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(StatusCode::IoMalformed), "io_malformed");
  EXPECT_STREQ(to_string(StatusCode::IoTruncated), "io_truncated");
  EXPECT_STREQ(to_string(StatusCode::EngineSaturated), "engine_saturated");
  EXPECT_STREQ(to_string(StatusCode::ResourceExhausted), "resource_exhausted");
  EXPECT_STREQ(to_string(StatusCode::Internal), "internal");
}

TEST(RobustStatus, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::Ok);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(RobustStatus, FactoriesCarryCodeAndMessage) {
  const Status s = io_malformed("bad record");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::IoMalformed);
  EXPECT_EQ(s.message(), "bad record");
  EXPECT_EQ(s.to_string(), "io_malformed: bad record");
}

TEST(RobustStatus, StatusErrorIsAValignError) {
  try {
    throw_status(resource_exhausted("no memory"));
    FAIL() << "throw_status returned";
  } catch (const Error& e) {  // the pre-taxonomy catch type still works
    EXPECT_EQ(std::string(e.what()), "resource_exhausted: no memory");
  }
  try {
    throw_status(invalid_argument("bad flag"));
    FAIL() << "throw_status returned";
  } catch (const StatusError& e) {  // and new code can switch on the category
    EXPECT_EQ(e.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(e.status().message(), "bad flag");
  }
}

TEST(RobustStatus, StatusOrHoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().is_ok());
}

TEST(RobustStatus, StatusOrHoldsError) {
  const StatusOr<int> v = io_truncated("eof");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::IoTruncated);
  EXPECT_THROW((void)v.value(), StatusError);
}

TEST(RobustStatus, StatusOrRejectsOkStatusWithoutValue) {
  const StatusOr<int> v = Status::ok();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::Internal);
}

}  // namespace
}  // namespace valign::robust
