// Chaos harness (docs/robustness.md): sweep every cataloged failpoint over
// the streamed and batched search drivers and assert the degraded runs are
// principled — no crash, failures/quarantine accounted for in the report,
// and the surviving top-k exactly equal to a clean run restricted to the
// records that survived.
//
// Determinism: sites that fire per-shard/per-build are armed with a fire
// *count* (p=1, N fires) so the failure set never depends on RNG draw order;
// the per-line FASTA site uses a seeded probability (hundreds of draws make
// zero fires impossible in practice). All tests skip in builds without
// failpoint sites (release).
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "../support/random_seqs.hpp"
#include "valign/apps/db_search.hpp"
#include "valign/io/fasta.hpp"
#include "valign/robust/failpoint.hpp"
#include "valign/runtime/scheduler.hpp"

namespace valign::apps {
namespace {

using robust::FailpointRegistry;
using robust::StatusError;
using testing_support::random_protein;

struct DisarmGuard {
  ~DisarmGuard() { FailpointRegistry::global().disarm_all(); }
};

constexpr std::uint64_t kChaosSeed = 20260807;

Dataset make_queries() {
  std::mt19937_64 rng(3);
  Dataset qs(Alphabet::protein());
  qs.add(random_protein("q0", 56, rng));
  qs.add(random_protein("q1", 88, rng));
  return qs;
}

Dataset make_db(std::size_t n = 160) {
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<std::size_t> len(30, 110);
  Dataset db(Alphabet::protein());
  for (std::size_t i = 0; i < n; ++i) {
    db.add(random_protein("d" + std::to_string(i), len(rng), rng));
  }
  return db;
}

std::string to_fasta(const Dataset& db) {
  std::ostringstream out;
  write_fasta(out, db);
  return out.str();
}

/// Hits as (subject name, score) pairs — comparable across runs whose
/// db_index spaces differ (stream order vs survivor order).
using NamedHits = std::vector<std::vector<std::pair<std::string, std::int32_t>>>;

NamedHits named_hits(const SearchReport& rep, const Dataset& db) {
  NamedHits named(rep.top_hits.size());
  for (std::size_t q = 0; q < rep.top_hits.size(); ++q) {
    for (const SearchHit& h : rep.top_hits[q]) {
      named[q].emplace_back(db[h.db_index].name(), h.score);
    }
  }
  return named;
}

/// The db records that survived a streamed chaos run: everything collected
/// minus the [base, base+count) ranges of failed shards.
Dataset survivors_of(const Dataset& collected, const SearchReport& rep) {
  std::vector<bool> lost(collected.size(), false);
  for (const robust::ShardFailure& f : rep.failures) {
    for (std::size_t i = f.base; i < f.base + f.count && i < collected.size();
         ++i) {
      lost[i] = true;
    }
  }
  Dataset out(collected.alphabet());
  for (std::size_t i = 0; i < collected.size(); ++i) {
    if (!lost[i]) out.add(collected[i]);
  }
  return out;
}

/// Ground truth for a survivor set: a clean batch run over exactly those
/// records (failpoints must be disarmed by the caller first). Relative record
/// order is preserved by construction, so score tie-breaks (db_index
/// ascending) resolve identically.
void expect_matches_clean_run(const Dataset& queries, const Dataset& survivors,
                              const SearchConfig& cfg, const NamedHits& chaos,
                              const char* label) {
  SearchConfig clean_cfg = cfg;
  clean_cfg.robust = robust::RobustPolicy{};  // strict: any failure throws
  const SearchReport clean = apps::search(queries, survivors, clean_cfg);
  const NamedHits expected = named_hits(clean, survivors);
  ASSERT_EQ(chaos.size(), expected.size()) << label;
  for (std::size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(chaos[q], expected[q]) << label << ", query " << q;
  }
}

struct StreamRun {
  SearchReport report;
  Dataset collected{Alphabet::protein()};
};

StreamRun run_stream(const Dataset& queries, const std::string& fasta,
                     const SearchConfig& cfg) {
  StreamRun run;
  std::istringstream in(fasta);
  run.report =
      apps::search_stream(queries, in, Alphabet::protein(), cfg, &run.collected);
  return run;
}

SearchConfig chaos_config() {
  SearchConfig cfg;
  cfg.threads = 2;
  cfg.top_k = 5;
  cfg.robust.lenient = true;
  cfg.robust.max_errors = 1'000'000;  // capture failures, never abort
  return cfg;
}

// --- streamed search ---------------------------------------------------------

TEST(Chaos, StreamShardLossLeavesSurvivorTopKIntact) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const std::string fasta = to_fasta(make_db());

  auto& reg = FailpointRegistry::global();
  reg.set_seed(kChaosSeed);
  reg.arm("pipeline.pop", 1.0, 2);  // exactly two shards fail

  const SearchConfig cfg = chaos_config();
  const StreamRun run = run_stream(queries, fasta, cfg);
  reg.disarm_all();

  EXPECT_EQ(run.report.worker_errors, 2u);
  ASSERT_EQ(run.report.failures.size(), 2u);
  for (const robust::ShardFailure& f : run.report.failures) {
    EXPECT_NE(f.error.find("pipeline.pop"), std::string::npos);
  }
  const Dataset survivors = survivors_of(run.collected, run.report);
  EXPECT_EQ(run.collected.size() - survivors.size(), run.report.records_dropped);
  EXPECT_GT(run.report.records_dropped, 0u);
  expect_matches_clean_run(queries, survivors, cfg,
                           named_hits(run.report, run.collected),
                           "pipeline.pop stream");
}

TEST(Chaos, StreamLenientParsingQuarantinesInjectedReadFailures) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset db = make_db();
  const Dataset queries = make_queries();

  auto& reg = FailpointRegistry::global();
  reg.set_seed(kChaosSeed);
  reg.arm("io.fasta.read", 0.1);  // per input line; hundreds of draws

  const SearchConfig cfg = chaos_config();
  const StreamRun run = run_stream(queries, to_fasta(db), cfg);
  reg.disarm_all();

  // Every lost record must be tallied as a quarantine event.
  EXPECT_LT(run.collected.size(), db.size());
  EXPECT_FALSE(run.report.quarantine.empty());
  EXPECT_GT(run.report.quarantine.truncated, 0u);

  const Dataset survivors = survivors_of(run.collected, run.report);
  expect_matches_clean_run(queries, survivors, cfg,
                           named_hits(run.report, run.collected),
                           "io.fasta.read stream");
}

TEST(Chaos, StreamTransientAllocationFailuresAreRetriedWithoutLoss) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const Dataset db = make_db();

  auto& reg = FailpointRegistry::global();
  reg.set_seed(kChaosSeed);
  // Two engine builds fail with resource_exhausted; worst case both land in
  // one shard and its two retries (default max_retries=2) absorb them.
  reg.arm("cache.build", 1.0, 2);

  SearchConfig cfg = chaos_config();
  // cache.build sits on the intra path (EngineCache); Auto would resolve
  // these shards to the inter engine and never evaluate it.
  cfg.engine = EngineMode::Intra;
  const StreamRun run = run_stream(queries, to_fasta(db), cfg);
  reg.disarm_all();

  EXPECT_GE(run.report.shard_retries, 1u);
  EXPECT_EQ(run.report.worker_errors, 0u);
  EXPECT_EQ(run.collected.size(), db.size());
  expect_matches_clean_run(queries, run.collected, cfg,
                           named_hits(run.report, run.collected),
                           "cache.build stream");
}

TEST(Chaos, StreamSaturationInjectionsPreserveScores) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const Dataset db = make_db();
  const std::string fasta = to_fasta(db);

  // dispatch.ladder forces a widen-retry, interseq.refill forces an
  // intra-ladder fallback: both must reproduce the exact clean scores with
  // zero records lost (the injection is absorbed below the result layer).
  for (const char* fp : {"dispatch.ladder", "interseq.refill"}) {
    auto& reg = FailpointRegistry::global();
    reg.disarm_all();
    reg.set_seed(kChaosSeed);
    reg.arm(fp, 1.0, 8);

    SearchConfig cfg = chaos_config();
    // Pin the engine family that owns each site: dispatch.ladder fires in
    // Aligner::align (intra), interseq.refill in the lane refill loop (inter).
    cfg.engine = std::string(fp) == "interseq.refill" ? EngineMode::Inter
                                                      : EngineMode::Intra;
    const StreamRun run = run_stream(queries, fasta, cfg);
    reg.disarm_all();

    EXPECT_EQ(run.report.worker_errors, 0u) << fp;
    EXPECT_EQ(run.collected.size(), db.size()) << fp;
    expect_matches_clean_run(queries, run.collected, cfg,
                             named_hits(run.report, run.collected), fp);
  }
}

TEST(Chaos, StreamWorkerHangFailsFastUnderWatchdog) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const std::string fasta = to_fasta(make_db());

  auto& reg = FailpointRegistry::global();
  reg.set_seed(kChaosSeed);
  reg.arm("pipeline.worker_hang", 1.0, 1);

  SearchConfig cfg = chaos_config();
  cfg.threads = 1;
  cfg.robust.stall_timeout_ms = 100;
  try {
    const StreamRun run = run_stream(queries, fasta, cfg);
    FAIL() << "a hung worker must trip the watchdog, got "
           << run.report.alignments << " alignments";
  } catch (const StatusError& e) {
    EXPECT_NE(std::string(e.what()).find("pipeline stalled"), std::string::npos)
        << e.what();
  }
}

// --- batched search ----------------------------------------------------------

/// Maps a batch run's block failures back to the (query, db_index) pairs they
/// covered, by rebuilding the (deterministic) schedule the driver used.
std::set<std::pair<std::size_t, std::size_t>> lost_pairs(
    const Dataset& queries, const Dataset& db, const SearchConfig& cfg,
    const SearchReport& rep) {
  const int lane_count = engine_lane_count(cfg);
  const runtime::Schedule sched = runtime::make_search_schedule(
      queries, db,
      runtime::ScheduleConfig{cfg.sched, cfg.threads, cfg.grain_cells,
                              lane_count});
  std::set<std::pair<std::size_t, std::size_t>> lost;
  for (const robust::ShardFailure& f : rep.failures) {
    EXPECT_NE(f.query, robust::ShardFailure::kAllQueries)
        << "batch failures must name their query";
    for (std::size_t k = f.base; k < f.base + f.count; ++k) {
      lost.insert({f.query, sched.db_index(k)});
    }
  }
  return lost;
}

TEST(Chaos, BatchBlockLossLeavesSurvivingPairsTopKIntact) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const Dataset db = make_db();

  SearchConfig cfg = chaos_config();
  cfg.robust.max_retries = 0;  // every injected failure loses its block
  cfg.engine = EngineMode::Intra;  // cache.build is an intra-path site

  // Ground truth: every pair's score, from a clean exhaustive run.
  SearchConfig full_cfg = cfg;
  full_cfg.top_k = static_cast<int>(db.size());
  full_cfg.robust = robust::RobustPolicy{};
  const SearchReport full = apps::search(queries, db, full_cfg);

  auto& reg = FailpointRegistry::global();
  reg.set_seed(kChaosSeed);
  reg.arm("cache.build", 1.0, 2);  // two engine builds fail -> two lost blocks

  const SearchReport rep = apps::search(queries, db, cfg);
  reg.disarm_all();
  ASSERT_GT(rep.worker_errors, 0u);
  EXPECT_LE(rep.worker_errors, 2u);

  const auto lost = lost_pairs(queries, db, cfg, rep);
  EXPECT_EQ(lost.size(), rep.records_dropped);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::vector<SearchHit> expected;
    for (const SearchHit& h : full.top_hits[q]) {
      if (!lost.contains({q, h.db_index})) expected.push_back(h);
    }
    keep_top_hits(expected, cfg.top_k);
    ASSERT_EQ(rep.top_hits[q].size(), expected.size()) << "query " << q;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(rep.top_hits[q][i].db_index, expected[i].db_index)
          << "query " << q << " hit " << i;
      EXPECT_EQ(rep.top_hits[q][i].score, expected[i].score)
          << "query " << q << " hit " << i;
    }
  }
}

TEST(Chaos, BatchSaturationInjectionsPreserveScores) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const Dataset db = make_db();

  // cache.build is transient (absorbed by retries); the other two are
  // score-preserving by design. None may lose records or change scores.
  for (const char* fp : {"dispatch.ladder", "interseq.refill", "cache.build"}) {
    auto& reg = FailpointRegistry::global();
    reg.disarm_all();
    reg.set_seed(kChaosSeed);
    reg.arm(fp, 1.0, fp == std::string("cache.build") ? 2 : 8);

    SearchConfig cfg = chaos_config();
    cfg.engine = std::string(fp) == "interseq.refill" ? EngineMode::Inter
                                                      : EngineMode::Intra;
    const SearchReport chaos = apps::search(queries, db, cfg);
    EXPECT_EQ(chaos.worker_errors, 0u) << fp;

    reg.disarm_all();
    SearchConfig clean_cfg = cfg;
    clean_cfg.robust = robust::RobustPolicy{};
    const SearchReport clean = apps::search(queries, db, clean_cfg);
    const NamedHits a = named_hits(chaos, db);
    const NamedHits b = named_hits(clean, db);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(a[q], b[q]) << fp << ", query " << q;
    }
  }
}

TEST(Chaos, PrefilterScreenFailureDegradesToUnfilteredSearch) {
  // An injected screen failure must cost throughput, never answers: the
  // affected block degrades to full DP for every one of its pairs (all-
  // escalate), so the top-k stays exactly equal to a clean unfiltered run —
  // in both the batch driver (per-query screen blocks) and the streamed
  // pipeline (per-shard screens).
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const Dataset db = make_db();

  SearchConfig clean_cfg = chaos_config();
  clean_cfg.robust = robust::RobustPolicy{};
  clean_cfg.prefilter = PrefilterMode::Off;
  const SearchReport clean = apps::search(queries, db, clean_cfg);
  const NamedHits expected = named_hits(clean, db);

  auto& reg = FailpointRegistry::global();

  {  // batch: 2 queries x 160 subjects = 2 screen blocks; one of them fails
    reg.set_seed(kChaosSeed);
    reg.arm("prefilter.screen", 1.0, 1);
    SearchConfig cfg = chaos_config();
    cfg.prefilter = PrefilterMode::Force;
    const SearchReport rep = apps::search(queries, db, cfg);
    reg.disarm_all();

    EXPECT_EQ(rep.worker_errors, 0u) << "a screen failure is not a shard failure";
    EXPECT_EQ(rep.records_dropped, 0u);
    EXPECT_GE(rep.prefilter.screen_failures, 1u);
    // The degraded block's pairs still count as screened and escalated, so
    // the accounting identity survives the failure.
    EXPECT_EQ(rep.prefilter.screened, queries.size() * db.size());
    EXPECT_EQ(rep.prefilter.escaped + rep.prefilter.escalated,
              rep.prefilter.screened);
    const NamedHits got = named_hits(rep, db);
    for (std::size_t q = 0; q < expected.size(); ++q) {
      EXPECT_EQ(got[q], expected[q]) << "batch, query " << q;
    }
  }

  {  // streamed: several shard screens fail; survivors must be consistent
    reg.set_seed(kChaosSeed);
    reg.arm("prefilter.screen", 1.0, 3);
    SearchConfig cfg = chaos_config();
    cfg.prefilter = PrefilterMode::Force;
    const StreamRun run = run_stream(queries, to_fasta(db), cfg);
    reg.disarm_all();

    EXPECT_EQ(run.report.worker_errors, 0u);
    EXPECT_EQ(run.collected.size(), db.size());
    EXPECT_GE(run.report.prefilter.screen_failures, 1u);
    EXPECT_EQ(run.report.prefilter.escaped + run.report.prefilter.escalated,
              run.report.prefilter.screened);
    const NamedHits got = named_hits(run.report, run.collected);
    for (std::size_t q = 0; q < expected.size(); ++q) {
      EXPECT_EQ(got[q], expected[q]) << "stream, query " << q;
    }
  }
}

TEST(Chaos, BatchLenientParsingQuarantinesCorruptRecords) {
  // No failpoints needed: textual corruption exercises the same quarantine
  // path the CLI uses for on-disk databases, so this runs in release too.
  const Dataset queries = make_queries();
  const Dataset db = make_db(40);
  std::string fasta = to_fasta(db);
  fasta += ">corrupt1\n";                       // empty record
  fasta += ">corrupt2\nNOTAPROTE1NLINE\n";      // bad residue ('1')
  std::istringstream in(fasta);

  robust::QuarantineStats quarantine;
  const Dataset parsed =
      read_fasta(in, Alphabet::protein(), FastaReaderConfig{true}, &quarantine);
  EXPECT_EQ(parsed.size(), db.size());
  EXPECT_EQ(quarantine.records, 2u);

  SearchConfig cfg;
  cfg.top_k = 5;
  const SearchReport chaos = apps::search(queries, parsed, cfg);
  const SearchReport clean = apps::search(queries, db, cfg);
  const NamedHits a = named_hits(chaos, parsed);
  const NamedHits b = named_hits(clean, db);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(a[q], b[q]) << "query " << q;
  }
}

}  // namespace
}  // namespace valign::apps
