// Lenient FASTA parsing, quarantine accounting, and the strict-mode error
// messages (line numbers + record names).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "valign/io/fasta.hpp"
#include "valign/robust/quarantine.hpp"
#include "valign/robust/status.hpp"

namespace valign {
namespace {

using robust::QuarantinedRecord;
using robust::QuarantineStats;
using robust::StatusCode;
using robust::StatusError;

/// what() of the StatusError thrown by strict parsing of `fasta`.
std::string strict_error(const std::string& fasta) {
  std::istringstream in(fasta);
  try {
    (void)read_fasta(in, Alphabet::protein());
  } catch (const StatusError& e) {
    return e.what();
  }
  return "";
}

TEST(FastaQuarantine, StrictErrorsNameLineAndRecord) {
  // Empty record: the diagnostic must carry the header's line number and the
  // record's name, so a bad line in a multi-GB file is findable.
  const std::string empty_rec = strict_error(">a\nMKT\n>broken\n>c\nMKV\n");
  EXPECT_NE(empty_rec.find("io_malformed"), std::string::npos) << empty_rec;
  EXPECT_NE(empty_rec.find("line 3"), std::string::npos) << empty_rec;
  EXPECT_NE(empty_rec.find("'broken'"), std::string::npos) << empty_rec;

  const std::string before_header = strict_error("MKT\n");
  EXPECT_NE(before_header.find("line 1"), std::string::npos) << before_header;

  const std::string bad_residue = strict_error(">ok\nMKT\n>weird\nM1T\n");
  EXPECT_NE(bad_residue.find("'weird'"), std::string::npos) << bad_residue;
  EXPECT_NE(bad_residue.find("line 3"), std::string::npos) << bad_residue;
}

TEST(FastaQuarantine, StrictOversizedRecordIsResourceExhausted) {
  std::istringstream in(">big\nMKTAYIAKQR\n");
  FastaReader reader(in, Alphabet::protein(),
                     FastaReaderConfig{false, 4});
  try {
    (void)reader.next();
    FAIL() << "oversized record should throw in strict mode";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::ResourceExhausted);
    EXPECT_NE(std::string(e.what()).find("max_sequence_length"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'big'"), std::string::npos);
  }
}

TEST(FastaQuarantine, LenientSkipsBadRecordsAndKeepsGoodOnes) {
  // bad1: empty record; bad2: invalid residue; bad3: oversized. The three
  // good records must come through with their residues intact.
  std::istringstream in(
      ">good1\nMKT\n"
      ">bad1\n"
      ">good2\nMKV\n"
      ">bad2\nM1T\n"
      ">bad3\nMKTAYIAKQRMKTAYIAKQR\n"
      ">good3\nMK\n");
  QuarantineStats q;
  const Dataset ds =
      read_fasta(in, Alphabet::protein(), FastaReaderConfig{true, 10}, &q);

  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds[0].name(), "good1");
  EXPECT_EQ(ds[1].name(), "good2");
  EXPECT_EQ(ds[2].name(), "good3");

  EXPECT_EQ(q.records, 3u);
  EXPECT_EQ(q.malformed, 2u);
  EXPECT_EQ(q.oversized, 1u);
  EXPECT_EQ(q.truncated, 0u);
  ASSERT_EQ(q.samples.size(), 3u);
  EXPECT_EQ(q.samples[0].name, "bad1");
  EXPECT_EQ(q.samples[1].name, "bad2");
  EXPECT_EQ(q.samples[2].name, "bad3");
  EXPECT_EQ(q.samples[2].code, StatusCode::ResourceExhausted);
}

TEST(FastaQuarantine, LenientResyncsAfterDataBeforeFirstHeader) {
  std::istringstream in("GARBAGE\nMORE\n>ok\nMKT\n");
  QuarantineStats q;
  const Dataset ds =
      read_fasta(in, Alphabet::protein(), FastaReaderConfig{true}, &q);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].name(), "ok");
  // One quarantine event per resync, not one per garbage line.
  EXPECT_EQ(q.records, 1u);
}

TEST(FastaQuarantine, SampleCapDoesNotLoseCounts) {
  std::ostringstream fasta;
  for (int i = 0; i < 40; ++i) fasta << ">bad" << i << "\n";  // all empty
  fasta << ">good\nMKT\n";
  std::istringstream in(fasta.str());
  QuarantineStats q;
  const Dataset ds =
      read_fasta(in, Alphabet::protein(), FastaReaderConfig{true}, &q);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(q.records, 40u);
  EXPECT_EQ(q.samples.size(), QuarantineStats::kMaxSamples);
}

TEST(FastaQuarantine, StatsMergeAcrossReaders) {
  QuarantineStats a;
  a.add(QuarantinedRecord{"x", 1, StatusCode::IoMalformed, "r"});
  QuarantineStats b;
  b.add(QuarantinedRecord{"y", 2, StatusCode::ResourceExhausted, "r"});
  b.add(QuarantinedRecord{"z", 3, StatusCode::IoTruncated, "r"});
  a += b;
  EXPECT_EQ(a.records, 3u);
  EXPECT_EQ(a.malformed, 1u);
  EXPECT_EQ(a.oversized, 1u);
  EXPECT_EQ(a.truncated, 1u);
  EXPECT_EQ(a.samples.size(), 3u);
}

TEST(FastaQuarantine, StrictModeMatchesLegacyBehaviourOnCleanInput) {
  std::istringstream in(">a desc ignored\nMK\nTA\n>b\nVW\n");
  const Dataset ds = read_fasta(in, Alphabet::protein());
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].name(), "a");
  EXPECT_EQ(ds[0].size(), 4u);
  EXPECT_EQ(ds[1].name(), "b");
}

}  // namespace
}  // namespace valign
