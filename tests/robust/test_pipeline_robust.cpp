// SearchPipeline fault tolerance: destructor safety, worker exception
// capture, the --max-errors budget, transient retries, and the stall
// watchdog. Failpoint-driven tests skip themselves in builds without
// injection sites (release): arming would be a silent no-op there.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "../support/random_seqs.hpp"
#include "valign/apps/db_search.hpp"
#include "valign/robust/failpoint.hpp"
#include "valign/runtime/pipeline.hpp"

namespace valign::runtime {
namespace {

using robust::FailpointRegistry;
using robust::StatusError;
using testing_support::random_protein;

struct DisarmGuard {
  ~DisarmGuard() { FailpointRegistry::global().disarm_all(); }
};

Dataset make_queries(std::size_t n = 2) {
  std::mt19937_64 rng(7);
  Dataset qs(Alphabet::protein());
  for (std::size_t i = 0; i < n; ++i) {
    qs.add(random_protein("q" + std::to_string(i), 48 + 16 * i, rng));
  }
  return qs;
}

Dataset make_db(std::size_t n, std::uint64_t seed = 11) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> len(30, 90);
  Dataset db(Alphabet::protein());
  for (std::size_t i = 0; i < n; ++i) {
    db.add(random_protein("d" + std::to_string(i), len(rng), rng));
  }
  return db;
}

void push_all(SearchPipeline& p, const Dataset& db) {
  for (const Sequence& s : db) p.push(s);
}

// --- destructor safety (regression: never-called finish()) -------------------

TEST(PipelineRobust, DestructorWithoutFinishJoinsIdleWorkers) {
  const Dataset queries = make_queries();
  // Workers are blocked on the empty queue; the destructor must close and
  // join them without finish() ever running (no deadlock, no terminate).
  SearchPipeline pipeline(queries, PipelineConfig{});
}

TEST(PipelineRobust, DestructorWithoutFinishDrainsPendingShards) {
  const Dataset queries = make_queries();
  const Dataset db = make_db(100);
  PipelineConfig cfg;
  cfg.search.threads = 2;
  cfg.batch_size = 4;
  {
    SearchPipeline pipeline(queries, cfg);
    push_all(pipeline, db);
    // Simulated producer-side exception: the pipeline goes out of scope with
    // shards still queued. The destructor discards them and joins.
  }
  SUCCEED();
}

TEST(PipelineRobust, DestructorAfterFinishIsANoop) {
  const Dataset queries = make_queries();
  const Dataset db = make_db(8);
  SearchPipeline pipeline(queries, PipelineConfig{});
  push_all(pipeline, db);
  const apps::SearchReport rep = pipeline.finish();
  EXPECT_EQ(rep.alignments, queries.size() * db.size());
  // Destructor runs at scope exit on the finished_ fast path.
}

// --- worker exception capture + error budget ---------------------------------

TEST(PipelineRobust, ShardFailureWithinBudgetIsRecordedNotThrown) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const Dataset db = make_db(40);

  PipelineConfig cfg;
  cfg.batch_size = 8;  // 5 shards
  cfg.search.robust.max_errors = 1;
  FailpointRegistry::global().arm("pipeline.pop", 1.0, 1);  // fail one shard

  SearchPipeline pipeline(queries, cfg);
  push_all(pipeline, db);
  const apps::SearchReport rep = pipeline.finish();

  EXPECT_EQ(rep.worker_errors, 1u);
  ASSERT_EQ(rep.failures.size(), 1u);
  EXPECT_EQ(rep.failures[0].count, 8u);
  EXPECT_EQ(rep.failures[0].base % 8, 0u);
  EXPECT_NE(rep.failures[0].error.find("pipeline.pop"), std::string::npos);
  EXPECT_EQ(rep.records_dropped, 8u);
  // The other four shards were aligned normally.
  EXPECT_EQ(rep.alignments, queries.size() * (db.size() - 8));
}

TEST(PipelineRobust, ShardFailuresBeyondBudgetThrowSummarizedError) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const Dataset db = make_db(16);

  PipelineConfig cfg;
  cfg.batch_size = 4;
  cfg.search.robust.max_errors = 0;  // strict
  FailpointRegistry::global().arm("pipeline.pop");  // every shard fails

  SearchPipeline pipeline(queries, cfg);
  push_all(pipeline, db);
  try {
    (void)pipeline.finish();
    FAIL() << "finish() should rethrow when the error budget is exceeded";
  } catch (const StatusError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 of 4 shard(s) failed"), std::string::npos) << what;
    EXPECT_NE(what.find("--max-errors 0"), std::string::npos) << what;
    EXPECT_NE(what.find("pipeline.pop"), std::string::npos) << what;
  }
  // finish() joined everything before throwing; destruction is clean.
}

TEST(PipelineRobust, TransientFailureIsRetriedAndSucceeds) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries();
  const Dataset db = make_db(12);

  // cache.build throws resource_exhausted — transient by taxonomy — exactly
  // once; the retry rebuilds the engine and the shard completes.
  FailpointRegistry::global().arm("cache.build", 1.0, 1);

  PipelineConfig cfg;
  cfg.search.robust.max_errors = 0;  // a permanent failure would throw
  SearchPipeline pipeline(queries, cfg);
  push_all(pipeline, db);
  const apps::SearchReport rep = pipeline.finish();

  EXPECT_GE(rep.shard_retries, 1u);
  EXPECT_EQ(rep.worker_errors, 0u);
  EXPECT_EQ(rep.alignments, queries.size() * db.size());
}

// --- stall watchdog ----------------------------------------------------------

TEST(PipelineRobust, WatchdogTripsOnHungWorkerWithDiagnostic) {
  if (!robust::failpoints_compiled()) {
    GTEST_SKIP() << "build has no failpoint sites (VALIGN_ENABLE_FAILPOINTS=OFF)";
  }
  const DisarmGuard guard;
  const Dataset queries = make_queries(1);
  const Dataset db = make_db(40);

  PipelineConfig cfg;
  cfg.search.threads = 1;
  cfg.batch_size = 4;  // several shards stay queued behind the hung one
  cfg.search.robust.stall_timeout_ms = 100;
  FailpointRegistry::global().arm("pipeline.worker_hang", 1.0, 1);

  SearchPipeline pipeline(queries, cfg);
  try {
    push_all(pipeline, db);
    (void)pipeline.finish();
    FAIL() << "a hung worker with pending shards must trip the watchdog";
  } catch (const StatusError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pipeline stalled"), std::string::npos) << what;
    EXPECT_NE(what.find("queue_depth"), std::string::npos) << what;
    EXPECT_NE(what.find("no progress for 100 ms"), std::string::npos) << what;
  }
  // Destructor tears the stalled pipeline down without hanging the test.
}

TEST(PipelineRobust, WatchdogStaysQuietOnHealthyRun) {
  const Dataset queries = make_queries();
  const Dataset db = make_db(30);
  PipelineConfig cfg;
  cfg.search.threads = 2;
  cfg.search.robust.stall_timeout_ms = 10'000;
  SearchPipeline pipeline(queries, cfg);
  push_all(pipeline, db);
  const apps::SearchReport rep = pipeline.finish();
  EXPECT_EQ(rep.alignments, queries.size() * db.size());
  EXPECT_EQ(rep.worker_errors, 0u);
}

}  // namespace
}  // namespace valign::runtime
