// The batched alignment runtime: engine cache reuse (including the overflow
// ladder), scheduler pair-granularity correctness, the streaming pipeline,
// and deterministic top-k ordering.
#include <gtest/gtest.h>

#include <sstream>

#include <numeric>

#include "../support/random_seqs.hpp"
#include "valign/apps/db_search.hpp"
#include "valign/apps/homology.hpp"
#include "valign/core/scalar.hpp"
#include "valign/io/fasta.hpp"
#include "valign/obs/metrics.hpp"
#include "valign/runtime/engine_cache.hpp"
#include "valign/runtime/pipeline.hpp"
#include "valign/runtime/scheduler.hpp"
#include "valign/workload/generator.hpp"

namespace valign {
namespace {

using testing_support::random_codes;

// --- Engine cache ------------------------------------------------------------

TEST(EngineCache, OverflowLadderReusesEngines) {
  // A long self-alignment scores far beyond int8/int16, so the first align()
  // climbs the ladder (one build per rung). A second identical call must
  // perform ZERO additional constructions: every rung's engine is cached.
  std::mt19937_64 rng(41);
  const auto q = random_codes(8000, rng);
  Options opts;
  opts.klass = AlignClass::Local;
  opts.approach = Approach::Striped;
  Aligner aligner(opts);
  aligner.set_query(q);

  const AlignResult first = aligner.align(q);
  EXPECT_FALSE(first.overflowed);
  EXPECT_EQ(first.bits, 32);
  const std::uint64_t builds_after_first = aligner.cache_stats().builds;
  EXPECT_GE(builds_after_first, 2u);  // at least one overflow rung climbed

  const AlignResult second = aligner.align(q);
  EXPECT_EQ(second.score, first.score);
  EXPECT_EQ(aligner.cache_stats().builds, builds_after_first)
      << "second call rebuilt an engine the cache should have kept";

  // The ladder's answer matches a direct 32-bit run.
  Options wide = opts;
  wide.width = ElemWidth::W32;
  Aligner direct(wide);
  direct.set_query(q);
  EXPECT_EQ(direct.align(q).score, first.score);
}

TEST(EngineCache, AlternatingWidthsBuildEachEngineOnce) {
  // Global alignment widths are proved safe up front, so the dispatcher may
  // narrow again for short subjects. Alternating subject lengths must reuse
  // the two engines, not reconstruct them per call.
  std::mt19937_64 rng(42);
  const auto q = random_codes(60, rng);
  const auto d_short = random_codes(40, rng);   // fits 16-bit
  const auto d_long = random_codes(8400, rng);  // worst-case excursion needs 32
  Options opts;
  opts.klass = AlignClass::Global;
  opts.approach = Approach::Striped;
  Aligner aligner(opts);
  aligner.set_query(q);

  const AlignResult a = aligner.align(d_short);
  const AlignResult b = aligner.align(d_long);
  ASSERT_NE(a.bits, b.bits) << "test premise: the two subjects resolve to "
                               "different element widths";
  const std::uint64_t builds = aligner.cache_stats().builds;

  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(aligner.align(d_short).score, a.score);
    EXPECT_EQ(aligner.align(d_long).score, b.score);
  }
  EXPECT_EQ(aligner.cache_stats().builds, builds)
      << "width alternation must be construction-free";
  EXPECT_GE(aligner.cache_stats().hits, 20u);
}

TEST(EngineCache, ApproachFlipsReuseEnginesAcrossQueries) {
  // Queries on either side of an engine-model crossover flip engines.
  // Revisiting a query length must hit the cache, and an unchanged query
  // must not trigger a profile rebuild. The model is injected so the flip
  // is guaranteed no matter what this host's pinned crossovers say.
  std::mt19937_64 rng(43);
  EngineModel model;
  for (auto& row : model.cells)
    for (auto& c : row)
      c = {Approach::Scan, Approach::Deconstructed, 100};
  Options opts;
  opts.klass = AlignClass::Local;
  opts.width = ElemWidth::W32;
  opts.model = &model;
  Aligner aligner(opts);
  const auto q_short = random_codes(40, rng);
  const auto q_long = random_codes(400, rng);
  const auto d = random_codes(200, rng);

  aligner.set_query(q_short);
  const AlignResult a = aligner.align(d);
  aligner.set_query(q_long);
  const AlignResult b = aligner.align(d);
  ASSERT_NE(a.approach, b.approach)
      << "test premise: crossover straddled so the approaches differ";
  const std::uint64_t builds = aligner.cache_stats().builds;
  EXPECT_EQ(builds, 2u);

  for (int i = 0; i < 5; ++i) {
    aligner.set_query(q_short);
    EXPECT_EQ(aligner.align(d).score, a.score);
    aligner.set_query(q_long);
    EXPECT_EQ(aligner.align(d).score, b.score);
  }
  EXPECT_EQ(aligner.cache_stats().builds, builds);

  // Re-aligning without changing the query must not even re-set the profile.
  const std::uint64_t profile_sets = aligner.cache_stats().profile_sets;
  (void)aligner.align(d);
  EXPECT_EQ(aligner.cache_stats().profile_sets, profile_sets);
}

TEST(EngineCache, DisabledCacheKeepsSingleEngine) {
  std::mt19937_64 rng(44);
  const auto q = random_codes(60, rng);
  const auto d_short = random_codes(40, rng);
  const auto d_long = random_codes(8400, rng);
  Options opts;
  opts.klass = AlignClass::Global;
  opts.approach = Approach::Striped;
  opts.cache_engines = false;
  Aligner aligner(opts);
  aligner.set_query(q);
  (void)aligner.align(d_short);
  (void)aligner.align(d_long);
  (void)aligner.align(d_short);
  (void)aligner.align(d_long);
  // Capacity 1: every width flip evicts and rebuilds.
  EXPECT_EQ(aligner.cache_stats().builds, 4u);
  EXPECT_GE(aligner.cache_stats().evictions, 3u);
}

TEST(EngineCache, LruEvictionBoundsLiveEngines) {
  runtime::EngineCache cache(2);
  const std::vector<std::uint8_t> q{0, 1, 2, 3, 4};
  cache.set_query(q);
  detail::EngineSpec spec;
  spec.matrix = &ScoreMatrix::blosum62();
  spec.isa = Isa::Emul;
  spec.approach = Approach::Striped;
  spec.bits = 32;

  spec.emul_lanes = 4;
  (void)cache.acquire(spec);
  spec.emul_lanes = 8;
  (void)cache.acquire(spec);
  EXPECT_EQ(cache.size(), 2u);
  spec.emul_lanes = 16;
  (void)cache.acquire(spec);  // evicts lanes=4
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  spec.emul_lanes = 8;
  (void)cache.acquire(spec);  // still resident
  EXPECT_EQ(cache.stats().hits, 1u);
}

// --- Scheduler ---------------------------------------------------------------

TEST(Scheduler, SearchScheduleCoversCrossProductExactlyOnce) {
  const Dataset queries = workload::bacteria_2k(31, 5);
  const Dataset db = workload::uniprot_like(37, 32);
  for (const auto mode : {runtime::PairSched::Query, runtime::PairSched::Pair}) {
    runtime::ScheduleConfig cfg;
    cfg.sched = mode;
    cfg.threads = 8;
    cfg.grain_cells = 50'000;  // force many blocks
    const runtime::Schedule sched = runtime::make_search_schedule(queries, db, cfg);
    std::vector<int> seen(queries.size() * db.size(), 0);
    std::uint64_t cost = 0;
    for (const runtime::WorkBlock& b : sched.blocks) {
      ASSERT_LT(b.query, queries.size());
      ASSERT_LT(b.begin, b.end);
      for (std::size_t k = b.begin; k < b.end; ++k) {
        const std::size_t d = sched.db_index(k);
        ASSERT_LT(d, db.size());
        ++seen[b.query * db.size() + d];
      }
      cost += b.cost;
    }
    for (const int count : seen) EXPECT_EQ(count, 1) << to_string(mode);
    // Cost model: sum of qlen * dlen over all pairs.
    std::uint64_t want_cost = 0;
    for (const Sequence& q : queries) want_cost += q.size() * db.total_residues();
    EXPECT_EQ(cost, want_cost) << to_string(mode);
    if (mode == runtime::PairSched::Pair) {
      EXPECT_GT(sched.blocks.size(), queries.size())
          << "grain should split each query's sweep";
      // LPT: largest block first.
      for (std::size_t i = 1; i < sched.blocks.size(); ++i) {
        EXPECT_GE(sched.blocks[i - 1].cost, sched.blocks[i].cost);
      }
    }
  }
}

TEST(Scheduler, AllPairsScheduleCoversTriangleExactlyOnce) {
  const Dataset ds = workload::bacteria_2k(33, 23);
  for (const auto mode : {runtime::PairSched::Query, runtime::PairSched::Pair}) {
    runtime::ScheduleConfig cfg;
    cfg.sched = mode;
    cfg.threads = 8;
    cfg.grain_cells = 100'000;
    const runtime::Schedule sched = runtime::make_all_pairs_schedule(ds, cfg);
    std::vector<int> seen(ds.size() * ds.size(), 0);
    for (const runtime::WorkBlock& b : sched.blocks) {
      for (std::size_t j = b.begin; j < b.end; ++j) {
        ASSERT_LT(b.query, j) << "all-pairs blocks must stay strictly above "
                                 "the diagonal";
        ++seen[b.query * ds.size() + j];
      }
    }
    for (std::size_t i = 0; i < ds.size(); ++i) {
      for (std::size_t j = 0; j < ds.size(); ++j) {
        EXPECT_EQ(seen[i * ds.size() + j], i < j ? 1 : 0);
      }
    }
  }
}

TEST(Scheduler, AutoPicksPairWhenQueriesCannotFillThreads) {
  const Dataset queries = workload::bacteria_2k(34, 3);
  const Dataset db = workload::uniprot_like(64, 35);
  runtime::ScheduleConfig cfg;
  cfg.threads = 8;
  EXPECT_EQ(runtime::make_search_schedule(queries, db, cfg).mode,
            runtime::PairSched::Pair);
  cfg.threads = 1;
  // 3 queries comfortably feed one thread.
  EXPECT_EQ(runtime::make_search_schedule(queries, db, cfg).mode,
            runtime::PairSched::Query);
}

TEST(Scheduler, PairModeBucketsByLength) {
  const Dataset db = workload::uniprot_like(50, 36);
  const Dataset queries = workload::bacteria_2k(37, 2);
  runtime::ScheduleConfig cfg;
  cfg.sched = runtime::PairSched::Pair;
  const runtime::Schedule sched = runtime::make_search_schedule(queries, db, cfg);
  ASSERT_EQ(sched.order.size(), db.size());
  for (std::size_t k = 1; k < sched.order.size(); ++k) {
    EXPECT_GE(db[sched.order[k - 1]].size(), db[sched.order[k]].size());
  }
}

TEST(Scheduler, ParseRoundTrip) {
  EXPECT_EQ(runtime::parse_pair_sched("query"), runtime::PairSched::Query);
  EXPECT_EQ(runtime::parse_pair_sched("pair"), runtime::PairSched::Pair);
  EXPECT_EQ(runtime::parse_pair_sched("auto"), runtime::PairSched::Auto);
  EXPECT_THROW((void)runtime::parse_pair_sched("zigzag"), Error);
}

// --- Pair-scheduled search vs serial reference -------------------------------

TEST(RuntimeSearch, PairSchedMatchesQuerySchedAndScalarTruth) {
  const Dataset queries = workload::bacteria_2k(51, 5);
  const Dataset db = workload::uniprot_like(40, 52);

  apps::SearchConfig query_cfg;
  query_cfg.sched = runtime::PairSched::Query;
  query_cfg.top_k = 7;
  apps::SearchConfig pair_cfg = query_cfg;
  pair_cfg.sched = runtime::PairSched::Pair;
  pair_cfg.grain_cells = 30'000;  // many small blocks
  pair_cfg.threads = 4;

  const apps::SearchReport a = apps::search(queries, db, query_cfg);
  const apps::SearchReport b = apps::search(queries, db, pair_cfg);
  ASSERT_EQ(a.top_hits.size(), b.top_hits.size());
  EXPECT_EQ(a.alignments, b.alignments);
  EXPECT_EQ(a.cells_real, b.cells_real);
  for (std::size_t q = 0; q < a.top_hits.size(); ++q) {
    ASSERT_EQ(a.top_hits[q].size(), b.top_hits[q].size()) << "query " << q;
    for (std::size_t k = 0; k < a.top_hits[q].size(); ++k) {
      EXPECT_EQ(a.top_hits[q][k].db_index, b.top_hits[q][k].db_index)
          << "query " << q << " rank " << k;
      EXPECT_EQ(a.top_hits[q][k].score, b.top_hits[q][k].score);
    }
  }

  // And the scores are the scalar truth.
  ScalarAligner<AlignClass::Local> ref(ScoreMatrix::blosum62(),
                                       ScoreMatrix::blosum62().default_gaps());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ref.set_query(queries[q].codes());
    for (const apps::SearchHit& h : b.top_hits[q]) {
      EXPECT_EQ(ref.align(db[h.db_index].codes()).score, h.score);
    }
  }
}

TEST(RuntimeSearch, KeepTopIsDeterministicUnderTies) {
  std::vector<apps::SearchHit> hits;
  for (const std::size_t idx : {7u, 3u, 9u, 1u, 5u}) {
    hits.push_back(apps::SearchHit{idx, 100, -1, -1});
  }
  hits.push_back(apps::SearchHit{2, 200, -1, -1});
  apps::keep_top_hits(hits, 4);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].db_index, 2u);  // highest score first
  // Ties resolved by ascending database index.
  EXPECT_EQ(hits[1].db_index, 1u);
  EXPECT_EQ(hits[2].db_index, 3u);
  EXPECT_EQ(hits[3].db_index, 5u);
}

TEST(RuntimeSearch, HomologyPairSchedMatchesQuerySched) {
  const Dataset ds = workload::bacteria_2k(53, 14);
  apps::HomologyConfig query_cfg;
  query_cfg.score_threshold = 70;
  query_cfg.sched = runtime::PairSched::Query;
  apps::HomologyConfig pair_cfg = query_cfg;
  pair_cfg.sched = runtime::PairSched::Pair;
  pair_cfg.grain_cells = 40'000;
  pair_cfg.threads = 4;

  const apps::HomologyReport a = apps::detect(ds, query_cfg);
  const apps::HomologyReport b = apps::detect(ds, pair_cfg);
  EXPECT_EQ(a.alignments, b.alignments);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t e = 0; e < a.edges.size(); ++e) {
    EXPECT_EQ(a.edges[e].a, b.edges[e].a);
    EXPECT_EQ(a.edges[e].b, b.edges[e].b);
    EXPECT_EQ(a.edges[e].score, b.edges[e].score);
  }
  EXPECT_EQ(a.cluster_count, b.cluster_count);
}

// --- Streaming pipeline ------------------------------------------------------

TEST(Pipeline, StreamedSearchMatchesBatchSearch) {
  const Dataset queries = workload::bacteria_2k(61, 4);
  const Dataset db = workload::uniprot_like(55, 62);
  std::ostringstream fasta;
  write_fasta(fasta, db);

  apps::SearchConfig cfg;
  cfg.top_k = 6;
  cfg.threads = 3;
  const apps::SearchReport batch = apps::search(queries, db, cfg);

  std::istringstream in(fasta.str());
  Dataset collected(db.alphabet());
  const apps::SearchReport streamed =
      apps::search_stream(queries, in, db.alphabet(), cfg, &collected);

  EXPECT_EQ(collected.size(), db.size());
  EXPECT_EQ(streamed.alignments, batch.alignments);
  EXPECT_EQ(streamed.cells_real, batch.cells_real);
  ASSERT_EQ(streamed.top_hits.size(), batch.top_hits.size());
  for (std::size_t q = 0; q < batch.top_hits.size(); ++q) {
    ASSERT_EQ(streamed.top_hits[q].size(), batch.top_hits[q].size());
    for (std::size_t k = 0; k < batch.top_hits[q].size(); ++k) {
      EXPECT_EQ(streamed.top_hits[q][k].db_index, batch.top_hits[q][k].db_index)
          << "query " << q << " rank " << k;
      EXPECT_EQ(streamed.top_hits[q][k].score, batch.top_hits[q][k].score);
    }
  }
}

TEST(Pipeline, SmallBatchesAndBackpressure) {
  const Dataset queries = workload::bacteria_2k(63, 2);
  const Dataset db = workload::uniprot_like(33, 64);

  runtime::PipelineConfig pcfg;
  pcfg.search.top_k = 3;
  pcfg.search.threads = 2;
  pcfg.batch_size = 1;      // one sequence per shard
  pcfg.queue_capacity = 2;  // force the producer to block
  runtime::SearchPipeline pipeline(queries, pcfg);
  for (const Sequence& s : db) pipeline.push(s);
  EXPECT_EQ(pipeline.pushed(), db.size());
  const apps::SearchReport rep = pipeline.finish();

  apps::SearchConfig cfg;
  cfg.top_k = 3;
  const apps::SearchReport want = apps::search(queries, db, cfg);
  ASSERT_EQ(rep.top_hits.size(), want.top_hits.size());
  for (std::size_t q = 0; q < want.top_hits.size(); ++q) {
    ASSERT_EQ(rep.top_hits[q].size(), want.top_hits[q].size());
    for (std::size_t k = 0; k < want.top_hits[q].size(); ++k) {
      EXPECT_EQ(rep.top_hits[q][k].db_index, want.top_hits[q][k].db_index);
      EXPECT_EQ(rep.top_hits[q][k].score, want.top_hits[q][k].score);
    }
  }
}

TEST(Pipeline, DestructorJoinsWithoutFinish) {
  const Dataset queries = workload::bacteria_2k(65, 2);
  const Dataset db = workload::uniprot_like(8, 66);
  {
    runtime::SearchPipeline pipeline(queries, runtime::PipelineConfig{});
    for (const Sequence& s : db) pipeline.push(s);
    // No finish(): the destructor must still close and join cleanly.
  }
  SUCCEED();
}

// --- Streaming FASTA reader --------------------------------------------------

// --- Observability ----------------------------------------------------------

std::uint64_t sum_widths(const std::array<std::uint64_t, 3>& w) {
  return std::accumulate(w.begin(), w.end(), std::uint64_t{0});
}

TEST(RuntimeMetrics, SearchReportExposesCacheAndWidthActivity) {
  const Dataset queries = workload::bacteria_2k(71, 3);
  const Dataset db = workload::uniprot_like(30, 72);
  apps::SearchConfig cfg;
  cfg.threads = 2;
  cfg.sched = runtime::PairSched::Pair;
  cfg.grain_cells = 20'000;
  const apps::SearchReport rep = apps::search(queries, db, cfg);

  // Every alignment resolved some element width — no more, no fewer.
  EXPECT_EQ(sum_widths(rep.width_counts), rep.alignments);
  // Lookups happen only when the resolved engine spec changes, so there are
  // fewer of them than alignments — that absence IS the cache working.
  EXPECT_GT(rep.cache.lookups, 0u);
  EXPECT_LE(rep.cache.lookups, rep.alignments);
  // Every miss built an engine (no failed builds in this workload).
  EXPECT_EQ(rep.cache.misses(), rep.cache.builds);
  EXPECT_GT(rep.cache.hits, 0u) << "pair blocks revisit queries; must hit";
  // A worker cannot set more profiles than it answered lookups.
  EXPECT_LE(rep.cache.profile_sets, rep.cache.lookups);
}

TEST(RuntimeMetrics, ProfileCacheHitsAcrossBlocksWithoutChangingTopK) {
  // Multi-block pair scheduling revisits each query once per block, so the
  // shared query-profile cache (core/profile_cache, docs/kernels.md) must
  // serve rebuilds from memory: hit rate > 0, and reuse must be invisible in
  // the results — the top-k of a warm pair-sched run equals a cold
  // query-sched run bit for bit.
  SharedProfileCache::global().reset();
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t lookups0 =
      reg.counter("runtime.kernel.profile_cache.lookups").value();
  const std::uint64_t hits0 =
      reg.counter("runtime.kernel.profile_cache.hits").value();

  const Dataset queries = workload::bacteria_2k(77, 3);
  const Dataset db = workload::uniprot_like(36, 78);
  apps::SearchConfig cfg;
  cfg.sched = runtime::PairSched::Pair;
  cfg.grain_cells = 10'000;  // small grain => several blocks per query
  cfg.engine = EngineMode::Intra;
  const apps::SearchReport warm = apps::search(queries, db, cfg);

  EXPECT_GT(warm.profile_cache.lookups, 0u);
  EXPECT_GT(warm.profile_cache.hits, 0u)
      << "pair blocks revisit queries; the shared profile cache must hit";
  EXPECT_GT(warm.profile_cache.hit_rate(), 0.0);
  // The report's per-run delta is exactly what reached the global registry.
  EXPECT_EQ(reg.counter("runtime.kernel.profile_cache.lookups").value() -
                lookups0,
            warm.profile_cache.lookups);
  EXPECT_EQ(reg.counter("runtime.kernel.profile_cache.hits").value() - hits0,
            warm.profile_cache.hits);
  // Every alignment was answered by exactly one engine (the census the
  // runtime.kernel.approach.* counters are fed from).
  std::uint64_t census = 0;
  for (const std::uint64_t n : warm.totals.approach_counts) census += n;
  EXPECT_EQ(census, warm.alignments);

  // Cold run, one block per query: no reuse possible across blocks, same
  // hits.
  SharedProfileCache::global().reset();
  apps::SearchConfig cold_cfg = cfg;
  cold_cfg.sched = runtime::PairSched::Query;
  const apps::SearchReport cold = apps::search(queries, db, cold_cfg);
  ASSERT_EQ(warm.top_hits.size(), cold.top_hits.size());
  for (std::size_t q = 0; q < warm.top_hits.size(); ++q) {
    ASSERT_EQ(warm.top_hits[q].size(), cold.top_hits[q].size());
    for (std::size_t k = 0; k < warm.top_hits[q].size(); ++k) {
      EXPECT_EQ(warm.top_hits[q][k].db_index, cold.top_hits[q][k].db_index);
      EXPECT_EQ(warm.top_hits[q][k].score, cold.top_hits[q][k].score);
    }
  }
}

TEST(RuntimeMetrics, GlobalRegistryAccumulatesCacheAndScheduleCounters) {
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t lookups0 = reg.counter("runtime.engine_cache.lookups").value();
  const std::uint64_t hits0 = reg.counter("runtime.engine_cache.hits").value();
  const std::uint64_t sched0 = reg.counter("runtime.sched.schedules").value();
  const std::uint64_t blocks0 = reg.counter("runtime.sched.blocks").value();

  const Dataset queries = workload::bacteria_2k(73, 2);
  const Dataset db = workload::uniprot_like(25, 74);
  apps::SearchConfig cfg;
  cfg.sched = runtime::PairSched::Pair;
  cfg.grain_cells = 20'000;
  const apps::SearchReport rep = apps::search(queries, db, cfg);

  EXPECT_EQ(reg.counter("runtime.engine_cache.lookups").value() - lookups0,
            rep.cache.lookups);
  EXPECT_EQ(reg.counter("runtime.engine_cache.hits").value() - hits0,
            rep.cache.hits);
  EXPECT_EQ(reg.counter("runtime.sched.schedules").value() - sched0, 1u);
  // Block coverage: the published block count is the schedule's block count,
  // and every block's cells landed in the size census histogram.
  const std::uint64_t new_blocks =
      reg.counter("runtime.sched.blocks").value() - blocks0;
  EXPECT_GT(new_blocks, 1u);
  const runtime::Schedule sched = runtime::make_search_schedule(
      queries, db,
      runtime::ScheduleConfig{cfg.sched, cfg.threads, cfg.grain_cells,
                              apps::engine_lane_count(cfg)});
  EXPECT_EQ(new_blocks, sched.blocks.size());
}

TEST(RuntimeMetrics, StreamedAndBatchReportsAgree) {
  const Dataset queries = workload::bacteria_2k(75, 3);
  const Dataset db = workload::uniprot_like(40, 76);
  apps::SearchConfig cfg;
  cfg.threads = 3;
  cfg.top_k = 6;
  // Force the intra-task engine: padded work totals (totals.cells, the
  // lazy-F census) are engine-execution details, and the Auto policy may
  // legitimately pick inter vs intra differently for the two drivers'
  // partitions. EngineAgnosticReportsAgree covers the Auto contract.
  cfg.engine = EngineMode::Intra;

  const apps::SearchReport batch = apps::search(queries, db, cfg);

  std::ostringstream fasta;
  write_fasta(fasta, db);
  std::istringstream in(fasta.str());
  const apps::SearchReport streamed =
      apps::search_stream(queries, in, db.alphabet(), cfg);

  // Identical scores and identical work totals, not just similar ones.
  EXPECT_EQ(streamed.alignments, batch.alignments);
  EXPECT_EQ(streamed.cells_real, batch.cells_real);
  EXPECT_EQ(streamed.totals.cells, batch.totals.cells);
  EXPECT_EQ(streamed.width_counts, batch.width_counts);
  EXPECT_EQ(sum_widths(streamed.width_counts), streamed.alignments);
  ASSERT_EQ(streamed.top_hits.size(), batch.top_hits.size());
  for (std::size_t q = 0; q < batch.top_hits.size(); ++q) {
    ASSERT_EQ(streamed.top_hits[q].size(), batch.top_hits[q].size());
    for (std::size_t k = 0; k < batch.top_hits[q].size(); ++k) {
      EXPECT_EQ(streamed.top_hits[q][k].db_index, batch.top_hits[q][k].db_index);
      EXPECT_EQ(streamed.top_hits[q][k].score, batch.top_hits[q][k].score);
    }
  }
  // Cache activity is partitioned differently across workers but must stay
  // self-consistent.
  EXPECT_GT(streamed.cache.lookups, 0u);
  EXPECT_EQ(streamed.cache.misses(), streamed.cache.builds);

  // Engine-side histograms merged identically: the same columns were walked.
  EXPECT_EQ(streamed.totals.lazyf_hist.total(), batch.totals.lazyf_hist.total());
}

TEST(RuntimeMetrics, EngineAgnosticReportsAgree) {
  // Under EngineMode::Auto the two drivers partition work differently and so
  // may route different blocks through the lane-packed engine. Everything a
  // caller observes — hits, alignment count, real cells, width mix — must
  // still match bit-for-bit; only padded work accounting may differ.
  const Dataset queries = workload::bacteria_2k(75, 3);
  const Dataset db = workload::uniprot_like(40, 76);
  apps::SearchConfig cfg;
  cfg.threads = 3;
  cfg.top_k = 6;
  cfg.engine = EngineMode::Auto;

  const apps::SearchReport batch = apps::search(queries, db, cfg);

  std::ostringstream fasta;
  write_fasta(fasta, db);
  std::istringstream in(fasta.str());
  const apps::SearchReport streamed =
      apps::search_stream(queries, in, db.alphabet(), cfg);

  EXPECT_EQ(streamed.alignments, batch.alignments);
  EXPECT_EQ(streamed.cells_real, batch.cells_real);
  EXPECT_EQ(streamed.width_counts, batch.width_counts);
  EXPECT_GE(streamed.totals.cells, streamed.cells_real);
  EXPECT_GE(batch.totals.cells, batch.cells_real);
  ASSERT_EQ(streamed.top_hits.size(), batch.top_hits.size());
  for (std::size_t q = 0; q < batch.top_hits.size(); ++q) {
    ASSERT_EQ(streamed.top_hits[q].size(), batch.top_hits[q].size());
    for (std::size_t k = 0; k < batch.top_hits[q].size(); ++k) {
      EXPECT_EQ(streamed.top_hits[q][k].db_index, batch.top_hits[q][k].db_index);
      EXPECT_EQ(streamed.top_hits[q][k].score, batch.top_hits[q][k].score);
      EXPECT_EQ(streamed.top_hits[q][k].query_end, batch.top_hits[q][k].query_end);
      EXPECT_EQ(streamed.top_hits[q][k].db_end, batch.top_hits[q][k].db_end);
    }
  }
}

TEST(RuntimeMetrics, PipelinePublishesQueueDepthAndShards) {
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t shards0 = reg.counter("runtime.pipeline.shards").value();

  const Dataset queries = workload::bacteria_2k(77, 2);
  const Dataset db = workload::uniprot_like(50, 78);
  std::ostringstream fasta;
  write_fasta(fasta, db);
  std::istringstream in(fasta.str());
  apps::SearchConfig cfg;
  cfg.threads = 2;
  const apps::SearchReport rep = apps::search_stream(queries, in, db.alphabet(), cfg);
  EXPECT_EQ(rep.alignments, queries.size() * db.size());

  const std::uint64_t shards = reg.counter("runtime.pipeline.shards").value() - shards0;
  EXPECT_GE(shards, 1u);
  EXPECT_GE(reg.gauge("runtime.pipeline.queue_depth_max").value(), 1);
}

TEST(RuntimeMetrics, HomologyReportCarriesCacheAndWidths) {
  const Dataset ds = workload::bacteria_2k(79, 10);
  apps::HomologyConfig cfg;
  cfg.threads = 2;
  cfg.sched = runtime::PairSched::Pair;
  cfg.grain_cells = 30'000;
  const apps::HomologyReport rep = apps::detect(ds, cfg);
  EXPECT_EQ(rep.alignments, ds.size() * (ds.size() - 1) / 2);
  EXPECT_EQ(sum_widths(rep.width_counts), rep.alignments);
  EXPECT_GT(rep.cache.lookups, 0u);
  EXPECT_LE(rep.cache.lookups, rep.alignments);
}

TEST(FastaReader, YieldsRecordsIncrementally) {
  std::istringstream in(">a desc\nMKT\nAYI\n;comment\n>b\nWCWH\n");
  FastaReader reader(in, Alphabet::protein());
  const auto a = reader.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->name(), "a");
  EXPECT_EQ(a->to_string(), "MKTAYI");
  const auto b = reader.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->name(), "b");
  EXPECT_EQ(b->to_string(), "WCWH");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.count(), 2u);
}

TEST(FastaReader, DiagnosesMalformedInput) {
  {
    std::istringstream in("MKT\n");
    FastaReader reader(in, Alphabet::protein());
    EXPECT_THROW((void)reader.next(), Error);
  }
  {
    std::istringstream in(">a\n>b\nMKT\n");
    FastaReader reader(in, Alphabet::protein());
    EXPECT_THROW((void)reader.next(), Error);  // record 'a' has no residues
  }
}

TEST(RuntimeMetrics, BucketFillCountsOnlyPrefilterSurvivors) {
  // With the prescreen on, pairs are screened *before* bucketing: the
  // runtime.sched.bucket_fill histogram must see exactly one sample per
  // escalation chunk (the survivor blocks actually packed into lanes) and
  // none for the pairs the filter rejected — otherwise the occupancy
  // telemetry reports lanes that were never filled.
  obs::Registry& reg = obs::Registry::global();
  static constexpr std::uint64_t kFillBounds[] = {25, 50, 75, 90, 99};
  obs::Histogram& fill = reg.histogram("runtime.sched.bucket_fill", kFillBounds);

  const Dataset queries = workload::bacteria_2k(81, 2);
  const Dataset db = workload::uniprot_like(150, 82);
  apps::SearchConfig cfg;
  cfg.engine = EngineMode::Inter;
  cfg.sched = runtime::PairSched::Pair;
  cfg.top_k = 3;
  cfg.prefilter = PrefilterMode::Force;

  const std::uint64_t fills0 = fill.total_count();
  const std::uint64_t sum0 = fill.sum();
  const apps::SearchReport rep = apps::search(queries, db, cfg);
  const std::uint64_t fills = fill.total_count() - fills0;
  const std::uint64_t sum = fill.sum() - sum0;

  ASSERT_GT(rep.prefilter.escaped, 0u)
      << "corpus produced no rejections; the assertion below would be vacuous";
  ASSERT_GT(rep.prefilter.chunks, 0u);
  const int lanes = apps::engine_lane_count(cfg);
  if (lanes > 1) {
    // One histogram sample per survivor chunk — rejected pairs never bucketed.
    EXPECT_EQ(fills, rep.prefilter.chunks);
    // Occupancy samples are percentages of actually-packed lanes.
    EXPECT_GT(sum, 0u);
    EXPECT_LE(sum, 100 * fills);
  } else {
    EXPECT_EQ(fills, 0u) << "single-lane hosts must not record lane fill";
  }

  // Contrast: the unfiltered run goes through make_search_schedule, which
  // buckets every pair; its fill samples are per schedule block, not per
  // escalation chunk, and strictly more pairs land in lanes.
  cfg.prefilter = PrefilterMode::Off;
  const std::uint64_t fills1 = fill.total_count();
  const apps::SearchReport off = apps::search(queries, db, cfg);
  EXPECT_EQ(off.prefilter.chunks, 0u);
  if (lanes > 1) {
    EXPECT_GT(fill.total_count(), fills1)
        << "the unfiltered pair scheduler must keep publishing lane fill";
  }
}

}  // namespace
}  // namespace valign
