// Overflow-boundary behaviour: adversarial inputs whose optimal scores land
// exactly on (or one off) the int8/int16 saturation rails. The width-retry
// ladder must PROMOTE to wider elements and return the exact score — never
// clamp at the rail — and the per-query floor (floor_bits_) must persist
// across aligns of the same query and reset with the next set_query.
//
// Score arithmetic (blosum62 self-matches: W-W = 11, A-A = 4, all perfect
// matches, no gaps):
//   1 W + 29 A  -> 11 + 116   = 127    == INT8_MAX  (on the rail)
//   2 W + 26 A  -> 22 + 104   = 126    just under
//   2 W + 27 A  -> 22 + 108   = 130    just over
//   1 W + 8189 A -> 11 + 32756 = 32767 == INT16_MAX (on the rail)
//   2 W + 8186 A -> 22 + 32744 = 32766 just under
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "valign/core/dispatch.hpp"
#include "valign/core/scalar.hpp"
#include "valign/io/sequence.hpp"
#include "valign/matrices/matrix.hpp"
#include "valign/runtime/engine_cache.hpp"

namespace valign {
namespace {

std::vector<std::uint8_t> codes_of(int n_trp, int n_ala) {
  std::string s(static_cast<std::size_t>(n_trp), 'W');
  s.append(static_cast<std::size_t>(n_ala), 'A');
  const Sequence seq("boundary", s, Alphabet::protein());
  return {seq.codes().begin(), seq.codes().end()};
}

std::int32_t self_score(const std::vector<std::uint8_t>& q) {
  return align_scalar(AlignClass::Local, ScoreMatrix::blosum62(), {11, 1}, q, q)
      .score;
}

AlignResult run_local(const std::vector<std::uint8_t>& q,
                      const std::vector<std::uint8_t>& d,
                      ElemWidth width = ElemWidth::Auto) {
  Options opts;
  opts.klass = AlignClass::Local;
  opts.approach = Approach::Striped;
  opts.width = width;
  Aligner aligner(opts);
  aligner.set_query(q);
  return aligner.align(d);
}

TEST(OverflowBoundary, ScoreExactlyAtInt8RailPromotesTo16) {
  const auto q = codes_of(1, 29);
  ASSERT_EQ(self_score(q), 127);  // the arithmetic above, verified by scalar

  const AlignResult r = run_local(q, q);
  EXPECT_EQ(r.score, 127);
  EXPECT_FALSE(r.overflowed);
  // 127 saturates int8 (indistinguishable from a clamped larger score), so
  // the ladder must have answered from a wider rung.
  EXPECT_GE(r.bits, 16);
}

TEST(OverflowBoundary, ScoreJustUnderInt8RailStaysAt8) {
  const auto q = codes_of(2, 26);
  ASSERT_EQ(self_score(q), 126);

  const AlignResult r = run_local(q, q);
  EXPECT_EQ(r.score, 126);
  EXPECT_EQ(r.bits, 8) << "126 < INT8_MAX must be answerable without promotion";
}

TEST(OverflowBoundary, ScoreJustOverInt8RailIsNotClamped) {
  const auto q = codes_of(2, 27);
  ASSERT_EQ(self_score(q), 130);

  // Fixed 8-bit must saturate and say so; it must NOT return a clamped 127.
  const AlignResult narrow = run_local(q, q, ElemWidth::W8);
  EXPECT_TRUE(narrow.overflowed);

  const AlignResult r = run_local(q, q);
  EXPECT_EQ(r.score, 130);
  EXPECT_GE(r.bits, 16);
}

TEST(OverflowBoundary, ScoreExactlyAtInt16RailPromotesTo32) {
  const auto q = codes_of(1, 8189);
  const AlignResult r = run_local(q, q);
  EXPECT_EQ(r.score, 32767);
  EXPECT_FALSE(r.overflowed);
  EXPECT_EQ(r.bits, 32);

  // Fixed 16-bit saturates on the same input.
  const AlignResult narrow = run_local(q, q, ElemWidth::W16);
  EXPECT_TRUE(narrow.overflowed);
}

TEST(OverflowBoundary, ScoreJustUnderInt16RailStaysAt16) {
  const auto q = codes_of(2, 8186);
  const AlignResult r = run_local(q, q);
  EXPECT_EQ(r.score, 32766);
  EXPECT_EQ(r.bits, 16);
}

TEST(OverflowBoundary, FloorPersistsAcrossAlignsOfTheSameQuery) {
  // First align overflows 8-bit and lands at 16. The per-query floor must
  // remember that: a later small subject (score 12, fits 8-bit easily) is
  // still answered at 16 bits — no pointless 8-bit attempt per subject.
  const auto q = codes_of(2, 27);  // self-score 130 > INT8_MAX
  const auto tiny = codes_of(0, 3);

  Options opts;
  opts.klass = AlignClass::Local;
  opts.approach = Approach::Striped;
  Aligner aligner(opts);
  aligner.set_query(q);

  const AlignResult warm = aligner.align(q);
  ASSERT_GE(warm.bits, 16);
  const std::uint64_t builds = aligner.cache_stats().builds;

  const AlignResult after = aligner.align(tiny);
  EXPECT_EQ(after.bits, warm.bits) << "floor forgotten between aligns";
  EXPECT_EQ(aligner.cache_stats().builds, builds)
      << "raised floor must reuse the cached wide engine, not build anew";

  // Scores stay exact either way.
  EXPECT_EQ(after.score,
            align_scalar(AlignClass::Local, ScoreMatrix::blosum62(), {11, 1}, q, tiny)
                .score);
}

TEST(OverflowBoundary, FloorResetsOnSetQuery) {
  const auto big = codes_of(2, 27);
  const auto small = codes_of(0, 10);

  Options opts;
  opts.klass = AlignClass::Local;
  opts.approach = Approach::Striped;
  Aligner aligner(opts);

  aligner.set_query(big);
  ASSERT_GE(aligner.align(big).bits, 16);  // raises the floor

  aligner.set_query(small);
  const AlignResult r = aligner.align(small);
  EXPECT_EQ(r.bits, 8) << "floor must reset with the new query";
  EXPECT_EQ(r.score, 40);  // 10 * A-A
}

TEST(OverflowBoundary, GlobalWidthsAreProvenNotRetried) {
  // NW/SG use the static width proof instead of the runtime ladder: the
  // returned width must satisfy width_is_safe, and narrow widths must never
  // be attempted when the proof rules them out (no overflow flag ever).
  const auto q = codes_of(1, 499);  // long enough that 8-bit is unsafe
  for (const AlignClass klass : {AlignClass::Global, AlignClass::SemiGlobal}) {
    Options opts;
    opts.klass = klass;
    opts.approach = Approach::Striped;
    Aligner aligner(opts);
    aligner.set_query(q);
    const AlignResult r = aligner.align(q);
    EXPECT_FALSE(r.overflowed);
    EXPECT_TRUE(width_is_safe(klass, r.bits, q.size(), q.size(), {11, 1},
                              ScoreMatrix::blosum62()))
        << to_string(klass) << " answered at an unproven width";
    EXPECT_EQ(r.score,
              align_scalar(klass, ScoreMatrix::blosum62(), {11, 1}, q, q).score);
  }
}

}  // namespace
}  // namespace valign
