// Differential battery for the two-stage search prescreen (docs/prefilter.md):
// seeded workloads searched twice — prefilter off vs force — and the per-query
// top-k compared entry by entry. The contract is *exact* equality: same
// scores AND same tie-break order (score desc, db_index asc), across classes,
// scoring schemes, engine families, thread counts and top-k depths.
//
// Adversarial shapes get their own cases: duplicated subjects (score ties
// straddling the k-th boundary), single-residue mutants (screen scores
// clustered within a few points of the cutoff), and all-saturating i8 inputs
// (every screen hits the rail and must escalate, never drop).
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <sstream>
#include <vector>

#include "../support/random_seqs.hpp"
#include "valign/apps/db_search.hpp"
#include "valign/core/calibrate.hpp"
#include "valign/core/prefilter.hpp"
#include "valign/io/fasta.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign::apps {
namespace {

using testing_support::random_codes;

constexpr AlignClass kClasses[] = {AlignClass::Global, AlignClass::SemiGlobal,
                                   AlignClass::Local};

struct Scheme {
  const char* matrix;
  GapPenalty gap;
};

constexpr Scheme kSchemes[] = {
    {"blosum62", {11, 1}},
    {"blosum50", {13, 2}},
};

Sequence protein(std::string name, std::vector<std::uint8_t> codes) {
  return Sequence(std::move(name), std::move(codes), Alphabet::protein());
}

/// Queries with distinct length regimes; cores planted into the db below so
/// the top-k is contested, not a uniform noise floor.
Dataset make_queries(std::mt19937_64& rng) {
  Dataset qs(Alphabet::protein());
  qs.add(protein("q0", random_codes(40, rng)));
  qs.add(protein("q1", random_codes(90, rng)));
  qs.add(protein("q2", random_codes(150, rng)));
  return qs;
}

/// Mixed-length database: two thirds noise, one third carrying a copied
/// fragment of some query (strong hits at every length scale).
Dataset make_db(const Dataset& queries, std::size_t n, std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> len(20, 240);
  Dataset db(Alphabet::protein());
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> d = random_codes(len(rng), rng);
    if (i % 3 == 0) {
      const Sequence& q = queries[i % queries.size()];
      const std::size_t core = std::min({q.size(), d.size(), std::size_t{48}});
      std::copy_n(q.codes().begin(), core, d.begin());
    }
    db.add(protein("d" + std::to_string(i), std::move(d)));
  }
  return db;
}

/// Exact hit-vector equality under the hit_before order: the filtered run
/// must reproduce scores and tie-breaks, not just the score multiset.
/// Returns the number of hit entries compared.
int expect_same_hits(const SearchReport& off, const SearchReport& on,
                     const char* label) {
  EXPECT_EQ(off.top_hits.size(), on.top_hits.size()) << label;
  int compared = 0;
  for (std::size_t q = 0; q < off.top_hits.size(); ++q) {
    EXPECT_EQ(off.top_hits[q].size(), on.top_hits[q].size())
        << label << ", query " << q;
    const std::size_t n = std::min(off.top_hits[q].size(), on.top_hits[q].size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(off.top_hits[q][i].db_index, on.top_hits[q][i].db_index)
          << label << ", query " << q << " hit " << i;
      EXPECT_EQ(off.top_hits[q][i].score, on.top_hits[q][i].score)
          << label << ", query " << q << " hit " << i;
      ++compared;
    }
  }
  return compared;
}

/// Runs the same search with the prescreen off and forced, checks the
/// equality contract plus the report's accounting identity, and returns the
/// comparison count.
int diff_search(const Dataset& queries, const Dataset& db, SearchConfig cfg,
                const char* label) {
  cfg.prefilter = PrefilterMode::Off;
  const SearchReport off = apps::search(queries, db, cfg);
  EXPECT_FALSE(off.prefilter.enabled) << label;
  EXPECT_EQ(off.prefilter.screened, 0u) << label;

  cfg.prefilter = PrefilterMode::Force;
  const SearchReport on = apps::search(queries, db, cfg);
  EXPECT_TRUE(on.prefilter.enabled) << label;
  EXPECT_EQ(on.prefilter.screened, queries.size() * db.size()) << label;
  EXPECT_EQ(on.prefilter.escaped + on.prefilter.escalated, on.prefilter.screened)
      << label;
  // Escalations, not screens, are full alignments; the report must count the
  // DP actually performed so GCUPS stays honest.
  EXPECT_EQ(on.alignments, on.prefilter.escalated) << label;
  return expect_same_hits(off, on, label);
}

TEST(PrefilterDifferential, FilteredTopKMatchesUnfilteredAcrossConfigs) {
  std::mt19937_64 rng(6102);
  const Dataset queries = make_queries(rng);
  const Dataset db = make_db(queries, 110, rng);

  int compared = 0;
  int config = 0;
  for (const AlignClass klass : kClasses) {
    for (const Scheme& s : kSchemes) {
      for (const EngineMode engine :
           {EngineMode::Auto, EngineMode::Intra, EngineMode::Inter}) {
        for (const int top_k : {1, 3, 8}) {
          SearchConfig cfg;
          cfg.align.klass = klass;
          cfg.align.matrix = &ScoreMatrix::from_name(s.matrix);
          cfg.align.gap = s.gap;
          cfg.engine = engine;
          cfg.top_k = top_k;
          cfg.threads = 1 + (config++ % 2);  // alternate serial / 2 workers
          std::ostringstream label;
          label << to_string(klass) << "/" << s.matrix << " " << s.gap.open
                << "/" << s.gap.extend << " engine=" << to_string(engine)
                << " k=" << top_k << " t=" << cfg.threads;
          SCOPED_TRACE(label.str());
          compared += diff_search(queries, db, cfg, label.str().c_str());
        }
      }
    }
  }
  EXPECT_GE(compared, 500) << "prefilter differential coverage shrank";
  std::printf("[prefilter-differential] %d filtered-vs-unfiltered hit "
              "comparisons\n", compared);
}

TEST(PrefilterDifferential, DuplicateSubjectsKeepTieBreakOrder) {
  // Five copies of each base subject: whole tie groups share one score, and
  // top_k = 7 lands the cut *inside* a group, so any tie-break deviation
  // (db_index order) is visible, not masked by truncation.
  std::mt19937_64 rng(31);
  Dataset queries(Alphabet::protein());
  queries.add(protein("q", random_codes(70, rng)));
  Dataset db(Alphabet::protein());
  std::size_t idx = 0;
  for (std::size_t base = 0; base < 12; ++base) {
    const std::vector<std::uint8_t> d = random_codes(60, rng);
    for (int copy = 0; copy < 5; ++copy) {
      db.add(protein("d" + std::to_string(idx++), d));
    }
  }
  for (const AlignClass klass : kClasses) {
    SearchConfig cfg;
    cfg.align.klass = klass;
    cfg.top_k = 7;
    cfg.threads = 2;
    SCOPED_TRACE(to_string(klass));
    diff_search(queries, db, cfg, to_string(klass));
  }
}

TEST(PrefilterDifferential, NearThresholdMutantsStayExact) {
  // Single-residue mutants of one base subject: true scores (and screen upper
  // bounds) cluster within a few points, so the k-th-best cutoff sits in a
  // dense score band — the regime where an off-by-one margin or a non-strict
  // drop comparison would lose a legitimate hit.
  std::mt19937_64 rng(47);
  Dataset queries(Alphabet::protein());
  const std::vector<std::uint8_t> q = random_codes(80, rng);
  queries.add(protein("q", q));
  Dataset db(Alphabet::protein());
  std::uniform_int_distribution<std::size_t> pos(0, q.size() - 1);
  std::uniform_int_distribution<int> res(0, 19);
  for (std::size_t i = 0; i < 64; ++i) {
    std::vector<std::uint8_t> d = q;
    d[pos(rng)] = static_cast<std::uint8_t>(res(rng));
    db.add(protein("m" + std::to_string(i), std::move(d)));
  }
  for (const AlignClass klass : kClasses) {
    for (const int top_k : {1, 8}) {
      SearchConfig cfg;
      cfg.align.klass = klass;
      cfg.top_k = top_k;
      cfg.threads = 2;
      std::ostringstream label;
      label << to_string(klass) << " k=" << top_k;
      SCOPED_TRACE(label.str());
      diff_search(queries, db, cfg, label.str().c_str());
    }
  }
}

TEST(PrefilterDifferential, AllSaturatingInputsEscalateEverything) {
  // Identical tryptophan runs score 11/residue under BLOSUM62: every pair
  // exceeds the i8 rail (127), so every screen must come back saturated and
  // every pair must take the full-DP path — the conservative rail, proven by
  // the report's accounting, with hits still exactly equal.
  std::mt19937_64 rng(58);
  const std::uint8_t trp = 17;  // 'W' in the protein alphabet's code order
  Dataset queries(Alphabet::protein());
  queries.add(protein("wq", std::vector<std::uint8_t>(200, trp)));
  Dataset db(Alphabet::protein());
  for (std::size_t i = 0; i < 40; ++i) {
    db.add(protein("w" + std::to_string(i),
                   std::vector<std::uint8_t>(30 + i * 4, trp)));
  }
  for (const AlignClass klass : {AlignClass::Local, AlignClass::SemiGlobal}) {
    SearchConfig cfg;
    cfg.align.klass = klass;
    cfg.top_k = 6;
    SCOPED_TRACE(to_string(klass));

    cfg.prefilter = PrefilterMode::Off;
    const SearchReport off = apps::search(queries, db, cfg);
    cfg.prefilter = PrefilterMode::Force;
    const SearchReport on = apps::search(queries, db, cfg);

    // 30*11 = 330 > 127: the shortest subject already saturates, so no pair
    // may escape the screen. (Emul hosts screen at 16 bits; 330 < 32767, so
    // gate the all-saturated assertion on an 8-bit screen.)
    Prefilter probe;
    if (probe.bits() == 8) {
      EXPECT_EQ(on.prefilter.saturated, on.prefilter.screened);
      EXPECT_EQ(on.prefilter.escalated, on.prefilter.screened);
      EXPECT_EQ(on.prefilter.escaped, 0u);
    }
    expect_same_hits(off, on, to_string(klass));
  }
}

TEST(PrefilterDifferential, CalibratedMarginModelStaysExact) {
  // A measured margin model only ever *adds* slack (margins >= 0), so the
  // filter with a calibrated model must stay exact too — this guards the
  // plumbing (model threading through SearchConfig), not just the math.
  PrefilterCalibrationConfig ccfg;
  ccfg.db_count = 10;
  ccfg.query_count = 2;
  ccfg.seed = 91;
  const PrefilterModel model = calibrate_prefilter(ccfg);

  std::mt19937_64 rng(77);
  const Dataset queries = make_queries(rng);
  const Dataset db = make_db(queries, 80, rng);
  for (const AlignClass klass : kClasses) {
    SearchConfig cfg;
    cfg.align.klass = klass;
    cfg.top_k = 5;
    cfg.threads = 2;
    cfg.prefilter_model = &model;
    SCOPED_TRACE(to_string(klass));
    diff_search(queries, db, cfg, to_string(klass));
  }
}

TEST(PrefilterDifferential, StreamedFilteredMatchesBatchUnfiltered) {
  // The pipeline's prefilter path (per-shard screens, persistent per-query
  // cutoffs) against the batch driver with the filter off: same hits, same
  // order, and the streamed report's accounting identity holds.
  std::mt19937_64 rng(63);
  const Dataset queries = make_queries(rng);
  const Dataset db = make_db(queries, 150, rng);
  std::ostringstream fasta;
  write_fasta(fasta, db);

  for (const AlignClass klass : kClasses) {
    SearchConfig cfg;
    cfg.align.klass = klass;
    cfg.top_k = 6;
    cfg.threads = 2;
    SCOPED_TRACE(to_string(klass));

    cfg.prefilter = PrefilterMode::Off;
    const SearchReport batch_off = apps::search(queries, db, cfg);

    cfg.prefilter = PrefilterMode::Force;
    std::istringstream in(fasta.str());
    const SearchReport streamed =
        apps::search_stream(queries, in, Alphabet::protein(), cfg);
    EXPECT_TRUE(streamed.prefilter.enabled);
    EXPECT_EQ(streamed.prefilter.screened, queries.size() * db.size());
    EXPECT_EQ(streamed.prefilter.escaped + streamed.prefilter.escalated,
              streamed.prefilter.screened);
    expect_same_hits(batch_off, streamed, to_string(klass));
  }
}

}  // namespace
}  // namespace valign::apps
