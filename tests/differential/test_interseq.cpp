// Differential harness for the inter-sequence (lane-packed) engine family:
// randomized seeded batches pushed through BatchAligner and compared pair by
// pair against the scalar ground truth — scores AND end positions, since the
// packed kernel promises scalar-identical tie-breaks.
//
// Batch sizes are chosen to never be lane-count multiples on any ISA
// (1, 3, 5, 9, 33, 65...), so lane refill and end-of-batch underfill run on
// every host; saturation cases force the per-pair intra-task fallback.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <vector>

#include "../support/random_seqs.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/scalar.hpp"
#include "valign/matrices/matrix.hpp"
#include "valign/simd/arch.hpp"

namespace valign {
namespace {

using testing_support::random_codes;
using testing_support::related_pair;

constexpr AlignClass kClasses[] = {AlignClass::Global, AlignClass::SemiGlobal,
                                   AlignClass::Local};

struct Scheme {
  const char* matrix;
  GapPenalty gap;
};

constexpr Scheme kSchemes[] = {
    {"blosum62", {11, 1}},
    {"blosum62", {10, 2}},
    {"blosum50", {13, 2}},
};

using Batch = std::vector<std::vector<std::uint8_t>>;

std::vector<std::span<const std::uint8_t>> as_spans(const Batch& batch) {
  std::vector<std::span<const std::uint8_t>> spans;
  spans.reserve(batch.size());
  for (const auto& d : batch) spans.emplace_back(d);
  return spans;
}

/// Compares one batch against scalar, pair by pair. Ends are compared only
/// for pairs the packed kernel answered itself (approach InterSeq) — the
/// intra-task fallback ladder has its own (looser) end conventions.
int check_batch(const std::vector<std::uint8_t>& q, const Batch& batch,
                AlignClass klass, const Scheme& s, ElemWidth width,
                SemiGlobalEnds ends = {}) {
  const ScoreMatrix& mat = ScoreMatrix::from_name(s.matrix);

  Options opts;
  opts.klass = klass;
  opts.width = width;
  opts.matrix = &mat;
  opts.gap = s.gap;
  opts.sg_ends = ends;
  BatchAligner batcher(opts);
  batcher.set_query(q);
  const std::vector<AlignResult> got = batcher.align_batch(as_spans(batch));
  EXPECT_EQ(got.size(), batch.size());

  ScalarAligner<AlignClass::Global> nw(mat, s.gap);
  ScalarAligner<AlignClass::SemiGlobal> sg(mat, s.gap, ends);
  ScalarAligner<AlignClass::Local> sw(mat, s.gap);

  int compared = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "pair " << i << " dlen=" << batch[i].size());
    AlignResult want;
    switch (klass) {
      case AlignClass::Global:
        nw.set_query(q);
        want = nw.align(batch[i]);
        break;
      case AlignClass::SemiGlobal:
        sg.set_query(q);
        want = sg.align(batch[i]);
        break;
      case AlignClass::Local:
        sw.set_query(q);
        want = sw.align(batch[i]);
        break;
    }
    if (got[i].overflowed) {
      // Only fixed narrow widths may surface saturation; Auto must have
      // fallen back to the intra ladder instead.
      EXPECT_NE(width, ElemWidth::Auto) << "Auto must never report overflow";
      continue;
    }
    EXPECT_EQ(got[i].score, want.score);
    if (got[i].approach == Approach::InterSeq) {
      EXPECT_EQ(got[i].query_end, want.query_end);
      EXPECT_EQ(got[i].db_end, want.db_end);
    }
    ++compared;
  }
  return compared;
}

/// One randomized batch per seed: the query and every subject draw lengths
/// 1..260; half the subjects carry a planted high-identity core.
Batch make_batch(std::uint64_t seed, std::size_t count,
                 std::vector<std::uint8_t>& query) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> len(1, 260);
  const std::size_t qlen = len(rng);
  query = random_codes(qlen, rng);
  Batch batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t dlen = len(rng);
    if (i % 2 == 0) {
      batch.push_back(random_codes(dlen, rng));
    } else {
      const std::size_t core = std::min({qlen, dlen, std::size_t{64}});
      auto [q2, d] = related_pair(qlen, dlen, core, rng);
      // Re-plant the core into the live query so the pair is truly related.
      std::copy(q2.begin(), q2.end(), query.begin());
      batch.push_back(std::move(d));
    }
  }
  return batch;
}

TEST(InterSeqDifferential, MatchesScalarAcrossSeededBatches) {
  // Batch sizes co-prime to every lane count (8..64) exercise both refill
  // (count > lanes) and trailing underfill (count % lanes != 0).
  constexpr std::size_t kCounts[] = {1, 3, 9, 33, 65};
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<std::uint8_t> query;
    const Batch batch = make_batch(seed, kCounts[seed - 1], query);
    const Scheme& s = kSchemes[seed % 3];
    for (const AlignClass klass : kClasses) {
      for (const ElemWidth w : {ElemWidth::Auto, ElemWidth::W32}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " count=" << batch.size() << " class="
                     << to_string(klass) << " width=" << static_cast<int>(w));
        compared += check_batch(query, batch, klass, s, w);
      }
    }
  }
  EXPECT_GE(compared, 300) << "inter-seq differential coverage shrank";
  std::printf("[interseq-differential] %d batch-vs-scalar comparisons\n", compared);
}

TEST(InterSeqDifferential, RefillBoundariesWithWildLengthSpread) {
  // Lengths spanning 1..400 in one batch force constant lane turnover: short
  // subjects finish and refill while long ones keep their lanes for hundreds
  // of columns.
  std::mt19937_64 rng(4242);
  const auto query = random_codes(120, rng);
  Batch batch;
  for (std::size_t i = 0; i < 47; ++i) {
    const std::size_t dlen = (i % 2 == 0) ? 1 + i * 2 : 400 - i * 3;
    batch.push_back(random_codes(dlen, rng));
  }
  for (const AlignClass klass : kClasses) {
    SCOPED_TRACE(to_string(klass));
    check_batch(query, batch, klass, kSchemes[0], ElemWidth::Auto);
  }
}

TEST(InterSeqDifferential, DegenerateShapesInBatch) {
  // Empty subjects inside a batch must come back degenerate while their
  // neighbours still get lanes; an empty query degenerates the whole batch.
  std::mt19937_64 rng(7);
  const auto query = random_codes(33, rng);
  Batch batch = {random_codes(5, rng), {},           random_codes(65, rng),
                 {},                   {},           random_codes(1, rng),
                 std::vector<std::uint8_t>(64, 3),   {}};
  for (const AlignClass klass : kClasses) {
    SCOPED_TRACE(to_string(klass));
    check_batch(query, batch, klass, kSchemes[0], ElemWidth::Auto);
  }
  const std::vector<std::uint8_t> empty_query;
  for (const AlignClass klass : kClasses) {
    SCOPED_TRACE(::testing::Message() << "empty query, " << to_string(klass));
    check_batch(empty_query, batch, klass, kSchemes[0], ElemWidth::Auto);
  }
}

TEST(InterSeqDifferential, SemiGlobalEndVariantsMatchScalar) {
  std::mt19937_64 rng(99);
  std::vector<std::uint8_t> query = random_codes(80, rng);
  Batch batch;
  for (std::size_t i = 0; i < 19; ++i) batch.push_back(random_codes(20 + i * 9, rng));
  const SemiGlobalEnds variants[] = {
      {true, true, true, true},
      {false, false, false, false},
      {true, true, false, false},
      {false, false, true, true},
      {true, false, true, false},
  };
  for (const SemiGlobalEnds& ends : variants) {
    SCOPED_TRACE(::testing::Message()
                 << "ends=" << ends.free_query_begin << ends.free_query_end
                 << ends.free_db_begin << ends.free_db_end);
    check_batch(query, batch, AlignClass::SemiGlobal, kSchemes[0],
                ElemWidth::Auto, ends);
  }
}

TEST(InterSeqDifferential, SaturationFallsBackToIntraLadder) {
  // Identical tryptophan runs score 11 per residue under BLOSUM62: length 40
  // overflows i8 (440 > 127) and length 3000 overflows i16 (33000 > 32767),
  // so Auto width must route these pairs through the intra-task ladder while
  // the small unrelated subjects stay lane-packed.
  std::mt19937_64 rng(11);
  const std::uint8_t trp = 17;  // 'W' in the protein alphabet's code order
  const ScoreMatrix& mat = ScoreMatrix::blosum62();
  ASSERT_GE(mat.score(trp, trp), 10) << "expected a high-scoring diagonal residue";

  std::vector<std::uint8_t> query(3000, trp);
  Batch batch = {std::vector<std::uint8_t>(40, trp),    // beyond the i8 rail
                 random_codes(50, rng),                 // stays narrow
                 std::vector<std::uint8_t>(3000, trp),  // beyond the i16 rail
                 random_codes(120, rng)};

  Options opts;
  opts.klass = AlignClass::Local;
  opts.matrix = &mat;
  opts.gap = {11, 1};
  BatchAligner batcher(opts);
  batcher.set_query(query);
  const std::vector<AlignResult> got = batcher.align_batch(as_spans(batch));

  ScalarAligner<AlignClass::Local> sw(mat, {11, 1});
  sw.set_query(query);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "pair " << i);
    EXPECT_FALSE(got[i].overflowed);
    EXPECT_EQ(got[i].score, sw.align(batch[i]).score);
  }
  EXPECT_GE(batcher.fallbacks(), 1u)
      << "the saturating pairs must have used the intra-task ladder";

  // Fixed narrow width: saturation must surface as overflowed, not fall back.
  opts.width = ElemWidth::W16;
  if (simd::best_isa() != Isa::Emul || opts.emul_lanes > 0) {
    BatchAligner fixed(opts);
    fixed.set_query(query);
    const std::vector<AlignResult> raw = fixed.align_batch(as_spans(batch));
    EXPECT_TRUE(raw[2].overflowed) << "i16 cannot represent 33000";
    EXPECT_EQ(fixed.fallbacks(), 0u);
  }
}

TEST(InterSeqDifferential, OccupancyAccountingIsCoherent) {
  std::mt19937_64 rng(5);
  const auto query = random_codes(64, rng);
  Batch batch;
  for (std::size_t i = 0; i < 37; ++i) batch.push_back(random_codes(30 + i * 5, rng));

  Options opts;
  opts.klass = AlignClass::Local;
  BatchAligner batcher(opts);
  batcher.set_query(query);
  (void)batcher.align_batch(as_spans(batch));

  const InterSeqBatchStats& st = batcher.batch_stats();
  EXPECT_EQ(st.pairs, batch.size());
  EXPECT_GT(st.column_steps, 0u);
  EXPECT_GE(st.lane_capacity_steps, st.lane_steps);
  EXPECT_GT(st.occupancy(), 0.0);
  EXPECT_LE(st.occupancy(), 1.0);
  const int lanes = batcher.lanes(8);
  if (static_cast<std::size_t>(lanes) < batch.size()) {
    EXPECT_GT(st.refills, 0u) << "more pairs than lanes must trigger refills";
  }
}

}  // namespace
}  // namespace valign
