// Deconstructed-engine differential battery (docs/kernels.md): the
// prefix-max lazy-F kernel pushed through the dispatcher and compared
// against the scalar ground truth across alignment classes, element widths,
// scoring schemes — including the weak-open schemes (o <= e) whose
// convergence soundness the kernel's pre-update test was designed for — and
// the overflow ladder's retry path.
//
// Also the Approach::Auto property test: an EngineModel only ever chooses
// WHICH engine answers, so any model — paper, pinned, or adversarial —
// must produce bit-identical scores on the same workload.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <vector>

#include "../support/random_seqs.hpp"
#include "valign/core/calibrate.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/scalar.hpp"
#include "valign/matrices/matrix.hpp"
#include "valign/simd/arch.hpp"

namespace valign {
namespace {

using testing_support::random_codes;
using testing_support::related_pair;

constexpr AlignClass kClasses[] = {AlignClass::Global, AlignClass::SemiGlobal,
                                   AlignClass::Local};

struct Scheme {
  const char* matrix;
  GapPenalty gap;
};

// The last two schemes open gaps for <= one extension: the regime where
// Farrar's textbook post-update convergence test is unsound (an e-sized
// blind spot; see core/striped.hpp). The battery holding on them is what
// certifies the pre-update test in both the striped and deconstructed loops.
constexpr Scheme kSchemes[] = {
    {"blosum62", {11, 1}},
    {"blosum62", {10, 2}},
    {"blosum50", {13, 2}},
    {"blosum62", {1, 1}},
    {"blosum62", {0, 4}},
};

struct Case {
  std::uint64_t seed = 0;
  std::vector<std::uint8_t> q, d;
  const char* shape = "";
};

/// One randomized workload per seed: lengths 1..300, alternating unrelated
/// pairs and pairs with a planted high-identity core (the planted cores push
/// scores toward the i8/i16 rails, exercising the width-retry ladder).
Case make_case(std::uint64_t seed) {
  Case c;
  c.seed = seed;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> len(1, 300);
  const std::size_t qlen = len(rng);
  const std::size_t dlen = len(rng);
  if (seed % 2 == 0) {
    c.q = random_codes(qlen, rng);
    c.d = random_codes(dlen, rng);
    c.shape = "unrelated";
  } else {
    const std::size_t core = std::min({qlen, dlen, std::size_t{96}});
    auto [q, d] = related_pair(qlen, dlen, core, rng);
    c.q = std::move(q);
    c.d = std::move(d);
    c.shape = "related";
  }
  return c;
}

/// Deconstructed vs scalar for one (case, class, scheme) at every width
/// worth checking. Returns the number of score comparisons performed.
int run_cell(const Case& c, AlignClass klass, const Scheme& s) {
  const ScoreMatrix& mat = ScoreMatrix::from_name(s.matrix);
  const AlignResult want = align_scalar(klass, mat, s.gap, c.q, c.d);

  // Auto walks the ladder (i8 -> i16 -> i32) and must land on the exact
  // score; W32 pins the widest backend; W16/W8 run only where saturation is
  // structurally ruled out, pinning the narrow backends directly.
  std::vector<ElemWidth> widths = {ElemWidth::Auto, ElemWidth::W32};
  if (width_is_safe(klass, 16, c.q.size(), c.d.size(), s.gap, mat)) {
    widths.push_back(ElemWidth::W16);
  }
  if (width_is_safe(klass, 8, c.q.size(), c.d.size(), s.gap, mat)) {
    widths.push_back(ElemWidth::W8);
  }

  int compared = 0;
  for (const ElemWidth w : widths) {
    Options opts;
    opts.klass = klass;
    opts.approach = Approach::Deconstructed;
    opts.width = w;
    opts.matrix = &mat;
    opts.gap = s.gap;
    Aligner aligner(opts);
    aligner.set_query(c.q);
    const AlignResult got = aligner.align(c.d);
    if (got.overflowed) {
      EXPECT_NE(w, ElemWidth::Auto) << "Auto must never report overflow";
      EXPECT_NE(w, ElemWidth::W32) << "W32 must never report overflow";
      continue;
    }
    EXPECT_EQ(got.score, want.score) << "width " << static_cast<int>(w);
    EXPECT_EQ(got.approach, Approach::Deconstructed);
    ++compared;
  }
  return compared;
}

TEST(DeconstructedDifferential, MatchesScalarAcrossSeededWorkloads) {
  // 36 seeds x 3 classes x >=2 widths >= 300 deconstructed-vs-scalar score
  // comparisons; the floor is asserted so shrinking the matrix cannot
  // silently gut the suite.
  constexpr std::uint64_t kSeeds = 36;
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Case c = make_case(seed);
    for (const AlignClass klass : kClasses) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << c.seed << " shape=" << c.shape
                   << " q=" << c.q.size() << " d=" << c.d.size()
                   << " class=" << to_string(klass));
      compared += run_cell(c, klass, kSchemes[seed % 5]);
    }
  }
  EXPECT_GE(compared, 300) << "deconstructed coverage shrank below the target";
  std::printf("[deconstructed] %d engine-vs-scalar score comparisons\n",
              compared);
}

TEST(DeconstructedDifferential, WidthRetryLadderStaysExact) {
  // Pairs engineered to saturate i8 (long planted cores, match-heavy
  // scoring): Auto must walk the ladder and still land on the scalar score,
  // and the width census must show at least one escalation happened.
  std::mt19937_64 rng(99);
  const ScoreMatrix& mat = ScoreMatrix::from_name("blosum62");
  const GapPenalty gap{11, 1};
  int escalated = 0;
  for (int i = 0; i < 8; ++i) {
    auto [q, d] = related_pair(220, 240, 200, rng);
    for (const AlignClass klass : kClasses) {
      SCOPED_TRACE(::testing::Message()
                   << "i=" << i << " class=" << to_string(klass));
      const AlignResult want = align_scalar(klass, mat, gap, q, d);
      Options opts;
      opts.klass = klass;
      opts.approach = Approach::Deconstructed;
      opts.width = ElemWidth::Auto;
      opts.matrix = &mat;
      opts.gap = gap;
      Aligner aligner(opts);
      aligner.set_query(q);
      const AlignResult got = aligner.align(d);
      EXPECT_FALSE(got.overflowed);
      EXPECT_EQ(got.score, want.score);
      if (got.bits > 8) ++escalated;
    }
  }
  EXPECT_GT(escalated, 0) << "battery never left i8; it no longer exercises "
                             "the retry ladder";
}

TEST(DeconstructedDifferential, AutoModelNeverChangesScores) {
  // Property: the EngineModel behind Approach::Auto selects the engine, and
  // engines are score-identical, so ANY model yields the same scores. Run
  // the same workload under the paper model, the pinned model, and two
  // adversarial single-engine models; all four must agree with scalar.
  EngineModel all_decon;
  for (auto& row : all_decon.cells)
    for (auto& c : row)
      c = {Approach::Deconstructed, Approach::Deconstructed, 0};
  EngineModel all_scan;
  for (auto& row : all_scan.cells)
    for (auto& c : row)
      c = {Approach::Scan, Approach::Scan, 0};
  const EngineModel paper = EngineModel::paper();
  const EngineModel* models[] = {nullptr /* pinned */, &paper, &all_decon,
                                 &all_scan};

  const ScoreMatrix& mat = ScoreMatrix::from_name("blosum62");
  const GapPenalty gap{10, 2};
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    const Case c = make_case(seed);
    for (const AlignClass klass : kClasses) {
      SCOPED_TRACE(::testing::Message() << "seed=" << seed << " class="
                                        << to_string(klass));
      const AlignResult want = align_scalar(klass, mat, gap, c.q, c.d);
      for (const EngineModel* m : models) {
        Options opts;
        opts.klass = klass;
        opts.approach = Approach::Auto;
        opts.matrix = &mat;
        opts.gap = gap;
        opts.model = m;
        Aligner aligner(opts);
        aligner.set_query(c.q);
        const AlignResult got = aligner.align(c.d);
        EXPECT_FALSE(got.overflowed);
        EXPECT_EQ(got.score, want.score);
        // The census records whichever engine the model resolved to.
        EXPECT_EQ(got.stats.approach_counts[static_cast<std::size_t>(
                      got.approach)],
                  1u);
      }
    }
  }
}

}  // namespace
}  // namespace valign
