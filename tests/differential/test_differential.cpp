// Differential property harness: randomized seeded workloads pushed through
// every vector engine (Striped, Scan, Blocked, Diagonal) via the dispatcher
// and compared against the scalar ground truth, across alignment classes,
// element widths and scoring schemes.
//
// Every case logs its seed and shape through SCOPED_TRACE, so a failure
// message pins down the exact reproducer:
//   valign align --q-seq ... --d-seq ... --class ... --approach ...
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <vector>

#include "../support/random_seqs.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/scalar.hpp"
#include "valign/matrices/matrix.hpp"
#include "valign/simd/arch.hpp"

namespace valign {
namespace {

using testing_support::random_codes;
using testing_support::related_pair;

constexpr AlignClass kClasses[] = {AlignClass::Global, AlignClass::SemiGlobal,
                                   AlignClass::Local};

constexpr Approach kVectorApproaches[] = {
    Approach::Striped, Approach::Scan, Approach::Deconstructed,
    Approach::Blocked, Approach::Diagonal};

/// Blocked/Diagonal only exist in the native ISA factories (the emulated
/// factory is striped/scan-only), so skip them on hosts without SIMD.
bool approach_available(Approach a) {
  if (a != Approach::Blocked && a != Approach::Diagonal) return true;
  return simd::best_isa() != Isa::Emul;
}

struct Scheme {
  const char* matrix;
  GapPenalty gap;
};

constexpr Scheme kSchemes[] = {
    {"blosum62", {11, 1}},
    {"blosum62", {10, 2}},
    {"blosum50", {13, 2}},
};

struct Case {
  std::uint64_t seed = 0;
  std::vector<std::uint8_t> q, d;
  const char* shape = "";
};

/// One randomized workload per seed: lengths 1..260, 50% unrelated pairs,
/// 50% pairs with a planted high-identity core (exercises the overflow
/// ladder's upper scores and SW's early-exit paths).
Case make_case(std::uint64_t seed) {
  Case c;
  c.seed = seed;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> len(1, 260);
  const std::size_t qlen = len(rng);
  const std::size_t dlen = len(rng);
  if (seed % 2 == 0) {
    c.q = random_codes(qlen, rng);
    c.d = random_codes(dlen, rng);
    c.shape = "unrelated";
  } else {
    const std::size_t core = std::min({qlen, dlen, std::size_t{64}});
    auto [q, d] = related_pair(qlen, dlen, core, rng);
    c.q = std::move(q);
    c.d = std::move(d);
    c.shape = "related";
  }
  return c;
}

/// Runs one (case, class, approach, scheme) cell at every width worth
/// checking and compares each score against the scalar reference.
/// Returns the number of engine-vs-scalar comparisons performed.
int run_cell(const Case& c, AlignClass klass, Approach approach, const Scheme& s) {
  const ScoreMatrix& mat = ScoreMatrix::from_name(s.matrix);
  const AlignResult want = align_scalar(klass, mat, s.gap, c.q, c.d);

  std::vector<ElemWidth> widths = {ElemWidth::Auto, ElemWidth::W32};
  // Explicit narrow widths only where silent low-side saturation is ruled
  // out; Auto makes the same call internally, this pins it down.
  if (width_is_safe(klass, 16, c.q.size(), c.d.size(), s.gap, mat)) {
    widths.push_back(ElemWidth::W16);
  }

  int compared = 0;
  for (const ElemWidth w : widths) {
    Options opts;
    opts.klass = klass;
    opts.approach = approach;
    opts.width = w;
    opts.matrix = &mat;
    opts.gap = s.gap;
    Aligner aligner(opts);
    aligner.set_query(c.q);
    const AlignResult got = aligner.align(c.d);
    // Fixed narrow widths may legitimately saturate; Auto and W32 must not.
    if (got.overflowed) {
      EXPECT_EQ(w, ElemWidth::W16) << "Auto/W32 must never report overflow";
      continue;
    }
    EXPECT_EQ(got.score, want.score) << "width " << static_cast<int>(w);
    ++compared;
  }
  return compared;
}

TEST(Differential, EnginesMatchScalarAcrossSeededWorkloads) {
  // 20 seeds x 3 classes x <=5 approaches x >=2 widths >= 450 score
  // comparisons on SIMD hosts (360 on emul-only hosts) — the harness asserts
  // the floor so shrinking the matrix cannot silently gut the suite.
  constexpr std::uint64_t kSeeds = 20;
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Case c = make_case(seed);
    for (const AlignClass klass : kClasses) {
      for (const Approach a : kVectorApproaches) {
        if (!approach_available(a)) continue;
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << c.seed << " shape=" << c.shape
                     << " q=" << c.q.size() << " d=" << c.d.size()
                     << " class=" << to_string(klass) << " approach=" << to_string(a));
        compared += run_cell(c, klass, a, kSchemes[seed % 3]);
      }
    }
  }
  const int floor = simd::best_isa() == Isa::Emul ? 300 : 400;
  EXPECT_GE(compared, floor) << "differential coverage shrank below the target";
  std::printf("[differential] %d engine-vs-scalar score comparisons\n", compared);
}

TEST(Differential, AutoApproachMatchesScalarOnLongSequences) {
  // Approach::Auto flips between Striped and Scan across the Table IV
  // crossover; sweep lengths that straddle it on both sides.
  constexpr std::size_t kLens[] = {40, 90, 150, 240, 400, 700};
  int compared = 0;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    std::mt19937_64 rng(seed);
    for (const std::size_t ql : kLens) {
      const auto q = random_codes(ql, rng);
      const auto d = random_codes(kLens[seed % 6], rng);
      for (const AlignClass klass : kClasses) {
        SCOPED_TRACE(::testing::Message() << "seed=" << seed << " q=" << ql
                                          << " d=" << d.size()
                                          << " class=" << to_string(klass));
        const AlignResult want =
            align_scalar(klass, ScoreMatrix::blosum62(), {11, 1}, q, d);
        Options opts;
        opts.klass = klass;
        Aligner aligner(opts);
        aligner.set_query(q);
        const AlignResult got = aligner.align(d);
        EXPECT_FALSE(got.overflowed);
        EXPECT_EQ(got.score, want.score);
        ++compared;
      }
    }
  }
  EXPECT_EQ(compared, 10 * 6 * 3);
}

TEST(Differential, DegenerateShapesAgreeEverywhere) {
  // Empty-ish and pathological shapes: single residues, repeats, one side
  // much longer than the other. These hit the stripe-padding edge cases.
  std::mt19937_64 rng(7);
  const std::vector<std::vector<std::uint8_t>> shapes = {
      {0},                              // single residue
      std::vector<std::uint8_t>(64, 3), // homopolymer, full stripe
      std::vector<std::uint8_t>(65, 3), // homopolymer, stripe + 1
      random_codes(1, rng),
      random_codes(513, rng),
  };
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    for (std::size_t j = 0; j < shapes.size(); ++j) {
      for (const AlignClass klass : kClasses) {
        for (const Approach a : kVectorApproaches) {
          if (!approach_available(a)) continue;
          SCOPED_TRACE(::testing::Message()
                       << "qshape=" << i << " dshape=" << j << " class="
                       << to_string(klass) << " approach=" << to_string(a));
          const AlignResult want = align_scalar(klass, ScoreMatrix::blosum62(),
                                                {11, 1}, shapes[i], shapes[j]);
          Options opts;
          opts.klass = klass;
          opts.approach = a;
          Aligner aligner(opts);
          aligner.set_query(shapes[i]);
          EXPECT_EQ(aligner.align(shapes[j]).score, want.score);
        }
      }
    }
  }
}

}  // namespace
}  // namespace valign
