// The CLI, driven in-process through valign::cli::run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "valign/cli/args.hpp"
#include "valign/cli/cli.hpp"

namespace valign::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run_cli(std::initializer_list<std::string_view> args) {
  std::ostringstream out, err;
  std::vector<std::string_view> v(args);
  const int code = run(v, out, err);
  return {code, out.str(), err.str()};
}

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("valign_test_" + name);
}

// --- ArgParser ---------------------------------------------------------------

TEST(ArgParser, ParsesOptionsSwitchesAndPositionals) {
  ArgParser p;
  p.add_option("--matrix");
  p.add_option("--top");
  p.add_switch("--dna");
  const std::vector<std::string_view> args = {"search", "--matrix=blosum45",
                                              "a.fa",   "--top",
                                              "7",      "--dna",
                                              "b.fa"};
  p.parse(args);
  EXPECT_EQ(p.positionals(), (std::vector<std::string>{"search", "a.fa", "b.fa"}));
  EXPECT_EQ(p.value_or("--matrix", ""), "blosum45");
  EXPECT_EQ(p.int_value_or("--top", 0), 7);
  EXPECT_TRUE(p.has("--dna"));
  EXPECT_FALSE(p.has("--traceback"));
}

TEST(ArgParser, Diagnostics) {
  ArgParser p;
  p.add_option("--top");
  p.add_switch("--dna");
  {
    const std::vector<std::string_view> a = {"--nope"};
    EXPECT_THROW(p.parse(a), Error);
  }
  {
    ArgParser q;
    q.add_option("--top");
    const std::vector<std::string_view> a = {"--top"};
    EXPECT_THROW(q.parse(a), Error);  // missing value
  }
  {
    ArgParser q;
    q.add_switch("--dna");
    const std::vector<std::string_view> a = {"--dna=yes"};
    EXPECT_THROW(q.parse(a), Error);  // switch with value
  }
  {
    ArgParser q;
    q.add_option("--top");
    const std::vector<std::string_view> a = {"--top", "seven"};
    q.parse(a);
    EXPECT_THROW((void)q.int_value_or("--top", 0), Error);
  }
}

// --- Commands ----------------------------------------------------------------

TEST(Cli, HelpAndUnknownCommand) {
  const CliResult help = run_cli({"--help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);
  const CliResult none = run_cli({});
  EXPECT_EQ(none.code, 2);
  const CliResult bad = run_cli({"frobnicate"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("unknown command"), std::string::npos);
}

TEST(Cli, AlignLiteralSequences) {
  const CliResult r = run_cli({"align", "--q-seq", "MKTAYIAKQR", "--d-seq",
                               "MKTAYIAKQR", "--class", "nw"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("score"), std::string::npos);
  // Identical sequences: NW score = sum of diagonal BLOSUM62 entries
  // (M5 K5 T5 A4 Y7 I4 A4 K5 Q5 R5 = 49).
  EXPECT_NE(r.out.find("score   : 49"), std::string::npos);
}

TEST(Cli, AlignWithTraceback) {
  const CliResult r = run_cli({"align", "--q-seq", "WCWHCWKY", "--d-seq", "WCWHCWKY",
                               "--traceback"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("identity: 100%"), std::string::npos);
  EXPECT_NE(r.out.find("8M"), std::string::npos);
  EXPECT_NE(r.out.find("||||||||"), std::string::npos);
}

TEST(Cli, AlignDnaSequences) {
  const CliResult r = run_cli({"align", "--dna", "--q-seq", "ACGTACGTACGT",
                               "--d-seq", "ACGTACGTACGT"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("score   : 24"), std::string::npos);  // 12 x (+2)
}

TEST(Cli, AlignRejectsBadFlags) {
  // Usage errors are exit 2; runtime failures (missing file, unknown matrix
  // looked up at runtime) stay exit 1.
  EXPECT_EQ(run_cli({"align", "--q-seq", "MKT"}).code, 2);  // missing --d-seq
  EXPECT_EQ(run_cli({"align", "--q-seq", "M", "--d-seq", "M", "--class", "zz"}).code, 2);
  EXPECT_EQ(run_cli({"align", "--q-seq", "M", "--d-seq", "M", "--matrix", "nope"}).code,
            1);
  EXPECT_EQ(run_cli({"align", "/no/such.fa", "/no/such2.fa"}).code, 1);
}

TEST(Cli, GenerateThenSearchRoundTrip) {
  const auto qpath = temp_file("queries.fa");
  const auto dpath = temp_file("db.fa");
  const CliResult g1 = run_cli({"generate", "--out", qpath.string(), "--count", "4",
                                "--seed", "11"});
  EXPECT_EQ(g1.code, 0) << g1.err;
  const CliResult g2 = run_cli({"generate", "--out", dpath.string(), "--count", "12",
                                "--seed", "12", "--preset", "uniprot"});
  EXPECT_EQ(g2.code, 0) << g2.err;

  const CliResult s = run_cli({"search", qpath.string(), dpath.string(), "--top", "2"});
  EXPECT_EQ(s.code, 0) << s.err;
  // 4 queries x top 2 = 8 hit lines plus 2 header lines.
  int lines = 0;
  for (const char c : s.out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 10);
  EXPECT_NE(s.out.find("evalue"), std::string::npos);
  std::filesystem::remove(qpath);
  std::filesystem::remove(dpath);
}

TEST(Cli, SearchWritesMetricsReport) {
  const auto qpath = temp_file("mq.fa");
  const auto dpath = temp_file("md.fa");
  const auto rpath = temp_file("report.json");
  ASSERT_EQ(run_cli({"generate", "--out", qpath.string(), "--count", "3", "--seed",
                     "21"}).code, 0);
  ASSERT_EQ(run_cli({"generate", "--out", dpath.string(), "--count", "10", "--seed",
                     "22"}).code, 0);

  const CliResult s = run_cli({"search", qpath.string(), dpath.string(),
                               "--metrics-out", rpath.string(), "--trace",
                               "--perf-counters"});
  EXPECT_EQ(s.code, 0) << s.err;
  EXPECT_NE(s.out.find("# stage budget (s):"), std::string::npos)
      << "--trace must print the per-stage time budget";

  std::ifstream rf(rpath);
  ASSERT_TRUE(rf.good()) << "--metrics-out did not create the report";
  std::stringstream buf;
  buf << rf.rdbuf();
  const std::string j = buf.str();
  for (const char* needle :
       {"\"schema\":\"valign.run_report/1\"", "\"command\":\"search\"",
        "\"gcups_real\"", "\"engine_cache\"", "\"stages\"",
        "\"lazyf_pass_hist\"", "runtime.engine_cache.lookups",
        "runtime.sched.block_cells",
        // --perf-counters: the hw section is always present; either real
        // counters or a clearly-marked degradation with a reason. Provenance
        // rides along in the same schema version.
        "\"provenance\"", "\"cpu_isa_level\"", "\"git_describe\"",
        "\"hw\":{\"available\":", "\"reason\":", "\"run\":{\"cycles\":"}) {
    EXPECT_NE(j.find(needle), std::string::npos) << "report missing " << needle;
  }
  // Degradation is explicit, never silent: unavailable counters must say why.
  if (j.find("\"available\":false") != std::string::npos) {
    EXPECT_EQ(j.find("\"reason\":\"\""), std::string::npos)
        << "unavailable hw section carries an empty reason";
  }
  std::filesystem::remove(qpath);
  std::filesystem::remove(dpath);
  std::filesystem::remove(rpath);
}

TEST(Cli, DetectClustersAndWritesCsvReport) {
  const auto path = temp_file("detect.fa");
  const auto rpath = temp_file("report.csv");
  ASSERT_EQ(run_cli({"generate", "--out", path.string(), "--count", "8", "--seed",
                     "23"}).code, 0);

  const CliResult d = run_cli({"detect", path.string(), "--threshold", "50",
                               "--threads", "2", "--metrics-out", rpath.string()});
  EXPECT_EQ(d.code, 0) << d.err;
  EXPECT_NE(d.out.find("clusters"), std::string::npos);

  std::ifstream rf(rpath);
  ASSERT_TRUE(rf.good());
  std::string first;
  ASSERT_TRUE(std::getline(rf, first));
  EXPECT_EQ(first, "key,value");
  std::stringstream buf;
  buf << rf.rdbuf();
  EXPECT_NE(buf.str().find("command,detect"), std::string::npos);
  EXPECT_NE(buf.str().find("workload.alignments,28"), std::string::npos)
      << "8 sequences -> 28 i<j pairs";
  std::filesystem::remove(path);
  std::filesystem::remove(rpath);
}

TEST(Cli, DetectRequiresInput) {
  const CliResult r = run_cli({"detect"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("detect"), std::string::npos);
}

TEST(Cli, GenerateRequiresOut) {
  EXPECT_EQ(run_cli({"generate"}).code, 2);
  EXPECT_EQ(run_cli({"generate", "--out", "/tmp/x.fa", "--preset", "nope"}).code, 2);
}

TEST(Cli, ArgumentErrorsExitTwoWithUsableMessages) {
  {  // Unknown flag names the flag and points at --help.
    const CliResult r = run_cli({"search", "--frobnicate", "a.fa", "b.fa"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--frobnicate"), std::string::npos) << r.err;
    EXPECT_NE(r.err.find("--help"), std::string::npos) << r.err;
  }
  {  // Non-integer value for an integer flag.
    const CliResult r = run_cli({"search", "a.fa", "b.fa", "--top", "lots"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--top"), std::string::npos) << r.err;
  }
  {  // Bad enum value lists the accepted spellings.
    const CliResult r = run_cli({"search", "a.fa", "b.fa", "--engine", "warp"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("intra|inter|auto"), std::string::npos) << r.err;
  }
  {  // Search-only flags are rejected elsewhere, not silently ignored.
    const CliResult r = run_cli({"detect", "x.fa", "--stream"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--stream"), std::string::npos) << r.err;
  }
  {
    const CliResult r = run_cli({"align", "--q-seq", "M", "--d-seq", "M",
                                 "--engine", "inter"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--engine"), std::string::npos) << r.err;
  }
  {  // Watchdog without the pipeline it guards.
    const CliResult r = run_cli({"search", "a.fa", "b.fa", "--stall-timeout-ms",
                                 "100"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--stream"), std::string::npos) << r.err;
  }
  {  // Malformed --fail-inject spec (probability out of range). Exit 2 both in
     // failpoint builds (bad spec) and release builds (flag unsupported).
    const CliResult r = run_cli({"search", "a.fa", "b.fa", "--fail-inject",
                                 "pipeline.pop:7"});
    EXPECT_EQ(r.code, 2);
  }
  {
    const CliResult r = run_cli({"search", "a.fa", "b.fa", "--max-seq-len", "-4"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--max-seq-len"), std::string::npos) << r.err;
  }
}

TEST(Cli, SearchWritesTraceTimeline) {
  const auto qpath = temp_file("tq.fa");
  const auto dpath = temp_file("td.fa");
  const auto tpath = temp_file("timeline.json");
  ASSERT_EQ(run_cli({"generate", "--out", qpath.string(), "--count", "3", "--seed",
                     "31"}).code, 0);
  ASSERT_EQ(run_cli({"generate", "--out", dpath.string(), "--count", "12", "--seed",
                     "32"}).code, 0);

  const CliResult s = run_cli({"search", qpath.string(), dpath.string(),
                               "--trace-timeline", tpath.string(),
                               "--threads", "2", "--stream"});
  EXPECT_EQ(s.code, 0) << s.err;
  EXPECT_NE(s.out.find("# trace timeline:"), std::string::npos) << s.out;

  std::ifstream tf(tpath);
  ASSERT_TRUE(tf.good()) << "--trace-timeline did not create the file";
  std::stringstream buf;
  buf << tf.rdbuf();
  const std::string j = buf.str();
  for (const char* needle :
       {"\"schema\":\"valign.trace_timeline/1\"", "\"traceEvents\":[",
        "\"ph\":\"M\"", "\"ph\":\"b\"", "\"ph\":\"e\"", "\"ph\":\"X\"",
        "\"cat\":\"query\"", "thread_name"}) {
    EXPECT_NE(j.find(needle), std::string::npos) << needle;
  }
  std::filesystem::remove(qpath);
  std::filesystem::remove(dpath);
  std::filesystem::remove(tpath);
}

TEST(Cli, SearchPeriodicMetricsSnapshots) {
  const auto qpath = temp_file("fq.fa");
  const auto dpath = temp_file("fd.fa");
  const auto rpath = temp_file("live_report.json");
  ASSERT_EQ(run_cli({"generate", "--out", qpath.string(), "--count", "2", "--seed",
                     "41"}).code, 0);
  ASSERT_EQ(run_cli({"generate", "--out", dpath.string(), "--count", "8", "--seed",
                     "42"}).code, 0);

  const CliResult s = run_cli({"search", qpath.string(), dpath.string(),
                               "--metrics-out", rpath.string(),
                               "--metrics-interval-ms", "5"});
  EXPECT_EQ(s.code, 0) << s.err;
  std::ifstream rf(rpath);
  ASSERT_TRUE(rf.good());
  std::stringstream buf;
  buf << rf.rdbuf();
  // The exit-time report overwrites the last live snapshot through the same
  // atomic writer; the final document is complete and marked not-live.
  EXPECT_NE(buf.str().find("\"snapshot\":{\"live\":false"), std::string::npos)
      << buf.str().substr(0, 200);
  EXPECT_FALSE(std::filesystem::exists(rpath.string() + ".tmp"));
  std::filesystem::remove(qpath);
  std::filesystem::remove(dpath);
  std::filesystem::remove(rpath);
}

TEST(Cli, TraceFlagsUsageErrors) {
  {  // The periodic flusher needs a snapshot path to write to.
    const CliResult r = run_cli({"search", "a.fa", "b.fa",
                                 "--metrics-interval-ms", "50"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--metrics-out"), std::string::npos) << r.err;
  }
  {  // Search-only flags are rejected elsewhere instead of silently ignored.
    const CliResult r = run_cli({"align", "--q-seq", "ARN", "--d-seq", "ARN",
                                 "--trace-timeline", "/tmp/t.json"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--trace-timeline"), std::string::npos) << r.err;
  }
  {
    const CliResult r = run_cli({"detect", "s.fa", "--metrics-interval-ms", "5"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("--metrics-interval-ms"), std::string::npos) << r.err;
  }
}

TEST(Cli, MatricesListAndPrint) {
  const CliResult list = run_cli({"matrices"});
  EXPECT_EQ(list.code, 0);
  for (const char* name : {"blosum45", "blosum50", "blosum62", "blosum80", "blosum90"}) {
    EXPECT_NE(list.out.find(name), std::string::npos) << name;
  }
  const CliResult print = run_cli({"matrices", "blosum62"});
  EXPECT_EQ(print.code, 0);
  EXPECT_NE(print.out.find("A  R  N  D"), std::string::npos);
}

TEST(Cli, StatsCommand) {
  const CliResult r = run_cli({"stats", "--matrix", "blosum62"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("lambda=0.317"), std::string::npos);
  EXPECT_NE(r.out.find("published gapped"), std::string::npos);
  const CliResult u = run_cli({"stats", "--matrix", "blosum80", "--gap-open", "9"});
  EXPECT_EQ(u.code, 0);
  EXPECT_NE(u.out.find("ungapped fallback"), std::string::npos);
}

TEST(Cli, InfoCommand) {
  const CliResult r = run_cli({"info"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("valign"), std::string::npos);
  EXPECT_NE(r.out.find("best isa"), std::string::npos);
}

TEST(Cli, ApproachAndIsaSelection) {
  for (const char* approach : {"scalar", "blocked", "diagonal", "striped", "scan"}) {
    const CliResult r = run_cli({"align", "--q-seq", "MKTAYIAKQRMKTAYIAKQR", "--d-seq",
                                 "MKTAYIAKQRMKTAYIAKQR", "--class", "sw",
                                 "--approach", approach});
    EXPECT_EQ(r.code, 0) << approach << ": " << r.err;
    EXPECT_NE(r.out.find("score   : 98"), std::string::npos) << approach;
  }
  const CliResult r = run_cli({"align", "--q-seq", "MKTAYIAKQR", "--d-seq",
                               "MKTAYIAKQR", "--isa", "emul"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("emul"), std::string::npos);
}

}  // namespace
}  // namespace valign::cli
