// Every intrinsic backend op is validated against the VEmul reference
// semantics, including saturation rails and lane-shift orientation.
#include <gtest/gtest.h>

#include <array>
#include <random>

#include "valign/simd/simd.hpp"

namespace valign::simd {
namespace {

template <class V>
using Ref = VEmul<typename V::value_type, V::lanes>;

template <class V>
struct VecData {
  using T = typename V::value_type;
  alignas(64) std::array<T, V::lanes> a{};
  alignas(64) std::array<T, V::lanes> b{};
};

// Values biased toward the rails so saturating ops are exercised hard.
template <class T, class Rng>
T interesting_value(Rng& rng) {
  static constexpr T kEdges[] = {
      std::numeric_limits<T>::min(),
      static_cast<T>(std::numeric_limits<T>::min() + 1),
      static_cast<T>(-1),
      0,
      1,
      static_cast<T>(std::numeric_limits<T>::max() - 1),
      std::numeric_limits<T>::max(),
  };
  std::uniform_int_distribution<int> pick(0, 9);
  const int r = pick(rng);
  if (r < 7) return kEdges[r];
  std::uniform_int_distribution<std::int64_t> u(std::numeric_limits<T>::min(),
                                                std::numeric_limits<T>::max());
  return static_cast<T>(u(rng));
}

template <class V, class Rng>
VecData<V> random_data(Rng& rng) {
  VecData<V> d;
  for (int i = 0; i < V::lanes; ++i) {
    d.a[static_cast<std::size_t>(i)] = interesting_value<typename V::value_type>(rng);
    d.b[static_cast<std::size_t>(i)] = interesting_value<typename V::value_type>(rng);
  }
  return d;
}

template <class V>
std::array<typename V::value_type, V::lanes> dump(V v) {
  alignas(64) std::array<typename V::value_type, V::lanes> out;
  v.store(out.data());
  return out;
}

template <class V>
class VecOpsTest : public ::testing::Test {};

using Backends = ::testing::Types<
    VEmul<std::int8_t, 16>, VEmul<std::int16_t, 8>, VEmul<std::int32_t, 4>,
    VEmul<std::int16_t, 32>, VEmul<std::int32_t, 64>
#if defined(__SSE4_1__)
    ,
    V128<std::int8_t>, V128<std::int16_t>, V128<std::int32_t>
#endif
#if defined(__AVX2__)
    ,
    V256<std::int8_t>, V256<std::int16_t>, V256<std::int32_t>
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
    ,
    V512<std::int8_t>, V512<std::int16_t>, V512<std::int32_t>
#endif
    >;
TYPED_TEST_SUITE(VecOpsTest, Backends);

TYPED_TEST(VecOpsTest, BroadcastAndLanes) {
  using V = TypeParam;
  using T = typename V::value_type;
  const V v = V::broadcast(T{42});
  for (int i = 0; i < V::lanes; ++i) EXPECT_EQ(v.lane(i), T{42});
  EXPECT_EQ(v.first(), T{42});
  EXPECT_EQ(v.last(), T{42});
  EXPECT_EQ(V::zero().hmax(), T{0});
}

TYPED_TEST(VecOpsTest, LoadStoreRoundTrip) {
  using V = TypeParam;
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    const auto d = random_data<V>(rng);
    EXPECT_EQ(dump(V::load(d.a.data())), d.a);
    EXPECT_EQ(dump(V::loadu(d.a.data())), d.a);
    alignas(64) std::array<typename V::value_type, V::lanes> out;
    V::load(d.b.data()).storeu(out.data());
    EXPECT_EQ(out, d.b);
  }
}

TYPED_TEST(VecOpsTest, ArithmeticMatchesReference) {
  using V = TypeParam;
  using R = Ref<V>;
  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 300; ++iter) {
    const auto d = random_data<V>(rng);
    const V va = V::load(d.a.data()), vb = V::load(d.b.data());
    const R ra = R::load(d.a.data()), rb = R::load(d.b.data());
    EXPECT_EQ(dump(V::adds(va, vb)), dump(R::adds(ra, rb))) << "adds iter " << iter;
    EXPECT_EQ(dump(V::subs(va, vb)), dump(R::subs(ra, rb))) << "subs iter " << iter;
    EXPECT_EQ(dump(V::max(va, vb)), dump(R::max(ra, rb))) << "max iter " << iter;
    EXPECT_EQ(dump(V::min(va, vb)), dump(R::min(ra, rb))) << "min iter " << iter;
  }
}

TYPED_TEST(VecOpsTest, PredicatesMatchReference) {
  using V = TypeParam;
  using R = Ref<V>;
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 300; ++iter) {
    const auto d = random_data<V>(rng);
    const V va = V::load(d.a.data()), vb = V::load(d.b.data());
    const R ra = R::load(d.a.data()), rb = R::load(d.b.data());
    EXPECT_EQ(V::any_gt(va, vb), R::any_gt(ra, rb)) << "iter " << iter;
    EXPECT_EQ(V::equals(va, vb), R::equals(ra, rb)) << "iter " << iter;
  }
  const auto d = random_data<V>(rng);
  const V va = V::load(d.a.data());
  EXPECT_TRUE(V::equals(va, va));
  EXPECT_FALSE(V::any_gt(va, va));
}

TYPED_TEST(VecOpsTest, ShiftInMatchesReference) {
  using V = TypeParam;
  using R = Ref<V>;
  using T = typename V::value_type;
  std::mt19937_64 rng(17);
  for (int iter = 0; iter < 200; ++iter) {
    const auto d = random_data<V>(rng);
    const T fill = interesting_value<T>(rng);
    const auto got = dump(V::shift_in(V::load(d.a.data()), fill));
    const auto want = dump(R::shift_in(R::load(d.a.data()), fill));
    EXPECT_EQ(got, want) << "iter " << iter;
    // Orientation spot-check: lane 0 takes the fill, lane i takes a[i-1].
    EXPECT_EQ(got[0], fill);
    EXPECT_EQ(got[1], d.a[0]);
  }
}

TYPED_TEST(VecOpsTest, ShiftInKMatchesReference) {
  using V = TypeParam;
  using R = Ref<V>;
  using T = typename V::value_type;
  std::mt19937_64 rng(19);
  for (int iter = 0; iter < 100; ++iter) {
    const auto d = random_data<V>(rng);
    const T fill = interesting_value<T>(rng);
    const V v = V::load(d.a.data());
    const R r = R::load(d.a.data());
    EXPECT_EQ(dump(V::template shift_in_k<0>(v, fill)),
              dump(R::template shift_in_k<0>(r, fill)));
    EXPECT_EQ(dump(V::template shift_in_k<1>(v, fill)),
              dump(R::template shift_in_k<1>(r, fill)));
    EXPECT_EQ(dump(V::template shift_in_k<2>(v, fill)),
              dump(R::template shift_in_k<2>(r, fill)));
    EXPECT_EQ(dump(V::template shift_in_k<V::lanes / 2>(v, fill)),
              dump(R::template shift_in_k<V::lanes / 2>(r, fill)));
    EXPECT_EQ(dump(V::template shift_in_k<V::lanes>(v, fill)),
              dump(R::template shift_in_k<V::lanes>(r, fill)));
  }
}

TYPED_TEST(VecOpsTest, HmaxMatchesReference) {
  using V = TypeParam;
  using R = Ref<V>;
  std::mt19937_64 rng(23);
  for (int iter = 0; iter < 200; ++iter) {
    const auto d = random_data<V>(rng);
    EXPECT_EQ(V::load(d.a.data()).hmax(), R::load(d.a.data()).hmax()) << iter;
  }
}

TYPED_TEST(VecOpsTest, HscanLinearMatchesScalarModel) {
  using V = TypeParam;
  using T = typename V::value_type;
  using Tr = ElemTraits<T>;
  std::mt19937_64 rng(29);
  std::uniform_int_distribution<int> dec(0, 40);
  for (int iter = 0; iter < 100; ++iter) {
    // Moderate values so the scalar model needs no saturation handling.
    alignas(64) std::array<T, V::lanes> in;
    std::uniform_int_distribution<int> val(-100, 100);
    for (auto& x : in) x = static_cast<T>(val(rng));
    const T decay = static_cast<T>(dec(rng));
    const auto got = dump(hscan_max_decay_linear(V::load(in.data()), decay));
    for (int s = 0; s < V::lanes; ++s) {
      // Analytic model: each candidate decays linearly; on saturating types a
      // decayed chain bottoms out at the type minimum and never recovers.
      std::int64_t want = Tr::neg_inf;
      for (int sp = 0; sp <= s; ++sp) {
        std::int64_t cand = std::int64_t{in[static_cast<std::size_t>(sp)]} -
                            std::int64_t{decay} * (s - sp);
        if (Tr::saturating && cand < Tr::min_value) cand = Tr::min_value;
        want = std::max(want, cand);
      }
      EXPECT_EQ(std::int64_t{got[static_cast<std::size_t>(s)]}, want)
          << "iter " << iter << " lane " << s;
    }
  }
}

TYPED_TEST(VecOpsTest, HscanLogEqualsLinear) {
  using V = TypeParam;
  using T = typename V::value_type;
  std::mt19937_64 rng(31);
  std::uniform_int_distribution<int> val(-100, 100);
  std::uniform_int_distribution<int> dec(0, 3);
  for (int iter = 0; iter < 100; ++iter) {
    alignas(64) std::array<T, V::lanes> in;
    for (auto& x : in) x = static_cast<T>(val(rng));
    const T decay = static_cast<T>(dec(rng));
    const V v = V::load(in.data());
    EXPECT_EQ(dump(hscan_max_decay_linear(v, decay)),
              dump(hscan_max_decay_log(v, decay)))
        << "iter " << iter;
  }
}

TEST(ElemTraits, ReferenceSaturation) {
  using T8 = ElemTraits<std::int8_t>;
  EXPECT_EQ(T8::adds(120, 100), 127);
  EXPECT_EQ(T8::adds(-120, -100), -128);
  EXPECT_EQ(T8::subs(-120, 100), -128);
  EXPECT_EQ(T8::subs(120, -100), 127);
  EXPECT_EQ(T8::neg_inf, std::numeric_limits<std::int8_t>::min());
  using T32 = ElemTraits<std::int32_t>;
  EXPECT_EQ(T32::neg_inf, std::numeric_limits<std::int32_t>::min() / 4);
  // 32-bit adds wraps (documented); engines keep values in range.
  EXPECT_EQ(T32::adds(1, 2), 3);
}

TEST(Arch, DetectionIsConsistent) {
  const CpuFeatures& f = cpu_features();
  // AVX2 implies SSE4.1 on every real CPU; AVX-512BW implies AVX2.
  if (f.avx512bw) EXPECT_TRUE(f.avx2);
  if (f.avx2) EXPECT_TRUE(f.sse41);
  EXPECT_TRUE(isa_available(Isa::Emul));
  const Isa best = best_isa();
  EXPECT_TRUE(isa_available(best));
  EXPECT_EQ(native_lanes(Isa::SSE41, 16), 8);
  EXPECT_EQ(native_lanes(Isa::AVX2, 16), 16);
  EXPECT_EQ(native_lanes(Isa::AVX512, 32), 16);
  EXPECT_EQ(native_lanes(Isa::AVX512, 8), 64);
  EXPECT_EQ(native_lanes(Isa::Emul, 16), 0);
  EXPECT_EQ(native_lanes(Isa::SSE41, 13), 0);
}

}  // namespace
}  // namespace valign::simd
