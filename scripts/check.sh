#!/usr/bin/env bash
# Tier-1 verification: the plain suite plus the ASan+UBSan suite.
#
#   scripts/check.sh            # both
#   scripts/check.sh plain      # release build + ctest only
#   scripts/check.sh sanitize   # sanitized build + ctest only
set -euo pipefail
cd "$(dirname "$0")/.."

run_plain() {
  cmake --preset release
  cmake --build --preset release
  ctest --preset release -j "$(nproc)"
}

run_sanitize() {
  cmake --preset sanitize
  cmake --build --preset sanitize
  ctest --preset sanitize -j "$(nproc)"
}

case "${1:-all}" in
  plain)    run_plain ;;
  sanitize) run_sanitize ;;
  all)      run_plain; run_sanitize ;;
  *) echo "usage: $0 [plain|sanitize|all]" >&2; exit 2 ;;
esac
echo "check.sh: all requested suites passed"
