#!/usr/bin/env bash
# Tier-1 verification: the plain suite plus the ASan+UBSan suite. The TSan
# suite (--tsan) is opt-in: it rebuilds with OpenMP off (TSan cannot see
# libgomp's internal synchronization) and runs the concurrency-heavy test
# binaries directly.
#
#   scripts/check.sh            # plain + sanitize
#   scripts/check.sh plain      # release build + ctest only
#   scripts/check.sh sanitize   # ASan+UBSan build + ctest only
#   scripts/check.sh --tsan     # TSan build + tests/obs + tests/runtime
#   scripts/check.sh --fuzz     # 30s fuzz smoke: FASTA + matrix parsers
set -euo pipefail
cd "$(dirname "$0")/.."

run_plain() {
  cmake --preset release
  cmake --build --preset release
  ctest --preset release -j "$(nproc)"
}

run_sanitize() {
  cmake --preset sanitize
  cmake --build --preset sanitize
  ctest --preset sanitize -j "$(nproc)"
}

run_tsan() {
  cmake --preset tsan
  cmake --build --preset tsan
  # The obs and runtime suites hold the threaded code paths (metrics registry,
  # stage/hw tables, pair scheduler, streaming pipeline). gtest_discover_tests
  # registers per-case names, so run the two binaries directly.
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  ./build-tsan/tests/test_obs
  ./build-tsan/tests/test_runtime
}

run_fuzz() {
  # 30-second smoke (15s per target): parsers must survive corpus replay plus
  # random mutations under ASan+UBSan. With clang this is libFuzzer; with gcc
  # it is the fallback driver in tests/fuzz/driver_main.cpp — same CLI.
  cmake -B build-fuzz -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DVALIGN_BUILD_FUZZERS=ON -DVALIGN_ENABLE_FAILPOINTS=OFF
  cmake --build build-fuzz -j "$(nproc)" --target fuzz_fasta fuzz_matrix
  ./build-fuzz/tests/fuzz/fuzz_fasta -max_total_time=15 tests/fuzz/corpus/fasta
  ./build-fuzz/tests/fuzz/fuzz_matrix -max_total_time=15 tests/fuzz/corpus/matrix
}

case "${1:-all}" in
  plain)         run_plain ;;
  sanitize)      run_sanitize ;;
  tsan|--tsan)   run_tsan ;;
  fuzz|--fuzz)   run_fuzz ;;
  all)           run_plain; run_sanitize ;;
  *) echo "usage: $0 [plain|sanitize|--tsan|--fuzz|all]" >&2; exit 2 ;;
esac
echo "check.sh: all requested suites passed"
