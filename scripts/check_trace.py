#!/usr/bin/env python3
"""Validate a valign --trace-timeline export (schema valign.trace_timeline/1).

Stdlib-only, used by CI after the trace smoke run and handy locally:

    valign search q.fa db.fa --trace-timeline timeline.json
    python3 scripts/check_trace.py timeline.json

Checks, in order:
  1. The file parses as JSON and carries the expected schema marker.
  2. traceEvents is a list of objects whose phases are limited to the set
     the writer emits (M metadata, X complete slices, i instants, b/e
     async-nestable query spans), every event has pid 1 and a numeric
     ts >= 0, and every X slice has dur >= 0.
  3. Async spans pair up: per (cat, id) the b/e events balance to zero and
     never go negative in timestamp order, so every query span that opens
     also closes.
  4. Thread coverage: every tid that records events has a thread_name
     metadata record.
  5. Per-query spans cover >= --min-coverage (default 0.95) of the work
     window -- the [min ts, max ts+dur] hull over screen/escalate/align
     work slices and the parse/schedule stages. Mirrors the acceptance
     test in tests/obs/test_query_trace.cpp.

Exits 0 when every check passes, 1 with a message on stderr otherwise.
"""

import argparse
import json
import sys

# Slice names as the writer emits them (src/valign/obs/query_trace.cpp):
# the per-thread work slices plus the parse/schedule stages. The align and
# reduce stage *envelopes* are excluded: their tail is worker-join and
# stats-aggregation time after the last per-query event, which no query
# span can attribute (the last work slice's thread emits its query_end
# after the slice closes, so the window end stays covered). Report-stage
# and flush bookkeeping are likewise outside the window.
WORK_STAGE_NAMES = {"stage.parse", "stage.schedule"}
WORK_SLICE_NAMES = {"screen", "escalate", "align"}


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail("top-level value is not an object")
    if doc.get("schema") != "valign.trace_timeline/1":
        fail(f"schema marker missing or wrong: {doc.get('schema')!r}")
    if not isinstance(doc.get("traceEvents"), list):
        fail("traceEvents is missing or not a list")
    return doc


def check_events(events: list) -> dict:
    """Structural checks; returns tid -> thread_name map."""
    names = {}
    seen_tids = set()
    span_depth = {}  # (cat, id) -> open count
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"traceEvents[{i}] is not an object")
        ph = e.get("ph")
        if ph not in ("M", "X", "i", "b", "e"):
            fail(f"traceEvents[{i}]: unexpected phase {ph!r}")
        if e.get("pid") != 1:
            fail(f"traceEvents[{i}]: pid is {e.get('pid')!r}, expected 1")
        if ph == "M":
            if e.get("name") == "thread_name":
                names[e.get("tid")] = e.get("args", {}).get("name", "")
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"traceEvents[{i}]: bad ts {ts!r}")
        seen_tids.add(e.get("tid"))
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"traceEvents[{i}]: X slice with bad dur {dur!r}")
        elif ph in ("b", "e"):
            key = (e.get("cat"), e.get("id"))
            if None in key:
                fail(f"traceEvents[{i}]: async event without cat/id")
            d = span_depth.get(key, 0) + (1 if ph == "b" else -1)
            if d < 0:
                fail(f"span {key} closed before it opened")
            span_depth[key] = d
    dangling = [k for k, d in span_depth.items() if d != 0]
    if dangling:
        fail(f"{len(dangling)} async span(s) never closed, e.g. {dangling[0]}")
    unnamed = [t for t in seen_tids if t not in names]
    if unnamed:
        fail(f"tids without thread_name metadata: {sorted(unnamed)}")
    return names


def coverage(events: list) -> float:
    """Fraction of the work window covered by per-query async spans."""
    w0, w1 = None, None
    for e in events:
        if e.get("ph") != "X":
            continue
        name = e.get("name", "")
        if name not in WORK_SLICE_NAMES and name not in WORK_STAGE_NAMES:
            continue
        lo, hi = e["ts"], e["ts"] + e.get("dur", 0)
        w0 = lo if w0 is None else min(w0, lo)
        w1 = hi if w1 is None else max(w1, hi)
    # The window starts at query admission: the batch driver parses its
    # FASTA inputs before any query id exists, so that head of stage.parse
    # is unattributable by design (streamed runs admit queries first, and
    # their parse stage is covered normally).
    first_qb = min((e["ts"] for e in events
                    if e.get("ph") == "i" and e.get("name") == "query_begin"),
                   default=None)
    if first_qb is not None and w0 is not None:
        w0 = max(w0, first_qb)
    if w0 is None or w1 <= w0:
        return 1.0  # no work recorded: nothing to cover

    spans = {}
    for e in events:
        if e.get("ph") not in ("b", "e") or e.get("cat") != "query":
            continue
        lo, hi = spans.get(e["id"], (e["ts"], e["ts"]))
        spans[e["id"]] = (min(lo, e["ts"]), max(hi, e["ts"]))
    covered, cur = 0.0, None
    for lo, hi in sorted(spans.values()):
        if cur is None or lo > cur[1]:
            if cur is not None:
                covered += max(0.0, min(cur[1], w1) - max(cur[0], w0))
            cur = (lo, hi)
        else:
            cur = (cur[0], max(cur[1], hi))
    if cur is not None:
        covered += max(0.0, min(cur[1], w1) - max(cur[0], w0))
    return covered / (w1 - w0)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("timeline", help="path to the --trace-timeline JSON file")
    ap.add_argument("--min-coverage", type=float, default=0.95,
                    help="required query-span coverage of the work window")
    ap.add_argument("--min-events", type=int, default=1,
                    help="require at least this many non-metadata events")
    args = ap.parse_args()

    doc = load(args.timeline)
    events = doc["traceEvents"]
    names = check_events(events)
    real = [e for e in events if e.get("ph") != "M"]
    if len(real) < args.min_events:
        fail(f"only {len(real)} events recorded (need >= {args.min_events})")
    other = doc.get("otherData", {})
    dropped = other.get("dropped", 0)
    cov = coverage(events)
    if cov < args.min_coverage:
        fail(f"query spans cover {cov:.1%} of the work window "
             f"(need >= {args.min_coverage:.0%})")
    print(f"check_trace: OK: {len(real)} events on {len(names)} track(s), "
          f"{other.get('queries', '?')} queries, {dropped} dropped, "
          f"coverage {cov:.1%}")


if __name__ == "__main__":
    main()
