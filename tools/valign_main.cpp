// The `valign` command-line tool. All logic lives in valign/cli/cli.cpp so
// the test suite can exercise it without spawning processes.
#include <iostream>
#include <string_view>
#include <vector>

#include "valign/cli/cli.hpp"

int main(int argc, char** argv) {
  // Streamed searches (valign search --stream) interleave parsing with
  // result output; untie the C/C++ streams so neither side serializes the
  // other.
  std::ios::sync_with_stdio(false);
  std::vector<std::string_view> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return valign::cli::run(args, std::cout, std::cerr);
}
