// Table I reproduction: relative performance of each vectorized approach on
// an all-to-all Smith-Waterman workload over a small representative protein
// dataset, using 128-bit vectors split into eight 16-bit integers (§III).
//
// Paper's measurement:  Scalar 1.0x, Blocked 6.6x, Diagonal 7.2x, Striped
// 15.1x. The expected *shape*: Blocked and Diagonal several times faster than
// scalar, Striped clearly fastest; Scan (measured here additionally) lands
// between Diagonal and Striped for this short-query-heavy dataset.
#include "common.hpp"

#include "valign/core/blocked.hpp"
#include "valign/core/diagonal.hpp"
#include "valign/core/scalar.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"

using namespace valign;
using namespace valign::bench;

int main() {
  banner("Table I", "relative performance of vectorized approaches (SW, 8x16-bit SSE)");

#if !defined(__SSE4_1__)
  std::printf("SSE4.1 not compiled in; cannot reproduce Table I.\n");
  return 0;
#else
  if (!simd::isa_available(Isa::SSE41)) {
    std::printf("SSE4.1 not available on this CPU.\n");
    return 0;
  }
  using V = simd::V128<std::int16_t>;  // eight 16-bit lanes, as in the paper

  const Dataset ds = workload::small_representative(scaled(56));
  std::printf("dataset: %zu proteins, mean length %.0f, all-to-all (%zu alignments)\n\n",
              ds.size(), ds.mean_length(), ds.size() * (ds.size() - 1));

  const ScoreMatrix& mat = ScoreMatrix::blosum62();
  const GapPenalty gap{11, 1};

  struct Row {
    const char* name;
    double seconds;
    std::int64_t checksum;
  };
  std::vector<Row> rows;

  {
    ScalarAligner<AlignClass::Local> eng(mat, gap);
    Sink sink;
    const double t = run_all_to_all(eng, ds, nullptr, &sink);
    rows.push_back({"Scalar", t, sink.sum});
  }
  {
    BlockedAligner<AlignClass::Local, V> eng(mat, gap);
    Sink sink;
    const double t = run_all_to_all(eng, ds, nullptr, &sink);
    rows.push_back({"Blocked", t, sink.sum});
  }
  {
    DiagonalAligner<AlignClass::Local, V> eng(mat, gap);
    Sink sink;
    const double t = run_all_to_all(eng, ds, nullptr, &sink);
    rows.push_back({"Diagonal", t, sink.sum});
  }
  {
    StripedAligner<AlignClass::Local, V> eng(mat, gap);
    Sink sink;
    const double t = run_all_to_all(eng, ds, nullptr, &sink);
    rows.push_back({"Striped", t, sink.sum});
  }
  {
    ScanAligner<AlignClass::Local, V> eng(mat, gap);
    Sink sink;
    const double t = run_all_to_all(eng, ds, nullptr, &sink);
    rows.push_back({"Scan", t, sink.sum});
  }
  {
    // The batched runtime path at the paper's configuration (SSE, 16-bit):
    // dispatch picks Scan/Striped per Table IV and the engine cache makes the
    // per-query approach flips construction-free. Scores must match the
    // hand-picked engines above.
    Options opts;
    opts.klass = AlignClass::Local;
    opts.isa = Isa::SSE41;
    opts.width = ElemWidth::W16;
    opts.matrix = &mat;
    opts.gap = gap;
    Aligner eng(opts);
    Sink sink;
    const double t = run_all_to_all(eng, ds, nullptr, &sink);
    rows.push_back({"Runtime", t, sink.sum});
  }

  // All approaches must agree on every score (checksum of the score sums).
  bool consistent = true;
  for (const Row& r : rows) consistent &= (r.checksum == rows[0].checksum);

  std::printf("%-10s %10s %9s      (paper: Scalar 1.0, Blocked 6.6, Diagonal 7.2, Striped 15.1)\n",
              "Approach", "Time (s)", "Speedup");
  const double base = rows[0].seconds;
  for (const Row& r : rows) {
    std::printf("%-10s %10.3f %8.1fx\n", r.name, r.seconds, base / r.seconds);
  }
  std::printf("\nscore checksums %s across approaches\n",
              consistent ? "AGREE" : "DISAGREE (BUG!)");
  return consistent ? 0 : 1;
#endif
}
