#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "valign/obs/perf.hpp"
#include "valign/obs/provenance.hpp"
#include "valign/version.hpp"

namespace valign::bench {

Harness::Harness(std::string command) {
  report_.command = std::move(command);
  obs::BenchProvenance& p = report_.provenance;
  p.tool_version = valign::version();
  p.isa = valign::to_string(simd::best_isa());
  p.cpu_model = obs::cpu_model();
  p.hostname = obs::hostname();
  p.timestamp_utc = obs::utc_timestamp();
  p.git_describe = obs::git_describe();
  p.compiler = obs::compiler_id();
  p.threads = static_cast<int>(std::thread::hardware_concurrency());
  p.bench_scale = scale();
  if (!obs::perf_available()) report_.hw_reason = obs::perf_probe().reason;
}

double Harness::scenario(const std::string& name, int reps,
                         const std::function<std::uint64_t()>& fn) {
  reps = std::max(1, reps);
  struct Rep {
    double sec = 0.0;
    bool hw_ok = false;
    obs::HwCounts hw{};
  };
  std::vector<Rep> runs(static_cast<std::size_t>(reps));
  std::uint64_t cells = 0;
  for (Rep& r : runs) {
    obs::HwCounts before{}, after{};
    const bool hw_before = obs::read_thread_counters(before);
    const auto t0 = std::chrono::steady_clock::now();
    cells = fn();
    r.sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
    if (hw_before && obs::read_thread_counters(after)) {
      r.hw_ok = true;
      r.hw = after - before;
    }
  }

  // Median by seconds; the median rep's counters are the ones reported so the
  // timing and the counter column describe the same repetition.
  std::vector<std::size_t> order(runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return runs[a].sec < runs[b].sec;
  });
  const Rep& median = runs[order[order.size() / 2]];

  obs::BenchScenario s;
  s.name = name;
  s.reps = reps;
  s.sec_min = runs[order.front()].sec;
  s.sec_median = median.sec;
  s.sec_max = runs[order.back()].sec;
  s.cells = cells;
  if (s.sec_median > 0.0 && cells > 0) {
    s.gcups_median = static_cast<double>(cells) / s.sec_median / 1e9;
  }
  s.hw_available = median.hw_ok;
  s.hw = median.hw;
  report_.scenarios.push_back(std::move(s));
  return median.sec;
}

void Harness::write(const std::string& path) const {
  report_.write_file(path);
  std::printf("bench report: %s\n", path.c_str());
}

}  // namespace valign::bench
