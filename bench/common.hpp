// Shared infrastructure for the paper-reproduction benches.
//
// Every bench binary regenerates one exhibit (table or figure) of the paper.
// Dataset sizes default to laptop-scale stand-ins; set VALIGN_BENCH_SCALE
// (e.g. 4.0) to enlarge them toward the paper's full workloads.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "valign/valign.hpp"

namespace valign::bench {

/// Global size multiplier from VALIGN_BENCH_SCALE (default 1.0).
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("VALIGN_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return s;
}

inline std::size_t scaled(std::size_t base) {
  return static_cast<std::size_t>(static_cast<double>(base) * scale());
}

/// Wall-clock a callable once.
template <class F>
double time_once(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Simple sum sink to keep the optimizer honest.
struct Sink {
  std::int64_t sum = 0;
  void operator()(const AlignResult& r) { sum += r.score; }
};

/// Run an engine over an all-to-all workload (homology detection shape).
/// Returns wall seconds; accumulates stats and the score sink.
template <class Engine>
double run_all_to_all(Engine& eng, const Dataset& ds, AlignStats* stats, Sink* sink) {
  return time_once([&] {
    for (std::size_t i = 0; i < ds.size(); ++i) {
      eng.set_query(ds[i].codes());
      for (std::size_t j = 0; j < ds.size(); ++j) {
        if (i == j) continue;
        const AlignResult r = eng.align(ds[j].codes());
        if (stats != nullptr) *stats += r.stats;
        if (sink != nullptr) (*sink)(r);
      }
    }
  });
}

/// Run an engine for one query against a whole database (db-search shape).
template <class Engine>
double run_query_vs_db(Engine& eng, std::span<const std::uint8_t> query,
                       const Dataset& db, AlignStats* stats, Sink* sink) {
  return time_once([&] {
    eng.set_query(query);
    for (const Sequence& s : db) {
      const AlignResult r = eng.align(s.codes());
      if (stats != nullptr) *stats += r.stats;
      if (sink != nullptr) (*sink)(r);
    }
  });
}

/// Instantiates `fn.template operator()<V>()` for the native 32-bit backend
/// with the requested lane count (4 = SSE4.1, 8 = AVX2, 16 = AVX-512).
/// Returns false when that ISA is not available on this host.
template <class Fn>
bool with_native_i32(int lanes, Fn&& fn) {
  switch (lanes) {
#if defined(__SSE4_1__)
    case 4:
      if (!simd::isa_available(Isa::SSE41)) return false;
      fn.template operator()<simd::V128<std::int32_t>>();
      return true;
#endif
#if defined(__AVX2__)
    case 8:
      if (!simd::isa_available(Isa::AVX2)) return false;
      fn.template operator()<simd::V256<std::int32_t>>();
      return true;
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
    case 16:
      if (!simd::isa_available(Isa::AVX512)) return false;
      fn.template operator()<simd::V512<std::int32_t>>();
      return true;
#endif
    default:
      return false;
  }
}

/// Same, with the instrumented emulated backend (architecture-independent op
/// censuses for the Table II/III and Fig. 3 reproductions).
template <class Fn>
bool with_counting_i32(int lanes, Fn&& fn) {
  namespace ins = instrument;
  switch (lanes) {
    case 4:
      fn.template operator()<ins::CountingVec<simd::VEmul<std::int32_t, 4>>>();
      return true;
    case 8:
      fn.template operator()<ins::CountingVec<simd::VEmul<std::int32_t, 8>>>();
      return true;
    case 16:
      fn.template operator()<ins::CountingVec<simd::VEmul<std::int32_t, 16>>>();
      return true;
    case 32:
      fn.template operator()<ins::CountingVec<simd::VEmul<std::int32_t, 32>>>();
      return true;
    case 64:
      fn.template operator()<ins::CountingVec<simd::VEmul<std::int32_t, 64>>>();
      return true;
    default:
      return false;
  }
}

/// Pretty banner for bench output.
inline void banner(const char* exhibit, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", exhibit, description);
  std::printf("(reproduction of Daily et al., ICPP 2016; see EXPERIMENTS.md)\n");
  std::printf("scale=%.2g  host-isa=%s\n", scale(), to_string(simd::best_isa()));
  std::printf("================================================================\n\n");
}

}  // namespace valign::bench
