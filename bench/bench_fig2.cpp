// Fig. 2 reproduction: sequence-length distributions of the four modelled
// datasets (RefSeq Homo sapiens DNA, RefSeq bacteria DNA, RefSeq bacteria
// proteins, UniProt proteins). The paper plots frequency and cumulative
// curves; this bench prints histogram buckets and the cumulative percentage,
// plus the summary statistics the fits target (§V).
#include <algorithm>
#include <cmath>
#include <numeric>

#include "common.hpp"

using namespace valign;
using namespace valign::bench;
using workload::LengthModel;

namespace {

void characterize(const LengthModel& model, std::size_t samples,
                  const std::vector<std::size_t>& buckets) {
  std::mt19937_64 rng(12345);
  std::vector<std::size_t> lengths(samples);
  for (auto& l : lengths) l = model.sample(rng);
  std::sort(lengths.begin(), lengths.end());

  const double mean =
      static_cast<double>(std::accumulate(lengths.begin(), lengths.end(),
                                          std::uint64_t{0})) /
      static_cast<double>(samples);
  const std::size_t median = lengths[samples / 2];
  const std::size_t longest = lengths.back();

  std::printf("--- %s (n=%zu samples) ---\n", model.name.c_str(), samples);
  std::printf("mean=%.0f  median=%zu  max=%zu\n", mean, median, longest);
  std::printf("%12s %10s %8s %8s\n", "length <=", "count", "freq%", "cum%");
  std::size_t prev = 0;
  std::size_t cum = 0;
  for (const std::size_t b : buckets) {
    const auto lo = std::lower_bound(lengths.begin(), lengths.end(), prev);
    const auto hi = std::upper_bound(lengths.begin(), lengths.end(), b);
    const auto count = static_cast<std::size_t>(hi - lo);
    cum += count;
    std::printf("%12zu %10zu %7.1f%% %7.1f%%\n", b, count,
                100.0 * static_cast<double>(count) / static_cast<double>(samples),
                100.0 * static_cast<double>(cum) / static_cast<double>(samples));
    prev = b + 1;
    if (cum == samples) break;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  banner("Fig. 2", "length distributions of the modelled DNA and protein datasets");

  const std::size_t n = scaled(100000);

  // Protein datasets: buckets every 100 residues (paper truncates ~1500-2000).
  std::vector<std::size_t> protein_buckets;
  for (std::size_t b = 100; b <= 2000; b += 100) protein_buckets.push_back(b);
  protein_buckets.push_back(40000);

  // DNA datasets: log-spaced buckets (lengths span 5-6 orders of magnitude).
  std::vector<std::size_t> dna_buckets;
  for (double b = 1000; b <= 2e8; b *= 4) dna_buckets.push_back(static_cast<std::size_t>(b));

  characterize(LengthModel::human_dna(), n / 10, dna_buckets);       // Fig. 2a
  characterize(LengthModel::bacteria_dna(), n, dna_buckets);         // Fig. 2b
  characterize(LengthModel::bacteria_protein(), n, protein_buckets); // Fig. 2c
  characterize(LengthModel::uniprot_protein(), n, protein_buckets);  // Fig. 2d

  // The concrete datasets the other benches consume.
  const Dataset b2k = workload::bacteria_2k(1);
  const Dataset up = workload::uniprot_like(scaled(2000));
  std::printf("--- generated datasets used by the other benches ---\n");
  std::printf("bacteria-2k : %zu seqs, mean %.0f, max %zu (paper: 2000 / 314 / 3206)\n",
              b2k.size(), b2k.mean_length(), b2k.max_length());
  std::printf("uniprot-like: %zu seqs, mean %.0f, max %zu (paper: 547964 / 356 / 35213)\n",
              up.size(), up.mean_length(), up.max_length());
  std::printf("\nShape check: half of the protein sequences should be <= ~300 "
              "residues;\nDNA curves should still be climbing at the bucket "
              "cutoff (truncated like the paper's).\n");
  return 0;
}
