// Micro-benchmarks (google-benchmark): single-alignment kernel throughput for
// every engine/backend combination, reported as GCUPS-equivalent items.
// These are not paper exhibits; they are the developer-facing regression
// harness for the kernels themselves.
#include <benchmark/benchmark.h>

#include <random>

#include "valign/valign.hpp"

namespace {

using namespace valign;

std::vector<std::uint8_t> make_seq(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> d(0, 19);
  std::vector<std::uint8_t> v(n);
  for (auto& c : v) c = static_cast<std::uint8_t>(d(rng));
  return v;
}

template <class Engine>
void run_engine_bench(benchmark::State& state) {
  const auto qlen = static_cast<std::size_t>(state.range(0));
  const auto dlen = static_cast<std::size_t>(state.range(1));
  const auto q = make_seq(qlen, 1);
  const auto d = make_seq(dlen, 2);
  Engine eng(ScoreMatrix::blosum62(), GapPenalty{11, 1});
  eng.set_query(q);
  std::int64_t sum = 0;
  for (auto _ : state) {
    sum += eng.align(d).score;
  }
  benchmark::DoNotOptimize(sum);
  state.counters["CUPS"] = benchmark::Counter(
      static_cast<double>(qlen * dlen) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void bench_scalar(benchmark::State& state) {
  run_engine_bench<ScalarAligner<AlignClass::Local>>(state);
}

#define VALIGN_BENCH_VEC(name, Engine, Klass, Vec)                    \
  void name(benchmark::State& state) {                               \
    run_engine_bench<Engine<Klass, Vec>>(state);                     \
  }                                                                   \
  BENCHMARK(name)->Args({300, 300})->Args({1000, 1000})

BENCHMARK(bench_scalar)->Args({300, 300});

#if defined(__SSE4_1__)
using Sse16 = valign::simd::V128<std::int16_t>;
using Sse32 = valign::simd::V128<std::int32_t>;
VALIGN_BENCH_VEC(sw_striped_sse_i16, StripedAligner, AlignClass::Local, Sse16);
VALIGN_BENCH_VEC(sw_scan_sse_i16, ScanAligner, AlignClass::Local, Sse16);
VALIGN_BENCH_VEC(sw_blocked_sse_i16, BlockedAligner, AlignClass::Local, Sse16);
VALIGN_BENCH_VEC(sw_diagonal_sse_i16, DiagonalAligner, AlignClass::Local, Sse16);
VALIGN_BENCH_VEC(nw_striped_sse_i32, StripedAligner, AlignClass::Global, Sse32);
VALIGN_BENCH_VEC(nw_scan_sse_i32, ScanAligner, AlignClass::Global, Sse32);
#endif

#if defined(__AVX2__)
using Avx16 = valign::simd::V256<std::int16_t>;
using Avx32 = valign::simd::V256<std::int32_t>;
VALIGN_BENCH_VEC(sw_striped_avx2_i16, StripedAligner, AlignClass::Local, Avx16);
VALIGN_BENCH_VEC(sw_scan_avx2_i16, ScanAligner, AlignClass::Local, Avx16);
VALIGN_BENCH_VEC(nw_striped_avx2_i32, StripedAligner, AlignClass::Global, Avx32);
VALIGN_BENCH_VEC(nw_scan_avx2_i32, ScanAligner, AlignClass::Global, Avx32);
#endif

#if defined(__AVX512F__) && defined(__AVX512BW__)
using Avx512_16 = valign::simd::V512<std::int16_t>;
using Avx512_32 = valign::simd::V512<std::int32_t>;
VALIGN_BENCH_VEC(sw_striped_avx512_i16, StripedAligner, AlignClass::Local, Avx512_16);
VALIGN_BENCH_VEC(sw_scan_avx512_i16, ScanAligner, AlignClass::Local, Avx512_16);
VALIGN_BENCH_VEC(sw_striped_avx512_i32, StripedAligner, AlignClass::Local, Avx512_32);
VALIGN_BENCH_VEC(sw_scan_avx512_i32, ScanAligner, AlignClass::Local, Avx512_32);
VALIGN_BENCH_VEC(sg_striped_avx512_i32, StripedAligner, AlignClass::SemiGlobal, Avx512_32);
VALIGN_BENCH_VEC(sg_scan_avx512_i32, ScanAligner, AlignClass::SemiGlobal, Avx512_32);
VALIGN_BENCH_VEC(nw_striped_avx512_i32, StripedAligner, AlignClass::Global, Avx512_32);
VALIGN_BENCH_VEC(nw_scan_avx512_i32, ScanAligner, AlignClass::Global, Avx512_32);
#endif

}  // namespace

BENCHMARK_MAIN();
