// Batched-runtime ablation: few-query database search where query-level
// parallelism cannot fill the machine.
//
// The acceptance workload: 4 queries x 2000 database sequences on 8 threads.
// The legacy path parallelizes over queries, so half the threads idle; the
// pair scheduler splits each query's sweep into length-bucketed blocks and
// keeps every thread busy. The streaming pipeline additionally overlaps FASTA
// parsing with alignment.
//
// Two verdicts:
//   1. Makespan (always enforced): greedy list scheduling of each schedule's
//      blocks onto 8 virtual threads, costed by the DP-cell model. This is
//      the quantity the scheduler controls, independent of the host. Target:
//      pair blocks reach >= 1.5x lower makespan than query-parallel.
//   2. Wall clock (enforced only when the host really has >= 8 hardware
//      threads): measured GCUPS of the same three paths. On smaller hosts the
//      numbers are printed for information — 8 software threads on 1 core
//      cannot speed anything up, so the makespan model is the meaningful
//      check there.
//   3. Engine families (enforced at AVX2 or wider): inter-sequence
//      (lane-packed) vs intra-sequence (striped) GCUPS, swept over database
//      mean lengths 64..4096 with short-peptide queries. Target: >= 2x on the
//      short bucket (mean dlen <= 128); the crossover, if the striped engine
//      catches up, lands in the run report
//      (bench.interseq.crossover_mean_dlen).
#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

#include "common.hpp"
#include "harness.hpp"
#include "valign/obs/metrics.hpp"
#include "valign/obs/query_trace.hpp"
#include "valign/obs/report.hpp"
#include "valign/runtime/engine_cache.hpp"

using namespace valign;
using namespace valign::bench;

namespace {

struct Row {
  const char* config;
  double seconds;
  double gcups;
  std::int64_t checksum;
};

std::int64_t hit_checksum(const apps::SearchReport& rep) {
  std::int64_t sum = 0;
  for (const auto& hits : rep.top_hits) {
    for (const apps::SearchHit& h : hits) {
      sum += h.score * 31 + static_cast<std::int64_t>(h.db_index);
    }
  }
  return sum;
}

/// Greedy list scheduling: blocks in schedule order, each onto the least
/// loaded of `threads` workers. Returns the makespan in DP cells. (Blocks are
/// already LPT-sorted, so this is the classic 4/3-approximation — and exactly
/// what `omp for schedule(dynamic)` approaches at runtime.)
std::uint64_t makespan(const runtime::Schedule& sched, int threads) {
  std::vector<std::uint64_t> load(static_cast<std::size_t>(threads), 0);
  for (const runtime::WorkBlock& b : sched.blocks) {
    *std::min_element(load.begin(), load.end()) += b.cost;
  }
  return *std::max_element(load.begin(), load.end());
}

/// Log-normal length model centred on `mean` with a tight spread, so a sweep
/// bucket really is "database sequences of roughly this length".
workload::LengthModel bucket_lengths(std::size_t mean) {
  workload::LengthModel m;
  m.name = "bucket" + std::to_string(mean);
  m.sigma = 0.30;
  m.mu = std::log(static_cast<double>(mean)) - m.sigma * m.sigma / 2.0;
  m.min_len = 16;
  m.max_len = 4 * mean;
  return m;
}

struct SweepRow {
  std::size_t mean_dlen;
  std::size_t subjects;
  double intra_gcups;
  double inter_gcups;
  bool hits_match;
};

/// Inter-vs-intra engine sweep: short-peptide queries against length buckets
/// of mean 64..4096. Single-threaded so the numbers compare engine
/// throughput, not scheduling. Returns one row per bucket. The short bucket
/// (mean 128) — the one the 2x verdict gates on — runs through the harness
/// so it lands in the bench report with repetition spread and HW counters.
std::vector<SweepRow> engine_sweep(const Dataset& queries, Harness& harness) {
  // ~32M DP cells per engine per bucket: large enough to dominate setup,
  // small enough that the full sweep stays in benchmark territory.
  const std::uint64_t db_residues = scaled(320'000);
  std::vector<SweepRow> rows;
  for (const std::size_t mean : {std::size_t{64}, std::size_t{128},
                                 std::size_t{256}, std::size_t{512},
                                 std::size_t{1024}, std::size_t{2048},
                                 std::size_t{4096}}) {
    workload::GeneratorConfig gc;
    gc.lengths = bucket_lengths(mean);
    gc.seed = 90 + mean;
    const auto count = static_cast<std::size_t>(
        std::max<std::uint64_t>(16, db_residues / mean));
    const Dataset db = workload::generate(count, gc);

    apps::SearchConfig intra;
    intra.threads = 1;
    intra.engine = EngineMode::Intra;
    apps::SearchConfig inter = intra;
    inter.engine = EngineMode::Inter;

    (void)apps::search(queries, db, inter);  // warm-up (allocations, pages)
    if (mean == 128) {
      apps::SearchReport ri, rp;
      const double ti = harness.scenario("interseq.short_bucket.intra", 3, [&] {
        ri = apps::search(queries, db, intra);
        return ri.cells_real;
      });
      const double tp = harness.scenario("interseq.short_bucket.inter", 3, [&] {
        rp = apps::search(queries, db, inter);
        return rp.cells_real;
      });
      rows.push_back(SweepRow{
          mean, db.size(),
          ti > 0 ? static_cast<double>(ri.cells_real) / ti / 1e9 : 0.0,
          tp > 0 ? static_cast<double>(rp.cells_real) / tp / 1e9 : 0.0,
          hit_checksum(ri) == hit_checksum(rp)});
    } else {
      const apps::SearchReport ri = apps::search(queries, db, intra);
      const apps::SearchReport rp = apps::search(queries, db, inter);
      rows.push_back(SweepRow{mean, db.size(), ri.gcups(), rp.gcups(),
                              hit_checksum(ri) == hit_checksum(rp)});
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  banner("runtime", "pair scheduling + engine cache vs the query-parallel path");

  const int threads = 8;
  const Dataset queries = workload::bacteria_2k(7, scaled(4));
  const Dataset db = workload::uniprot_like(scaled(2000), 8);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("workload: %zu queries x %zu db sequences (%llu Mcells), "
              "%d threads (host has %u)\n\n",
              queries.size(), db.size(),
              static_cast<unsigned long long>(
                  queries.total_residues() * db.total_residues() / 1'000'000),
              threads, hw);

  // --- Verdict 1: schedule quality under the cost model --------------------
  runtime::ScheduleConfig qcfg{runtime::PairSched::Query, threads, 0};
  runtime::ScheduleConfig pcfg{runtime::PairSched::Pair, threads, 0};
  const auto qsched = runtime::make_search_schedule(queries, db, qcfg);
  const auto psched = runtime::make_search_schedule(queries, db, pcfg);
  const std::uint64_t qms = makespan(qsched, threads);
  const std::uint64_t pms = makespan(psched, threads);
  const double model_speedup = static_cast<double>(qms) / static_cast<double>(pms);
  std::printf("schedule makespan on %d virtual threads (Mcells):\n", threads);
  std::printf("  query-parallel: %4zu blocks, makespan %6llu\n", qsched.blocks.size(),
              static_cast<unsigned long long>(qms / 1'000'000));
  std::printf("  pair-sched:     %4zu blocks, makespan %6llu\n", psched.blocks.size(),
              static_cast<unsigned long long>(pms / 1'000'000));
  std::printf("  model speedup: %.2fx (target >= 1.50x)\n\n", model_speedup);

  // --- Verdict 2: measured GCUPS -------------------------------------------
  apps::SearchConfig legacy;
  legacy.threads = threads;
  legacy.sched = runtime::PairSched::Query;
  legacy.align.cache_engines = false;  // the seed rebuilt engines on switches

  apps::SearchConfig paired = legacy;
  paired.sched = runtime::PairSched::Pair;
  paired.align.cache_engines = true;

  // Warm-up pass (page in the datasets, spin up the OpenMP pool).
  (void)apps::search(queries, db, paired);

  // Each configuration runs through the unified harness (3 reps, median of
  // the per-rep wall clock, HW counters when the host exposes them) so the
  // numbers land in the BENCH_<n>.json trajectory file that `valign
  // bench-diff` compares across commits.
  Harness harness("bench_runtime");
  const int reps = 3;
  std::vector<Row> rows;
  apps::SearchReport legacy_rep, pair_rep, stream_rep;
  auto record = [&](const char* config, const char* scenario,
                    apps::SearchReport& rep,
                    const std::function<apps::SearchReport()>& run) {
    const double sec = harness.scenario(scenario, reps, [&] {
      rep = run();
      return rep.cells_real;
    });
    const double gcups =
        sec > 0.0 ? static_cast<double>(rep.cells_real) / sec / 1e9 : 0.0;
    rows.push_back(Row{config, sec, gcups, hit_checksum(rep)});
  };

  record("query-parallel, cache off (seed)", "search.query_parallel_cache_off",
         legacy_rep, [&] { return apps::search(queries, db, legacy); });
  record("pair-sched, cache on", "search.pair_sched_cache_on", pair_rep,
         [&] { return apps::search(queries, db, paired); });

  {
    // Streaming: feed the same database through the FASTA pipeline.
    std::ostringstream fasta;
    write_fasta(fasta, db);
    record("streaming pipeline", "search.streaming_pipeline", stream_rep, [&] {
      std::istringstream in(fasta.str());
      return apps::search_stream(queries, in, db.alphabet(), paired);
    });
  }

  std::printf("%-36s %10s %10s\n", "configuration", "median (s)", "GCUPS");
  for (const Row& r : rows) {
    std::printf("%-36s %10.3f %10.2f\n", r.config, r.seconds, r.gcups);
  }

  bool ok = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].checksum != rows[0].checksum) {
      std::printf("\nFAIL: '%s' produced different hits than the legacy path\n",
                  rows[i].config);
      ok = false;
    }
  }

  const double measured = rows[1].gcups / rows[0].gcups;
  const bool host_can_parallelize = hw >= static_cast<unsigned>(threads);
  std::printf("\nmeasured pair-sched speedup: %.2fx (%s)\n", measured,
              host_can_parallelize ? "enforced, target >= 1.50x"
                                   : "informational: host lacks the cores");
  std::printf("measured streaming speedup:  %.2fx\n", rows[2].gcups / rows[0].gcups);

  // --- Verdict 3: inter-sequence vs intra-sequence engines -----------------
  // Short-peptide queries (the profile/HMM-fragment shape) against database
  // length buckets. The lane-packed engine amortizes its per-column scalar
  // work over every lane; the striped engine pays its per-column tail for one
  // pair. The crossover (if any) is where that amortization stops winning.
  workload::GeneratorConfig qg;
  qg.lengths = bucket_lengths(48);
  qg.seed = 77;
  const Dataset short_queries = workload::generate(4, qg);
  std::printf("\ninter vs intra sweep: %zu short queries (mean %zu aa), 1 thread\n",
              short_queries.size(),
              static_cast<std::size_t>(short_queries.mean_length()));
  std::printf("%10s %10s %12s %12s %9s\n", "mean dlen", "subjects",
              "intra GCUPS", "inter GCUPS", "speedup");
  const std::vector<SweepRow> sweep = engine_sweep(short_queries, harness);
  obs::Registry& reg = obs::Registry::global();
  std::size_t crossover = 0;  // first bucket where intra catches up (0 = never)
  double short_speedup = 0.0;
  for (const SweepRow& r : sweep) {
    const double speedup = r.intra_gcups > 0 ? r.inter_gcups / r.intra_gcups : 0;
    std::printf("%10zu %10zu %12.2f %12.2f %8.2fx%s\n", r.mean_dlen, r.subjects,
                r.intra_gcups, r.inter_gcups, speedup,
                r.hits_match ? "" : "  HITS DIFFER");
    ok &= r.hits_match;
    if (r.mean_dlen <= 128) short_speedup = std::max(short_speedup, speedup);
    if (crossover == 0 && speedup < 1.0) crossover = r.mean_dlen;
    const std::string key = "bench.interseq.sweep.mean" + std::to_string(r.mean_dlen);
    reg.gauge(key + ".intra_mgcups")
        .set(static_cast<std::int64_t>(1000.0 * r.intra_gcups));
    reg.gauge(key + ".inter_mgcups")
        .set(static_cast<std::int64_t>(1000.0 * r.inter_gcups));
  }
  // 0 means the packed engine won every bucket on this host.
  reg.gauge("bench.interseq.crossover_mean_dlen")
      .set(static_cast<std::int64_t>(crossover));
  reg.gauge("bench.interseq.short_bucket_speedup_pct")
      .set(static_cast<std::int64_t>(100.0 * short_speedup));
  const bool wide_isa = simd::best_isa() == Isa::AVX2 || simd::best_isa() == Isa::AVX512;
  std::printf("short-bucket (mean <= 128) speedup: %.2fx (%s)\n", short_speedup,
              wide_isa ? "enforced, target >= 2.00x"
                       : "informational: host lacks AVX2");
  std::printf("crossover: %s\n",
              crossover == 0 ? "none (inter won every bucket)"
                             : ("intra catches up at mean dlen " +
                                std::to_string(crossover)).c_str());
  if (wide_isa) ok &= short_speedup >= 2.0;

  // --- Verdict 4: two-stage prescreen on a mixed-length search -------------
  // End-to-end (not per-kernel): the same Local top-k search with the
  // prescreen off vs auto. The i8 screen sweeps every pair; the escalation
  // cutoff then skips full DP for pairs whose upper bound cannot reach the
  // top-k, so the win scales with (1 - selectivity). Hits must be
  // bit-identical — the filter is exact (docs/prefilter.md).
  apps::SearchConfig pf_off;
  pf_off.align.klass = AlignClass::Local;
  pf_off.threads = 1;
  pf_off.top_k = 5;
  pf_off.prefilter = PrefilterMode::Off;
  apps::SearchConfig pf_auto = pf_off;
  pf_auto.prefilter = PrefilterMode::Auto;

  (void)apps::search(queries, db, pf_auto);  // warm-up
  apps::SearchReport off_rep, pf_rep;
  const double pf_off_sec = harness.scenario("prefilter.mixed_search.off", reps, [&] {
    off_rep = apps::search(queries, db, pf_off);
    return off_rep.cells_real;
  });
  const double pf_auto_sec = harness.scenario("prefilter.mixed_search.auto", reps, [&] {
    pf_rep = apps::search(queries, db, pf_auto);
    return pf_rep.cells_real;
  });
  const double pf_speedup = pf_auto_sec > 0.0 ? pf_off_sec / pf_auto_sec : 0.0;
  const bool pf_hits_match = hit_checksum(off_rep) == hit_checksum(pf_rep);
  std::printf("\nprefilter (SW top-%d, mixed-length db, 1 thread):\n", pf_off.top_k);
  std::printf("  off:  %8.3f s\n  auto: %8.3f s  (end-to-end speedup %.2fx)\n",
              pf_off_sec, pf_auto_sec, pf_speedup);
  std::printf("  screened %llu, escaped %llu, escalated %llu "
              "(selectivity %.1f%%, %llu saturated)%s\n",
              static_cast<unsigned long long>(pf_rep.prefilter.screened),
              static_cast<unsigned long long>(pf_rep.prefilter.escaped),
              static_cast<unsigned long long>(pf_rep.prefilter.escalated),
              100.0 * pf_rep.prefilter.selectivity(),
              static_cast<unsigned long long>(pf_rep.prefilter.saturated),
              pf_hits_match ? "" : "  HITS DIFFER");
  ok &= pf_hits_match;
  reg.gauge("bench.prefilter.selectivity_pct")
      .set(static_cast<std::int64_t>(100.0 * pf_rep.prefilter.selectivity()));
  reg.gauge("bench.prefilter.speedup_pct")
      .set(static_cast<std::int64_t>(100.0 * pf_speedup));

  // --- Verdict 5: intra-task kernels per lane count ------------------------
  // Striped (lazy-F) vs Scan (fixed two-pass) vs Deconstructed (prefix-max
  // fix-up, docs/kernels.md) at each native lane count the widest ISA
  // provides — element widths i8/i16/i32 map to the lane columns. Single
  // pairs through one Aligner so the rows compare kernels, not scheduling;
  // each (engine, lane) cell runs through the harness, so the GCUPS rows and
  // their HW counters land in the bench report. Semi-global is the shape
  // where the lazy-F corrective tail hurts most; the verdict (enforced at
  // AVX2 or wider) is that the deconstructed kernel beats BOTH incumbents on
  // at least one lane count.
  workload::GeneratorConfig kqg;
  kqg.lengths = bucket_lengths(128);
  kqg.seed = 201;
  const Dataset kernel_q = workload::generate(1, kqg);
  workload::GeneratorConfig kdg;
  kdg.lengths = bucket_lengths(300);
  kdg.seed = 202;
  const Dataset kernel_db = workload::generate(scaled(48), kdg);
  std::printf("\nintra-task kernels (SG, q=%zu aa, %zu subjects, 1 thread):\n",
              kernel_q[0].size(), kernel_db.size());
  std::printf("%6s %6s %10s %10s %14s\n", "lanes", "width", "striped", "scan",
              "deconstructed");
  const Approach kernels[] = {Approach::Striped, Approach::Scan,
                              Approach::Deconstructed};
  bool dec_won_cell = false;
  bool kernel_scores_match = true;
  for (const ElemWidth w : {ElemWidth::W8, ElemWidth::W16, ElemWidth::W32}) {
    const int lanes = simd::native_lanes(simd::best_isa(), elem_bits(w));
    double gcups_by_engine[3] = {};
    std::int64_t sums[3] = {};
    for (std::size_t e = 0; e < 3; ++e) {
      Options ko;
      ko.klass = AlignClass::SemiGlobal;
      ko.approach = kernels[e];
      ko.width = w;
      Aligner al(ko);
      al.set_query(kernel_q[0].codes());
      std::uint64_t cells = 0;
      const std::string name = std::string("kernel.") + to_string(kernels[e]) +
                               ".lanes" + std::to_string(lanes);
      const double sec = harness.scenario(name.c_str(), reps, [&] {
        std::int64_t sum = 0;
        cells = 0;
        for (const Sequence& d : kernel_db) {
          const AlignResult r = al.align(d.codes());
          // Forced narrow widths may saturate; saturated pairs score
          // identically (the rail) so the checksum still matches.
          sum += r.score;
          cells += kernel_q[0].size() * d.size();
        }
        sums[e] = sum;
        return cells;
      });
      gcups_by_engine[e] =
          sec > 0.0 ? static_cast<double>(cells) / sec / 1e9 : 0.0;
      const std::string key = "bench.kernel." + std::string(to_string(kernels[e])) +
                              ".lanes" + std::to_string(lanes) + ".mgcups";
      reg.gauge(key).set(
          static_cast<std::int64_t>(1000.0 * gcups_by_engine[e]));
    }
    kernel_scores_match &= sums[0] == sums[1] && sums[1] == sums[2];
    const bool dec_wins = gcups_by_engine[2] > gcups_by_engine[0] &&
                          gcups_by_engine[2] > gcups_by_engine[1];
    dec_won_cell |= dec_wins;
    std::printf("%6d %6d %10.2f %10.2f %14.2f%s%s\n", lanes, elem_bits(w),
                gcups_by_engine[0], gcups_by_engine[1], gcups_by_engine[2],
                dec_wins ? "  <- deconstructed wins" : "",
                sums[0] == sums[1] && sums[1] == sums[2] ? "" : "  SCORES DIFFER");
  }
  std::printf("deconstructed beats striped AND scan on >= 1 lane count: %s (%s)\n",
              dec_won_cell ? "yes" : "no",
              wide_isa ? "enforced" : "informational: host lacks AVX2");
  ok &= kernel_scores_match;
  if (wide_isa) ok &= dec_won_cell;

  // --- Verdict 6 (informational): request-tracing overhead -----------------
  // The same single-thread Local search with request tracing off vs on
  // (docs/observability.md). The recording path is a relaxed load plus a
  // bounded per-thread append, so the delta should be noise; the gauges let
  // CI watch the trend without gating the run on timer jitter. Hits must
  // still match — tracing is an observer, never a participant.
  apps::SearchConfig tcfg;
  tcfg.align.klass = AlignClass::Local;
  tcfg.threads = 1;
  tcfg.top_k = 5;
  apps::SearchReport toff_rep, ton_rep;
  (void)apps::search(queries, db, tcfg);  // warm-up
  const double toff_sec = harness.scenario("trace.search.off", reps, [&] {
    toff_rep = apps::search(queries, db, tcfg);
    return toff_rep.cells_real;
  });
  obs::query_trace_reset();
  obs::set_query_trace_enabled(true);
  const double ton_sec = harness.scenario("trace.search.on", reps, [&] {
    obs::query_trace_reset();  // bound the sinks to one rep's events
    ton_rep = apps::search(queries, db, tcfg);
    return ton_rep.cells_real;
  });
  obs::set_query_trace_enabled(false);
  const obs::TraceLog tlog = obs::collect_query_trace();
  obs::query_trace_reset();
  const double trace_overhead_pct =
      toff_sec > 0.0 ? (ton_sec / toff_sec - 1.0) * 100.0 : 0.0;
  const bool trace_hits_match = hit_checksum(toff_rep) == hit_checksum(ton_rep);
  std::printf("\nrequest tracing (same search, 1 thread):\n");
  std::printf("  off: %8.3f s   on: %8.3f s   overhead %+.1f%%  "
              "(%zu events, %llu dropped)%s\n",
              toff_sec, ton_sec, trace_overhead_pct, tlog.event_count(),
              static_cast<unsigned long long>(tlog.dropped),
              trace_hits_match ? "" : "  HITS DIFFER");
  ok &= trace_hits_match;
  reg.gauge("bench.trace.overhead_pct")
      .set(static_cast<std::int64_t>(trace_overhead_pct));
  reg.gauge("bench.trace.events")
      .set(static_cast<std::int64_t>(tlog.event_count()));
  reg.gauge("bench.trace.dropped").set(static_cast<std::int64_t>(tlog.dropped));

  ok &= model_speedup >= 1.5;
  if (host_can_parallelize) ok &= measured >= 1.5;
  std::printf("verdict: %s\n", ok ? "PASS" : "FAIL");

  // Emit the same run-report artifact the CLI writes (--metrics-out), built
  // from the pair-sched pass. CI uploads this file.
  const char* report_path = argc > 1 ? argv[1] : "bench_runtime_report.json";
  obs::RunReport rr;
  rr.command = "bench_runtime";
  rr.align_class = to_string(paired.align.klass);
  rr.approach = to_string(paired.align.approach);
  rr.isa = to_string(simd::best_isa());
  rr.matrix = paired.align.matrix != nullptr ? paired.align.matrix->name() : "blosum62";
  rr.gap_open = ScoreMatrix::from_name(rr.matrix).default_gaps().open;
  rr.gap_extend = ScoreMatrix::from_name(rr.matrix).default_gaps().extend;
  rr.threads = threads;
  rr.sched = runtime::to_string(paired.sched);
  rr.engine = to_string(paired.engine);
  rr.cache_engines = paired.align.cache_engines;
  rr.queries = queries.size();
  rr.subjects = db.size();
  rr.alignments = pair_rep.alignments;
  rr.cells_real = pair_rep.cells_real;
  rr.seconds = pair_rep.seconds;
  rr.gcups_real = pair_rep.gcups();
  rr.gcups_padded = pair_rep.gcups_padded();
  rr.width_counts = pair_rep.width_counts;
  rr.totals = pair_rep.totals;
  rr.cache_lookups = pair_rep.cache.lookups;
  rr.cache_hits = pair_rep.cache.hits;
  rr.cache_builds = pair_rep.cache.builds;
  rr.cache_evictions = pair_rep.cache.evictions;
  rr.cache_profile_sets = pair_rep.cache.profile_sets;
  rr.profile_cache_lookups = pair_rep.profile_cache.lookups;
  rr.profile_cache_hits = pair_rep.profile_cache.hits;
  rr.profile_cache_builds = pair_rep.profile_cache.builds;
  rr.profile_cache_evictions = pair_rep.profile_cache.evictions;
  rr.profile_cache_fast_builds = pair_rep.profile_cache.fast_builds;
  // Prescreen section from the Verdict-4 pass (the pair-sched pass ran with
  // the prescreen off).
  rr.prefilter_mode = to_string(pf_auto.prefilter);
  rr.prefilter_enabled = pf_rep.prefilter.enabled;
  rr.prefilter_screened = pf_rep.prefilter.screened;
  rr.prefilter_escaped = pf_rep.prefilter.escaped;
  rr.prefilter_escalated = pf_rep.prefilter.escalated;
  rr.prefilter_saturated = pf_rep.prefilter.saturated;
  rr.prefilter_screen_failures = pf_rep.prefilter.screen_failures;
  rr.prefilter_chunks = pf_rep.prefilter.chunks;
  rr.prefilter_screen_cells = pf_rep.prefilter.screen_cells;
  rr.prefilter_selectivity = pf_rep.prefilter.selectivity();
  rr.capture_environment();
  rr.write_file(report_path);
  std::printf("report: %s\n", report_path);

  // The bench-report trajectory file (schema valign.bench_report/1): one
  // entry per harness scenario, compared across commits by `valign
  // bench-diff` and by CI against bench/baseline.json.
  harness.write(argc > 2 ? argv[2] : "BENCH_4.json");
  return ok ? 0 : 1;
}
