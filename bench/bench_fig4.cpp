// Fig. 4 reproduction: (a-c) relative performance of Scan over Striped as a
// function of query length for 4/8/16 lanes, one panel per alignment class;
// (d-f) the corresponding total number of Striped corrections.
//
// Workload: database search of fixed-length queries against a UniProt-like
// database (§VI-C/D). Expected shape: NW favours Striped below ~150 residues
// and Scan above, at every lane count; SG and SW favour Scan for short
// queries with the crossover moving right as lanes grow; the SW correction
// curve forms a "bubble" whose plateau starts near 10x the lane count and
// whose height roughly doubles per lane doubling.
#include "fig4_sweep.hpp"

using namespace valign;
using namespace valign::bench;

int main() {
  banner("Fig. 4", "query length vs Scan/Striped speedup and Striped corrections");

  const Dataset db = workload::uniprot_like(scaled(100), 2);
  std::printf("database: %zu sequences, mean length %.0f, %llu residues\n\n",
              db.size(), db.mean_length(),
              static_cast<unsigned long long>(db.total_residues()));

  const std::vector<SweepSeries> series = run_fig4_sweep(db);

  // Panels a-c: speedup of Scan over Striped per query length.
  for (const AlignClass klass :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    std::printf("--- Fig. 4 %s panel: Scan/Striped relative performance "
                "(>1 = Scan faster) ---\n",
                to_string(klass));
    std::vector<const SweepSeries*> cols;
    for (const SweepSeries& s : series) {
      if (s.klass == klass) cols.push_back(&s);
    }
    std::printf("%8s", "qlen");
    for (const SweepSeries* s : cols) std::printf(" %8d-lane", s->lanes);
    std::printf("\n");
    for (std::size_t i = 0; i < sweep_lengths().size(); ++i) {
      std::printf("%8zu", sweep_lengths()[i]);
      for (const SweepSeries* s : cols) std::printf(" %13.3f", s->points[i].ratio());
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Panels d-f: total striped corrections per query length.
  for (const AlignClass klass :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    std::printf("--- Fig. 4 %s panel: total Striped corrective epochs ---\n",
                to_string(klass));
    std::vector<const SweepSeries*> cols;
    for (const SweepSeries& s : series) {
      if (s.klass == klass) cols.push_back(&s);
    }
    std::printf("%8s", "qlen");
    for (const SweepSeries* s : cols) std::printf(" %8d-lane", s->lanes);
    std::printf("\n");
    for (std::size_t i = 0; i < sweep_lengths().size(); ++i) {
      std::printf("%8zu", sweep_lengths()[i]);
      for (const SweepSeries* s : cols) {
        std::printf(" %13.3e", static_cast<double>(s->points[i].corrections));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Shape verdicts.
  auto find = [&](AlignClass c, int lanes) -> const SweepSeries* {
    for (const SweepSeries& s : series) {
      if (s.klass == c && s.lanes == lanes) return &s;
    }
    return nullptr;
  };
  std::printf("shape checks:\n");
  bool ok = true;
  // Corrections grow with lane count (compare totals at a mid length).
  for (const AlignClass c :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    const SweepSeries* s4 = find(c, 4);
    const SweepSeries* s16 = find(c, 16);
    if (s4 == nullptr || s16 == nullptr) continue;
    std::uint64_t c4 = 0, c16 = 0;
    for (const SweepPoint& p : s4->points) c4 += p.corrections;
    for (const SweepPoint& p : s16->points) c16 += p.corrections;
    const bool grow = c16 > c4;
    std::printf("  %s: corrections grow with lanes (4->16: %.2e -> %.2e): %s\n",
                to_string(c), static_cast<double>(c4), static_cast<double>(c16),
                grow ? "yes" : "NO");
    ok &= grow;
  }
  // NW: long queries favour Scan at the widest width (the paper's headline).
  if (const SweepSeries* s = find(AlignClass::Global, 16)) {
    const bool long_scan = s->points.back().ratio() > 1.0;
    std::printf("  NW @16 lanes: Scan faster at qlen=%zu (ratio %.2f): %s\n",
                s->points.back().qlen, s->points.back().ratio(),
                long_scan ? "yes" : "NO");
    ok &= long_scan;
  }
  // SG: short queries favour Scan at 16 lanes.
  if (const SweepSeries* s = find(AlignClass::SemiGlobal, 16)) {
    const bool short_scan = s->points.front().ratio() > 1.0;
    std::printf("  SG @16 lanes: Scan faster at qlen=%zu (ratio %.2f): %s\n",
                s->points.front().qlen, s->points.front().ratio(),
                short_scan ? "yes" : "NO");
    ok &= short_scan;
  }
  // SW: Scan wins short queries where the horizontal-scan cost is amortized
  // best relative to this host's cheap branches (4 lanes here). Where the
  // crossover sits at 8/16 lanes is microarchitecture-dependent — the
  // paper's strongest SW wins were on the in-order KNC, where Striped's
  // branchy corrective loop is far more expensive than on this host; see
  // EXPERIMENTS.md for the discussion and bench_table2 for the
  // architecture-neutral op-count version of the claim.
  if (const SweepSeries* s = find(AlignClass::Local, 4)) {
    const bool short_scan = s->points.front().ratio() > 1.0;
    std::printf("  SW @4 lanes: Scan faster at qlen=%zu (ratio %.2f): %s\n",
                s->points.front().qlen, s->points.front().ratio(),
                short_scan ? "yes" : "NO");
    ok &= short_scan;
  }
  if (const SweepSeries* s = find(AlignClass::Local, 16)) {
    std::printf("  SW @16 lanes (host-dependent, informational): ratio %.2f short, "
                "%.2f long\n",
                s->points.front().ratio(), s->points.back().ratio());
  }
  return ok ? 0 : 1;
}
