// Ablation benches for the design choices DESIGN.md calls out:
//
//  1. Horizontal scan strategy: the paper implements the cross-lane scan as
//     p-1 linear shift/max steps and argues horizontal SSE ops are too slow;
//     Blelloch-style doubling needs only lg(p) steps. This bench times both
//     at every native width and prints the step counts, quantifying when (if
//     ever) the O(lg p) form starts to pay.
//
//  2. The "next generation of SIMD widths" extrapolation (§VI-C, §VIII): at
//     32 lanes (AVX-512BW, 16-bit elements) the paper predicts Scan fully
//     surpasses Striped. Measured here directly, plus emulated op counts at
//     32 and 64 lanes.
#include "common.hpp"

using namespace valign;
using namespace valign::bench;
namespace ins = valign::instrument;

namespace {

template <class V>
void time_hscan_kinds(const char* name, const Dataset& ds) {
  ScanAligner<AlignClass::Local, V> lin(ScoreMatrix::blosum62(), {11, 1},
                                        HscanKind::Linear);
  ScanAligner<AlignClass::Local, V> log(ScoreMatrix::blosum62(), {11, 1},
                                        HscanKind::Log);
  Sink s1, s2;
  const double t_lin = run_all_to_all(lin, ds, nullptr, &s1);
  const double t_log = run_all_to_all(log, ds, nullptr, &s2);
  const int p = V::lanes;
  int lg = 0;
  while ((1 << lg) < p) ++lg;
  std::printf("%-22s %5d %10d %8d %10.3f %10.3f %8.2f%%  %s\n", name, p, p - 1, lg,
              t_lin, t_log, 100.0 * (t_lin - t_log) / t_lin,
              s1.sum == s2.sum ? "scores agree" : "SCORES DIFFER");
}

struct OpRow {
  std::uint64_t striped = 0;
  std::uint64_t scan_linear = 0;
  std::uint64_t scan_log = 0;
};

template <int Lanes>
OpRow op_counts_at(const Dataset& ds) {
  using CV = ins::CountingVec<simd::VEmul<std::int32_t, Lanes>>;
  StripedAligner<AlignClass::Local, CV> striped(ScoreMatrix::blosum62(), {11, 1});
  ScanAligner<AlignClass::Local, CV> scan_lin(ScoreMatrix::blosum62(), {11, 1},
                                              HscanKind::Linear);
  ScanAligner<AlignClass::Local, CV> scan_log(ScoreMatrix::blosum62(), {11, 1},
                                              HscanKind::Log);
  Sink sink;
  OpRow row;
  ins::reset();
  run_all_to_all(striped, ds, nullptr, &sink);
  row.striped = ins::snapshot().instruction_refs();
  ins::reset();
  run_all_to_all(scan_lin, ds, nullptr, &sink);
  row.scan_linear = ins::snapshot().instruction_refs();
  ins::reset();
  run_all_to_all(scan_log, ds, nullptr, &sink);
  row.scan_log = ins::snapshot().instruction_refs();
  return row;
}

}  // namespace

int main() {
  banner("Ablation", "horizontal-scan strategy and the widening extrapolation");

  const Dataset ds = workload::bacteria_2k(1, scaled(32));
  std::printf("dataset: %zu sequences, mean length %.0f, all-to-all SW\n\n", ds.size(),
              ds.mean_length());

  std::printf("--- 1. linear (p-1 steps) vs doubling (lg p steps) horizontal scan ---\n");
  std::printf("%-22s %5s %10s %8s %10s %10s %9s\n", "backend", "p", "lin-steps",
              "lg-steps", "t-linear", "t-log", "log-gain");
#if defined(__SSE4_1__)
  if (simd::isa_available(Isa::SSE41)) {
    time_hscan_kinds<simd::V128<std::int32_t>>("sse4.1 i32 (4)", ds);
    time_hscan_kinds<simd::V128<std::int16_t>>("sse4.1 i16 (8)", ds);
  }
#endif
#if defined(__AVX2__)
  if (simd::isa_available(Isa::AVX2)) {
    time_hscan_kinds<simd::V256<std::int32_t>>("avx2 i32 (8)", ds);
    time_hscan_kinds<simd::V256<std::int16_t>>("avx2 i16 (16)", ds);
  }
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
  if (simd::isa_available(Isa::AVX512)) {
    time_hscan_kinds<simd::V512<std::int32_t>>("avx512 i32 (16)", ds);
    time_hscan_kinds<simd::V512<std::int16_t>>("avx512 i16 (32)", ds);
  }
#endif

  std::printf("\n--- 2. the widening extrapolation: 32 lanes on real hardware ---\n");
#if defined(__AVX512F__) && defined(__AVX512BW__)
  if (simd::isa_available(Isa::AVX512)) {
    using V32 = simd::V512<std::int16_t>;  // 32 lanes of 16-bit
    StripedAligner<AlignClass::Local, V32> striped(ScoreMatrix::blosum62(), {11, 1});
    ScanAligner<AlignClass::Local, V32> scan_lin(ScoreMatrix::blosum62(), {11, 1},
                                                 HscanKind::Linear);
    ScanAligner<AlignClass::Local, V32> scan_log(ScoreMatrix::blosum62(), {11, 1},
                                                 HscanKind::Log);
    Sink s1, s2, s3;
    const double t_striped = run_all_to_all(striped, ds, nullptr, &s1);
    const double t_lin = run_all_to_all(scan_lin, ds, nullptr, &s2);
    const double t_log = run_all_to_all(scan_log, ds, nullptr, &s3);
    std::printf("SW @32 lanes (16-bit AVX-512BW): striped %.3fs, scan(linear) %.3fs,"
                " scan(log) %.3fs\n"
                " -> scan/striped speedup: linear %.2fx, log %.2fx %s\n",
                t_striped, t_lin, t_log, t_striped / t_lin, t_striped / t_log,
                (s1.sum == s2.sum && s2.sum == s3.sum) ? "(scores agree)"
                                                       : "(SCORES DIFFER)");
  }
#else
  std::printf("AVX-512BW unavailable; skipping the hardware 32-lane point.\n");
#endif

  std::printf("\n--- 3. op-count scaling to emulated 32/64 lanes ---\n");
  std::printf("%6s %14s %14s %14s %12s %12s\n", "lanes", "striped-ops",
              "scan-lin-ops", "scan-log-ops", "lin/striped", "log/striped");
  const Dataset small = workload::bacteria_2k(1, scaled(12));
  const OpRow rows[] = {op_counts_at<4>(small), op_counts_at<8>(small),
                        op_counts_at<16>(small), op_counts_at<32>(small),
                        op_counts_at<64>(small)};
  const int lane_axis[] = {4, 8, 16, 32, 64};
  for (int i = 0; i < 5; ++i) {
    std::printf("%6d %14.3e %14.3e %14.3e %12.2f %12.2f\n", lane_axis[i],
                static_cast<double>(rows[i].striped),
                static_cast<double>(rows[i].scan_linear),
                static_cast<double>(rows[i].scan_log),
                static_cast<double>(rows[i].scan_linear) /
                    static_cast<double>(rows[i].striped),
                static_cast<double>(rows[i].scan_log) /
                    static_cast<double>(rows[i].striped));
  }
  std::printf(
      "\nfindings: the linear horizontal scan's O(p) term eventually reverses\n"
      "Scan's advantage (visible at 32-64 lanes on ~300-residue queries) —\n"
      "exactly the O(2n/p + p) bound of §IV. The doubling scan restores the\n"
      "trend, strengthening the paper's conclusion for future SIMD widths.\n");
  return 0;
}
