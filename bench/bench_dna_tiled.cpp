// Future-work reproduction (§VIII): "Since the Scan approach is favorable to
// smaller query lengths, it would be amenable to partitioning the SW problem
// into smaller tiles... one strategy for the efficient alignment of much
// longer sequences, i.e., DNA."
//
// This bench aligns DNA-scale sequences with the plain Scan/Striped engines
// (whose striped working set outgrows the cache as the query grows) and with
// TiledScanAligner at several tile sizes (whose working set stays
// cache-resident). Expected shape: tiled matches the untiled score exactly
// and recovers throughput as soon as the tile fits in L2.
#include "common.hpp"
#include "harness.hpp"

using namespace valign;
using namespace valign::bench;

int main(int argc, char** argv) {
  banner("DNA tiling", "the paper's §VIII tiling proposal on long sequences");

#if !defined(__AVX512F__) || !defined(__AVX512BW__)
  std::printf("AVX-512 not compiled in; using the widest available backend may "
              "change absolute numbers.\n");
#endif

  const ScoreMatrix dna = ScoreMatrix::dna(2, 3);
  const GapPenalty gap{10, 1};

  const std::size_t qlen = scaled(150000);
  const std::size_t dlen = scaled(40000);
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<int> base(0, 3);
  std::vector<std::uint8_t> q(qlen), d(dlen);
  for (auto& c : q) c = static_cast<std::uint8_t>(base(rng));
  for (auto& c : d) c = static_cast<std::uint8_t>(base(rng));
  // Plant a homologous 5 kb region so the alignment is not vacuous.
  const std::size_t core = std::min<std::size_t>(5000, dlen / 2);
  std::copy(d.begin() + 100, d.begin() + 100 + static_cast<std::ptrdiff_t>(core),
            q.begin() + static_cast<std::ptrdiff_t>(qlen / 2));

  std::printf("query %zu bp x database %zu bp = %.2f Gcells, SW, dna(+2/-3, 10/1)\n\n",
              qlen, dlen, static_cast<double>(qlen) * static_cast<double>(dlen) / 1e9);

  struct Row {
    std::string name;
    double seconds;
    std::int32_t score;
    double mib;  // striped working set
  };
  std::vector<Row> rows;

  // Every engine goes through the unified harness so the timings land in the
  // bench report (written when a path is given on the command line).
  Harness harness("bench_dna_tiled");
  const std::uint64_t cells =
      static_cast<std::uint64_t>(qlen) * static_cast<std::uint64_t>(dlen);
  const auto run = [&]<class Engine>(std::string name, Engine& eng, double mib) {
    eng.set_query(q);
    Sink sink;
    const double t = harness.scenario(name, 1, [&] {
      sink = Sink{};
      sink(eng.align(d));
      return cells;
    });
    rows.push_back(Row{std::move(name), t, static_cast<std::int32_t>(sink.sum), mib});
  };

  const bool ran = with_native_i32(16, [&]<class V>() {
    const double full_ws =
        4.0 * static_cast<double>(qlen) * sizeof(std::int32_t) / (1024 * 1024);
    {
      StripedAligner<AlignClass::Local, V> eng(dna, gap);
      run(std::string("striped (untiled)"), eng, 0.75 * full_ws);
    }
    {
      ScanAligner<AlignClass::Local, V> eng(dna, gap);
      run(std::string("scan (untiled)"), eng, full_ws);
    }
    for (const std::size_t tile : {std::size_t{4096}, std::size_t{16384},
                                   std::size_t{65536}}) {
      TiledScanAligner<AlignClass::Local, V> eng(dna, gap, tile);
      const double ws =
          4.0 * static_cast<double>(tile) * sizeof(std::int32_t) / (1024 * 1024);
      run("tiled scan (" + std::to_string(tile) + " rows)", eng, ws);
    }
  });
  if (!ran) {
    // Fall back to whatever native width exists.
    with_native_i32(8, [&]<class V>() {
      ScanAligner<AlignClass::Local, V> eng(dna, gap);
      run(std::string("scan (untiled, 8 lanes)"), eng, 0.0);
    });
  }

  {
    // The batched runtime's dispatch path on the same problem: the width
    // ladder and engine cache choose ISA/width/approach. Its score must match
    // the hand-picked engines above — this is the end-to-end configuration
    // apps::search runs with.
    Options opts;
    opts.klass = AlignClass::Local;
    opts.matrix = &dna;
    opts.gap = gap;
    Aligner eng(opts);
    run(std::string("runtime Aligner (auto)"), eng, 0.0);
  }

  std::printf("%-26s %10s %10s %12s %9s\n", "engine", "time (s)", "GCUPS",
              "working-set", "score");
  for (const Row& r : rows) {
    std::printf("%-26s %10.3f %10.2f %9.2f MiB %9d\n", r.name.c_str(), r.seconds,
                static_cast<double>(cells) / r.seconds / 1e9, r.mib, r.score);
  }

  bool scores_agree = true;
  for (const Row& r : rows) scores_agree &= (r.score == rows[0].score);
  std::printf("\nscores %s across engines\n",
              scores_agree ? "AGREE" : "DISAGREE (BUG!)");

  double best_tiled = 1e30, untiled_scan = 0;
  for (const Row& r : rows) {
    if (r.name.find("tiled scan") == 0) best_tiled = std::min(best_tiled, r.seconds);
    if (r.name.find("scan (untiled") == 0) untiled_scan = r.seconds;
  }
  if (untiled_scan > 0 && best_tiled < 1e29) {
    std::printf("tiling speedup over untiled scan: %.2fx\n",
                untiled_scan / best_tiled);
  }
  if (argc > 1) harness.write(argv[1]);
  return scores_agree ? 0 : 1;
}
