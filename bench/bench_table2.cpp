// Table II reproduction: instruction references (I-refs) and data references
// (D-refs) of all-to-all alignment on the bacteria-2K dataset, for
// NW/SG/SW x {striped, scan} x {4, 8, 16} lanes.
//
// The paper measured cachegrind I-refs/D-refs on Haswell. We have no
// cachegrind here, so the same quantities are counted at the vector
// abstraction boundary with instrument::CountingVec (DESIGN.md §3): I-refs =
// every vector + scalar operation the kernel issues, D-refs = every vector +
// scalar memory access. Expected shape (paper §VI-A): counts fall as lanes
// grow; Scan starts above Striped at 4 lanes but falls faster and has caught
// up or passed it by 16 lanes — most dramatically for NW.
#include "common.hpp"

using namespace valign;
using namespace valign::bench;
namespace ins = valign::instrument;

namespace {

template <AlignClass C, class V, template <AlignClass, class> class Engine>
ins::OpCounts census(const Dataset& ds) {
  Engine<C, V> eng(ScoreMatrix::blosum62(), GapPenalty{11, 1});
  ins::reset();
  Sink sink;
  run_all_to_all(eng, ds, nullptr, &sink);
  return ins::snapshot();
}

struct Row {
  const char* klass;
  const char* method;
  int lanes;
  std::uint64_t irefs;
  std::uint64_t drefs;
};

template <AlignClass C>
void run_class(const Dataset& ds, const char* name, std::vector<Row>& rows) {
  for (const int lanes : {4, 8, 16}) {
    with_counting_i32(lanes, [&]<class V>() {
      const auto striped = census<C, V, StripedAligner>(ds);
      rows.push_back({name, "striped", lanes, striped.instruction_refs(),
                      striped.data_refs()});
    });
  }
  for (const int lanes : {4, 8, 16}) {
    with_counting_i32(lanes, [&]<class V>() {
      const auto scan = census<C, V, ScanAligner>(ds);
      rows.push_back({name, "scan", lanes, scan.instruction_refs(), scan.data_refs()});
    });
  }
}

}  // namespace

int main() {
  banner("Table II", "op-reference census of all-to-all alignment (bacteria-2K-like)");

  // The full 2000-sequence all-to-all is ~4M alignments; an op census at the
  // abstraction boundary is ~50x slower than the raw kernels, so default to a
  // subsample whose *relative* counts carry the same signal.
  const Dataset ds = workload::bacteria_2k(1, scaled(28));
  std::printf("dataset: %zu sequences, mean length %.0f, all-to-all\n\n", ds.size(),
              ds.mean_length());

  std::vector<Row> rows;
  run_class<AlignClass::Global>(ds, "NW", rows);
  run_class<AlignClass::SemiGlobal>(ds, "SG", rows);
  run_class<AlignClass::Local>(ds, "SW", rows);

  std::printf("%-4s %-8s %6s %12s %12s\n", "DP", "Method", "Lanes", "I-refs", "D-refs");
  for (const Row& r : rows) {
    std::printf("%-4s %-8s %6d %12.3e %12.3e\n", r.klass, r.method, r.lanes,
                static_cast<double>(r.irefs), static_cast<double>(r.drefs));
  }

  // Shape verdicts (what Table II is cited for in §VI-A).
  auto find = [&](const char* k, const char* m, int l) -> const Row& {
    for (const Row& r : rows) {
      if (std::string(r.klass) == k && std::string(r.method) == m && r.lanes == l)
        return r;
    }
    throw Error("row missing");
  };
  std::printf("\nshape checks:\n");
  bool ok = true;
  for (const char* k : {"NW", "SG", "SW"}) {
    const bool mono_striped = find(k, "striped", 4).irefs > find(k, "striped", 8).irefs &&
                              find(k, "striped", 8).irefs > find(k, "striped", 16).irefs;
    const bool mono_scan = find(k, "scan", 4).irefs > find(k, "scan", 8).irefs &&
                           find(k, "scan", 8).irefs > find(k, "scan", 16).irefs;
    const double r4 = static_cast<double>(find(k, "scan", 4).irefs) /
                      static_cast<double>(find(k, "striped", 4).irefs);
    const double r16 = static_cast<double>(find(k, "scan", 16).irefs) /
                       static_cast<double>(find(k, "striped", 16).irefs);
    const bool faster_drop = r16 < r4;
    std::printf("  %s: refs fall with lanes (striped %s, scan %s); "
                "scan/striped ratio %.2f @4 -> %.2f @16 (%s)\n",
                k, mono_striped ? "yes" : "NO", mono_scan ? "yes" : "NO", r4, r16,
                faster_drop ? "scan scales better" : "UNEXPECTED");
    ok &= mono_striped && mono_scan && faster_drop;
  }
  const bool nw_scan_wins = find("NW", "scan", 16).irefs < find("NW", "striped", 16).irefs;
  std::printf("  NW @16 lanes: scan %s striped (paper: scan significantly better)\n",
              nw_scan_wins ? "<" : ">=");
  ok &= nw_scan_wins;
  return ok ? 0 : 1;
}
