// Unified bench harness: names a scenario, times it N times, reads hardware
// counters around each repetition when the host allows it, and accumulates
// everything into a schema-versioned obs::BenchReport (BENCH_<n>.json).
//
// Every bench binary that wants to participate in the perf-regression
// observatory (`valign bench-diff`, CI's bench job) funnels its timed regions
// through Harness::scenario() instead of hand-rolled time_once() calls. The
// scenario callback returns the DP-cell count of one repetition (0 for
// workloads that are not cell-based) so the report can carry GCUPS.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "valign/obs/bench_report.hpp"

namespace valign::bench {

class Harness {
 public:
  /// `command` names the producing binary ("bench_runtime", ...). Provenance
  /// (host, CPU, ISA, git describe, compiler, VALIGN_BENCH_SCALE) is captured
  /// here; the hardware-counter probe runs once and its reason is recorded
  /// when counters are unavailable.
  explicit Harness(std::string command);

  /// Runs `fn` `reps` times (>= 1), wall-clocking each repetition and reading
  /// the calling thread's hardware counters around it. Records a scenario with
  /// the min/median/max seconds spread, the median-rep GCUPS, and the
  /// median-rep counters. Returns the median seconds (handy for verdicts).
  double scenario(const std::string& name, int reps,
                  const std::function<std::uint64_t()>& fn);

  [[nodiscard]] const obs::BenchReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] const obs::BenchScenario* find(const std::string& name) const {
    return report_.find(name);
  }

  /// Writes the report as JSON and prints the path on stdout.
  void write(const std::string& path) const;

 private:
  obs::BenchReport report_;
};

}  // namespace valign::bench
