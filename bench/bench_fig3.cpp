// Fig. 3 reproduction: instruction-mix breakdown of the homology detection
// problem at 16 lanes for NW/SG/SW x {Striped, Scan}.
//
// The paper captured the mix with Intel Pin; here the same categories are
// tallied by instrument::CountingVec (DESIGN.md §3). Expected shape (§VI-B):
//   * Scan's per-category counts barely vary across NW/SG/SW;
//   * NW-Striped executes the most instructions of any configuration;
//   * Striped does more scalar ops; Scan does more vector ops overall;
//   * Scan does more vector memory + swizzle ops;
//   * Striped is the only one creating vector masks.
#include "common.hpp"

using namespace valign;
using namespace valign::bench;
namespace ins = valign::instrument;

namespace {

using CV = ins::CountingVec<simd::VEmul<std::int32_t, 16>>;

template <AlignClass C, template <AlignClass, class> class Engine>
ins::OpCounts census(const Dataset& ds) {
  Engine<C, CV> eng(ScoreMatrix::blosum62(), GapPenalty{11, 1});
  ins::reset();
  Sink sink;
  run_all_to_all(eng, ds, nullptr, &sink);
  return ins::snapshot();
}

}  // namespace

int main() {
  banner("Fig. 3", "instruction mix of homology detection at 16 lanes");

  const Dataset ds = workload::bacteria_2k(1, scaled(24));
  std::printf("dataset: %zu sequences, mean length %.0f, all-to-all\n\n", ds.size(),
              ds.mean_length());

  struct Config {
    const char* name;
    ins::OpCounts counts;
  };
  std::vector<Config> cfgs;
  cfgs.push_back({"NW-Striped", census<AlignClass::Global, StripedAligner>(ds)});
  cfgs.push_back({"NW-Scan", census<AlignClass::Global, ScanAligner>(ds)});
  cfgs.push_back({"SG-Striped", census<AlignClass::SemiGlobal, StripedAligner>(ds)});
  cfgs.push_back({"SG-Scan", census<AlignClass::SemiGlobal, ScanAligner>(ds)});
  cfgs.push_back({"SW-Striped", census<AlignClass::Local, StripedAligner>(ds)});
  cfgs.push_back({"SW-Scan", census<AlignClass::Local, ScanAligner>(ds)});

  std::printf("%-14s", "category");
  for (const Config& c : cfgs) std::printf(" %11s", c.name);
  std::printf("\n");
  for (int i = 0; i < ins::kOpCategoryCount; ++i) {
    const auto cat = static_cast<ins::OpCategory>(i);
    std::printf("%-14s", ins::to_string(cat));
    for (const Config& c : cfgs) {
      std::printf(" %11.3e", static_cast<double>(c.counts[cat]));
    }
    std::printf("\n");
  }
  std::printf("%-14s", "TOTAL");
  for (const Config& c : cfgs) {
    std::printf(" %11.3e", static_cast<double>(c.counts.instruction_refs()));
  }
  std::printf("\n\n");

  auto get = [&](const char* n) -> const ins::OpCounts& {
    for (const Config& c : cfgs) {
      if (std::string(c.name) == n) return c.counts;
    }
    throw Error("missing config");
  };

  bool ok = true;
  // NW-Striped tops every configuration.
  const std::uint64_t nws = get("NW-Striped").instruction_refs();
  for (const Config& c : cfgs) {
    if (std::string(c.name) != "NW-Striped") ok &= nws > c.counts.instruction_refs();
  }
  std::printf("shape checks:\n  NW-Striped executes the most instructions: %s\n",
              ok ? "yes" : "NO");

  // Scan's counts vary little across classes.
  const double scan_min = static_cast<double>(
      std::min({get("NW-Scan").vector_total(), get("SG-Scan").vector_total(),
                get("SW-Scan").vector_total()}));
  const double scan_max = static_cast<double>(
      std::max({get("NW-Scan").vector_total(), get("SG-Scan").vector_total(),
                get("SW-Scan").vector_total()}));
  const bool stable = scan_min / scan_max > 0.85;
  std::printf("  Scan vector ops vary <15%% across classes: %s\n",
              stable ? "yes" : "NO");
  ok &= stable;

  // Mask creation: Striped only.
  bool masks = true;
  for (const char* s : {"NW-Striped", "SG-Striped", "SW-Striped"}) {
    masks &= get(s)[ins::OpCategory::VecMask] > 0;
  }
  for (const char* s : {"NW-Scan", "SG-Scan", "SW-Scan"}) {
    masks &= get(s)[ins::OpCategory::VecMask] == 0;
  }
  std::printf("  only Striped creates vector masks: %s\n", masks ? "yes" : "NO");
  ok &= masks;

  // Scan uses more vector memory and swizzle ops per class.
  bool memswiz = true;
  for (const char* k : {"NW", "SG", "SW"}) {
    const auto& striped = get((std::string(k) + "-Striped").c_str());
    const auto& scan = get((std::string(k) + "-Scan").c_str());
    memswiz &= scan[ins::OpCategory::VecSwizzle] > striped[ins::OpCategory::VecSwizzle];
  }
  std::printf("  Scan performs more vector swizzle ops: %s\n", memswiz ? "yes" : "NO");
  ok &= memswiz;
  return ok ? 0 : 1;
}
