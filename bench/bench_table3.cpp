// Table III reproduction: the 16-lane "Xeon Phi" counter profile of the
// homology detection problem for NW/SG/SW x {Scan, Striped}.
//
// The paper read VTune hardware counters on a KNC card. Neither the card nor
// VTune exist here, so each VTune metric is mapped to its architectural
// counterpart computed from the op census (DESIGN.md §3):
//
//   Instructions-Retired           -> total ops issued by the kernel
//   Vectorization-Intensity        -> element-ops per vector instruction
//                                     (lanes * vector fraction of all ops)
//   L1-Compute-to-Data-Access      -> (vec arith+compare element ops) / D-refs
//   L1-Hit-Ratio                   -> working-set analysis vs. a 32 KiB L1
//
// CPI and absolute miss counts are microarchitectural and are not modelled.
// Expected shape: NW-Striped retires the most ops of the six configurations
// (paper: 9.1e11 vs 6.0-6.5e11 for all others); Scan's vectorization
// intensity is slightly higher than Striped's; every working set fits L1.
#include "common.hpp"

using namespace valign;
using namespace valign::bench;
namespace ins = valign::instrument;

namespace {

constexpr int kLanes = 16;
using CV = ins::CountingVec<simd::VEmul<std::int32_t, kLanes>>;

struct Profile {
  std::uint64_t retired = 0;
  double vec_intensity = 0.0;
  double compute_to_data = 0.0;
  double l1_fit_fraction = 0.0;  // alignments whose working set fits 32 KiB
};

template <AlignClass C, template <AlignClass, class> class Engine>
Profile profile(const Dataset& ds) {
  Engine<C, CV> eng(ScoreMatrix::blosum62(), GapPenalty{11, 1});
  ins::reset();
  Sink sink;
  run_all_to_all(eng, ds, nullptr, &sink);
  const ins::OpCounts c = ins::snapshot();

  Profile p;
  p.retired = c.instruction_refs();
  // Every vector op processes `kLanes` elements; scalar ops process one.
  const double vec_ops = static_cast<double>(c.vector_total());
  const double all_ops = static_cast<double>(c.instruction_refs());
  p.vec_intensity = kLanes * vec_ops / all_ops;
  const double compute_elems =
      static_cast<double>(c[ins::OpCategory::VecArith] +
                          c[ins::OpCategory::VecCompare]) *
      kLanes;
  p.compute_to_data = compute_elems / static_cast<double>(c.data_refs());

  // Working set per alignment: striped H/E(/Ht) arrays + one profile row set.
  std::size_t fit = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const std::size_t L = (ds[i].size() + kLanes - 1) / kLanes;
    const std::size_t arrays = (Engine<C, CV>::kApproach == Approach::Scan ? 4u : 3u);
    const std::size_t bytes = arrays * L * kLanes * sizeof(std::int32_t);
    if (bytes <= 32 * 1024) ++fit;
  }
  p.l1_fit_fraction = static_cast<double>(fit) / static_cast<double>(ds.size());
  return p;
}

}  // namespace

int main() {
  banner("Table III", "16-lane counter profile of homology detection (Phi stand-in)");

  const Dataset ds = workload::bacteria_2k(1, scaled(24));
  std::printf("dataset: %zu sequences, mean length %.0f, all-to-all, %d lanes\n\n",
              ds.size(), ds.mean_length(), kLanes);

  struct Named {
    const char* name;
    Profile p;
  };
  std::vector<Named> cols;
  cols.push_back({"NW-Scan", profile<AlignClass::Global, ScanAligner>(ds)});
  cols.push_back({"NW-Striped", profile<AlignClass::Global, StripedAligner>(ds)});
  cols.push_back({"SG-Scan", profile<AlignClass::SemiGlobal, ScanAligner>(ds)});
  cols.push_back({"SG-Striped", profile<AlignClass::SemiGlobal, StripedAligner>(ds)});
  cols.push_back({"SW-Scan", profile<AlignClass::Local, ScanAligner>(ds)});
  cols.push_back({"SW-Striped", profile<AlignClass::Local, StripedAligner>(ds)});

  std::printf("%-34s", "metric");
  for (const Named& n : cols) std::printf(" %11s", n.name);
  std::printf("\n");
  std::printf("%-34s", "Ops-Retired (proxy)");
  for (const Named& n : cols) std::printf(" %11.3e", static_cast<double>(n.p.retired));
  std::printf("\n");
  std::printf("%-34s", "Vectorization-Intensity (proxy)");
  for (const Named& n : cols) std::printf(" %11.2f", n.p.vec_intensity);
  std::printf("\n");
  std::printf("%-34s", "Compute-to-Data-Access (proxy)");
  for (const Named& n : cols) std::printf(" %11.2f", n.p.compute_to_data);
  std::printf("\n");
  std::printf("%-34s", "Working-set-fits-L1 fraction");
  for (const Named& n : cols) std::printf(" %11.2f", n.p.l1_fit_fraction);
  std::printf("\n\n");

  bool ok = true;
  // Paper: NW-Striped retires the most instructions of all six.
  for (const Named& n : cols) {
    if (std::string(n.name) != "NW-Striped") ok &= cols[1].p.retired > n.p.retired;
  }
  std::printf("shape checks:\n  NW-Striped retires the most ops: %s\n",
              ok ? "yes" : "NO");
  // Paper: vectorization intensity ~14-15 for Scan vs ~13.8-14.1 for Striped.
  // Our proxy has no masked-vector-op term (a KNC artifact that penalized
  // Striped's VPU element activity), so require strict ordering only where
  // the corrective loop's scalar work dominates (NW, SG) and parity for SW.
  bool vi = true;
  vi &= cols[0].p.vec_intensity > cols[1].p.vec_intensity;          // NW
  vi &= cols[2].p.vec_intensity > cols[3].p.vec_intensity;          // SG
  vi &= cols[4].p.vec_intensity > 0.93 * cols[5].p.vec_intensity;   // SW ~parity
  std::printf("  Scan vectorization intensity >= Striped (NW, SG; ~parity SW): %s\n",
              vi ? "yes" : "NO");
  // Paper: L1 hit ratios ~0.99 (everything cache-resident).
  bool l1 = true;
  for (const Named& n : cols) l1 &= n.p.l1_fit_fraction > 0.95;
  std::printf("  working sets are cache-resident: %s\n", l1 ? "yes" : "NO");
  return (ok && vi && l1) ? 0 : 1;
}
