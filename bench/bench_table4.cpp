// Table IV reproduction: the decision table of measured crossover query
// lengths between Striped and Scan for each alignment class and lane count,
// derived from the Fig. 4 sweep on this host — printed side by side with the
// paper's published crossovers and with the prescribe() values the library
// ships (which encode the paper's table).
//
// Expected shape: NW crossovers roughly flat across lane counts; SG/SW
// crossovers that move right as lanes increase; Striped above the crossover
// for SG/SW, Scan above it for NW.
#include "fig4_sweep.hpp"

#include "valign/core/prescribe.hpp"

using namespace valign;
using namespace valign::bench;

int main() {
  banner("Table IV", "measured Striped/Scan crossover lengths per class and lanes");

  const Dataset db = workload::uniprot_like(scaled(100), 2);
  std::printf("database: %zu sequences, mean length %.0f\n\n", db.size(),
              db.mean_length());

  const std::vector<SweepSeries> series = run_fig4_sweep(db);

  std::printf("%-4s %-16s %8s %8s %8s   %s\n", "", "", "4-lane", "8-lane", "16-lane",
              "short-query / long-query winner");
  for (const AlignClass klass :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    double measured[3] = {0, 0, 0};
    int idx = 0;
    for (const SweepSeries& s : series) {
      if (s.klass == klass && idx < 3) measured[idx++] = measured_crossover(s);
    }
    const bool scan_short = (klass != AlignClass::Global);
    std::printf("%-4s %-16s %8.0f %8.0f %8.0f   %s / %s\n", to_string(klass),
                "measured", measured[0], measured[1], measured[2],
                scan_short ? "Scan" : "Striped", scan_short ? "Striped" : "Scan");
    std::printf("%-4s %-16s %8d %8d %8d\n", "", "paper (Table IV)",
                prescribe_crossover(klass, 4), prescribe_crossover(klass, 8),
                prescribe_crossover(klass, 16));
  }

  std::printf("\nnotes:\n"
              "  * a measured value of 0 means no crossing inside the sweep grid\n"
              "    (one engine dominated at every length on this host/ISA).\n"
              "  * absolute crossovers are microarchitecture-dependent; the paper's\n"
              "    claim is the *direction* (who wins short vs long queries) and the\n"
              "    trend (SG/SW crossovers grow with lanes, NW stays flat).\n");

  // Verdict: direction of the win at the sweep extremes matches the paper
  // where the effect is architecture-robust (see EXPERIMENTS.md for the
  // host-dependent SW 8/16-lane discussion).
  bool ok = true;
  for (const SweepSeries& s : series) {
    const double first = s.points.front().ratio();
    const double last = s.points.back().ratio();
    if (s.klass == AlignClass::Global && s.lanes >= 8) {
      // Paper: Scan wins long NW queries.
      ok &= last > 1.0;
    }
    if (s.klass == AlignClass::SemiGlobal && s.lanes == 16) {
      // Paper: Scan wins short SG queries; crossover grows with lanes.
      ok &= first > 1.0;
    }
    if (s.klass == AlignClass::Local && s.lanes == 4) {
      ok &= first > 1.0;
    }
  }
  std::printf("\ndirectional shape: %s\n", ok ? "consistent with Table IV" : "MISMATCH");
  return ok ? 0 : 1;
}
