// Shared query-length sweep behind the Fig. 4 and Table IV reproductions:
// database search of fixed-length queries against a UniProt-like database,
// timed for Striped and Scan at 4/8/16 lanes (32-bit elements on the native
// SSE4.1/AVX2/AVX-512 backends — the same lanes-per-element mapping the paper
// used across SSE4.1/AVX2/KNC).
#pragma once

#include "common.hpp"

namespace valign::bench {

struct SweepPoint {
  std::size_t qlen = 0;
  double t_striped = 0.0;
  double t_scan = 0.0;
  std::uint64_t corrections = 0;  ///< total striped corrective epochs
  /// Relative performance of Scan over Striped (Fig. 4a-c y-axis): > 1 means
  /// Scan is faster.
  [[nodiscard]] double ratio() const { return t_striped / t_scan; }
};

struct SweepSeries {
  AlignClass klass = AlignClass::Local;
  int lanes = 0;
  std::vector<SweepPoint> points;
};

inline const std::vector<std::size_t>& sweep_lengths() {
  static const std::vector<std::size_t> lens = {
      10, 20, 30, 45, 60, 77, 95, 115, 135, 152, 175,
      200, 230, 260, 300, 360, 430, 520, 640, 800, 1000};
  return lens;
}

/// Repeat a timed pass until at least `min_seconds` accumulate; returns
/// seconds per pass.
template <class F>
double time_adaptive(F&& f, double min_seconds = 0.03) {
  int reps = 0;
  double total = 0.0;
  do {
    total += time_once(f);
    ++reps;
  } while (total < min_seconds && reps < 1000);
  return total / reps;
}

/// Runs the full sweep for one alignment class across all native lane counts.
template <AlignClass C>
std::vector<SweepSeries> sweep_class(const Dataset& db, std::uint64_t seed) {
  std::vector<SweepSeries> out;
  for (const int lanes : {4, 8, 16}) {
    SweepSeries series;
    series.klass = C;
    series.lanes = lanes;
    const bool ran = with_native_i32(lanes, [&]<class V>() {
      StripedAligner<C, V> striped(ScoreMatrix::blosum62(), GapPenalty{11, 1});
      ScanAligner<C, V> scan(ScoreMatrix::blosum62(), GapPenalty{11, 1});
      std::mt19937_64 rng(seed);
      for (const std::size_t qlen : sweep_lengths()) {
        std::vector<std::uint8_t> q(qlen);
        for (auto& c : q) c = workload::ResidueModel::protein().sample(rng);

        SweepPoint pt;
        pt.qlen = qlen;
        striped.set_query(q);
        scan.set_query(q);
        Sink sink;
        pt.t_striped = time_adaptive([&] {
          for (const Sequence& s : db) sink(striped.align(s.codes()));
        });
        pt.t_scan = time_adaptive([&] {
          for (const Sequence& s : db) sink(scan.align(s.codes()));
        });
        AlignStats stats;
        for (const Sequence& s : db) stats += striped.align(s.codes()).stats;
        pt.corrections = stats.corrective_epochs;
        series.points.push_back(pt);
      }
    });
    if (ran) out.push_back(std::move(series));
  }
  return out;
}

inline std::vector<SweepSeries> run_fig4_sweep(const Dataset& db) {
  std::vector<SweepSeries> all;
  for (auto& s : sweep_class<AlignClass::Global>(db, 11)) all.push_back(std::move(s));
  for (auto& s : sweep_class<AlignClass::SemiGlobal>(db, 22)) all.push_back(std::move(s));
  for (auto& s : sweep_class<AlignClass::Local>(db, 33)) all.push_back(std::move(s));
  return all;
}

/// Measured crossover: the query length where the Scan/Striped ratio crosses
/// 1.0 in the direction the paper reports for this class (NW: Striped wins
/// short queries; SG/SW: Scan wins short queries). Linear interpolation
/// between grid points; returns 0 when no crossing is observed.
inline double measured_crossover(const SweepSeries& s) {
  const bool scan_short = (s.klass != AlignClass::Global);
  for (std::size_t i = 1; i < s.points.size(); ++i) {
    const double r0 = s.points[i - 1].ratio();
    const double r1 = s.points[i].ratio();
    const bool crossing = scan_short ? (r0 >= 1.0 && r1 < 1.0)
                                     : (r0 <= 1.0 && r1 > 1.0);
    if (crossing && r1 != r0) {
      const double f = (1.0 - r0) / (r1 - r0);
      return static_cast<double>(s.points[i - 1].qlen) +
             f * static_cast<double>(s.points[i].qlen - s.points[i - 1].qlen);
    }
  }
  return 0.0;
}

}  // namespace valign::bench
