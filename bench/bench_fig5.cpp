// Fig. 5 reproduction: total homology-detection compute time for each BLOSUM
// matrix (with its NCBI default gap penalties) across NW/SG/SW and 4/8/16
// lanes, for Striped and Scan.
//
// Expected shape (§VI-E): Scan's runtime is nearly flat across scoring
// schemes (it makes exactly two passes per column no matter what), while
// Striped varies — the more divergent matrices / cheaper gaps force more
// lazy-F corrections. By 8 lanes NW-Scan beats NW-Striped consistently; at
// 16 lanes Scan overtakes Striped for many schemes in SG/SW too.
#include "common.hpp"

using namespace valign;
using namespace valign::bench;

namespace {

struct Cell {
  double striped = 0.0;
  double scan = 0.0;
};

template <AlignClass C>
void run_class(const Dataset& ds, const char* name, bool* ok) {
  const auto& matrices = ScoreMatrix::builtins();
  std::printf("--- %s ---\n", name);
  std::printf("%6s %10s", "lanes", "engine");
  for (const ScoreMatrix* m : matrices) std::printf(" %10s", m->name().c_str());
  std::printf("\n");

  for (const int lanes : {4, 8, 16}) {
    std::vector<Cell> cells(matrices.size());
    const bool ran = with_native_i32(lanes, [&]<class V>() {
      for (std::size_t mi = 0; mi < matrices.size(); ++mi) {
        const ScoreMatrix& mat = *matrices[mi];
        const GapPenalty gap = mat.default_gaps();
        StripedAligner<C, V> striped(mat, gap);
        ScanAligner<C, V> scan(mat, gap);
        Sink sink;
        // Warm up (first touch of buffers/pages), then keep the best of two.
        run_all_to_all(striped, ds, nullptr, &sink);
        cells[mi].striped = std::min(run_all_to_all(striped, ds, nullptr, &sink),
                                     run_all_to_all(striped, ds, nullptr, &sink));
        run_all_to_all(scan, ds, nullptr, &sink);
        cells[mi].scan = std::min(run_all_to_all(scan, ds, nullptr, &sink),
                                  run_all_to_all(scan, ds, nullptr, &sink));
      }
    });
    if (!ran) continue;

    std::printf("%6d %10s", lanes, "striped");
    for (const Cell& c : cells) std::printf(" %10.3f", c.striped);
    std::printf("\n%6d %10s", lanes, "scan");
    for (const Cell& c : cells) std::printf(" %10.3f", c.scan);
    std::printf("\n");

    // Stability: Scan's spread across schemes should be much tighter than
    // Striped's.
    auto spread = [&](auto get) {
      double lo = 1e30, hi = 0.0;
      for (const Cell& c : cells) {
        lo = std::min(lo, get(c));
        hi = std::max(hi, get(c));
      }
      return hi / lo;
    };
    const double scan_spread = spread([](const Cell& c) { return c.scan; });
    const double striped_spread = spread([](const Cell& c) { return c.striped; });
    std::printf("%6d %10s striped max/min = %.2f, scan max/min = %.2f%s\n", lanes,
                "(spread)", striped_spread, scan_spread,
                scan_spread < striped_spread ? "  [scan flatter]" : "  [UNEXPECTED]");
    if (lanes == 16) *ok &= scan_spread < striped_spread;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  banner("Fig. 5", "homology detection time per scoring scheme (BLOSUM sweep)");

  const Dataset ds = workload::bacteria_2k(1, scaled(48));
  std::printf("dataset: %zu sequences, mean length %.0f, all-to-all "
              "(%zu alignments per configuration)\n\n",
              ds.size(), ds.mean_length(), ds.size() * (ds.size() - 1));

  bool ok = true;
  run_class<AlignClass::Global>(ds, "NW (global)", &ok);
  run_class<AlignClass::SemiGlobal>(ds, "SG (semi-global)", &ok);
  run_class<AlignClass::Local>(ds, "SW (local)", &ok);

  std::printf("shape check: Scan flatter than Striped across schemes at 16 lanes: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
