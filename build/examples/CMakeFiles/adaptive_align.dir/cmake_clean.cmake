file(REMOVE_RECURSE
  "CMakeFiles/adaptive_align.dir/adaptive_align.cpp.o"
  "CMakeFiles/adaptive_align.dir/adaptive_align.cpp.o.d"
  "adaptive_align"
  "adaptive_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
