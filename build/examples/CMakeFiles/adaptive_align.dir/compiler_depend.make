# Empty compiler generated dependencies file for adaptive_align.
# This may be replaced when dependencies are built.
