file(REMOVE_RECURSE
  "CMakeFiles/homology_detection.dir/homology_detection.cpp.o"
  "CMakeFiles/homology_detection.dir/homology_detection.cpp.o.d"
  "homology_detection"
  "homology_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homology_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
