# Empty dependencies file for homology_detection.
# This may be replaced when dependencies are built.
