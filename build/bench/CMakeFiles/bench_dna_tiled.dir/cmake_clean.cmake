file(REMOVE_RECURSE
  "CMakeFiles/bench_dna_tiled.dir/bench_dna_tiled.cpp.o"
  "CMakeFiles/bench_dna_tiled.dir/bench_dna_tiled.cpp.o.d"
  "bench_dna_tiled"
  "bench_dna_tiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dna_tiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
