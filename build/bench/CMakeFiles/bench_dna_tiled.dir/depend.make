# Empty dependencies file for bench_dna_tiled.
# This may be replaced when dependencies are built.
