file(REMOVE_RECURSE
  "libvalign.a"
)
