# Empty compiler generated dependencies file for valign.
# This may be replaced when dependencies are built.
