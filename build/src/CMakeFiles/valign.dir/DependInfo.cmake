
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/valign/apps/db_search.cpp" "src/CMakeFiles/valign.dir/valign/apps/db_search.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/apps/db_search.cpp.o.d"
  "/root/repo/src/valign/apps/homology.cpp" "src/CMakeFiles/valign.dir/valign/apps/homology.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/apps/homology.cpp.o.d"
  "/root/repo/src/valign/cli/cli.cpp" "src/CMakeFiles/valign.dir/valign/cli/cli.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/cli/cli.cpp.o.d"
  "/root/repo/src/valign/core/calibrate.cpp" "src/CMakeFiles/valign.dir/valign/core/calibrate.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/core/calibrate.cpp.o.d"
  "/root/repo/src/valign/core/dispatch.cpp" "src/CMakeFiles/valign.dir/valign/core/dispatch.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/core/dispatch.cpp.o.d"
  "/root/repo/src/valign/core/dispatch_avx2.cpp" "src/CMakeFiles/valign.dir/valign/core/dispatch_avx2.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/core/dispatch_avx2.cpp.o.d"
  "/root/repo/src/valign/core/dispatch_avx512.cpp" "src/CMakeFiles/valign.dir/valign/core/dispatch_avx512.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/core/dispatch_avx512.cpp.o.d"
  "/root/repo/src/valign/core/dispatch_emul.cpp" "src/CMakeFiles/valign.dir/valign/core/dispatch_emul.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/core/dispatch_emul.cpp.o.d"
  "/root/repo/src/valign/core/dispatch_sse.cpp" "src/CMakeFiles/valign.dir/valign/core/dispatch_sse.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/core/dispatch_sse.cpp.o.d"
  "/root/repo/src/valign/core/prescribe.cpp" "src/CMakeFiles/valign.dir/valign/core/prescribe.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/core/prescribe.cpp.o.d"
  "/root/repo/src/valign/core/scalar.cpp" "src/CMakeFiles/valign.dir/valign/core/scalar.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/core/scalar.cpp.o.d"
  "/root/repo/src/valign/instrument/counters.cpp" "src/CMakeFiles/valign.dir/valign/instrument/counters.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/instrument/counters.cpp.o.d"
  "/root/repo/src/valign/io/fasta.cpp" "src/CMakeFiles/valign.dir/valign/io/fasta.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/io/fasta.cpp.o.d"
  "/root/repo/src/valign/io/sequence.cpp" "src/CMakeFiles/valign.dir/valign/io/sequence.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/io/sequence.cpp.o.d"
  "/root/repo/src/valign/matrices/blosum.cpp" "src/CMakeFiles/valign.dir/valign/matrices/blosum.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/matrices/blosum.cpp.o.d"
  "/root/repo/src/valign/matrices/matrix.cpp" "src/CMakeFiles/valign.dir/valign/matrices/matrix.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/matrices/matrix.cpp.o.d"
  "/root/repo/src/valign/matrices/parser.cpp" "src/CMakeFiles/valign.dir/valign/matrices/parser.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/matrices/parser.cpp.o.d"
  "/root/repo/src/valign/simd/arch.cpp" "src/CMakeFiles/valign.dir/valign/simd/arch.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/simd/arch.cpp.o.d"
  "/root/repo/src/valign/stats/karlin.cpp" "src/CMakeFiles/valign.dir/valign/stats/karlin.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/stats/karlin.cpp.o.d"
  "/root/repo/src/valign/workload/distributions.cpp" "src/CMakeFiles/valign.dir/valign/workload/distributions.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/workload/distributions.cpp.o.d"
  "/root/repo/src/valign/workload/generator.cpp" "src/CMakeFiles/valign.dir/valign/workload/generator.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/workload/generator.cpp.o.d"
  "/root/repo/src/valign/workload/mutate.cpp" "src/CMakeFiles/valign.dir/valign/workload/mutate.cpp.o" "gcc" "src/CMakeFiles/valign.dir/valign/workload/mutate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
