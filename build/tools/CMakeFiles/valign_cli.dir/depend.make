# Empty dependencies file for valign_cli.
# This may be replaced when dependencies are built.
