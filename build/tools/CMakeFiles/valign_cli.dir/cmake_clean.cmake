file(REMOVE_RECURSE
  "CMakeFiles/valign_cli.dir/valign_main.cpp.o"
  "CMakeFiles/valign_cli.dir/valign_main.cpp.o.d"
  "valign"
  "valign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valign_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
