# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simd[1]_include.cmake")
include("/root/repo/build/tests/test_matrices[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_scalar[1]_include.cmake")
include("/root/repo/build/tests/test_engines[1]_include.cmake")
include("/root/repo/build/tests/test_sg_variants[1]_include.cmake")
include("/root/repo/build/tests/test_tiled[1]_include.cmake")
include("/root/repo/build/tests/test_calibrate[1]_include.cmake")
include("/root/repo/build/tests/test_engines_extended[1]_include.cmake")
include("/root/repo/build/tests/test_dispatch[1]_include.cmake")
include("/root/repo/build/tests/test_instrument[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
