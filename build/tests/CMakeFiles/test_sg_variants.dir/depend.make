# Empty dependencies file for test_sg_variants.
# This may be replaced when dependencies are built.
