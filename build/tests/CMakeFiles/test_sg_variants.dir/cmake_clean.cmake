file(REMOVE_RECURSE
  "CMakeFiles/test_sg_variants.dir/core/test_sg_variants.cpp.o"
  "CMakeFiles/test_sg_variants.dir/core/test_sg_variants.cpp.o.d"
  "test_sg_variants"
  "test_sg_variants.pdb"
  "test_sg_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sg_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
