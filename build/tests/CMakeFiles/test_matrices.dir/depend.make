# Empty dependencies file for test_matrices.
# This may be replaced when dependencies are built.
