file(REMOVE_RECURSE
  "CMakeFiles/test_engines_extended.dir/core/test_engines_extended.cpp.o"
  "CMakeFiles/test_engines_extended.dir/core/test_engines_extended.cpp.o.d"
  "test_engines_extended"
  "test_engines_extended.pdb"
  "test_engines_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engines_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
