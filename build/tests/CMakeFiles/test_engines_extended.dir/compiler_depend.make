# Empty compiler generated dependencies file for test_engines_extended.
# This may be replaced when dependencies are built.
