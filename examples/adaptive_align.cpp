// The paper's prescriptive solution (Table IV) in action: Approach::Auto
// switches between Scan and Striped based on the query length and the lane
// count of the selected ISA, and this example shows the decision plus the
// measured effect of picking the "wrong" engine.
//
//   $ ./adaptive_align
#include <chrono>
#include <cstdio>

#include "valign/valign.hpp"

namespace {

double time_alignments(valign::Aligner& aligner, const valign::Dataset& db) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const valign::Sequence& s : db) (void)aligner.align(s);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace valign;

  const Dataset db = workload::uniprot_like(/*count=*/300, /*seed=*/7);
  std::mt19937_64 rng(3);

  Options base;
  base.klass = AlignClass::Local;
  base.width = ElemWidth::W32;  // fixed width isolates the approach effect

  Aligner probe(base);
  const int lanes = simd::native_lanes(probe.isa(), 32);
  std::printf("host ISA: %s (%d lanes at 32-bit)\n", to_string(probe.isa()), lanes);
  std::printf("Table IV crossovers here: NW=%d SG=%d SW=%d\n\n",
              prescribe_crossover(AlignClass::Global, lanes),
              prescribe_crossover(AlignClass::SemiGlobal, lanes),
              prescribe_crossover(AlignClass::Local, lanes));

  std::printf("%7s | %-8s | %9s %9s %9s\n", "qlen", "auto", "t(auto)", "t(scan)",
              "t(striped)");
  for (const std::size_t qlen : {30u, 60u, 120u, 250u, 500u, 1000u}) {
    std::vector<std::uint8_t> q(qlen);
    std::uniform_int_distribution<int> res(0, 19);
    for (auto& c : q) c = static_cast<std::uint8_t>(res(rng));

    Options auto_opts = base;  // approach = Auto
    Options scan_opts = base;
    scan_opts.approach = Approach::Scan;
    Options striped_opts = base;
    striped_opts.approach = Approach::Striped;

    Aligner a_auto(auto_opts), a_scan(scan_opts), a_striped(striped_opts);
    a_auto.set_query(q);
    a_scan.set_query(q);
    a_striped.set_query(q);

    const Approach chosen = prescribe(AlignClass::Local, lanes, qlen);
    const double t_auto = time_alignments(a_auto, db);
    const double t_scan = time_alignments(a_scan, db);
    const double t_striped = time_alignments(a_striped, db);
    std::printf("%7zu | %-8s | %8.3fs %8.3fs %8.3fs\n", qlen, to_string(chosen),
                t_auto, t_scan, t_striped);
  }

  std::printf("\nThe auto column should track the better of the two fixed "
              "engines on either side of the crossover.\n");
  return 0;
}
