// Database search (the paper's §V use case): a set of query proteins is
// searched against a protein database; the best hits per query are printed.
//
//   $ ./database_search                         # synthetic data
//   $ ./database_search queries.fa database.fa  # your own FASTA files
//
// With synthetic data the tool generates a bacteria-2K-like query sample and
// a UniProt-like database (DESIGN.md §3 documents the substitution).
#include <cstdio>
#include <cstring>

#include "valign/valign.hpp"

int main(int argc, char** argv) {
  using namespace valign;

  Dataset queries, db;
  if (argc == 3) {
    std::printf("reading queries from %s, database from %s\n", argv[1], argv[2]);
    queries = read_fasta_file(argv[1], Alphabet::protein());
    db = read_fasta_file(argv[2], Alphabet::protein());
  } else {
    std::printf("no FASTA files given; generating synthetic datasets\n");
    queries = workload::bacteria_2k(/*seed=*/1, /*count=*/20);
    db = workload::uniprot_like(/*count=*/500, /*seed=*/2);
  }
  std::printf("queries: %zu sequences (mean %.0f aa), database: %zu sequences "
              "(mean %.0f aa)\n\n",
              queries.size(), queries.mean_length(), db.size(), db.mean_length());

  apps::SearchConfig cfg;
  cfg.align.klass = AlignClass::Local;
  cfg.top_k = 3;
#if defined(VALIGN_HAVE_OPENMP)
  cfg.threads = 4;
#endif

  const apps::SearchReport rep = apps::search(queries, db, cfg);

  // Karlin-Altschul statistics for the scoring scheme in effect (published
  // gapped parameters for BLOSUM62 11/1, computed ungapped otherwise).
  const stats::KarlinParams params =
      stats::lookup_params(ScoreMatrix::blosum62(),
                           ScoreMatrix::blosum62().default_gaps());
  const std::uint64_t db_residues = db.total_residues();
  std::printf("statistics: lambda=%.3f K=%.3f (%s)\n\n", params.lambda, params.k,
              params.gapped ? "gapped" : "ungapped");

  std::printf("%-12s %-12s %7s %9s %11s %9s %9s\n", "query", "best-hit", "score",
              "bits", "E-value", "q-end", "s-end");
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t k = 0; k < rep.top_hits[q].size(); ++k) {
      const apps::SearchHit& h = rep.top_hits[q][k];
      std::printf("%-12s %-12s %7d %9.1f %11.2e %9d %9d\n",
                  k == 0 ? queries[q].name().c_str() : "",
                  db[h.db_index].name().c_str(), h.score,
                  stats::bit_score(params, h.score),
                  stats::evalue(params, h.score, queries[q].size(), db_residues),
                  h.query_end, h.db_end);
    }
  }

  std::printf("\n%llu alignments in %.2f s (%.2f GCUPS incl. padding)\n",
              static_cast<unsigned long long>(rep.alignments), rep.seconds,
              rep.gcups());
  return 0;
}
