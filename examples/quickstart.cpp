// Quickstart: align two protein sequences three ways and print the result.
//
//   $ ./quickstart
//
// Demonstrates the one-shot align() API, the reusable Aligner, and the
// scalar traceback engine for recovering the actual alignment.
#include <cstdio>

#include "valign/valign.hpp"

int main() {
  using namespace valign;

  // Two related protein fragments (hemoglobin-like toys).
  const Sequence query("query", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ", Alphabet::protein());
  const Sequence db("subject", "MKTAYIAKQRGISFVKSHFSRQLEERLGLIE", Alphabet::protein());

  std::printf("valign %s — quickstart\n", version());
  std::printf("query  : %s\n", query.to_string().c_str());
  std::printf("subject: %s\n\n", db.to_string().c_str());

  // 1. One-shot alignment for each class. Everything defaults: BLOSUM62,
  //    gap 11/1, widest ISA, automatic element width and Table IV approach.
  for (const AlignClass klass :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    Options opts;
    opts.klass = klass;
    const AlignResult r = align(query, db, opts);
    std::printf("%-3s score=%4d  approach=%-7s isa=%-6s lanes=%2d elems=%2d-bit\n",
                to_string(klass), r.score, to_string(r.approach), to_string(r.isa),
                r.lanes, r.bits);
  }

  // 2. The reusable Aligner amortizes the query profile across many targets.
  Options opts;
  opts.klass = AlignClass::Local;
  opts.approach = Approach::Scan;  // the paper's contribution
  Aligner aligner(opts);
  aligner.set_query(query);
  const AlignResult r = aligner.align(db);
  std::printf("\nSW via Scan: score=%d ends=(q=%d, s=%d)\n", r.score, r.query_end,
              r.db_end);

  // 3. Recover the alignment itself with the scalar traceback engine.
  const Traceback tb = align_traceback(AlignClass::Local, ScoreMatrix::blosum62(),
                                       GapPenalty{11, 1}, query, db);
  std::printf("\nLocal alignment (identity %.0f%%, cigar %s):\n",
              100.0 * tb.identity(), tb.cigar.c_str());
  std::printf("  %s\n  %s\n  %s\n", tb.aligned_query.c_str(), tb.midline.c_str(),
              tb.aligned_db.c_str());
  return 0;
}
