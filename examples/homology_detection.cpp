// Homology detection (the paper's §V use case): all-to-all alignment of a
// protein set; high-scoring pairs form a homology graph whose connected
// components approximate protein families.
//
//   $ ./homology_detection              # synthetic homolog-rich dataset
//   $ ./homology_detection proteins.fa  # your own FASTA file
#include <algorithm>
#include <cstdio>
#include <map>

#include "valign/valign.hpp"

int main(int argc, char** argv) {
  using namespace valign;

  Dataset ds;
  if (argc == 2) {
    std::printf("reading sequences from %s\n", argv[1]);
    ds = read_fasta_file(argv[1], Alphabet::protein());
  } else {
    std::printf("no FASTA file given; generating a homolog-rich synthetic set\n");
    workload::GeneratorConfig cfg;
    cfg.homolog_fraction = 0.5;
    cfg.seed = 42;
    ds = workload::generate(60, cfg);
  }
  std::printf("dataset: %zu sequences, mean length %.0f, %llu residues total\n\n",
              ds.size(), ds.mean_length(),
              static_cast<unsigned long long>(ds.total_residues()));

  apps::HomologyConfig cfg;
  cfg.align.klass = AlignClass::Local;
  cfg.score_threshold = 100;
#if defined(VALIGN_HAVE_OPENMP)
  cfg.threads = 4;
#endif

  const apps::HomologyReport rep = apps::detect(ds, cfg);

  std::printf("%llu pairwise alignments in %.2f s\n",
              static_cast<unsigned long long>(rep.alignments), rep.seconds);
  std::printf("%zu homologous pairs at score >= %d\n", rep.edges.size(),
              cfg.score_threshold);
  std::printf("%zu families (connected components)\n\n", rep.cluster_count);

  // Family size histogram.
  std::map<std::size_t, std::size_t> family_sizes;
  for (const std::size_t rep_idx : rep.cluster_of) ++family_sizes[rep_idx];
  std::map<std::size_t, std::size_t> histogram;
  for (const auto& [rep_idx, size] : family_sizes) ++histogram[size];
  std::printf("family size distribution:\n");
  for (const auto& [size, count] : histogram) {
    std::printf("  %3zu member%s: %zu famil%s\n", size, size == 1 ? " " : "s",
                count, count == 1 ? "y" : "ies");
  }

  // Show the strongest edges.
  auto edges = rep.edges;
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  std::printf("\nstrongest homologous pairs:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(edges.size(), 8); ++i) {
    std::printf("  %-12s ~ %-12s score %d\n", ds[edges[i].a].name().c_str(),
                ds[edges[i].b].name().c_str(), edges[i].score);
  }
  return 0;
}
