// Drop-in instrumented wrapper for any SIMD backend.
//
// CountingVec<V> satisfies the same SimdVec contract as V while tallying
// every operation into the thread-local instrument counters. Engines are
// templates over the vector type, so instantiating them with CountingVec<V>
// yields an exact per-category operation census of the kernel — the valign
// stand-in for the paper's Pin/cachegrind/VTune measurements.
#pragma once

#include "valign/instrument/counters.hpp"
#include "valign/simd/vec_traits.hpp"

namespace valign::instrument {

template <valign::simd::SimdVec V>
struct CountingVec {
  using inner_type = V;
  using value_type = typename V::value_type;
  using traits = typename V::traits;
  static constexpr int lanes = V::lanes;
  static constexpr int bits = V::bits;
  static constexpr value_type neg_inf = V::neg_inf;

  V v;

  CountingVec() = default;
  explicit CountingVec(V inner) : v(inner) {}

  [[nodiscard]] static CountingVec zero() noexcept {
    count_inline(OpCategory::VecSwizzle, 1);
    return CountingVec{V::zero()};
  }
  [[nodiscard]] static CountingVec broadcast(value_type s) noexcept {
    count_inline(OpCategory::VecSwizzle, 1);
    return CountingVec{V::broadcast(s)};
  }
  [[nodiscard]] static CountingVec load(const value_type* p) noexcept {
    count_inline(OpCategory::VecMemory, 1);
    return CountingVec{V::load(p)};
  }
  [[nodiscard]] static CountingVec loadu(const value_type* p) noexcept {
    count_inline(OpCategory::VecMemory, 1);
    return CountingVec{V::loadu(p)};
  }
  void store(value_type* p) const noexcept {
    count_inline(OpCategory::VecMemory, 1);
    v.store(p);
  }
  void storeu(value_type* p) const noexcept {
    count_inline(OpCategory::VecMemory, 1);
    v.storeu(p);
  }

  [[nodiscard]] static CountingVec adds(CountingVec a, CountingVec b) noexcept {
    count_inline(OpCategory::VecArith, 1);
    return CountingVec{V::adds(a.v, b.v)};
  }
  [[nodiscard]] static CountingVec subs(CountingVec a, CountingVec b) noexcept {
    count_inline(OpCategory::VecArith, 1);
    return CountingVec{V::subs(a.v, b.v)};
  }
  [[nodiscard]] static CountingVec max(CountingVec a, CountingVec b) noexcept {
    count_inline(OpCategory::VecCompare, 1);
    return CountingVec{V::max(a.v, b.v)};
  }
  [[nodiscard]] static CountingVec min(CountingVec a, CountingVec b) noexcept {
    count_inline(OpCategory::VecCompare, 1);
    return CountingVec{V::min(a.v, b.v)};
  }

  [[nodiscard]] static bool any_gt(CountingVec a, CountingVec b) noexcept {
    // A convergence test is one vector compare plus one mask creation.
    count_inline(OpCategory::VecCompare, 1);
    count_inline(OpCategory::VecMask, 1);
    return V::any_gt(a.v, b.v);
  }
  [[nodiscard]] static bool equals(CountingVec a, CountingVec b) noexcept {
    count_inline(OpCategory::VecCompare, 1);
    count_inline(OpCategory::VecMask, 1);
    return V::equals(a.v, b.v);
  }

  [[nodiscard]] static CountingVec shift_in(CountingVec a, value_type fill) noexcept {
    count_inline(OpCategory::VecSwizzle, 1);
    return CountingVec{V::shift_in(a.v, fill)};
  }
  template <int K>
  [[nodiscard]] static CountingVec shift_in_k(CountingVec a, value_type fill) noexcept {
    count_inline(OpCategory::VecSwizzle, 1);
    return CountingVec{V::template shift_in_k<K>(a.v, fill)};
  }

  [[nodiscard]] value_type lane(int i) const noexcept {
    count_inline(OpCategory::VecSwizzle, 1);
    return v.lane(i);
  }
  [[nodiscard]] value_type first() const noexcept { return lane(0); }
  [[nodiscard]] value_type last() const noexcept { return lane(lanes - 1); }
  [[nodiscard]] value_type hmax() const noexcept {
    count_inline(OpCategory::VecSwizzle, 1);
    return v.hmax();
  }
};

/// True for CountingVec instantiations; engines use this to emit their
/// scalar-op bookkeeping only when instrumented (zero cost otherwise).
template <class V>
inline constexpr bool is_counting_v = false;
template <valign::simd::SimdVec V>
inline constexpr bool is_counting_v<CountingVec<V>> = true;

/// Engine-side scalar op hook: a no-op unless V is a CountingVec.
template <class V>
inline void count_scalar(OpCategory c, std::uint64_t n) noexcept {
  if constexpr (is_counting_v<V>) count_inline(c, n);
}

}  // namespace valign::instrument
