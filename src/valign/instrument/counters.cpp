#include "valign/instrument/counters.hpp"

#include <numeric>
#include <sstream>

namespace valign::instrument {

const char* to_string(OpCategory c) {
  switch (c) {
    case OpCategory::VecArith: return "vec-arith";
    case OpCategory::VecCompare: return "vec-compare";
    case OpCategory::VecMemory: return "vec-memory";
    case OpCategory::VecSwizzle: return "vec-swizzle";
    case OpCategory::VecMask: return "vec-mask";
    case OpCategory::ScalarArith: return "scalar-arith";
    case OpCategory::ScalarMemory: return "scalar-memory";
    case OpCategory::ScalarBranch: return "scalar-branch";
    case OpCategory::kCount_: break;
  }
  return "?";
}

std::uint64_t OpCounts::vector_total() const {
  return (*this)[OpCategory::VecArith] + (*this)[OpCategory::VecCompare] +
         (*this)[OpCategory::VecMemory] + (*this)[OpCategory::VecSwizzle] +
         (*this)[OpCategory::VecMask];
}

std::uint64_t OpCounts::scalar_total() const {
  return (*this)[OpCategory::ScalarArith] + (*this)[OpCategory::ScalarMemory] +
         (*this)[OpCategory::ScalarBranch];
}

std::uint64_t OpCounts::instruction_refs() const {
  return vector_total() + scalar_total();
}

std::uint64_t OpCounts::data_refs() const {
  return (*this)[OpCategory::VecMemory] + (*this)[OpCategory::ScalarMemory];
}

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  for (int i = 0; i < kOpCategoryCount; ++i)
    by_category[static_cast<std::size_t>(i)] +=
        o.by_category[static_cast<std::size_t>(i)];
  return *this;
}

std::string OpCounts::summary() const {
  std::ostringstream os;
  for (int i = 0; i < kOpCategoryCount; ++i) {
    const auto c = static_cast<OpCategory>(i);
    os << to_string(c) << "=" << (*this)[c];
    if (i + 1 < kOpCategoryCount) os << " ";
  }
  return os.str();
}

void reset() { detail::tls_counts.fill(0); }

OpCounts snapshot() {
  OpCounts c;
  c.by_category = detail::tls_counts;
  return c;
}

void count(OpCategory c, std::uint64_t n) noexcept { count_inline(c, n); }

}  // namespace valign::instrument
