// Architectural operation counters.
//
// The paper measures instruction references with cachegrind (Table II), VTune
// (Table III) and Pin (Fig. 3). None of those are usable here, so valign
// counts operations at the abstraction boundary instead: every vector-backend
// call made by an engine is categorized and tallied when the engine is
// instantiated with instrument::CountingVec<V>. Scalar bookkeeping inside the
// engines is reported through the scalar_* hooks.
//
// Counters are thread-local: concurrent instrumented runs do not interleave.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace valign::instrument {

/// Operation categories, matching Fig. 3's instruction-mix breakdown.
enum class OpCategory : std::uint8_t {
  VecArith,    ///< adds/subs vector ops.
  VecCompare,  ///< max/min/compare vector ops.
  VecMemory,   ///< vector loads and stores.
  VecSwizzle,  ///< lane shifts, broadcasts, extracts, horizontal reductions.
  VecMask,     ///< mask-creation ops (movemask-style convergence tests).
  ScalarArith, ///< scalar arithmetic performed by the engine.
  ScalarMemory,///< scalar loads/stores performed by the engine.
  ScalarBranch,///< scalar branches (loop control, convergence branching).
  kCount_,
};

inline constexpr int kOpCategoryCount = static_cast<int>(OpCategory::kCount_);

[[nodiscard]] const char* to_string(OpCategory c);

/// A snapshot of all categories.
struct OpCounts {
  std::array<std::uint64_t, kOpCategoryCount> by_category{};

  [[nodiscard]] std::uint64_t operator[](OpCategory c) const {
    return by_category[static_cast<std::size_t>(c)];
  }

  /// Total vector operations (instruction-reference proxy, vector part).
  [[nodiscard]] std::uint64_t vector_total() const;
  /// Total scalar operations (instruction-reference proxy, scalar part).
  [[nodiscard]] std::uint64_t scalar_total() const;
  /// Instruction-reference proxy: everything.
  [[nodiscard]] std::uint64_t instruction_refs() const;
  /// Data-reference proxy: vector + scalar memory operations.
  [[nodiscard]] std::uint64_t data_refs() const;

  OpCounts& operator+=(const OpCounts& o);
  [[nodiscard]] std::string summary() const;
};

/// Reset this thread's counters to zero.
void reset();

/// Snapshot this thread's counters.
[[nodiscard]] OpCounts snapshot();

/// Add `n` to category `c` on this thread. Engines call this through the
/// VALIGN_COUNT hooks; it is a plain thread-local increment.
void count(OpCategory c, std::uint64_t n) noexcept;

namespace detail {
// Exposed for the hot-path inline increment in counting_vec.hpp. An inline
// variable (not extern): every TU owns the definition, so the access needs
// no cross-TU TLS wrapper call — which GCC resolves to null under
// -fsanitize=undefined (PR 85400) and which would cost a call in the hot
// path even when it works.
inline thread_local std::array<std::uint64_t, kOpCategoryCount> tls_counts{};
}  // namespace detail

inline void count_inline(OpCategory c, std::uint64_t n) noexcept {
  detail::tls_counts[static_cast<std::size_t>(c)] += n;
}

}  // namespace valign::instrument
