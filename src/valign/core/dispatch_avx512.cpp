// AVX-512BW engine factory.
#include "valign/core/dispatch_impl.hpp"

namespace valign::detail {

std::unique_ptr<EngineBase> make_engine_avx512(const EngineSpec& s) {
#if defined(__AVX512F__) && defined(__AVX512BW__)
  if (!simd::isa_available(Isa::AVX512)) return nullptr;
  return make_native<simd::V512>(s);
#else
  (void)s;
  return nullptr;
#endif
}

std::unique_ptr<BatchEngineBase> make_batch_engine_avx512(const EngineSpec& s) {
#if defined(__AVX512F__) && defined(__AVX512BW__)
  if (!simd::isa_available(Isa::AVX512)) return nullptr;
  return make_batch_native<simd::V512>(s);
#else
  (void)s;
  return nullptr;
#endif
}

}  // namespace valign::detail
