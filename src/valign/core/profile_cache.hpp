// Process-wide cache of striped query profiles, shared across engines.
//
// A database search touches the same query with several engines (the width
// ladder's i8/i16/i32 attempts, Auto's striped/scan/deconstructed switches,
// one engine clone per worker thread), and every one of them used to gather
// its own copy of the same substitution rows. The profile depends only on
// (matrix, query, lanes, element type) — none of gap penalties, alignment
// class or approach — so all of those consumers can share one immutable
// build. SSW (arXiv:1208.6350) showed this reuse is table stakes for search
// throughput; here it also feeds the `runtime.kernel.profile_cache.*`
// counters so the saving is auditable per run.
//
// Entries are keyed by content (matrix fingerprint + query bytes), never by
// address alone, so a ScoreMatrix rebuilt at a recycled address cannot alias
// a stale profile. Lookup takes a mutex; the returned shared_ptr is
// immutable and safe to read from any thread while the cache evicts or
// resets underneath it.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "valign/core/profile.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {

/// Counters mirrored into the metrics registry by the runtime layer
/// (runtime.kernel.profile_cache.*; see docs/kernels.md).
struct ProfileCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t builds = 0;       ///< Misses; every miss builds exactly once.
  std::uint64_t evictions = 0;
  std::uint64_t fast_builds = 0;  ///< Builds that took the small-alphabet path.

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Member-wise difference: per-run deltas from two global() snapshots (the
/// cache is process-wide, so drivers report what *their* run added).
[[nodiscard]] inline ProfileCacheStats operator-(const ProfileCacheStats& a,
                                                 const ProfileCacheStats& b) noexcept {
  return {a.lookups - b.lookups, a.hits - b.hits, a.builds - b.builds,
          a.evictions - b.evictions, a.fast_builds - b.fast_builds};
}

class SharedProfileCache {
 public:
  /// LRU capacity in profiles. Sized for a streaming search's working set
  /// (queries in flight x 3 widths x a safety margin), not a whole corpus.
  static constexpr std::size_t kCapacity = 64;

  /// Returns the cached profile for (matrix, query, lanes, T), building and
  /// inserting it on a miss. The result is immutable and outlives eviction.
  template <class T>
  [[nodiscard]] std::shared_ptr<const StripedProfile<T>> acquire(
      const ScoreMatrix& matrix, std::span<const std::uint8_t> query, int lanes) {
    const std::uint64_t mfp = matrix_fingerprint(matrix);
    const std::uint64_t qh = hash_bytes(query.data(), query.size());
    const int bits = 8 * static_cast<int>(sizeof(T));

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->matrix_fp == mfp && it->lanes == lanes && it->elem_bits == bits &&
          it->qhash == qh && spans_equal(it->query, query)) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it);  // mark most-recently-used
        return std::static_pointer_cast<const StripedProfile<T>>(it->profile);
      }
    }

    auto prof = std::make_shared<StripedProfile<T>>();
    prof->build(matrix, query, lanes);
    ++stats_.builds;
    if (prof->built_fast()) ++stats_.fast_builds;

    Entry e;
    e.matrix_fp = mfp;
    e.lanes = lanes;
    e.elem_bits = bits;
    e.qhash = qh;
    e.query.assign(query.begin(), query.end());
    e.profile = std::static_pointer_cast<const void>(
        std::shared_ptr<const StripedProfile<T>>(prof));
    lru_.push_front(std::move(e));
    while (lru_.size() > kCapacity) {
      lru_.pop_back();
      ++stats_.evictions;
    }
    return prof;
  }

  [[nodiscard]] ProfileCacheStats stats() const;
  /// Drops every entry and zeroes the counters (test isolation; outstanding
  /// shared_ptrs stay valid).
  void reset();

  /// The process-wide instance every engine's set_query goes through.
  [[nodiscard]] static SharedProfileCache& global();

 private:
  struct Entry {
    std::uint64_t matrix_fp = 0;
    int lanes = 0;
    int elem_bits = 0;
    std::uint64_t qhash = 0;
    std::vector<std::uint8_t> query;
    std::shared_ptr<const void> profile;
  };

  static std::uint64_t hash_bytes(const void* data, std::size_t n) noexcept;
  /// Content fingerprint of a matrix (name, alphabet size, every score).
  static std::uint64_t matrix_fingerprint(const ScoreMatrix& m);
  static bool spans_equal(const std::vector<std::uint8_t>& a,
                          std::span<const std::uint8_t> b) noexcept;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used; size <= kCapacity + 1
  ProfileCacheStats stats_;
};

}  // namespace valign
