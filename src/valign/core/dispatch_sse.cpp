// SSE4.1 engine factory.
#include "valign/core/dispatch_impl.hpp"

namespace valign::detail {

std::unique_ptr<EngineBase> make_engine_sse(const EngineSpec& s) {
#if defined(__SSE4_1__)
  if (!simd::isa_available(Isa::SSE41)) return nullptr;
  return make_native<simd::V128>(s);
#else
  (void)s;
  return nullptr;
#endif
}

std::unique_ptr<BatchEngineBase> make_batch_engine_sse(const EngineSpec& s) {
#if defined(__SSE4_1__)
  if (!simd::isa_available(Isa::SSE41)) return nullptr;
  return make_batch_native<simd::V128>(s);
#else
  (void)s;
  return nullptr;
#endif
}

}  // namespace valign::detail
