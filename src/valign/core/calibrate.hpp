// Host calibration of the Striped/Scan decision table.
//
// Table IV's crossover lengths were measured on the paper's machines and, as
// EXPERIMENTS.md documents, they move with microarchitecture. This module
// reruns a condensed version of the paper's Fig. 4 sweep on the *current*
// host and produces a PrescriptionTable the dispatcher can use instead of
// the published numbers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "valign/common.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {

/// A decision table in the shape of the paper's Table IV: per alignment
/// class, which engine wins short queries, and the crossover query length
/// for 4/8/16-lane execution (0 = no crossover observed, one engine
/// dominates the measured range).
struct PrescriptionTable {
  std::array<std::array<int, 3>, 3> crossover{};  ///< [class][lane column]
  std::array<bool, 3> scan_wins_short{};          ///< per class

  /// The engine this table prescribes.
  [[nodiscard]] Approach choose(AlignClass klass, int lanes,
                                std::size_t qlen) const noexcept;

  /// Crossover for a class/lane pair (lane counts clamp to 4/8/16 columns).
  [[nodiscard]] int cross(AlignClass klass, int lanes) const noexcept;

  /// The paper's published Table IV.
  [[nodiscard]] static PrescriptionTable paper() noexcept;

  /// Human-readable rendering (one row per class).
  [[nodiscard]] std::string to_string() const;
};

/// Calibration workload knobs. The defaults run in a few seconds.
struct CalibrationConfig {
  /// Database sequences sampled from the UniProt-like model.
  std::size_t db_count = 60;
  std::uint64_t seed = 17;
  /// Query lengths probed (must be ascending).
  std::vector<std::size_t> lengths = {16, 32, 64, 96, 128, 192, 256, 384, 512};
  /// Minimum measurement time per (length, engine) point, seconds.
  double min_seconds = 0.01;
  /// Scoring scheme under test.
  const ScoreMatrix* matrix = nullptr;  ///< default BLOSUM62
  GapPenalty gap{11, 1};
};

/// Measure the decision table on this host (native 32-bit backends at
/// whatever of 4/8/16 lanes the CPU provides; unavailable lane counts fall
/// back to the paper's values for that column).
[[nodiscard]] PrescriptionTable calibrate(const CalibrationConfig& cfg = {});

/// Three-engine generalization of the PrescriptionTable: per (class, lane
/// column) the measured winner below and above one crossover length, over
/// {Striped, Scan, Deconstructed}. Table IV only ranks the first two; once
/// the deconstructed kernel enters the race the short/long winners are no
/// longer derivable from a bool, so each cell names them outright.
///
/// `Approach::Auto` resolves through a model with this precedence:
/// Options::model (injected) > Options::prescription (legacy two-engine
/// table) > EngineModel::pinned() (measured on a reference host, committed)
/// — and pinned() degrades to paper() cells for lane columns that were not
/// measurable. docs/kernels.md walks through the calibration workflow.
struct EngineModel {
  struct Cell {
    Approach short_winner = Approach::Striped;
    Approach long_winner = Approach::Scan;
    /// Query length where the winner flips; 0 = one engine dominates the
    /// whole measured range (short_winner == long_winner then).
    int crossover = 0;
  };
  std::array<std::array<Cell, 3>, 3> cells{};  ///< [class row][lane column]

  [[nodiscard]] Approach choose(AlignClass klass, int lanes,
                                std::size_t qlen) const noexcept;
  [[nodiscard]] const Cell& cell(AlignClass klass, int lanes) const noexcept;

  /// Two-engine model lifted from the paper's Table IV (fallback when no
  /// measurement is available; never picks Deconstructed).
  [[nodiscard]] static EngineModel paper() noexcept;
  /// Crossovers measured by calibrate_engines() on the reference build host
  /// and committed (see the definition for provenance). The default model
  /// behind Approach::Auto.
  [[nodiscard]] static const EngineModel& pinned() noexcept;

  /// One row per class: winners and crossover per lane column.
  [[nodiscard]] std::string to_string() const;
};

/// Measure the three-engine decision model on this host. Same probe corpus
/// and timing discipline as calibrate(); lane columns the CPU cannot run
/// natively keep their paper() cells.
[[nodiscard]] EngineModel calibrate_engines(const CalibrationConfig& cfg = {});

/// Escalation-threshold model for the two-stage prescreen
/// (core/prefilter.hpp). The screen score is a *structural* upper bound on
/// the true score, so a zero margin is already sound; calibration exists to
/// verify that claim empirically on this host's engines (a measured margin
/// above zero would flag a kernel bug, not tune around it) and to record the
/// observed saturation share for capacity planning.
struct PrefilterModel {
  /// Slack added to a screen score before comparing it against the running
  /// k-th best true score, per alignment class row (NW/SG/SW). Never
  /// negative: a negative margin could drop true hits.
  std::array<int, 3> margin{};
  /// Share of screened pairs whose i8 screen saturated (forced escalation),
  /// in percent, as observed on the calibration corpus.
  int saturated_pct = 0;

  [[nodiscard]] int margin_for(AlignClass klass) const noexcept;

  /// The structural model: zero margin everywhere. Safe on any host because
  /// screen >= true holds by construction whenever the screen did not
  /// saturate — and saturated pairs always escalate.
  [[nodiscard]] static PrefilterModel conservative() noexcept { return {}; }

  [[nodiscard]] std::string to_string() const;
};

/// Prefilter calibration corpus knobs. The defaults run well under a second.
struct PrefilterCalibrationConfig {
  std::size_t db_count = 48;
  std::size_t query_count = 3;
  std::uint64_t seed = 23;
  const ScoreMatrix* matrix = nullptr;  ///< default BLOSUM62
  GapPenalty gap{11, 1};
};

/// Measures screen-vs-true score gaps on a generated corpus where true
/// scores come from the scalar ground-truth engines. The returned margins
/// are max(0, max(true - screen)) per class over non-saturated pairs —
/// expected to be exactly zero (see PrefilterModel); saturated pairs are
/// excluded from the margin (they escalate unconditionally) but counted in
/// `saturated_pct`.
[[nodiscard]] PrefilterModel calibrate_prefilter(
    const PrefilterCalibrationConfig& cfg = {});

}  // namespace valign
