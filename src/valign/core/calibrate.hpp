// Host calibration of the Striped/Scan decision table.
//
// Table IV's crossover lengths were measured on the paper's machines and, as
// EXPERIMENTS.md documents, they move with microarchitecture. This module
// reruns a condensed version of the paper's Fig. 4 sweep on the *current*
// host and produces a PrescriptionTable the dispatcher can use instead of
// the published numbers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "valign/common.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {

/// A decision table in the shape of the paper's Table IV: per alignment
/// class, which engine wins short queries, and the crossover query length
/// for 4/8/16-lane execution (0 = no crossover observed, one engine
/// dominates the measured range).
struct PrescriptionTable {
  std::array<std::array<int, 3>, 3> crossover{};  ///< [class][lane column]
  std::array<bool, 3> scan_wins_short{};          ///< per class

  /// The engine this table prescribes.
  [[nodiscard]] Approach choose(AlignClass klass, int lanes,
                                std::size_t qlen) const noexcept;

  /// Crossover for a class/lane pair (lane counts clamp to 4/8/16 columns).
  [[nodiscard]] int cross(AlignClass klass, int lanes) const noexcept;

  /// The paper's published Table IV.
  [[nodiscard]] static PrescriptionTable paper() noexcept;

  /// Human-readable rendering (one row per class).
  [[nodiscard]] std::string to_string() const;
};

/// Calibration workload knobs. The defaults run in a few seconds.
struct CalibrationConfig {
  /// Database sequences sampled from the UniProt-like model.
  std::size_t db_count = 60;
  std::uint64_t seed = 17;
  /// Query lengths probed (must be ascending).
  std::vector<std::size_t> lengths = {16, 32, 64, 96, 128, 192, 256, 384, 512};
  /// Minimum measurement time per (length, engine) point, seconds.
  double min_seconds = 0.01;
  /// Scoring scheme under test.
  const ScoreMatrix* matrix = nullptr;  ///< default BLOSUM62
  GapPenalty gap{11, 1};
};

/// Measure the decision table on this host (native 32-bit backends at
/// whatever of 4/8/16 lanes the CPU provides; unavailable lane counts fall
/// back to the paper's values for that column).
[[nodiscard]] PrescriptionTable calibrate(const CalibrationConfig& cfg = {});

}  // namespace valign
