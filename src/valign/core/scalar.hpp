// Scalar (non-vectorized) alignment engines — the ground truth.
//
// Implements Algorithm 1 of the paper for all three alignment classes with
// affine gap penalties (Gotoh). The score-only engine runs in O(n) memory and
// is the "Scalar" baseline of Table I; the traceback variant keeps the full
// table and recovers the optimal alignment.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "valign/common.hpp"
#include "valign/io/sequence.hpp"
#include "valign/matrices/matrix.hpp"

namespace valign {

namespace detail {

/// Boundary value H[r][-1] (first-column) or H[-1][j] (first-row) for class C
/// under the classic semantics (SG = all ends free).
template <AlignClass C>
[[nodiscard]] inline std::int64_t edge_boundary(std::int64_t index_plus_1,
                                                GapPenalty gap) noexcept {
  if constexpr (C == AlignClass::Global) {
    return -(std::int64_t{gap.open} + index_plus_1 * std::int64_t{gap.extend});
  } else {
    (void)index_plus_1;
    (void)gap;
    return 0;
  }
}

/// First-column boundary H[r][-1]: leading query residues aligned to gaps.
/// Free exactly when the class is Local, or SemiGlobal with free_db_begin.
template <AlignClass C>
[[nodiscard]] inline std::int64_t col_boundary(std::int64_t index_plus_1,
                                               GapPenalty gap,
                                               const SemiGlobalEnds& ends) noexcept {
  if constexpr (C == AlignClass::SemiGlobal) {
    return ends.free_db_begin
               ? 0
               : -(std::int64_t{gap.open} + index_plus_1 * std::int64_t{gap.extend});
  } else {
    return edge_boundary<C>(index_plus_1, gap);
  }
}

/// First-row boundary H[-1][j]: leading database residues aligned to gaps.
/// Free exactly when the class is Local, or SemiGlobal with free_query_begin.
template <AlignClass C>
[[nodiscard]] inline std::int64_t row_boundary(std::int64_t index_plus_1,
                                               GapPenalty gap,
                                               const SemiGlobalEnds& ends) noexcept {
  if constexpr (C == AlignClass::SemiGlobal) {
    return ends.free_query_begin
               ? 0
               : -(std::int64_t{gap.open} + index_plus_1 * std::int64_t{gap.extend});
  } else {
    return edge_boundary<C>(index_plus_1, gap);
  }
}

/// Fill in the result for an empty query and/or database.
template <AlignClass C>
inline AlignResult degenerate_result(AlignResult res, std::size_t qlen,
                                     std::size_t dlen, GapPenalty gap,
                                     const SemiGlobalEnds& ends = {}) noexcept {
  const std::int64_t o = gap.open;
  const std::int64_t e = gap.extend;
  res.score = 0;
  if constexpr (C == AlignClass::Global) {
    const std::size_t len = qlen > dlen ? qlen : dlen;
    if (len > 0) {
      res.score = static_cast<std::int32_t>(-(o + static_cast<std::int64_t>(len) * e));
    }
  } else if constexpr (C == AlignClass::SemiGlobal) {
    // The non-empty sequence aligns against one run of gaps; free if the
    // matching end flags allow it.
    if (qlen == 0 && dlen > 0 && !ends.free_query_begin && !ends.free_query_end) {
      res.score = static_cast<std::int32_t>(-(o + static_cast<std::int64_t>(dlen) * e));
    }
    if (dlen == 0 && qlen > 0 && !ends.free_db_begin && !ends.free_db_end) {
      res.score = static_cast<std::int32_t>(-(o + static_cast<std::int64_t>(qlen) * e));
    }
  }
  return res;
}

}  // namespace detail

/// Score-only scalar aligner with the uniform engine interface:
/// construct with scoring scheme, `set_query()`, then `align()` repeatedly.
template <AlignClass C>
class ScalarAligner {
 public:
  static constexpr Approach kApproach = Approach::Scalar;
  static constexpr AlignClass kClass = C;

  /// `ends` configures free end gaps and is honoured only when
  /// C == AlignClass::SemiGlobal (the default reproduces classic SG).
  ScalarAligner(const ScoreMatrix& matrix, GapPenalty gap,
                SemiGlobalEnds ends = {})
      : matrix_(&matrix), gap_(gap), ends_(ends) {}

  void set_query(std::span<const std::uint8_t> query) {
    query_.assign(query.begin(), query.end());
    h_.resize(query_.size());
    e_.resize(query_.size());
  }

  [[nodiscard]] std::size_t query_length() const noexcept { return query_.size(); }

  AlignResult align(std::span<const std::uint8_t> db) {
    constexpr std::int64_t kNegInf = std::numeric_limits<std::int32_t>::min() / 2;
    const std::int64_t o = gap_.open;
    const std::int64_t e = gap_.extend;
    const std::size_t n = query_.size();
    const std::size_t m = db.size();

    AlignResult res;
    res.approach = Approach::Scalar;
    res.isa = Isa::Emul;
    res.lanes = 1;
    res.bits = 32;
    res.stats.columns = m;
    res.stats.cells = n * m;

    // Degenerate inputs: the alignment is all-gaps or empty.
    if (n == 0 || m == 0) {
      return detail::degenerate_result<C>(res, n, m, gap_, ends_);
    }

    // Previous column's H and E, indexed by query row.
    for (std::size_t r = 0; r < n; ++r) {
      h_[r] = detail::col_boundary<C>(static_cast<std::int64_t>(r) + 1, gap_, ends_);
      e_[r] = kNegInf;
    }

    std::int64_t best = kNegInf;
    std::int32_t best_r = -1;
    std::int32_t best_j = -1;
    if constexpr (C == AlignClass::Local) best = 0;

    for (std::size_t j = 0; j < m; ++j) {
      const std::span<const std::int8_t> wrow = matrix_->row(db[j]);
      std::int64_t hdiag =
          (j == 0) ? 0
                   : detail::row_boundary<C>(static_cast<std::int64_t>(j), gap_, ends_);
      std::int64_t f = kNegInf;
      std::int64_t hup =
          detail::row_boundary<C>(static_cast<std::int64_t>(j) + 1, gap_, ends_);

      for (std::size_t r = 0; r < n; ++r) {
        const std::int64_t eval = std::max(e_[r], h_[r] - o) - e;
        f = std::max(f, hup - o) - e;
        std::int64_t h = hdiag + wrow[query_[r]];
        h = std::max({h, eval, f});
        if constexpr (C == AlignClass::Local) {
          h = std::max<std::int64_t>(h, 0);
          if (h > best) {
            best = h;
            best_r = static_cast<std::int32_t>(r);
            best_j = static_cast<std::int32_t>(j);
          }
        }
        hdiag = h_[r];
        hup = h;
        h_[r] = h;
        e_[r] = eval;
      }

      if constexpr (C == AlignClass::SemiGlobal) {
        // Last row: alignment may end here when trailing database residues
        // are free (free_query_end).
        if (ends_.free_query_end && h_[n - 1] > best) {
          best = h_[n - 1];
          best_r = static_cast<std::int32_t>(n - 1);
          best_j = static_cast<std::int32_t>(j);
        }
      }
    }

    if constexpr (C == AlignClass::Global) {
      best = h_[n - 1];
      best_r = static_cast<std::int32_t>(n - 1);
      best_j = static_cast<std::int32_t>(m - 1);
    } else if constexpr (C == AlignClass::SemiGlobal) {
      // Both sequences fully consumed is always admissible.
      if (h_[n - 1] > best) {
        best = h_[n - 1];
        best_r = static_cast<std::int32_t>(n - 1);
        best_j = static_cast<std::int32_t>(m - 1);
      }
      // Last column: alignment may end here when trailing query residues are
      // free (free_db_end).
      if (ends_.free_db_end) {
        for (std::size_t r = 0; r < n; ++r) {
          if (h_[r] > best) {
            best = h_[r];
            best_r = static_cast<std::int32_t>(r);
            best_j = static_cast<std::int32_t>(m - 1);
          }
        }
      }
      // Boundary endpoints: the alignment may consume no database residues
      // (cell H[n][0]) or no query residues (cell H[0][m]) when the matching
      // end is free.
      if (ends_.free_query_end) {
        const std::int64_t b =
            detail::col_boundary<C>(static_cast<std::int64_t>(n), gap_, ends_);
        if (b > best) {
          best = b;
          best_r = static_cast<std::int32_t>(n) - 1;
          best_j = -1;
        }
      }
      if (ends_.free_db_end) {
        const std::int64_t b =
            detail::row_boundary<C>(static_cast<std::int64_t>(m), gap_, ends_);
        if (b > best) {
          best = b;
          best_r = -1;
          best_j = static_cast<std::int32_t>(m) - 1;
        }
      }
    }

    res.score = static_cast<std::int32_t>(best);
    res.query_end = best_r;
    res.db_end = best_j;
    return res;
  }

 private:
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  SemiGlobalEnds ends_;
  std::vector<std::uint8_t> query_;
  std::vector<std::int64_t> h_;
  std::vector<std::int64_t> e_;
};

/// A recovered optimal alignment (scalar traceback engine).
struct Traceback {
  std::int32_t score = 0;
  // 0-based, inclusive coordinates of the aligned region.
  std::int32_t query_begin = 0, query_end = -1;
  std::int32_t db_begin = 0, db_end = -1;
  std::string aligned_query;  ///< Query residues with '-' for gaps.
  std::string aligned_db;     ///< Database residues with '-' for gaps.
  std::string midline;        ///< '|' match, '+' positive score, ' ' otherwise.
  std::string cigar;          ///< M (pair), D (gap in db), I (gap in query).
  std::size_t matches = 0, mismatches = 0, gap_cols = 0;

  /// Fraction of alignment columns that are identical residues.
  [[nodiscard]] double identity() const noexcept {
    const std::size_t len = aligned_query.size();
    return len == 0 ? 0.0 : static_cast<double>(matches) / static_cast<double>(len);
  }
};

/// Full-table alignment with traceback. Memory is O(n*m); throws
/// valign::Error when the table would exceed `max_cells`. `ends` is honoured
/// for AlignClass::SemiGlobal only.
[[nodiscard]] Traceback align_traceback(AlignClass klass, const ScoreMatrix& matrix,
                                        GapPenalty gap, const Sequence& query,
                                        const Sequence& db,
                                        SemiGlobalEnds ends = {},
                                        std::size_t max_cells = std::size_t{1} << 28);

/// Convenience: score-only scalar alignment without engine reuse.
[[nodiscard]] AlignResult align_scalar(AlignClass klass, const ScoreMatrix& matrix,
                                       GapPenalty gap,
                                       std::span<const std::uint8_t> query,
                                       std::span<const std::uint8_t> db);

}  // namespace valign
