// Public alignment API: runtime selection of class, approach, ISA and element
// width, with automatic overflow retry at wider elements.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "valign/common.hpp"
#include "valign/core/prescribe.hpp"
#include "valign/core/scan.hpp"  // HscanKind
#include "valign/io/sequence.hpp"
#include "valign/matrices/matrix.hpp"
#include "valign/obs/query_trace.hpp"

namespace valign {

namespace runtime {
class EngineCache;
struct EngineCacheStats;
}  // namespace runtime

/// Options controlling a dispatched alignment.
struct Options {
  AlignClass klass = AlignClass::Local;
  /// Auto applies the paper's Table IV decision (prescribe()).
  Approach approach = Approach::Auto;
  /// Auto picks the widest ISA the CPU supports.
  Isa isa = Isa::Auto;
  /// Auto starts at the narrowest element width that is provably safe for
  /// the inputs and scoring scheme, retrying wider on overflow.
  ElemWidth width = ElemWidth::Auto;
  const ScoreMatrix* matrix = nullptr;  ///< Defaults to BLOSUM62.
  /// Negative-open sentinel means "use the matrix's NCBI default penalties".
  GapPenalty gap{-1, -1};
  HscanKind hscan = HscanKind::Linear;
  /// Lane count when isa == Emul (one of 4, 8, 16, 32, 64).
  int emul_lanes = 16;
  /// Free-end-gap configuration for AlignClass::SemiGlobal (ignored
  /// otherwise). Only Scalar/Striped/Scan honour non-default settings.
  SemiGlobalEnds sg_ends{};
  /// Decision table consulted by Approach::Auto. Null = the measured
  /// three-engine EngineModel::pinned() (unless `model` below overrides);
  /// point at a calibrate() result to use host-measured two-engine
  /// crossovers instead. Not owned; must outlive the Aligner.
  const struct PrescriptionTable* prescription = nullptr;
  /// Three-engine decision model consulted by Approach::Auto ahead of
  /// `prescription`. Null = prescription if set, else EngineModel::pinned().
  /// Point at a calibrate_engines() result to use host-measured crossovers.
  /// Not owned; must outlive the Aligner.
  const struct EngineModel* model = nullptr;
  /// Keep previously built engines (and their striped query profiles) alive
  /// in a runtime::EngineCache so width-retry and approach switches reuse
  /// them. Off = at most one live engine (the pre-cache behaviour).
  bool cache_engines = true;
};

namespace detail {

/// Type-erased engine behind the runtime dispatcher.
class EngineBase {
 public:
  virtual ~EngineBase() = default;
  virtual void set_query(std::span<const std::uint8_t> q) = 0;
  virtual AlignResult align(std::span<const std::uint8_t> db) = 0;
  [[nodiscard]] virtual int lanes() const noexcept = 0;
  [[nodiscard]] virtual int bits() const noexcept = 0;
  [[nodiscard]] virtual Approach approach() const noexcept = 0;
};

/// Everything needed to construct one concrete engine.
struct EngineSpec {
  AlignClass klass = AlignClass::Local;
  Approach approach = Approach::Striped;  // never Auto here
  Isa isa = Isa::Emul;                    // never Auto here
  int bits = 32;
  int emul_lanes = 16;
  const ScoreMatrix* matrix = nullptr;
  GapPenalty gap{11, 1};
  HscanKind hscan = HscanKind::Linear;
  SemiGlobalEnds sg_ends{};

  [[nodiscard]] bool operator==(const EngineSpec&) const = default;
};

// Per-ISA factories (one translation unit each, compiled with the matching
// target flags). Return nullptr for unsupported combinations.
[[nodiscard]] std::unique_ptr<EngineBase> make_engine_sse(const EngineSpec& s);
[[nodiscard]] std::unique_ptr<EngineBase> make_engine_avx2(const EngineSpec& s);
[[nodiscard]] std::unique_ptr<EngineBase> make_engine_avx512(const EngineSpec& s);
[[nodiscard]] std::unique_ptr<EngineBase> make_engine_emul(const EngineSpec& s);
[[nodiscard]] std::unique_ptr<EngineBase> make_engine_scalar(const EngineSpec& s);

[[nodiscard]] std::unique_ptr<EngineBase> make_engine(const EngineSpec& s);

/// Type-erased inter-sequence (lane-packed) batch engine: one independent
/// query x database pair per vector lane (core/interseq.hpp).
class BatchEngineBase {
 public:
  virtual ~BatchEngineBase() = default;
  virtual void set_query(std::span<const std::uint8_t> q) = 0;
  /// Aligns the current query against every sequence of `dbs`, writing
  /// results in input order (out.size() must equal dbs.size()). Saturated
  /// pairs carry `overflowed = true`; occupancy accounting goes to `stats`
  /// when non-null.
  virtual void align_batch(std::span<const std::span<const std::uint8_t>> dbs,
                           std::span<AlignResult> out,
                           InterSeqBatchStats* stats) = 0;
  [[nodiscard]] virtual int lanes() const noexcept = 0;
  [[nodiscard]] virtual int bits() const noexcept = 0;
};

// Per-ISA batch factories, mirroring the intra-task ones. `s.approach` is
// ignored (the family is always InterSeq). Return nullptr when unsupported.
[[nodiscard]] std::unique_ptr<BatchEngineBase> make_batch_engine_sse(const EngineSpec& s);
[[nodiscard]] std::unique_ptr<BatchEngineBase> make_batch_engine_avx2(const EngineSpec& s);
[[nodiscard]] std::unique_ptr<BatchEngineBase> make_batch_engine_avx512(const EngineSpec& s);
[[nodiscard]] std::unique_ptr<BatchEngineBase> make_batch_engine_emul(const EngineSpec& s);

[[nodiscard]] std::unique_ptr<BatchEngineBase> make_batch_engine(const EngineSpec& s);

}  // namespace detail

/// True when element width `bits` can represent every intermediate value of
/// aligning a query of length `qlen` against a database sequence of length
/// `dlen` under the given class and scoring scheme.
///
/// Local alignments always qualify (values are clamped at zero, so low-side
/// saturation is harmless and high-side saturation is detected at run time).
/// Global/semi-global alignments additionally require the worst-case negative
/// excursion to fit, because low-side saturation there is silent.
[[nodiscard]] bool width_is_safe(AlignClass klass, int bits, std::size_t qlen,
                                 std::size_t dlen, GapPenalty gap,
                                 const ScoreMatrix& matrix) noexcept;

/// Reusable dispatcher: resolves Options against the host CPU, acquires
/// engines lazily from a runtime::EngineCache, applies Table IV for
/// Approach::Auto, and transparently retries at a wider element width when a
/// result overflows. Engines built for earlier widths/approaches stay cached
/// (with their query profiles), so ladder retries and prescriptive approach
/// flips cost a lookup, not a reconstruction.
class Aligner {
 public:
  explicit Aligner(Options opts = {});
  ~Aligner();
  Aligner(Aligner&&) noexcept;
  Aligner& operator=(Aligner&&) noexcept;

  /// The scoring scheme in effect (Options defaults resolved).
  [[nodiscard]] const ScoreMatrix& matrix() const noexcept { return *matrix_; }
  [[nodiscard]] GapPenalty gap() const noexcept { return gap_; }
  [[nodiscard]] Isa isa() const noexcept { return isa_; }
  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  void set_query(std::span<const std::uint8_t> query);
  void set_query(const Sequence& query) { set_query(query.codes()); }

  /// Attributes subsequent width-retry trace events to this query's trace
  /// context (request-scoped tracing, obs/query_trace.hpp). Contexts travel
  /// by value; a default context records without a query id.
  void set_trace(obs::TraceContext ctx) noexcept { trace_ = ctx; }

  /// Aligns the current query against `db`. Never returns an overflowed
  /// result when width is Auto: overflow triggers a switch to the next
  /// wider element width and a re-run.
  AlignResult align(std::span<const std::uint8_t> db);
  AlignResult align(const Sequence& db) { return align(db.codes()); }

  /// Engine construction/reuse counters of the underlying cache.
  [[nodiscard]] const runtime::EngineCacheStats& cache_stats() const noexcept;

 private:
  [[nodiscard]] detail::EngineSpec make_spec(int bits, Approach approach) const;
  void acquire(int bits, Approach approach);
  [[nodiscard]] std::size_t query_len() const noexcept;

  Options opts_;
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  Isa isa_;
  std::unique_ptr<runtime::EngineCache> cache_;
  detail::EngineBase* engine_ = nullptr;  ///< Owned by cache_.
  int cur_bits_ = 0;
  Approach cur_approach_ = Approach::Auto;
  /// Local alignments cannot prove narrow widths safe up front; after an
  /// overflow re-run, stay at the widened width for this query (re-proved
  /// per query: set_query resets the floor).
  int floor_bits_ = 0;
  obs::TraceContext trace_{};  ///< Query attribution for retry events.
};

/// Batch dispatcher for the inter-sequence engine family.
///
/// Packs one query against many subjects, lane-parallel (one pair per vector
/// lane, see core/interseq.hpp). Element width is resolved per pair — the
/// narrowest provably-safe width, like Aligner — and the batch is split into
/// per-width sub-batches so one long subject never widens everyone else.
/// Pairs that saturate at run time (possible for SW and for the +rail of
/// NW/SG) are transparently re-run through the intra-task ladder (a nested
/// Aligner), so with `width == Auto` no result is ever returned overflowed.
///
/// Options are interpreted as for Aligner except `approach`, which applies
/// only to the intra-task fallback; the packed engine is always InterSeq.
class BatchAligner {
 public:
  explicit BatchAligner(Options opts = {});
  ~BatchAligner();
  BatchAligner(BatchAligner&&) noexcept;
  BatchAligner& operator=(BatchAligner&&) noexcept;

  [[nodiscard]] const ScoreMatrix& matrix() const noexcept { return *matrix_; }
  [[nodiscard]] GapPenalty gap() const noexcept { return gap_; }
  [[nodiscard]] Isa isa() const noexcept { return isa_; }
  [[nodiscard]] const Options& options() const noexcept { return opts_; }
  /// Vector lanes (= pairs in flight) at element width `bits` on this ISA.
  [[nodiscard]] int lanes(int bits) const noexcept;

  void set_query(std::span<const std::uint8_t> query);
  void set_query(const Sequence& query) { set_query(query.codes()); }

  /// Attributes saturation-fallback (and nested width-retry) trace events to
  /// this query's trace context; forwarded to the fallback Aligner.
  void set_trace(obs::TraceContext ctx) noexcept;

  /// Aligns the current query against every subject; results in input order.
  void align_batch(std::span<const std::span<const std::uint8_t>> dbs,
                   std::span<AlignResult> out);
  [[nodiscard]] std::vector<AlignResult> align_batch(
      std::span<const std::span<const std::uint8_t>> dbs);

  /// Lifetime occupancy/refill accounting of the packed kernel.
  [[nodiscard]] const InterSeqBatchStats& batch_stats() const noexcept {
    return stats_;
  }
  /// Pairs re-run through the intra-task ladder after saturating.
  [[nodiscard]] std::uint64_t fallbacks() const noexcept { return fallbacks_; }
  /// Engine construction/reuse counters of the fallback Aligner's cache.
  [[nodiscard]] const runtime::EngineCacheStats& fallback_cache_stats() const noexcept;

 private:
  [[nodiscard]] detail::BatchEngineBase* engine_for_bits(int bits);

  Options opts_;
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  Isa isa_;
  std::vector<std::uint8_t> query_;
  // One lazily built engine per element width (index log2(bits/8)).
  std::array<std::unique_ptr<detail::BatchEngineBase>, 3> engines_{};
  std::array<bool, 3> engine_has_query_{};
  Aligner fallback_;  ///< Intra-task ladder for saturated pairs.
  bool fallback_has_query_ = false;
  InterSeqBatchStats stats_{};
  std::uint64_t fallbacks_ = 0;
  obs::TraceContext trace_{};  ///< Query attribution for fallback events.
  // Scratch reused across batches (per-width gather/scatter).
  std::vector<std::span<const std::uint8_t>> sub_dbs_;
  std::vector<std::size_t> sub_index_;
  std::vector<AlignResult> sub_out_;
};

/// One-shot convenience wrapper around Aligner.
[[nodiscard]] AlignResult align(const Sequence& query, const Sequence& db,
                                const Options& opts = {});
[[nodiscard]] AlignResult align(std::span<const std::uint8_t> query,
                                std::span<const std::uint8_t> db,
                                const Options& opts = {});

}  // namespace valign
