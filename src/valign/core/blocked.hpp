// Blocked vectorized alignment (Rognes & Seeberg 2000).
//
// Vectors run parallel to the query over *contiguous* blocks of p rows
// (Fig. 1 Blocked). Within a block the vertical (F) dependency crosses every
// lane, so each block is computed optimistically and then corrected until the
// values converge — the same convergence idea as Farrar's lazy-F, but at
// block granularity, plus an exact F carry must be reduced out of every block
// for the next one. Those two costs are why Blocked trails Striped (Table I).
#pragma once

#include <span>

#include "valign/core/engine_common.hpp"
#include "valign/core/profile.hpp"

namespace valign {

template <AlignClass C, simd::SimdVec V>
class BlockedAligner {
 public:
  using T = typename V::value_type;
  static constexpr Approach kApproach = Approach::Blocked;
  static constexpr AlignClass kClass = C;
  static constexpr int kLanes = V::lanes;

  BlockedAligner(const ScoreMatrix& matrix, GapPenalty gap)
      : matrix_(&matrix), gap_(gap) {}

  void set_query(std::span<const std::uint8_t> query) {
    prof_.build(*matrix_, query, V::lanes);
    qlen_ = query.size();
    const std::size_t rows = prof_.blocks() * static_cast<std::size_t>(V::lanes);
    h0_.resize(rows);
    h1_.resize(rows);
    e_.resize(rows);
    // Ladder used by the exact carry-out reduction: lane s gets -(p-1-s)*e.
    ladder_.resize(static_cast<std::size_t>(V::lanes));
    // Decay ladder for the optimistic in-block F: lane s gets -s*e.
    ladder2_.resize(static_cast<std::size_t>(V::lanes));
    for (int s = 0; s < V::lanes; ++s) {
      ladder_[static_cast<std::size_t>(s)] = detail::clamp_to<T>(
          -static_cast<std::int64_t>(V::lanes - 1 - s) * gap_.extend);
      ladder2_[static_cast<std::size_t>(s)] =
          detail::clamp_to<T>(-static_cast<std::int64_t>(s) * gap_.extend);
    }
  }

  [[nodiscard]] std::size_t query_length() const noexcept { return qlen_; }

  AlignResult align(std::span<const std::uint8_t> db) {
    constexpr int p = V::lanes;
    const std::size_t nblocks = prof_.blocks();
    const std::size_t m = db.size();
    const std::int64_t o = gap_.open;
    const std::int64_t e = gap_.extend;
    constexpr T kNegInf = V::neg_inf;

    AlignResult res;
    res.approach = Approach::Blocked;
    res.isa = detail::isa_of<V>();
    res.lanes = p;
    res.bits = 8 * int(sizeof(T));
    res.stats.columns = m;
    res.stats.cells = m * nblocks * static_cast<std::size_t>(p);

    if (qlen_ == 0 || m == 0) {
      return detail::degenerate_result<C>(res, qlen_, m, gap_);
    }

    T* hload = h0_.data();
    T* hstore = h1_.data();
    T* earr = e_.data();
    // Contiguous layout: row r lives at index r.
    for (std::size_t b = 0; b < nblocks; ++b) {
      for (int s = 0; s < p; ++s) {
        const std::size_t r = b * static_cast<std::size_t>(p) +
                              static_cast<std::size_t>(s);
        if constexpr (C == AlignClass::Local) {
          hload[r] = 0;
        } else {
          hload[r] = (r < qlen_)
                         ? detail::edge_elem<C, T>(static_cast<std::int64_t>(r) + 1, gap_)
                         : kNegInf;
        }
        earr[r] = kNegInf;
      }
    }

    const V vGapO = V::broadcast(detail::clamp_to<T>(o));
    const V vGapE = V::broadcast(detail::clamp_to<T>(e));
    const V vGapOE = V::broadcast(detail::clamp_to<T>(o + e));
    const V vZero = V::zero();
    const V vLadder = V::load(ladder_.data());
    const V vLadder2 = V::load(ladder2_.data());
    V vMax = V::broadcast(kNegInf);
    T best = 0;
    std::int32_t best_j = -1;  // SW: column of the best score

    std::int64_t sg_best = std::numeric_limits<std::int64_t>::min();
    std::int32_t sg_best_j = -1;

    for (std::size_t j = 0; j < m; ++j) {
      const int code = db[j];
      // F entering row 0 of this column (gap opened from the top boundary).
      T fc = detail::clamp_to<T>(
          detail::edge_boundary<C>(static_cast<std::int64_t>(j) + 1, gap_) - o - e);
      const T hb = (j == 0) ? T{0}
                            : detail::edge_elem<C, T>(static_cast<std::int64_t>(j), gap_);

      for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t off = b * static_cast<std::size_t>(p);
        // Diagonal carry for lane 0 = previous column's H one row above.
        const T hdiag_fill = (b == 0) ? hb : hload[off - 1];
        const V vHp = V::load(hload + off);
        const V vHdiag = V::shift_in(vHp, hdiag_fill);
        const V vE =
            V::subs(V::max(V::load(earr + off), V::subs(vHp, vGapO)), vGapE);
        V vH = V::max(V::adds(vHdiag, V::load(prof_.block(code, b))), vE);
        if constexpr (C == AlignClass::Local) vH = V::max(vH, vZero);
        ++res.stats.main_epochs;

        // Rognes & Seeberg's SWAT optimization: for local alignment, any F
        // value <= 0 is dominated by the zero clamp, so when the incoming
        // carry cannot help and no H in the block exceeds o+e, the entire F
        // machinery (in-block resolution and the exact carry reduction) can
        // be skipped. This is the case for most blocks of an SW table and is
        // what makes Blocked several times faster than scalar.
        bool skip_f = false;
        if constexpr (C == AlignClass::Local) {
          skip_f = fc <= 0 && !V::any_gt(vH, vGapOE);
        }
        if (skip_f) {
          fc = 0;  // exact value irrelevant: any F <= 0 is clamped away
          res.stats.lazyf_hist.record(0);
        } else {
          // Bucket = relaxation rounds this block ran (always p-1 when the
          // SWAT skip does not fire; bucket 0 counts skipped blocks).
          res.stats.lazyf_hist.record(static_cast<std::uint64_t>(p - 1));
          // Optimistic F: pure extension of the carry across the block
          // (lane s sees fc - s*e).
          const V vF = V::adds(V::broadcast(fc), vLadder2);
          vH = V::max(vH, vF);
          if constexpr (C == AlignClass::Local) vH = V::max(vH, vZero);

          // In-block F resolution ("recompute until the values converge"):
          // gap openings propagate one lane per step, re-deriving openings
          // from the updated H every round. Unlike Farrar's striped lazy-F,
          // no sound early exit exists here — Blocked's base pass contains
          // no in-block open chain, so the p-1 relaxation rounds must all
          // run (this is part of why Blocked trails Striped, Table I).
          V vProp = V::subs(V::max(vF, V::subs(vH, vGapO)), vGapE);
          for (int k = 1; k < p; ++k) {
            vProp = V::shift_in(vProp, fc);
            ++res.stats.corrective_epochs;
            vH = V::max(vH, vProp);
            vProp = V::subs(V::max(vProp, V::subs(vH, vGapO)), vGapE);
          }

          // Exact F carry out of the block:
          //   F(next) = max(fc - p*e, max_s(H[s] - o - (p - s)*e)).
          const T inner = V::adds(vH, vLadder).hmax();
          const std::int64_t from_rows = std::int64_t{inner} - o - e;
          const std::int64_t from_carry =
              std::int64_t{fc} - static_cast<std::int64_t>(p) * e;
          fc = detail::clamp_to<T>(from_rows > from_carry ? from_rows : from_carry);
        }

        vMax = V::max(vMax, vH);
        vH.store(hstore + off);
        vE.store(earr + off);
      }

      if constexpr (C == AlignClass::Local) {
        const T mx = vMax.hmax();
        if (mx > best) {
          best = mx;
          best_j = static_cast<std::int32_t>(j);
        }
      }
      if constexpr (C == AlignClass::SemiGlobal) {
        const T last = hstore[qlen_ - 1];
        if (std::int64_t{last} > sg_best) {
          sg_best = last;
          sg_best_j = static_cast<std::int32_t>(j);
        }
      }
      std::swap(hload, hstore);
    }

    const T* hfinal = hload;
    if constexpr (C == AlignClass::Global) {
      res.score = hfinal[qlen_ - 1];
      res.query_end = static_cast<std::int32_t>(qlen_) - 1;
      res.db_end = static_cast<std::int32_t>(m) - 1;
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else if constexpr (C == AlignClass::SemiGlobal) {
      res.score = static_cast<std::int32_t>(sg_best);
      res.query_end = static_cast<std::int32_t>(qlen_) - 1;
      res.db_end = sg_best_j;
      for (std::size_t r = 0; r < qlen_; ++r) {
        if (std::int64_t{hfinal[r]} > res.score) {
          res.score = hfinal[r];
          res.query_end = static_cast<std::int32_t>(r);
          res.db_end = static_cast<std::int32_t>(m) - 1;
        }
      }
      // Boundary endpoints: Blocked supports only the classic all-free ends,
      // where consuming no query (H[0][m]) or no database (H[n][0]) residues
      // is admissible at score 0.
      if (res.score < 0) {
        res.score = 0;
        res.query_end = static_cast<std::int32_t>(qlen_) - 1;
        res.db_end = -1;
      }
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else {
      res.score = best;
      res.db_end = best_j;
      res.query_end = -1;  // Blocked does not track the query end.
      if (best >= simd::ElemTraits<T>::max_value) res.overflowed = true;
    }
    if constexpr (simd::ElemTraits<T>::saturating) {
      if (vMax.hmax() >= simd::ElemTraits<T>::max_value) res.overflowed = true;
    }
    return res;
  }

 private:
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  SequentialProfile<T> prof_;
  std::size_t qlen_ = 0;
  aligned_vector<T> h0_, h1_, e_, ladder_, ladder2_;
};

}  // namespace valign
