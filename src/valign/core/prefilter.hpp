// Two-stage search prescreen (docs/prefilter.md).
//
// Stage one sweeps the whole database per query through the narrow-element
// inter-sequence engine (core/interseq.hpp) running *score-only local*
// alignment with gap penalties capped into the element range. That score is
// a structural upper bound on the true score for every alignment class:
//
//   - every NW/SG path is also a Smith-Waterman candidate path whose end-gap
//     costs are non-negative, so SW >= SG >= NW under the same scheme;
//   - capping gap penalties at the element maximum only lowers path costs,
//     which is monotone non-decreasing in the score;
//   - low-side i8 saturation clamps values upward (local DP already clamps
//     at zero), and high-side saturation is detected by the engine's rail
//     check and surfaces as `overflowed`, which we translate into a forced
//     escalation — never a drop.
//
// Stage two escalates candidates best-screen-first through the existing
// intra/inter ladder and stops once the next upper bound (plus a calibrated
// non-negative margin) can no longer displace the running k-th best true
// score — so filtered top-k equals unfiltered top-k, score and tie-break
// order both. tests/differential/test_prefilter.cpp holds that property
// across classes x schemes x engines x thresholds.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "valign/common.hpp"
#include "valign/core/dispatch.hpp"

namespace valign {

/// Stage-one outcome for one (query, db) pair.
struct PrefilterVerdict {
  std::int32_t score = 0;  ///< Screen score: upper bound on the true score.
  /// The screen saturated its element type; the bound is unusable and the
  /// pair must go through full DP unconditionally.
  bool escalate = false;
};

/// Lifetime accounting for one Prefilter instance (merged across threads by
/// the drivers, published as `runtime.prefilter.*`).
struct PrefilterStats {
  std::uint64_t batches = 0;    ///< screen() calls served.
  std::uint64_t pairs = 0;      ///< Pairs screened.
  std::uint64_t saturated = 0;  ///< Pairs whose screen saturated (forced escalation).
  std::uint64_t cells = 0;      ///< DP cells spent screening.

  PrefilterStats& operator+=(const PrefilterStats& o) noexcept {
    batches += o.batches;
    pairs += o.pairs;
    saturated += o.saturated;
    cells += o.cells;
    return *this;
  }
};

/// Gap penalties for the screen: the true penalties clamped to the maximum
/// the screen's element type can represent. Capping can only lower a path's
/// cost, so the screen stays an upper bound on the true score.
[[nodiscard]] GapPenalty cap_gap_for_screen(GapPenalty gap, int bits) noexcept;

/// Score-only i8 local prescreen over the lane-packed inter-sequence engine.
///
/// Options are interpreted as for BatchAligner except `klass` and `width`,
/// which the screen fixes itself (always Local — the cross-class upper bound
/// — at the narrowest element width the resolved ISA packs: 8-bit native,
/// 16-bit under Emul, whose batch backend starts at 16).
class Prefilter {
 public:
  explicit Prefilter(const Options& opts = {});
  ~Prefilter();
  Prefilter(Prefilter&&) noexcept;
  Prefilter& operator=(Prefilter&&) noexcept;

  [[nodiscard]] const ScoreMatrix& matrix() const noexcept { return *matrix_; }
  /// The capped penalties actually used by the screen.
  [[nodiscard]] GapPenalty screen_gap() const noexcept { return screen_gap_; }
  [[nodiscard]] Isa isa() const noexcept { return isa_; }
  [[nodiscard]] int lanes() const noexcept;
  [[nodiscard]] int bits() const noexcept;
  [[nodiscard]] const PrefilterStats& stats() const noexcept { return stats_; }

  void set_query(std::span<const std::uint8_t> query);
  void set_query(const Sequence& query) { set_query(query.codes()); }

  /// Screens the current query against every subject, writing one verdict
  /// per subject in input order (out.size() must equal dbs.size()).
  /// Saturated lanes come back `escalate = true`. Hosts the
  /// "prefilter.screen" failpoint; a throw here must degrade the caller to
  /// unfiltered search for the affected block, never drop its pairs.
  void screen(std::span<const std::span<const std::uint8_t>> dbs,
              std::span<PrefilterVerdict> out);

 private:
  const ScoreMatrix* matrix_;
  GapPenalty screen_gap_;
  Isa isa_;
  std::unique_ptr<detail::BatchEngineBase> engine_;
  PrefilterStats stats_{};
  std::vector<AlignResult> scratch_;
};

/// Running k-th-best-true-score tracker for the escalation loop: a bounded
/// min-heap of the k best *true* scores seen so far for one query.
class TopKCutoff {
 public:
  explicit TopKCutoff(std::size_t k) : k_(k) {}

  void offer(std::int32_t true_score);

  /// The current k-th best true score: the displacement bar a candidate's
  /// upper bound must reach. INT64_MIN until k scores have been seen (nothing
  /// may be dropped yet); INT64_MAX when k == 0 (no hit can ever be kept, so
  /// every candidate is droppable).
  [[nodiscard]] std::int64_t cutoff() const noexcept;

  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  void reset() { heap_.clear(); }

 private:
  std::size_t k_;
  std::vector<std::int32_t> heap_;  ///< Min-heap (std::greater ordering).
};

/// Per-query candidate queue: screened pairs ordered best-upper-bound-first
/// (saturated pairs first of all), consumed in chunks by the escalation loop
/// until the cutoff proves the remainder cannot enter the top-k.
class CandidateQueue {
 public:
  /// Drops accumulated entries; keeps capacity and the dropped counter.
  void reset(std::size_t expected = 0);

  void push(std::size_t db_index, const PrefilterVerdict& v);

  /// Sorts (escalate first, then screen score descending, db index ascending
  /// for deterministic ties). Must be called once, after the last push.
  void seal();

  /// Pops up to `max_n` candidate db indices into `out`, stopping early when
  /// the best remaining candidate satisfies `upper_bound + margin < cutoff`
  /// — at which point every remaining candidate is provably outside the
  /// top-k (the queue is bound-sorted) and the queue drops them all.
  /// Returns the number of indices written.
  [[nodiscard]] std::size_t pop_chunk(std::size_t max_n, std::int64_t cutoff,
                                      std::int64_t margin,
                                      std::span<std::size_t> out);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return entries_.size() - next_;
  }
  /// Candidates eliminated without full DP (cumulative across reset()).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  struct Entry {
    /// Screen score; saturated pairs carry INT32_MAX + 1, above every
    /// representable true score, so they sort first and can never be dropped.
    std::int64_t key;
    std::size_t db_index;
  };
  std::vector<Entry> entries_;
  std::size_t next_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace valign
