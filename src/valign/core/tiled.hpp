// Tiled prefix-scan alignment for very long queries (DNA-scale).
//
// The paper's future-work proposal (§VIII): since Scan favours small query
// lengths, partition the problem into query-row tiles to improve cache
// utilization when aligning much longer sequences. This engine implements
// that idea on top of the Scan formulation: the query is split into tiles of
// `tile_rows` rows; each tile sweeps the whole database while its striped
// working set (H/E/Ht arrays plus the tile's query profile) stays
// cache-resident, and two per-column carry arrays connect consecutive tiles:
//
//   hc[j] = H[a-1][j]   — the previous tile's last row (feeds S diagonally),
//   dc[j] = D~[a][j]    — the exact vertical carry entering this tile's
//                         first row (Eq. 4's running max-with-decay).
//
// The Scan kernel produces both exactly: hc from the stored column and dc
// from the last lane of the pass-2 D~ register, because in the striped
// layout that lane's final value is D~ at the row one past the tile.
//
// Supports Global (NW) and Local (SW) alignment; 32-bit elements are
// recommended for DNA-scale scores.
#pragma once

#include <span>

#include "valign/core/engine_common.hpp"
#include "valign/core/profile.hpp"
#include "valign/core/scan.hpp"

namespace valign {

template <AlignClass C, simd::SimdVec V>
class TiledScanAligner {
  static_assert(C == AlignClass::Global || C == AlignClass::Local,
                "TiledScanAligner supports Global and Local alignment");

 public:
  using T = typename V::value_type;
  static constexpr Approach kApproach = Approach::Scan;
  static constexpr AlignClass kClass = C;
  static constexpr int kLanes = V::lanes;

  /// `tile_rows` is rounded up to a multiple of the lane count. The default
  /// keeps the per-tile working set (~4 arrays of tile_rows elements plus the
  /// tile profile) inside a typical 1 MiB L2 for 32-bit elements.
  TiledScanAligner(const ScoreMatrix& matrix, GapPenalty gap,
                   std::size_t tile_rows = 8192)
      : matrix_(&matrix), gap_(gap) {
    const auto p = static_cast<std::size_t>(V::lanes);
    if (tile_rows < p) tile_rows = p;
    tile_rows_ = (tile_rows + p - 1) / p * p;
  }

  void set_query(std::span<const std::uint8_t> query) {
    query_.assign(query.begin(), query.end());
  }

  [[nodiscard]] std::size_t query_length() const noexcept { return query_.size(); }
  [[nodiscard]] std::size_t tile_rows() const noexcept { return tile_rows_; }

  AlignResult align(std::span<const std::uint8_t> db) {
    constexpr int p = V::lanes;
    const std::size_t n = query_.size();
    const std::size_t m = db.size();
    const std::int64_t o = gap_.open;
    const std::int64_t e = gap_.extend;
    constexpr T kNegInf = V::neg_inf;

    AlignResult res;
    res.approach = Approach::Scan;
    res.isa = detail::isa_of<V>();
    res.lanes = p;
    res.bits = 8 * int(sizeof(T));
    res.stats.columns = m;

    if (n == 0 || m == 0) {
      return detail::degenerate_result<C>(res, n, m, gap_);
    }

    // Cross-tile carries (previous tile's last row; D~ entering this tile).
    hc_.resize(m);
    dc_.resize(m);
    hc_next_.resize(m);
    dc_next_.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      // H[-1][j] and D~[0][j] from the top boundary.
      const T hb = detail::edge_elem<C, T>(static_cast<std::int64_t>(j) + 1, gap_);
      hc_[j] = hb;
      dc_[j] = detail::clamp_to<T>(std::int64_t{hb} - e);
    }

    const V vGapO = V::broadcast(detail::clamp_to<T>(o));
    const V vGapE = V::broadcast(detail::clamp_to<T>(e));
    const V vZero = V::zero();

    T best = 0;                 // SW global best
    std::int32_t best_r = -1, best_j = -1;
    T nw_score = 0;             // NW final cell
    bool overflowed = false;

    for (std::size_t a = 0; a < n; a += tile_rows_) {
      const std::size_t rows = std::min(tile_rows_, n - a);
      const bool last_tile = (a + rows >= n);
      const std::size_t L = (rows + static_cast<std::size_t>(p) - 1) /
                            static_cast<std::size_t>(p);
      const T lane_decay = detail::clamp_to<T>(static_cast<std::int64_t>(L) * e);

      prof_.build(*matrix_, std::span(query_).subspan(a, rows), p);
      const std::size_t vecs = L * static_cast<std::size_t>(p);
      h0_.resize(vecs);
      h1_.resize(vecs);
      earr_.resize(vecs);
      htarr_.resize(vecs);
      T* hload = h0_.data();
      T* hstore = h1_.data();
      detail::init_striped_column<C, T>(hload, earr_.data(), L, p, rows, gap_, {}, a);

      V vMax = V::broadcast(kNegInf);
      detail::LocalBest<V> lb;
      if constexpr (C == AlignClass::Local) lb.prepare(L);

      for (std::size_t j = 0; j < m; ++j) {
        const int code = db[j];
        // Diagonal fill: H[a-1][j-1] from the carry (or the corner/edge).
        T hb_prev;
        if (j == 0) {
          hb_prev = (a == 0) ? T{0}
                             : detail::edge_elem<C, T>(static_cast<std::int64_t>(a),
                                                       gap_);
        } else {
          hb_prev = hc_[j - 1];
        }
        V vHdiag =
            V::shift_in(V::load(hload + (L - 1) * static_cast<std::size_t>(p)), hb_prev);
        V vA = V::broadcast(kNegInf);

        // Pass 1: E, T-tilde, per-lane aggregate.
        for (std::size_t t = 0; t < L; ++t) {
          const std::size_t off = t * static_cast<std::size_t>(p);
          const V vHp = V::load(hload + off);
          const V vE =
              V::subs(V::max(V::load(earr_.data() + off), V::subs(vHp, vGapO)), vGapE);
          V vHt = V::max(V::adds(vHdiag, V::load(prof_.epoch(code, t))), vE);
          if constexpr (C == AlignClass::Local) vHt = V::max(vHt, vZero);
          vE.store(earr_.data() + off);
          vHt.store(htarr_.data() + off);
          vA = V::max(V::subs(vA, vGapE), vHt);
          vHdiag = vHp;
        }

        // Horizontal scan; lane 0 carries the exact D~ from the tile above.
        const T fill = detail::clamp_to<T>(std::int64_t{dc_[j]} + e);
        const V cand = V::subs(V::shift_in(vA, fill), vGapE);
        const V vB = simd::hscan_max_decay_linear(cand, lane_decay);
        res.stats.hscan_steps += static_cast<std::uint64_t>(p - 1);

        // Pass 2: finalize T; vDt's last lane becomes the next tile's carry.
        V vDt = vB;
        for (std::size_t t = 0; t < L; ++t) {
          const std::size_t off = t * static_cast<std::size_t>(p);
          const V vHt = V::load(htarr_.data() + off);
          const V vH = V::max(vHt, V::subs(vDt, vGapO));
          vMax = V::max(vMax, vH);
          vH.store(hstore + off);
          vDt = V::subs(V::max(vDt, vHt), vGapE);
        }
        res.stats.main_epochs += 2 * L;

        if constexpr (C == AlignClass::Local) {
          lb.end_column(vMax, hstore, L, static_cast<std::int32_t>(j));
        }
        if (!last_tile) {
          hc_next_[j] = detail::striped_get(hstore, L, p, rows - 1);
          dc_next_[j] = vDt.last();
        }
        std::swap(hload, hstore);
      }
      res.stats.cells += m * vecs;

      if constexpr (C == AlignClass::Local) {
        AlignResult tile_res;
        lb.finish(tile_res, L, rows);
        if (tile_res.score > best) {
          best = static_cast<T>(tile_res.score);
          best_r = tile_res.query_end +
                   static_cast<std::int32_t>(a);
          best_j = tile_res.db_end;
        }
        overflowed |= tile_res.overflowed;
      } else if (last_tile) {
        nw_score = detail::striped_get(hload, L, p, (n - 1) - a);
      }
      if constexpr (simd::ElemTraits<T>::saturating) {
        if (vMax.hmax() >= simd::ElemTraits<T>::max_value) overflowed = true;
      }

      std::swap(hc_, hc_next_);
      std::swap(dc_, dc_next_);
    }

    if constexpr (C == AlignClass::Local) {
      res.score = best;
      res.query_end = best_r;
      res.db_end = best_j;
    } else {
      res.score = nw_score;
      res.query_end = static_cast<std::int32_t>(n) - 1;
      res.db_end = static_cast<std::int32_t>(m) - 1;
      overflowed |= detail::answer_hit_rails<T>(res.score);
    }
    res.overflowed = overflowed;
    return res;
  }

 private:
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  std::size_t tile_rows_;
  std::vector<std::uint8_t> query_;
  StripedProfile<T> prof_;
  aligned_vector<T> h0_, h1_, earr_, htarr_;
  std::vector<T> hc_, dc_, hc_next_, dc_next_;
};

}  // namespace valign
