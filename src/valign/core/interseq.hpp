// Inter-sequence (lane-packed) alignment: one independent query x database
// pair per vector lane.
//
// Every engine elsewhere in core/ vectorizes *within* one DP matrix, so the
// cross-lane part of the vertical dependency costs corrective passes
// (Striped's lazy-F) or an extra scan pass (Scan), and short queries waste
// lanes on stripe padding. Here the vector dimension runs across *pairs*:
// all lanes share one query, each lane sweeps its own database sequence, and
// the DP recurrence is executed exactly like the scalar kernel — row by row
// down the column — but for `lanes` matrices at once. There is no cross-lane
// dependency at all, so every column is a single unconditional pass (the
// SWIPE / Rognes-2011 inter-task formulation), which is the highest-GCUPS
// layout for many-short-pair database search.
//
// Layout: work rows are row-major [query_row][lane]; lane l of row r holds
// H[r][j_l - 1] of pair l, where j_l is the lane's *local* column. Lanes
// advance in lockstep but are at unrelated local columns: when a lane's
// sequence ends, its result is extracted and the lane is refilled from the
// pending queue (its H/E stripes reset to the first-column boundary), so
// occupancy stays high even when batch sizes are not multiples of the lane
// count.
//
// Substitution scores: the kernel needs W(query[r], db_l[j_l]) — a per-lane
// matrix column. A per-column "column profile" CP[c][l] = W(c, db_l[j_l]) is
// gathered from a transposed matrix copy whenever a lane's residue changes;
// the row loop then issues one aligned vector load per row (CP[query[r]]).
// The gather costs O(alphabet x lanes) scalar work per column, amortized
// over `qlen x lanes` DP cells.
//
// Saturation: detection is per lane (running column max against the +rail,
// final score against both rails), so one hot pair never forces the whole
// batch to a wider element type — the dispatcher re-runs just that pair
// through the intra-task ladder (see BatchAligner in core/dispatch.hpp).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <span>

#include "valign/core/engine_common.hpp"
#include "valign/matrices/matrix.hpp"
#include "valign/robust/failpoint.hpp"

namespace valign {

template <AlignClass C, simd::SimdVec V>
class InterSeqAligner {
 public:
  using T = typename V::value_type;
  static constexpr Approach kApproach = Approach::InterSeq;
  static constexpr AlignClass kClass = C;
  static constexpr int kLanes = V::lanes;

  /// `ends` configures free end gaps; honoured when C == SemiGlobal.
  InterSeqAligner(const ScoreMatrix& matrix, GapPenalty gap,
                  SemiGlobalEnds ends = {})
      : matrix_(&matrix), gap_(gap), ends_(ends), alpha_(matrix.size()) {
    // Transposed matrix copy: trans_[d * alpha + c] = W(c, d), so one lane's
    // column-profile refresh reads a contiguous row.
    trans_.resize(static_cast<std::size_t>(alpha_) * static_cast<std::size_t>(alpha_));
    for (int c = 0; c < alpha_; ++c) {
      const std::span<const std::int8_t> row = matrix.row(c);
      for (int d = 0; d < alpha_; ++d) {
        trans_[static_cast<std::size_t>(d) * static_cast<std::size_t>(alpha_) +
               static_cast<std::size_t>(c)] = row[d];
      }
    }
  }

  void set_query(std::span<const std::uint8_t> query) {
    query_.assign(query.begin(), query.end());
    n_ = query.size();
    constexpr auto p = static_cast<std::size_t>(V::lanes);
    h_.resize(std::max<std::size_t>(n_, 1) * p);
    e_.resize(std::max<std::size_t>(n_, 1) * p);
    colprof_.resize(static_cast<std::size_t>(alpha_) * p);
    boundary_row_.resize(2 * p);
    colmax_.resize(p);
    assert(reinterpret_cast<std::uintptr_t>(colprof_.data()) %
               aligned_vector<T>::kAlignment == 0 &&
           "column profile must start on a cache line");
    for (std::size_t i = 0; i < colprof_.size(); ++i) colprof_[i] = 0;
  }

  [[nodiscard]] std::size_t query_length() const noexcept { return n_; }

  /// Aligns the current query against every sequence of `dbs`, writing
  /// results in input order to `out` (out.size() must equal dbs.size()).
  /// Per-lane occupancy/refill accounting is accumulated into `bstats` when
  /// non-null. Results that saturated their element type carry
  /// `overflowed = true`, exactly like the intra-task engines.
  void align_batch(std::span<const std::span<const std::uint8_t>> dbs,
                   std::span<AlignResult> out,
                   InterSeqBatchStats* bstats = nullptr) {
    assert(out.size() == dbs.size());
    constexpr int p = V::lanes;
    constexpr auto sp = static_cast<std::size_t>(p);
    constexpr T kNegInf = simd::ElemTraits<T>::neg_inf;

    // Result skeletons + degenerate pairs (empty query and/or subject).
    std::size_t runnable = 0;
    for (std::size_t i = 0; i < dbs.size(); ++i) {
      AlignResult res;
      res.approach = Approach::InterSeq;
      res.isa = detail::isa_of<V>();
      res.lanes = p;
      res.bits = 8 * int(sizeof(T));
      res.stats.columns = dbs[i].size();
      res.stats.cells = n_ * dbs[i].size();
      if (n_ == 0 || dbs[i].empty()) {
        out[i] = detail::degenerate_result<C>(res, n_, dbs[i].size(), gap_, ends_);
      } else {
        out[i] = res;
        ++runnable;
      }
    }
    if (runnable == 0) return;
    if (bstats != nullptr) bstats->pairs += runnable;

    // Whole-array init: every lane starts at the first-column boundary, so
    // idle lanes (runnable < p) compute on well-defined values.
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t l = 0; l < sp; ++l) {
        h_[r * sp + l] = first_col_value(r);
        e_[r * sp + l] = kNegInf;
      }
    }
    for (std::size_t i = 0; i < boundary_row_.size(); ++i) boundary_row_[i] = 0;

    // Lane packing: fill each lane with the next runnable pair.
    std::array<Lane, static_cast<std::size_t>(V::lanes)> lanes{};
    std::size_t next = 0;
    int active = 0;
    for (int l = 0; l < p; ++l) {
      next = skip_degenerate(dbs, next);
      if (next >= dbs.size()) break;
      load_lane(lanes[static_cast<std::size_t>(l)], dbs, next++);
      ++active;
    }

    const V vGapO = V::broadcast(detail::clamp_to<T>(gap_.open));
    const V vGapE = V::broadcast(detail::clamp_to<T>(gap_.extend));
    const V vNegInf = V::broadcast(kNegInf);
    const V vZero = V::zero();

    // The top boundary H[-1][j] is zero for SW and for SG with a free query
    // begin; only then can the per-column boundary fill be skipped.
    const bool zero_top = (C == AlignClass::Local) ||
                          (C == AlignClass::SemiGlobal && ends_.free_query_begin);
    // Track per-lane column maxima when any consumer needs them: the SW best
    // tracker, or rail detection on saturating element types.
    constexpr bool kTrackColMax =
        (C == AlignClass::Local) || simd::ElemTraits<T>::saturating;

    T* hdiag_row = boundary_row_.data();
    T* hup_row = boundary_row_.data() + sp;

    while (active > 0) {
      // --- per-lane column prep (scalar, O(lanes)) -------------------------
      for (int l = 0; l < p; ++l) {
        Lane& ln = lanes[static_cast<std::size_t>(l)];
        if (!ln.live) continue;
        const std::uint8_t code = ln.db[ln.j];
        if (code != ln.cur_code) {
          refresh_profile_lane(static_cast<std::size_t>(l), code);
          ln.cur_code = code;
        }
        if (!zero_top) {
          hdiag_row[l] = (ln.j == 0)
                             ? T{0}
                             : detail::row_edge_elem<C, T>(
                                   static_cast<std::int64_t>(ln.j), gap_, ends_);
          hup_row[l] = detail::row_edge_elem<C, T>(
              static_cast<std::int64_t>(ln.j) + 1, gap_, ends_);
        }
      }
      V vHdiag = zero_top ? vZero : V::load(hdiag_row);
      V vHup = zero_top ? vZero : V::load(hup_row);
      V vF = vNegInf;
      V vColMax = vNegInf;

      // --- the column: scalar recurrence, lanes-wide -----------------------
      for (std::size_t r = 0; r < n_; ++r) {
        const std::size_t off = r * sp;
        const V vW = V::load(colprof_.data() +
                             static_cast<std::size_t>(query_[r]) * sp);
        const V vHp = V::load(h_.data() + off);
        const V vE =
            V::subs(V::max(V::load(e_.data() + off), V::subs(vHp, vGapO)), vGapE);
        vF = V::subs(V::max(vF, V::subs(vHup, vGapO)), vGapE);
        V vH = V::adds(vHdiag, vW);
        vH = V::max(vH, vE);
        vH = V::max(vH, vF);
        if constexpr (C == AlignClass::Local) vH = V::max(vH, vZero);
        if constexpr (kTrackColMax) vColMax = V::max(vColMax, vH);
        vH.store(h_.data() + off);
        vE.store(e_.data() + off);
        vHdiag = vHp;
        vHup = vH;
      }

      if (bstats != nullptr) {
        ++bstats->column_steps;
        bstats->lane_steps += static_cast<std::uint64_t>(active);
        bstats->lane_capacity_steps += static_cast<std::uint64_t>(p);
        bstats->vector_epochs += n_;
      }
      if constexpr (kTrackColMax) vColMax.store(colmax_.data());

      // --- per-lane bookkeeping (scalar, O(lanes)) -------------------------
      for (int l = 0; l < p; ++l) {
        Lane& ln = lanes[static_cast<std::size_t>(l)];
        if (!ln.live) continue;
        const auto sl = static_cast<std::size_t>(l);
        ++ln.j;
        if constexpr (simd::ElemTraits<T>::saturating) {
          if (colmax_[sl] >= simd::ElemTraits<T>::max_value) ln.railed = true;
        }
        if constexpr (C == AlignClass::Local) {
          if (colmax_[sl] > ln.best) {
            ln.best = colmax_[sl];
            ln.best_j = static_cast<std::int32_t>(ln.j) - 1;
            ln.best_r = find_row(sl, ln.best);
          }
        }
        if constexpr (C == AlignClass::SemiGlobal) {
          if (ends_.free_query_end) {
            const std::int64_t last = h_[(n_ - 1) * sp + sl];
            if (last > ln.sg_best) {
              ln.sg_best = last;
              ln.sg_best_j = static_cast<std::int32_t>(ln.j) - 1;
            }
          }
        }
        if (ln.j == ln.db.size()) {
          finish_lane(sl, ln, out);
          // Chaos site: report the finished pair as saturated; the caller's
          // intra-ladder fallback must reproduce the identical score.
          VALIGN_FAILPOINT("interseq.refill", out[ln.pair].overflowed = true);
          next = skip_degenerate(dbs, next);
          if (next < dbs.size()) {
            load_lane(ln, dbs, next++);
            reset_lane_column(sl);
            if (bstats != nullptr) ++bstats->refills;
          } else {
            ln.live = false;
            --active;
          }
        }
      }
    }
  }

 private:
  struct Lane {
    std::span<const std::uint8_t> db{};
    std::size_t pair = 0;  ///< Index into the batch's dbs/out arrays.
    std::size_t j = 0;     ///< Local column (next db residue to consume).
    bool live = false;
    bool railed = false;         ///< Column max touched the +rail.
    std::uint8_t cur_code = 0;   ///< Residue the column profile holds.
    // SW best tracker (scalar tie-breaks: earliest column, then earliest row).
    T best = 0;
    std::int32_t best_j = -1;
    std::int32_t best_r = -1;
    // SG running best over the last query row.
    std::int64_t sg_best = std::numeric_limits<std::int64_t>::min() / 2;
    std::int32_t sg_best_j = -1;
  };

  [[nodiscard]] T first_col_value(std::size_t r) const noexcept {
    if constexpr (C == AlignClass::Local) {
      (void)r;
      return T{0};
    } else {
      return detail::col_edge_elem<C, T>(static_cast<std::int64_t>(r) + 1, gap_,
                                         ends_);
    }
  }

  /// Advances past pairs already answered as degenerate.
  [[nodiscard]] std::size_t skip_degenerate(
      std::span<const std::span<const std::uint8_t>> dbs,
      std::size_t i) const noexcept {
    while (i < dbs.size() && dbs[i].empty()) ++i;
    return i;
  }

  void load_lane(Lane& ln, std::span<const std::span<const std::uint8_t>> dbs,
                 std::size_t pair) noexcept {
    ln.db = dbs[pair];
    ln.pair = pair;
    ln.j = 0;
    ln.live = true;
    ln.railed = false;
    ln.best = 0;
    ln.best_j = -1;
    ln.best_r = -1;
    ln.sg_best = std::numeric_limits<std::int64_t>::min() / 2;
    ln.sg_best_j = -1;
    // Force a profile refresh on the next column (cur_code is stale).
    ln.cur_code = static_cast<std::uint8_t>(0xFF);
  }

  /// Resets one lane's H/E stripes to the first-column boundary (refill).
  void reset_lane_column(std::size_t l) noexcept {
    constexpr auto sp = static_cast<std::size_t>(V::lanes);
    constexpr T kNegInf = simd::ElemTraits<T>::neg_inf;
    for (std::size_t r = 0; r < n_; ++r) {
      h_[r * sp + l] = first_col_value(r);
      e_[r * sp + l] = kNegInf;
    }
  }

  /// Re-gathers one lane's column of the profile for db residue `code`.
  void refresh_profile_lane(std::size_t l, std::uint8_t code) noexcept {
    constexpr auto sp = static_cast<std::size_t>(V::lanes);
    const std::int8_t* row =
        trans_.data() + static_cast<std::size_t>(code) * static_cast<std::size_t>(alpha_);
    T* dst = colprof_.data() + l;
    for (int c = 0; c < alpha_; ++c) {
      dst[static_cast<std::size_t>(c) * sp] = static_cast<T>(row[c]);
    }
  }

  /// First query row holding `value` in lane `l`'s current column — the same
  /// tie-break as the scalar tracker (earliest row of the earliest column).
  [[nodiscard]] std::int32_t find_row(std::size_t l, T value) const noexcept {
    constexpr auto sp = static_cast<std::size_t>(V::lanes);
    for (std::size_t r = 0; r < n_; ++r) {
      if (h_[r * sp + l] == value) return static_cast<std::int32_t>(r);
    }
    return -1;
  }

  /// Extracts the finished lane's score/ends into its pair's result. The
  /// lane's final column is still resident in h_ (lane l of every row).
  void finish_lane(std::size_t l, const Lane& ln, std::span<AlignResult> out) {
    constexpr auto sp = static_cast<std::size_t>(V::lanes);
    AlignResult& res = out[ln.pair];
    const auto n = static_cast<std::int32_t>(n_);
    const auto m = static_cast<std::int32_t>(ln.db.size());

    if constexpr (C == AlignClass::Global) {
      const T corner = h_[(n_ - 1) * sp + l];
      res.score = corner;
      res.query_end = n - 1;
      res.db_end = m - 1;
      res.overflowed = ln.railed || detail::answer_hit_rails<T>(res.score);
    } else if constexpr (C == AlignClass::SemiGlobal) {
      // The same endgame as the scalar engine, in the same order, so ends
      // tie-break identically.
      std::int64_t best = ln.sg_best;
      std::int32_t best_r = n - 1;
      std::int32_t best_j = ln.sg_best_j;
      const std::int64_t corner = h_[(n_ - 1) * sp + l];
      if (corner > best) {
        best = corner;
        best_r = n - 1;
        best_j = m - 1;
      }
      if (ends_.free_db_end) {
        for (std::size_t r = 0; r < n_; ++r) {
          const std::int64_t v = h_[r * sp + l];
          if (v > best) {
            best = v;
            best_r = static_cast<std::int32_t>(r);
            best_j = m - 1;
          }
        }
      }
      if (ends_.free_query_end) {
        const std::int64_t b =
            detail::col_boundary<C>(static_cast<std::int64_t>(n_), gap_, ends_);
        if (b > best) {
          best = b;
          best_r = n - 1;
          best_j = -1;
        }
      }
      if (ends_.free_db_end) {
        const std::int64_t b = detail::row_boundary<C>(
            static_cast<std::int64_t>(ln.db.size()), gap_, ends_);
        if (b > best) {
          best = b;
          best_r = -1;
          best_j = m - 1;
        }
      }
      res.score = static_cast<std::int32_t>(best);
      res.query_end = best_r;
      res.db_end = best_j;
      res.overflowed = ln.railed || detail::answer_hit_rails<T>(res.score);
    } else {
      res.score = ln.best;
      res.query_end = ln.best_r;
      res.db_end = ln.best_j;
      res.overflowed = ln.railed;
    }
  }

  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  SemiGlobalEnds ends_;
  int alpha_ = 0;
  std::vector<std::int8_t> trans_;    ///< Transposed substitution scores.
  std::vector<std::uint8_t> query_;
  std::size_t n_ = 0;
  aligned_vector<T> h_, e_;           ///< Work rows, row-major [row][lane].
  aligned_vector<T> colprof_;         ///< Column profile, [code][lane].
  aligned_vector<T> boundary_row_;    ///< Per-lane H[-1][j-1] / H[-1][j].
  aligned_vector<T> colmax_;          ///< Per-lane column maxima.
};

}  // namespace valign
