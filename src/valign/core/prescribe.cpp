#include "valign/core/prescribe.hpp"

namespace valign {

namespace {

// Table IV, columns "4 Lanes / 8 Lanes / 16 Lanes".
constexpr int kCross[3][3] = {
    {149, 149, 149},  // NW
    {121, 188, 253},  // SG
    {77, 77, 152},    // SW
};

int class_row(AlignClass klass) {
  switch (klass) {
    case AlignClass::Global: return 0;
    case AlignClass::SemiGlobal: return 1;
    case AlignClass::Local: return 2;
  }
  return 2;
}

int lane_col(int lanes) {
  if (lanes <= 4) return 0;
  if (lanes <= 8) return 1;
  return 2;
}

}  // namespace

int prescribe_crossover(AlignClass klass, int lanes) noexcept {
  return kCross[class_row(klass)][lane_col(lanes)];
}

Approach prescribe(AlignClass klass, int lanes, std::size_t qlen) noexcept {
  const bool below = qlen < static_cast<std::size_t>(prescribe_crossover(klass, lanes));
  if (klass == AlignClass::Global) {
    return below ? Approach::Striped : Approach::Scan;
  }
  return below ? Approach::Scan : Approach::Striped;
}

}  // namespace valign
