// Emulated-backend engine factory: any power-of-two lane count in {4..64},
// 16- or 32-bit elements, Striped/Scan/Deconstructed only (the Blocked and
// Diagonal baselines are reached through their templates directly when
// emulation is wanted). The engines' work rows are 64-byte aligned_vectors,
// so the alignment asserts hold under VALIGN_SANITIZE here too even though
// the emulated V::load has no hardware alignment requirement.
#include "valign/core/dispatch_impl.hpp"

namespace valign::detail {

namespace {

template <class T>
std::unique_ptr<EngineBase> make_emul_t(const EngineSpec& s) {
  switch (s.emul_lanes) {
    case 4: return make_for_vec<simd::VEmul<T, 4>>(s, /*striped_scan_only=*/true);
    case 8: return make_for_vec<simd::VEmul<T, 8>>(s, true);
    case 16: return make_for_vec<simd::VEmul<T, 16>>(s, true);
    case 32: return make_for_vec<simd::VEmul<T, 32>>(s, true);
    case 64: return make_for_vec<simd::VEmul<T, 64>>(s, true);
    default: return nullptr;
  }
}

template <class T>
std::unique_ptr<BatchEngineBase> make_batch_emul_t(const EngineSpec& s) {
  switch (s.emul_lanes) {
    case 4: return make_batch_for_vec<simd::VEmul<T, 4>>(s);
    case 8: return make_batch_for_vec<simd::VEmul<T, 8>>(s);
    case 16: return make_batch_for_vec<simd::VEmul<T, 16>>(s);
    case 32: return make_batch_for_vec<simd::VEmul<T, 32>>(s);
    case 64: return make_batch_for_vec<simd::VEmul<T, 64>>(s);
    default: return nullptr;
  }
}

}  // namespace

std::unique_ptr<EngineBase> make_engine_emul(const EngineSpec& s) {
  switch (s.bits) {
    case 16: return make_emul_t<std::int16_t>(s);
    case 32: return make_emul_t<std::int32_t>(s);
    default: return nullptr;
  }
}

std::unique_ptr<BatchEngineBase> make_batch_engine_emul(const EngineSpec& s) {
  switch (s.bits) {
    case 16: return make_batch_emul_t<std::int16_t>(s);
    case 32: return make_batch_emul_t<std::int32_t>(s);
    default: return nullptr;
  }
}

}  // namespace valign::detail
