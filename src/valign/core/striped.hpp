// Striped vectorized alignment (Farrar 2007), generalized to NW/SG/SW.
//
// Vectors run parallel to the query in the striped layout (Fig. 1 Striped).
// Each column is computed once while *ignoring* the cross-lane part of the
// vertical (F) dependency, then a corrective "lazy-F" loop re-walks the
// column until the F contributions converge — at most p-1 extra passes
// (Algorithm 5). The number of corrective epochs is recorded in
// AlignStats::corrective_epochs; the paper's corrective factor C (§IV)
// derives from it.
#pragma once

#include <span>

#include "valign/core/engine_common.hpp"
#include "valign/core/profile.hpp"
#include "valign/core/profile_cache.hpp"

namespace valign {

template <AlignClass C, simd::SimdVec V>
class StripedAligner {
 public:
  using T = typename V::value_type;
  static constexpr Approach kApproach = Approach::Striped;
  static constexpr AlignClass kClass = C;
  static constexpr int kLanes = V::lanes;

  /// `ends` configures free end gaps; honoured when C == SemiGlobal.
  StripedAligner(const ScoreMatrix& matrix, GapPenalty gap,
                 SemiGlobalEnds ends = {})
      : matrix_(&matrix), gap_(gap), ends_(ends) {}

  void set_query(std::span<const std::uint8_t> query) {
    prof_ = SharedProfileCache::global().acquire<T>(*matrix_, query, V::lanes);
    qlen_ = query.size();
    const std::size_t vecs = prof_->seglen() * static_cast<std::size_t>(V::lanes);
    h0_.resize(vecs);
    h1_.resize(vecs);
    e_.resize(vecs);
  }

  [[nodiscard]] std::size_t query_length() const noexcept { return qlen_; }

  AlignResult align(std::span<const std::uint8_t> db) {
    namespace ins = instrument;
    constexpr int p = V::lanes;
    const std::size_t L = prof_ ? prof_->seglen() : 1;
    const std::size_t m = db.size();
    const std::int64_t o = gap_.open;
    const std::int64_t e = gap_.extend;

    AlignResult res;
    res.approach = Approach::Striped;
    res.isa = detail::isa_of<V>();
    res.lanes = p;
    res.bits = 8 * int(sizeof(T));
    res.stats.columns = m;
    res.stats.cells = m * L * static_cast<std::size_t>(p);

    if (qlen_ == 0 || m == 0) {
      return detail::degenerate_result<C>(res, qlen_, m, gap_, ends_);
    }

    T* hload = h0_.data();
    T* hstore = h1_.data();
    T* earr = e_.data();
    detail::init_striped_column<C, T>(hload, earr, L, p, qlen_, gap_, ends_);

    const V vGapO = V::broadcast(detail::clamp_to<T>(o));
    const V vGapE = V::broadcast(detail::clamp_to<T>(e));
    const V vNegInf = V::broadcast(V::neg_inf);
    const V vZero = V::zero();
    V vMax = vNegInf;  // +rail overflow sentinel (and the SW running best)

    detail::LocalBest<V> lb;
    if constexpr (C == AlignClass::Local) lb.prepare(L);

    // SemiGlobal: running best over the last query row across columns.
    std::int64_t sg_best = std::numeric_limits<std::int64_t>::min();
    std::int32_t sg_best_j = -1;

    for (std::size_t j = 0; j < m; ++j) {
      const int code = db[j];
      // F candidate entering row 0: open a gap from the top boundary.
      const T f0 = detail::clamp_to<T>(
          detail::row_boundary<C>(static_cast<std::int64_t>(j) + 1, gap_, ends_) - o - e);
      V vF = V::shift_in(vNegInf, f0);
      // Diagonal carry: previous column's H shifted down one row, with the
      // previous column's top boundary entering lane 0.
      const T hb = (j == 0)
                       ? T{0}
                       : detail::row_edge_elem<C, T>(static_cast<std::int64_t>(j), gap_,
                                                     ends_);
      V vHdiag = V::shift_in(V::load(hload + (L - 1) * static_cast<std::size_t>(p)), hb);

      for (std::size_t t = 0; t < L; ++t) {
        const std::size_t off = t * static_cast<std::size_t>(p);
        V vH = V::adds(vHdiag, V::load(prof_->epoch(code, t)));
        const V vHp = V::load(hload + off);
        const V vE = V::subs(V::max(V::load(earr + off), V::subs(vHp, vGapO)), vGapE);
        vH = V::max(vH, vE);
        vH = V::max(vH, vF);
        if constexpr (C == AlignClass::Local) vH = V::max(vH, vZero);
        vMax = V::max(vMax, vH);
        vH.store(hstore + off);
        vE.store(earr + off);
        vF = V::subs(V::max(vF, V::subs(vH, vGapO)), vGapE);
        vHdiag = vHp;
        ins::count_scalar<V>(ins::OpCategory::ScalarArith, 2);
        ins::count_scalar<V>(ins::OpCategory::ScalarBranch, 1);
      }
      res.stats.main_epochs += L;

      // Lazy-F corrective loop (Algorithm 5's "while F contributes").
      //
      // The convergence test is the sound form of Farrar's: compare the
      // carried F against the stored H *before* touching the row. Once no
      // lane has F > H - o, pass 1's own F chain dominates the carried one
      // at every remaining row and across lane wraps (F1[t+1] >= H1[t] - o
      // - e and F1 decays by at most e per row), so the whole loop can stop
      // — exact for any o >= 0, including o == 0. Farrar's published form
      // tests *after* the row update, comparing the next F against the row
      // just raised while H one row down may sit up to e lower; weak open
      // penalties (o <= e) fall into that e-sized hole.
      bool converged = false;
      int passes = 0;
      for (int k = 0; k < p && !converged; ++k, ++passes) {
        vF = V::shift_in(vF, f0);
        for (std::size_t t = 0; t < L; ++t) {
          const std::size_t off = t * static_cast<std::size_t>(p);
          V vH = V::load(hstore + off);
          // Loop control plus consuming the convergence mask in scalar code
          // (movemask transfer, test, conditional jump).
          ins::count_scalar<V>(ins::OpCategory::ScalarArith, 3);
          ins::count_scalar<V>(ins::OpCategory::ScalarBranch, 2);
          if (!V::any_gt(vF, V::subs(vH, vGapO))) {
            converged = true;
            break;
          }
          vH = V::max(vH, vF);
          vH.store(hstore + off);
          vMax = V::max(vMax, vH);
          ++res.stats.corrective_epochs;
          vF = V::subs(vF, vGapE);
        }
      }

      // Histogram bucket = full corrective re-walks this column needed:
      // 0 = the mandatory check pass converged (F never contributed),
      // k = k extra re-walks, p = F stayed live through every lane wrap.
      res.stats.lazyf_hist.record(
          static_cast<std::uint64_t>(converged ? passes - 1 : passes));

      if constexpr (C == AlignClass::Local) {
        lb.end_column(vMax, hstore, L, static_cast<std::int32_t>(j));
      }
      if constexpr (C == AlignClass::SemiGlobal) {
        if (ends_.free_query_end) {
          const T last = detail::striped_get(hstore, L, p, qlen_ - 1);
          ins::count_scalar<V>(ins::OpCategory::ScalarMemory, 1);
          if (std::int64_t{last} > sg_best) {
            sg_best = last;
            sg_best_j = static_cast<std::int32_t>(j);
          }
        }
      }

      std::swap(hload, hstore);
    }

    // `hload` now holds the final column (post-swap).
    const T* hfinal = hload;
    if constexpr (C == AlignClass::Global) {
      res.score = detail::striped_get(hfinal, L, p, qlen_ - 1);
      res.query_end = static_cast<std::int32_t>(qlen_) - 1;
      res.db_end = static_cast<std::int32_t>(m) - 1;
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else if constexpr (C == AlignClass::SemiGlobal) {
      // Both sequences fully consumed is always admissible.
      const T corner = detail::striped_get(hfinal, L, p, qlen_ - 1);
      if (std::int64_t{corner} > sg_best) {
        sg_best = corner;
        sg_best_j = static_cast<std::int32_t>(m) - 1;
      }
      res.score = static_cast<std::int32_t>(sg_best);
      res.query_end = static_cast<std::int32_t>(qlen_) - 1;
      res.db_end = sg_best_j;
      // Final column: admissible when trailing query residues are free.
      if (ends_.free_db_end) {
        std::int64_t col_best = std::numeric_limits<std::int64_t>::min();
        std::int32_t col_r = -1;
        for (std::size_t r = 0; r < qlen_; ++r) {
          const T v = detail::striped_get(hfinal, L, p, r);
          if (std::int64_t{v} > col_best) {
            col_best = v;
            col_r = static_cast<std::int32_t>(r);
          }
        }
        if (col_best > sg_best) {
          res.score = static_cast<std::int32_t>(col_best);
          res.query_end = col_r;
          res.db_end = static_cast<std::int32_t>(m) - 1;
        }
      }
      // Boundary endpoints: the alignment may consume no database residues
      // (cell H[n][0]) or no query residues (cell H[0][m]) when the matching
      // end is free.
      if (ends_.free_query_end) {
        const std::int64_t b = detail::col_boundary<C>(
            static_cast<std::int64_t>(qlen_), gap_, ends_);
        if (b > std::int64_t{res.score}) {
          res.score = static_cast<std::int32_t>(b);
          res.query_end = static_cast<std::int32_t>(qlen_) - 1;
          res.db_end = -1;
        }
      }
      if (ends_.free_db_end) {
        const std::int64_t b = detail::row_boundary<C>(
            static_cast<std::int64_t>(m), gap_, ends_);
        if (b > std::int64_t{res.score}) {
          res.score = static_cast<std::int32_t>(b);
          res.query_end = -1;
          res.db_end = static_cast<std::int32_t>(m) - 1;
        }
      }
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else {
      lb.finish(res, L, qlen_);
    }
    if constexpr (simd::ElemTraits<T>::saturating) {
      if (vMax.hmax() >= simd::ElemTraits<T>::max_value) res.overflowed = true;
    }
    return res;
  }

 private:
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  SemiGlobalEnds ends_;
  std::shared_ptr<const StripedProfile<T>> prof_;
  std::size_t qlen_ = 0;
  aligned_vector<T> h0_, h1_, e_;
};

}  // namespace valign
