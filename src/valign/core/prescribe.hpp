// Prescriptive algorithm choice (Table IV of the paper).
#pragma once

#include <cstddef>

#include "valign/common.hpp"

namespace valign {

/// Crossover query length between the short- and long-query regimes for the
/// given class and lane count (Table IV). Lane counts are clamped to the
/// measured 4/8/16 columns.
[[nodiscard]] int prescribe_crossover(AlignClass klass, int lanes) noexcept;

/// The paper's decision table: which of Striped/Scan to use for a query of
/// length `qlen` at `lanes` vector lanes.
///
///   NW: Striped below the crossover, Scan above.
///   SG/SW: Scan below the crossover, Striped above.
[[nodiscard]] Approach prescribe(AlignClass klass, int lanes, std::size_t qlen) noexcept;

}  // namespace valign
