#include "valign/core/scalar.hpp"

#include <limits>

namespace valign {

AlignResult align_scalar(AlignClass klass, const ScoreMatrix& matrix, GapPenalty gap,
                         std::span<const std::uint8_t> query,
                         std::span<const std::uint8_t> db) {
  switch (klass) {
    case AlignClass::Global: {
      ScalarAligner<AlignClass::Global> a(matrix, gap);
      a.set_query(query);
      return a.align(db);
    }
    case AlignClass::SemiGlobal: {
      ScalarAligner<AlignClass::SemiGlobal> a(matrix, gap);
      a.set_query(query);
      return a.align(db);
    }
    case AlignClass::Local: {
      ScalarAligner<AlignClass::Local> a(matrix, gap);
      a.set_query(query);
      return a.align(db);
    }
  }
  throw Error("align_scalar: bad alignment class");
}

namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int32_t>::min() / 2;

std::int64_t col_edge(AlignClass klass, std::int64_t index_plus_1, GapPenalty gap,
                      const SemiGlobalEnds& ends) {
  switch (klass) {
    case AlignClass::Global:
      return detail::col_boundary<AlignClass::Global>(index_plus_1, gap, ends);
    case AlignClass::SemiGlobal:
      return detail::col_boundary<AlignClass::SemiGlobal>(index_plus_1, gap, ends);
    case AlignClass::Local:
      return 0;
  }
  return 0;
}

std::int64_t row_edge(AlignClass klass, std::int64_t index_plus_1, GapPenalty gap,
                      const SemiGlobalEnds& ends) {
  switch (klass) {
    case AlignClass::Global:
      return detail::row_boundary<AlignClass::Global>(index_plus_1, gap, ends);
    case AlignClass::SemiGlobal:
      return detail::row_boundary<AlignClass::SemiGlobal>(index_plus_1, gap, ends);
    case AlignClass::Local:
      return 0;
  }
  return 0;
}

/// Run-length encode a reversed op string into CIGAR form.
std::string to_cigar(const std::string& ops) {
  std::string out;
  std::size_t i = 0;
  while (i < ops.size()) {
    std::size_t j = i;
    while (j < ops.size() && ops[j] == ops[i]) ++j;
    out += std::to_string(j - i);
    out += ops[i];
    i = j;
  }
  return out;
}

}  // namespace

Traceback align_traceback(AlignClass klass, const ScoreMatrix& matrix, GapPenalty gap,
                          const Sequence& query, const Sequence& db,
                          SemiGlobalEnds ends, std::size_t max_cells) {
  const std::size_t n = query.size();
  const std::size_t m = db.size();
  const std::size_t rows = n + 1;
  const std::size_t cols = m + 1;
  if (rows * cols > max_cells) {
    throw Error("align_traceback: table of " + std::to_string(rows * cols) +
                " cells exceeds limit " + std::to_string(max_cells));
  }

  const std::int64_t o = gap.open;
  const std::int64_t e = gap.extend;
  auto q = query.codes();
  auto d = db.codes();

  std::vector<std::int64_t> H(rows * cols), E(rows * cols), F(rows * cols);
  auto at = [cols](std::size_t r, std::size_t j) { return r * cols + j; };

  H[at(0, 0)] = 0;
  E[at(0, 0)] = kNegInf;
  F[at(0, 0)] = kNegInf;
  for (std::size_t r = 1; r < rows; ++r) {
    H[at(r, 0)] = col_edge(klass, static_cast<std::int64_t>(r), gap, ends);
    E[at(r, 0)] = kNegInf;
    F[at(r, 0)] = kNegInf;
  }
  for (std::size_t j = 1; j < cols; ++j) {
    H[at(0, j)] = row_edge(klass, static_cast<std::int64_t>(j), gap, ends);
    E[at(0, j)] = kNegInf;
    F[at(0, j)] = kNegInf;
  }

  std::int64_t best = (klass == AlignClass::Local) ? 0 : kNegInf;
  std::size_t best_r = 0, best_j = 0;  // padded coords

  for (std::size_t j = 1; j < cols; ++j) {
    const std::span<const std::int8_t> wrow = matrix.row(d[j - 1]);
    for (std::size_t r = 1; r < rows; ++r) {
      const std::int64_t ev = std::max(E[at(r, j - 1)], H[at(r, j - 1)] - o) - e;
      const std::int64_t fv = std::max(F[at(r - 1, j)], H[at(r - 1, j)] - o) - e;
      std::int64_t hv = H[at(r - 1, j - 1)] + wrow[q[r - 1]];
      hv = std::max({hv, ev, fv});
      if (klass == AlignClass::Local) hv = std::max<std::int64_t>(hv, 0);
      E[at(r, j)] = ev;
      F[at(r, j)] = fv;
      H[at(r, j)] = hv;
      const bool sg_admissible =
          (r == rows - 1 && ends.free_query_end) ||
          (j == cols - 1 && ends.free_db_end);
      if ((klass == AlignClass::Local ||
           (klass == AlignClass::SemiGlobal && sg_admissible)) &&
          hv > best) {
        best = hv;
        best_r = r;
        best_j = j;
      }
    }
  }

  if (klass == AlignClass::Global) {
    best = H[at(n, m)];
    best_r = n;
    best_j = m;
  }
  if (klass == AlignClass::SemiGlobal) {
    // Both sequences fully consumed is always admissible (this also covers
    // empty inputs, whose score is the corner boundary value).
    if (H[at(n, m)] > best) {
      best = H[at(n, m)];
      best_r = n;
      best_j = m;
    }
    // Boundary endpoints: no database consumed / no query consumed.
    if (ends.free_query_end && H[at(n, 0)] > best) {
      best = H[at(n, 0)];
      best_r = n;
      best_j = 0;
    }
    if (ends.free_db_end && H[at(0, m)] > best) {
      best = H[at(0, m)];
      best_r = 0;
      best_j = m;
    }
  }

  Traceback tb;
  tb.score = static_cast<std::int32_t>(best);
  tb.query_end = static_cast<std::int32_t>(best_r) - 1;
  tb.db_end = static_cast<std::int32_t>(best_j) - 1;

  // Walk back emitting ops (in reverse): M pair, D gap-in-db, I gap-in-query.
  std::string ops;
  enum class State { H, E, F };
  State st = State::H;
  std::size_t r = best_r, j = best_j;

  auto at_start = [&] {
    if (klass == AlignClass::Local) return st == State::H && H[at(r, j)] == 0;
    if (r == 0 && j == 0) return true;
    if (klass == AlignClass::SemiGlobal) {
      if (r == 0 && ends.free_query_begin) return true;
      if (j == 0 && ends.free_db_begin) return true;
    }
    return false;
  };

  while (!at_start()) {
    if (klass != AlignClass::Local && st == State::H && (r == 0 || j == 0)) {
      // Penalized boundary gaps (global alignment, or a semi-global variant
      // whose begin is pinned).
      while (j > 0) { ops += 'I'; --j; }
      while (r > 0) { ops += 'D'; --r; }
      break;
    }
    switch (st) {
      case State::H: {
        const std::int64_t hv = H[at(r, j)];
        const std::int64_t diag =
            H[at(r - 1, j - 1)] + matrix.score(d[j - 1], q[r - 1]);
        if (hv == diag) {
          ops += 'M';
          --r;
          --j;
        } else if (hv == E[at(r, j)]) {
          st = State::E;
        } else if (hv == F[at(r, j)]) {
          st = State::F;
        } else {
          throw Error("align_traceback: inconsistent H cell");
        }
        break;
      }
      case State::E: {
        ops += 'I';
        const std::int64_t ev = E[at(r, j)];
        st = (ev == E[at(r, j - 1)] - e) ? State::E : State::H;
        --j;
        break;
      }
      case State::F: {
        ops += 'D';
        const std::int64_t fv = F[at(r, j)];
        st = (fv == F[at(r - 1, j)] - e) ? State::F : State::H;
        --r;
        break;
      }
    }
  }

  tb.query_begin = static_cast<std::int32_t>(r);
  tb.db_begin = static_cast<std::int32_t>(j);

  std::reverse(ops.begin(), ops.end());
  tb.cigar = to_cigar(ops);

  // Render the alignment strings.
  std::size_t qi = r, dj = j;
  const Alphabet& qa = query.alphabet();
  const Alphabet& da = db.alphabet();
  tb.aligned_query.reserve(ops.size());
  tb.aligned_db.reserve(ops.size());
  tb.midline.reserve(ops.size());
  for (char op : ops) {
    switch (op) {
      case 'M': {
        const char qc = qa.decode(q[qi]);
        const char dc = da.decode(d[dj]);
        tb.aligned_query += qc;
        tb.aligned_db += dc;
        if (qc == dc) {
          tb.midline += '|';
          ++tb.matches;
        } else if (matrix.score(q[qi], d[dj]) > 0) {
          tb.midline += '+';
          ++tb.mismatches;
        } else {
          tb.midline += ' ';
          ++tb.mismatches;
        }
        ++qi;
        ++dj;
        break;
      }
      case 'D':
        tb.aligned_query += qa.decode(q[qi]);
        tb.aligned_db += '-';
        tb.midline += ' ';
        ++tb.gap_cols;
        ++qi;
        break;
      case 'I':
        tb.aligned_query += '-';
        tb.aligned_db += da.decode(d[dj]);
        tb.midline += ' ';
        ++tb.gap_cols;
        ++dj;
        break;
      default:
        throw Error("align_traceback: bad op");
    }
  }

  return tb;
}

}  // namespace valign
