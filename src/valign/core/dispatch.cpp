#include "valign/core/dispatch.hpp"

#include "valign/core/calibrate.hpp"
#include "valign/core/dispatch_impl.hpp"
#include "valign/robust/failpoint.hpp"
#include "valign/runtime/engine_cache.hpp"
#include "valign/simd/arch.hpp"

namespace valign {

namespace detail {

std::unique_ptr<EngineBase> make_engine_scalar(const EngineSpec& s) {
  switch (s.klass) {
    case AlignClass::Global:
      return std::make_unique<ScalarHolder<AlignClass::Global>>(
          ScalarAligner<AlignClass::Global>(*s.matrix, s.gap));
    case AlignClass::SemiGlobal:
      return std::make_unique<ScalarHolder<AlignClass::SemiGlobal>>(
          ScalarAligner<AlignClass::SemiGlobal>(*s.matrix, s.gap, s.sg_ends));
    case AlignClass::Local:
      return std::make_unique<ScalarHolder<AlignClass::Local>>(
          ScalarAligner<AlignClass::Local>(*s.matrix, s.gap));
  }
  return nullptr;
}

std::unique_ptr<EngineBase> make_engine(const EngineSpec& s) {
  if (s.matrix == nullptr) throw Error("make_engine: no substitution matrix");
  if (s.approach == Approach::Scalar) return make_engine_scalar(s);
  std::unique_ptr<EngineBase> eng;
  switch (s.isa) {
    case Isa::SSE41: eng = make_engine_sse(s); break;
    case Isa::AVX2: eng = make_engine_avx2(s); break;
    case Isa::AVX512: eng = make_engine_avx512(s); break;
    case Isa::Emul: eng = make_engine_emul(s); break;
    case Isa::Auto: break;
  }
  if (!eng) {
    throw Error(std::string("make_engine: unsupported combination (") +
                to_string(s.klass) + "/" + to_string(s.approach) + "/" +
                to_string(s.isa) + "/" + std::to_string(s.bits) + "-bit)");
  }
  return eng;
}

std::unique_ptr<BatchEngineBase> make_batch_engine(const EngineSpec& s) {
  if (s.matrix == nullptr) throw Error("make_batch_engine: no substitution matrix");
  std::unique_ptr<BatchEngineBase> eng;
  switch (s.isa) {
    case Isa::SSE41: eng = make_batch_engine_sse(s); break;
    case Isa::AVX2: eng = make_batch_engine_avx2(s); break;
    case Isa::AVX512: eng = make_batch_engine_avx512(s); break;
    case Isa::Emul: eng = make_batch_engine_emul(s); break;
    case Isa::Auto: break;
  }
  if (!eng) {
    throw Error(std::string("make_batch_engine: unsupported combination (") +
                to_string(s.klass) + "/interseq/" + to_string(s.isa) + "/" +
                std::to_string(s.bits) + "-bit)");
  }
  return eng;
}

}  // namespace detail

bool width_is_safe(AlignClass klass, int bits, std::size_t qlen, std::size_t dlen,
                   GapPenalty gap, const ScoreMatrix& matrix) noexcept {
  if (bits >= 32) return true;
  if (bits != 8 && bits != 16) return false;
  if (klass == AlignClass::Local) {
    // Values are clamped at zero: low-side saturation is dominated and
    // high-side saturation is detected at run time (rail check).
    return true;
  }
  // NW/SG: the silent failure mode is low-side saturation of a value that
  // should later recover. Require the worst-case negative excursion to fit.
  const std::int64_t min_value = -(std::int64_t{1} << (bits - 1));
  const std::int64_t worst_step =
      std::max<std::int64_t>(gap.extend, -std::int64_t{matrix.min_score()});
  const std::int64_t excursion =
      2 * std::int64_t{gap.open} +
      static_cast<std::int64_t>(qlen + dlen) * worst_step;
  return excursion <= -(min_value + 2);
}

Aligner::Aligner(Options opts) : opts_(opts) {
  matrix_ = opts.matrix ? opts.matrix : &ScoreMatrix::blosum62();
  gap_ = (opts.gap.open < 0 || opts.gap.extend < 0) ? matrix_->default_gaps()
                                                    : opts.gap;
  isa_ = (opts.isa == Isa::Auto) ? simd::best_isa() : opts.isa;
  if (!simd::isa_available(isa_)) {
    throw Error(std::string("Aligner: ISA not available on this CPU: ") +
                to_string(isa_));
  }
  cache_ = std::make_unique<runtime::EngineCache>(
      opts.cache_engines ? runtime::EngineCache::kDefaultCapacity : 1);
}

Aligner::~Aligner() = default;
Aligner::Aligner(Aligner&&) noexcept = default;
Aligner& Aligner::operator=(Aligner&&) noexcept = default;

const runtime::EngineCacheStats& Aligner::cache_stats() const noexcept {
  return cache_->stats();
}

std::size_t Aligner::query_len() const noexcept { return cache_->query().size(); }

detail::EngineSpec Aligner::make_spec(int bits, Approach approach) const {
  detail::EngineSpec spec;
  spec.klass = opts_.klass;
  spec.approach = approach;
  spec.isa = isa_;
  spec.bits = bits;
  spec.emul_lanes = opts_.emul_lanes;
  spec.matrix = matrix_;
  spec.gap = gap_;
  spec.hscan = opts_.hscan;
  spec.sg_ends = opts_.sg_ends;
  return spec;
}

void Aligner::acquire(int bits, Approach approach) {
  engine_ = cache_->acquire(make_spec(bits, approach));
  cur_bits_ = bits;
  cur_approach_ = approach;
}

void Aligner::set_query(std::span<const std::uint8_t> query) {
  cache_->set_query(query);
  // Stale profile: re-acquire (and lazily re-profile) on the next align().
  engine_ = nullptr;
  // A new query gets to re-prove narrow widths for itself.
  floor_bits_ = 0;
}

AlignResult Aligner::align(std::span<const std::uint8_t> db) {
  // Resolve the element width for this problem instance.
  int bits = elem_bits(opts_.width);
  if (bits == 0) {
    // Auto: narrowest safe width. For NW/SG the check is a proof, so the
    // width may narrow again for shorter subjects (the engine cache makes
    // that switch free); for SW narrow widths are only falsified at run time,
    // so stay at the widened floor once an overflow has been observed.
    bits = 8;
    while (bits < 32 &&
           !width_is_safe(opts_.klass, bits, query_len(), db.size(), gap_, *matrix_)) {
      bits *= 2;
    }
    if (bits < floor_bits_) bits = floor_bits_;
    // The emulated backend only supports 16/32-bit elements.
    if (isa_ == Isa::Emul && bits < 16) bits = 16;
  }

  // Resolve the approach when Auto: injected three-engine model, then an
  // injected two-engine prescription table, then the pinned measured model.
  Approach approach = opts_.approach;
  if (approach == Approach::Auto) {
    const int lanes = (isa_ == Isa::Emul) ? opts_.emul_lanes
                                          : simd::native_lanes(isa_, bits);
    approach = opts_.model ? opts_.model->choose(opts_.klass, lanes, query_len())
               : opts_.prescription
                   ? opts_.prescription->choose(opts_.klass, lanes, query_len())
                   : EngineModel::pinned().choose(opts_.klass, lanes, query_len());
  }

  if (engine_ == nullptr || bits != cur_bits_ || approach != cur_approach_) {
    acquire(bits, approach);
  }

  AlignResult res = engine_->align(db);
  // Chaos site: pretend the element type saturated so the ladder takes one
  // extra (score-preserving) widen-and-retry step.
  VALIGN_FAILPOINT("dispatch.ladder",
                   if (opts_.width == ElemWidth::Auto && cur_bits_ < 32) {
                     res.overflowed = true;
                   });
  // Overflow retry ladder (only when the user left the width to us).
  while (res.overflowed && opts_.width == ElemWidth::Auto && cur_bits_ < 32) {
    const int wider = cur_bits_ * 2;
    if (opts_.approach == Approach::Auto) {
      const int lanes = (isa_ == Isa::Emul) ? opts_.emul_lanes
                                            : simd::native_lanes(isa_, wider);
      approach = opts_.model
                     ? opts_.model->choose(opts_.klass, lanes, query_len())
                 : opts_.prescription
                     ? opts_.prescription->choose(opts_.klass, lanes, query_len())
                     : EngineModel::pinned().choose(opts_.klass, lanes,
                                                    query_len());
    }
    acquire(wider, approach);
    floor_bits_ = wider;
    // Timeline: one instant per widen-and-retry step (a0 = new width).
    trace_.instant(obs::TraceEventKind::Retry, static_cast<std::uint32_t>(wider));
    res = engine_->align(db);
  }
  // Census of the resolved engine; folds into driver totals through
  // AlignStats::operator+= (run report: engine.approaches).
  ++res.stats.approach_counts[static_cast<std::size_t>(res.approach)];
  return res;
}

BatchAligner::BatchAligner(Options opts) : opts_(opts), fallback_(opts) {
  matrix_ = opts.matrix ? opts.matrix : &ScoreMatrix::blosum62();
  gap_ = (opts.gap.open < 0 || opts.gap.extend < 0) ? matrix_->default_gaps()
                                                    : opts.gap;
  isa_ = (opts.isa == Isa::Auto) ? simd::best_isa() : opts.isa;
  if (!simd::isa_available(isa_)) {
    throw Error(std::string("BatchAligner: ISA not available on this CPU: ") +
                to_string(isa_));
  }
}

BatchAligner::~BatchAligner() = default;
BatchAligner::BatchAligner(BatchAligner&&) noexcept = default;
BatchAligner& BatchAligner::operator=(BatchAligner&&) noexcept = default;

int BatchAligner::lanes(int bits) const noexcept {
  return (isa_ == Isa::Emul) ? opts_.emul_lanes : simd::native_lanes(isa_, bits);
}

const runtime::EngineCacheStats& BatchAligner::fallback_cache_stats() const noexcept {
  return fallback_.cache_stats();
}

void BatchAligner::set_trace(obs::TraceContext ctx) noexcept {
  trace_ = ctx;
  fallback_.set_trace(ctx);
}

void BatchAligner::set_query(std::span<const std::uint8_t> query) {
  query_.assign(query.begin(), query.end());
  engine_has_query_.fill(false);
  fallback_has_query_ = false;
}

detail::BatchEngineBase* BatchAligner::engine_for_bits(int bits) {
  const std::size_t slot = bits == 8 ? 0 : bits == 16 ? 1 : 2;
  if (!engines_[slot]) {
    detail::EngineSpec spec;
    spec.klass = opts_.klass;
    spec.approach = Approach::InterSeq;
    spec.isa = isa_;
    spec.bits = bits;
    spec.emul_lanes = opts_.emul_lanes;
    spec.matrix = matrix_;
    spec.gap = gap_;
    spec.sg_ends = opts_.sg_ends;
    engines_[slot] = detail::make_batch_engine(spec);
    engine_has_query_[slot] = false;
  }
  if (!engine_has_query_[slot]) {
    engines_[slot]->set_query(query_);
    engine_has_query_[slot] = true;
  }
  return engines_[slot].get();
}

void BatchAligner::align_batch(std::span<const std::span<const std::uint8_t>> dbs,
                               std::span<AlignResult> out) {
  if (out.size() != dbs.size()) {
    throw Error("BatchAligner::align_batch: output size mismatch");
  }
  ++stats_.batches;

  // Resolve the element width per pair — the narrowest provably safe one,
  // exactly like Aligner — then run one packed sub-batch per width so one
  // long subject never widens the whole batch.
  const int fixed_bits = elem_bits(opts_.width);
  for (int bits : {8, 16, 32}) {
    sub_dbs_.clear();
    sub_index_.clear();
    for (std::size_t i = 0; i < dbs.size(); ++i) {
      int b = fixed_bits;
      if (b == 0) {
        b = 8;
        while (b < 32 &&
               !width_is_safe(opts_.klass, b, query_.size(), dbs[i].size(), gap_,
                              *matrix_)) {
          b *= 2;
        }
        if (isa_ == Isa::Emul && b < 16) b = 16;
      }
      if (b == bits) {
        sub_dbs_.push_back(dbs[i]);
        sub_index_.push_back(i);
      }
    }
    if (sub_dbs_.empty()) continue;
    sub_out_.resize(sub_dbs_.size());
    engine_for_bits(bits)->align_batch(sub_dbs_, sub_out_, &stats_);
    for (std::size_t k = 0; k < sub_index_.size(); ++k) {
      out[sub_index_[k]] = sub_out_[k];
      // Packed-engine census; a pair later re-run through the intra ladder
      // is overwritten wholesale, so its count moves with it.
      ++out[sub_index_[k]].stats.approach_counts[static_cast<std::size_t>(
          out[sub_index_[k]].approach)];
    }
  }

  // Saturated pairs: re-run through the intra-task ladder (which never
  // returns an overflowed result when the width is Auto).
  if (opts_.width != ElemWidth::Auto) return;
  for (std::size_t i = 0; i < dbs.size(); ++i) {
    if (!out[i].overflowed) continue;
    if (!fallback_has_query_) {
      fallback_.set_query(query_);
      fallback_has_query_ = true;
    }
    // Timeline: one instant per saturated pair re-run through the intra
    // ladder (a0 = pair index within the batch).
    trace_.instant(obs::TraceEventKind::Fallback, static_cast<std::uint32_t>(i));
    out[i] = fallback_.align(dbs[i]);
    ++fallbacks_;
  }
}

std::vector<AlignResult> BatchAligner::align_batch(
    std::span<const std::span<const std::uint8_t>> dbs) {
  std::vector<AlignResult> out(dbs.size());
  align_batch(dbs, out);
  return out;
}

AlignResult align(const Sequence& query, const Sequence& db, const Options& opts) {
  return align(query.codes(), db.codes(), opts);
}

AlignResult align(std::span<const std::uint8_t> query,
                  std::span<const std::uint8_t> db, const Options& opts) {
  Aligner a(opts);
  a.set_query(query);
  return a.align(db);
}

}  // namespace valign
