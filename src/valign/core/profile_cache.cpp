#include "valign/core/profile_cache.hpp"

#include <cstring>

namespace valign {

ProfileCacheStats SharedProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SharedProfileCache::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  stats_ = ProfileCacheStats{};
}

SharedProfileCache& SharedProfileCache::global() {
  static SharedProfileCache cache;
  return cache;
}

std::uint64_t SharedProfileCache::hash_bytes(const void* data,
                                             std::size_t n) noexcept {
  // FNV-1a. Collisions are harmless (keys compare full content), the hash
  // only short-circuits the comparison.
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t SharedProfileCache::matrix_fingerprint(const ScoreMatrix& m) {
  std::uint64_t h = hash_bytes(m.name().data(), m.name().size());
  const int alpha = m.size();
  h ^= static_cast<std::uint64_t>(alpha) * 0x9e3779b97f4a7c15ULL;
  for (int c = 0; c < alpha; ++c) {
    const std::span<const std::int8_t> row = m.row(c);
    h ^= hash_bytes(row.data(), row.size());
    h *= 1099511628211ULL;
  }
  return h;
}

bool SharedProfileCache::spans_equal(const std::vector<std::uint8_t>& a,
                                     std::span<const std::uint8_t> b) noexcept {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

}  // namespace valign
