// Shared template machinery for the per-ISA engine factories.
// Included only by the dispatch_*.cpp translation units.
#pragma once

#include "valign/core/blocked.hpp"
#include "valign/core/deconstructed.hpp"
#include "valign/core/diagonal.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/interseq.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"

namespace valign::detail {

template <class Eng>
class EngineHolder final : public EngineBase {
 public:
  explicit EngineHolder(Eng eng) : eng_(std::move(eng)) {}

  void set_query(std::span<const std::uint8_t> q) override { eng_.set_query(q); }
  AlignResult align(std::span<const std::uint8_t> db) override { return eng_.align(db); }
  [[nodiscard]] int lanes() const noexcept override { return Eng::kLanes; }
  [[nodiscard]] int bits() const noexcept override {
    return Eng::kLanes == 1 ? 32 : 8 * int(sizeof(typename Eng::T));
  }
  [[nodiscard]] Approach approach() const noexcept override { return Eng::kApproach; }

 private:
  Eng eng_;
};

// Scalar has no vector element type; specialize bits().
template <AlignClass C>
class ScalarHolder final : public EngineBase {
 public:
  explicit ScalarHolder(ScalarAligner<C> eng) : eng_(std::move(eng)) {}
  void set_query(std::span<const std::uint8_t> q) override { eng_.set_query(q); }
  AlignResult align(std::span<const std::uint8_t> db) override { return eng_.align(db); }
  [[nodiscard]] int lanes() const noexcept override { return 1; }
  [[nodiscard]] int bits() const noexcept override { return 32; }
  [[nodiscard]] Approach approach() const noexcept override { return Approach::Scalar; }

 private:
  ScalarAligner<C> eng_;
};

/// `vector_only` disables Blocked/Diagonal (used by the emulated factory to
/// bound template bloat; those baselines are exercised through their
/// templates directly).
template <AlignClass C, simd::SimdVec V>
std::unique_ptr<EngineBase> make_for_class_vec(const EngineSpec& s, bool striped_scan_only) {
  switch (s.approach) {
    case Approach::Striped:
      return std::make_unique<EngineHolder<StripedAligner<C, V>>>(
          StripedAligner<C, V>(*s.matrix, s.gap, s.sg_ends));
    case Approach::Scan:
      return std::make_unique<EngineHolder<ScanAligner<C, V>>>(
          ScanAligner<C, V>(*s.matrix, s.gap, s.hscan, s.sg_ends));
    case Approach::Deconstructed:
      // Available in every factory, including the emulated one: like
      // Striped/Scan it honours all SemiGlobalEnds variants.
      return std::make_unique<EngineHolder<DeconstructedAligner<C, V>>>(
          DeconstructedAligner<C, V>(*s.matrix, s.gap, s.sg_ends));
    case Approach::Blocked:
      if (striped_scan_only ||
          (C == AlignClass::SemiGlobal && !s.sg_ends.all_free())) {
        return nullptr;  // Blocked implements classic all-free SG only
      }
      return std::make_unique<EngineHolder<BlockedAligner<C, V>>>(
          BlockedAligner<C, V>(*s.matrix, s.gap));
    case Approach::Diagonal:
      if (striped_scan_only ||
          (C == AlignClass::SemiGlobal && !s.sg_ends.all_free())) {
        return nullptr;  // Diagonal implements classic all-free SG only
      }
      return std::make_unique<EngineHolder<DiagonalAligner<C, V>>>(
          DiagonalAligner<C, V>(*s.matrix, s.gap));
    default:
      return nullptr;
  }
}

template <simd::SimdVec V>
std::unique_ptr<EngineBase> make_for_vec(const EngineSpec& s,
                                         bool striped_scan_only = false) {
  switch (s.klass) {
    case AlignClass::Global:
      return make_for_class_vec<AlignClass::Global, V>(s, striped_scan_only);
    case AlignClass::SemiGlobal:
      return make_for_class_vec<AlignClass::SemiGlobal, V>(s, striped_scan_only);
    case AlignClass::Local:
      return make_for_class_vec<AlignClass::Local, V>(s, striped_scan_only);
  }
  return nullptr;
}

template <template <class> class VecOf>
std::unique_ptr<EngineBase> make_native(const EngineSpec& s) {
  switch (s.bits) {
    case 8: return make_for_vec<VecOf<std::int8_t>>(s);
    case 16: return make_for_vec<VecOf<std::int16_t>>(s);
    case 32: return make_for_vec<VecOf<std::int32_t>>(s);
    default: return nullptr;
  }
}

// --- inter-sequence (batch) factory machinery ------------------------------

template <class Eng>
class BatchEngineHolder final : public BatchEngineBase {
 public:
  explicit BatchEngineHolder(Eng eng) : eng_(std::move(eng)) {}

  void set_query(std::span<const std::uint8_t> q) override { eng_.set_query(q); }
  void align_batch(std::span<const std::span<const std::uint8_t>> dbs,
                   std::span<AlignResult> out,
                   InterSeqBatchStats* stats) override {
    eng_.align_batch(dbs, out, stats);
  }
  [[nodiscard]] int lanes() const noexcept override { return Eng::kLanes; }
  [[nodiscard]] int bits() const noexcept override {
    return 8 * int(sizeof(typename Eng::T));
  }

 private:
  Eng eng_;
};

template <simd::SimdVec V>
std::unique_ptr<BatchEngineBase> make_batch_for_vec(const EngineSpec& s) {
  switch (s.klass) {
    case AlignClass::Global:
      return std::make_unique<BatchEngineHolder<InterSeqAligner<AlignClass::Global, V>>>(
          InterSeqAligner<AlignClass::Global, V>(*s.matrix, s.gap, s.sg_ends));
    case AlignClass::SemiGlobal:
      return std::make_unique<
          BatchEngineHolder<InterSeqAligner<AlignClass::SemiGlobal, V>>>(
          InterSeqAligner<AlignClass::SemiGlobal, V>(*s.matrix, s.gap, s.sg_ends));
    case AlignClass::Local:
      return std::make_unique<BatchEngineHolder<InterSeqAligner<AlignClass::Local, V>>>(
          InterSeqAligner<AlignClass::Local, V>(*s.matrix, s.gap, s.sg_ends));
  }
  return nullptr;
}

template <template <class> class VecOf>
std::unique_ptr<BatchEngineBase> make_batch_native(const EngineSpec& s) {
  switch (s.bits) {
    case 8: return make_batch_for_vec<VecOf<std::int8_t>>(s);
    case 16: return make_batch_for_vec<VecOf<std::int16_t>>(s);
    case 32: return make_batch_for_vec<VecOf<std::int32_t>>(s);
    default: return nullptr;
  }
}

}  // namespace valign::detail
