// Helpers shared by the vectorized alignment engines.
#pragma once

#include <cassert>
#include <cstring>

#include "valign/common.hpp"
#include "valign/core/scalar.hpp"  // detail::edge_boundary
#include "valign/instrument/counting_vec.hpp"
#include "valign/simd/simd.hpp"

namespace valign::detail {

/// Class-C boundary value H[r][-1] / H[-1][j], clamped into element type T
/// (classic semantics: SG = all ends free).
template <AlignClass C, class T>
[[nodiscard]] inline T edge_elem(std::int64_t index_plus_1, GapPenalty gap) noexcept {
  return clamp_to<T>(edge_boundary<C>(index_plus_1, gap));
}

/// First-column boundary H[r][-1], end-flag aware, clamped into T.
template <AlignClass C, class T>
[[nodiscard]] inline T col_edge_elem(std::int64_t index_plus_1, GapPenalty gap,
                                     const SemiGlobalEnds& ends) noexcept {
  return clamp_to<T>(col_boundary<C>(index_plus_1, gap, ends));
}

/// First-row boundary H[-1][j], end-flag aware, clamped into T.
template <AlignClass C, class T>
[[nodiscard]] inline T row_edge_elem(std::int64_t index_plus_1, GapPenalty gap,
                                     const SemiGlobalEnds& ends) noexcept {
  return clamp_to<T>(row_boundary<C>(index_plus_1, gap, ends));
}

/// Initialize the striped H array to the first-column boundary and E to
/// neg_inf. Padded rows (r >= qlen) get neg_inf for NW/SG so they stay at the
/// bottom of the range; for SW everything real starts at zero. `row_offset`
/// shifts the boundary formula for tiled processing (rows [offset, offset+…)).
template <AlignClass C, class T>
inline void init_striped_column(T* h, T* e, std::size_t seglen, int lanes,
                                std::size_t qlen, GapPenalty gap,
                                const SemiGlobalEnds& ends = {},
                                std::size_t row_offset = 0) noexcept {
  constexpr T kNegInf = simd::ElemTraits<T>::neg_inf;
  for (std::size_t t = 0; t < seglen; ++t) {
    for (int s = 0; s < lanes; ++s) {
      const std::size_t r = static_cast<std::size_t>(s) * seglen + t;
      const std::size_t i = t * static_cast<std::size_t>(lanes) +
                            static_cast<std::size_t>(s);
      if constexpr (C == AlignClass::Local) {
        h[i] = 0;
      } else {
        h[i] = (r < qlen)
                   ? col_edge_elem<C, T>(
                         static_cast<std::int64_t>(row_offset + r) + 1, gap, ends)
                   : kNegInf;
      }
      e[i] = kNegInf;
    }
  }
}

/// Value of query row r in a striped array.
template <class T>
[[nodiscard]] inline T striped_get(const T* h, std::size_t seglen, int lanes,
                                   std::size_t r) noexcept {
  const std::size_t s = r / seglen;
  const std::size_t t = r % seglen;
  return h[t * static_cast<std::size_t>(lanes) + s];
}

/// Smallest query row holding `value` in a striped array (row-major order),
/// restricted to real rows. Returns -1 when absent.
template <class T>
[[nodiscard]] inline std::int32_t striped_find_row(const T* h, std::size_t seglen,
                                                   int lanes, std::size_t qlen,
                                                   T value) noexcept {
  for (std::size_t r = 0; r < qlen; ++r) {
    if (striped_get(h, seglen, lanes, r) == value) {
      return static_cast<std::int32_t>(r);
    }
  }
  return -1;
}

/// Running best tracker for Local (SW) engines: keeps the global per-lane max
/// and snapshots the H column whenever the global maximum improves, so the
/// end position can be recovered afterwards (the parasail technique).
template <simd::SimdVec V>
struct LocalBest {
  using T = typename V::value_type;

  T best = 0;
  std::int32_t best_j = -1;
  aligned_vector<T> snapshot;

  void prepare(std::size_t seglen) {
    snapshot.resize(seglen * static_cast<std::size_t>(V::lanes));
    assert(reinterpret_cast<std::uintptr_t>(snapshot.data()) %
               aligned_vector<T>::kAlignment == 0);
    best = 0;
    best_j = -1;
  }

  /// Call after finishing column j with the engine's running max vector and
  /// the column's stored H array.
  void end_column(V vmax, const T* h, std::size_t seglen, std::int32_t j) {
    const T m = vmax.hmax();
    if (m > best) {
      best = m;
      best_j = j;
      std::memcpy(snapshot.data(), h,
                  seglen * static_cast<std::size_t>(V::lanes) * sizeof(T));
    }
  }

  /// Fill the SW portion of an AlignResult.
  void finish(AlignResult& res, std::size_t seglen, std::size_t qlen) const {
    res.score = best;
    res.db_end = best_j;
    res.query_end = (best_j >= 0)
                        ? striped_find_row(snapshot.data(), seglen, V::lanes, qlen, best)
                        : -1;
    if (best >= simd::ElemTraits<T>::max_value) res.overflowed = true;
  }
};

/// Compile-time ISA tag for a vector backend (CountingVec is transparent).
template <class V>
struct IsaOf {
  static constexpr Isa value = Isa::Emul;
};
#if defined(__SSE4_1__)
template <class T>
struct IsaOf<simd::V128<T>> {
  static constexpr Isa value = Isa::SSE41;
};
#endif
#if defined(__AVX2__)
template <class T>
struct IsaOf<simd::V256<T>> {
  static constexpr Isa value = Isa::AVX2;
};
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
template <class T>
struct IsaOf<simd::V512<T>> {
  static constexpr Isa value = Isa::AVX512;
};
#endif
template <class V>
struct IsaOf<instrument::CountingVec<V>> {
  static constexpr Isa value = IsaOf<V>::value;
};

template <class V>
[[nodiscard]] constexpr Isa isa_of() noexcept {
  return IsaOf<V>::value;
}

/// Rail check for NW/SG answers on saturating element types.
template <class T>
[[nodiscard]] inline bool answer_hit_rails(std::int64_t score) noexcept {
  if constexpr (simd::ElemTraits<T>::saturating) {
    return score >= simd::ElemTraits<T>::max_value ||
           score <= simd::ElemTraits<T>::min_value + 1;
  } else {
    (void)score;
    return false;
  }
}

}  // namespace valign::detail
