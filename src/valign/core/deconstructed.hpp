// Deconstructed lazy-F alignment (Snytsar 2019, arXiv:1909.00899),
// generalized to NW/SG/SW.
//
// Same striped layout and main pass as Farrar, but the corrective lazy-F
// loop is deconstructed: instead of re-walking the column until the F
// contributions converge (up to p-1 extra passes, branch-unpredictable),
// the cross-lane F carries are resolved *exactly* by one horizontal
// prefix-max with per-lane decay L*Gext — the same primitive the Scan
// engine uses — and at most ONE fix-up pass re-applies them:
//
//   pass 1:  Farrar's main pass, unchanged (F within-lane only);
//   hscan:   F entering lane s = max over s' <= s of carry(s') - (s-s')*L*e,
//            computed in p-1 shift/max steps from the pass-1 F carry-outs;
//   pass 2:  a single conditional walk H = max(H, F), F = F - e. Each row is
//            pre-checked with the sound convergence test (F > H - o against
//            the not-yet-updated H), so the walk stops — usually before row
//            0, i.e. the whole pass is skipped — as soon as pass 1's own F
//            chain provably dominates the carried one.
//
// Why one pass suffices: the prefix-max already accounts for every
// cross-lane path, and a gap re-opened from a cell that pass 2 itself
// improved (H == F) costs F - o - e, which extension (F - e) dominates for
// o >= 0. So unlike Farrar's loop there is nothing left to iterate on.
// Corrective work is therefore *bounded*: <= L epochs per column, recorded
// in AlignStats::prefix_hist (bucket 0 = skipped, 1 = fix-up ran) —
// Striped's unbounded lazyf_hist tail is exactly what this engine removes.
#pragma once

#include <bit>
#include <span>

#include "valign/core/engine_common.hpp"
#include "valign/core/profile.hpp"
#include "valign/core/profile_cache.hpp"
#include "valign/simd/scan_ops.hpp"

namespace valign {

template <AlignClass C, simd::SimdVec V>
class DeconstructedAligner {
 public:
  using T = typename V::value_type;
  static constexpr Approach kApproach = Approach::Deconstructed;
  static constexpr AlignClass kClass = C;
  static constexpr int kLanes = V::lanes;

  /// `ends` configures free end gaps; honoured when C == SemiGlobal.
  DeconstructedAligner(const ScoreMatrix& matrix, GapPenalty gap,
                       SemiGlobalEnds ends = {})
      : matrix_(&matrix), gap_(gap), ends_(ends) {}

  void set_query(std::span<const std::uint8_t> query) {
    prof_ = SharedProfileCache::global().acquire<T>(*matrix_, query, V::lanes);
    qlen_ = query.size();
    const std::size_t vecs = prof_->seglen() * static_cast<std::size_t>(V::lanes);
    h0_.resize(vecs);
    h1_.resize(vecs);
    e_.resize(vecs);
    assert(reinterpret_cast<std::uintptr_t>(h0_.data()) %
                   aligned_vector<T>::kAlignment == 0 &&
           reinterpret_cast<std::uintptr_t>(h1_.data()) %
                   aligned_vector<T>::kAlignment == 0 &&
           reinterpret_cast<std::uintptr_t>(e_.data()) %
                   aligned_vector<T>::kAlignment == 0 &&
           "work rows must start on a cache line for aligned vector loads");
  }

  [[nodiscard]] std::size_t query_length() const noexcept { return qlen_; }

  AlignResult align(std::span<const std::uint8_t> db) {
    namespace ins = instrument;
    constexpr int p = V::lanes;
    const std::size_t L = prof_ ? prof_->seglen() : 1;
    const std::size_t m = db.size();
    const std::int64_t o = gap_.open;
    const std::int64_t e = gap_.extend;

    AlignResult res;
    res.approach = Approach::Deconstructed;
    res.isa = detail::isa_of<V>();
    res.lanes = p;
    res.bits = 8 * int(sizeof(T));
    res.stats.columns = m;
    res.stats.cells = m * L * static_cast<std::size_t>(p);

    if (qlen_ == 0 || m == 0) {
      return detail::degenerate_result<C>(res, qlen_, m, gap_, ends_);
    }

    T* hload = h0_.data();
    T* hstore = h1_.data();
    T* earr = e_.data();
    detail::init_striped_column<C, T>(hload, earr, L, p, qlen_, gap_, ends_);

    const V vGapO = V::broadcast(detail::clamp_to<T>(o));
    const V vGapE = V::broadcast(detail::clamp_to<T>(e));
    const V vNegInf = V::broadcast(V::neg_inf);
    const V vZero = V::zero();
    V vMax = vNegInf;  // +rail overflow sentinel (and the SW running best)

    // Cross-lane decay: one lane step spans L query rows.
    const T lane_decay =
        detail::clamp_to<T>(static_cast<std::int64_t>(L) * e);

    detail::LocalBest<V> lb;
    if constexpr (C == AlignClass::Local) lb.prepare(L);

    // SemiGlobal: running best over the last query row across columns.
    std::int64_t sg_best = std::numeric_limits<std::int64_t>::min();
    std::int32_t sg_best_j = -1;

    for (std::size_t j = 0; j < m; ++j) {
      const int code = db[j];
      // F candidate entering row 0: open a gap from the top boundary.
      const T f0 = detail::clamp_to<T>(
          detail::row_boundary<C>(static_cast<std::int64_t>(j) + 1, gap_, ends_) - o - e);
      V vF = V::shift_in(vNegInf, f0);
      // Diagonal carry: previous column's H shifted down one row, with the
      // previous column's top boundary entering lane 0.
      const T hb = (j == 0)
                       ? T{0}
                       : detail::row_edge_elem<C, T>(static_cast<std::int64_t>(j), gap_,
                                                     ends_);
      V vHdiag = V::shift_in(V::load(hload + (L - 1) * static_cast<std::size_t>(p)), hb);

      // --- pass 1: Farrar's main pass, F within-lane only -----------------
      for (std::size_t t = 0; t < L; ++t) {
        const std::size_t off = t * static_cast<std::size_t>(p);
        V vH = V::adds(vHdiag, V::load(prof_->epoch(code, t)));
        const V vHp = V::load(hload + off);
        const V vE = V::subs(V::max(V::load(earr + off), V::subs(vHp, vGapO)), vGapE);
        vH = V::max(vH, vE);
        vH = V::max(vH, vF);
        if constexpr (C == AlignClass::Local) vH = V::max(vH, vZero);
        vMax = V::max(vMax, vH);
        vH.store(hstore + off);
        vE.store(earr + off);
        vF = V::subs(V::max(vF, V::subs(vH, vGapO)), vGapE);
        vHdiag = vHp;
        ins::count_scalar<V>(ins::OpCategory::ScalarArith, 2);
        ins::count_scalar<V>(ins::OpCategory::ScalarBranch, 1);
      }
      res.stats.main_epochs += L;

      // --- hscan: resolve the cross-lane F carries exactly ----------------
      // vF now holds each lane's carry-out past its last row; shifted up one
      // lane (with the top-boundary candidate entering lane 0) these are the
      // row-0 entry candidates, and the decaying prefix-max folds in every
      // multi-lane extension path.
      // Blelloch doubling: lg(p) shift/subs/max steps, not the paper's p-1
      // linear walk — on 32/64-lane registers this is the difference between
      // the hscan being noise and being a second pass of its own.
      const V vFin =
          simd::hscan_max_decay_log(V::shift_in(vF, f0), lane_decay);
      const auto hsteps = static_cast<std::uint64_t>(
          std::bit_width(static_cast<unsigned>(p - 1)));
      res.stats.hscan_steps += hsteps;
      res.stats.hscan_hist.record(hsteps);
      ins::count_scalar<V>(ins::OpCategory::ScalarArith, hsteps);
      ins::count_scalar<V>(ins::OpCategory::ScalarBranch, hsteps);

      // --- pass 2: one conditional fix-up walk ----------------------------
      // The row test is the sound form of Farrar's convergence test: compare
      // the carried F against the stored H *before* touching the row. Once no
      // lane has F > H - o, pass 1's own F chain dominates the carried one at
      // every remaining row (F1[t+1] >= H1[t] - o - e and F1 decays by at
      // most e per row, so F[t'] <= F1[t'] <= H1[t'] for all t' beyond the
      // test), and stopping is exact for any o >= 0 — no o == 0 caveat.
      // Testing *after* the row update (Farrar's published form) compares the
      // next F against the row just raised, while H one row down may sit up
      // to e lower: weak open penalties (o <= e) fall into that hole.
      std::uint64_t walked = 0;
      vF = vFin;
      for (std::size_t t = 0; t < L; ++t) {
        const std::size_t off = t * static_cast<std::size_t>(p);
        V vH = V::load(hstore + off);
        ins::count_scalar<V>(ins::OpCategory::ScalarArith, 3);
        ins::count_scalar<V>(ins::OpCategory::ScalarBranch, 2);
        if (!V::any_gt(vF, V::subs(vH, vGapO))) break;
        ++walked;
        vH = V::max(vH, vF);
        vH.store(hstore + off);
        vMax = V::max(vMax, vH);
        ++res.stats.corrective_epochs;
        vF = V::subs(vF, vGapE);
      }
      res.stats.prefix_hist.record(walked);

      if constexpr (C == AlignClass::Local) {
        lb.end_column(vMax, hstore, L, static_cast<std::int32_t>(j));
      }
      if constexpr (C == AlignClass::SemiGlobal) {
        if (ends_.free_query_end) {
          const T last = detail::striped_get(hstore, L, p, qlen_ - 1);
          ins::count_scalar<V>(ins::OpCategory::ScalarMemory, 1);
          if (std::int64_t{last} > sg_best) {
            sg_best = last;
            sg_best_j = static_cast<std::int32_t>(j);
          }
        }
      }

      std::swap(hload, hstore);
    }

    // `hload` now holds the final column (post-swap).
    const T* hfinal = hload;
    if constexpr (C == AlignClass::Global) {
      res.score = detail::striped_get(hfinal, L, p, qlen_ - 1);
      res.query_end = static_cast<std::int32_t>(qlen_) - 1;
      res.db_end = static_cast<std::int32_t>(m) - 1;
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else if constexpr (C == AlignClass::SemiGlobal) {
      // Both sequences fully consumed is always admissible.
      const T corner = detail::striped_get(hfinal, L, p, qlen_ - 1);
      if (std::int64_t{corner} > sg_best) {
        sg_best = corner;
        sg_best_j = static_cast<std::int32_t>(m) - 1;
      }
      res.score = static_cast<std::int32_t>(sg_best);
      res.query_end = static_cast<std::int32_t>(qlen_) - 1;
      res.db_end = sg_best_j;
      // Final column: admissible when trailing query residues are free.
      if (ends_.free_db_end) {
        std::int64_t col_best = std::numeric_limits<std::int64_t>::min();
        std::int32_t col_r = -1;
        for (std::size_t r = 0; r < qlen_; ++r) {
          const T v = detail::striped_get(hfinal, L, p, r);
          if (std::int64_t{v} > col_best) {
            col_best = v;
            col_r = static_cast<std::int32_t>(r);
          }
        }
        if (col_best > sg_best) {
          res.score = static_cast<std::int32_t>(col_best);
          res.query_end = col_r;
          res.db_end = static_cast<std::int32_t>(m) - 1;
        }
      }
      // Boundary endpoints: the alignment may consume no database residues
      // (cell H[n][0]) or no query residues (cell H[0][m]) when the matching
      // end is free.
      if (ends_.free_query_end) {
        const std::int64_t b = detail::col_boundary<C>(
            static_cast<std::int64_t>(qlen_), gap_, ends_);
        if (b > std::int64_t{res.score}) {
          res.score = static_cast<std::int32_t>(b);
          res.query_end = static_cast<std::int32_t>(qlen_) - 1;
          res.db_end = -1;
        }
      }
      if (ends_.free_db_end) {
        const std::int64_t b = detail::row_boundary<C>(
            static_cast<std::int64_t>(m), gap_, ends_);
        if (b > std::int64_t{res.score}) {
          res.score = static_cast<std::int32_t>(b);
          res.query_end = -1;
          res.db_end = static_cast<std::int32_t>(m) - 1;
        }
      }
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else {
      lb.finish(res, L, qlen_);
    }
    if constexpr (simd::ElemTraits<T>::saturating) {
      if (vMax.hmax() >= simd::ElemTraits<T>::max_value) res.overflowed = true;
    }
    return res;
  }

 private:
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  SemiGlobalEnds ends_;
  std::shared_ptr<const StripedProfile<T>> prof_;
  std::size_t qlen_ = 0;
  aligned_vector<T> h0_, h1_, e_;
};

}  // namespace valign
