// Query profiles: substitution scores pre-gathered per query residue.
//
// Both Striped and Scan consume the same striped layout (Farrar 2007): for a
// vector of p lanes and segment length L = ceil(n/p), lane s of epoch t holds
// query row r = s*L + t. The profile stores, for every database residue code
// c, the vector sequence W(query[s*L+t], c) for t = 0..L-1.
//
// Rows beyond the query length ("padding", the light-gray cells of Fig. 1)
// score the element type's neg_inf so padded cells can never contaminate real
// ones (they saturate/clamp low for NW/SG and clamp to zero for SW).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "valign/common.hpp"
#include "valign/matrices/matrix.hpp"
#include "valign/simd/vec_traits.hpp"

namespace valign {

/// Striped query profile for element type T.
template <class T>
class StripedProfile {
 public:
  /// Alphabets at or below this size (2-bit nucleotide codes) take the fused
  /// single-walk build; see build().
  static constexpr int kFastAlphabet = 4;

  StripedProfile() = default;

  void build(const ScoreMatrix& matrix, std::span<const std::uint8_t> query,
             int lanes) {
    lanes_ = lanes;
    qlen_ = query.size();
    seglen_ = (qlen_ + static_cast<std::size_t>(lanes) - 1) /
              static_cast<std::size_t>(lanes);
    if (seglen_ == 0) seglen_ = 1;  // keep one (fully padded) epoch for n==0
    alpha_ = matrix.size();
    const std::size_t per_code = seglen_ * static_cast<std::size_t>(lanes);
    buf_.resize(per_code * static_cast<std::size_t>(alpha_));
    assert(reinterpret_cast<std::uintptr_t>(buf_.data()) %
               aligned_vector<T>::kAlignment == 0 &&
           "query profile must start on a cache line");
    constexpr T pad = simd::ElemTraits<T>::neg_inf;
    fast_ = alpha_ <= kFastAlphabet;
    if (fast_) {
      // Small-alphabet (2-bit DNA) path: one walk over the striped cells,
      // filling all residue-code planes per cell, instead of one full walk
      // per code. The query lookup, bounds test and index arithmetic are
      // amortized across the alphabet — for a 4-letter matrix the dominant
      // per-cell work drops 4x.
      T* base = buf_.data();
      for (std::size_t t = 0; t < seglen_; ++t) {
        for (int s = 0; s < lanes; ++s) {
          const std::size_t r = static_cast<std::size_t>(s) * seglen_ + t;
          const std::size_t cell =
              t * static_cast<std::size_t>(lanes) + static_cast<std::size_t>(s);
          if (r < qlen_) {
            const std::uint8_t q = query[r];
            for (int c = 0; c < alpha_; ++c) {
              base[static_cast<std::size_t>(c) * per_code + cell] =
                  static_cast<T>(matrix.row(c)[q]);
            }
          } else {
            for (int c = 0; c < alpha_; ++c) {
              base[static_cast<std::size_t>(c) * per_code + cell] = pad;
            }
          }
        }
      }
      return;
    }
    for (int c = 0; c < alpha_; ++c) {
      const std::span<const std::int8_t> row = matrix.row(c);
      T* dst = buf_.data() + static_cast<std::size_t>(c) * per_code;
      for (std::size_t t = 0; t < seglen_; ++t) {
        for (int s = 0; s < lanes; ++s) {
          const std::size_t r = static_cast<std::size_t>(s) * seglen_ + t;
          dst[t * static_cast<std::size_t>(lanes) + static_cast<std::size_t>(s)] =
              (r < qlen_) ? static_cast<T>(row[query[r]]) : pad;
        }
      }
    }
  }

  /// Pointer to epoch `t`'s vector for database residue code `c`.
  [[nodiscard]] const T* epoch(int c, std::size_t t) const noexcept {
    return buf_.data() +
           (static_cast<std::size_t>(c) * seglen_ + t) * static_cast<std::size_t>(lanes_);
  }

  [[nodiscard]] int lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t seglen() const noexcept { return seglen_; }
  [[nodiscard]] std::size_t query_length() const noexcept { return qlen_; }
  /// True when the last build() took the small-alphabet fused path.
  [[nodiscard]] bool built_fast() const noexcept { return fast_; }

 private:
  aligned_vector<T> buf_;
  int lanes_ = 0;
  int alpha_ = 0;
  std::size_t seglen_ = 0;
  std::size_t qlen_ = 0;
  bool fast_ = false;
};

/// Sequential (blocked-layout) query profile: lane s of block b holds query
/// row b*lanes + s. Used by the Blocked engine (Rognes & Seeberg 2000).
template <class T>
class SequentialProfile {
 public:
  SequentialProfile() = default;

  void build(const ScoreMatrix& matrix, std::span<const std::uint8_t> query,
             int lanes) {
    lanes_ = lanes;
    qlen_ = query.size();
    blocks_ = (qlen_ + static_cast<std::size_t>(lanes) - 1) /
              static_cast<std::size_t>(lanes);
    if (blocks_ == 0) blocks_ = 1;
    alpha_ = matrix.size();
    const std::size_t per_code = blocks_ * static_cast<std::size_t>(lanes);
    buf_.resize(per_code * static_cast<std::size_t>(alpha_));
    constexpr T pad = simd::ElemTraits<T>::neg_inf;
    for (int c = 0; c < alpha_; ++c) {
      const std::span<const std::int8_t> row = matrix.row(c);
      T* dst = buf_.data() + static_cast<std::size_t>(c) * per_code;
      for (std::size_t r = 0; r < per_code; ++r) {
        dst[r] = (r < qlen_) ? static_cast<T>(row[query[r]]) : pad;
      }
    }
  }

  /// Pointer to block `b`'s vector for database residue code `c`.
  [[nodiscard]] const T* block(int c, std::size_t b) const noexcept {
    return buf_.data() +
           (static_cast<std::size_t>(c) * blocks_ + b) * static_cast<std::size_t>(lanes_);
  }

  [[nodiscard]] int lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::size_t query_length() const noexcept { return qlen_; }

 private:
  aligned_vector<T> buf_;
  int lanes_ = 0;
  int alpha_ = 0;
  std::size_t blocks_ = 0;
  std::size_t qlen_ = 0;
};

}  // namespace valign
