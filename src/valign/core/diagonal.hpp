// Diagonal vectorized alignment (Wozniak 1997).
//
// Vectors run along the anti-diagonal inside strips of p database columns
// (Fig. 1 Diagonal). Cells on one anti-diagonal are independent — their
// inputs come from the two previous diagonals — so no corrective pass is
// needed. The costs are the per-cell gather of substitution scores (the
// "irregular memory access" §III calls out) and the padded cells at the
// strip edges; both keep Diagonal well behind Striped (Table I).
//
// Implementation notes: diagonal state lives in registers and is spilled to
// (small, cache-resident) arrays only on boundary diagonals that need lane
// patching, plus one store per diagonal to expose the strip's last column
// for the next strip's carries.
#pragma once

#include <array>
#include <span>

#include "valign/core/engine_common.hpp"

namespace valign {

template <AlignClass C, simd::SimdVec V>
class DiagonalAligner {
 public:
  using T = typename V::value_type;
  static constexpr Approach kApproach = Approach::Diagonal;
  static constexpr AlignClass kClass = C;
  static constexpr int kLanes = V::lanes;

  DiagonalAligner(const ScoreMatrix& matrix, GapPenalty gap)
      : matrix_(&matrix), gap_(gap) {}

  void set_query(std::span<const std::uint8_t> query) {
    query_.assign(query.begin(), query.end());
    const std::size_t n = query_.size();
    hc_.resize(n + 1);
    ec_.resize(n + 1);
    fincol_.resize(n + 1);
    constexpr std::size_t p = static_cast<std::size_t>(V::lanes);
    for (auto* buf : {&hbuf_, &ebuf_, &fbuf_, &w_}) buf->resize(p);
  }

  [[nodiscard]] std::size_t query_length() const noexcept { return query_.size(); }

  AlignResult align(std::span<const std::uint8_t> db) {
    constexpr int p = V::lanes;
    const std::size_t n = query_.size();
    const std::size_t m = db.size();
    const std::int64_t o = gap_.open;
    const std::int64_t e = gap_.extend;
    constexpr T kNegInf = V::neg_inf;

    AlignResult res;
    res.approach = Approach::Diagonal;
    res.isa = detail::isa_of<V>();
    res.lanes = p;
    res.bits = 8 * int(sizeof(T));
    res.stats.columns = m;

    if (n == 0 || m == 0) {
      return detail::degenerate_result<C>(res, n, m, gap_);
    }

    // Carries from the column left of the current strip.
    for (std::size_t i = 0; i < n; ++i) {
      hc_[i] = (C == AlignClass::Local)
                   ? T{0}
                   : detail::edge_elem<C, T>(static_cast<std::int64_t>(i) + 1, gap_);
      ec_[i] = kNegInf;
    }

    const V vGapO = V::broadcast(detail::clamp_to<T>(o));
    const V vGapE = V::broadcast(detail::clamp_to<T>(e));
    const V vZero = V::zero();
    V vMax = V::broadcast(kNegInf);
    T best = 0;
    std::int32_t best_j = -1;

    std::int64_t sg_best = std::numeric_limits<std::int64_t>::min();
    std::int32_t sg_best_j = -1;
    bool have_fincol = false;

    T* hcur = hbuf_.data();
    T* ecur = ebuf_.data();
    T* fcur = fbuf_.data();

    std::array<const std::int8_t*, static_cast<std::size_t>(p)> rowptr{};

    for (std::size_t J = 0; J < m; J += static_cast<std::size_t>(p)) {
      const bool strip_full = (J + static_cast<std::size_t>(p) <= m);
      const bool strip_has_final =
          (m - 1 >= J) && (m - 1 < J + static_cast<std::size_t>(p));
      const int lf = strip_has_final ? static_cast<int>(m - 1 - J) : -1;

      // Hoist the substitution-matrix row pointers for this strip's columns.
      for (int l = 0; l < p; ++l) {
        const std::size_t j = J + static_cast<std::size_t>(l);
        rowptr[static_cast<std::size_t>(l)] =
            (j < m) ? matrix_->row(db[j]).data() : nullptr;
      }

      // Diagonal r = -1 state; r = -2 is never read with a valid lane.
      V vHd2 = V::broadcast(kNegInf);
      V vEd1 = V::broadcast(kNegInf);
      V vFd1 = V::broadcast(kNegInf);
      V vHd1 = V::shift_in(
          V::broadcast(kNegInf),
          detail::edge_elem<C, T>(static_cast<std::int64_t>(J) + 1, gap_));

      const std::size_t diags = n + static_cast<std::size_t>(p) - 1;
      for (std::size_t r = 0; r < diags; ++r) {
        // Interior diagonals of a full strip touch only in-table cells: no
        // boundary patching, no bounds checks in the gather.
        const bool interior =
            strip_full && r >= static_cast<std::size_t>(p) - 1 && r < n;

        // Gather substitution scores: the irregular access of this approach.
        if (interior) {
          for (int l = 0; l < p; ++l) {
            w_[l] = static_cast<T>(
                rowptr[static_cast<std::size_t>(l)][query_[r - static_cast<std::size_t>(l)]]);
          }
        } else {
          for (int l = 0; l < p; ++l) {
            const std::int64_t i = static_cast<std::int64_t>(r) - l;
            const std::size_t j = J + static_cast<std::size_t>(l);
            w_[l] = (i >= 0 && i < static_cast<std::int64_t>(n) && j < m)
                        ? static_cast<T>(
                              rowptr[static_cast<std::size_t>(l)][query_[static_cast<std::size_t>(i)]])
                        : kNegInf;
          }
        }

        // Lane-0 fills come from the strip's left-neighbour column.
        const T hfill_e = (r < n) ? hc_[r] : kNegInf;
        const T efill = (r < n) ? ec_[r] : kNegInf;
        T hfill_s;
        if (r == 0) {
          hfill_s = (J == 0) ? T{0}
                             : detail::edge_elem<C, T>(static_cast<std::int64_t>(J), gap_);
        } else {
          hfill_s = (r - 1 < n) ? hc_[r - 1] : kNegInf;
        }

        const V vHj1 = V::shift_in(vHd1, hfill_e);   // H[i][j-1]
        const V vEj1 = V::shift_in(vEd1, efill);     // E[i][j-1]
        const V vHd2s = V::shift_in(vHd2, hfill_s);  // H[i-1][j-1]

        V vE = V::subs(V::max(vEj1, V::subs(vHj1, vGapO)), vGapE);
        V vF = V::subs(V::max(vFd1, V::subs(vHd1, vGapO)), vGapE);
        V vH = V::max(V::adds(vHd2s, V::load(w_.data())), V::max(vE, vF));
        if constexpr (C == AlignClass::Local) vH = V::max(vH, vZero);

        if (!interior) {
          // Spill, patch out-of-table lanes, reload.
          vH.store(hcur);
          vE.store(ecur);
          vF.store(fcur);
          for (int l = 0; l < p; ++l) {
            const std::int64_t i = static_cast<std::int64_t>(r) - l;
            const std::size_t j = J + static_cast<std::size_t>(l);
            if (i == -1 && j < m) {
              hcur[l] = detail::edge_elem<C, T>(static_cast<std::int64_t>(j) + 1, gap_);
              ecur[l] = kNegInf;
              fcur[l] = kNegInf;
            } else if (i < 0 || i >= static_cast<std::int64_t>(n) || j >= m) {
              hcur[l] = kNegInf;
              ecur[l] = kNegInf;
              fcur[l] = kNegInf;
            }
          }
          vH = V::load(hcur);
          vE = V::load(ecur);
          vF = V::load(fcur);
        }

        vMax = V::max(vMax, vH);
        ++res.stats.main_epochs;

        if constexpr (C == AlignClass::SemiGlobal) {
          // Row n-1 appears once per diagonal at lane r-(n-1).
          const std::int64_t l = static_cast<std::int64_t>(r) -
                                 (static_cast<std::int64_t>(n) - 1);
          if (l >= 0 && l < p && J + static_cast<std::size_t>(l) < m) {
            const T v = vH.lane(static_cast<int>(l));
            if (std::int64_t{v} > sg_best) {
              sg_best = v;
              sg_best_j = static_cast<std::int32_t>(J + static_cast<std::size_t>(l));
            }
          }
        }
        if (lf >= 0) {
          const std::int64_t i = static_cast<std::int64_t>(r) - lf;
          if (i >= 0 && i < static_cast<std::int64_t>(n)) {
            fincol_[static_cast<std::size_t>(i)] = vH.lane(lf);
            have_fincol = true;
          }
        }

        // Save carries out of the strip's last column for the next strip.
        if (strip_full && J + static_cast<std::size_t>(p) < m) {
          const std::int64_t i = static_cast<std::int64_t>(r) - (p - 1);
          if (i >= 0 && i < static_cast<std::int64_t>(n)) {
            hc_[static_cast<std::size_t>(i)] = vH.last();
            ec_[static_cast<std::size_t>(i)] = vE.last();
          }
        }

        vHd2 = vHd1;
        vHd1 = vH;
        vEd1 = vE;
        vFd1 = vF;
      }
      res.stats.cells += diags * static_cast<std::size_t>(p);

      if constexpr (C == AlignClass::Local) {
        // Strip-granular best tracking (Diagonal reports approximate ends).
        const T mx = vMax.hmax();
        if (mx > best) {
          best = mx;
          best_j = static_cast<std::int32_t>(J);
        }
      }
    }

    if constexpr (C == AlignClass::Global) {
      if (!have_fincol) throw Error("DiagonalAligner: final column not captured");
      res.score = fincol_[n - 1];
      res.query_end = static_cast<std::int32_t>(n) - 1;
      res.db_end = static_cast<std::int32_t>(m) - 1;
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else if constexpr (C == AlignClass::SemiGlobal) {
      res.score = static_cast<std::int32_t>(sg_best);
      res.query_end = static_cast<std::int32_t>(n) - 1;
      res.db_end = sg_best_j;
      for (std::size_t i = 0; i < n; ++i) {
        if (std::int64_t{fincol_[i]} > res.score) {
          res.score = fincol_[i];
          res.query_end = static_cast<std::int32_t>(i);
          res.db_end = static_cast<std::int32_t>(m) - 1;
        }
      }
      // Boundary endpoints: Diagonal supports only the classic all-free ends,
      // where consuming no query (H[0][m]) or no database (H[n][0]) residues
      // is admissible at score 0.
      if (res.score < 0) {
        res.score = 0;
        res.query_end = static_cast<std::int32_t>(n) - 1;
        res.db_end = -1;
      }
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else {
      res.score = best;
      res.db_end = best_j;   // approximate (strip granularity)
      res.query_end = -1;    // Diagonal does not track the query end
      if (best >= simd::ElemTraits<T>::max_value) res.overflowed = true;
    }
    if constexpr (simd::ElemTraits<T>::saturating) {
      if (vMax.hmax() >= simd::ElemTraits<T>::max_value) res.overflowed = true;
    }
    return res;
  }

 private:
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  std::vector<std::uint8_t> query_;
  std::vector<T> hc_, ec_, fincol_;
  aligned_vector<T> hbuf_, ebuf_, fbuf_, w_;
};

}  // namespace valign
