// AVX2 engine factory.
#include "valign/core/dispatch_impl.hpp"

namespace valign::detail {

std::unique_ptr<EngineBase> make_engine_avx2(const EngineSpec& s) {
#if defined(__AVX2__)
  if (!simd::isa_available(Isa::AVX2)) return nullptr;
  return make_native<simd::V256>(s);
#else
  (void)s;
  return nullptr;
#endif
}

std::unique_ptr<BatchEngineBase> make_batch_engine_avx2(const EngineSpec& s) {
#if defined(__AVX2__)
  if (!simd::isa_available(Isa::AVX2)) return nullptr;
  return make_batch_native<simd::V256>(s);
#else
  (void)s;
  return nullptr;
#endif
}

}  // namespace valign::detail
