#include "valign/core/calibrate.hpp"

#include <chrono>
#include <random>
#include <sstream>

#include "valign/core/deconstructed.hpp"
#include "valign/core/prefilter.hpp"
#include "valign/core/prescribe.hpp"
#include "valign/core/scalar.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"
#include "valign/workload/generator.hpp"

namespace valign {

namespace {

int class_row(AlignClass klass) {
  switch (klass) {
    case AlignClass::Global: return 0;
    case AlignClass::SemiGlobal: return 1;
    case AlignClass::Local: return 2;
  }
  return 2;
}

int lane_col(int lanes) {
  if (lanes <= 4) return 0;
  if (lanes <= 8) return 1;
  return 2;
}

template <class F>
double time_at_least(F&& f, double min_seconds) {
  int reps = 0;
  double total = 0.0;
  do {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    total += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                 .count();
    ++reps;
  } while (total < min_seconds && reps < 1000);
  return total / reps;
}

/// Ratio series (t_striped / t_scan) over the configured lengths for one
/// class and backend.
template <AlignClass C, simd::SimdVec V>
std::vector<double> measure_ratios(const CalibrationConfig& cfg, const Dataset& db) {
  const ScoreMatrix& mat = cfg.matrix ? *cfg.matrix : ScoreMatrix::blosum62();
  StripedAligner<C, V> striped(mat, cfg.gap);
  ScanAligner<C, V> scan(mat, cfg.gap);
  std::mt19937_64 rng(cfg.seed + static_cast<std::uint64_t>(class_row(C)));
  std::vector<double> ratios;
  std::int64_t sink = 0;
  for (const std::size_t qlen : cfg.lengths) {
    std::vector<std::uint8_t> q(qlen);
    for (auto& c : q) c = workload::ResidueModel::protein().sample(rng);
    striped.set_query(q);
    scan.set_query(q);
    const double ts = time_at_least(
        [&] {
          for (const Sequence& s : db) sink += striped.align(s.codes()).score;
        },
        cfg.min_seconds);
    const double tc = time_at_least(
        [&] {
          for (const Sequence& s : db) sink += scan.align(s.codes()).score;
        },
        cfg.min_seconds);
    ratios.push_back(ts / tc);
  }
  static_cast<void>(sink);
  return ratios;
}

/// First crossing of 1.0 in the class's expected direction; 0 when absent.
int find_crossover(const std::vector<double>& ratios,
                   const std::vector<std::size_t>& lengths, bool scan_short) {
  for (std::size_t i = 1; i < ratios.size(); ++i) {
    const double r0 = ratios[i - 1];
    const double r1 = ratios[i];
    const bool crossing = scan_short ? (r0 >= 1.0 && r1 < 1.0)
                                     : (r0 <= 1.0 && r1 > 1.0);
    if (crossing && r1 != r0) {
      const double f = (1.0 - r0) / (r1 - r0);
      return static_cast<int>(static_cast<double>(lengths[i - 1]) +
                              f * static_cast<double>(lengths[i] - lengths[i - 1]));
    }
  }
  return 0;
}

/// Per-engine mean times (striped, scan, deconstructed — EngineModel cell
/// order) over the configured lengths for one class and backend.
template <AlignClass C, simd::SimdVec V>
std::array<std::vector<double>, 3> measure_engine_times(
    const CalibrationConfig& cfg, const Dataset& db) {
  const ScoreMatrix& mat = cfg.matrix ? *cfg.matrix : ScoreMatrix::blosum62();
  StripedAligner<C, V> striped(mat, cfg.gap);
  ScanAligner<C, V> scan(mat, cfg.gap);
  DeconstructedAligner<C, V> decon(mat, cfg.gap);
  std::mt19937_64 rng(cfg.seed + static_cast<std::uint64_t>(class_row(C)));
  std::array<std::vector<double>, 3> times;
  std::int64_t sink = 0;
  const auto bench = [&](auto& eng) {
    return time_at_least(
        [&] {
          for (const Sequence& s : db) sink += eng.align(s.codes()).score;
        },
        cfg.min_seconds);
  };
  for (const std::size_t qlen : cfg.lengths) {
    std::vector<std::uint8_t> q(qlen);
    for (auto& c : q) c = workload::ResidueModel::protein().sample(rng);
    striped.set_query(q);
    scan.set_query(q);
    decon.set_query(q);
    times[0].push_back(bench(striped));
    times[1].push_back(bench(scan));
    times[2].push_back(bench(decon));
  }
  static_cast<void>(sink);
  return times;
}

/// Winners at the range ends plus the first length where the short-range
/// winner stops winning. Noise can make the middle of the series flip-flop;
/// anchoring on the endpoints keeps the cell stable.
EngineModel::Cell derive_cell(const std::array<std::vector<double>, 3>& times,
                              const std::vector<std::size_t>& lengths) {
  constexpr Approach kOrder[3] = {Approach::Striped, Approach::Scan,
                                  Approach::Deconstructed};
  const auto winner = [&](std::size_t i) {
    std::size_t best = 0;
    for (std::size_t e = 1; e < 3; ++e) {
      if (times[e][i] < times[best][i]) best = e;
    }
    return kOrder[best];
  };
  EngineModel::Cell cell;
  cell.short_winner = winner(0);
  cell.long_winner = winner(lengths.size() - 1);
  cell.crossover = 0;
  if (cell.short_winner != cell.long_winner) {
    for (std::size_t i = 1; i < lengths.size(); ++i) {
      if (winner(i) != cell.short_winner) {
        // Midpoint of the bracketing probes: the honest resolution of the
        // sweep, without pretending to sub-probe precision.
        cell.crossover = static_cast<int>((lengths[i - 1] + lengths[i]) / 2);
        break;
      }
    }
  }
  return cell;
}

template <AlignClass C>
void calibrate_engines_class(const CalibrationConfig& cfg, const Dataset& db,
                             EngineModel& model) {
  const int row = class_row(C);
  const auto run_lane = [&](int lanes, auto tag) {
    using V = typename decltype(tag)::type;
    model.cells[static_cast<std::size_t>(row)]
               [static_cast<std::size_t>(lane_col(lanes))] =
        derive_cell(measure_engine_times<C, V>(cfg, db), cfg.lengths);
  };
  struct Tag4 {
#if defined(__SSE4_1__)
    using type = simd::V128<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 4>;
#endif
  };
  struct Tag8 {
#if defined(__AVX2__)
    using type = simd::V256<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 8>;
#endif
  };
  struct Tag16 {
#if defined(__AVX512F__) && defined(__AVX512BW__)
    using type = simd::V512<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 16>;
#endif
  };
#if defined(__SSE4_1__)
  if (simd::isa_available(Isa::SSE41)) run_lane(4, Tag4{});
#endif
#if defined(__AVX2__)
  if (simd::isa_available(Isa::AVX2)) run_lane(8, Tag8{});
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
  if (simd::isa_available(Isa::AVX512)) run_lane(16, Tag16{});
#endif
}

template <AlignClass C>
void calibrate_class(const CalibrationConfig& cfg, const Dataset& db,
                     PrescriptionTable& table) {
  const int row = class_row(C);
  const bool scan_short = (C != AlignClass::Global);
  table.scan_wins_short[static_cast<std::size_t>(row)] = scan_short;

  const auto run_lane = [&](int lanes, auto tag) {
    using V = typename decltype(tag)::type;
    const std::vector<double> ratios = measure_ratios<C, V>(cfg, db);
    table.crossover[static_cast<std::size_t>(row)]
                   [static_cast<std::size_t>(lane_col(lanes))] =
        find_crossover(ratios, cfg.lengths, scan_short);
  };
  struct Tag4 {
#if defined(__SSE4_1__)
    using type = simd::V128<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 4>;
#endif
  };
  struct Tag8 {
#if defined(__AVX2__)
    using type = simd::V256<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 8>;
#endif
  };
  struct Tag16 {
#if defined(__AVX512F__) && defined(__AVX512BW__)
    using type = simd::V512<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 16>;
#endif
  };
#if defined(__SSE4_1__)
  if (simd::isa_available(Isa::SSE41)) run_lane(4, Tag4{});
#endif
#if defined(__AVX2__)
  if (simd::isa_available(Isa::AVX2)) run_lane(8, Tag8{});
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
  if (simd::isa_available(Isa::AVX512)) run_lane(16, Tag16{});
#endif
}

}  // namespace

Approach PrescriptionTable::choose(AlignClass klass, int lanes,
                                   std::size_t qlen) const noexcept {
  const int c = cross(klass, lanes);
  const bool scan_short = scan_wins_short[static_cast<std::size_t>(class_row(klass))];
  if (c <= 0) {
    // No crossover measured: one engine dominated the probed range; it was
    // the long-query winner (the series ended on its side of 1.0).
    return scan_short ? Approach::Striped : Approach::Scan;
  }
  const bool below = qlen < static_cast<std::size_t>(c);
  if (klass == AlignClass::Global) return below ? Approach::Striped : Approach::Scan;
  return below ? Approach::Scan : Approach::Striped;
}

int PrescriptionTable::cross(AlignClass klass, int lanes) const noexcept {
  return crossover[static_cast<std::size_t>(class_row(klass))]
                  [static_cast<std::size_t>(lane_col(lanes))];
}

PrescriptionTable PrescriptionTable::paper() noexcept {
  PrescriptionTable t;
  for (const AlignClass c :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    for (const int lanes : {4, 8, 16}) {
      t.crossover[static_cast<std::size_t>(class_row(c))]
                 [static_cast<std::size_t>(lane_col(lanes))] =
          prescribe_crossover(c, lanes);
    }
    t.scan_wins_short[static_cast<std::size_t>(class_row(c))] =
        (c != AlignClass::Global);
  }
  return t;
}

std::string PrescriptionTable::to_string() const {
  std::ostringstream os;
  const char* names[3] = {"NW", "SG", "SW"};
  for (int row = 0; row < 3; ++row) {
    os << names[row] << ": short=" << (scan_wins_short[static_cast<std::size_t>(row)]
                                           ? "scan"
                                           : "striped");
    os << " crossovers(4/8/16)=" << crossover[static_cast<std::size_t>(row)][0] << "/"
       << crossover[static_cast<std::size_t>(row)][1] << "/"
       << crossover[static_cast<std::size_t>(row)][2] << "\n";
  }
  return os.str();
}

PrescriptionTable calibrate(const CalibrationConfig& cfg) {
  if (cfg.lengths.size() < 2) {
    throw Error("calibrate: need at least two probe lengths");
  }
  // Seed the result with the paper's values so lane columns this host cannot
  // measure keep a sensible prescription.
  PrescriptionTable table = PrescriptionTable::paper();
  workload::GeneratorConfig gen;
  gen.lengths = workload::LengthModel::uniprot_protein();
  gen.seed = cfg.seed;
  const Dataset db = workload::generate(cfg.db_count, gen);
  calibrate_class<AlignClass::Global>(cfg, db, table);
  calibrate_class<AlignClass::SemiGlobal>(cfg, db, table);
  calibrate_class<AlignClass::Local>(cfg, db, table);
  return table;
}

Approach EngineModel::choose(AlignClass klass, int lanes,
                             std::size_t qlen) const noexcept {
  const Cell& c = cell(klass, lanes);
  if (c.crossover <= 0) return c.long_winner;
  return qlen < static_cast<std::size_t>(c.crossover) ? c.short_winner
                                                      : c.long_winner;
}

const EngineModel::Cell& EngineModel::cell(AlignClass klass,
                                           int lanes) const noexcept {
  return cells[static_cast<std::size_t>(class_row(klass))]
              [static_cast<std::size_t>(lane_col(lanes))];
}

EngineModel EngineModel::paper() noexcept {
  EngineModel m;
  const PrescriptionTable t = PrescriptionTable::paper();
  for (std::size_t row = 0; row < 3; ++row) {
    const bool scan_short = t.scan_wins_short[row];
    for (std::size_t col = 0; col < 3; ++col) {
      Cell& c = m.cells[row][col];
      c.short_winner = scan_short ? Approach::Scan : Approach::Striped;
      c.long_winner = scan_short ? Approach::Striped : Approach::Scan;
      c.crossover = t.crossover[row][col];
    }
  }
  return m;
}

const EngineModel& EngineModel::pinned() noexcept {
  // Measured by calibrate_engines() on the reference build host (1-core
  // AVX-512BW VM, gcc -O3, BLOSUM62 {11,1}, CalibrationConfig defaults) and
  // committed. Re-run `valign calibrate` after a toolchain or host change
  // and refresh these cells; the differential Auto property test holds for
  // ANY cell values, so stale numbers cost performance, never correctness.
  static const EngineModel m = [] {
    EngineModel model = paper();
    const auto set = [&](int row, int col, Approach s, Approach l, int cross) {
      model.cells[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          Cell{s, l, cross};
    };
    // NW: the deconstructed kernel takes the long end at 4/8 lanes (Global
    // boundary conditions keep Farrar's corrective loop from converging and
    // Scan always pays its full second pass); at 16 lanes the i32 hscan
    // chain tips long queries back to Scan, while short queries stay with
    // the deconstructed kernel's lg(p) fix-up.
    set(0, 0, Approach::Scan, Approach::Deconstructed, 120);
    set(0, 1, Approach::Striped, Approach::Deconstructed, 48);
    set(0, 2, Approach::Deconstructed, Approach::Scan, 32);
    // SG: free end gaps make striped's re-walks frequent on short queries,
    // so the deconstructed kernel owns the short end everywhere; long
    // queries amortize striped's re-walks (4/8 lanes) or Scan's fixed
    // second pass (16 lanes).
    set(1, 0, Approach::Deconstructed, Approach::Striped, 160);
    set(1, 1, Approach::Deconstructed, Approach::Striped, 160);
    set(1, 2, Approach::Deconstructed, Approach::Scan, 192);
    // SW: Local zero-clamping kills F chains fast, so Farrar converges
    // early and holds the long end; the deconstructed kernel wins short
    // queries at 8/16 lanes where one lg(p) hscan beats even a short
    // corrective walk.
    set(2, 0, Approach::Scan, Approach::Striped, 112);
    set(2, 1, Approach::Deconstructed, Approach::Striped, 48);
    set(2, 2, Approach::Deconstructed, Approach::Striped, 96);
    return model;
  }();
  return m;
}

std::string EngineModel::to_string() const {
  std::ostringstream os;
  const char* names[3] = {"NW", "SG", "SW"};
  const int lane_cols[3] = {4, 8, 16};
  for (std::size_t row = 0; row < 3; ++row) {
    os << names[row] << ":";
    for (std::size_t col = 0; col < 3; ++col) {
      const Cell& c = cells[row][col];
      os << " @" << lane_cols[col] << " ";
      if (c.crossover <= 0) {
        os << valign::to_string(c.long_winner);
      } else {
        os << valign::to_string(c.short_winner) << "<" << c.crossover << "<="
           << valign::to_string(c.long_winner);
      }
    }
    os << "\n";
  }
  return os.str();
}

EngineModel calibrate_engines(const CalibrationConfig& cfg) {
  if (cfg.lengths.size() < 2) {
    throw Error("calibrate_engines: need at least two probe lengths");
  }
  // Seed with the paper's two-engine cells so lane columns this host cannot
  // measure keep a sensible prescription.
  EngineModel model = EngineModel::paper();
  workload::GeneratorConfig gen;
  gen.lengths = workload::LengthModel::uniprot_protein();
  gen.seed = cfg.seed;
  const Dataset db = workload::generate(cfg.db_count, gen);
  calibrate_engines_class<AlignClass::Global>(cfg, db, model);
  calibrate_engines_class<AlignClass::SemiGlobal>(cfg, db, model);
  calibrate_engines_class<AlignClass::Local>(cfg, db, model);
  return model;
}

int PrefilterModel::margin_for(AlignClass klass) const noexcept {
  return margin[static_cast<std::size_t>(class_row(klass))];
}

std::string PrefilterModel::to_string() const {
  std::ostringstream os;
  os << "prefilter margins NW/SG/SW = " << margin[0] << "/" << margin[1] << "/"
     << margin[2] << ", saturated " << saturated_pct << "%";
  return os.str();
}

PrefilterModel calibrate_prefilter(const PrefilterCalibrationConfig& cfg) {
  const ScoreMatrix& mat = cfg.matrix ? *cfg.matrix : ScoreMatrix::blosum62();

  workload::GeneratorConfig gen;
  gen.lengths = workload::LengthModel::uniprot_protein();
  gen.seed = cfg.seed;
  const Dataset db = workload::generate(cfg.db_count, gen);
  gen.seed = cfg.seed + 1;
  const Dataset queries = workload::generate(cfg.query_count, gen);

  Options opts;
  opts.matrix = &mat;
  opts.gap = cfg.gap;
  Prefilter pf(opts);

  ScalarAligner<AlignClass::Global> nw(mat, cfg.gap);
  ScalarAligner<AlignClass::SemiGlobal> sg(mat, cfg.gap);
  ScalarAligner<AlignClass::Local> sw(mat, cfg.gap);

  std::vector<std::span<const std::uint8_t>> dbs;
  dbs.reserve(db.size());
  for (const Sequence& s : db) dbs.push_back(s.codes());
  std::vector<PrefilterVerdict> verdicts(db.size());

  PrefilterModel model = PrefilterModel::conservative();
  std::uint64_t screened = 0;
  std::uint64_t saturated = 0;
  for (const Sequence& q : queries) {
    pf.set_query(q.codes());
    nw.set_query(q.codes());
    sg.set_query(q.codes());
    sw.set_query(q.codes());
    pf.screen(dbs, verdicts);
    for (std::size_t i = 0; i < db.size(); ++i) {
      ++screened;
      if (verdicts[i].escalate) {
        // Saturation rail: the bound is unusable and the pair escalates
        // unconditionally, so it contributes no margin evidence.
        ++saturated;
        continue;
      }
      const std::int32_t bound = verdicts[i].score;
      const std::array<std::int32_t, 3> truth = {
          nw.align(dbs[i]).score, sg.align(dbs[i]).score, sw.align(dbs[i]).score};
      for (std::size_t row = 0; row < 3; ++row) {
        const int gap_to_true = static_cast<int>(truth[row] - bound);
        if (gap_to_true > model.margin[row]) model.margin[row] = gap_to_true;
      }
    }
  }
  model.saturated_pct =
      screened == 0 ? 0
                    : static_cast<int>((saturated * 100 + screened / 2) / screened);
  return model;
}

}  // namespace valign
