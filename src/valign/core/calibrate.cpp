#include "valign/core/calibrate.hpp"

#include <chrono>
#include <random>
#include <sstream>

#include "valign/core/prefilter.hpp"
#include "valign/core/prescribe.hpp"
#include "valign/core/scalar.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"
#include "valign/workload/generator.hpp"

namespace valign {

namespace {

int class_row(AlignClass klass) {
  switch (klass) {
    case AlignClass::Global: return 0;
    case AlignClass::SemiGlobal: return 1;
    case AlignClass::Local: return 2;
  }
  return 2;
}

int lane_col(int lanes) {
  if (lanes <= 4) return 0;
  if (lanes <= 8) return 1;
  return 2;
}

template <class F>
double time_at_least(F&& f, double min_seconds) {
  int reps = 0;
  double total = 0.0;
  do {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    total += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                 .count();
    ++reps;
  } while (total < min_seconds && reps < 1000);
  return total / reps;
}

/// Ratio series (t_striped / t_scan) over the configured lengths for one
/// class and backend.
template <AlignClass C, simd::SimdVec V>
std::vector<double> measure_ratios(const CalibrationConfig& cfg, const Dataset& db) {
  const ScoreMatrix& mat = cfg.matrix ? *cfg.matrix : ScoreMatrix::blosum62();
  StripedAligner<C, V> striped(mat, cfg.gap);
  ScanAligner<C, V> scan(mat, cfg.gap);
  std::mt19937_64 rng(cfg.seed + static_cast<std::uint64_t>(class_row(C)));
  std::vector<double> ratios;
  std::int64_t sink = 0;
  for (const std::size_t qlen : cfg.lengths) {
    std::vector<std::uint8_t> q(qlen);
    for (auto& c : q) c = workload::ResidueModel::protein().sample(rng);
    striped.set_query(q);
    scan.set_query(q);
    const double ts = time_at_least(
        [&] {
          for (const Sequence& s : db) sink += striped.align(s.codes()).score;
        },
        cfg.min_seconds);
    const double tc = time_at_least(
        [&] {
          for (const Sequence& s : db) sink += scan.align(s.codes()).score;
        },
        cfg.min_seconds);
    ratios.push_back(ts / tc);
  }
  static_cast<void>(sink);
  return ratios;
}

/// First crossing of 1.0 in the class's expected direction; 0 when absent.
int find_crossover(const std::vector<double>& ratios,
                   const std::vector<std::size_t>& lengths, bool scan_short) {
  for (std::size_t i = 1; i < ratios.size(); ++i) {
    const double r0 = ratios[i - 1];
    const double r1 = ratios[i];
    const bool crossing = scan_short ? (r0 >= 1.0 && r1 < 1.0)
                                     : (r0 <= 1.0 && r1 > 1.0);
    if (crossing && r1 != r0) {
      const double f = (1.0 - r0) / (r1 - r0);
      return static_cast<int>(static_cast<double>(lengths[i - 1]) +
                              f * static_cast<double>(lengths[i] - lengths[i - 1]));
    }
  }
  return 0;
}

template <AlignClass C>
void calibrate_class(const CalibrationConfig& cfg, const Dataset& db,
                     PrescriptionTable& table) {
  const int row = class_row(C);
  const bool scan_short = (C != AlignClass::Global);
  table.scan_wins_short[static_cast<std::size_t>(row)] = scan_short;

  const auto run_lane = [&](int lanes, auto tag) {
    using V = typename decltype(tag)::type;
    const std::vector<double> ratios = measure_ratios<C, V>(cfg, db);
    table.crossover[static_cast<std::size_t>(row)]
                   [static_cast<std::size_t>(lane_col(lanes))] =
        find_crossover(ratios, cfg.lengths, scan_short);
  };
  struct Tag4 {
#if defined(__SSE4_1__)
    using type = simd::V128<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 4>;
#endif
  };
  struct Tag8 {
#if defined(__AVX2__)
    using type = simd::V256<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 8>;
#endif
  };
  struct Tag16 {
#if defined(__AVX512F__) && defined(__AVX512BW__)
    using type = simd::V512<std::int32_t>;
#else
    using type = simd::VEmul<std::int32_t, 16>;
#endif
  };
#if defined(__SSE4_1__)
  if (simd::isa_available(Isa::SSE41)) run_lane(4, Tag4{});
#endif
#if defined(__AVX2__)
  if (simd::isa_available(Isa::AVX2)) run_lane(8, Tag8{});
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
  if (simd::isa_available(Isa::AVX512)) run_lane(16, Tag16{});
#endif
}

}  // namespace

Approach PrescriptionTable::choose(AlignClass klass, int lanes,
                                   std::size_t qlen) const noexcept {
  const int c = cross(klass, lanes);
  const bool scan_short = scan_wins_short[static_cast<std::size_t>(class_row(klass))];
  if (c <= 0) {
    // No crossover measured: one engine dominated the probed range; it was
    // the long-query winner (the series ended on its side of 1.0).
    return scan_short ? Approach::Striped : Approach::Scan;
  }
  const bool below = qlen < static_cast<std::size_t>(c);
  if (klass == AlignClass::Global) return below ? Approach::Striped : Approach::Scan;
  return below ? Approach::Scan : Approach::Striped;
}

int PrescriptionTable::cross(AlignClass klass, int lanes) const noexcept {
  return crossover[static_cast<std::size_t>(class_row(klass))]
                  [static_cast<std::size_t>(lane_col(lanes))];
}

PrescriptionTable PrescriptionTable::paper() noexcept {
  PrescriptionTable t;
  for (const AlignClass c :
       {AlignClass::Global, AlignClass::SemiGlobal, AlignClass::Local}) {
    for (const int lanes : {4, 8, 16}) {
      t.crossover[static_cast<std::size_t>(class_row(c))]
                 [static_cast<std::size_t>(lane_col(lanes))] =
          prescribe_crossover(c, lanes);
    }
    t.scan_wins_short[static_cast<std::size_t>(class_row(c))] =
        (c != AlignClass::Global);
  }
  return t;
}

std::string PrescriptionTable::to_string() const {
  std::ostringstream os;
  const char* names[3] = {"NW", "SG", "SW"};
  for (int row = 0; row < 3; ++row) {
    os << names[row] << ": short=" << (scan_wins_short[static_cast<std::size_t>(row)]
                                           ? "scan"
                                           : "striped");
    os << " crossovers(4/8/16)=" << crossover[static_cast<std::size_t>(row)][0] << "/"
       << crossover[static_cast<std::size_t>(row)][1] << "/"
       << crossover[static_cast<std::size_t>(row)][2] << "\n";
  }
  return os.str();
}

PrescriptionTable calibrate(const CalibrationConfig& cfg) {
  if (cfg.lengths.size() < 2) {
    throw Error("calibrate: need at least two probe lengths");
  }
  // Seed the result with the paper's values so lane columns this host cannot
  // measure keep a sensible prescription.
  PrescriptionTable table = PrescriptionTable::paper();
  workload::GeneratorConfig gen;
  gen.lengths = workload::LengthModel::uniprot_protein();
  gen.seed = cfg.seed;
  const Dataset db = workload::generate(cfg.db_count, gen);
  calibrate_class<AlignClass::Global>(cfg, db, table);
  calibrate_class<AlignClass::SemiGlobal>(cfg, db, table);
  calibrate_class<AlignClass::Local>(cfg, db, table);
  return table;
}

int PrefilterModel::margin_for(AlignClass klass) const noexcept {
  return margin[static_cast<std::size_t>(class_row(klass))];
}

std::string PrefilterModel::to_string() const {
  std::ostringstream os;
  os << "prefilter margins NW/SG/SW = " << margin[0] << "/" << margin[1] << "/"
     << margin[2] << ", saturated " << saturated_pct << "%";
  return os.str();
}

PrefilterModel calibrate_prefilter(const PrefilterCalibrationConfig& cfg) {
  const ScoreMatrix& mat = cfg.matrix ? *cfg.matrix : ScoreMatrix::blosum62();

  workload::GeneratorConfig gen;
  gen.lengths = workload::LengthModel::uniprot_protein();
  gen.seed = cfg.seed;
  const Dataset db = workload::generate(cfg.db_count, gen);
  gen.seed = cfg.seed + 1;
  const Dataset queries = workload::generate(cfg.query_count, gen);

  Options opts;
  opts.matrix = &mat;
  opts.gap = cfg.gap;
  Prefilter pf(opts);

  ScalarAligner<AlignClass::Global> nw(mat, cfg.gap);
  ScalarAligner<AlignClass::SemiGlobal> sg(mat, cfg.gap);
  ScalarAligner<AlignClass::Local> sw(mat, cfg.gap);

  std::vector<std::span<const std::uint8_t>> dbs;
  dbs.reserve(db.size());
  for (const Sequence& s : db) dbs.push_back(s.codes());
  std::vector<PrefilterVerdict> verdicts(db.size());

  PrefilterModel model = PrefilterModel::conservative();
  std::uint64_t screened = 0;
  std::uint64_t saturated = 0;
  for (const Sequence& q : queries) {
    pf.set_query(q.codes());
    nw.set_query(q.codes());
    sg.set_query(q.codes());
    sw.set_query(q.codes());
    pf.screen(dbs, verdicts);
    for (std::size_t i = 0; i < db.size(); ++i) {
      ++screened;
      if (verdicts[i].escalate) {
        // Saturation rail: the bound is unusable and the pair escalates
        // unconditionally, so it contributes no margin evidence.
        ++saturated;
        continue;
      }
      const std::int32_t bound = verdicts[i].score;
      const std::array<std::int32_t, 3> truth = {
          nw.align(dbs[i]).score, sg.align(dbs[i]).score, sw.align(dbs[i]).score};
      for (std::size_t row = 0; row < 3; ++row) {
        const int gap_to_true = static_cast<int>(truth[row] - bound);
        if (gap_to_true > model.margin[row]) model.margin[row] = gap_to_true;
      }
    }
  }
  model.saturated_pct =
      screened == 0 ? 0
                    : static_cast<int>((saturated * 100 + screened / 2) / screened);
  return model;
}

}  // namespace valign
