#include "valign/core/prefilter.hpp"

#include <algorithm>
#include <limits>

#include "valign/robust/failpoint.hpp"
#include "valign/robust/status.hpp"
#include "valign/simd/arch.hpp"

namespace valign {

namespace {

// Saturated pairs outrank every representable true score in the candidate
// queue, so they are escalated first and can never be cut off.
constexpr std::int64_t kSaturatedKey =
    std::int64_t{std::numeric_limits<std::int32_t>::max()} + 1;

}  // namespace

GapPenalty cap_gap_for_screen(GapPenalty gap, int bits) noexcept {
  const int rail = (bits >= 32) ? std::numeric_limits<int>::max()
                                : (1 << (bits - 1)) - 1;
  return {std::min(gap.open, rail), std::min(gap.extend, rail)};
}

Prefilter::Prefilter(const Options& opts) {
  matrix_ = opts.matrix ? opts.matrix : &ScoreMatrix::blosum62();
  const GapPenalty gap = (opts.gap.open < 0 || opts.gap.extend < 0)
                             ? matrix_->default_gaps()
                             : opts.gap;
  isa_ = (opts.isa == Isa::Auto) ? simd::best_isa() : opts.isa;
  if (!simd::isa_available(isa_)) {
    throw Error(std::string("Prefilter: ISA not available on this CPU: ") +
                to_string(isa_));
  }
  // Narrowest element width the resolved backend packs; the emulated batch
  // backend starts at 16-bit. The upper-bound argument is width-independent.
  const int bits = (isa_ == Isa::Emul) ? 16 : 8;
  screen_gap_ = cap_gap_for_screen(gap, bits);

  detail::EngineSpec spec;
  spec.klass = AlignClass::Local;  // Cross-class upper bound.
  spec.approach = Approach::InterSeq;
  spec.isa = isa_;
  spec.bits = bits;
  spec.emul_lanes = opts.emul_lanes;
  spec.matrix = matrix_;
  spec.gap = screen_gap_;
  engine_ = detail::make_batch_engine(spec);
}

Prefilter::~Prefilter() = default;
Prefilter::Prefilter(Prefilter&&) noexcept = default;
Prefilter& Prefilter::operator=(Prefilter&&) noexcept = default;

int Prefilter::lanes() const noexcept { return engine_->lanes(); }
int Prefilter::bits() const noexcept { return engine_->bits(); }

void Prefilter::set_query(std::span<const std::uint8_t> query) {
  engine_->set_query(query);
}

void Prefilter::screen(std::span<const std::span<const std::uint8_t>> dbs,
                       std::span<PrefilterVerdict> out) {
  if (out.size() != dbs.size()) {
    throw Error("Prefilter::screen: output size mismatch");
  }
  // Chaos site: a failed screen must degrade the caller to unfiltered search
  // for this block (docs/robustness.md; tests/robust/test_chaos.cpp).
  VALIGN_FAILPOINT("prefilter.screen",
                   throw robust::StatusError(
                       robust::StatusCode::Internal,
                       "prefilter.screen failpoint: injected screen failure"));
  scratch_.resize(dbs.size());
  engine_->align_batch(dbs, scratch_, nullptr);
  ++stats_.batches;
  stats_.pairs += dbs.size();
  for (std::size_t i = 0; i < dbs.size(); ++i) {
    out[i].score = scratch_[i].score;
    out[i].escalate = scratch_[i].overflowed;
    stats_.saturated += scratch_[i].overflowed ? 1 : 0;
    stats_.cells += scratch_[i].stats.cells;
  }
}

void TopKCutoff::offer(std::int32_t true_score) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back(true_score);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    return;
  }
  if (true_score <= heap_.front()) return;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.back() = true_score;
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

std::int64_t TopKCutoff::cutoff() const noexcept {
  if (k_ == 0) return std::numeric_limits<std::int64_t>::max();
  if (heap_.size() < k_) return std::numeric_limits<std::int64_t>::min();
  return heap_.front();
}

void CandidateQueue::reset(std::size_t expected) {
  entries_.clear();
  if (expected != 0) entries_.reserve(expected);
  next_ = 0;
}

void CandidateQueue::push(std::size_t db_index, const PrefilterVerdict& v) {
  entries_.push_back({v.escalate ? kSaturatedKey : std::int64_t{v.score},
                      db_index});
}

void CandidateQueue::seal() {
  std::sort(entries_.begin() + static_cast<std::ptrdiff_t>(next_),
            entries_.end(), [](const Entry& a, const Entry& b) {
              if (a.key != b.key) return a.key > b.key;
              return a.db_index < b.db_index;
            });
}

std::size_t CandidateQueue::pop_chunk(std::size_t max_n, std::int64_t cutoff,
                                      std::int64_t margin,
                                      std::span<std::size_t> out) {
  std::size_t n = 0;
  while (n < max_n && next_ < entries_.size()) {
    const Entry& e = entries_[next_];
    // The queue is bound-sorted: once the best remaining upper bound cannot
    // displace the k-th best true score (ties break by database index, so a
    // bound *equal* to the cutoff must still be escalated), neither can
    // anything behind it. Saturated keys exceed every true score and are
    // therefore never cut.
    if (e.key != kSaturatedKey && e.key + margin < cutoff) {
      dropped_ += entries_.size() - next_;
      next_ = entries_.size();
      break;
    }
    out[n++] = e.db_index;
    ++next_;
  }
  return n;
}

}  // namespace valign
