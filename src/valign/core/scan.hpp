// Prefix-scan vectorized alignment — the paper's contribution (§IV, Alg. 4).
//
// Same striped layout as Farrar, but the vertical dependency is resolved
// algebraically instead of iteratively (Khajeh-Saeed et al. 2010, Eqs. 2-5):
//
//   pass 1: compute I (E) and the temporary T-tilde (Ht) that ignores the
//           column maximum, plus a per-lane running max-with-decay aggregate;
//   hscan:  a p-1 step horizontal max-scan (decay L*Gext per lane step)
//           resolves the cross-lane carries exactly;
//   pass 2: finalize T = max(Ht, D-tilde + Gopen) walking the column again.
//
// Exactly two passes per column, unconditionally — which is why Scan's
// runtime is flat across scoring schemes (Fig. 5) while Striped's varies.
#pragma once

#include <span>

#include "valign/core/engine_common.hpp"
#include "valign/core/profile.hpp"

namespace valign {

/// Strategy for the cross-lane scan step (ablation knob; the paper's
/// implementation and complexity analysis use the linear form).
enum class HscanKind : std::uint8_t {
  Linear,  ///< p-1 shift/max steps (what the paper describes).
  Log,     ///< lg(p) doubling steps (Blelloch-style).
};

template <AlignClass C, simd::SimdVec V>
class ScanAligner {
 public:
  using T = typename V::value_type;
  static constexpr Approach kApproach = Approach::Scan;
  static constexpr AlignClass kClass = C;
  static constexpr int kLanes = V::lanes;

  /// `ends` configures free end gaps; honoured when C == SemiGlobal.
  ScanAligner(const ScoreMatrix& matrix, GapPenalty gap,
              HscanKind hscan = HscanKind::Linear, SemiGlobalEnds ends = {})
      : matrix_(&matrix), gap_(gap), hscan_(hscan), ends_(ends) {}

  void set_query(std::span<const std::uint8_t> query) {
    prof_.build(*matrix_, query, V::lanes);
    qlen_ = query.size();
    const std::size_t vecs = prof_.seglen() * static_cast<std::size_t>(V::lanes);
    h0_.resize(vecs);
    h1_.resize(vecs);
    e_.resize(vecs);
    ht_.resize(vecs);
  }

  [[nodiscard]] std::size_t query_length() const noexcept { return qlen_; }

  AlignResult align(std::span<const std::uint8_t> db) {
    namespace ins = instrument;
    constexpr int p = V::lanes;
    const std::size_t L = prof_.seglen();
    const std::size_t m = db.size();
    const std::int64_t o = gap_.open;
    const std::int64_t e = gap_.extend;

    AlignResult res;
    res.approach = Approach::Scan;
    res.isa = detail::isa_of<V>();
    res.lanes = p;
    res.bits = 8 * int(sizeof(T));
    res.stats.columns = m;
    res.stats.cells = m * L * static_cast<std::size_t>(p);

    if (qlen_ == 0 || m == 0) {
      return detail::degenerate_result<C>(res, qlen_, m, gap_, ends_);
    }

    T* hload = h0_.data();
    T* hstore = h1_.data();
    T* earr = e_.data();
    T* htarr = ht_.data();
    detail::init_striped_column<C, T>(hload, earr, L, p, qlen_, gap_, ends_);

    const V vGapO = V::broadcast(detail::clamp_to<T>(o));
    const V vGapE = V::broadcast(detail::clamp_to<T>(e));
    const V vNegInf = V::broadcast(V::neg_inf);
    const V vZero = V::zero();
    V vMax = vNegInf;

    // Cross-lane decay: one lane step spans L query rows.
    const T lane_decay =
        detail::clamp_to<T>(static_cast<std::int64_t>(L) * e);

    detail::LocalBest<V> lb;
    if constexpr (C == AlignClass::Local) lb.prepare(L);

    std::int64_t sg_best = std::numeric_limits<std::int64_t>::min();
    std::int32_t sg_best_j = -1;

    for (std::size_t j = 0; j < m; ++j) {
      const int code = db[j];
      const T hb_prev =
          (j == 0) ? T{0}
                   : detail::row_edge_elem<C, T>(static_cast<std::int64_t>(j), gap_,
                                                 ends_);
      V vHdiag = V::shift_in(V::load(hload + (L - 1) * static_cast<std::size_t>(p)),
                             hb_prev);
      V vA = vNegInf;  // per-lane aggregate max_t(Ht[t] - (L-1-t)*e)

      // --- pass 1: E, T-tilde, per-lane aggregate -------------------------
      for (std::size_t t = 0; t < L; ++t) {
        const std::size_t off = t * static_cast<std::size_t>(p);
        const V vHp = V::load(hload + off);
        const V vE = V::subs(V::max(V::load(earr + off), V::subs(vHp, vGapO)), vGapE);
        V vHt = V::max(V::adds(vHdiag, V::load(prof_.epoch(code, t))), vE);
        if constexpr (C == AlignClass::Local) vHt = V::max(vHt, vZero);
        vE.store(earr + off);
        vHt.store(htarr + off);
        vA = V::max(V::subs(vA, vGapE), vHt);
        vHdiag = vHp;
        ins::count_scalar<V>(ins::OpCategory::ScalarArith, 2);
        ins::count_scalar<V>(ins::OpCategory::ScalarBranch, 1);
      }

      // --- horizontal scan: resolve cross-lane D-tilde carries ------------
      const T hb =
          detail::row_edge_elem<C, T>(static_cast<std::int64_t>(j) + 1, gap_, ends_);
      const V cand = V::subs(V::shift_in(vA, hb), vGapE);
      const V vB = (hscan_ == HscanKind::Linear)
                       ? simd::hscan_max_decay_linear(cand, lane_decay)
                       : simd::hscan_max_decay_log(cand, static_cast<T>(lane_decay));
      res.stats.hscan_steps += static_cast<std::uint64_t>(p - 1);
      res.stats.hscan_hist.record(static_cast<std::uint64_t>(p - 1));
      // Horizontal-scan loop control.
      ins::count_scalar<V>(ins::OpCategory::ScalarArith, static_cast<std::uint64_t>(p - 1));
      ins::count_scalar<V>(ins::OpCategory::ScalarBranch, static_cast<std::uint64_t>(p - 1));

      // Did the resolved cross-lane carry matter? One compare per column
      // (negligible against the 3L epochs) keeps a census of how often the
      // scan's extra pass is load-bearing rather than pure overhead. Skipped
      // for counting vectors: the compare is observability, not part of the
      // algorithm's op mix, and scan's census must stay mask-free (Fig. 3).
      if constexpr (!ins::is_counting_v<V>) {
        if (V::any_gt(V::subs(vB, vGapO), V::load(htarr))) {
          ++res.stats.scan_carry_cols;
        }
      }

      // --- pass 2: finalize T = max(Ht, D-tilde - o) ----------------------
      V vDt = vB;
      for (std::size_t t = 0; t < L; ++t) {
        const std::size_t off = t * static_cast<std::size_t>(p);
        const V vHt = V::load(htarr + off);
        const V vH = V::max(vHt, V::subs(vDt, vGapO));
        vMax = V::max(vMax, vH);
        vH.store(hstore + off);
        vDt = V::subs(V::max(vDt, vHt), vGapE);
        ins::count_scalar<V>(ins::OpCategory::ScalarArith, 2);
        ins::count_scalar<V>(ins::OpCategory::ScalarBranch, 1);
      }
      res.stats.main_epochs += 2 * L;

      if constexpr (C == AlignClass::Local) {
        lb.end_column(vMax, hstore, L, static_cast<std::int32_t>(j));
      }
      if constexpr (C == AlignClass::SemiGlobal) {
        if (ends_.free_query_end) {
          const T last = detail::striped_get(hstore, L, p, qlen_ - 1);
          ins::count_scalar<V>(ins::OpCategory::ScalarMemory, 1);
          if (std::int64_t{last} > sg_best) {
            sg_best = last;
            sg_best_j = static_cast<std::int32_t>(j);
          }
        }
      }

      std::swap(hload, hstore);
    }

    const T* hfinal = hload;
    if constexpr (C == AlignClass::Global) {
      res.score = detail::striped_get(hfinal, L, p, qlen_ - 1);
      res.query_end = static_cast<std::int32_t>(qlen_) - 1;
      res.db_end = static_cast<std::int32_t>(m) - 1;
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else if constexpr (C == AlignClass::SemiGlobal) {
      // Both sequences fully consumed is always admissible.
      const T corner = detail::striped_get(hfinal, L, p, qlen_ - 1);
      if (std::int64_t{corner} > sg_best) {
        sg_best = corner;
        sg_best_j = static_cast<std::int32_t>(m) - 1;
      }
      res.score = static_cast<std::int32_t>(sg_best);
      res.query_end = static_cast<std::int32_t>(qlen_) - 1;
      res.db_end = sg_best_j;
      // Final column: admissible when trailing query residues are free.
      if (ends_.free_db_end) {
        std::int64_t col_best = std::numeric_limits<std::int64_t>::min();
        std::int32_t col_r = -1;
        for (std::size_t r = 0; r < qlen_; ++r) {
          const T v = detail::striped_get(hfinal, L, p, r);
          if (std::int64_t{v} > col_best) {
            col_best = v;
            col_r = static_cast<std::int32_t>(r);
          }
        }
        if (col_best > sg_best) {
          res.score = static_cast<std::int32_t>(col_best);
          res.query_end = col_r;
          res.db_end = static_cast<std::int32_t>(m) - 1;
        }
      }
      // Boundary endpoints: the alignment may consume no database residues
      // (cell H[n][0]) or no query residues (cell H[0][m]) when the matching
      // end is free.
      if (ends_.free_query_end) {
        const std::int64_t b = detail::col_boundary<C>(
            static_cast<std::int64_t>(qlen_), gap_, ends_);
        if (b > std::int64_t{res.score}) {
          res.score = static_cast<std::int32_t>(b);
          res.query_end = static_cast<std::int32_t>(qlen_) - 1;
          res.db_end = -1;
        }
      }
      if (ends_.free_db_end) {
        const std::int64_t b = detail::row_boundary<C>(
            static_cast<std::int64_t>(m), gap_, ends_);
        if (b > std::int64_t{res.score}) {
          res.score = static_cast<std::int32_t>(b);
          res.query_end = -1;
          res.db_end = static_cast<std::int32_t>(m) - 1;
        }
      }
      res.overflowed = detail::answer_hit_rails<T>(res.score);
    } else {
      lb.finish(res, L, qlen_);
    }
    if constexpr (simd::ElemTraits<T>::saturating) {
      if (vMax.hmax() >= simd::ElemTraits<T>::max_value) res.overflowed = true;
    }
    return res;
  }

 private:
  const ScoreMatrix* matrix_;
  GapPenalty gap_;
  HscanKind hscan_;
  SemiGlobalEnds ends_;
  StripedProfile<T> prof_;
  std::size_t qlen_ = 0;
  aligned_vector<T> h0_, h1_, e_, ht_;
};

}  // namespace valign
