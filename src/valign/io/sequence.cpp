#include "valign/io/sequence.hpp"

#include <cctype>

namespace valign {

// --- Alphabet ---------------------------------------------------------------

Alphabet::Alphabet(std::string letters, char wildcard)
    : letters_(std::move(letters)), wildcard_(wildcard) {
  table_.fill(-1);
  for (std::size_t i = 0; i < letters_.size(); ++i) {
    const char c = letters_[i];
    table_[static_cast<unsigned char>(std::toupper(static_cast<unsigned char>(c)))] =
        static_cast<std::int16_t>(i);
    table_[static_cast<unsigned char>(std::tolower(static_cast<unsigned char>(c)))] =
        static_cast<std::int16_t>(i);
  }
  if (wildcard_ != 0) {
    const std::int16_t wc = table_[static_cast<unsigned char>(wildcard_)];
    if (wc < 0) throw Error("Alphabet: wildcard not in letter set");
    for (int c = 0; c < 256; ++c) {
      if (table_[static_cast<std::size_t>(c)] < 0 &&
          std::isalpha(static_cast<unsigned char>(c))) {
        table_[static_cast<std::size_t>(c)] = wc;
      }
    }
  }
}

const Alphabet& Alphabet::protein() {
  static const Alphabet a("ARNDCQEGHILKMFPSTWYVBZX*", 'X');
  return a;
}

const Alphabet& Alphabet::dna() {
  static const Alphabet a("ACGTN", 'N');
  return a;
}

// --- Sequence ---------------------------------------------------------------

Sequence::Sequence(std::string name, std::string_view residues,
                   const Alphabet& alphabet)
    : name_(std::move(name)), alphabet_(&alphabet) {
  codes_.reserve(residues.size());
  for (char c : residues) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int code = alphabet.encode(c);
    if (code < 0) {
      throw Error("Sequence '" + name_ + "': character '" + std::string(1, c) +
                  "' outside alphabet and no wildcard configured");
    }
    codes_.push_back(static_cast<std::uint8_t>(code));
  }
}

Sequence::Sequence(std::string name, std::vector<std::uint8_t> codes,
                   const Alphabet& alphabet)
    : name_(std::move(name)), codes_(std::move(codes)), alphabet_(&alphabet) {
  for (const std::uint8_t c : codes_) {
    if (c >= static_cast<std::uint8_t>(alphabet.size())) {
      throw Error("Sequence '" + name_ + "': code out of alphabet range");
    }
  }
}

std::string Sequence::to_string() const {
  std::string s;
  s.reserve(codes_.size());
  for (const std::uint8_t c : codes_) s.push_back(alphabet_->decode(c));
  return s;
}

// --- Dataset ----------------------------------------------------------------

void Dataset::add(Sequence s) {
  if (!(s.alphabet() == *alphabet_)) {
    throw Error("Dataset::add: sequence alphabet differs from dataset alphabet");
  }
  seqs_.push_back(std::move(s));
}

std::uint64_t Dataset::total_residues() const noexcept {
  std::uint64_t t = 0;
  for (const Sequence& s : seqs_) t += s.size();
  return t;
}

double Dataset::mean_length() const noexcept {
  if (seqs_.empty()) return 0.0;
  return static_cast<double>(total_residues()) / static_cast<double>(seqs_.size());
}

std::size_t Dataset::max_length() const noexcept {
  std::size_t m = 0;
  for (const Sequence& s : seqs_) m = std::max(m, s.size());
  return m;
}

}  // namespace valign
