#include "valign/io/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace valign {

namespace {

/// Drops trailing line-ending and whitespace characters: CRLF files leave a
/// '\r' on every getline result, and hand-edited FASTA often carries trailing
/// spaces/tabs. A whitespace-only line becomes empty (= blank line).
void rstrip(std::string& line) {
  while (!line.empty()) {
    const char c = line.back();
    if (c != '\r' && c != '\n' && c != ' ' && c != '\t') break;
    line.pop_back();
  }
}

std::string header_name(const std::string& line) {
  // Skip '>' then take the first whitespace-delimited token.
  std::size_t start = 1;
  while (start < line.size() &&
         std::isspace(static_cast<unsigned char>(line[start]))) {
    ++start;
  }
  std::size_t end = start;
  while (end < line.size() && !std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  return line.substr(start, end - start);
}

}  // namespace

FastaReader::FastaReader(std::istream& in, const Alphabet& alphabet)
    : in_(&in), alphabet_(&alphabet) {}

std::optional<Sequence> FastaReader::next() {
  std::string line;
  std::string residues;
  while (std::getline(*in_, line)) {
    rstrip(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      const std::string name = header_name(line);
      if (name.empty()) throw Error("FASTA: header with empty name");
      if (in_record_) {
        // The previous record is complete; emit it and hold this header.
        if (residues.empty()) {
          throw Error("FASTA: record '" + pending_name_ + "' has no residues");
        }
        Sequence s(pending_name_, residues, *alphabet_);
        pending_name_ = name;
        ++count_;
        return s;
      }
      pending_name_ = name;
      in_record_ = true;
    } else if (line[0] == ';') {
      continue;  // classic FASTA comment line
    } else {
      if (!in_record_) throw Error("FASTA: sequence data before first '>' header");
      residues += line;
    }
  }
  if (in_record_) {
    in_record_ = false;
    if (residues.empty()) {
      throw Error("FASTA: record '" + pending_name_ + "' has no residues");
    }
    ++count_;
    return Sequence(pending_name_, residues, *alphabet_);
  }
  return std::nullopt;
}

Dataset read_fasta(std::istream& in, const Alphabet& alphabet) {
  Dataset ds(alphabet);
  FastaReader reader(in, alphabet);
  while (auto s = reader.next()) ds.add(*std::move(s));
  return ds;
}

Dataset read_fasta_file(const std::string& path, const Alphabet& alphabet) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open FASTA file: " + path);
  return read_fasta(in, alphabet);
}

void write_fasta(std::ostream& out, const Dataset& ds, int width) {
  if (width <= 0) throw Error("write_fasta: width must be positive");
  for (const Sequence& s : ds) {
    out << '>' << s.name() << '\n';
    const std::string chars = s.to_string();
    for (std::size_t i = 0; i < chars.size(); i += static_cast<std::size_t>(width)) {
      out << chars.substr(i, static_cast<std::size_t>(width)) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const Dataset& ds, int width) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open FASTA file for writing: " + path);
  write_fasta(out, ds, width);
}

}  // namespace valign
