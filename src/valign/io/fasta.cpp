#include "valign/io/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "valign/robust/failpoint.hpp"

namespace valign {

namespace {

/// Drops trailing line-ending and whitespace characters: CRLF files leave a
/// '\r' on every getline result, and hand-edited FASTA often carries trailing
/// spaces/tabs. A whitespace-only line becomes empty (= blank line).
void rstrip(std::string& line) {
  while (!line.empty()) {
    const char c = line.back();
    if (c != '\r' && c != '\n' && c != ' ' && c != '\t') break;
    line.pop_back();
  }
}

std::string header_name(const std::string& line) {
  // Skip '>' then take the first whitespace-delimited token.
  std::size_t start = 1;
  while (start < line.size() &&
         std::isspace(static_cast<unsigned char>(line[start]))) {
    ++start;
  }
  std::size_t end = start;
  while (end < line.size() && !std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  return line.substr(start, end - start);
}

}  // namespace

FastaReader::FastaReader(std::istream& in, const Alphabet& alphabet,
                         FastaReaderConfig cfg)
    : in_(&in), alphabet_(&alphabet), cfg_(cfg) {}

void FastaReader::fail(robust::StatusCode code, std::size_t at_line,
                       const std::string& name, const std::string& reason) {
  if (cfg_.lenient) {
    quarantine_.add(robust::QuarantinedRecord{name, at_line, code, reason});
    return;
  }
  std::string msg = "FASTA at line " + std::to_string(at_line);
  if (!name.empty()) msg += ", record '" + name + "'";
  msg += ": " + reason;
  throw robust::StatusError(code, std::move(msg));
}

std::optional<Sequence> FastaReader::finish_record(const std::string& residues) {
  if (residues.empty()) {
    fail(robust::StatusCode::IoMalformed, record_line_, pending_name_,
         "record has no residues");
    return std::nullopt;  // lenient: quarantined
  }
  try {
    return Sequence(pending_name_, residues, *alphabet_);
  } catch (const robust::StatusError&) {
    throw;  // strict-mode fail() from a nested reader — already categorized
  } catch (const Error& e) {
    fail(robust::StatusCode::IoMalformed, record_line_, pending_name_, e.what());
    return std::nullopt;
  }
}

std::optional<Sequence> FastaReader::next() {
  std::string line;
  std::string residues;
  for (;;) {
    if (!std::getline(*in_, line)) {
      if (in_->bad()) {
        fail(robust::StatusCode::IoTruncated, line_ + 1,
             in_record_ ? pending_name_ : std::string(),
             "stream read failed mid-parse");
        in_record_ = false;
        return std::nullopt;  // lenient: the tail of the stream is lost
      }
      if (in_record_) {
        in_record_ = false;
        if (auto done = finish_record(residues)) {
          ++count_;
          return done;
        }
      }
      return std::nullopt;
    }
    ++line_;
    rstrip(line);

    bool injected = false;
    VALIGN_FAILPOINT("io.fasta.read", injected = true);
    if (injected) {
      // Simulated transient read failure: the line is lost, so the record it
      // belonged to can no longer be trusted.
      fail(robust::StatusCode::IoTruncated, line_,
           in_record_ ? pending_name_ : std::string(),
           "injected read failure (io.fasta.read)");
      residues.clear();
      in_record_ = false;
      skipping_ = true;  // lenient: resync at the next header
      continue;
    }

    if (line.empty()) continue;
    if (line[0] == '>') {
      const std::string name = header_name(line);
      std::optional<Sequence> done;
      if (in_record_) {
        in_record_ = false;
        done = finish_record(residues);
        residues.clear();
      }
      if (name.empty()) {
        fail(robust::StatusCode::IoMalformed, line_, std::string(),
             "header with empty name");
        skipping_ = true;  // lenient: the nameless record's body is discarded
      } else {
        pending_name_ = name;
        record_line_ = line_;
        in_record_ = true;
        skipping_ = false;
      }
      if (done) {
        ++count_;
        return done;
      }
    } else if (line[0] == ';') {
      continue;  // classic FASTA comment line
    } else {
      if (skipping_) continue;
      if (!in_record_) {
        fail(robust::StatusCode::IoMalformed, line_, std::string(),
             "sequence data before first '>' header");
        skipping_ = true;
        continue;
      }
      if (residues.size() + line.size() > cfg_.max_sequence_length) {
        fail(robust::StatusCode::ResourceExhausted, record_line_, pending_name_,
             "record exceeds max_sequence_length (" +
                 std::to_string(cfg_.max_sequence_length) + " residues)");
        residues.clear();
        in_record_ = false;
        skipping_ = true;
        continue;
      }
      residues += line;
    }
  }
}

Dataset read_fasta(std::istream& in, const Alphabet& alphabet) {
  return read_fasta(in, alphabet, FastaReaderConfig{});
}

Dataset read_fasta(std::istream& in, const Alphabet& alphabet,
                   const FastaReaderConfig& cfg,
                   robust::QuarantineStats* quarantine) {
  Dataset ds(alphabet);
  FastaReader reader(in, alphabet, cfg);
  while (auto s = reader.next()) ds.add(*std::move(s));
  if (quarantine != nullptr) *quarantine += reader.quarantine();
  return ds;
}

Dataset read_fasta_file(const std::string& path, const Alphabet& alphabet) {
  return read_fasta_file(path, alphabet, FastaReaderConfig{});
}

Dataset read_fasta_file(const std::string& path, const Alphabet& alphabet,
                        const FastaReaderConfig& cfg,
                        robust::QuarantineStats* quarantine) {
  std::ifstream in(path);
  if (!in) {
    throw robust::StatusError(robust::StatusCode::IoTruncated,
                              "cannot open FASTA file: " + path);
  }
  return read_fasta(in, alphabet, cfg, quarantine);
}

void write_fasta(std::ostream& out, const Dataset& ds, int width) {
  if (width <= 0) throw Error("write_fasta: width must be positive");
  for (const Sequence& s : ds) {
    out << '>' << s.name() << '\n';
    const std::string chars = s.to_string();
    for (std::size_t i = 0; i < chars.size(); i += static_cast<std::size_t>(width)) {
      out << chars.substr(i, static_cast<std::size_t>(width)) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const Dataset& ds, int width) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open FASTA file for writing: " + path);
  write_fasta(out, ds, width);
}

}  // namespace valign
