// Biological sequences: encoded residue storage plus dataset containers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "valign/common.hpp"
#include "valign/io/alphabet.hpp"

namespace valign {

/// A named sequence stored as dense residue codes for an Alphabet.
///
/// Engines consume the encoded form (`codes()`); the raw characters can be
/// recovered with `to_string()`.
class Sequence {
 public:
  Sequence() = default;

  /// Encodes `residues` with `alphabet`. Unknown characters map to the
  /// alphabet wildcard; throws valign::Error if there is no wildcard.
  Sequence(std::string name, std::string_view residues, const Alphabet& alphabet);

  /// Adopts already-encoded codes (used by generators).
  Sequence(std::string name, std::vector<std::uint8_t> codes, const Alphabet& alphabet);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return codes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return codes_.empty(); }
  [[nodiscard]] std::span<const std::uint8_t> codes() const noexcept { return codes_; }
  [[nodiscard]] const Alphabet& alphabet() const noexcept { return *alphabet_; }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const noexcept { return codes_[i]; }

  /// Decode back into residue characters.
  [[nodiscard]] std::string to_string() const;

 private:
  std::string name_;
  std::vector<std::uint8_t> codes_;
  const Alphabet* alphabet_ = &Alphabet::protein();
};

/// An ordered collection of sequences sharing one alphabet.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(const Alphabet& alphabet) : alphabet_(&alphabet) {}

  void add(Sequence s);
  [[nodiscard]] std::size_t size() const noexcept { return seqs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return seqs_.empty(); }
  [[nodiscard]] const Sequence& operator[](std::size_t i) const noexcept { return seqs_[i]; }
  [[nodiscard]] const Alphabet& alphabet() const noexcept { return *alphabet_; }

  [[nodiscard]] auto begin() const noexcept { return seqs_.begin(); }
  [[nodiscard]] auto end() const noexcept { return seqs_.end(); }

  /// Total residues across all sequences.
  [[nodiscard]] std::uint64_t total_residues() const noexcept;
  /// Mean sequence length (0 for an empty dataset).
  [[nodiscard]] double mean_length() const noexcept;
  /// Longest sequence length (0 for an empty dataset).
  [[nodiscard]] std::size_t max_length() const noexcept;

 private:
  std::vector<Sequence> seqs_;
  const Alphabet* alphabet_ = &Alphabet::protein();
};

}  // namespace valign
