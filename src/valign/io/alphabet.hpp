// Residue alphabets and character encoding.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "valign/common.hpp"

namespace valign {

/// Maps residue characters to dense codes [0, size) and back.
///
/// Encoding is case-insensitive. Characters outside the alphabet map to the
/// wildcard residue when one exists ('X' for protein, 'N' for DNA), otherwise
/// encode() reports failure via the -1 sentinel.
class Alphabet {
 public:
  Alphabet() = default;

  /// `letters` lists the residues in code order, e.g. "ARNDCQEGHILKMFPSTWYVBZX*".
  /// `wildcard` is the catch-all residue (0 to disable).
  explicit Alphabet(std::string letters, char wildcard = 0);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(letters_.size()); }
  [[nodiscard]] const std::string& letters() const noexcept { return letters_; }
  [[nodiscard]] char wildcard() const noexcept { return wildcard_; }

  /// Dense code for `c`, the wildcard's code for unknown characters, or -1
  /// when unknown and no wildcard is configured.
  [[nodiscard]] int encode(char c) const noexcept {
    return table_[static_cast<unsigned char>(c)];
  }

  /// Character for code `i` (undefined for out-of-range codes).
  [[nodiscard]] char decode(int i) const noexcept {
    return letters_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] bool contains(char c) const noexcept {
    return table_[static_cast<unsigned char>(c)] >= 0;
  }

  [[nodiscard]] bool operator==(const Alphabet& o) const noexcept {
    return letters_ == o.letters_ && wildcard_ == o.wildcard_;
  }

  /// The 24-letter NCBI protein alphabet used by the BLOSUM matrices.
  [[nodiscard]] static const Alphabet& protein();
  /// A-C-G-T plus the N wildcard.
  [[nodiscard]] static const Alphabet& dna();

 private:
  std::string letters_;
  char wildcard_ = 0;
  std::array<std::int16_t, 256> table_{};  // -1 = unknown
};

}  // namespace valign
