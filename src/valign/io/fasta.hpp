// FASTA reading and writing.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "valign/io/sequence.hpp"

namespace valign {

/// Incremental FASTA parser: yields one record at a time so callers (e.g.
/// runtime::SearchPipeline) can overlap parsing with alignment instead of
/// materializing the whole database first. Header lines start with '>'; the
/// first whitespace-delimited token becomes the sequence name. Throws
/// valign::Error on malformed input (data before the first header, empty
/// records).
class FastaReader {
 public:
  /// `in` and `alphabet` must outlive the reader.
  FastaReader(std::istream& in, const Alphabet& alphabet);

  /// The next record, or nullopt at end of stream.
  [[nodiscard]] std::optional<Sequence> next();

  /// Records yielded so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  std::istream* in_;
  const Alphabet* alphabet_;
  std::string pending_name_;  ///< Header seen but record not yet emitted.
  bool in_record_ = false;
  std::size_t count_ = 0;
};

/// Reads every record of a FASTA stream into a Dataset, encoding residues
/// with `alphabet`. See FastaReader for the accepted grammar and errors.
[[nodiscard]] Dataset read_fasta(std::istream& in, const Alphabet& alphabet);

/// File-path convenience overload. Throws valign::Error if unreadable.
[[nodiscard]] Dataset read_fasta_file(const std::string& path, const Alphabet& alphabet);

/// Writes `ds` in FASTA format with lines wrapped at `width` residues.
void write_fasta(std::ostream& out, const Dataset& ds, int width = 70);

/// File-path convenience overload. Throws valign::Error if unwritable.
void write_fasta_file(const std::string& path, const Dataset& ds, int width = 70);

}  // namespace valign
