// FASTA reading and writing.
#pragma once

#include <iosfwd>
#include <string>

#include "valign/io/sequence.hpp"

namespace valign {

/// Reads every record of a FASTA stream into a Dataset, encoding residues
/// with `alphabet`. Header lines start with '>'; the first whitespace-
/// delimited token becomes the sequence name. Throws valign::Error on
/// malformed input (data before the first header, empty records).
[[nodiscard]] Dataset read_fasta(std::istream& in, const Alphabet& alphabet);

/// File-path convenience overload. Throws valign::Error if unreadable.
[[nodiscard]] Dataset read_fasta_file(const std::string& path, const Alphabet& alphabet);

/// Writes `ds` in FASTA format with lines wrapped at `width` residues.
void write_fasta(std::ostream& out, const Dataset& ds, int width = 70);

/// File-path convenience overload. Throws valign::Error if unwritable.
void write_fasta_file(const std::string& path, const Dataset& ds, int width = 70);

}  // namespace valign
