// FASTA reading and writing.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "valign/io/sequence.hpp"
#include "valign/robust/quarantine.hpp"

namespace valign {

struct FastaReaderConfig {
  /// Strict (default): the first malformed record throws robust::StatusError
  /// (code io_malformed / io_truncated / resource_exhausted) naming the line
  /// and record. Lenient: bad records are skipped and tallied in
  /// quarantine(); next() only yields records that parsed cleanly.
  bool lenient = false;
  /// Residue cap per record; a corrupt multi-GB record fails (or is
  /// quarantined) instead of exhausting memory.
  std::size_t max_sequence_length = std::size_t{1} << 30;
};

/// Incremental FASTA parser: yields one record at a time so callers (e.g.
/// runtime::SearchPipeline) can overlap parsing with alignment instead of
/// materializing the whole database first. Header lines start with '>'; the
/// first whitespace-delimited token becomes the sequence name. Malformed
/// input (data before the first header, empty records, oversized records,
/// stream failures) throws robust::StatusError in strict mode and is
/// quarantined in lenient mode — see FastaReaderConfig.
class FastaReader {
 public:
  /// `in` and `alphabet` must outlive the reader.
  FastaReader(std::istream& in, const Alphabet& alphabet,
              FastaReaderConfig cfg = {});

  /// The next clean record, or nullopt at end of stream.
  [[nodiscard]] std::optional<Sequence> next();

  /// Records yielded so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Lines consumed so far (1-based after the first getline).
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

  /// Records skipped in lenient mode (empty in strict mode: the first bad
  /// record throws instead).
  [[nodiscard]] const robust::QuarantineStats& quarantine() const noexcept {
    return quarantine_;
  }

 private:
  /// Quarantines (lenient) or throws (strict) one bad record/event.
  void fail(robust::StatusCode code, std::size_t at_line,
            const std::string& name, const std::string& reason);
  /// Builds the pending record; nullopt when it was quarantined.
  [[nodiscard]] std::optional<Sequence> finish_record(const std::string& residues);

  std::istream* in_;
  const Alphabet* alphabet_;
  FastaReaderConfig cfg_;
  std::string pending_name_;   ///< Header seen but record not yet emitted.
  std::size_t record_line_ = 0;  ///< Line of the pending record's header.
  bool in_record_ = false;
  bool skipping_ = false;  ///< Lenient: discarding lines until the next header.
  std::size_t line_ = 0;
  std::size_t count_ = 0;
  robust::QuarantineStats quarantine_;
};

/// Reads every record of a FASTA stream into a Dataset, encoding residues
/// with `alphabet`. See FastaReader for the accepted grammar and errors.
[[nodiscard]] Dataset read_fasta(std::istream& in, const Alphabet& alphabet);

/// Config-aware overload: lenient mode skips bad records; when `quarantine`
/// is non-null the reader's tallies are added to it.
[[nodiscard]] Dataset read_fasta(std::istream& in, const Alphabet& alphabet,
                                 const FastaReaderConfig& cfg,
                                 robust::QuarantineStats* quarantine = nullptr);

/// File-path convenience overloads. Throw robust::StatusError (io_truncated)
/// if unreadable.
[[nodiscard]] Dataset read_fasta_file(const std::string& path, const Alphabet& alphabet);
[[nodiscard]] Dataset read_fasta_file(const std::string& path, const Alphabet& alphabet,
                                      const FastaReaderConfig& cfg,
                                      robust::QuarantineStats* quarantine = nullptr);

/// Writes `ds` in FASTA format with lines wrapped at `width` residues.
void write_fasta(std::ostream& out, const Dataset& ds, int width = 70);

/// File-path convenience overload. Throws valign::Error if unwritable.
void write_fasta_file(const std::string& path, const Dataset& ds, int width = 70);

}  // namespace valign
