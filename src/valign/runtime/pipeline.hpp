// Streaming search pipeline: overlaps FASTA parsing, query-profile building,
// alignment and top-k reduction through a bounded producer/consumer queue.
//
// The producer (the thread calling push(), typically walking a FastaReader)
// batches database sequences into shards; worker threads pop shards, align
// every query against them with an engine-cached Aligner, and keep a pruned
// per-query candidate set. finish() joins the workers and merges candidates
// under the deterministic (score desc, db_index asc) hit order, so a
// streamed run reports exactly what the batch driver reports.
//
// Back-pressure: push() blocks while `queue_capacity` shards are in flight,
// bounding memory no matter how large the database stream is.
//
// Fault tolerance (docs/robustness.md): an exception escaping shard
// processing fails the shard, not the process — workers capture it, retry
// transient failures with bounded backoff, and record permanent failures in
// the report. finish() rethrows a summarized error only when the
// cfg.search.robust.max_errors budget is exceeded. An optional stall
// watchdog (stall_timeout_ms > 0) trips when neither producer nor workers
// make progress and fails push()/finish() fast with a diagnostic dump.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "valign/apps/db_search.hpp"

namespace valign::runtime {

/// Candidate-set size at which a worker prunes back to top_k. Pruning to the
/// local top-k is lossless for the global top-k (dropped hits are dominated
/// within one worker) and keeps memory ~O(top_k) per query per worker.
[[nodiscard]] constexpr std::size_t top_k_prune_threshold(int top_k) noexcept {
  const auto k = static_cast<std::size_t>(top_k > 0 ? top_k : 0);
  return 4 * k + 256;
}

struct PipelineConfig {
  apps::SearchConfig search{};
  /// Database sequences per queue shard (amortizes locking and per-shard
  /// query switches).
  std::size_t batch_size = 32;
  /// Maximum shards in flight; 0 = 4x the worker count.
  std::size_t queue_capacity = 0;
};

class SearchPipeline {
 public:
  /// `queries` must outlive the pipeline. Workers start immediately.
  SearchPipeline(const Dataset& queries, PipelineConfig cfg);
  /// Safe on every path, including exception unwind before finish(): closes
  /// the queue, tells workers to discard unprocessed shards, and joins them.
  ~SearchPipeline();

  SearchPipeline(const SearchPipeline&) = delete;
  SearchPipeline& operator=(const SearchPipeline&) = delete;

  /// Appends one database sequence; its db_index is the push order. Blocks
  /// while the queue is full. Must not be called after finish(). Throws
  /// robust::StatusError (internal) if the stall watchdog tripped.
  void push(Sequence s);

  /// Closes the input, drains the queue, joins the workers and returns the
  /// merged report. Call exactly once. Throws robust::StatusError when more
  /// than cfg.search.robust.max_errors shards failed, or when the stall
  /// watchdog tripped; the pipeline is fully torn down first either way.
  [[nodiscard]] apps::SearchReport finish();

  /// Database sequences pushed so far.
  [[nodiscard]] std::size_t pushed() const noexcept { return next_index_; }

 private:
  struct Shard {
    std::vector<Sequence> seqs;
    std::size_t base = 0;  ///< db_index of seqs[0].
  };

  struct WorkerState {
    AlignStats stats{};
    std::uint64_t alignments = 0;
    std::uint64_t cells_real = 0;
    EngineCacheStats cache{};                        ///< Copied at worker exit.
    std::array<std::uint64_t, 3> width_counts{};     ///< Per element width.
    InterSeqBatchStats interseq{};                   ///< Copied at worker exit.
    std::uint64_t interseq_fallbacks = 0;
    PrefilterStats prefilter_stats{};                ///< Copied at worker exit.
    std::uint64_t prefilter_screened = 0;    ///< Pairs submitted to the screen.
    std::uint64_t prefilter_escalated = 0;   ///< Pairs escalated to full DP.
    std::uint64_t prefilter_failures = 0;    ///< Screens degraded to full DP.
    std::uint64_t prefilter_chunks = 0;      ///< Escalation chunks executed.
    std::vector<std::vector<apps::SearchHit>> hits;  // per query
    // Degraded-mode accounting (see docs/robustness.md).
    std::vector<robust::ShardFailure> failures;  ///< Permanent shard failures.
    std::uint64_t shard_retries = 0;  ///< Transient-failure re-attempts.
    std::uint64_t records_dropped = 0;  ///< Records in failed shards.
  };

  void worker_main(WorkerState& state);
  void flush_shard();  // hand fill_ to the queue (may block)
  void watchdog_main();
  void trip_stall();
  void stop_watchdog();
  /// Cooperative busy-wait used by the pipeline.worker_hang failpoint: spins
  /// until the watchdog trips (or a 10 s cap), so stall handling is testable
  /// without wedging the test binary.
  void hang_for_watchdog();
  [[noreturn]] void throw_stalled();

  const Dataset* queries_;
  PipelineConfig cfg_;
  std::size_t capacity_;

  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Shard> queue_;
  bool closed_ = false;
  bool producer_waiting_ = false;  ///< Producer blocked on back-pressure.
  std::string stall_diagnostic_;   ///< Written once by trip_stall().

  Shard fill_;             ///< Producer-side shard being assembled.
  std::size_t next_index_ = 0;
  std::size_t shards_flushed_ = 0;  ///< Producer-side; for error summaries.

  std::atomic<bool> stalled_{false};   ///< Watchdog tripped; fail fast.
  std::atomic<bool> discard_{false};   ///< Unwind: drop shards, don't align.
  std::atomic<std::uint64_t> progress_{0};  ///< Bumped on push/pop/complete.

  std::vector<WorkerState> states_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  std::chrono::steady_clock::time_point t0_;
  /// Profile-cache snapshot at construction (the run's delta baseline).
  ProfileCacheStats profile_cache_start_{};
  bool finished_ = false;
};

}  // namespace valign::runtime
