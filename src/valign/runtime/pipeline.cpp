#include "valign/runtime/pipeline.hpp"

#include <algorithm>
#include <optional>
#include <span>

#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"

namespace valign::runtime {

SearchPipeline::SearchPipeline(const Dataset& queries, PipelineConfig cfg)
    : queries_(&queries), cfg_(cfg), t0_(std::chrono::steady_clock::now()) {
  cfg_.batch_size = std::max<std::size_t>(1, cfg_.batch_size);
  const auto nworkers =
      static_cast<std::size_t>(cfg_.search.threads > 0 ? cfg_.search.threads : 1);
  capacity_ = cfg_.queue_capacity > 0 ? cfg_.queue_capacity : 4 * nworkers;

  states_.resize(nworkers);
  for (WorkerState& s : states_) s.hits.resize(queries.size());
  workers_.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    workers_.emplace_back([this, w] { worker_main(states_[w]); });
  }
}

SearchPipeline::~SearchPipeline() {
  if (!finished_) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }
}

void SearchPipeline::flush_shard() {
  if (fill_.seqs.empty()) return;
  Shard shard = std::move(fill_);
  fill_ = Shard{};
  obs::Registry& reg = obs::Registry::global();
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.size() >= capacity_) {
    // Back-pressure: the parser outran the workers and must stall.
    reg.counter("runtime.pipeline.producer_waits").add(1);
  }
  not_full_.wait(lock, [this] { return queue_.size() < capacity_; });
  queue_.push_back(std::move(shard));
  const std::size_t depth = queue_.size();
  lock.unlock();
  reg.counter("runtime.pipeline.shards").add(1);
  reg.gauge("runtime.pipeline.queue_depth_max")
      .record_max(static_cast<std::int64_t>(depth));
  not_empty_.notify_one();
}

void SearchPipeline::push(Sequence s) {
  if (fill_.seqs.empty()) fill_.base = next_index_;
  fill_.seqs.push_back(std::move(s));
  ++next_index_;
  if (fill_.seqs.size() >= cfg_.batch_size) flush_shard();
}

void SearchPipeline::worker_main(WorkerState& state) {
  Aligner aligner(cfg_.search.align);
  std::optional<BatchAligner> batcher;
  int lane_count = 0;
  int alpha = 0;
  if (cfg_.search.engine != EngineMode::Intra) {
    batcher.emplace(cfg_.search.align);
    lane_count = batcher->lanes(
        cfg_.search.align.klass == AlignClass::Local ? 8 : 16);
    alpha = batcher->matrix().size();
  }
  const Dataset& queries = *queries_;
  const std::size_t prune_at = top_k_prune_threshold(cfg_.search.top_k);
  obs::Histogram& shard_us = obs::Registry::global().histogram(
      "runtime.pipeline.shard_us", obs::block_latency_bounds_us());
  std::vector<std::span<const std::uint8_t>> batch_dbs;
  std::vector<AlignResult> batch_out;

  for (;;) {
    Shard shard;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
      if (queue_.empty()) {
        // Closed and drained: expose this worker's cache and lane accounting
        // before exit (the engines die with this frame).
        state.cache = aligner.cache_stats();
        if (batcher.has_value()) {
          state.cache += batcher->fallback_cache_stats();
          state.interseq = batcher->batch_stats();
          state.interseq_fallbacks = batcher->fallbacks();
        }
        return;
      }
      shard = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();

    // The Align budget counts shard processing only, not queue waits.
    const obs::StageSpan align_span(obs::Stage::Align);
    const obs::TraceSpan span(shard_us);
    std::uint64_t shard_residues = 0;
    for (const Sequence& d : shard.seqs) shard_residues += d.size();
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto& hits = state.hits[q];
      const double mean_dlen =
          shard.seqs.empty() ? 0.0
                             : static_cast<double>(shard_residues) /
                                   static_cast<double>(shard.seqs.size());
      const EngineMode mode =
          resolve_engine(cfg_.search.engine, queries[q].size(),
                         shard.seqs.size(), mean_dlen, lane_count, alpha);
      if (mode == EngineMode::Inter) {
        batcher->set_query(queries[q]);
        batch_dbs.clear();
        for (const Sequence& d : shard.seqs) batch_dbs.push_back(d.codes());
        batch_out.resize(shard.seqs.size());
        batcher->align_batch(batch_dbs, batch_out);
        for (std::size_t i = 0; i < shard.seqs.size(); ++i) {
          const AlignResult& r = batch_out[i];
          state.stats += r.stats;
          ++state.alignments;
          state.cells_real += queries[q].size() * shard.seqs[i].size();
          ++state.width_counts[static_cast<std::size_t>(obs::width_index(r.bits))];
          hits.push_back(
              apps::SearchHit{shard.base + i, r.score, r.query_end, r.db_end});
        }
      } else {
        aligner.set_query(queries[q]);
        for (std::size_t i = 0; i < shard.seqs.size(); ++i) {
          const Sequence& d = shard.seqs[i];
          const AlignResult r = aligner.align(d);
          state.stats += r.stats;
          ++state.alignments;
          state.cells_real += queries[q].size() * d.size();
          ++state.width_counts[static_cast<std::size_t>(obs::width_index(r.bits))];
          hits.push_back(
              apps::SearchHit{shard.base + i, r.score, r.query_end, r.db_end});
        }
      }
      if (hits.size() > prune_at) apps::keep_top_hits(hits, cfg_.search.top_k);
    }
  }
}

apps::SearchReport SearchPipeline::finish() {
  flush_shard();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& t : workers_) t.join();
  finished_ = true;

  const obs::StageSpan reduce_span(obs::Stage::Reduce);
  apps::SearchReport report;
  report.top_hits.resize(queries_->size());
  std::vector<apps::SearchHit> merged;
  for (std::size_t q = 0; q < queries_->size(); ++q) {
    merged.clear();
    for (const WorkerState& s : states_) {
      merged.insert(merged.end(), s.hits[q].begin(), s.hits[q].end());
    }
    apps::keep_top_hits(merged, cfg_.search.top_k);
    report.top_hits[q] = merged;
  }
  for (const WorkerState& s : states_) {
    report.totals += s.stats;
    report.alignments += s.alignments;
    report.cells_real += s.cells_real;
    report.cache += s.cache;
    report.interseq += s.interseq;
    report.interseq_fallbacks += s.interseq_fallbacks;
    for (std::size_t w = 0; w < s.width_counts.size(); ++w) {
      report.width_counts[w] += s.width_counts[w];
    }
  }
  publish_cache_stats(report.cache);
  if (cfg_.search.engine != EngineMode::Intra) {
    publish_interseq_stats(report.interseq, report.interseq_fallbacks);
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  return report;
}

}  // namespace valign::runtime
