#include "valign/runtime/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <optional>
#include <span>
#include <sstream>
#include <string>

#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"
#include "valign/robust/failpoint.hpp"

namespace valign::runtime {

SearchPipeline::SearchPipeline(const Dataset& queries, PipelineConfig cfg)
    : queries_(&queries), cfg_(cfg), t0_(std::chrono::steady_clock::now()) {
  profile_cache_start_ = SharedProfileCache::global().stats();
  cfg_.batch_size = std::max<std::size_t>(1, cfg_.batch_size);
  const auto nworkers =
      static_cast<std::size_t>(cfg_.search.threads > 0 ? cfg_.search.threads : 1);
  capacity_ = cfg_.queue_capacity > 0 ? cfg_.queue_capacity : 4 * nworkers;

  states_.resize(nworkers);
  for (WorkerState& s : states_) s.hits.resize(queries.size());
  // Timeline: open every query's async span before any shard can arrive, so
  // per-query spans cover the full streamed run.
  if (obs::query_trace_enabled()) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      obs::TraceContext(static_cast<std::uint32_t>(q))
          .instant(obs::TraceEventKind::QueryBegin,
                   static_cast<std::int64_t>(queries[q].size()));
    }
  }
  workers_.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    workers_.emplace_back([this, w] {
      if (obs::query_trace_enabled()) {
        obs::set_trace_thread_name("worker-" + std::to_string(w));
      }
      worker_main(states_[w]);
    });
  }
  if (cfg_.search.robust.stall_timeout_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

SearchPipeline::~SearchPipeline() {
  if (finished_) return;
  // Exception-unwind path: finish() never ran. Close the queue and tell the
  // workers to discard what's left — aligning abandoned shards during unwind
  // would only delay the exception — then join everything so no thread
  // outlives its WorkerState.
  discard_.store(true, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  stop_watchdog();
}

void SearchPipeline::stop_watchdog() {
  if (!watchdog_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  watchdog_.join();
}

void SearchPipeline::trip_stall() {
  obs::Registry::global().counter("runtime.pipeline.stalls").add(1);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "pipeline stalled: no progress for "
       << cfg_.search.robust.stall_timeout_ms << " ms"
       << " (queue_depth=" << queue_.size() << "/" << capacity_
       << ", records_pushed=" << next_index_ << ", closed=" << closed_
       << ", producer_waiting=" << producer_waiting_
       << ", workers=" << workers_.size() << ")";
    stall_diagnostic_ = os.str();
    stalled_.store(true, std::memory_order_release);
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void SearchPipeline::throw_stalled() {
  std::string diag;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    diag = stall_diagnostic_;
  }
  throw robust::StatusError(robust::StatusCode::Internal, diag);
}

void SearchPipeline::watchdog_main() {
  using clock = std::chrono::steady_clock;
  const auto timeout = std::chrono::milliseconds(cfg_.search.robust.stall_timeout_ms);
  const auto poll = std::min<std::chrono::milliseconds>(
      timeout / 4 + std::chrono::milliseconds(1), std::chrono::milliseconds(50));
  std::uint64_t last = progress_.load(std::memory_order_relaxed);
  auto last_change = clock::now();
  std::unique_lock<std::mutex> lock(wd_mu_);
  for (;;) {
    if (wd_cv_.wait_for(lock, poll, [this] { return wd_stop_; })) return;
    const std::uint64_t cur = progress_.load(std::memory_order_relaxed);
    const auto now = clock::now();
    if (cur != last) {
      last = cur;
      last_change = now;
      continue;
    }
    bool pending = false;
    {
      const std::lock_guard<std::mutex> qlock(mu_);
      pending = !queue_.empty() || producer_waiting_;
    }
    if (!pending) {
      // Idle (e.g. a slow upstream parser) is not a stall.
      last_change = now;
      continue;
    }
    if (now - last_change < timeout) continue;
    trip_stall();
    return;
  }
}

void SearchPipeline::hang_for_watchdog() {
  const auto t0 = std::chrono::steady_clock::now();
  while (!stalled_.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void SearchPipeline::flush_shard() {
  if (fill_.seqs.empty()) return;
  Shard shard = std::move(fill_);
  fill_ = Shard{};
  const std::size_t shard_base = shard.base;
  const std::size_t shard_count = shard.seqs.size();
  obs::Registry& reg = obs::Registry::global();
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.size() >= capacity_) {
    // Back-pressure: the parser outran the workers and must stall.
    reg.counter("runtime.pipeline.producer_waits").add(1);
  }
  producer_waiting_ = true;
  not_full_.wait(lock, [this] {
    return queue_.size() < capacity_ || stalled_.load(std::memory_order_acquire);
  });
  producer_waiting_ = false;
  if (stalled_.load(std::memory_order_acquire)) {
    lock.unlock();
    throw_stalled();
  }
  queue_.push_back(std::move(shard));
  const std::size_t depth = queue_.size();
  lock.unlock();
  ++shards_flushed_;
  progress_.fetch_add(1, std::memory_order_relaxed);
  obs::trace_instant(obs::TraceEventKind::Enqueue, obs::kNoQuery,
                     static_cast<std::int64_t>(shard_base),
                     static_cast<std::int64_t>(shard_count));
  reg.counter("runtime.pipeline.shards").add(1);
  reg.gauge("runtime.pipeline.queue_depth_max")
      .record_max(static_cast<std::int64_t>(depth));
  not_empty_.notify_one();
}

void SearchPipeline::push(Sequence s) {
  if (stalled_.load(std::memory_order_acquire)) throw_stalled();
  if (fill_.seqs.empty()) fill_.base = next_index_;
  fill_.seqs.push_back(std::move(s));
  ++next_index_;
  if (fill_.seqs.size() >= cfg_.batch_size) flush_shard();
}

void SearchPipeline::worker_main(WorkerState& state) {
  Aligner aligner(cfg_.search.align);
  std::optional<BatchAligner> batcher;
  int lane_count = 0;
  int alpha = 0;
  if (cfg_.search.engine != EngineMode::Intra) {
    batcher.emplace(cfg_.search.align);
    lane_count = batcher->lanes(
        cfg_.search.align.klass == AlignClass::Local ? 8 : 16);
    alpha = batcher->matrix().size();
  }
  const Dataset& queries = *queries_;
  const std::size_t prune_at = top_k_prune_threshold(cfg_.search.top_k);
  obs::Histogram& shard_us = obs::Registry::global().histogram(
      "runtime.pipeline.shard_us", obs::block_latency_bounds_us());
  std::vector<std::span<const std::uint8_t>> batch_dbs;
  std::vector<AlignResult> batch_out;

  // Two-stage prescreen (docs/prefilter.md). The stream's cardinality is
  // unknown up front, so Auto treats it as large. Each worker keeps its own
  // per-query running k-th-best cutoff across shards: a worker sees a subset
  // of all pairs, so its cutoff never exceeds the global one and dropping
  // against it is strictly conservative.
  const bool prefilter_on = apps::prefilter_active(
      cfg_.search, std::numeric_limits<std::size_t>::max());
  const PrefilterModel model = cfg_.search.prefilter_model
                                   ? *cfg_.search.prefilter_model
                                   : PrefilterModel::conservative();
  const std::int64_t margin = model.margin_for(cfg_.search.align.klass);
  const auto top_k = static_cast<std::size_t>(std::max(cfg_.search.top_k, 0));
  const std::size_t chunk_cap =
      std::max<std::size_t>(16, lane_count > 0
                                    ? 2 * static_cast<std::size_t>(lane_count)
                                    : 0);
  std::optional<Prefilter> prefilter;
  std::vector<TopKCutoff> cutoffs;
  if (prefilter_on) {
    prefilter.emplace(cfg_.search.align);
    cutoffs.assign(queries.size(), TopKCutoff(top_k));
  }
  std::vector<PrefilterVerdict> verdicts;
  CandidateQueue queue;
  std::vector<std::size_t> chunk(chunk_cap);

  // Shard-transactional scratch: one attempt accumulates here and commits
  // into `state` only on success, so a failed or retried attempt never
  // leaves partial hits or double-counted stats behind. The cutoffs are
  // shadowed the same way: a failed attempt must not tighten the bar with
  // scores of pairs whose results were dropped.
  AlignStats try_stats{};
  std::uint64_t try_alignments = 0;
  std::uint64_t try_cells = 0;
  std::array<std::uint64_t, 3> try_width{};
  std::vector<std::vector<apps::SearchHit>> try_hits(queries.size());
  std::uint64_t try_screened = 0;
  std::uint64_t try_escalated = 0;
  std::uint64_t try_screen_failures = 0;
  std::uint64_t try_chunks = 0;
  std::vector<TopKCutoff> try_cutoffs;

  // Stage two for one (query, shard): escalate the sealed candidate queue
  // chunk by chunk until the remaining screen bounds fall below the cutoff.
  const auto escalate_query = [&](const Shard& shard, std::size_t q,
                                  TopKCutoff& cutoff) {
    auto& hits = try_hits[q];
    const std::uint64_t qlen = queries[q].size();
    bool query_loaded = false;
    bool batch_loaded = false;
    // Ramp: a small first bite seeds (or confirms) the k-th-best cutoff
    // before committing to lane-width chunks — see the batch driver.
    std::size_t cap = std::min(
        chunk_cap, std::max<std::size_t>(static_cast<std::size_t>(
                                             std::max(cfg_.search.top_k, 0)),
                                         16));
    for (;;) {
      const std::size_t n = queue.pop_chunk(cap, cutoff.cutoff(), margin, chunk);
      if (n == 0) break;
      cap = chunk_cap;
      ++try_chunks;
      try_escalated += n;
      record_block_fill(n, lane_count);
      const obs::TraceSlice chunk_slice(
          obs::TraceEventKind::Escalate,
          obs::TraceContext(static_cast<std::uint32_t>(q)),
          static_cast<std::int64_t>(n), lane_count);
      std::uint64_t chunk_residues = 0;
      for (std::size_t i = 0; i < n; ++i) {
        chunk_residues += shard.seqs[chunk[i]].size();
      }
      const double mean_dlen =
          static_cast<double>(chunk_residues) / static_cast<double>(n);
      const EngineMode mode =
          resolve_engine(cfg_.search.engine, qlen, n, mean_dlen, lane_count,
                         alpha, cfg_.search.align.klass, cfg_.search.align.model);
      if (mode == EngineMode::Inter) {
        if (!batch_loaded) {
          batcher->set_query(queries[q]);
          batcher->set_trace(obs::TraceContext(static_cast<std::uint32_t>(q)));
          batch_loaded = true;
        }
        batch_dbs.clear();
        for (std::size_t i = 0; i < n; ++i) {
          batch_dbs.push_back(shard.seqs[chunk[i]].codes());
        }
        batch_out.resize(n);
        batcher->align_batch(batch_dbs, batch_out);
        for (std::size_t i = 0; i < n; ++i) {
          const AlignResult& r = batch_out[i];
          try_stats += r.stats;
          ++try_alignments;
          try_cells += qlen * shard.seqs[chunk[i]].size();
          ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
          cutoff.offer(r.score);
          hits.push_back(apps::SearchHit{shard.base + chunk[i], r.score,
                                         r.query_end, r.db_end});
        }
      } else {
        if (!query_loaded) {
          aligner.set_query(queries[q]);
          aligner.set_trace(obs::TraceContext(static_cast<std::uint32_t>(q)));
          query_loaded = true;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const AlignResult r = aligner.align(shard.seqs[chunk[i]]);
          try_stats += r.stats;
          ++try_alignments;
          try_cells += qlen * shard.seqs[chunk[i]].size();
          ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
          cutoff.offer(r.score);
          hits.push_back(apps::SearchHit{shard.base + chunk[i], r.score,
                                         r.query_end, r.db_end});
        }
      }
    }
  };

  const auto process_shard = [&](const Shard& shard) {
    try_stats = AlignStats{};
    try_alignments = 0;
    try_cells = 0;
    try_width = {};
    for (auto& h : try_hits) h.clear();
    try_screened = 0;
    try_escalated = 0;
    try_screen_failures = 0;
    try_chunks = 0;
    VALIGN_FAILPOINT("pipeline.pop",
                     throw robust::StatusError(
                         robust::StatusCode::Internal,
                         "injected shard-processing failure (pipeline.pop)"));
    if (prefilter_on) {
      try_cutoffs = cutoffs;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        verdicts.resize(shard.seqs.size());
        batch_dbs.clear();
        for (const Sequence& d : shard.seqs) batch_dbs.push_back(d.codes());
        prefilter->set_query(queries[q]);
        const obs::TraceSlice screen_slice(
            obs::TraceEventKind::Screen,
            obs::TraceContext(static_cast<std::uint32_t>(q)),
            static_cast<std::int64_t>(shard.seqs.size()), prefilter->lanes());
        try {
          prefilter->screen(batch_dbs, verdicts);
        } catch (const std::exception&) {
          // Degrade, never drop: every pair of this (query, shard) block
          // goes through full DP, exactly the unfiltered behaviour.
          for (PrefilterVerdict& v : verdicts) v = PrefilterVerdict{0, true};
          ++try_screen_failures;
        }
        try_screened += shard.seqs.size();
        queue.reset(shard.seqs.size());
        for (std::size_t i = 0; i < shard.seqs.size(); ++i) {
          queue.push(i, verdicts[i]);
        }
        queue.seal();
        escalate_query(shard, q, try_cutoffs[q]);
      }
      return;
    }
    std::uint64_t shard_residues = 0;
    for (const Sequence& d : shard.seqs) shard_residues += d.size();
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto& hits = try_hits[q];
      const double mean_dlen =
          shard.seqs.empty() ? 0.0
                             : static_cast<double>(shard_residues) /
                                   static_cast<double>(shard.seqs.size());
      const EngineMode mode = resolve_engine(
          cfg_.search.engine, queries[q].size(), shard.seqs.size(), mean_dlen,
          lane_count, alpha, cfg_.search.align.klass, cfg_.search.align.model);
      const obs::TraceSlice align_slice(
          obs::TraceEventKind::Align,
          obs::TraceContext(static_cast<std::uint32_t>(q)),
          static_cast<std::int64_t>(shard.seqs.size()),
          mode == EngineMode::Inter ? lane_count : 1);
      if (mode == EngineMode::Inter) {
        batcher->set_query(queries[q]);
        batcher->set_trace(obs::TraceContext(static_cast<std::uint32_t>(q)));
        batch_dbs.clear();
        for (const Sequence& d : shard.seqs) batch_dbs.push_back(d.codes());
        batch_out.resize(shard.seqs.size());
        batcher->align_batch(batch_dbs, batch_out);
        for (std::size_t i = 0; i < shard.seqs.size(); ++i) {
          const AlignResult& r = batch_out[i];
          try_stats += r.stats;
          ++try_alignments;
          try_cells += queries[q].size() * shard.seqs[i].size();
          ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
          hits.push_back(
              apps::SearchHit{shard.base + i, r.score, r.query_end, r.db_end});
        }
      } else {
        aligner.set_query(queries[q]);
        aligner.set_trace(obs::TraceContext(static_cast<std::uint32_t>(q)));
        for (std::size_t i = 0; i < shard.seqs.size(); ++i) {
          const Sequence& d = shard.seqs[i];
          const AlignResult r = aligner.align(d);
          try_stats += r.stats;
          ++try_alignments;
          try_cells += queries[q].size() * d.size();
          ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
          hits.push_back(
              apps::SearchHit{shard.base + i, r.score, r.query_end, r.db_end});
        }
      }
    }
  };

  const auto commit_shard = [&] {
    state.stats += try_stats;
    state.alignments += try_alignments;
    state.cells_real += try_cells;
    for (std::size_t w = 0; w < try_width.size(); ++w) {
      state.width_counts[w] += try_width[w];
    }
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto& hits = state.hits[q];
      hits.insert(hits.end(), try_hits[q].begin(), try_hits[q].end());
      if (hits.size() > prune_at) apps::keep_top_hits(hits, cfg_.search.top_k);
    }
    if (prefilter_on) {
      state.prefilter_screened += try_screened;
      state.prefilter_escalated += try_escalated;
      state.prefilter_failures += try_screen_failures;
      state.prefilter_chunks += try_chunks;
      cutoffs.swap(try_cutoffs);  // The attempt succeeded; adopt its cutoffs.
    }
  };

  const auto export_state = [&] {
    // Expose this worker's cache and lane accounting before exit (the
    // engines die with this frame).
    state.cache = aligner.cache_stats();
    if (batcher.has_value()) {
      state.cache += batcher->fallback_cache_stats();
      state.interseq = batcher->batch_stats();
      state.interseq_fallbacks = batcher->fallbacks();
    }
    if (prefilter.has_value()) state.prefilter_stats = prefilter->stats();
  };

  for (;;) {
    Shard shard;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] {
        return !queue_.empty() || closed_ ||
               stalled_.load(std::memory_order_acquire);
      });
      if (stalled_.load(std::memory_order_acquire) || queue_.empty()) {
        export_state();
        return;
      }
      shard = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    progress_.fetch_add(1, std::memory_order_relaxed);
    obs::trace_instant(obs::TraceEventKind::Dequeue, obs::kNoQuery,
                       static_cast<std::int64_t>(shard.base),
                       static_cast<std::int64_t>(shard.seqs.size()));
    if (discard_.load(std::memory_order_relaxed)) continue;  // unwinding

    VALIGN_FAILPOINT("pipeline.worker_hang", hang_for_watchdog());
    if (stalled_.load(std::memory_order_acquire)) {
      export_state();
      return;
    }

    // The Align budget counts shard processing only, not queue waits.
    const obs::StageSpan align_span(obs::Stage::Align);
    const obs::TraceSpan span(shard_us);
    for (int attempt = 0;; ++attempt) {
      try {
        process_shard(shard);
        commit_shard();
        break;
      } catch (const std::exception& e) {
        if (robust::is_transient_failure(e) &&
            attempt < cfg_.search.robust.max_retries &&
            !stalled_.load(std::memory_order_acquire)) {
          ++state.shard_retries;
          obs::trace_instant(obs::TraceEventKind::Retry, obs::kNoQuery,
                             attempt + 1);
          // Bounded backoff: 2, 4, 8... ms. Transient by taxonomy means a
          // later attempt can succeed (allocation pressure, cache churn).
          std::this_thread::sleep_for(std::chrono::milliseconds(2 << attempt));
          continue;
        }
        obs::trace_instant(obs::TraceEventKind::Degraded, obs::kNoQuery,
                           static_cast<std::int64_t>(shard.seqs.size()));
        state.failures.push_back(
            robust::ShardFailure{shard.base, shard.seqs.size(), e.what()});
        state.records_dropped += shard.seqs.size();
        break;
      } catch (...) {
        obs::trace_instant(obs::TraceEventKind::Degraded, obs::kNoQuery,
                           static_cast<std::int64_t>(shard.seqs.size()));
        state.failures.push_back(robust::ShardFailure{
            shard.base, shard.seqs.size(), "unknown exception"});
        state.records_dropped += shard.seqs.size();
        break;
      }
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
  }
}

apps::SearchReport SearchPipeline::finish() {
  // flush_shard() may throw on a tripped watchdog; the destructor then
  // handles teardown. On the normal path, close and join everything before
  // deciding whether the error budget was blown, so a throw below leaves no
  // running threads behind.
  flush_shard();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& t : workers_) t.join();
  stop_watchdog();
  finished_ = true;

  if (stalled_.load(std::memory_order_acquire)) throw_stalled();

  obs::Registry& reg = obs::Registry::global();
  const obs::StageSpan reduce_span(obs::Stage::Reduce);
  apps::SearchReport report;
  report.top_hits.resize(queries_->size());
  std::vector<apps::SearchHit> merged;
  for (std::size_t q = 0; q < queries_->size(); ++q) {
    merged.clear();
    for (const WorkerState& s : states_) {
      merged.insert(merged.end(), s.hits[q].begin(), s.hits[q].end());
    }
    apps::keep_top_hits(merged, cfg_.search.top_k);
    report.top_hits[q] = merged;
    obs::TraceContext(static_cast<std::uint32_t>(q))
        .instant(obs::TraceEventKind::QueryEnd,
                 static_cast<std::int64_t>(report.top_hits[q].size()));
  }
  PrefilterStats prefilter_stats{};
  for (const WorkerState& s : states_) {
    report.totals += s.stats;
    report.alignments += s.alignments;
    report.cells_real += s.cells_real;
    report.cache += s.cache;
    report.interseq += s.interseq;
    report.interseq_fallbacks += s.interseq_fallbacks;
    for (std::size_t w = 0; w < s.width_counts.size(); ++w) {
      report.width_counts[w] += s.width_counts[w];
    }
    report.failures.insert(report.failures.end(), s.failures.begin(),
                           s.failures.end());
    report.shard_retries += s.shard_retries;
    report.records_dropped += s.records_dropped;
    prefilter_stats += s.prefilter_stats;
    report.prefilter.screened += s.prefilter_screened;
    report.prefilter.escalated += s.prefilter_escalated;
    report.prefilter.screen_failures += s.prefilter_failures;
    report.prefilter.chunks += s.prefilter_chunks;
  }
  if (apps::prefilter_active(cfg_.search,
                             std::numeric_limits<std::size_t>::max())) {
    report.prefilter.enabled = true;
    report.prefilter.saturated = prefilter_stats.saturated;
    report.prefilter.screen_cells = prefilter_stats.cells;
    report.prefilter.escaped =
        report.prefilter.screened > report.prefilter.escalated
            ? report.prefilter.screened - report.prefilter.escalated
            : 0;
  }
  report.worker_errors = report.failures.size();
  if (report.worker_errors > 0) {
    reg.counter("runtime.pipeline.worker_errors").add(report.worker_errors);
    reg.counter("runtime.pipeline.records_dropped").add(report.records_dropped);
  }
  if (report.shard_retries > 0) {
    reg.counter("runtime.pipeline.shard_retries").add(report.shard_retries);
  }
  if (report.worker_errors > cfg_.search.robust.max_errors) {
    std::ostringstream os;
    os << report.worker_errors << " of " << shards_flushed_ << " shard(s) failed ("
       << report.records_dropped << " records dropped, --max-errors "
       << cfg_.search.robust.max_errors << "); first: "
       << report.failures.front().error;
    throw robust::StatusError(robust::StatusCode::Internal, os.str());
  }
  report.profile_cache =
      SharedProfileCache::global().stats() - profile_cache_start_;
  publish_cache_stats(report.cache);
  publish_kernel_stats(report.profile_cache, report.totals);
  if (cfg_.search.engine != EngineMode::Intra) {
    publish_interseq_stats(report.interseq, report.interseq_fallbacks);
  }
  if (report.prefilter.enabled) {
    publish_prefilter_stats(prefilter_stats, report.prefilter.screened,
                            report.prefilter.escalated,
                            report.prefilter.screen_failures,
                            report.prefilter.chunks);
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  return report;
}

}  // namespace valign::runtime
