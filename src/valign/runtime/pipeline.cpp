#include "valign/runtime/pipeline.hpp"

#include <algorithm>

#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"

namespace valign::runtime {

SearchPipeline::SearchPipeline(const Dataset& queries, PipelineConfig cfg)
    : queries_(&queries), cfg_(cfg), t0_(std::chrono::steady_clock::now()) {
  cfg_.batch_size = std::max<std::size_t>(1, cfg_.batch_size);
  const auto nworkers =
      static_cast<std::size_t>(cfg_.search.threads > 0 ? cfg_.search.threads : 1);
  capacity_ = cfg_.queue_capacity > 0 ? cfg_.queue_capacity : 4 * nworkers;

  states_.resize(nworkers);
  for (WorkerState& s : states_) s.hits.resize(queries.size());
  workers_.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    workers_.emplace_back([this, w] { worker_main(states_[w]); });
  }
}

SearchPipeline::~SearchPipeline() {
  if (!finished_) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }
}

void SearchPipeline::flush_shard() {
  if (fill_.seqs.empty()) return;
  Shard shard = std::move(fill_);
  fill_ = Shard{};
  obs::Registry& reg = obs::Registry::global();
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.size() >= capacity_) {
    // Back-pressure: the parser outran the workers and must stall.
    reg.counter("runtime.pipeline.producer_waits").add(1);
  }
  not_full_.wait(lock, [this] { return queue_.size() < capacity_; });
  queue_.push_back(std::move(shard));
  const std::size_t depth = queue_.size();
  lock.unlock();
  reg.counter("runtime.pipeline.shards").add(1);
  reg.gauge("runtime.pipeline.queue_depth_max")
      .record_max(static_cast<std::int64_t>(depth));
  not_empty_.notify_one();
}

void SearchPipeline::push(Sequence s) {
  if (fill_.seqs.empty()) fill_.base = next_index_;
  fill_.seqs.push_back(std::move(s));
  ++next_index_;
  if (fill_.seqs.size() >= cfg_.batch_size) flush_shard();
}

void SearchPipeline::worker_main(WorkerState& state) {
  Aligner aligner(cfg_.search.align);
  const Dataset& queries = *queries_;
  const std::size_t prune_at = top_k_prune_threshold(cfg_.search.top_k);
  obs::Histogram& shard_us = obs::Registry::global().histogram(
      "runtime.pipeline.shard_us", obs::block_latency_bounds_us());

  for (;;) {
    Shard shard;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
      if (queue_.empty()) {
        // Closed and drained: expose this worker's cache activity before exit
        // (the Aligner — and its EngineCache — dies with this frame).
        state.cache = aligner.cache_stats();
        return;
      }
      shard = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();

    // The Align budget counts shard processing only, not queue waits.
    const obs::StageSpan align_span(obs::Stage::Align);
    const obs::TraceSpan span(shard_us);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      aligner.set_query(queries[q]);
      auto& hits = state.hits[q];
      for (std::size_t i = 0; i < shard.seqs.size(); ++i) {
        const Sequence& d = shard.seqs[i];
        const AlignResult r = aligner.align(d);
        state.stats += r.stats;
        ++state.alignments;
        state.cells_real += queries[q].size() * d.size();
        ++state.width_counts[static_cast<std::size_t>(obs::width_index(r.bits))];
        hits.push_back(
            apps::SearchHit{shard.base + i, r.score, r.query_end, r.db_end});
      }
      if (hits.size() > prune_at) apps::keep_top_hits(hits, cfg_.search.top_k);
    }
  }
}

apps::SearchReport SearchPipeline::finish() {
  flush_shard();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& t : workers_) t.join();
  finished_ = true;

  const obs::StageSpan reduce_span(obs::Stage::Reduce);
  apps::SearchReport report;
  report.top_hits.resize(queries_->size());
  std::vector<apps::SearchHit> merged;
  for (std::size_t q = 0; q < queries_->size(); ++q) {
    merged.clear();
    for (const WorkerState& s : states_) {
      merged.insert(merged.end(), s.hits[q].begin(), s.hits[q].end());
    }
    apps::keep_top_hits(merged, cfg_.search.top_k);
    report.top_hits[q] = merged;
  }
  for (const WorkerState& s : states_) {
    report.totals += s.stats;
    report.alignments += s.alignments;
    report.cells_real += s.cells_real;
    report.cache += s.cache;
    for (std::size_t w = 0; w < s.width_counts.size(); ++w) {
      report.width_counts[w] += s.width_counts[w];
    }
  }
  publish_cache_stats(report.cache);
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  return report;
}

}  // namespace valign::runtime
