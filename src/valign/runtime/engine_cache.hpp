// Engine cache: reusable pool of constructed alignment engines keyed by
// EngineSpec.
//
// Aligner's width-retry ladder and the Table IV approach selector both switch
// engines mid-sweep (8 -> 16 -> 32 bits on overflow, Scan <-> Striped across
// the query-length crossover). Before this cache every switch reconstructed
// the engine — and with it the striped query profile — from scratch. The
// cache keeps the last `capacity` engines alive so a switch back is a pointer
// swap, and re-sets an engine's query profile only when the query actually
// changed since that engine last ran (tracked by a query generation counter).
//
// Not thread-safe: one EngineCache per Aligner per thread, like the engines
// themselves.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "valign/core/dispatch.hpp"

namespace valign::runtime {

/// Observable cache activity, for tests and perf assertions.
struct EngineCacheStats {
  std::uint64_t lookups = 0;       ///< acquire() calls.
  std::uint64_t hits = 0;          ///< acquire() satisfied without building.
  std::uint64_t builds = 0;        ///< engines constructed.
  std::uint64_t evictions = 0;     ///< engines destroyed to respect capacity.
  std::uint64_t profile_sets = 0;  ///< set_query() calls forwarded to engines.

  [[nodiscard]] std::uint64_t misses() const noexcept { return lookups - hits; }

  /// Merge (drivers accumulate per-thread Aligner caches into one report).
  EngineCacheStats& operator+=(const EngineCacheStats& o) noexcept {
    lookups += o.lookups;
    hits += o.hits;
    builds += o.builds;
    evictions += o.evictions;
    profile_sets += o.profile_sets;
    return *this;
  }
};

/// Adds `stats` to the global metrics registry under
/// "runtime.engine_cache.*" (see docs/observability.md).
void publish_cache_stats(const EngineCacheStats& stats);

class EngineCache {
 public:
  /// `capacity` = maximum live engines. 1 reproduces the pre-cache behaviour
  /// (every spec change rebuilds); the default comfortably holds one width
  /// ladder (8/16/32) times both approaches of the prescriptive selector.
  explicit EngineCache(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 8;

  /// Records the query that subsequently acquired engines must align.
  /// Cheap: profiles are rebuilt lazily, per engine, on next acquire().
  void set_query(std::span<const std::uint8_t> query);

  /// The current query (as recorded by set_query).
  [[nodiscard]] std::span<const std::uint8_t> query() const noexcept {
    return query_;
  }

  /// Returns an engine matching `spec` with the current query loaded,
  /// constructing one only when no cached engine matches. The pointer stays
  /// valid until the entry is evicted (LRU) or the cache is cleared — callers
  /// must treat it as invalidated by the next acquire().
  [[nodiscard]] detail::EngineBase* acquire(const detail::EngineSpec& spec);

  /// Destroys all cached engines (stats are retained).
  void clear();

  [[nodiscard]] const EngineCacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    detail::EngineSpec spec;
    std::unique_ptr<detail::EngineBase> engine;
    std::uint64_t query_gen = 0;  ///< Generation of the query this engine holds.
    std::uint64_t last_used = 0;  ///< LRU tick.
  };

  std::vector<Entry> entries_;
  std::vector<std::uint8_t> query_;
  std::size_t capacity_;
  std::uint64_t query_gen_ = 0;
  std::uint64_t tick_ = 0;
  EngineCacheStats stats_{};
};

}  // namespace valign::runtime
