// Batch scheduler: turns (queries x database) cross products and all-pairs
// triangles into load-balanced work units at pair granularity.
//
// The original drivers parallelized only the outer query loop, so a 4-query
// search on 8 threads left half the machine idle and a single long query
// straggled an entire run. Here the pair space is cut into blocks of roughly
// `grain_cells` DP cells each; blocks are handed to OpenMP `schedule(dynamic)`
// largest-first (LPT), so threads stay busy regardless of how queries and
// database lengths are distributed.
//
// Pair mode additionally buckets the database by length (a sorted permutation
// in `Schedule::order`): each block then covers similar-length subjects, which
// stabilizes the dispatcher's element-width choice within a block and keeps
// per-block costs predictable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "valign/common.hpp"
#include "valign/core/prefilter.hpp"
#include "valign/io/sequence.hpp"

namespace valign {
struct EngineModel;        // core/calibrate.hpp
struct ProfileCacheStats;  // core/profile_cache.hpp
}

namespace valign::runtime {

/// Work-partitioning policy for the batch drivers.
enum class PairSched : std::uint8_t {
  Query,  ///< One unit per query (the legacy outer-loop parallelism).
  Pair,   ///< Pair-granularity blocks with length bucketing.
  Auto,   ///< Pair when queries alone cannot keep the threads busy.
};

[[nodiscard]] const char* to_string(PairSched s);

/// Parses "query" | "pair" | "auto" (throws valign::Error otherwise).
[[nodiscard]] PairSched parse_pair_sched(const std::string& s);

/// Parses "intra" | "inter" | "auto" (throws valign::Error otherwise).
[[nodiscard]] EngineMode parse_engine_mode(const std::string& s);

/// Parses "off" | "auto" | "force" (throws valign::Error otherwise).
[[nodiscard]] PrefilterMode parse_prefilter_mode(const std::string& s);

/// One contiguous run of subjects for one query. `begin`/`end` index the
/// schedule's subject ordering (see Schedule::db_index), not the database
/// directly.
struct WorkBlock {
  std::size_t query = 0;
  std::size_t begin = 0;
  std::size_t end = 0;        ///< Half-open.
  std::uint64_t cost = 0;     ///< Estimated DP cells (sum of qlen * dlen).
};

struct ScheduleConfig {
  PairSched sched = PairSched::Auto;
  int threads = 1;
  /// Target DP cells per block in Pair mode; 0 derives a grain that gives
  /// each thread several blocks while keeping per-block overhead (query
  /// profile rebuild, hit merge) negligible.
  std::uint64_t grain_cells = 0;
  /// Vector lanes of the batch engine that will consume the blocks (0 =
  /// unknown / intra-task consumers). When set, Pair mode merges a trailing
  /// block smaller than one lane pack into its neighbour instead of leaving
  /// a mostly-idle vector, and per-block lane fill is published to the
  /// `runtime.sched.bucket_fill` histogram.
  int lane_count = 0;
};

/// A fully materialized work partition.
struct Schedule {
  PairSched mode = PairSched::Query;  ///< Resolved (never Auto).
  std::vector<WorkBlock> blocks;      ///< Largest-cost-first.
  /// Subject permutation for Pair mode (length-bucketed); empty = identity.
  std::vector<std::size_t> order;

  /// Maps a block-space subject position to the database index.
  [[nodiscard]] std::size_t db_index(std::size_t k) const noexcept {
    return order.empty() ? k : order[k];
  }
  /// Total estimated cost across blocks.
  [[nodiscard]] std::uint64_t total_cost() const noexcept;
};

/// Cross-product schedule (database-search shape): every query against every
/// database sequence, each pair covered exactly once.
[[nodiscard]] Schedule make_search_schedule(const Dataset& queries,
                                            const Dataset& db,
                                            const ScheduleConfig& cfg);

/// All-pairs schedule (homology shape): every i < j pair of `ds` exactly
/// once. Blocks use the identity order; `query` is the row index i and
/// begin/end range over j.
[[nodiscard]] Schedule make_all_pairs_schedule(const Dataset& ds,
                                               const ScheduleConfig& cfg);

/// Cost-model resolution of EngineMode::Auto for one work block.
///
/// Estimates scalar-equivalent instructions per pair-column for both
/// families and picks the cheaper one:
///
///  - inter-sequence: the column step costs `qlen` vector epochs plus
///    O(lanes * alpha) scalar profile-gather/bookkeeping, shared by
///    `min(block_pairs, lanes)` pairs; finished lanes pay a `qlen`-sized
///    refill every `mean_dlen` columns.
///  - intra-task: `ceil(qlen/lanes)` epochs per column, inflated by a
///    per-approach corrective factor — the one Approach::Auto would pick for
///    this (class, lanes, qlen) under `model` (null = EngineModel::pinned()).
///    Striped pays the lazy-F re-walk tail; Scan pays its fixed second pass;
///    Deconstructed pays only the rare single fix-up. A fixed per-column
///    scalar tail that only ever serves one pair is added to all three.
///
/// The packed engine wins whenever it can keep most lanes full (block_pairs
/// approaching `lanes`); intra-task wins on underfilled blocks, where the
/// shared column step amortizes over too few pairs.
/// `requested` short-circuits: anything but Auto is returned unchanged.
[[nodiscard]] EngineMode resolve_engine(EngineMode requested, std::size_t qlen,
                                        std::size_t block_pairs,
                                        double mean_dlen, int lanes, int alpha,
                                        AlignClass klass = AlignClass::Local,
                                        const EngineModel* model = nullptr);

/// Folds a driver's accumulated inter-sequence engine accounting into the
/// global registry (`runtime.interseq.*`: pairs, batches, refills,
/// saturation fallbacks, column/lane steps and the lane-occupancy gauge).
void publish_interseq_stats(const InterSeqBatchStats& stats,
                            std::uint64_t fallbacks);

/// Records one *post-screen* work block's lane fill into the
/// `runtime.sched.bucket_fill` histogram. The two-stage drivers bucket only
/// survivors — screening happens before any blocks exist — so prefilter-
/// rejected pairs never appear in the occupancy census (they used to, when
/// a full cross-product schedule was built up front).
void record_block_fill(std::size_t pairs, int lane_count);

/// Folds a driver's accumulated prescreen accounting into the global
/// registry (`runtime.prefilter.*`: pairs screened/escaped/escalated,
/// saturation count, screen failures, escalation chunks, and the
/// selectivity gauge = escalated pairs as a percentage of screened).
/// `screened` counts pairs submitted to the screen, including blocks a
/// screen failure degraded to full DP; `escalated` counts pairs that went
/// through full DP, so `screened - escalated` is the work the filter saved.
void publish_prefilter_stats(const PrefilterStats& stats,
                             std::uint64_t screened, std::uint64_t escalated,
                             std::uint64_t screen_failures,
                             std::uint64_t chunks);

/// Folds a run's kernel-level accounting into the global registry
/// (`runtime.kernel.*`, docs/kernels.md): the shared query-profile cache's
/// per-run deltas (profile_cache.lookups/hits/builds/evictions/fast_builds),
/// the deconstructed engine's fix-up census (prefix_pass.skipped/ran), and
/// one `approach.<name>` counter per engine that answered alignments — how
/// Approach::Auto actually resolved, block by block.
void publish_kernel_stats(const ProfileCacheStats& cache,
                          const AlignStats& totals);

}  // namespace valign::runtime
