#include "valign/runtime/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "valign/common.hpp"
#include "valign/core/calibrate.hpp"
#include "valign/core/profile_cache.hpp"
#include "valign/obs/metrics.hpp"
#include "valign/robust/status.hpp"

namespace valign::runtime {

namespace {

/// Bucket bounds (DP cells) for the block-size census: ~4x steps from 64K.
constexpr std::uint64_t kBlockCellBounds[] = {
    1u << 16, 1u << 18, 1u << 20, 1u << 22, 1u << 24, 1u << 26};

/// Bucket bounds (percent) for per-block lane fill: how much of the last
/// vector pack each block actually fills.
constexpr std::uint64_t kBucketFillBounds[] = {25, 50, 75, 90, 99};

/// One-time-per-schedule bookkeeping: the registry's view of how work was
/// partitioned (block count, per-block cell distribution, and — when the
/// consumer is lane-packed — per-block lane fill).
void publish_schedule(const Schedule& sched, int lane_count) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("runtime.sched.schedules").add(1);
  reg.counter("runtime.sched.blocks").add(sched.blocks.size());
  obs::Histogram& cells = reg.histogram("runtime.sched.block_cells",
                                        kBlockCellBounds);
  for (const WorkBlock& b : sched.blocks) cells.record(b.cost);
  if (lane_count > 1) {
    obs::Histogram& fill =
        reg.histogram("runtime.sched.bucket_fill", kBucketFillBounds);
    const auto lanes = static_cast<std::uint64_t>(lane_count);
    for (const WorkBlock& b : sched.blocks) {
      const std::uint64_t pairs = b.end - b.begin;
      const std::uint64_t packs = (pairs + lanes - 1) / lanes;
      fill.record(packs == 0 ? 0 : 100 * pairs / (packs * lanes));
    }
  }
}

/// The last block a query emits is whatever remains after grain-sized cuts —
/// often a handful of subjects. If it cannot fill even one vector pack and a
/// neighbour block of the same query exists, merge it there: a lane-packed
/// consumer would otherwise sweep a mostly-dead vector through the whole
/// query (padding), the exact overhead the inter-sequence layout removes.
void merge_underfilled_tail(std::vector<WorkBlock>& blocks, std::size_t first,
                            int lane_count) {
  if (lane_count <= 1 || blocks.size() <= first + 1) return;
  WorkBlock& tail = blocks.back();
  WorkBlock& prev = blocks[blocks.size() - 2];
  if (tail.end - tail.begin >= static_cast<std::size_t>(lane_count)) return;
  if (prev.query != tail.query || prev.end != tail.begin) return;
  prev.end = tail.end;
  prev.cost += tail.cost;
  blocks.pop_back();
}

// A thread is "kept busy" by this many blocks on average; more blocks means
// better dynamic balance but more per-block overhead.
constexpr std::uint64_t kBlocksPerThread = 16;

// Floor for derived grains: below this the per-block query-profile rebuild
// and hit-merge overheads stop being negligible.
constexpr std::uint64_t kMinGrainCells = 1u << 21;  // ~2M cells

int resolved_threads(const ScheduleConfig& cfg) {
  return cfg.threads > 0 ? cfg.threads : 1;
}

PairSched resolve_mode(const ScheduleConfig& cfg, std::size_t n_queries) {
  if (cfg.sched != PairSched::Auto) return cfg.sched;
  // Query-level parallelism balances fine once there are several units per
  // thread; otherwise go to pair granularity. A single thread has nothing to
  // balance, so skip the block bookkeeping entirely.
  const auto threads = static_cast<std::size_t>(resolved_threads(cfg));
  if (threads <= 1) return PairSched::Query;
  return n_queries >= 4 * threads ? PairSched::Query : PairSched::Pair;
}

std::uint64_t resolve_grain(const ScheduleConfig& cfg, std::uint64_t total_cost) {
  if (cfg.grain_cells > 0) return cfg.grain_cells;
  const auto threads = static_cast<std::uint64_t>(resolved_threads(cfg));
  return std::max(kMinGrainCells, total_cost / (threads * kBlocksPerThread) + 1);
}

void sort_largest_first(std::vector<WorkBlock>& blocks) {
  // LPT order for schedule(dynamic): stragglers start first. Ties break on
  // (query, begin) so the schedule itself is deterministic.
  std::stable_sort(blocks.begin(), blocks.end(),
                   [](const WorkBlock& a, const WorkBlock& b) {
                     if (a.cost != b.cost) return a.cost > b.cost;
                     if (a.query != b.query) return a.query < b.query;
                     return a.begin < b.begin;
                   });
}

}  // namespace

const char* to_string(PairSched s) {
  switch (s) {
    case PairSched::Query: return "query";
    case PairSched::Pair: return "pair";
    case PairSched::Auto: return "auto";
  }
  return "?";
}

PairSched parse_pair_sched(const std::string& s) {
  if (s == "query") return PairSched::Query;
  if (s == "pair") return PairSched::Pair;
  if (s == "auto") return PairSched::Auto;
  robust::throw_status(robust::invalid_argument(
      "unknown pair scheduling policy: " + s + " (expected query|pair|auto)"));
}

EngineMode parse_engine_mode(const std::string& s) {
  if (s == "intra") return EngineMode::Intra;
  if (s == "inter") return EngineMode::Inter;
  if (s == "auto") return EngineMode::Auto;
  robust::throw_status(robust::invalid_argument(
      "unknown engine family: " + s + " (expected intra|inter|auto)"));
}

PrefilterMode parse_prefilter_mode(const std::string& s) {
  if (s == "off") return PrefilterMode::Off;
  if (s == "auto") return PrefilterMode::Auto;
  if (s == "force") return PrefilterMode::Force;
  robust::throw_status(robust::invalid_argument(
      "unknown prefilter mode: " + s + " (expected off|auto|force)"));
}

std::uint64_t Schedule::total_cost() const noexcept {
  return std::accumulate(blocks.begin(), blocks.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const WorkBlock& b) {
                           return acc + b.cost;
                         });
}

Schedule make_search_schedule(const Dataset& queries, const Dataset& db,
                              const ScheduleConfig& cfg) {
  Schedule sched;
  sched.mode = resolve_mode(cfg, queries.size());

  const std::uint64_t db_residues = db.total_residues();

  if (sched.mode == PairSched::Query) {
    sched.blocks.reserve(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (db.empty()) break;
      sched.blocks.push_back(
          WorkBlock{q, 0, db.size(), queries[q].size() * db_residues});
    }
    sort_largest_first(sched.blocks);
    publish_schedule(sched, cfg.lane_count);
    return sched;
  }

  // Pair mode: length-bucket the database (longest first) so each block spans
  // similar subject lengths, then cut each query's sweep into ~grain blocks.
  sched.order.resize(db.size());
  std::iota(sched.order.begin(), sched.order.end(), std::size_t{0});
  std::stable_sort(sched.order.begin(), sched.order.end(),
                   [&db](std::size_t a, std::size_t b) {
                     return db[a].size() > db[b].size();
                   });

  std::uint64_t total = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    total += queries[q].size() * db_residues;
  }
  const std::uint64_t grain = resolve_grain(cfg, total);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::uint64_t qlen = queries[q].size();
    const std::size_t first = sched.blocks.size();
    std::size_t begin = 0;
    std::uint64_t cost = 0;
    for (std::size_t k = 0; k < sched.order.size(); ++k) {
      cost += qlen * db[sched.order[k]].size();
      if (cost >= grain) {
        sched.blocks.push_back(WorkBlock{q, begin, k + 1, cost});
        begin = k + 1;
        cost = 0;
      }
    }
    if (begin < sched.order.size()) {
      sched.blocks.push_back(WorkBlock{q, begin, sched.order.size(), cost});
    }
    merge_underfilled_tail(sched.blocks, first, cfg.lane_count);
  }
  sort_largest_first(sched.blocks);
  publish_schedule(sched, cfg.lane_count);
  return sched;
}

Schedule make_all_pairs_schedule(const Dataset& ds, const ScheduleConfig& cfg) {
  Schedule sched;
  sched.mode = resolve_mode(cfg, ds.size());

  const std::size_t n = ds.size();
  if (sched.mode == PairSched::Query) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      std::uint64_t cost = 0;
      for (std::size_t j = i + 1; j < n; ++j) cost += ds[i].size() * ds[j].size();
      sched.blocks.push_back(WorkBlock{i, i + 1, n, cost});
    }
    sort_largest_first(sched.blocks);
    publish_schedule(sched, cfg.lane_count);
    return sched;
  }

  // Pair mode: split each row of the triangle by grain. The identity order is
  // kept (i < j must hold), so no permutation.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) total += ds[i].size() * ds[j].size();
  }
  const std::uint64_t grain = resolve_grain(cfg, total);

  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t first = sched.blocks.size();
    std::size_t begin = i + 1;
    std::uint64_t cost = 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      cost += ds[i].size() * ds[j].size();
      if (cost >= grain) {
        sched.blocks.push_back(WorkBlock{i, begin, j + 1, cost});
        begin = j + 1;
        cost = 0;
      }
    }
    if (begin < n) sched.blocks.push_back(WorkBlock{i, begin, n, cost});
    merge_underfilled_tail(sched.blocks, first, cfg.lane_count);
  }
  sort_largest_first(sched.blocks);
  publish_schedule(sched, cfg.lane_count);
  return sched;
}

EngineMode resolve_engine(EngineMode requested, std::size_t qlen,
                          std::size_t block_pairs, double mean_dlen, int lanes,
                          int alpha, AlignClass klass,
                          const EngineModel* model) {
  if (requested != EngineMode::Auto) return requested;
  if (qlen == 0 || block_pairs == 0 || lanes <= 1) return EngineMode::Intra;

  // Scalar-equivalent instruction estimates (one vector epoch ~ kEpoch
  // scalar instructions; constants from inspection of the two inner loops,
  // validated against bench_runtime's inter-vs-intra sweep).
  constexpr double kEpoch = 14.0;    // instructions per vector DP epoch
  constexpr double kFill = 0.6;      // per-entry column-profile gather
  constexpr double kBook = 4.0;      // per-lane per-column bookkeeping
  constexpr double kRefill = 1.5;    // per-row lane reset on refill
  constexpr double kLazyF = 1.35;    // striped corrective-pass inflation
  constexpr double kScan = 1.30;     // scan's fixed second pass (lighter ops)
  constexpr double kDecon = 1.10;    // deconstructed: hscan + rare fix-up
  constexpr double kColTail = 45.0;  // intra per-column scalar tail

  const auto n = static_cast<double>(qlen);
  const double p = lanes;
  const double occupancy =
      std::min(1.0, static_cast<double>(block_pairs) / p);
  const double cols = std::max(1.0, mean_dlen);

  // Inter: one column step serves `p * occupancy` pair-columns.
  const double inter =
      (n * kEpoch + p * (static_cast<double>(alpha) * kFill + kBook)) /
          (p * occupancy) +
      n * kRefill / cols;
  // Intra: every column serves exactly one pair. The corrective inflation
  // depends on which engine Approach::Auto would run for this shape.
  const Approach pick =
      (model ? *model : EngineModel::pinned()).choose(klass, lanes, qlen);
  const double inflate = pick == Approach::Scan            ? kScan
                         : pick == Approach::Deconstructed ? kDecon
                                                           : kLazyF;
  const double seg = std::ceil(n / p);
  const double intra = seg * kEpoch * inflate + kColTail;

  return inter < intra ? EngineMode::Inter : EngineMode::Intra;
}

void publish_interseq_stats(const InterSeqBatchStats& stats,
                            std::uint64_t fallbacks) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("runtime.interseq.batches").add(stats.batches);
  reg.counter("runtime.interseq.pairs").add(stats.pairs);
  reg.counter("runtime.interseq.refills").add(stats.refills);
  reg.counter("runtime.interseq.fallbacks").add(fallbacks);
  reg.counter("runtime.interseq.column_steps").add(stats.column_steps);
  reg.counter("runtime.interseq.lane_steps").add(stats.lane_steps);
  reg.counter("runtime.interseq.lane_capacity_steps")
      .add(stats.lane_capacity_steps);
  reg.counter("runtime.interseq.vector_epochs").add(stats.vector_epochs);
  if (stats.lane_capacity_steps > 0) {
    reg.gauge("runtime.interseq.occupancy_pct")
        .set(static_cast<std::int64_t>(100.0 * stats.occupancy()));
  }
}

void publish_kernel_stats(const ProfileCacheStats& cache,
                          const AlignStats& totals) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("runtime.kernel.profile_cache.lookups").add(cache.lookups);
  reg.counter("runtime.kernel.profile_cache.hits").add(cache.hits);
  reg.counter("runtime.kernel.profile_cache.builds").add(cache.builds);
  reg.counter("runtime.kernel.profile_cache.evictions").add(cache.evictions);
  reg.counter("runtime.kernel.profile_cache.fast_builds").add(cache.fast_builds);
  std::uint64_t ran = 0;
  for (int b = 1; b < PassHist::kBuckets; ++b) {
    ran += totals.prefix_hist.counts[static_cast<std::size_t>(b)];
  }
  reg.counter("runtime.kernel.prefix_pass.skipped").add(totals.prefix_hist.counts[0]);
  reg.counter("runtime.kernel.prefix_pass.ran").add(ran);
  for (std::size_t a = 0; a < kApproachCount; ++a) {
    if (totals.approach_counts[a] == 0) continue;
    reg.counter(std::string("runtime.kernel.approach.") +
                to_string(static_cast<Approach>(a)))
        .add(totals.approach_counts[a]);
  }
}

void record_block_fill(std::size_t pairs, int lane_count) {
  if (lane_count <= 1 || pairs == 0) return;
  obs::Histogram& fill = obs::Registry::global().histogram(
      "runtime.sched.bucket_fill", kBucketFillBounds);
  const auto lanes = static_cast<std::uint64_t>(lane_count);
  const std::uint64_t packs = (pairs + lanes - 1) / lanes;
  fill.record(100 * pairs / (packs * lanes));
}

void publish_prefilter_stats(const PrefilterStats& stats,
                             std::uint64_t screened, std::uint64_t escalated,
                             std::uint64_t screen_failures,
                             std::uint64_t chunks) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("runtime.prefilter.pairs_screened").add(screened);
  reg.counter("runtime.prefilter.pairs_escalated").add(escalated);
  const std::uint64_t escaped = screened > escalated ? screened - escalated : 0;
  reg.counter("runtime.prefilter.pairs_escaped").add(escaped);
  reg.counter("runtime.prefilter.saturated").add(stats.saturated);
  reg.counter("runtime.prefilter.screen_failures").add(screen_failures);
  reg.counter("runtime.prefilter.chunks").add(chunks);
  reg.counter("runtime.prefilter.batches").add(stats.batches);
  reg.counter("runtime.prefilter.cells").add(stats.cells);
  if (screened > 0) {
    reg.gauge("runtime.prefilter.selectivity_pct")
        .set(static_cast<std::int64_t>(100 * escalated / screened));
  }
}

}  // namespace valign::runtime
