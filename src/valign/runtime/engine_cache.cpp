#include "valign/runtime/engine_cache.hpp"

#include <algorithm>

#include "valign/obs/metrics.hpp"
#include "valign/robust/failpoint.hpp"

namespace valign::runtime {

void publish_cache_stats(const EngineCacheStats& stats) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("runtime.engine_cache.lookups").add(stats.lookups);
  reg.counter("runtime.engine_cache.hits").add(stats.hits);
  reg.counter("runtime.engine_cache.misses").add(stats.misses());
  reg.counter("runtime.engine_cache.builds").add(stats.builds);
  reg.counter("runtime.engine_cache.evictions").add(stats.evictions);
  reg.counter("runtime.engine_cache.profile_sets").add(stats.profile_sets);
}

EngineCache::EngineCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  entries_.reserve(capacity_);
}

void EngineCache::set_query(std::span<const std::uint8_t> query) {
  // Identical re-sets keep the generation: engines holding this query's
  // profile stay warm. (Common in retry loops and ping-pong query sweeps.)
  if (query_gen_ != 0 && query.size() == query_.size() &&
      std::equal(query.begin(), query.end(), query_.begin())) {
    return;
  }
  query_.assign(query.begin(), query.end());
  ++query_gen_;
}

detail::EngineBase* EngineCache::acquire(const detail::EngineSpec& spec) {
  ++stats_.lookups;
  for (Entry& e : entries_) {
    if (e.spec == spec) {
      ++stats_.hits;
      e.last_used = ++tick_;
      if (e.query_gen != query_gen_) {
        e.engine->set_query(query_);
        e.query_gen = query_gen_;
        ++stats_.profile_sets;
      }
      return e.engine.get();
    }
  }

  // Miss: build (may throw for unsupported combinations — nothing inserted).
  VALIGN_FAILPOINT("cache.build",
                   throw robust::StatusError(
                       robust::StatusCode::ResourceExhausted,
                       "injected engine-cache allocation failure (cache.build)"));
  Entry entry;
  entry.spec = spec;
  entry.engine = detail::make_engine(spec);
  ++stats_.builds;
  entry.engine->set_query(query_);
  entry.query_gen = query_gen_;
  ++stats_.profile_sets;
  entry.last_used = ++tick_;

  if (entries_.size() >= capacity_) {
    auto lru = std::min_element(entries_.begin(), entries_.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_used < b.last_used;
                                });
    *lru = std::move(entry);
    ++stats_.evictions;
    return lru->engine.get();
  }
  entries_.push_back(std::move(entry));
  return entries_.back().engine.get();
}

void EngineCache::clear() { entries_.clear(); }

}  // namespace valign::runtime
