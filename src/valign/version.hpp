// valign — SIMD pairwise sequence alignment across vector widths.
// Reproduction of Daily et al., "On the Impact of Widening Vector Registers
// on Sequence Alignment", ICPP 2016.
#pragma once

#define VALIGN_VERSION_MAJOR 1
#define VALIGN_VERSION_MINOR 0
#define VALIGN_VERSION_PATCH 0
#define VALIGN_VERSION_STRING "1.0.0"

namespace valign {

/// Library version as a printable string, e.g. "1.0.0".
inline const char* version() noexcept { return VALIGN_VERSION_STRING; }

}  // namespace valign
