// Database search driver (§V "Use Cases"): every query sequence is aligned
// against every database sequence; the best hits per query are returned.
//
// A thin adapter over the runtime layer: work partitioning comes from
// runtime::make_search_schedule (pair-granularity, length-bucketed blocks),
// per-thread Aligners reuse engines through runtime::EngineCache, and the
// streaming variant (search_stream) runs on runtime::SearchPipeline so FASTA
// parsing overlaps alignment.
#pragma once

#include <array>
#include <iosfwd>
#include <vector>

#include "valign/core/calibrate.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/profile_cache.hpp"
#include "valign/io/sequence.hpp"
#include "valign/robust/quarantine.hpp"
#include "valign/runtime/engine_cache.hpp"
#include "valign/runtime/scheduler.hpp"

namespace valign::apps {

struct SearchHit {
  std::size_t db_index = 0;
  std::int32_t score = 0;
  std::int32_t query_end = -1;
  std::int32_t db_end = -1;
};

/// Strict total order on hits: score descending, then database index
/// ascending. Score ties therefore resolve identically no matter how work
/// was partitioned across threads.
[[nodiscard]] inline bool hit_before(const SearchHit& a, const SearchHit& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.db_index < b.db_index;
}

/// Sorts `hits` under hit_before and truncates to the best `top_k`.
void keep_top_hits(std::vector<SearchHit>& hits, int top_k);

struct SearchConfig {
  Options align{};     ///< Alignment class / approach / ISA / width / scoring.
  int top_k = 10;      ///< Hits retained per query.
  int threads = 1;     ///< OpenMP threads (1 = serial).
  /// Work partitioning: Query = legacy outer-loop parallelism, Pair =
  /// length-bucketed pair blocks, Auto = Pair when queries alone cannot keep
  /// `threads` busy.
  runtime::PairSched sched = runtime::PairSched::Auto;
  /// Scheduler grain override in DP cells (0 = derive; see runtime/scheduler).
  std::uint64_t grain_cells = 0;
  /// Engine family: Intra = one pair at a time (Aligner), Inter = lane-packed
  /// batches (BatchAligner), Auto = per-block cost model
  /// (runtime::resolve_engine). Results are identical either way; only
  /// throughput differs.
  EngineMode engine = EngineMode::Auto;
  /// Degraded-mode policy: lenient parsing, worker error budget, transient
  /// retries, stall watchdog (docs/robustness.md). Defaults are strict, so
  /// behavior is unchanged unless a caller opts in.
  robust::RobustPolicy robust{};
  /// Two-stage prescreen (docs/prefilter.md): Off = full DP on every pair,
  /// Force = always screen, Auto = screen when the workload shape profits
  /// (large database, non-Global class). Hits are bit-identical either way.
  PrefilterMode prefilter = PrefilterMode::Off;
  /// Escalation margin model for the prescreen; null = the structural
  /// zero-margin model (PrefilterModel::conservative()). Not owned; must
  /// outlive the search call.
  const PrefilterModel* prefilter_model = nullptr;
};

/// Whether the two-stage prescreen runs for this configuration and database
/// cardinality. Streaming callers, which cannot know the cardinality up
/// front, pass SIZE_MAX (a stream is presumed large).
[[nodiscard]] bool prefilter_active(const SearchConfig& cfg, std::size_t db_size);

/// Two-stage prescreen accounting (docs/prefilter.md); all-zero with the
/// prescreen off. `screened` counts pairs submitted to the screen, including
/// blocks a screen failure degraded to full DP; `escalated` counts pairs
/// that went through full DP; `escaped = screened - escalated` is the DP the
/// filter saved.
struct PrefilterReport {
  bool enabled = false;
  std::uint64_t screened = 0;
  std::uint64_t escaped = 0;
  std::uint64_t escalated = 0;
  std::uint64_t saturated = 0;        ///< Screens that hit the rail (forced escalation).
  std::uint64_t screen_failures = 0;  ///< Screen blocks degraded to full DP.
  std::uint64_t chunks = 0;           ///< Escalation work blocks executed.
  std::uint64_t screen_cells = 0;     ///< DP cells spent by the screen pass.

  /// Share of screened pairs that needed full DP, in [0, 1].
  [[nodiscard]] double selectivity() const noexcept {
    return screened == 0 ? 0.0
                         : static_cast<double>(escalated) /
                               static_cast<double>(screened);
  }

  PrefilterReport& operator+=(const PrefilterReport& o) noexcept {
    enabled = enabled || o.enabled;
    screened += o.screened;
    escaped += o.escaped;
    escalated += o.escalated;
    saturated += o.saturated;
    screen_failures += o.screen_failures;
    chunks += o.chunks;
    screen_cells += o.screen_cells;
    return *this;
  }
};

struct SearchReport {
  /// top_hits[q] = best hits for query q, ordered by hit_before.
  std::vector<std::vector<SearchHit>> top_hits;
  AlignStats totals{};
  /// Real (unpadded) cell updates: sum of query_len * db_len over alignments.
  std::uint64_t cells_real = 0;
  std::uint64_t alignments = 0;
  /// Engine-cache activity summed over every worker's Aligner.
  runtime::EngineCacheStats cache{};
  /// Alignments answered at 8/16/32-bit elements (index = log2(bits) - 3).
  std::array<std::uint64_t, 3> width_counts{};
  /// Shared query-profile cache activity attributable to this run (delta of
  /// the process-wide cache across the run; see docs/kernels.md).
  ProfileCacheStats profile_cache{};
  /// Lane-packed engine accounting summed over every worker's BatchAligner
  /// (all-zero when the run stayed intra-task).
  InterSeqBatchStats interseq{};
  /// Pairs the packed engine re-ran through the intra ladder (saturation).
  std::uint64_t interseq_fallbacks = 0;
  /// Two-stage prescreen accounting (all-zero when the prescreen was off).
  PrefilterReport prefilter{};
  /// Records skipped by lenient parsing (streaming: the db stream; batch
  /// callers fold their parse-time tallies in themselves).
  robust::QuarantineStats quarantine{};
  /// Work units (pipeline shards / schedule blocks) whose results were lost
  /// after retries; base/count are db-index ranges for shards, pair counts
  /// for blocks. Empty on a clean run.
  std::vector<robust::ShardFailure> failures;
  std::uint64_t worker_errors = 0;    ///< = failures.size(), pre-summed.
  std::uint64_t shard_retries = 0;    ///< Transient failures that were retried.
  std::uint64_t records_dropped = 0;  ///< Alignment results lost to failures.
  double seconds = 0.0;
  /// Giga cell updates per second over real (unpadded) cells — the figure of
  /// merit comparable across engines and with the paper / other aligners.
  [[nodiscard]] double gcups() const noexcept;
  /// GCUPS over padded cells (totals.cells): the work the engines actually
  /// performed, including stripe padding. Always >= gcups().
  [[nodiscard]] double gcups_padded() const noexcept;
};

/// Lane count of the packed engine under `cfg` (0 when the run is forced
/// intra-task). The scheduler uses it to merge underfilled tail blocks and
/// publish lane-fill telemetry, so rebuilding a schedule for comparison must
/// pass the same value.
[[nodiscard]] int engine_lane_count(const SearchConfig& cfg);

/// Align every sequence of `queries` against every sequence of `db`.
[[nodiscard]] SearchReport search(const Dataset& queries, const Dataset& db,
                                  const SearchConfig& cfg = {});

/// Streaming variant: parses `db` incrementally (FASTA) and overlaps parsing,
/// profile building, alignment and top-k reduction on a bounded queue
/// (runtime::SearchPipeline). Hit db_index values refer to record order in
/// the stream. When `collected` is non-null every parsed database sequence is
/// appended to it (for reporting names after the fact).
[[nodiscard]] SearchReport search_stream(const Dataset& queries, std::istream& db,
                                         const Alphabet& alphabet,
                                         const SearchConfig& cfg = {},
                                         Dataset* collected = nullptr);

}  // namespace valign::apps
