// Database search driver (§V "Use Cases"): every query sequence is aligned
// against every database sequence; the best hits per query are returned.
#pragma once

#include <vector>

#include "valign/core/dispatch.hpp"
#include "valign/io/sequence.hpp"

namespace valign::apps {

struct SearchHit {
  std::size_t db_index = 0;
  std::int32_t score = 0;
  std::int32_t query_end = -1;
  std::int32_t db_end = -1;
};

struct SearchConfig {
  Options align{};     ///< Alignment class / approach / ISA / width / scoring.
  int top_k = 10;      ///< Hits retained per query.
  int threads = 1;     ///< OpenMP threads over queries (1 = serial).
};

struct SearchReport {
  /// top_hits[q] = best hits for query q, sorted by descending score.
  std::vector<std::vector<SearchHit>> top_hits;
  AlignStats totals{};
  std::uint64_t alignments = 0;
  double seconds = 0.0;
  /// Giga cell updates per second over real (unpadded) cells.
  [[nodiscard]] double gcups() const noexcept;
};

/// Align every sequence of `queries` against every sequence of `db`.
[[nodiscard]] SearchReport search(const Dataset& queries, const Dataset& db,
                                  const SearchConfig& cfg = {});

}  // namespace valign::apps
