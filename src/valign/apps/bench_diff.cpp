#include "valign/apps/bench_diff.hpp"

#include <cstdio>
#include <ostream>

namespace valign::apps {

const char* to_string(BenchVerdict v) {
  switch (v) {
    case BenchVerdict::Improved: return "improved";
    case BenchVerdict::Unchanged: return "unchanged";
    case BenchVerdict::Regressed: return "REGRESSED";
    case BenchVerdict::Added: return "added";
    case BenchVerdict::Removed: return "removed";
  }
  return "?";
}

BenchDiffResult bench_diff(const obs::BenchReport& baseline,
                           const obs::BenchReport& current,
                           const BenchDiffConfig& cfg) {
  BenchDiffResult out;
  for (const obs::BenchScenario& base : baseline.scenarios) {
    BenchDiffRow row;
    row.name = base.name;
    row.base_sec = base.sec_median;
    const obs::BenchScenario* cur = current.find(base.name);
    if (cur == nullptr) {
      row.verdict = BenchVerdict::Removed;
      out.rows.push_back(std::move(row));
      continue;
    }
    row.cur_sec = cur->sec_median;
    if (base.sec_median <= 0.0 || cur->sec_median <= 0.0) {
      row.verdict = BenchVerdict::Unchanged;  // incomparable, not a regression
      ++out.unchanged;
      out.rows.push_back(std::move(row));
      continue;
    }
    row.delta_pct =
        100.0 * (cur->sec_median - base.sec_median) / base.sec_median;
    if (row.delta_pct > cfg.threshold_pct) {
      row.verdict = BenchVerdict::Regressed;
      ++out.regressed;
    } else if (row.delta_pct < -cfg.threshold_pct) {
      row.verdict = BenchVerdict::Improved;
      ++out.improved;
    } else {
      row.verdict = BenchVerdict::Unchanged;
      ++out.unchanged;
    }
    out.rows.push_back(std::move(row));
  }
  for (const obs::BenchScenario& cur : current.scenarios) {
    if (baseline.find(cur.name) != nullptr) continue;
    BenchDiffRow row;
    row.name = cur.name;
    row.cur_sec = cur.sec_median;
    row.verdict = BenchVerdict::Added;
    out.rows.push_back(std::move(row));
  }
  return out;
}

void print_bench_diff(std::ostream& out, const BenchDiffResult& result,
                      const BenchDiffConfig& cfg) {
  char line[256];
  std::snprintf(line, sizeof line, "%-40s %12s %12s %9s  %s\n", "scenario",
                "base (s)", "current (s)", "delta", "verdict");
  out << line;
  for (const BenchDiffRow& r : result.rows) {
    char delta[32] = "-";
    if (r.verdict == BenchVerdict::Improved ||
        r.verdict == BenchVerdict::Unchanged ||
        r.verdict == BenchVerdict::Regressed) {
      std::snprintf(delta, sizeof delta, "%+.1f%%", r.delta_pct);
    }
    std::snprintf(line, sizeof line, "%-40s %12.6g %12.6g %9s  %s\n",
                  r.name.c_str(), r.base_sec, r.cur_sec, delta,
                  to_string(r.verdict));
    out << line;
  }
  std::snprintf(line, sizeof line,
                "threshold +/-%.1f%% on median seconds: %d improved, "
                "%d unchanged, %d regressed\n",
                cfg.threshold_pct, result.improved, result.unchanged,
                result.regressed);
  out << line;
}

}  // namespace valign::apps
