#include "valign/apps/db_search.hpp"

#include <algorithm>
#include <chrono>

#if defined(VALIGN_HAVE_OPENMP)
#include <omp.h>
#endif

namespace valign::apps {

double SearchReport::gcups() const noexcept {
  if (seconds <= 0.0) return 0.0;
  // Real cell updates: query_len * db_len summed over alignments. We use the
  // engines' padded cell counters scaled is avoided; totals.cells counts
  // padded stripes, which is the work actually performed.
  return static_cast<double>(totals.cells) / seconds / 1e9;
}

namespace {

void keep_top(std::vector<SearchHit>& hits, int top_k) {
  const auto k = static_cast<std::size_t>(top_k);
  if (hits.size() <= k) {
    std::sort(hits.begin(), hits.end(),
              [](const SearchHit& a, const SearchHit& b) { return a.score > b.score; });
    return;
  }
  std::partial_sort(hits.begin(), hits.begin() + static_cast<std::ptrdiff_t>(k),
                    hits.end(),
                    [](const SearchHit& a, const SearchHit& b) { return a.score > b.score; });
  hits.resize(k);
}

}  // namespace

SearchReport search(const Dataset& queries, const Dataset& db, const SearchConfig& cfg) {
  SearchReport report;
  report.top_hits.resize(queries.size());

  const auto t0 = std::chrono::steady_clock::now();

#if defined(VALIGN_HAVE_OPENMP)
  const int nthreads = cfg.threads > 0 ? cfg.threads : 1;
#pragma omp parallel num_threads(nthreads)
#endif
  {
    Aligner aligner(cfg.align);
    AlignStats local_stats{};
    std::uint64_t local_aligns = 0;

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp for schedule(dynamic)
#endif
    for (std::size_t q = 0; q < queries.size(); ++q) {
      aligner.set_query(queries[q]);
      std::vector<SearchHit> hits;
      hits.reserve(db.size());
      for (std::size_t d = 0; d < db.size(); ++d) {
        const AlignResult r = aligner.align(db[d]);
        local_stats += r.stats;
        ++local_aligns;
        hits.push_back(SearchHit{d, r.score, r.query_end, r.db_end});
      }
      keep_top(hits, cfg.top_k);
      report.top_hits[q] = std::move(hits);
    }

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp critical
#endif
    {
      report.totals += local_stats;
      report.alignments += local_aligns;
    }
  }

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

}  // namespace valign::apps
