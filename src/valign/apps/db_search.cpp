#include "valign/apps/db_search.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <thread>

#include "valign/io/fasta.hpp"
#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"
#include "valign/runtime/pipeline.hpp"

#if defined(VALIGN_HAVE_OPENMP)
#include <omp.h>
#endif

namespace valign::apps {

double SearchReport::gcups() const noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(cells_real) / seconds / 1e9;
}

double SearchReport::gcups_padded() const noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(totals.cells) / seconds / 1e9;
}

void keep_top_hits(std::vector<SearchHit>& hits, int top_k) {
  const auto k = static_cast<std::size_t>(std::max(top_k, 0));
  if (hits.size() <= k) {
    std::sort(hits.begin(), hits.end(), hit_before);
    return;
  }
  std::partial_sort(hits.begin(), hits.begin() + static_cast<std::ptrdiff_t>(k),
                    hits.end(), hit_before);
  hits.resize(k);
}

int engine_lane_count(const SearchConfig& cfg) {
  if (cfg.engine == EngineMode::Intra) return 0;
  // Probe at the width most pairs will use: i8 for Local (small clamped
  // scores), i16 otherwise.
  const BatchAligner probe(cfg.align);
  return probe.lanes(cfg.align.klass == AlignClass::Local ? 8 : 16);
}

SearchReport search(const Dataset& queries, const Dataset& db, const SearchConfig& cfg) {
  SearchReport report;
  report.top_hits.resize(queries.size());

  const auto t0 = std::chrono::steady_clock::now();

  // Lane count of the packed engine: feeds the scheduler's underfill merge
  // and the per-block cost model.
  const int lane_count = engine_lane_count(cfg);
  int alpha = 0;
  if (cfg.engine != EngineMode::Intra) {
    alpha = BatchAligner(cfg.align).matrix().size();
  }

  runtime::Schedule sched;
  {
    const obs::StageSpan span(obs::Stage::Schedule);
    sched = runtime::make_search_schedule(
        queries, db,
        runtime::ScheduleConfig{cfg.sched, cfg.threads, cfg.grain_cells,
                                lane_count});
  }
  obs::Histogram& block_us = obs::Registry::global().histogram(
      "runtime.sched.block_us", obs::block_latency_bounds_us());

  // Hits per query, merged across threads after the parallel region so the
  // final keep_top_hits sees every candidate (deterministic under ties).
  std::vector<std::vector<SearchHit>> merged(queries.size());

  obs::StageSpan align_span(obs::Stage::Align);

#if defined(VALIGN_HAVE_OPENMP)
  const int nthreads = cfg.threads > 0 ? cfg.threads : 1;
#pragma omp parallel num_threads(nthreads)
#endif
  {
    Aligner aligner(cfg.align);
    std::optional<BatchAligner> batcher;
    if (cfg.engine != EngineMode::Intra) batcher.emplace(cfg.align);
    AlignStats local_stats{};
    std::uint64_t local_aligns = 0;
    std::uint64_t local_cells = 0;
    std::array<std::uint64_t, 3> local_width{};
    std::vector<std::vector<SearchHit>> local_hits(queries.size());
    std::vector<robust::ShardFailure> local_failures;
    std::uint64_t local_retries = 0;
    std::uint64_t local_dropped = 0;
    std::vector<std::span<const std::uint8_t>> batch_dbs;
    std::vector<AlignResult> batch_out;
    std::size_t cur_query = queries.size();    // sentinel: no query loaded
    std::size_t batch_query = queries.size();  // ditto, for the batcher

    // Block-transactional scratch: one attempt accumulates here and commits
    // only on success, so retried/failed blocks never leave partial hits or
    // double-counted stats (see docs/robustness.md).
    AlignStats try_stats{};
    std::uint64_t try_aligns = 0;
    std::uint64_t try_cells = 0;
    std::array<std::uint64_t, 3> try_width{};
    std::vector<SearchHit> try_hits;

    const auto process_block = [&](const runtime::WorkBlock& b) {
      try_stats = AlignStats{};
      try_aligns = 0;
      try_cells = 0;
      try_width = {};
      try_hits.clear();
      const std::uint64_t qlen = queries[b.query].size();
      const std::size_t pairs = b.end - b.begin;
      const double mean_dlen =
          (qlen > 0 && pairs > 0)
              ? static_cast<double>(b.cost) /
                    (static_cast<double>(qlen) * static_cast<double>(pairs))
              : 0.0;
      const EngineMode mode = runtime::resolve_engine(
          cfg.engine, qlen, pairs, mean_dlen, lane_count, alpha);

      if (mode == EngineMode::Inter) {
        // Lane-packed sweep: the whole block is one batch, so the length
        // bucketing the scheduler already did keeps lanes in step.
        if (b.query != batch_query) {
          batcher->set_query(queries[b.query]);
          batch_query = b.query;
        }
        batch_dbs.clear();
        for (std::size_t k = b.begin; k < b.end; ++k) {
          batch_dbs.push_back(db[sched.db_index(k)].codes());
        }
        batch_out.resize(pairs);
        batcher->align_batch(batch_dbs, batch_out);
        for (std::size_t i = 0; i < pairs; ++i) {
          const std::size_t d = sched.db_index(b.begin + i);
          const AlignResult& r = batch_out[i];
          try_stats += r.stats;
          ++try_aligns;
          try_cells += qlen * db[d].size();
          ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
          try_hits.push_back(SearchHit{d, r.score, r.query_end, r.db_end});
        }
      } else {
        if (b.query != cur_query) {
          aligner.set_query(queries[b.query]);
          cur_query = b.query;
        }
        for (std::size_t k = b.begin; k < b.end; ++k) {
          const std::size_t d = sched.db_index(k);
          const AlignResult r = aligner.align(db[d]);
          try_stats += r.stats;
          ++try_aligns;
          try_cells += qlen * db[d].size();
          ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
          try_hits.push_back(SearchHit{d, r.score, r.query_end, r.db_end});
        }
      }
    };

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 1) nowait
#endif
    for (std::size_t bi = 0; bi < sched.blocks.size(); ++bi) {
      const runtime::WorkBlock& b = sched.blocks[bi];
      const obs::TraceSpan block_span(block_us);
      // Exception capture: a failure is charged to this block (recorded,
      // results dropped), never allowed to escape the parallel region —
      // an uncaught exception in an OpenMP worker is std::terminate.
      for (int attempt = 0;; ++attempt) {
        try {
          process_block(b);
          local_stats += try_stats;
          local_aligns += try_aligns;
          local_cells += try_cells;
          for (std::size_t w = 0; w < try_width.size(); ++w) {
            local_width[w] += try_width[w];
          }
          auto& hits = local_hits[b.query];
          hits.insert(hits.end(), try_hits.begin(), try_hits.end());
          // Bound per-thread memory: pruning to the thread-local top-k keeps
          // a superset of the global top-k (anything dropped is dominated by
          // k better hits already in this thread).
          if (hits.size() > runtime::top_k_prune_threshold(cfg.top_k)) {
            keep_top_hits(hits, cfg.top_k);
          }
          break;
        } catch (const std::exception& e) {
          if (robust::is_transient_failure(e) &&
              attempt < cfg.robust.max_retries) {
            ++local_retries;
            std::this_thread::sleep_for(std::chrono::milliseconds(2 << attempt));
            continue;
          }
          local_failures.push_back(
              robust::ShardFailure{b.begin, b.end - b.begin, e.what(), b.query});
          local_dropped += b.end - b.begin;
          break;
        } catch (...) {
          local_failures.push_back(robust::ShardFailure{
              b.begin, b.end - b.begin, "unknown exception", b.query});
          local_dropped += b.end - b.begin;
          break;
        }
      }
    }

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp critical
#endif
    {
      report.totals += local_stats;
      report.alignments += local_aligns;
      report.cells_real += local_cells;
      report.cache += aligner.cache_stats();
      if (batcher.has_value()) {
        report.interseq += batcher->batch_stats();
        report.interseq_fallbacks += batcher->fallbacks();
        report.cache += batcher->fallback_cache_stats();
      }
      for (std::size_t w = 0; w < local_width.size(); ++w) {
        report.width_counts[w] += local_width[w];
      }
      for (std::size_t q = 0; q < queries.size(); ++q) {
        merged[q].insert(merged[q].end(), local_hits[q].begin(), local_hits[q].end());
      }
      report.failures.insert(report.failures.end(), local_failures.begin(),
                             local_failures.end());
      report.shard_retries += local_retries;
      report.records_dropped += local_dropped;
    }
  }

  align_span.stop();
  report.worker_errors = report.failures.size();
  if (report.worker_errors > 0 || report.shard_retries > 0) {
    auto& reg = obs::Registry::global();
    reg.counter("runtime.search.worker_errors").add(report.worker_errors);
    reg.counter("runtime.search.records_dropped").add(report.records_dropped);
    reg.counter("runtime.search.shard_retries").add(report.shard_retries);
  }
  if (report.worker_errors > cfg.robust.max_errors) {
    std::ostringstream os;
    os << report.worker_errors << " of " << sched.blocks.size()
       << " block(s) failed (" << report.records_dropped
       << " alignment(s) dropped, --max-errors " << cfg.robust.max_errors
       << "); first: " << report.failures.front().error;
    throw robust::StatusError(robust::StatusCode::Internal, os.str());
  }
  runtime::publish_cache_stats(report.cache);
  if (cfg.engine != EngineMode::Intra) {
    runtime::publish_interseq_stats(report.interseq, report.interseq_fallbacks);
  }

  {
    const obs::StageSpan reduce_span(obs::Stage::Reduce);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      keep_top_hits(merged[q], cfg.top_k);
      report.top_hits[q] = std::move(merged[q]);
    }
  }

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

SearchReport search_stream(const Dataset& queries, std::istream& db,
                           const Alphabet& alphabet, const SearchConfig& cfg,
                           Dataset* collected) {
  runtime::SearchPipeline pipeline(queries, runtime::PipelineConfig{cfg});
  robust::QuarantineStats quarantine;
  {
    // Producer side: parsing overlaps the workers' Align spans, so the Parse
    // budget includes back-pressure waits on the bounded queue.
    const obs::StageSpan parse_span(obs::Stage::Parse);
    FastaReader reader(db, alphabet,
                       FastaReaderConfig{cfg.robust.lenient,
                                         cfg.robust.max_sequence_length});
    while (auto s = reader.next()) {
      if (collected != nullptr) collected->add(*s);
      pipeline.push(*std::move(s));
    }
    quarantine = reader.quarantine();
  }
  SearchReport report = pipeline.finish();
  report.quarantine = quarantine;
  robust::publish_quarantine_stats(report.quarantine);
  return report;
}

}  // namespace valign::apps
