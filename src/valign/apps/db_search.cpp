#include "valign/apps/db_search.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "valign/core/prefilter.hpp"
#include "valign/io/fasta.hpp"
#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"
#include "valign/runtime/pipeline.hpp"

#if defined(VALIGN_HAVE_OPENMP)
#include <omp.h>
#endif

namespace valign::apps {

double SearchReport::gcups() const noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(cells_real) / seconds / 1e9;
}

double SearchReport::gcups_padded() const noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(totals.cells) / seconds / 1e9;
}

void keep_top_hits(std::vector<SearchHit>& hits, int top_k) {
  const auto k = static_cast<std::size_t>(std::max(top_k, 0));
  if (hits.size() <= k) {
    std::sort(hits.begin(), hits.end(), hit_before);
    return;
  }
  std::partial_sort(hits.begin(), hits.begin() + static_cast<std::ptrdiff_t>(k),
                    hits.end(), hit_before);
  hits.resize(k);
}

int engine_lane_count(const SearchConfig& cfg) {
  if (cfg.engine == EngineMode::Intra) return 0;
  // Probe at the width most pairs will use: i8 for Local (small clamped
  // scores), i16 otherwise.
  const BatchAligner probe(cfg.align);
  return probe.lanes(cfg.align.klass == AlignClass::Local ? 8 : 16);
}

bool prefilter_active(const SearchConfig& cfg, std::size_t db_size) {
  switch (cfg.prefilter) {
    case PrefilterMode::Off: return false;
    case PrefilterMode::Force: return true;
    case PrefilterMode::Auto: break;
  }
  // The screen's local-score bound is weak for Global alignment (NW true
  // scores sit far below the SW bound, so nearly everything escalates and
  // the screen pass is pure overhead). Small databases amortize nothing.
  if (cfg.align.klass == AlignClass::Global) return false;
  const auto k = static_cast<std::size_t>(std::max(cfg.top_k, 0));
  return db_size >= std::max<std::size_t>(64, 8 * k);
}

namespace {

/// Timeline track label for the calling worker ("omp-3"; "main" without
/// OpenMP). Sticky across parallel regions — OpenMP reuses its thread pool.
void name_worker_thread() {
  if (!obs::query_trace_enabled()) return;
#if defined(VALIGN_HAVE_OPENMP)
  obs::set_trace_thread_name("omp-" + std::to_string(omp_get_thread_num()));
#else
  obs::set_trace_thread_name("main");
#endif
}

/// Opens every query's async timeline span up front (one QueryBegin instant
/// each, a0 = query length) so per-query spans cover scheduling too.
void trace_query_begins(const Dataset& queries) {
  if (!obs::query_trace_enabled()) return;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    obs::TraceContext(static_cast<std::uint32_t>(q))
        .instant(obs::TraceEventKind::QueryBegin,
                 static_cast<std::int64_t>(queries[q].size()));
  }
}

/// Pairs per stage-one screen batch: a multiple of every lane count, large
/// enough to amortize query-profile setup, small enough that the degraded
/// unit after a screen failure stays cheap.
constexpr std::size_t kScreenBlock = 512;

/// One stage-one unit: `query` against subjects `begin..end` of the
/// length-sorted order.
struct ScreenBlock {
  std::size_t query;
  std::size_t begin;
  std::size_t end;  ///< Half-open.
};

/// Two-stage driver (docs/prefilter.md): screen every pair with the i8
/// score-only prescreen, then escalate candidates best-upper-bound-first
/// through the intra/inter ladder until the remaining upper bounds cannot
/// displace the running k-th best true score. Work is bucketed *after*
/// screening, so `runtime.sched.bucket_fill` sees only survivor chunks.
/// Stage one parallelizes over (query, block); stage two over queries.
SearchReport search_prefiltered(const Dataset& queries, const Dataset& db,
                                const SearchConfig& cfg,
                                std::chrono::steady_clock::time_point t0) {
  SearchReport report;
  report.top_hits.resize(queries.size());
  report.prefilter.enabled = true;
  trace_query_begins(queries);
  const ProfileCacheStats pc0 = SharedProfileCache::global().stats();

  const PrefilterModel model = cfg.prefilter_model
                                   ? *cfg.prefilter_model
                                   : PrefilterModel::conservative();
  const std::int64_t margin = model.margin_for(cfg.align.klass);
  const int lane_count = engine_lane_count(cfg);
  int alpha = 0;
  if (cfg.engine != EngineMode::Intra) {
    alpha = BatchAligner(cfg.align).matrix().size();
  }

  // Length-descending subject order: screen lanes stay in step, and
  // escalation chunk cost estimates stay meaningful.
  std::vector<std::size_t> order(db.size());
  std::vector<ScreenBlock> blocks;
  {
    const obs::StageSpan span(obs::Stage::Schedule);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&db](std::size_t a, std::size_t b) {
                       return db[a].size() > db[b].size();
                     });
    for (std::size_t q = 0; q < queries.size(); ++q) {
      for (std::size_t begin = 0; begin < order.size(); begin += kScreenBlock) {
        blocks.push_back(
            ScreenBlock{q, begin, std::min(begin + kScreenBlock, order.size())});
      }
    }
  }

  // verdicts[q * db.size() + k] is the verdict for (query q, subject
  // order[k]) — order-space, so each screen block writes one contiguous run.
  std::vector<PrefilterVerdict> verdicts(queries.size() * db.size());
  PrefilterStats screen_stats{};

  obs::StageSpan align_span(obs::Stage::Align);

#if defined(VALIGN_HAVE_OPENMP)
  const int nthreads = cfg.threads > 0 ? cfg.threads : 1;
#endif

  // ---- Stage one: screen every pair. ----
#if defined(VALIGN_HAVE_OPENMP)
#pragma omp parallel num_threads(nthreads)
#endif
  {
    name_worker_thread();
    Prefilter pf(cfg.align);
    std::size_t pf_query = queries.size();  // sentinel: no query loaded
    std::vector<std::span<const std::uint8_t>> screen_dbs;
    std::uint64_t local_failures = 0;

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 1) nowait
#endif
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
      const ScreenBlock& b = blocks[bi];
      if (b.query != pf_query) {
        pf.set_query(queries[b.query]);
        pf_query = b.query;
      }
      screen_dbs.clear();
      for (std::size_t k = b.begin; k < b.end; ++k) {
        screen_dbs.push_back(db[order[k]].codes());
      }
      const std::span<PrefilterVerdict> out(
          verdicts.data() + b.query * db.size() + b.begin, b.end - b.begin);
      const obs::TraceSlice screen_slice(
          obs::TraceEventKind::Screen,
          obs::TraceContext(static_cast<std::uint32_t>(b.query)),
          static_cast<std::int64_t>(b.end - b.begin), pf.lanes());
      try {
        pf.screen(screen_dbs, out);
      } catch (const std::exception&) {
        // Degrade, never drop: the whole block goes through full DP, which
        // is exactly the unfiltered behaviour for these pairs.
        for (PrefilterVerdict& v : out) v = PrefilterVerdict{0, true};
        ++local_failures;
      }
    }

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp critical
#endif
    {
      screen_stats += pf.stats();
      report.prefilter.screen_failures += local_failures;
    }
  }
  report.prefilter.saturated = screen_stats.saturated;
  report.prefilter.screen_cells = screen_stats.cells;
  // Screened = submitted: blocks a failure degraded to full DP still count.
  report.prefilter.screened = queries.size() * db.size();

  // ---- Stage two: escalate best-bound-first, per query. ----
  const std::size_t chunk_cap =
      std::max<std::size_t>(16, lane_count > 0
                                    ? 2 * static_cast<std::size_t>(lane_count)
                                    : 0);
  const auto top_k = static_cast<std::size_t>(std::max(cfg.top_k, 0));
  obs::Histogram& block_us = obs::Registry::global().histogram(
      "runtime.sched.block_us", obs::block_latency_bounds_us());

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp parallel num_threads(nthreads)
#endif
  {
    name_worker_thread();
    Aligner aligner(cfg.align);
    std::optional<BatchAligner> batcher;
    if (cfg.engine != EngineMode::Intra) batcher.emplace(cfg.align);
    AlignStats local_stats{};
    std::uint64_t local_aligns = 0;
    std::uint64_t local_cells = 0;
    std::array<std::uint64_t, 3> local_width{};
    std::vector<robust::ShardFailure> local_failures;
    std::uint64_t local_retries = 0;
    std::uint64_t local_dropped = 0;
    std::uint64_t local_escalated = 0;
    std::uint64_t local_chunks = 0;
    CandidateQueue queue;
    std::vector<std::size_t> chunk(chunk_cap);
    std::vector<std::span<const std::uint8_t>> batch_dbs;
    std::vector<AlignResult> batch_out;
    std::vector<SearchHit> hits;

    // Chunk-transactional scratch (same contract as the unfiltered driver):
    // a failed attempt never leaves partial hits, stats, or — crucially —
    // cutoff updates behind, so a dropped chunk cannot tighten the bar for
    // pairs that are still alive.
    AlignStats try_stats{};
    std::uint64_t try_cells = 0;
    std::array<std::uint64_t, 3> try_width{};
    std::vector<SearchHit> try_hits;

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 1) nowait
#endif
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const obs::TraceContext qtrace(static_cast<std::uint32_t>(q));
      const std::uint64_t qlen = queries[q].size();
      queue.reset(db.size());
      const PrefilterVerdict* v = verdicts.data() + q * db.size();
      for (std::size_t k = 0; k < db.size(); ++k) queue.push(order[k], v[k]);
      queue.seal();
      TopKCutoff cutoff(top_k);
      hits.clear();
      bool query_loaded = false;
      bool batch_loaded = false;

      // Ramp: the first chunk only needs to seed the k-th-best cutoff, and
      // the queue is bound-sorted, so a small first bite usually pins the
      // final cutoff at once; lane-width chunks after that keep the packed
      // engine full for whatever survives.
      std::size_t cap = std::min(chunk_cap, std::max<std::size_t>(top_k, 16));
      for (;;) {
        const std::size_t n = queue.pop_chunk(cap, cutoff.cutoff(), margin, chunk);
        if (n == 0) break;
        cap = chunk_cap;
        ++local_chunks;
        local_escalated += n;
        runtime::record_block_fill(n, lane_count);
        const obs::TraceSpan block_span(block_us);
        const obs::TraceSlice chunk_slice(obs::TraceEventKind::Escalate, qtrace,
                                          static_cast<std::int64_t>(n),
                                          lane_count);

        std::uint64_t chunk_residues = 0;
        for (std::size_t i = 0; i < n; ++i) chunk_residues += db[chunk[i]].size();
        const double mean_dlen =
            n > 0 ? static_cast<double>(chunk_residues) / static_cast<double>(n)
                  : 0.0;
        const EngineMode mode = runtime::resolve_engine(
            cfg.engine, qlen, n, mean_dlen, lane_count, alpha,
            cfg.align.klass, cfg.align.model);

        const auto align_chunk = [&] {
          try_stats = AlignStats{};
          try_cells = 0;
          try_width = {};
          try_hits.clear();
          if (mode == EngineMode::Inter) {
            if (!batch_loaded) {
              batcher->set_query(queries[q]);
              batcher->set_trace(qtrace);
              batch_loaded = true;
            }
            batch_dbs.clear();
            for (std::size_t i = 0; i < n; ++i) {
              batch_dbs.push_back(db[chunk[i]].codes());
            }
            batch_out.resize(n);
            batcher->align_batch(batch_dbs, batch_out);
            for (std::size_t i = 0; i < n; ++i) {
              const AlignResult& r = batch_out[i];
              try_stats += r.stats;
              try_cells += qlen * db[chunk[i]].size();
              ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
              try_hits.push_back(
                  SearchHit{chunk[i], r.score, r.query_end, r.db_end});
            }
          } else {
            if (!query_loaded) {
              aligner.set_query(queries[q]);
              aligner.set_trace(qtrace);
              query_loaded = true;
            }
            for (std::size_t i = 0; i < n; ++i) {
              const AlignResult r = aligner.align(db[chunk[i]]);
              try_stats += r.stats;
              try_cells += qlen * db[chunk[i]].size();
              ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
              try_hits.push_back(
                  SearchHit{chunk[i], r.score, r.query_end, r.db_end});
            }
          }
        };

        for (int attempt = 0;; ++attempt) {
          try {
            align_chunk();
            local_stats += try_stats;
            local_aligns += n;
            local_cells += try_cells;
            for (std::size_t w = 0; w < try_width.size(); ++w) {
              local_width[w] += try_width[w];
            }
            for (const SearchHit& h : try_hits) {
              cutoff.offer(h.score);
              hits.push_back(h);
            }
            if (hits.size() > runtime::top_k_prune_threshold(cfg.top_k)) {
              keep_top_hits(hits, cfg.top_k);
            }
            break;
          } catch (const std::exception& e) {
            if (robust::is_transient_failure(e) &&
                attempt < cfg.robust.max_retries) {
              ++local_retries;
              qtrace.instant(obs::TraceEventKind::Retry, attempt + 1);
              std::this_thread::sleep_for(std::chrono::milliseconds(2 << attempt));
              continue;
            }
            qtrace.instant(obs::TraceEventKind::Degraded,
                           static_cast<std::int64_t>(n));
            local_failures.push_back(robust::ShardFailure{0, n, e.what(), q});
            local_dropped += n;
            break;
          } catch (...) {
            qtrace.instant(obs::TraceEventKind::Degraded,
                           static_cast<std::int64_t>(n));
            local_failures.push_back(
                robust::ShardFailure{0, n, "unknown exception", q});
            local_dropped += n;
            break;
          }
        }
      }

      keep_top_hits(hits, cfg.top_k);
      report.top_hits[q] = hits;  // Each query is owned by exactly one thread.
      qtrace.instant(obs::TraceEventKind::QueryEnd,
                     static_cast<std::int64_t>(hits.size()));
    }

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp critical
#endif
    {
      report.totals += local_stats;
      report.alignments += local_aligns;
      report.cells_real += local_cells;
      report.cache += aligner.cache_stats();
      if (batcher.has_value()) {
        report.interseq += batcher->batch_stats();
        report.interseq_fallbacks += batcher->fallbacks();
        report.cache += batcher->fallback_cache_stats();
      }
      for (std::size_t w = 0; w < local_width.size(); ++w) {
        report.width_counts[w] += local_width[w];
      }
      report.failures.insert(report.failures.end(), local_failures.begin(),
                             local_failures.end());
      report.shard_retries += local_retries;
      report.records_dropped += local_dropped;
      report.prefilter.escalated += local_escalated;
      report.prefilter.chunks += local_chunks;
    }
  }

  align_span.stop();
  report.prefilter.escaped =
      report.prefilter.screened > report.prefilter.escalated
          ? report.prefilter.screened - report.prefilter.escalated
          : 0;
  report.worker_errors = report.failures.size();
  if (report.worker_errors > 0 || report.shard_retries > 0) {
    auto& reg = obs::Registry::global();
    reg.counter("runtime.search.worker_errors").add(report.worker_errors);
    reg.counter("runtime.search.records_dropped").add(report.records_dropped);
    reg.counter("runtime.search.shard_retries").add(report.shard_retries);
  }
  if (report.worker_errors > cfg.robust.max_errors) {
    std::ostringstream os;
    os << report.worker_errors << " escalation chunk(s) failed ("
       << report.records_dropped << " alignment(s) dropped, --max-errors "
       << cfg.robust.max_errors << "); first: " << report.failures.front().error;
    throw robust::StatusError(robust::StatusCode::Internal, os.str());
  }
  report.profile_cache = SharedProfileCache::global().stats() - pc0;
  runtime::publish_cache_stats(report.cache);
  runtime::publish_kernel_stats(report.profile_cache, report.totals);
  if (cfg.engine != EngineMode::Intra) {
    runtime::publish_interseq_stats(report.interseq, report.interseq_fallbacks);
  }
  runtime::publish_prefilter_stats(screen_stats, report.prefilter.screened,
                                   report.prefilter.escalated,
                                   report.prefilter.screen_failures,
                                   report.prefilter.chunks);

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

}  // namespace

SearchReport search(const Dataset& queries, const Dataset& db, const SearchConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  if (prefilter_active(cfg, db.size())) {
    return search_prefiltered(queries, db, cfg, t0);
  }

  SearchReport report;
  report.top_hits.resize(queries.size());
  trace_query_begins(queries);
  const ProfileCacheStats pc0 = SharedProfileCache::global().stats();

  // Lane count of the packed engine: feeds the scheduler's underfill merge
  // and the per-block cost model.
  const int lane_count = engine_lane_count(cfg);
  int alpha = 0;
  if (cfg.engine != EngineMode::Intra) {
    alpha = BatchAligner(cfg.align).matrix().size();
  }

  runtime::Schedule sched;
  {
    const obs::StageSpan span(obs::Stage::Schedule);
    sched = runtime::make_search_schedule(
        queries, db,
        runtime::ScheduleConfig{cfg.sched, cfg.threads, cfg.grain_cells,
                                lane_count});
  }
  obs::Histogram& block_us = obs::Registry::global().histogram(
      "runtime.sched.block_us", obs::block_latency_bounds_us());

  // Hits per query, merged across threads after the parallel region so the
  // final keep_top_hits sees every candidate (deterministic under ties).
  std::vector<std::vector<SearchHit>> merged(queries.size());

  obs::StageSpan align_span(obs::Stage::Align);

#if defined(VALIGN_HAVE_OPENMP)
  const int nthreads = cfg.threads > 0 ? cfg.threads : 1;
#pragma omp parallel num_threads(nthreads)
#endif
  {
    name_worker_thread();
    Aligner aligner(cfg.align);
    std::optional<BatchAligner> batcher;
    if (cfg.engine != EngineMode::Intra) batcher.emplace(cfg.align);
    AlignStats local_stats{};
    std::uint64_t local_aligns = 0;
    std::uint64_t local_cells = 0;
    std::array<std::uint64_t, 3> local_width{};
    std::vector<std::vector<SearchHit>> local_hits(queries.size());
    std::vector<robust::ShardFailure> local_failures;
    std::uint64_t local_retries = 0;
    std::uint64_t local_dropped = 0;
    std::vector<std::span<const std::uint8_t>> batch_dbs;
    std::vector<AlignResult> batch_out;
    std::size_t cur_query = queries.size();    // sentinel: no query loaded
    std::size_t batch_query = queries.size();  // ditto, for the batcher

    // Block-transactional scratch: one attempt accumulates here and commits
    // only on success, so retried/failed blocks never leave partial hits or
    // double-counted stats (see docs/robustness.md).
    AlignStats try_stats{};
    std::uint64_t try_aligns = 0;
    std::uint64_t try_cells = 0;
    std::array<std::uint64_t, 3> try_width{};
    std::vector<SearchHit> try_hits;

    const auto process_block = [&](const runtime::WorkBlock& b) {
      try_stats = AlignStats{};
      try_aligns = 0;
      try_cells = 0;
      try_width = {};
      try_hits.clear();
      const std::uint64_t qlen = queries[b.query].size();
      const std::size_t pairs = b.end - b.begin;
      const double mean_dlen =
          (qlen > 0 && pairs > 0)
              ? static_cast<double>(b.cost) /
                    (static_cast<double>(qlen) * static_cast<double>(pairs))
              : 0.0;
      const EngineMode mode = runtime::resolve_engine(
          cfg.engine, qlen, pairs, mean_dlen, lane_count, alpha,
          cfg.align.klass, cfg.align.model);
      const obs::TraceSlice align_slice(
          obs::TraceEventKind::Align,
          obs::TraceContext(static_cast<std::uint32_t>(b.query)),
          static_cast<std::int64_t>(pairs),
          mode == EngineMode::Inter ? lane_count : 1);

      if (mode == EngineMode::Inter) {
        // Lane-packed sweep: the whole block is one batch, so the length
        // bucketing the scheduler already did keeps lanes in step.
        if (b.query != batch_query) {
          batcher->set_query(queries[b.query]);
          batcher->set_trace(
              obs::TraceContext(static_cast<std::uint32_t>(b.query)));
          batch_query = b.query;
        }
        batch_dbs.clear();
        for (std::size_t k = b.begin; k < b.end; ++k) {
          batch_dbs.push_back(db[sched.db_index(k)].codes());
        }
        batch_out.resize(pairs);
        batcher->align_batch(batch_dbs, batch_out);
        for (std::size_t i = 0; i < pairs; ++i) {
          const std::size_t d = sched.db_index(b.begin + i);
          const AlignResult& r = batch_out[i];
          try_stats += r.stats;
          ++try_aligns;
          try_cells += qlen * db[d].size();
          ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
          try_hits.push_back(SearchHit{d, r.score, r.query_end, r.db_end});
        }
      } else {
        if (b.query != cur_query) {
          aligner.set_query(queries[b.query]);
          aligner.set_trace(
              obs::TraceContext(static_cast<std::uint32_t>(b.query)));
          cur_query = b.query;
        }
        for (std::size_t k = b.begin; k < b.end; ++k) {
          const std::size_t d = sched.db_index(k);
          const AlignResult r = aligner.align(db[d]);
          try_stats += r.stats;
          ++try_aligns;
          try_cells += qlen * db[d].size();
          ++try_width[static_cast<std::size_t>(obs::width_index(r.bits))];
          try_hits.push_back(SearchHit{d, r.score, r.query_end, r.db_end});
        }
      }
    };

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 1) nowait
#endif
    for (std::size_t bi = 0; bi < sched.blocks.size(); ++bi) {
      const runtime::WorkBlock& b = sched.blocks[bi];
      const obs::TraceContext qtrace(static_cast<std::uint32_t>(b.query));
      const obs::TraceSpan block_span(block_us);
      // Exception capture: a failure is charged to this block (recorded,
      // results dropped), never allowed to escape the parallel region —
      // an uncaught exception in an OpenMP worker is std::terminate.
      for (int attempt = 0;; ++attempt) {
        try {
          process_block(b);
          local_stats += try_stats;
          local_aligns += try_aligns;
          local_cells += try_cells;
          for (std::size_t w = 0; w < try_width.size(); ++w) {
            local_width[w] += try_width[w];
          }
          auto& hits = local_hits[b.query];
          hits.insert(hits.end(), try_hits.begin(), try_hits.end());
          // Bound per-thread memory: pruning to the thread-local top-k keeps
          // a superset of the global top-k (anything dropped is dominated by
          // k better hits already in this thread).
          if (hits.size() > runtime::top_k_prune_threshold(cfg.top_k)) {
            keep_top_hits(hits, cfg.top_k);
          }
          break;
        } catch (const std::exception& e) {
          if (robust::is_transient_failure(e) &&
              attempt < cfg.robust.max_retries) {
            ++local_retries;
            qtrace.instant(obs::TraceEventKind::Retry, attempt + 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(2 << attempt));
            continue;
          }
          qtrace.instant(obs::TraceEventKind::Degraded,
                         static_cast<std::int64_t>(b.end - b.begin));
          local_failures.push_back(
              robust::ShardFailure{b.begin, b.end - b.begin, e.what(), b.query});
          local_dropped += b.end - b.begin;
          break;
        } catch (...) {
          qtrace.instant(obs::TraceEventKind::Degraded,
                         static_cast<std::int64_t>(b.end - b.begin));
          local_failures.push_back(robust::ShardFailure{
              b.begin, b.end - b.begin, "unknown exception", b.query});
          local_dropped += b.end - b.begin;
          break;
        }
      }
    }

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp critical
#endif
    {
      report.totals += local_stats;
      report.alignments += local_aligns;
      report.cells_real += local_cells;
      report.cache += aligner.cache_stats();
      if (batcher.has_value()) {
        report.interseq += batcher->batch_stats();
        report.interseq_fallbacks += batcher->fallbacks();
        report.cache += batcher->fallback_cache_stats();
      }
      for (std::size_t w = 0; w < local_width.size(); ++w) {
        report.width_counts[w] += local_width[w];
      }
      for (std::size_t q = 0; q < queries.size(); ++q) {
        merged[q].insert(merged[q].end(), local_hits[q].begin(), local_hits[q].end());
      }
      report.failures.insert(report.failures.end(), local_failures.begin(),
                             local_failures.end());
      report.shard_retries += local_retries;
      report.records_dropped += local_dropped;
    }
  }

  align_span.stop();
  report.worker_errors = report.failures.size();
  if (report.worker_errors > 0 || report.shard_retries > 0) {
    auto& reg = obs::Registry::global();
    reg.counter("runtime.search.worker_errors").add(report.worker_errors);
    reg.counter("runtime.search.records_dropped").add(report.records_dropped);
    reg.counter("runtime.search.shard_retries").add(report.shard_retries);
  }
  if (report.worker_errors > cfg.robust.max_errors) {
    std::ostringstream os;
    os << report.worker_errors << " of " << sched.blocks.size()
       << " block(s) failed (" << report.records_dropped
       << " alignment(s) dropped, --max-errors " << cfg.robust.max_errors
       << "); first: " << report.failures.front().error;
    throw robust::StatusError(robust::StatusCode::Internal, os.str());
  }
  report.profile_cache = SharedProfileCache::global().stats() - pc0;
  runtime::publish_cache_stats(report.cache);
  runtime::publish_kernel_stats(report.profile_cache, report.totals);
  if (cfg.engine != EngineMode::Intra) {
    runtime::publish_interseq_stats(report.interseq, report.interseq_fallbacks);
  }

  {
    const obs::StageSpan reduce_span(obs::Stage::Reduce);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      keep_top_hits(merged[q], cfg.top_k);
      report.top_hits[q] = std::move(merged[q]);
      obs::TraceContext(static_cast<std::uint32_t>(q))
          .instant(obs::TraceEventKind::QueryEnd,
                   static_cast<std::int64_t>(report.top_hits[q].size()));
    }
  }

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

SearchReport search_stream(const Dataset& queries, std::istream& db,
                           const Alphabet& alphabet, const SearchConfig& cfg,
                           Dataset* collected) {
  runtime::SearchPipeline pipeline(queries, runtime::PipelineConfig{cfg});
  robust::QuarantineStats quarantine;
  {
    // Producer side: parsing overlaps the workers' Align spans, so the Parse
    // budget includes back-pressure waits on the bounded queue.
    const obs::StageSpan parse_span(obs::Stage::Parse);
    FastaReader reader(db, alphabet,
                       FastaReaderConfig{cfg.robust.lenient,
                                         cfg.robust.max_sequence_length});
    while (auto s = reader.next()) {
      if (collected != nullptr) collected->add(*s);
      pipeline.push(*std::move(s));
    }
    quarantine = reader.quarantine();
  }
  SearchReport report = pipeline.finish();
  report.quarantine = quarantine;
  robust::publish_quarantine_stats(report.quarantine);
  return report;
}

}  // namespace valign::apps
