// Benchmark trajectory comparison: classify every scenario of a current
// bench report against a baseline as improved / unchanged / regressed with a
// noise-aware threshold, so CI (and humans) can gate PRs on "did a hot path
// get slower". Backs the `valign bench-diff` command.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "valign/obs/bench_report.hpp"

namespace valign::apps {

struct BenchDiffConfig {
  /// Median-seconds change (in %) below which a scenario counts as
  /// unchanged. 5 % suits same-host runs; cross-host comparisons (CI runners
  /// vs a committed baseline) need a much looser value.
  double threshold_pct = 5.0;
};

enum class BenchVerdict {
  Improved,   ///< Median faster by more than the threshold.
  Unchanged,  ///< Within +/- threshold.
  Regressed,  ///< Median slower by more than the threshold.
  Added,      ///< In current only (informational, never fails).
  Removed,    ///< In baseline only (informational, never fails).
};

[[nodiscard]] const char* to_string(BenchVerdict v);

struct BenchDiffRow {
  std::string name;
  double base_sec = 0.0;   ///< Baseline median seconds (0 when Added).
  double cur_sec = 0.0;    ///< Current median seconds (0 when Removed).
  double delta_pct = 0.0;  ///< 100 * (cur - base) / base; 0 when not comparable.
  BenchVerdict verdict = BenchVerdict::Unchanged;
};

struct BenchDiffResult {
  std::vector<BenchDiffRow> rows;  ///< Baseline order, then added scenarios.
  int improved = 0;
  int unchanged = 0;
  int regressed = 0;

  [[nodiscard]] bool has_regression() const noexcept { return regressed > 0; }
};

/// Compares scenario medians by name. A baseline or current median of zero
/// seconds makes the pair incomparable (treated as unchanged — a zero-second
/// scenario is a producer bug, not a perf result).
[[nodiscard]] BenchDiffResult bench_diff(const obs::BenchReport& baseline,
                                         const obs::BenchReport& current,
                                         const BenchDiffConfig& cfg = {});

/// Human-readable per-scenario table plus a one-line verdict summary.
void print_bench_diff(std::ostream& out, const BenchDiffResult& result,
                      const BenchDiffConfig& cfg);

}  // namespace valign::apps
