#include "valign/apps/homology.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"

#if defined(VALIGN_HAVE_OPENMP)
#include <omp.h>
#endif

namespace valign::apps {

namespace {

/// Plain union-find for the family clustering.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

HomologyReport detect(const Dataset& ds, const HomologyConfig& cfg) {
  HomologyReport report;
  const ProfileCacheStats pc0 = SharedProfileCache::global().stats();
  const std::size_t n = ds.size();

  const auto t0 = std::chrono::steady_clock::now();

  runtime::Schedule sched;
  {
    const obs::StageSpan span(obs::Stage::Schedule);
    sched = runtime::make_all_pairs_schedule(
        ds, runtime::ScheduleConfig{cfg.sched, cfg.threads, cfg.grain_cells});
  }
  obs::Histogram& block_us = obs::Registry::global().histogram(
      "runtime.sched.block_us", obs::block_latency_bounds_us());

  obs::StageSpan align_span(obs::Stage::Align);

#if defined(VALIGN_HAVE_OPENMP)
  const int nthreads = cfg.threads > 0 ? cfg.threads : 1;
#pragma omp parallel num_threads(nthreads)
#endif
  {
    Aligner aligner(cfg.align);
    AlignStats local_stats{};
    std::uint64_t local_aligns = 0;
    std::uint64_t local_cells = 0;
    std::array<std::uint64_t, 3> local_width{};
    std::vector<HomologyEdge> local_edges;
    std::size_t cur_query = n;  // sentinel: no query loaded

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 1) nowait
#endif
    for (std::size_t bi = 0; bi < sched.blocks.size(); ++bi) {
      const runtime::WorkBlock& b = sched.blocks[bi];
      const obs::TraceSpan block_span(block_us);
      if (b.query != cur_query) {
        aligner.set_query(ds[b.query]);
        cur_query = b.query;
      }
      for (std::size_t j = b.begin; j < b.end; ++j) {
        const AlignResult r = aligner.align(ds[j]);
        local_stats += r.stats;
        ++local_aligns;
        local_cells += ds[b.query].size() * ds[j].size();
        ++local_width[static_cast<std::size_t>(obs::width_index(r.bits))];
        if (cfg.keep_edges && r.score >= cfg.score_threshold) {
          local_edges.push_back(HomologyEdge{b.query, j, r.score});
        }
      }
    }

#if defined(VALIGN_HAVE_OPENMP)
#pragma omp critical
#endif
    {
      report.totals += local_stats;
      report.alignments += local_aligns;
      report.cells_real += local_cells;
      report.cache += aligner.cache_stats();
      for (std::size_t w = 0; w < local_width.size(); ++w) {
        report.width_counts[w] += local_width[w];
      }
      report.edges.insert(report.edges.end(), local_edges.begin(), local_edges.end());
    }
  }

  align_span.stop();
  report.profile_cache = SharedProfileCache::global().stats() - pc0;
  runtime::publish_cache_stats(report.cache);
  runtime::publish_kernel_stats(report.profile_cache, report.totals);
  const obs::StageSpan reduce_span(obs::Stage::Reduce);

  // Blocks land in nondeterministic order across threads; normalize.
  std::sort(report.edges.begin(), report.edges.end(),
            [](const HomologyEdge& x, const HomologyEdge& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });

  UnionFind uf(n);
  for (const HomologyEdge& e : report.edges) uf.unite(e.a, e.b);
  report.cluster_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.cluster_of[i] = uf.find(i);
  std::vector<std::size_t> reps = report.cluster_of;
  std::sort(reps.begin(), reps.end());
  report.cluster_count =
      static_cast<std::size_t>(std::unique(reps.begin(), reps.end()) - reps.begin());

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

}  // namespace valign::apps
