// Homology detection driver (§V "Use Cases"): all-to-all alignment of one
// dataset; pairs scoring above a threshold become edges of a homology graph,
// whose connected components are reported as putative protein families.
//
// A thin adapter over the runtime layer: the i < j pair triangle is cut into
// load-balanced blocks by runtime::make_all_pairs_schedule, and per-thread
// Aligners reuse engines through runtime::EngineCache.
#pragma once

#include <array>
#include <vector>

#include "valign/core/dispatch.hpp"
#include "valign/core/profile_cache.hpp"
#include "valign/io/sequence.hpp"
#include "valign/runtime/engine_cache.hpp"
#include "valign/runtime/scheduler.hpp"

namespace valign::apps {

struct HomologyEdge {
  std::size_t a = 0, b = 0;
  std::int32_t score = 0;
};

struct HomologyConfig {
  Options align{};
  /// Pairs with score >= threshold are homologous edges.
  std::int32_t score_threshold = 60;
  int threads = 1;
  /// Keep edges in the report (disable for counting-only runs).
  bool keep_edges = true;
  /// Work partitioning: Query = one unit per row of the triangle (legacy),
  /// Pair = grain-sized blocks, Auto = Pair when rows alone cannot keep
  /// `threads` busy.
  runtime::PairSched sched = runtime::PairSched::Auto;
  /// Scheduler grain override in DP cells (0 = derive; see runtime/scheduler).
  std::uint64_t grain_cells = 0;
};

struct HomologyReport {
  /// Edges sorted by (a, b) — deterministic across thread counts.
  std::vector<HomologyEdge> edges;
  /// cluster_of[i] = representative index of sequence i's family.
  std::vector<std::size_t> cluster_of;
  std::size_t cluster_count = 0;
  AlignStats totals{};
  /// Real (unpadded) cell updates: sum of len_i * len_j over aligned pairs.
  std::uint64_t cells_real = 0;
  std::uint64_t alignments = 0;
  /// Engine-cache activity summed over every worker's Aligner.
  runtime::EngineCacheStats cache{};
  /// Shared query-profile cache activity attributable to this run.
  ProfileCacheStats profile_cache{};
  /// Alignments answered at 8/16/32-bit elements (index = log2(bits) - 3).
  std::array<std::uint64_t, 3> width_counts{};
  double seconds = 0.0;
};

/// All-to-all homology detection over `ds` (i < j pairs only; the DP is
/// symmetric up to sequence order, and score(a,b) == score(b,a) for the
/// symmetric matrices shipped here).
[[nodiscard]] HomologyReport detect(const Dataset& ds, const HomologyConfig& cfg = {});

}  // namespace valign::apps
