// Horizontal (cross-lane) scan primitives used by the Scan engine (§IV).
//
// The Scan formulation reduces the vertical DP dependency to a prefix
// max-with-decay over the column. In the striped layout the cross-lane part
// of that scan is resolved here: given per-lane aggregates, compute for every
// lane the max over all lower lanes with a fixed decay per lane step.
#pragma once

#include "valign/common.hpp"
#include "valign/simd/vec_traits.hpp"

namespace valign::simd {

/// Inclusive max-scan with decay, linear form: p-1 shift/subs/max steps.
///
/// out[s] = max over s' <= s of (in[s'] - (s - s') * decay).
/// This is the form the paper describes ("shifting the vector p-1 times").
template <SimdVec V>
[[nodiscard]] V hscan_max_decay_linear(V x, typename V::value_type decay) noexcept {
  const V vdec = V::broadcast(decay);
  for (int s = 1; s < V::lanes; ++s) {
    x = V::max(x, V::subs(V::shift_in(x, V::neg_inf), vdec));
  }
  return x;
}

namespace detail {

template <int K, SimdVec V>
[[nodiscard]] V log_scan_step(V x, std::int64_t decay) noexcept {
  if constexpr (K >= V::lanes) {
    return x;
  } else {
    using T = typename V::value_type;
    // Saturating the step constant is harmless: a candidate decayed by a
    // saturated constant lands at/below neg_inf semantics for value ranges
    // the engines permit (see dispatch width guards).
    const T d = valign::detail::clamp_to<T>(std::int64_t{K} * decay);
    const V shifted = V::template shift_in_k<K>(x, V::neg_inf);
    x = V::max(x, V::subs(shifted, V::broadcast(d)));
    return log_scan_step<K * 2>(x, decay);
  }
}

}  // namespace detail

/// Inclusive max-scan with decay, Blelloch-style doubling: lg(p) steps of
/// shift-by-2^k. Same result as the linear form; used by the ablation bench
/// to quantify the O(p) vs O(lg p) horizontal-scan trade-off.
template <SimdVec V>
[[nodiscard]] V hscan_max_decay_log(V x, typename V::value_type decay) noexcept {
  return detail::log_scan_step<1>(x, std::int64_t{decay});
}

}  // namespace valign::simd
