// 512-bit (AVX-512F/BW) vector backend.
#pragma once

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <array>
#include <cstdint>

#include "valign/simd/vec_traits.hpp"

namespace valign::simd {

/// 512-bit vector of T ∈ {int8_t, int16_t, int32_t} over AVX-512F+BW.
template <class T>
struct V512 {
  using value_type = T;
  using traits = ElemTraits<T>;
  static constexpr int lanes = 64 / int(sizeof(T));
  static constexpr int bits = 512;
  static constexpr T neg_inf = traits::neg_inf;

  __m512i raw;

  V512() : raw(_mm512_setzero_si512()) {}
  explicit V512(__m512i r) : raw(r) {}

  [[nodiscard]] static V512 zero() noexcept { return V512{_mm512_setzero_si512()}; }

  [[nodiscard]] static V512 broadcast(T s) noexcept {
    if constexpr (sizeof(T) == 1) return V512{_mm512_set1_epi8(s)};
    if constexpr (sizeof(T) == 2) return V512{_mm512_set1_epi16(s)};
    if constexpr (sizeof(T) == 4) return V512{_mm512_set1_epi32(s)};
  }

  [[nodiscard]] static V512 load(const T* p) noexcept {
    return V512{_mm512_load_si512(reinterpret_cast<const void*>(p))};
  }
  [[nodiscard]] static V512 loadu(const T* p) noexcept {
    return V512{_mm512_loadu_si512(reinterpret_cast<const void*>(p))};
  }
  void store(T* p) const noexcept {
    _mm512_store_si512(reinterpret_cast<void*>(p), raw);
  }
  void storeu(T* p) const noexcept {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), raw);
  }

  [[nodiscard]] static V512 adds(V512 a, V512 b) noexcept {
    if constexpr (sizeof(T) == 1) return V512{_mm512_adds_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V512{_mm512_adds_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V512{_mm512_add_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V512 subs(V512 a, V512 b) noexcept {
    if constexpr (sizeof(T) == 1) return V512{_mm512_subs_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V512{_mm512_subs_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V512{_mm512_sub_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V512 max(V512 a, V512 b) noexcept {
    if constexpr (sizeof(T) == 1) return V512{_mm512_max_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V512{_mm512_max_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V512{_mm512_max_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V512 min(V512 a, V512 b) noexcept {
    if constexpr (sizeof(T) == 1) return V512{_mm512_min_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V512{_mm512_min_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V512{_mm512_min_epi32(a.raw, b.raw)};
  }

  [[nodiscard]] static bool any_gt(V512 a, V512 b) noexcept {
    if constexpr (sizeof(T) == 1) return _mm512_cmpgt_epi8_mask(a.raw, b.raw) != 0;
    if constexpr (sizeof(T) == 2) return _mm512_cmpgt_epi16_mask(a.raw, b.raw) != 0;
    if constexpr (sizeof(T) == 4) return _mm512_cmpgt_epi32_mask(a.raw, b.raw) != 0;
  }

  [[nodiscard]] static bool equals(V512 a, V512 b) noexcept {
    return _mm512_cmpneq_epi64_mask(a.raw, b.raw) == 0;
  }

  /// Shift every lane toward the higher index by one; `fill` enters lane 0.
  [[nodiscard]] static V512 shift_in(V512 a, T fill) noexcept {
    if constexpr (sizeof(T) == 4) {
      // valignd pulls the fill from a broadcast in the "low" operand.
      return V512{_mm512_alignr_epi32(a.raw, _mm512_set1_epi32(fill), 15)};
    } else {
      // Per-128-lane alignr with the previous 128-bit lane as the carry.
      const __m512i prev = _mm512_alignr_epi64(a.raw, _mm512_setzero_si512(), 6);
      const __m512i r = _mm512_alignr_epi8(a.raw, prev, 16 - int(sizeof(T)));
      if constexpr (sizeof(T) == 1)
        return V512{_mm512_mask_set1_epi8(r, __mmask64{1}, fill)};
      else
        return V512{_mm512_mask_set1_epi16(r, __mmask32{1}, fill)};
    }
  }

  /// Shift by K lanes; `fill` enters lanes [0, K).
  template <int K>
  [[nodiscard]] static V512 shift_in_k(V512 a, T fill) noexcept {
    static_assert(K >= 0 && K <= lanes);
    constexpr int B = K * int(sizeof(T));
    if constexpr (K == 0) {
      return a;
    } else if constexpr (K == lanes) {
      return broadcast(fill);
    } else {
      constexpr int whole128 = B / 16;
      constexpr int rem = B % 16;
      const __m512i z = _mm512_setzero_si512();
      __m512i whole;
      if constexpr (whole128 == 0) {
        whole = a.raw;
      } else {
        whole = _mm512_alignr_epi64(a.raw, z, 8 - 2 * whole128);
      }
      __m512i res;
      if constexpr (rem == 0) {
        res = whole;
      } else {
        __m512i carry;
        if constexpr (whole128 + 1 >= 4) {
          carry = z;
        } else {
          carry = _mm512_alignr_epi64(a.raw, z, 8 - 2 * (whole128 + 1));
        }
        res = _mm512_alignr_epi8(whole, carry, 16 - rem);
      }
      if constexpr (sizeof(T) == 1) {
        constexpr __mmask64 m = (K >= 64) ? ~__mmask64{0} : ((__mmask64{1} << K) - 1);
        return V512{_mm512_mask_set1_epi8(res, m, fill)};
      } else if constexpr (sizeof(T) == 2) {
        constexpr auto m = static_cast<__mmask32>((std::uint64_t{1} << K) - 1);
        return V512{_mm512_mask_set1_epi16(res, m, fill)};
      } else {
        constexpr auto m = static_cast<__mmask16>((std::uint64_t{1} << K) - 1);
        return V512{_mm512_mask_set1_epi32(res, m, fill)};
      }
    }
  }

  [[nodiscard]] T lane(int i) const noexcept {
    alignas(64) std::array<T, lanes> tmp;
    store(tmp.data());
    return tmp[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] T first() const noexcept { return lane(0); }
  [[nodiscard]] T last() const noexcept { return lane(lanes - 1); }

  [[nodiscard]] T hmax() const noexcept {
    alignas(64) std::array<T, lanes> tmp;
    store(tmp.data());
    T m = tmp[0];
    for (int i = 1; i < lanes; ++i) m = tmp[i] > m ? tmp[i] : m;
    return m;
  }
};

static_assert(SimdVec<V512<std::int8_t>>);
static_assert(SimdVec<V512<std::int16_t>>);
static_assert(SimdVec<V512<std::int32_t>>);

}  // namespace valign::simd

#endif  // __AVX512F__ && __AVX512BW__
