// Umbrella header for the SIMD substrate.
#pragma once

#include "valign/simd/arch.hpp"
#include "valign/simd/scan_ops.hpp"
#include "valign/simd/vec_emul.hpp"
#include "valign/simd/vec_traits.hpp"

#if defined(__SSE4_1__)
#include "valign/simd/vec128.hpp"
#endif
#if defined(__AVX2__)
#include "valign/simd/vec256.hpp"
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
#include "valign/simd/vec512.hpp"
#endif

namespace valign::simd {

/// Compile-time map from (Isa, element type) to the backend vector type.
/// Only defined for ISAs compiled into this binary.
template <Isa I, class T>
struct NativeVec;

template <class T>
struct NativeVec<Isa::Emul, T> {
  // 16 lanes by default mirrors the paper's widest measured configuration.
  using type = VEmul<T, 16>;
};

#if defined(__SSE4_1__)
template <class T>
struct NativeVec<Isa::SSE41, T> {
  using type = V128<T>;
};
#endif
#if defined(__AVX2__)
template <class T>
struct NativeVec<Isa::AVX2, T> {
  using type = V256<T>;
};
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
template <class T>
struct NativeVec<Isa::AVX512, T> {
  using type = V512<T>;
};
#endif

template <Isa I, class T>
using native_vec_t = typename NativeVec<I, T>::type;

}  // namespace valign::simd
