// Runtime CPU feature detection used to gate ISA dispatch.
#pragma once

#include "valign/common.hpp"

namespace valign::simd {

/// Feature bits of the running CPU, queried once at startup.
struct CpuFeatures {
  bool sse41 = false;
  bool avx2 = false;
  bool avx512bw = false;  ///< AVX-512 F+BW+VL (what the 512-bit backend needs).
};

/// Detected features of the executing CPU (cached after first call).
[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

/// True when `isa` can execute on this CPU *and* was compiled in.
[[nodiscard]] bool isa_available(Isa isa) noexcept;

/// Widest available ISA (resolution of Isa::Auto).
[[nodiscard]] Isa best_isa() noexcept;

/// Native lane count for `isa` at the given element width in bits,
/// e.g. lanes(AVX2, 16) == 16. Emul reports 0 (caller chooses).
[[nodiscard]] int native_lanes(Isa isa, int bits) noexcept;

}  // namespace valign::simd
