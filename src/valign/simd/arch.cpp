#include "valign/simd/arch.hpp"

namespace valign::simd {

namespace {

CpuFeatures detect() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse41 = __builtin_cpu_supports("sse4.1");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512bw = __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl");
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures f = detect();
  return f;
}

bool isa_available(Isa isa) noexcept {
  const CpuFeatures& f = cpu_features();
  switch (isa) {
    case Isa::Emul:
      return true;
    case Isa::SSE41:
#if defined(__SSE4_1__)
      return f.sse41;
#else
      return false;
#endif
    case Isa::AVX2:
#if defined(__AVX2__)
      return f.avx2;
#else
      return false;
#endif
    case Isa::AVX512:
#if defined(__AVX512BW__)
      return f.avx512bw;
#else
      return false;
#endif
    case Isa::Auto:
      return true;
  }
  return false;
}

Isa best_isa() noexcept {
  if (isa_available(Isa::AVX512)) return Isa::AVX512;
  if (isa_available(Isa::AVX2)) return Isa::AVX2;
  if (isa_available(Isa::SSE41)) return Isa::SSE41;
  return Isa::Emul;
}

int native_lanes(Isa isa, int bits) noexcept {
  if (bits != 8 && bits != 16 && bits != 32) return 0;
  switch (isa) {
    case Isa::SSE41: return 128 / bits;
    case Isa::AVX2: return 256 / bits;
    case Isa::AVX512: return 512 / bits;
    default: return 0;
  }
}

}  // namespace valign::simd
