// 256-bit (AVX2) vector backend.
#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

#include <array>
#include <cstdint>

#include "valign/simd/vec_traits.hpp"

namespace valign::simd {

/// 256-bit vector of T ∈ {int8_t, int16_t, int32_t} over AVX2.
template <class T>
struct V256 {
  using value_type = T;
  using traits = ElemTraits<T>;
  static constexpr int lanes = 32 / int(sizeof(T));
  static constexpr int bits = 256;
  static constexpr T neg_inf = traits::neg_inf;

  __m256i raw;

  V256() : raw(_mm256_setzero_si256()) {}
  explicit V256(__m256i r) : raw(r) {}

  [[nodiscard]] static V256 zero() noexcept { return V256{_mm256_setzero_si256()}; }

  [[nodiscard]] static V256 broadcast(T s) noexcept {
    if constexpr (sizeof(T) == 1) return V256{_mm256_set1_epi8(s)};
    if constexpr (sizeof(T) == 2) return V256{_mm256_set1_epi16(s)};
    if constexpr (sizeof(T) == 4) return V256{_mm256_set1_epi32(s)};
  }

  [[nodiscard]] static V256 load(const T* p) noexcept {
    return V256{_mm256_load_si256(reinterpret_cast<const __m256i*>(p))};
  }
  [[nodiscard]] static V256 loadu(const T* p) noexcept {
    return V256{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(T* p) const noexcept {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), raw);
  }
  void storeu(T* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), raw);
  }

  [[nodiscard]] static V256 adds(V256 a, V256 b) noexcept {
    if constexpr (sizeof(T) == 1) return V256{_mm256_adds_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V256{_mm256_adds_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V256{_mm256_add_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V256 subs(V256 a, V256 b) noexcept {
    if constexpr (sizeof(T) == 1) return V256{_mm256_subs_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V256{_mm256_subs_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V256{_mm256_sub_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V256 max(V256 a, V256 b) noexcept {
    if constexpr (sizeof(T) == 1) return V256{_mm256_max_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V256{_mm256_max_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V256{_mm256_max_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V256 min(V256 a, V256 b) noexcept {
    if constexpr (sizeof(T) == 1) return V256{_mm256_min_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V256{_mm256_min_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V256{_mm256_min_epi32(a.raw, b.raw)};
  }

  [[nodiscard]] static bool any_gt(V256 a, V256 b) noexcept {
    __m256i m;
    if constexpr (sizeof(T) == 1) m = _mm256_cmpgt_epi8(a.raw, b.raw);
    if constexpr (sizeof(T) == 2) m = _mm256_cmpgt_epi16(a.raw, b.raw);
    if constexpr (sizeof(T) == 4) m = _mm256_cmpgt_epi32(a.raw, b.raw);
    return _mm256_movemask_epi8(m) != 0;
  }

  [[nodiscard]] static bool equals(V256 a, V256 b) noexcept {
    const __m256i m = _mm256_cmpeq_epi8(a.raw, b.raw);
    return _mm256_movemask_epi8(m) == -1;
  }

  /// Shift every lane toward the higher index by one; `fill` enters lane 0.
  ///
  /// AVX2 byte shifts are per-128-bit-lane, so the low word of the upper half
  /// must be carried across via permute2x128 + alignr (the standard idiom).
  [[nodiscard]] static V256 shift_in(V256 a, T fill) noexcept {
    // t = [ 0 (low 128) , a.low (high 128) ]
    const __m256i t = _mm256_permute2x128_si256(a.raw, a.raw, 0x08);
    __m256i r = _mm256_alignr_epi8(a.raw, t, 16 - int(sizeof(T)));
    if constexpr (sizeof(T) == 1) r = _mm256_insert_epi8(r, fill, 0);
    if constexpr (sizeof(T) == 2) r = _mm256_insert_epi16(r, fill, 0);
    if constexpr (sizeof(T) == 4) r = _mm256_insert_epi32(r, fill, 0);
    return V256{r};
  }

  /// Shift by K lanes; `fill` enters lanes [0, K).
  template <int K>
  [[nodiscard]] static V256 shift_in_k(V256 a, T fill) noexcept {
    static_assert(K >= 0 && K <= lanes);
    constexpr int B = K * int(sizeof(T));
    if constexpr (K == 0) {
      return a;
    } else if constexpr (K == lanes) {
      return broadcast(fill);
    } else {
      __m256i shifted;
      const __m256i t = _mm256_permute2x128_si256(a.raw, a.raw, 0x08);
      if constexpr (B < 16) {
        shifted = _mm256_alignr_epi8(a.raw, t, 16 - B);
      } else if constexpr (B == 16) {
        shifted = t;
      } else {
        // Low 128 of t is zero, so a per-lane shift finishes the job.
        shifted = _mm256_slli_si256(t, B - 16);
      }
      return V256{_mm256_blendv_epi8(shifted, broadcast(fill).raw,
                                     low_bytes_mask<B>())};
    }
  }

  [[nodiscard]] T lane(int i) const noexcept {
    alignas(32) std::array<T, lanes> tmp;
    store(tmp.data());
    return tmp[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] T first() const noexcept { return lane(0); }
  [[nodiscard]] T last() const noexcept { return lane(lanes - 1); }

  [[nodiscard]] T hmax() const noexcept {
    alignas(32) std::array<T, lanes> tmp;
    store(tmp.data());
    T m = tmp[0];
    for (int i = 1; i < lanes; ++i) m = tmp[i] > m ? tmp[i] : m;
    return m;
  }

 private:
  template <int BYTES>
  [[nodiscard]] static __m256i low_bytes_mask() noexcept {
    static const __m256i m = [] {
      alignas(32) std::array<std::int8_t, 32> a{};
      for (int i = 0; i < BYTES; ++i) a[static_cast<std::size_t>(i)] = -1;
      return _mm256_load_si256(reinterpret_cast<const __m256i*>(a.data()));
    }();
    return m;
  }
};

static_assert(SimdVec<V256<std::int8_t>>);
static_assert(SimdVec<V256<std::int16_t>>);
static_assert(SimdVec<V256<std::int32_t>>);

}  // namespace valign::simd

#endif  // __AVX2__
