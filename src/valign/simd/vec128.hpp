// 128-bit (SSE4.1) vector backend.
#pragma once

#if defined(__SSE4_1__)

#include <smmintrin.h>

#include <array>
#include <cstdint>

#include "valign/simd/vec_traits.hpp"

namespace valign::simd {

/// 128-bit vector of T ∈ {int8_t, int16_t, int32_t} over SSE4.1.
template <class T>
struct V128 {
  using value_type = T;
  using traits = ElemTraits<T>;
  static constexpr int lanes = 16 / int(sizeof(T));
  static constexpr int bits = 128;
  static constexpr T neg_inf = traits::neg_inf;

  __m128i raw;

  V128() : raw(_mm_setzero_si128()) {}
  explicit V128(__m128i r) : raw(r) {}

  [[nodiscard]] static V128 zero() noexcept { return V128{_mm_setzero_si128()}; }

  [[nodiscard]] static V128 broadcast(T s) noexcept {
    if constexpr (sizeof(T) == 1) return V128{_mm_set1_epi8(s)};
    if constexpr (sizeof(T) == 2) return V128{_mm_set1_epi16(s)};
    if constexpr (sizeof(T) == 4) return V128{_mm_set1_epi32(s)};
  }

  [[nodiscard]] static V128 load(const T* p) noexcept {
    return V128{_mm_load_si128(reinterpret_cast<const __m128i*>(p))};
  }
  [[nodiscard]] static V128 loadu(const T* p) noexcept {
    return V128{_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(T* p) const noexcept {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), raw);
  }
  void storeu(T* p) const noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), raw);
  }

  [[nodiscard]] static V128 adds(V128 a, V128 b) noexcept {
    if constexpr (sizeof(T) == 1) return V128{_mm_adds_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V128{_mm_adds_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V128{_mm_add_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V128 subs(V128 a, V128 b) noexcept {
    if constexpr (sizeof(T) == 1) return V128{_mm_subs_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V128{_mm_subs_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V128{_mm_sub_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V128 max(V128 a, V128 b) noexcept {
    if constexpr (sizeof(T) == 1) return V128{_mm_max_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V128{_mm_max_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V128{_mm_max_epi32(a.raw, b.raw)};
  }
  [[nodiscard]] static V128 min(V128 a, V128 b) noexcept {
    if constexpr (sizeof(T) == 1) return V128{_mm_min_epi8(a.raw, b.raw)};
    if constexpr (sizeof(T) == 2) return V128{_mm_min_epi16(a.raw, b.raw)};
    if constexpr (sizeof(T) == 4) return V128{_mm_min_epi32(a.raw, b.raw)};
  }

  [[nodiscard]] static bool any_gt(V128 a, V128 b) noexcept {
    __m128i m;
    if constexpr (sizeof(T) == 1) m = _mm_cmpgt_epi8(a.raw, b.raw);
    if constexpr (sizeof(T) == 2) m = _mm_cmpgt_epi16(a.raw, b.raw);
    if constexpr (sizeof(T) == 4) m = _mm_cmpgt_epi32(a.raw, b.raw);
    return _mm_movemask_epi8(m) != 0;
  }

  [[nodiscard]] static bool equals(V128 a, V128 b) noexcept {
    const __m128i m = _mm_cmpeq_epi8(a.raw, b.raw);
    return _mm_movemask_epi8(m) == 0xFFFF;
  }

  /// Shift every lane toward the higher index by one; `fill` enters lane 0.
  [[nodiscard]] static V128 shift_in(V128 a, T fill) noexcept {
    if constexpr (sizeof(T) == 1) {
      return V128{_mm_insert_epi8(_mm_slli_si128(a.raw, 1), fill, 0)};
    }
    if constexpr (sizeof(T) == 2) {
      return V128{_mm_insert_epi16(_mm_slli_si128(a.raw, 2), fill, 0)};
    }
    if constexpr (sizeof(T) == 4) {
      return V128{_mm_insert_epi32(_mm_slli_si128(a.raw, 4), fill, 0)};
    }
  }

  /// Shift by K lanes; `fill` enters lanes [0, K).
  template <int K>
  [[nodiscard]] static V128 shift_in_k(V128 a, T fill) noexcept {
    static_assert(K >= 0 && K <= lanes);
    if constexpr (K == 0) return a;
    else if constexpr (K == lanes) return broadcast(fill);
    else {
      const __m128i shifted = _mm_slli_si128(a.raw, K * int(sizeof(T)));
      return V128{_mm_blendv_epi8(shifted, broadcast(fill).raw,
                                  low_bytes_mask<K * int(sizeof(T))>())};
    }
  }

  [[nodiscard]] T lane(int i) const noexcept {
    alignas(16) std::array<T, lanes> tmp;
    store(tmp.data());
    return tmp[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] T first() const noexcept { return lane(0); }
  [[nodiscard]] T last() const noexcept { return lane(lanes - 1); }

  [[nodiscard]] T hmax() const noexcept {
    alignas(16) std::array<T, lanes> tmp;
    store(tmp.data());
    T m = tmp[0];
    for (int i = 1; i < lanes; ++i) m = tmp[i] > m ? tmp[i] : m;
    return m;
  }

 private:
  template <int BYTES>
  [[nodiscard]] static __m128i low_bytes_mask() noexcept {
    static const __m128i m = [] {
      alignas(16) std::array<std::int8_t, 16> a{};
      for (int i = 0; i < BYTES; ++i) a[static_cast<std::size_t>(i)] = -1;
      return _mm_load_si128(reinterpret_cast<const __m128i*>(a.data()));
    }();
    return m;
  }
};

static_assert(SimdVec<V128<std::int8_t>>);
static_assert(SimdVec<V128<std::int16_t>>);
static_assert(SimdVec<V128<std::int32_t>>);

}  // namespace valign::simd

#endif  // __SSE4_1__
