// Portable emulated vector backend.
//
// VEmul<T, N> implements the full backend contract with plain loops. It is
// the semantic reference every intrinsic backend is tested against, and the
// way to model lane counts beyond the host's native width (e.g. the 32- and
// 64-lane "future hardware" the paper speculates about, §VI-C).
#pragma once

#include <algorithm>
#include <array>
#include <cstring>

#include "valign/simd/vec_traits.hpp"

namespace valign::simd {

template <class T, int N>
struct VEmul {
  static_assert(N > 0 && (N & (N - 1)) == 0, "lane count must be a power of two");

  using value_type = T;
  using traits = ElemTraits<T>;
  static constexpr int lanes = N;
  static constexpr int bits = N * int(sizeof(T)) * 8;
  static constexpr T neg_inf = traits::neg_inf;

  std::array<T, N> v{};

  [[nodiscard]] static VEmul zero() noexcept { return VEmul{}; }

  [[nodiscard]] static VEmul broadcast(T s) noexcept {
    VEmul r;
    r.v.fill(s);
    return r;
  }

  [[nodiscard]] static VEmul load(const T* p) noexcept {
    VEmul r;
    std::memcpy(r.v.data(), p, sizeof(r.v));
    return r;
  }
  [[nodiscard]] static VEmul loadu(const T* p) noexcept { return load(p); }

  void store(T* p) const noexcept { std::memcpy(p, v.data(), sizeof(v)); }
  void storeu(T* p) const noexcept { store(p); }

  [[nodiscard]] static VEmul adds(VEmul a, VEmul b) noexcept {
    VEmul r;
    for (int i = 0; i < N; ++i) r.v[i] = traits::adds(a.v[i], b.v[i]);
    return r;
  }

  [[nodiscard]] static VEmul subs(VEmul a, VEmul b) noexcept {
    VEmul r;
    for (int i = 0; i < N; ++i) r.v[i] = traits::subs(a.v[i], b.v[i]);
    return r;
  }

  [[nodiscard]] static VEmul max(VEmul a, VEmul b) noexcept {
    VEmul r;
    for (int i = 0; i < N; ++i) r.v[i] = std::max(a.v[i], b.v[i]);
    return r;
  }

  [[nodiscard]] static VEmul min(VEmul a, VEmul b) noexcept {
    VEmul r;
    for (int i = 0; i < N; ++i) r.v[i] = std::min(a.v[i], b.v[i]);
    return r;
  }

  /// True when a[i] > b[i] in any lane.
  [[nodiscard]] static bool any_gt(VEmul a, VEmul b) noexcept {
    for (int i = 0; i < N; ++i)
      if (a.v[i] > b.v[i]) return true;
    return false;
  }

  /// True when every lane is equal.
  [[nodiscard]] static bool equals(VEmul a, VEmul b) noexcept { return a.v == b.v; }

  /// Shift every lane toward the higher index by one; `fill` enters lane 0.
  /// (Matches _mm_slli_si128 orientation on little-endian x86.)
  [[nodiscard]] static VEmul shift_in(VEmul a, T fill) noexcept {
    VEmul r;
    r.v[0] = fill;
    for (int i = 1; i < N; ++i) r.v[i] = a.v[i - 1];
    return r;
  }

  /// Shift by K lanes; `fill` enters lanes [0, K).
  template <int K>
  [[nodiscard]] static VEmul shift_in_k(VEmul a, T fill) noexcept {
    static_assert(K >= 0 && K <= N);
    VEmul r;
    for (int i = 0; i < K; ++i) r.v[i] = fill;
    for (int i = K; i < N; ++i) r.v[i] = a.v[i - K];
    return r;
  }

  [[nodiscard]] T lane(int i) const noexcept { return v[static_cast<std::size_t>(i)]; }
  [[nodiscard]] T first() const noexcept { return v[0]; }
  [[nodiscard]] T last() const noexcept { return v[N - 1]; }

  [[nodiscard]] T hmax() const noexcept { return *std::max_element(v.begin(), v.end()); }
};

static_assert(SimdVec<VEmul<std::int8_t, 16>>);
static_assert(SimdVec<VEmul<std::int16_t, 8>>);
static_assert(SimdVec<VEmul<std::int32_t, 4>>);

}  // namespace valign::simd
