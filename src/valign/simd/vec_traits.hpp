// Element-level semantics shared by every vector backend.
//
// valign's DP kernels use *saturating* arithmetic for 8/16-bit elements (the
// x86 native behaviour) and plain wrapping arithmetic for 32-bit elements
// (x86 has no saturating 32-bit adds). Engines using 32-bit elements keep all
// values within [lowest()/2, max()/2] so wrapping never occurs in practice;
// the dispatch layer enforces this (see core/dispatch.hpp).
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace valign::simd {

/// Per-element-type constants and reference (scalar) semantics.
template <class T>
struct ElemTraits {
  static_assert(std::is_same_v<T, std::int8_t> || std::is_same_v<T, std::int16_t> ||
                    std::is_same_v<T, std::int32_t>,
                "valign supports int8_t, int16_t and int32_t DP elements");

  static constexpr bool saturating = sizeof(T) < 4;

  /// The "minus infinity" sentinel for DP boundaries. For saturating types the
  /// type minimum is itself absorbing under `adds`. For 32-bit (wrapping adds)
  /// we use min/4 so that even neg_inf + neg_inf plus bounded downward drift
  /// (at most gap costs per column) stays strictly above the wrap point.
  static constexpr T neg_inf =
      saturating ? std::numeric_limits<T>::min()
                 : static_cast<T>(std::numeric_limits<T>::min() / 4);

  static constexpr T max_value = std::numeric_limits<T>::max();
  static constexpr T min_value = std::numeric_limits<T>::min();

  /// Reference semantics of the backend `adds` operation.
  [[nodiscard]] static constexpr T adds(T a, T b) noexcept {
    if constexpr (saturating) {
      const std::int32_t s = std::int32_t{a} + std::int32_t{b};
      if (s > max_value) return max_value;
      if (s < min_value) return min_value;
      return static_cast<T>(s);
    } else {
      return static_cast<T>(static_cast<std::uint32_t>(a) +
                            static_cast<std::uint32_t>(b));
    }
  }

  /// Reference semantics of the backend `subs` operation.
  [[nodiscard]] static constexpr T subs(T a, T b) noexcept {
    if constexpr (saturating) {
      const std::int32_t s = std::int32_t{a} - std::int32_t{b};
      if (s > max_value) return max_value;
      if (s < min_value) return min_value;
      return static_cast<T>(s);
    } else {
      return static_cast<T>(static_cast<std::uint32_t>(a) -
                            static_cast<std::uint32_t>(b));
    }
  }
};

/// Compile-time shape/behaviour contract for the alignment kernels.
/// Satisfied by VEmul, V128, V256, V512 and instrument::CountingVec.
template <class V>
concept SimdVec = requires(V v, typename V::value_type s,
                           const typename V::value_type* cp,
                           typename V::value_type* p) {
  typename V::value_type;
  { V::lanes } -> std::convertible_to<int>;
  { V::zero() } -> std::same_as<V>;
  { V::broadcast(s) } -> std::same_as<V>;
  { V::load(cp) } -> std::same_as<V>;
  { V::loadu(cp) } -> std::same_as<V>;
  { v.store(p) };
  { v.storeu(p) };
  { V::adds(v, v) } -> std::same_as<V>;
  { V::subs(v, v) } -> std::same_as<V>;
  { V::max(v, v) } -> std::same_as<V>;
  { V::min(v, v) } -> std::same_as<V>;
  { V::any_gt(v, v) } -> std::same_as<bool>;
  { V::equals(v, v) } -> std::same_as<bool>;
  { V::shift_in(v, s) } -> std::same_as<V>;
  { v.lane(0) } -> std::same_as<typename V::value_type>;
  { v.hmax() } -> std::same_as<typename V::value_type>;
};

}  // namespace valign::simd
