#include "valign/stats/karlin.hpp"

#include <cmath>
#include <numeric>
#include <vector>

namespace valign::stats {

namespace {

// Robinson & Robinson (1991) amino-acid frequencies, code order
// A R N D C Q E G H I L K M F P S T W Y V.
constexpr std::array<double, 20> kRobinson = {
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
    0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
    0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441};

constexpr std::array<double, 4> kDnaUniform = {0.25, 0.25, 0.25, 0.25};

/// Score distribution of a random aligned pair: prob[s - lo] = P(score == s).
struct ScoreDist {
  int lo = 0;
  int hi = 0;
  std::vector<double> prob;  // size hi - lo + 1
};

ScoreDist score_distribution(const ScoreMatrix& matrix, std::span<const double> freqs) {
  const int n = std::min<int>(matrix.size(), static_cast<int>(freqs.size()));
  int lo = 0, hi = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      lo = std::min<int>(lo, matrix.score(a, b));
      hi = std::max<int>(hi, matrix.score(a, b));
    }
  }
  ScoreDist d;
  d.lo = lo;
  d.hi = hi;
  d.prob.assign(static_cast<std::size_t>(hi - lo + 1), 0.0);
  double total = 0.0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      const double p = freqs[static_cast<std::size_t>(a)] *
                       freqs[static_cast<std::size_t>(b)];
      d.prob[static_cast<std::size_t>(matrix.score(a, b) - lo)] += p;
      total += p;
    }
  }
  // Renormalize (the background may not cover the full alphabet).
  for (double& p : d.prob) p /= total;
  return d;
}

double expected_score(const ScoreDist& d) {
  double ev = 0.0;
  for (std::size_t i = 0; i < d.prob.size(); ++i) {
    ev += d.prob[i] * static_cast<double>(d.lo + static_cast<int>(i));
  }
  return ev;
}

}  // namespace

std::span<const double> robinson_frequencies() { return kRobinson; }
std::span<const double> dna_frequencies() { return kDnaUniform; }

double ungapped_lambda(const ScoreMatrix& matrix, std::span<const double> freqs) {
  const ScoreDist d = score_distribution(matrix, freqs);
  if (expected_score(d) >= 0.0) {
    throw Error("ungapped_lambda: expected pair score must be negative");
  }
  if (d.hi <= 0) {
    throw Error("ungapped_lambda: some pair must score positively");
  }
  auto f = [&](double lambda) {
    double s = 0.0;
    for (std::size_t i = 0; i < d.prob.size(); ++i) {
      s += d.prob[i] * std::exp(lambda * static_cast<double>(d.lo + static_cast<int>(i)));
    }
    return s - 1.0;
  };
  // f(0) = 0 with f'(0) < 0; bracket the positive root by doubling.
  double hi = 0.5;
  while (f(hi) < 0.0) {
    hi *= 2.0;
    if (hi > 1e4) throw Error("ungapped_lambda: failed to bracket the root");
  }
  double lo = hi / 2.0;
  while (f(lo) > 0.0) lo /= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) > 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double relative_entropy(const ScoreMatrix& matrix, std::span<const double> freqs,
                        double lambda) {
  const ScoreDist d = score_distribution(matrix, freqs);
  double h = 0.0;
  for (std::size_t i = 0; i < d.prob.size(); ++i) {
    const double s = static_cast<double>(d.lo + static_cast<int>(i));
    h += lambda * s * d.prob[i] * std::exp(lambda * s);
  }
  return h;
}

double ungapped_k(const ScoreMatrix& matrix, std::span<const double> freqs,
                  double lambda, int iterations) {
  const ScoreDist base = score_distribution(matrix, freqs);
  const double h = relative_entropy(matrix, freqs, lambda);

  // Lattice spacing: gcd of all scores with nonzero probability.
  int d = 0;
  for (std::size_t i = 0; i < base.prob.size(); ++i) {
    if (base.prob[i] > 0.0) {
      const int s = base.lo + static_cast<int>(i);
      d = std::gcd(d, std::abs(s));
    }
  }
  if (d == 0) d = 1;

  // sigma = sum_{j>=1} (1/j) [ sum_{s<0} P_j(s) e^{lambda s} + sum_{s>=0} P_j(s) ]
  // where P_j is the distribution of a sum of j i.i.d. pair scores.
  double sigma = 0.0;
  std::vector<double> pj = base.prob;  // P_1
  int lo_j = base.lo;
  for (int j = 1; j <= iterations; ++j) {
    double inner = 0.0;
    for (std::size_t i = 0; i < pj.size(); ++i) {
      const double s = static_cast<double>(lo_j + static_cast<int>(i));
      inner += (s < 0.0) ? pj[i] * std::exp(lambda * s) : pj[i];
    }
    sigma += inner / static_cast<double>(j);
    if (j == iterations) break;
    // Convolve with the base distribution for P_{j+1}.
    std::vector<double> next(pj.size() + base.prob.size() - 1, 0.0);
    for (std::size_t i = 0; i < pj.size(); ++i) {
      if (pj[i] == 0.0) continue;
      for (std::size_t k = 0; k < base.prob.size(); ++k) {
        next[i + k] += pj[i] * base.prob[k];
      }
    }
    pj = std::move(next);
    lo_j += base.lo;
  }

  return static_cast<double>(d) * lambda * std::exp(-2.0 * sigma) /
         (h * (1.0 - std::exp(-lambda * static_cast<double>(d))));
}

KarlinParams ungapped_params(const ScoreMatrix& matrix) {
  const std::span<const double> freqs =
      (matrix.alphabet() == Alphabet::dna()) ? dna_frequencies()
                                             : robinson_frequencies();
  KarlinParams p;
  p.lambda = ungapped_lambda(matrix, freqs);
  p.h = relative_entropy(matrix, freqs, p.lambda);
  p.k = ungapped_k(matrix, freqs, p.lambda);
  p.gapped = false;
  return p;
}

KarlinParams lookup_params(const ScoreMatrix& matrix, GapPenalty gap) {
  // Published NCBI gapped parameters for the default scheme the paper uses.
  if (matrix.name() == "blosum62" && gap.open == 11 && gap.extend == 1) {
    return KarlinParams{0.267, 0.041, 0.140, true};
  }
  return ungapped_params(matrix);
}

double bit_score(const KarlinParams& p, std::int64_t raw_score) {
  return (p.lambda * static_cast<double>(raw_score) - std::log(p.k)) / std::log(2.0);
}

double evalue(const KarlinParams& p, std::int64_t raw_score, std::size_t query_len,
              std::uint64_t db_residues) {
  return static_cast<double>(query_len) * static_cast<double>(db_residues) *
         std::exp2(-bit_score(p, raw_score));
}

}  // namespace valign::stats
