// Karlin-Altschul alignment statistics: lambda, K, H, bit scores, E-values.
//
// For an ungapped local alignment with substitution scores s(a,b) and
// residue background frequencies p(a), the score of the best alignment
// between random sequences follows a Gumbel law with parameters computable
// from the scoring system alone (Karlin & Altschul, PNAS 1990):
//
//   lambda : unique positive root of  sum_ab p(a) p(b) e^{lambda s(a,b)} = 1
//   K      : the finite-size correction (computed by the series over sums of
//            i.i.d. score draws, the same construction NCBI BLAST uses)
//   H      : relative entropy of the aligned-pair distribution (bits of
//            information per aligned residue pair)
//
// From these:  bit score S' = (lambda*S - ln K) / ln 2,
//              E-value     = m*n*2^{-S'}  (search space m x n).
//
// These ungapped parameters are exact for the shipped matrices and validated
// against the published NCBI values in the tests. For *gapped* alignments the
// Gumbel form still holds empirically but lambda/K must be estimated by
// simulation; the published gapped parameters for the NCBI default scoring
// scheme (BLOSUM62, gap 11/1) are provided, and other schemes fall back to
// the (conservative) ungapped parameters with `gapped == false`.
#pragma once

#include <array>
#include <span>

#include "valign/matrices/matrix.hpp"

namespace valign::stats {

/// Gumbel parameters of a scoring system.
struct KarlinParams {
  double lambda = 0.0;  ///< Scale (nats per score unit).
  double k = 0.0;       ///< Finite-size correction.
  double h = 0.0;       ///< Relative entropy (nats per aligned pair).
  bool gapped = false;  ///< True when the parameters model gapped alignment.
};

/// Robinson & Robinson (1991) background frequencies for the 20 standard
/// amino acids in code order A R N D C Q E G H I L K M F P S T W Y V —
/// the background BLAST uses.
[[nodiscard]] std::span<const double> robinson_frequencies();

/// Uniform background for A/C/G/T.
[[nodiscard]] std::span<const double> dna_frequencies();

/// Solve for lambda. `freqs` must cover the residue codes the matrix scores;
/// codes beyond freqs.size() are ignored (wildcards/stops are excluded from
/// the background). Throws valign::Error if the expected score is
/// non-negative (no Gumbel regime; e.g. a match-only matrix).
[[nodiscard]] double ungapped_lambda(const ScoreMatrix& matrix,
                                     std::span<const double> freqs);

/// Relative entropy H in nats per aligned pair at the given lambda.
[[nodiscard]] double relative_entropy(const ScoreMatrix& matrix,
                                      std::span<const double> freqs, double lambda);

/// The Karlin-Altschul K parameter (series over i.i.d. score-sum
/// distributions, truncated at `iterations` terms).
[[nodiscard]] double ungapped_k(const ScoreMatrix& matrix,
                                std::span<const double> freqs, double lambda,
                                int iterations = 60);

/// Full ungapped parameter set for a protein matrix under the Robinson
/// background (or DNA matrix under uniform background, detected by alphabet).
[[nodiscard]] KarlinParams ungapped_params(const ScoreMatrix& matrix);

/// Best-available parameters for a scoring scheme: published gapped values
/// when we have them (BLOSUM62 with gaps 11/1), otherwise the computed
/// ungapped parameters (conservative for gapped searches).
[[nodiscard]] KarlinParams lookup_params(const ScoreMatrix& matrix, GapPenalty gap);

/// Normalized bit score for a raw alignment score.
[[nodiscard]] double bit_score(const KarlinParams& p, std::int64_t raw_score);

/// Expected number of chance hits at `raw_score` or better when searching a
/// query of length `query_len` against a database of `db_residues` total
/// residues.
[[nodiscard]] double evalue(const KarlinParams& p, std::int64_t raw_score,
                            std::size_t query_len, std::uint64_t db_residues);

}  // namespace valign::stats
