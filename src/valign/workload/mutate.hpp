// Homolog simulation: derive related sequences by point mutation and indels.
//
// Real protein datasets contain families of homologous sequences; the number
// of lazy-F corrections Striped performs depends on how alignments score, so
// the synthetic datasets seed a fraction of sequences from earlier ones
// through this mutation model instead of drawing everything independently.
#pragma once

#include <random>

#include "valign/io/sequence.hpp"
#include "valign/workload/distributions.hpp"

namespace valign::workload {

/// Mutation-model parameters.
struct MutationModel {
  double substitution_rate = 0.30;  ///< Per-residue substitution probability.
  double indel_rate = 0.03;         ///< Per-position gap open probability.
  double indel_extend = 0.5;        ///< Geometric continuation of a gap.
};

/// Returns a mutated copy of `parent` named `name`. Deterministic in `rng`.
[[nodiscard]] Sequence mutate(const Sequence& parent, const MutationModel& model,
                              const ResidueModel& residues, std::mt19937_64& rng,
                              std::string name);

}  // namespace valign::workload
