// Deterministic synthetic dataset generation (stand-in for RefSeq/UniProt).
#pragma once

#include <cstdint>

#include "valign/io/sequence.hpp"
#include "valign/workload/distributions.hpp"
#include "valign/workload/mutate.hpp"

namespace valign::workload {

/// Configuration for a synthetic protein/DNA dataset.
struct GeneratorConfig {
  LengthModel lengths = LengthModel::bacteria_protein();
  /// Fraction of sequences derived from an earlier sequence via the mutation
  /// model (simulated homologous families); the rest are i.i.d. background.
  double homolog_fraction = 0.3;
  MutationModel mutation{};
  std::uint64_t seed = 1;
  std::string name_prefix = "seq";
  bool dna = false;  ///< false = protein alphabet, true = DNA alphabet.
};

/// Generate `count` sequences. Deterministic in config.seed.
[[nodiscard]] Dataset generate(std::size_t count, const GeneratorConfig& cfg);

/// The paper's "bacteria 2K" stand-in: 2,000 protein sequences, average
/// length ~314, longest clamped at 3,206 (§V).
[[nodiscard]] Dataset bacteria_2k(std::uint64_t seed = 1, std::size_t count = 2000);

/// UniProt-like database stand-in; `count` scales the 547,964-sequence
/// release down to something benchable (lengths keep the Fig. 2d shape).
[[nodiscard]] Dataset uniprot_like(std::size_t count, std::uint64_t seed = 2);

/// Small representative protein set for the Table I all-to-all comparison.
[[nodiscard]] Dataset small_representative(std::size_t count = 64,
                                           std::uint64_t seed = 3);

}  // namespace valign::workload
