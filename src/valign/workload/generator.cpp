#include "valign/workload/generator.hpp"

namespace valign::workload {

Dataset generate(std::size_t count, const GeneratorConfig& cfg) {
  const Alphabet& alpha = cfg.dna ? Alphabet::dna() : Alphabet::protein();
  const ResidueModel& residues = cfg.dna ? ResidueModel::dna() : ResidueModel::protein();
  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);

  Dataset ds(alpha);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = cfg.name_prefix + "_" + std::to_string(i);
    if (i > 0 && u(rng) < cfg.homolog_fraction) {
      std::uniform_int_distribution<std::size_t> pick(0, i - 1);
      ds.add(mutate(ds[pick(rng)], cfg.mutation, residues, rng, std::move(name)));
      continue;
    }
    const std::size_t len = cfg.lengths.sample(rng);
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes) c = residues.sample(rng);
    ds.add(Sequence(std::move(name), std::move(codes), alpha));
  }
  return ds;
}

Dataset bacteria_2k(std::uint64_t seed, std::size_t count) {
  GeneratorConfig cfg;
  cfg.lengths = LengthModel::bacteria_protein();
  cfg.seed = seed;
  cfg.name_prefix = "bact";
  return generate(count, cfg);
}

Dataset uniprot_like(std::size_t count, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.lengths = LengthModel::uniprot_protein();
  cfg.seed = seed;
  cfg.name_prefix = "up";
  return generate(count, cfg);
}

Dataset small_representative(std::size_t count, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.lengths = LengthModel::bacteria_protein();
  cfg.lengths.max_len = 800;  // keep the all-to-all baseline sweep tractable
  cfg.seed = seed;
  cfg.name_prefix = "rep";
  return generate(count, cfg);
}

}  // namespace valign::workload
