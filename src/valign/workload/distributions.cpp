#include "valign/workload/distributions.hpp"

#include <cmath>

namespace valign::workload {

double LengthModel::model_mean() const {
  return std::exp(mu + sigma * sigma / 2.0);
}

LengthModel LengthModel::bacteria_protein() {
  // mean 314 => mu = ln(314) - sigma^2/2 with sigma = 0.55; median ~270,
  // matching "half of the sequences are length 300 or less" (Fig. 2c).
  return {"bacteria-protein", 5.598, 0.55, 20, 3206};
}

LengthModel LengthModel::uniprot_protein() {
  // mean 356 with a heavier tail (longest 35,213; Fig. 2d).
  return {"uniprot-protein", 5.664, 0.65, 20, 35213};
}

LengthModel LengthModel::bacteria_dna() {
  // Genomic records span plasmids to full chromosomes: very heavy tail,
  // longest 14.8 Mbp (Fig. 2b).
  return {"bacteria-dna", 11.5, 2.2, 200, 14800000};
}

LengthModel LengthModel::human_dna() {
  // Chromosomes plus scaffolds, longest 125 Mbp (Fig. 2a).
  return {"human-dna", 12.2, 2.5, 500, 125000000};
}

const ResidueModel& ResidueModel::protein() {
  // Natural background frequencies (percent) for ARNDCQEGHILKMFPSTWYV.
  static const ResidueModel m{std::discrete_distribution<int>{
      8.3, 5.5, 4.1, 5.5, 1.4, 3.9, 6.8, 7.1, 2.3, 6.0,
      9.7, 5.8, 2.4, 3.9, 4.7, 6.6, 5.3, 1.1, 2.9, 6.9}};
  return m;
}

const ResidueModel& ResidueModel::dna() {
  static const ResidueModel m{std::discrete_distribution<int>{1.0, 1.0, 1.0, 1.0}};
  return m;
}

}  // namespace valign::workload
