// Sequence-length and residue-composition models (§V, Fig. 2).
//
// The paper characterizes four datasets (RefSeq Homo sapiens DNA, RefSeq
// bacteria DNA, RefSeq bacteria proteins, UniProt proteins). Those releases
// are tens of gigabytes and are not shipped here; instead each dataset is
// modelled as a clamped log-normal length distribution fitted to the summary
// statistics the paper reports, plus a residue-frequency model. DESIGN.md §3
// documents the substitution.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "valign/common.hpp"

namespace valign::workload {

/// Clamped log-normal sequence-length model.
struct LengthModel {
  std::string name;
  double mu = 5.6;      ///< log-space mean.
  double sigma = 0.55;  ///< log-space standard deviation.
  std::size_t min_len = 20;
  std::size_t max_len = 40000;

  /// Draw one length.
  template <class Rng>
  [[nodiscard]] std::size_t sample(Rng& rng) const {
    std::lognormal_distribution<double> d(mu, sigma);
    const double v = d(rng);
    auto len = static_cast<std::size_t>(v);
    if (len < min_len) len = min_len;
    if (len > max_len) len = max_len;
    return len;
  }

  /// Expected mean of the *unclamped* log-normal (exp(mu + sigma^2/2)).
  [[nodiscard]] double model_mean() const;

  // --- Fitted presets (paper §V) -------------------------------------------
  /// RefSeq bacteria proteins ("bacteria 2K": mean 314, max 3,206).
  [[nodiscard]] static LengthModel bacteria_protein();
  /// UniProt proteins (mean 356, max 35,213; half of sequences <= ~300).
  [[nodiscard]] static LengthModel uniprot_protein();
  /// RefSeq bacteria genomic DNA (heavy tail, longest 14.8 Mbp).
  [[nodiscard]] static LengthModel bacteria_dna();
  /// RefSeq Homo sapiens genomic DNA (longest 125 Mbp).
  [[nodiscard]] static LengthModel human_dna();
};

/// Residue sampler: natural amino-acid frequencies or uniform DNA bases.
class ResidueModel {
 public:
  /// Natural amino-acid background frequencies over the 20 standard residues
  /// (codes 0..19 of Alphabet::protein()).
  [[nodiscard]] static const ResidueModel& protein();
  /// Uniform A/C/G/T (codes 0..3 of Alphabet::dna()).
  [[nodiscard]] static const ResidueModel& dna();

  template <class Rng>
  [[nodiscard]] std::uint8_t sample(Rng& rng) const {
    return static_cast<std::uint8_t>(dist_(rng));
  }

 private:
  explicit ResidueModel(std::discrete_distribution<int> dist)
      : dist_(std::move(dist)) {}
  mutable std::discrete_distribution<int> dist_;
};

}  // namespace valign::workload
