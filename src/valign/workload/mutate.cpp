#include "valign/workload/mutate.hpp"

namespace valign::workload {

Sequence mutate(const Sequence& parent, const MutationModel& model,
                const ResidueModel& residues, std::mt19937_64& rng,
                std::string name) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<std::uint8_t> out;
  out.reserve(parent.size() + parent.size() / 8);

  const auto codes = parent.codes();
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const double roll = u(rng);
    if (roll < model.indel_rate / 2) {
      // Deletion: skip this and geometrically more residues.
      while (i + 1 < codes.size() && u(rng) < model.indel_extend) ++i;
      continue;
    }
    if (roll < model.indel_rate) {
      // Insertion before this residue.
      out.push_back(residues.sample(rng));
      while (u(rng) < model.indel_extend) out.push_back(residues.sample(rng));
    }
    if (u(rng) < model.substitution_rate) {
      out.push_back(residues.sample(rng));
    } else {
      out.push_back(codes[i]);
    }
  }
  if (out.empty()) out.push_back(residues.sample(rng));
  return Sequence(std::move(name), std::move(out), parent.alphabet());
}

}  // namespace valign::workload
