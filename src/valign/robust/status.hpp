// Error taxonomy for the fault-tolerant runtime (docs/robustness.md).
//
// Status / StatusOr<T> carry a stable category code plus a human-readable
// message. Layers that can recover (lenient FASTA parsing, the matrix
// parser's try_* entry points, pipeline shard retries) pass Status values;
// layers that cannot throw StatusError, which IS-A valign::Error so every
// existing `catch (const Error&)` and `EXPECT_THROW(..., Error)` keeps
// working while new code can switch on the category.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "valign/common.hpp"

namespace valign::robust {

/// Stable category codes. The spellings returned by to_string() are part of
/// the CLI/report contract (they appear in error messages and exit-code
/// mapping) — add codes, never rename them.
enum class StatusCode : std::uint8_t {
  Ok = 0,
  /// Caller error: bad CLI flag, malformed --fail-inject spec, conflicting
  /// options. The CLI maps this (and only this) to exit code 2.
  InvalidArgument,
  /// Input violates the format grammar (bad FASTA record, bad matrix cell).
  IoMalformed,
  /// The byte stream itself failed: unreadable file, mid-record read error.
  IoTruncated,
  /// An engine saturated its element type and no wider retry is possible.
  EngineSaturated,
  /// Allocation or capacity failure; retryable (transient by definition).
  ResourceExhausted,
  /// Invariant violation inside valign; never retryable.
  Internal,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::InvalidArgument: return "invalid_argument";
    case StatusCode::IoMalformed: return "io_malformed";
    case StatusCode::IoTruncated: return "io_truncated";
    case StatusCode::EngineSaturated: return "engine_saturated";
    case StatusCode::ResourceExhausted: return "resource_exhausted";
    case StatusCode::Internal: return "internal";
  }
  return "?";
}

class Status {
 public:
  Status() = default;  ///< Ok.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::Ok; }
  explicit operator bool() const noexcept { return is_ok(); }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "io_malformed: FASTA at line 3, record 'q1': ..." — the string
  /// StatusError exposes through what().
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(robust::to_string(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

[[nodiscard]] inline Status invalid_argument(std::string msg) {
  return {StatusCode::InvalidArgument, std::move(msg)};
}
[[nodiscard]] inline Status io_malformed(std::string msg) {
  return {StatusCode::IoMalformed, std::move(msg)};
}
[[nodiscard]] inline Status io_truncated(std::string msg) {
  return {StatusCode::IoTruncated, std::move(msg)};
}
[[nodiscard]] inline Status engine_saturated(std::string msg) {
  return {StatusCode::EngineSaturated, std::move(msg)};
}
[[nodiscard]] inline Status resource_exhausted(std::string msg) {
  return {StatusCode::ResourceExhausted, std::move(msg)};
}
[[nodiscard]] inline Status internal(std::string msg) {
  return {StatusCode::Internal, std::move(msg)};
}

/// The throwing bridge for call sites that cannot return Status. Subclasses
/// valign::Error so the pre-taxonomy catch sites keep working.
class StatusError : public Error {
 public:
  explicit StatusError(Status status)
      : Error(status.to_string()), status_(std::move(status)) {}
  StatusError(StatusCode code, std::string message)
      : StatusError(Status(code, std::move(message))) {}

  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] StatusCode code() const noexcept { return status_.code(); }

 private:
  Status status_;
};

[[noreturn]] inline void throw_status(Status status) {
  throw StatusError(std::move(status));
}

/// Either a value or a non-ok Status. Deliberately tiny: exactly what the
/// parsers need, not a general-purpose expected<> clone.
template <class T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok()) {
      status_ = internal("StatusOr constructed from an ok Status without a value");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & { return ensure(), *value_; }
  [[nodiscard]] const T& value() const& { return ensure(), *value_; }
  [[nodiscard]] T&& value() && { return ensure(), *std::move(value_); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  void ensure() const {
    if (!ok()) throw StatusError(status_);
  }

  Status status_{};  ///< Ok iff value_ holds.
  std::optional<T> value_;
};

}  // namespace valign::robust
