// Record quarantine + degraded-mode policy (docs/robustness.md).
//
// Lenient parsing/search skips records it cannot process instead of aborting
// the run; QuarantineStats tallies what was skipped and why, keeping a small
// sample of the offending records for diagnostics. The tallies surface as
// runtime.quarantine.* metrics and the "quarantine" section of
// valign.run_report/1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "valign/robust/status.hpp"

namespace valign::robust {

struct QuarantinedRecord {
  std::string name;  ///< Record name; empty when the header never parsed.
  std::size_t line = 0;  ///< 1-based line where the record starts.
  StatusCode code = StatusCode::IoMalformed;
  std::string reason;
};

struct QuarantineStats {
  std::uint64_t records = 0;    ///< Total quarantined.
  std::uint64_t malformed = 0;  ///< io_malformed: grammar/encoding failures.
  std::uint64_t oversized = 0;  ///< resource_exhausted: max_sequence_length.
  std::uint64_t truncated = 0;  ///< io_truncated: stream failed mid-record.

  /// First kMaxSamples offenders, for diagnostics; counting continues past
  /// the cap so `records` is always exact.
  static constexpr std::size_t kMaxSamples = 16;
  std::vector<QuarantinedRecord> samples;

  void add(QuarantinedRecord r);
  QuarantineStats& operator+=(const QuarantineStats& other);
  [[nodiscard]] bool empty() const noexcept { return records == 0; }
};

/// Publishes `q` under runtime.quarantine.* in the global metrics registry.
void publish_quarantine_stats(const QuarantineStats& q);

/// Degraded-mode knobs shared by the batch and streaming search drivers.
struct RobustPolicy {
  /// Quarantine malformed/oversized records instead of aborting (--lenient).
  bool lenient = false;
  /// Shard/block failures tolerated before the run reports a summarized
  /// error (--max-errors). 0 = strict: any captured failure fails the run.
  std::uint64_t max_errors = 0;
  /// Bounded retry for transient (resource_exhausted / bad_alloc) failures;
  /// backoff doubles per attempt starting at 2 ms.
  int max_retries = 2;
  /// Per-record residue cap forwarded to FastaReader (--max-seq-len).
  std::size_t max_sequence_length = std::size_t{1} << 30;
  /// Stall watchdog: fail fast with a diagnostic dump when the pipeline
  /// makes no progress for this long (--stall-timeout-ms). 0 = off.
  std::uint64_t stall_timeout_ms = 0;
};

/// One work unit (pipeline shard or schedule block) that failed after
/// retries. `base`/`count` give the db-index range whose results were lost.
struct ShardFailure {
  /// All-queries sentinel: a pipeline shard loses `base`/`count` for every
  /// query; a batch schedule block belongs to exactly one.
  static constexpr std::size_t kAllQueries = static_cast<std::size_t>(-1);

  std::size_t base = 0;
  std::size_t count = 0;
  std::string error;
  std::size_t query = kAllQueries;
};

/// True when `e` names a failure worth retrying with backoff.
[[nodiscard]] bool is_transient_failure(const std::exception& e) noexcept;

}  // namespace valign::robust
