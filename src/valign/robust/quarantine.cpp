#include "valign/robust/quarantine.hpp"

#include <new>

#include "valign/obs/metrics.hpp"
#include "valign/obs/query_trace.hpp"

namespace valign::robust {

void QuarantineStats::add(QuarantinedRecord r) {
  ++records;
  switch (r.code) {
    case StatusCode::IoTruncated: ++truncated; break;
    case StatusCode::ResourceExhausted: ++oversized; break;
    default: ++malformed; break;
  }
  if (samples.size() < kMaxSamples) samples.push_back(std::move(r));
}

QuarantineStats& QuarantineStats::operator+=(const QuarantineStats& other) {
  records += other.records;
  malformed += other.malformed;
  oversized += other.oversized;
  truncated += other.truncated;
  for (const QuarantinedRecord& r : other.samples) {
    if (samples.size() >= kMaxSamples) break;
    samples.push_back(r);
  }
  return *this;
}

void publish_quarantine_stats(const QuarantineStats& q) {
  if (q.empty()) return;
  obs::trace_instant(obs::TraceEventKind::Quarantine, obs::kNoQuery,
                     static_cast<std::int64_t>(q.records));
  obs::Registry& reg = obs::Registry::global();
  reg.counter("runtime.quarantine.records").add(q.records);
  reg.counter("runtime.quarantine.malformed").add(q.malformed);
  reg.counter("runtime.quarantine.oversized").add(q.oversized);
  reg.counter("runtime.quarantine.truncated").add(q.truncated);
}

bool is_transient_failure(const std::exception& e) noexcept {
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) return true;
  const auto* se = dynamic_cast<const StatusError*>(&e);
  return se != nullptr && se->code() == StatusCode::ResourceExhausted;
}

}  // namespace valign::robust
