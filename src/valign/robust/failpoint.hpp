// Failpoint injection (docs/robustness.md): named fault sites compiled into
// the tree only when the CMake option VALIGN_ENABLE_FAILPOINTS is ON (the
// sanitize preset turns it on; release builds compile the macro to an empty
// statement, so production binaries carry zero overhead — not even a branch).
//
// A site is written as
//
//   VALIGN_FAILPOINT("pipeline.pop", throw StatusError(...));
//
// and stays dormant until armed through --fail-inject, the VALIGN_FAILPOINTS
// environment variable, or FailpointRegistry::arm(). Arming takes a spec of
// the form `name[:prob[:count]]` (comma-separated list accepted):
//
//   pipeline.pop                fire every evaluation
//   cache.build:0.1             fire with probability 0.1
//   io.fasta.read:0.5:3        fire at most 3 times, each at p=0.5
//
// Firing decisions use a seeded xorshift generator (VALIGN_FAILPOINT_SEED)
// so chaos runs are reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "valign/robust/status.hpp"

namespace valign::robust {

/// True when this build compiled the VALIGN_FAILPOINT sites in. Chaos tests
/// skip themselves (rather than fail) in builds without injection sites.
[[nodiscard]] constexpr bool failpoints_compiled() noexcept {
#if defined(VALIGN_ENABLE_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

/// Every VALIGN_FAILPOINT site in the tree, by name. The chaos harness
/// sweeps this list; docs/robustness.md documents each site's failure mode.
inline constexpr const char* kFailpointCatalog[] = {
    "io.fasta.read",        // FastaReader: mid-stream read failure
    "cache.build",          // EngineCache: engine allocation fails (transient)
    "pipeline.pop",         // SearchPipeline worker: shard processing fails
    "pipeline.worker_hang", // SearchPipeline worker: cooperative stall
    "interseq.refill",      // BatchEngine: finished lane reports saturation
    "dispatch.ladder",      // Aligner: force one overflow -> widen retry
    "prefilter.screen",     // Prefilter: screening a block fails (degrade to full DP)
};

struct FailpointState {
  std::string name;
  double prob = 1.0;
  std::int64_t remaining = -1;  ///< Fires left; -1 = unlimited.
  std::uint64_t evaluated = 0;  ///< Times a site asked "should I fire?".
  std::uint64_t fired = 0;
};

/// Process-global registry of armed failpoints. should_fire() is hot-path
/// tolerant: a relaxed atomic count of armed points short-circuits the
/// common (nothing armed) case without taking the lock.
class FailpointRegistry {
 public:
  [[nodiscard]] static FailpointRegistry& global();

  /// Arms `name` to fire with probability `prob`, at most `count` times
  /// (count < 0 = unlimited). Re-arming replaces the previous setting.
  void arm(const std::string& name, double prob = 1.0, std::int64_t count = -1);

  /// Parses and arms a comma-separated `name[:prob[:count]]` spec list.
  /// Returns invalid_argument (arming nothing further) on a malformed spec.
  [[nodiscard]] Status arm_specs(const std::string& specs);

  /// Arms from $VALIGN_FAILPOINTS and seeds from $VALIGN_FAILPOINT_SEED.
  /// Unset variables are a no-op; a malformed value is returned as a Status.
  [[nodiscard]] Status arm_from_env();

  void disarm(const std::string& name);
  void disarm_all();

  /// Reseeds the firing RNG (chaos runs pin this for reproducibility).
  void set_seed(std::uint64_t seed);

  /// Decision point behind VALIGN_FAILPOINT. Never throws.
  [[nodiscard]] bool should_fire(const char* name) noexcept;

  /// Times `name` actually fired since it was (re-)armed.
  [[nodiscard]] std::uint64_t fired(const std::string& name) const;

  [[nodiscard]] std::vector<FailpointState> armed() const;

 private:
  struct Entry {
    double prob = 1.0;
    std::int64_t remaining = -1;
    std::uint64_t evaluated = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> points_;
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ull;
  std::atomic<std::size_t> armed_count_{0};
};

/// Parses one `name[:prob[:count]]` spec. Exposed for the CLI so a bad
/// --fail-inject value is diagnosed as a usage error before anything runs.
[[nodiscard]] StatusOr<FailpointState> parse_failpoint_spec(const std::string& spec);

}  // namespace valign::robust

#if defined(VALIGN_ENABLE_FAILPOINTS)
#define VALIGN_FAILPOINT(name, ...)                                        \
  do {                                                                     \
    if (::valign::robust::FailpointRegistry::global().should_fire(name)) { \
      __VA_ARGS__;                                                         \
    }                                                                      \
  } while (0)
#else
#define VALIGN_FAILPOINT(name, ...) \
  do {                              \
  } while (0)
#endif
