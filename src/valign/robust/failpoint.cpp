#include "valign/robust/failpoint.hpp"

#include <cstdlib>

namespace valign::robust {

namespace {

/// xorshift64*: deterministic, cheap, good enough for firing decisions.
std::uint64_t next_rand(std::uint64_t& state) {
  std::uint64_t x = state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

double to_unit(std::uint64_t r) {
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
}

}  // namespace

FailpointRegistry& FailpointRegistry::global() {
  static FailpointRegistry registry;
  return registry;
}

void FailpointRegistry::arm(const std::string& name, double prob,
                            std::int64_t count) {
  const std::lock_guard<std::mutex> lock(mu_);
  points_[name] = Entry{prob, count, 0, 0};
  armed_count_.store(points_.size(), std::memory_order_relaxed);
}

StatusOr<FailpointState> parse_failpoint_spec(const std::string& spec) {
  FailpointState st;
  const auto bad = [&spec](const std::string& why) {
    return invalid_argument("bad failpoint spec '" + spec + "': " + why +
                            " (expected name[:prob[:count]])");
  };
  std::size_t colon = spec.find(':');
  st.name = spec.substr(0, colon);
  if (st.name.empty()) return bad("empty name");
  if (colon == std::string::npos) return st;

  const std::size_t colon2 = spec.find(':', colon + 1);
  const std::string prob_str =
      spec.substr(colon + 1, colon2 == std::string::npos ? std::string::npos
                                                         : colon2 - colon - 1);
  try {
    std::size_t pos = 0;
    st.prob = std::stod(prob_str, &pos);
    if (pos != prob_str.size()) throw std::invalid_argument(prob_str);
  } catch (...) {
    return bad("probability '" + prob_str + "' is not a number");
  }
  // NaN compares false against both bounds; the negated form rejects it.
  if (!(st.prob >= 0.0 && st.prob <= 1.0)) {
    return bad("probability must be in [0, 1]");
  }
  if (colon2 == std::string::npos) return st;

  const std::string count_str = spec.substr(colon2 + 1);
  try {
    std::size_t pos = 0;
    st.remaining = std::stoll(count_str, &pos);
    if (pos != count_str.size()) throw std::invalid_argument(count_str);
  } catch (...) {
    return bad("count '" + count_str + "' is not an integer");
  }
  if (st.remaining < 0) return bad("count must be >= 0");
  return st;
}

Status FailpointRegistry::arm_specs(const std::string& specs) {
  std::size_t start = 0;
  while (start <= specs.size()) {
    std::size_t comma = specs.find(',', start);
    if (comma == std::string::npos) comma = specs.size();
    const std::string one = specs.substr(start, comma - start);
    if (!one.empty()) {
      StatusOr<FailpointState> parsed = parse_failpoint_spec(one);
      if (!parsed.ok()) return parsed.status();
      arm(parsed->name, parsed->prob, parsed->remaining);
    }
    start = comma + 1;
  }
  return Status::ok();
}

Status FailpointRegistry::arm_from_env() {
  if (const char* seed = std::getenv("VALIGN_FAILPOINT_SEED")) {
    try {
      set_seed(std::stoull(seed));
    } catch (...) {
      return invalid_argument(std::string("VALIGN_FAILPOINT_SEED '") + seed +
                              "' is not an integer");
    }
  }
  if (const char* specs = std::getenv("VALIGN_FAILPOINTS")) {
    return arm_specs(specs);
  }
  return Status::ok();
}

void FailpointRegistry::disarm(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  points_.erase(name);
  armed_count_.store(points_.size(), std::memory_order_relaxed);
}

void FailpointRegistry::disarm_all() {
  const std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

void FailpointRegistry::set_seed(std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mu_);
  rng_ = seed | 1;  // xorshift must not start at zero
}

bool FailpointRegistry::should_fire(const char* name) noexcept {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  try {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(name);
    if (it == points_.end()) return false;
    Entry& e = it->second;
    ++e.evaluated;
    if (e.remaining == 0) return false;
    if (e.prob < 1.0 && to_unit(next_rand(rng_)) >= e.prob) return false;
    if (e.remaining > 0) --e.remaining;
    ++e.fired;
    return true;
  } catch (...) {
    return false;  // never let the injection plumbing itself fault a run
  }
}

std::uint64_t FailpointRegistry::fired(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fired;
}

std::vector<FailpointState> FailpointRegistry::armed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailpointState> out;
  out.reserve(points_.size());
  for (const auto& [name, e] : points_) {
    out.push_back(FailpointState{name, e.prob, e.remaining, e.evaluated, e.fired});
  }
  return out;
}

}  // namespace valign::robust
