// Core vocabulary types shared by every valign module.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstddef>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <stdexcept>
#include <string>

namespace valign {

/// The three classes of pairwise alignment studied by the paper (§II).
enum class AlignClass : std::uint8_t {
  Global,      ///< Needleman-Wunsch (NW): end-to-end alignment.
  SemiGlobal,  ///< SG: free end gaps; alignment overlaps one end of each sequence.
  Local,       ///< Smith-Waterman (SW): best-scoring subsequence pair.
};

/// Vectorization approaches enumerated in Fig. 1 of the paper.
enum class Approach : std::uint8_t {
  Scalar,    ///< Plain dynamic programming (ground truth).
  Blocked,   ///< Rognes & Seeberg 2000: vectors parallel to query, convergence loop.
  Diagonal,  ///< Wozniak 1997: vectors along the anti-diagonal.
  Striped,   ///< Farrar 2007: striped layout + lazy-F corrective loop.
  Scan,      ///< This paper: striped layout + two-pass prefix scan.
  /// Snytsar 2019 (arXiv:1909.00899): striped layout with the lazy-F loop
  /// deconstructed into one cross-lane prefix-max followed by a single
  /// conditional fix-up pass. Bounded corrective work, unlike Striped.
  Deconstructed,
  /// Inter-sequence (Rognes 2011 / SWIPE): one independent query x database
  /// pair per lane, no cross-lane dependencies. Reached through the batch
  /// dispatcher (BatchAligner), never through `--approach`.
  InterSeq,
  Auto,      ///< Prescriptive selection per Table IV.
};

/// Number of Approach enumerators (array-index bound for per-approach
/// censuses such as AlignStats::approach_counts).
inline constexpr std::size_t kApproachCount =
    static_cast<std::size_t>(Approach::Auto) + 1;

/// Instruction-set backends available for the vector engines.
enum class Isa : std::uint8_t {
  Emul,    ///< Portable scalar emulation of an N-lane vector (any width).
  SSE41,   ///< 128-bit.
  AVX2,    ///< 256-bit.
  AVX512,  ///< 512-bit (AVX-512BW).
  Auto,    ///< Widest ISA supported by the running CPU.
};

/// Integer element width used for the DP cell values.
enum class ElemWidth : std::uint8_t { W8, W16, W32, Auto };

inline int elem_bits(ElemWidth w) {
  switch (w) {
    case ElemWidth::W8: return 8;
    case ElemWidth::W16: return 16;
    case ElemWidth::W32: return 32;
    default: return 0;
  }
}

inline const char* to_string(AlignClass c) {
  switch (c) {
    case AlignClass::Global: return "NW";
    case AlignClass::SemiGlobal: return "SG";
    case AlignClass::Local: return "SW";
  }
  return "?";
}

inline const char* to_string(Approach a) {
  switch (a) {
    case Approach::Scalar: return "scalar";
    case Approach::Blocked: return "blocked";
    case Approach::Diagonal: return "diagonal";
    case Approach::Striped: return "striped";
    case Approach::Scan: return "scan";
    case Approach::Deconstructed: return "deconstructed";
    case Approach::InterSeq: return "interseq";
    case Approach::Auto: return "auto";
  }
  return "?";
}

/// Execution family used by the batch drivers for a block of pairs.
enum class EngineMode : std::uint8_t {
  Intra,  ///< One pair at a time, vectorized within its DP matrix.
  Inter,  ///< Lane-packed: one independent pair per vector lane.
  Auto,   ///< Cost model per work block (see runtime::resolve_engine).
};

inline const char* to_string(EngineMode m) {
  switch (m) {
    case EngineMode::Intra: return "intra";
    case EngineMode::Inter: return "inter";
    case EngineMode::Auto: return "auto";
  }
  return "?";
}

/// Two-stage search prescreen policy (see core/prefilter.hpp).
enum class PrefilterMode : std::uint8_t {
  Off,    ///< Full DP on every pair (legacy single-stage search).
  Auto,   ///< Enable the i8 prescreen when the workload shape profits from it.
  Force,  ///< Always prescreen, regardless of workload shape.
};

inline const char* to_string(PrefilterMode m) {
  switch (m) {
    case PrefilterMode::Off: return "off";
    case PrefilterMode::Auto: return "auto";
    case PrefilterMode::Force: return "force";
  }
  return "?";
}

inline const char* to_string(Isa i) {
  switch (i) {
    case Isa::Emul: return "emul";
    case Isa::SSE41: return "sse4.1";
    case Isa::AVX2: return "avx2";
    case Isa::AVX512: return "avx512";
    case Isa::Auto: return "auto";
  }
  return "?";
}

/// Affine gap penalties, stored as positive magnitudes.
/// A gap of length g costs `open + g * extend` (the NCBI blastp convention:
/// BLOSUM62's default `-11/-1` is `GapPenalty{11, 1}`).
struct GapPenalty {
  int open = 11;    ///< Charged once per gap, on top of the first extension.
  int extend = 1;   ///< Charged once per gap character.

  [[nodiscard]] bool operator==(const GapPenalty&) const = default;
};

/// Which sequence ends are free of gap penalties in a semi-global alignment.
///
/// The default (everything free) is the paper's SG. Clearing all four flags
/// reproduces global alignment; mixed settings give the intermediate variants
/// used e.g. for read mapping (free query ends, penalized database ends) or
/// overlap detection. Only the Scalar, Striped and Scan engines honour these
/// flags; Blocked and Diagonal implement the classic all-free SG.
struct SemiGlobalEnds {
  bool free_query_begin = true;  ///< Leading database residues may go unaligned.
  bool free_query_end = true;    ///< Trailing database residues may go unaligned.
  bool free_db_begin = true;     ///< Leading query residues may go unaligned.
  bool free_db_end = true;       ///< Trailing query residues may go unaligned.

  [[nodiscard]] bool all_free() const noexcept {
    return free_query_begin && free_query_end && free_db_begin && free_db_end;
  }
  [[nodiscard]] bool none_free() const noexcept {
    return !free_query_begin && !free_query_end && !free_db_begin && !free_db_end;
  }

  [[nodiscard]] bool operator==(const SemiGlobalEnds&) const = default;
};

/// Small fixed-bucket histogram for per-column pass counts. Bucket i counts
/// columns that took exactly i passes; the last bucket absorbs everything at
/// or beyond kBuckets-1. Plain (non-atomic) so engines can record in the hot
/// loop and drivers merge per-thread copies, like the rest of AlignStats.
struct PassHist {
  static constexpr int kBuckets = 9;  ///< 0..7 exact, 8 = "8 or more".
  std::array<std::uint64_t, kBuckets> counts{};

  void record(std::uint64_t passes) noexcept {
    const std::size_t b = passes < kBuckets - 1
                              ? static_cast<std::size_t>(passes)
                              : static_cast<std::size_t>(kBuckets - 1);
    ++counts[b];
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t c : counts) t += c;
    return t;
  }

  /// True when any column needed at least one pass.
  [[nodiscard]] bool any_nonzero() const noexcept {
    for (int b = 1; b < kBuckets; ++b) {
      if (counts[static_cast<std::size_t>(b)] != 0) return true;
    }
    return false;
  }

  PassHist& operator+=(const PassHist& o) noexcept {
    for (int b = 0; b < kBuckets; ++b) {
      counts[static_cast<std::size_t>(b)] += o.counts[static_cast<std::size_t>(b)];
    }
    return *this;
  }

  [[nodiscard]] bool operator==(const PassHist&) const = default;
};

/// Per-alignment work counters (basis of the paper's complexity analysis, §IV).
struct AlignStats {
  std::uint64_t columns = 0;            ///< DP columns processed (database length).
  std::uint64_t main_epochs = 0;        ///< Vector epochs in unconditional passes.
  std::uint64_t corrective_epochs = 0;  ///< k: lazy-F corrective epochs (Striped only).
  std::uint64_t hscan_steps = 0;        ///< Horizontal scan steps (Scan only).
  std::uint64_t cells = 0;              ///< DP cells covered (n*m, incl. padding).
  /// Columns where the cross-lane carry resolved by the horizontal scan
  /// contributed to the first vector epoch of pass 2 (Scan only; a cheap
  /// one-test-per-column proxy for how often the scan result matters).
  std::uint64_t scan_carry_cols = 0;
  /// Distribution of corrective work: lazy-F passes per column (Striped) and
  /// corrective re-iterations per block (Blocked). Bucket 0 = converged
  /// without correction — the paper's explanation for why Scan wins as
  /// registers widen lives in this histogram's tail.
  PassHist lazyf_hist{};
  /// Distribution of cross-lane scan steps per column (Scan only): p-1 per
  /// column, so the shape shifts right as registers widen.
  PassHist hscan_hist{};
  /// Fix-up passes per column for the Deconstructed engine: bucket 0 counts
  /// columns where the resolved cross-lane F could not improve any cell (the
  /// second pass was skipped outright), bucket 1 columns that ran the single
  /// fix-up pass. Never reaches bucket 2 — that bound is the point.
  PassHist prefix_hist{};
  /// Alignments answered per resolved engine, indexed by the Approach
  /// enumerator (the Auto slot stays zero — a result always carries a
  /// concrete engine). Incremented once per dispatched alignment by
  /// Aligner/BatchAligner, so Auto's per-block picks are visible in run
  /// reports without widening every driver.
  std::array<std::uint64_t, kApproachCount> approach_counts{};

  /// The paper's corrective factor C = k / m / ceil(n/p)  (§IV).
  [[nodiscard]] double corrective_factor(std::uint64_t query_len, int lanes) const {
    if (columns == 0 || query_len == 0 || lanes <= 0) return 0.0;
    const double epochs_per_col =
        static_cast<double>((query_len + static_cast<std::uint64_t>(lanes) - 1) /
                            static_cast<std::uint64_t>(lanes));
    return static_cast<double>(corrective_epochs) /
           static_cast<double>(columns) / epochs_per_col;
  }

  AlignStats& operator+=(const AlignStats& o) {
    columns += o.columns;
    main_epochs += o.main_epochs;
    corrective_epochs += o.corrective_epochs;
    hscan_steps += o.hscan_steps;
    cells += o.cells;
    scan_carry_cols += o.scan_carry_cols;
    lazyf_hist += o.lazyf_hist;
    hscan_hist += o.hscan_hist;
    prefix_hist += o.prefix_hist;
    for (std::size_t a = 0; a < approach_counts.size(); ++a) {
      approach_counts[a] += o.approach_counts[a];
    }
    return *this;
  }
};

/// Occupancy/refill accounting for the inter-sequence (lane-packed) engines.
/// One column step advances every live lane by one database residue, so
/// `lane_steps / lane_capacity_steps` is the mean lane occupancy.
struct InterSeqBatchStats {
  std::uint64_t batches = 0;              ///< align_batch calls served.
  std::uint64_t pairs = 0;                ///< Pairs answered by the packed kernel.
  std::uint64_t column_steps = 0;         ///< Vector column iterations.
  std::uint64_t lane_steps = 0;           ///< Live lanes summed over column steps.
  std::uint64_t lane_capacity_steps = 0;  ///< `lanes` summed over column steps.
  std::uint64_t refills = 0;              ///< Lane reloads after the initial packing.
  std::uint64_t vector_epochs = 0;        ///< Row-loop vector iterations.

  [[nodiscard]] double occupancy() const noexcept {
    return lane_capacity_steps == 0
               ? 0.0
               : static_cast<double>(lane_steps) /
                     static_cast<double>(lane_capacity_steps);
  }

  InterSeqBatchStats& operator+=(const InterSeqBatchStats& o) noexcept {
    batches += o.batches;
    pairs += o.pairs;
    column_steps += o.column_steps;
    lane_steps += o.lane_steps;
    lane_capacity_steps += o.lane_capacity_steps;
    refills += o.refills;
    vector_epochs += o.vector_epochs;
    return *this;
  }
};

/// Result of a pairwise alignment.
struct AlignResult {
  std::int32_t score = 0;   ///< Optimal alignment score.
  std::int32_t query_end = -1;  ///< 0-based row of the optimal cell (-1 if not tracked).
  std::int32_t db_end = -1;     ///< 0-based column of the optimal cell (-1 if not tracked).
  bool overflowed = false;  ///< Element width saturated; retry with wider elements.
  AlignStats stats{};
  Approach approach = Approach::Scalar;
  Isa isa = Isa::Emul;
  int lanes = 1;
  int bits = 32;  ///< Element width in bits.
};

/// Thrown on malformed input (FASTA syntax, unknown matrix, bad options…).
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// 64-byte aligned, heap-backed array for vector loads/stores. One cache
/// line of alignment means an aligned AVX-512 load can never split a line,
/// and `V::load` (the aligned form) is always legal on vector-stride offsets.
template <class T>
class AlignedBuffer {
 public:
  /// Every allocation starts on a 64-byte (cache-line) boundary.
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) { resize(n); }

  /// Grows (never shrinks) the allocation; contents are NOT preserved.
  void resize(std::size_t n) {
    if (n <= cap_) {
      size_ = n;
      return;
    }
    void* p = ::operator new[](n * sizeof(T), std::align_val_t{kAlignment});
    assert(reinterpret_cast<std::uintptr_t>(p) % kAlignment == 0 &&
           "aligned operator new returned a misaligned block");
    data_.reset(static_cast<T*>(p));
    cap_ = n;
    size_ = n;
  }

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] std::span<T> span() noexcept { return {data_.get(), size_}; }

 private:
  struct Deleter {
    void operator()(T* p) const noexcept {
      ::operator delete[](p, std::align_val_t{64});
    }
  };
  std::unique_ptr<T[], Deleter> data_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

/// Clamp a wide integer into the representable range of element type T.
template <class T>
[[nodiscard]] constexpr T clamp_to(std::int64_t v) noexcept {
  constexpr std::int64_t lo = std::numeric_limits<T>::min();
  constexpr std::int64_t hi = std::numeric_limits<T>::max();
  return static_cast<T>(v < lo ? lo : (v > hi ? hi : v));
}

}  // namespace detail

/// 64-byte-aligned vector for query profiles and engine work rows. Grows
/// without preserving contents (engines fully rewrite on resize); see
/// detail::AlignedBuffer for the allocation contract.
template <class T>
using aligned_vector = detail::AlignedBuffer<T>;

}  // namespace valign
