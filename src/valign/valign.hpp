// valign — SIMD pairwise sequence alignment across vector widths.
//
// Umbrella header: pulls in the public API.
//
//   #include "valign/valign.hpp"
//
//   using namespace valign;
//   Sequence q("q", "MKTAYIAKQR", Alphabet::protein());
//   Sequence d("d", "MKTAYIAKQL", Alphabet::protein());
//   AlignResult r = align(q, d, Options{.klass = AlignClass::Local});
//
// See README.md for the architecture overview and DESIGN.md for the mapping
// to the reproduced paper (Daily et al., ICPP 2016).
#pragma once

#include "valign/common.hpp"
#include "valign/version.hpp"

// Substrates
#include "valign/io/alphabet.hpp"
#include "valign/io/fasta.hpp"
#include "valign/io/sequence.hpp"
#include "valign/matrices/matrix.hpp"
#include "valign/matrices/parser.hpp"
#include "valign/simd/simd.hpp"

// Engines
#include "valign/core/blocked.hpp"
#include "valign/core/diagonal.hpp"
#include "valign/core/scalar.hpp"
#include "valign/core/scan.hpp"
#include "valign/core/striped.hpp"
#include "valign/core/tiled.hpp"

// Public dispatch API
#include "valign/core/calibrate.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/prescribe.hpp"

// Instrumentation
#include "valign/instrument/counters.hpp"
#include "valign/instrument/counting_vec.hpp"

// Batched alignment runtime
#include "valign/runtime/engine_cache.hpp"
#include "valign/runtime/pipeline.hpp"
#include "valign/runtime/scheduler.hpp"

// Workloads and application drivers
#include "valign/apps/db_search.hpp"
#include "valign/apps/homology.hpp"
#include "valign/stats/karlin.hpp"
#include "valign/workload/generator.hpp"
