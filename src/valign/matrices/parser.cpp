#include "valign/matrices/parser.hpp"

#include <cctype>
#include <iomanip>
#include <istream>
#include <sstream>
#include <vector>

namespace valign {

namespace {

bool is_blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

ScoreMatrix parse_ncbi_matrix(std::string_view text, std::string name,
                              GapPenalty default_gaps) {
  std::istringstream in{std::string(text)};
  return parse_ncbi_matrix(in, std::move(name), default_gaps);
}

ScoreMatrix parse_ncbi_matrix(std::istream& in, std::string name,
                              GapPenalty default_gaps) {
  std::string line;
  std::string header_letters;

  // Column header: the first non-comment, non-blank line.
  while (std::getline(in, line)) {
    if (is_blank_or_comment(line)) continue;
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) {
      if (tok.size() != 1) {
        throw Error("matrix '" + name + "': bad header token '" + tok + "'");
      }
      header_letters.push_back(tok[0]);
    }
    break;
  }
  if (header_letters.empty()) {
    throw Error("matrix '" + name + "': missing column header");
  }

  const int n = static_cast<int>(header_letters.size());
  char wildcard = 0;
  if (header_letters.find('X') != std::string::npos) wildcard = 'X';
  else if (header_letters.find('N') != std::string::npos) wildcard = 'N';

  std::vector<std::int8_t> scores(static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(n));
  int row = 0;
  while (row < n && std::getline(in, line)) {
    if (is_blank_or_comment(line)) continue;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok.size() != 1 || tok[0] != header_letters[static_cast<std::size_t>(row)]) {
      throw Error("matrix '" + name + "': row " + std::to_string(row) +
                  " does not start with '" + header_letters[static_cast<std::size_t>(row)] + "'");
    }
    for (int col = 0; col < n; ++col) {
      int v = 0;
      if (!(ls >> v)) {
        throw Error("matrix '" + name + "': row '" + tok + "' has fewer than " +
                    std::to_string(n) + " scores");
      }
      if (v < -128 || v > 127) {
        throw Error("matrix '" + name + "': score " + std::to_string(v) +
                    " out of int8 range");
      }
      scores[static_cast<std::size_t>(row) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(col)] = static_cast<std::int8_t>(v);
    }
    int extra = 0;
    if (ls >> extra) {
      throw Error("matrix '" + name + "': row '" + tok + "' has more than " +
                  std::to_string(n) + " scores");
    }
    ++row;
  }
  if (row != n) {
    throw Error("matrix '" + name + "': expected " + std::to_string(n) +
                " rows, got " + std::to_string(row));
  }

  return ScoreMatrix(std::move(name), Alphabet(header_letters, wildcard),
                     std::move(scores), default_gaps);
}

std::string format_ncbi_matrix(const ScoreMatrix& m) {
  std::ostringstream os;
  os << "# " << m.name() << "\n  ";
  const int n = m.size();
  for (int j = 0; j < n; ++j) os << ' ' << std::setw(2) << m.alphabet().decode(j);
  os << "\n";
  for (int i = 0; i < n; ++i) {
    os << m.alphabet().decode(i) << ' ';
    for (int j = 0; j < n; ++j) os << ' ' << std::setw(2) << int{m.score(i, j)};
    os << "\n";
  }
  return os.str();
}

}  // namespace valign
