#include "valign/matrices/parser.hpp"

#include <cctype>
#include <iomanip>
#include <istream>
#include <sstream>
#include <vector>

namespace valign {

namespace {

using robust::StatusOr;
using robust::io_malformed;

/// Fuzz-found hardening bound: no real NCBI matrix has more than ~25
/// residues, so a header claiming hundreds of columns is garbage — reject it
/// before allocating n^2 cells.
constexpr std::size_t kMaxHeaderLetters = 64;

bool is_blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

StatusOr<ScoreMatrix> parse_impl(std::istream& in, std::string name,
                                 GapPenalty default_gaps) {
  const auto bad = [&name](const std::string& why) {
    return io_malformed("matrix '" + name + "': " + why);
  };

  std::string line;
  std::string header_letters;

  // Column header: the first non-comment, non-blank line.
  while (std::getline(in, line)) {
    if (is_blank_or_comment(line)) continue;
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) {
      if (tok.size() != 1 ||
          !std::isgraph(static_cast<unsigned char>(tok[0]))) {
        return bad("bad header token '" + tok + "'");
      }
      if (header_letters.find(tok[0]) != std::string::npos) {
        return bad(std::string("duplicate header letter '") + tok[0] + "'");
      }
      header_letters.push_back(tok[0]);
    }
    break;
  }
  if (header_letters.empty()) return bad("missing column header");
  if (header_letters.size() > kMaxHeaderLetters) {
    return bad("header has " + std::to_string(header_letters.size()) +
               " letters (limit " + std::to_string(kMaxHeaderLetters) + ")");
  }

  const int n = static_cast<int>(header_letters.size());
  char wildcard = 0;
  if (header_letters.find('X') != std::string::npos) wildcard = 'X';
  else if (header_letters.find('N') != std::string::npos) wildcard = 'N';

  std::vector<std::int8_t> scores(static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(n));
  int row = 0;
  while (row < n && std::getline(in, line)) {
    if (is_blank_or_comment(line)) continue;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok.size() != 1 || tok[0] != header_letters[static_cast<std::size_t>(row)]) {
      return bad("row " + std::to_string(row) + " does not start with '" +
                 header_letters[static_cast<std::size_t>(row)] + "'");
    }
    for (int col = 0; col < n; ++col) {
      // Token-wise parse: `ls >> int` accepts a leading numeric prefix of
      // garbage like "4x" and silently misparses NaN/overflow, so read the
      // whole token and convert it strictly.
      std::string cell;
      if (!(ls >> cell)) {
        return bad("row '" + tok + "' has fewer than " + std::to_string(n) +
                   " scores");
      }
      long v = 0;
      try {
        std::size_t pos = 0;
        v = std::stol(cell, &pos);
        if (pos != cell.size()) throw std::invalid_argument(cell);
      } catch (...) {
        return bad("row '" + tok + "' has non-integer score '" + cell + "'");
      }
      if (v < -128 || v > 127) {
        return bad("score " + std::to_string(v) + " out of int8 range");
      }
      scores[static_cast<std::size_t>(row) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(col)] = static_cast<std::int8_t>(v);
    }
    std::string extra;
    if (ls >> extra) {
      return bad("row '" + tok + "' has more than " + std::to_string(n) +
                 " scores");
    }
    ++row;
  }
  if (row != n) {
    return bad("expected " + std::to_string(n) + " rows, got " +
               std::to_string(row));
  }

  try {
    return ScoreMatrix(std::move(name), Alphabet(header_letters, wildcard),
                       std::move(scores), default_gaps);
  } catch (const Error& e) {
    // Alphabet/ScoreMatrix invariants (defense in depth): report, don't throw.
    return io_malformed(e.what());
  }
}

}  // namespace

StatusOr<ScoreMatrix> try_parse_ncbi_matrix(std::istream& in, std::string name,
                                            GapPenalty default_gaps) {
  return parse_impl(in, std::move(name), default_gaps);
}

StatusOr<ScoreMatrix> try_parse_ncbi_matrix(std::string_view text, std::string name,
                                            GapPenalty default_gaps) {
  std::istringstream in{std::string(text)};
  return parse_impl(in, std::move(name), default_gaps);
}

ScoreMatrix parse_ncbi_matrix(std::string_view text, std::string name,
                              GapPenalty default_gaps) {
  std::istringstream in{std::string(text)};
  return parse_ncbi_matrix(in, std::move(name), default_gaps);
}

ScoreMatrix parse_ncbi_matrix(std::istream& in, std::string name,
                              GapPenalty default_gaps) {
  StatusOr<ScoreMatrix> parsed = parse_impl(in, std::move(name), default_gaps);
  if (!parsed.ok()) robust::throw_status(parsed.status());
  return *std::move(parsed);
}

std::string format_ncbi_matrix(const ScoreMatrix& m) {
  std::ostringstream os;
  os << "# " << m.name() << "\n  ";
  const int n = m.size();
  for (int j = 0; j < n; ++j) os << ' ' << std::setw(2) << m.alphabet().decode(j);
  os << "\n";
  for (int i = 0; i < n; ++i) {
    os << m.alphabet().decode(i) << ' ';
    for (int j = 0; j < n; ++j) os << ' ' << std::setw(2) << int{m.score(i, j)};
    os << "\n";
  }
  return os.str();
}

}  // namespace valign
