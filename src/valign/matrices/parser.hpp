// Parser for NCBI-format substitution matrix files.
#pragma once

#include <iosfwd>
#include <string_view>

#include "valign/matrices/matrix.hpp"

namespace valign {

/// Parses the NCBI matrix text format:
///
///   # comment lines
///      A  R  N  D ...        <- column header: residues in code order
///   A  4 -1 -2 -2 ...        <- one row per residue
///   R -1  5  0 -2 ...
///
/// The alphabet is taken from the header (wildcard 'X'/'N' detected
/// automatically). Row characters must match the header order.
/// Throws valign::Error on malformed input.
[[nodiscard]] ScoreMatrix parse_ncbi_matrix(std::string_view text, std::string name,
                                            GapPenalty default_gaps);

/// Stream overload (reads to EOF).
[[nodiscard]] ScoreMatrix parse_ncbi_matrix(std::istream& in, std::string name,
                                            GapPenalty default_gaps);

/// Renders a matrix back into NCBI text format (round-trips with the parser).
[[nodiscard]] std::string format_ncbi_matrix(const ScoreMatrix& m);

}  // namespace valign
