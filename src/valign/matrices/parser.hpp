// Parser for NCBI-format substitution matrix files.
#pragma once

#include <iosfwd>
#include <string_view>

#include "valign/matrices/matrix.hpp"
#include "valign/robust/status.hpp"

namespace valign {

/// Parses the NCBI matrix text format:
///
///   # comment lines
///      A  R  N  D ...        <- column header: residues in code order
///   A  4 -1 -2 -2 ...        <- one row per residue
///   R -1  5  0 -2 ...
///
/// The alphabet is taken from the header (wildcard 'X'/'N' detected
/// automatically). Row characters must match the header order.
/// Throws valign::Error (robust::StatusError, code io_malformed) on
/// malformed input.
[[nodiscard]] ScoreMatrix parse_ncbi_matrix(std::string_view text, std::string name,
                                            GapPenalty default_gaps);

/// Stream overload (reads to EOF).
[[nodiscard]] ScoreMatrix parse_ncbi_matrix(std::istream& in, std::string name,
                                            GapPenalty default_gaps);

/// Non-throwing core: every malformed input — truncated files, non-numeric
/// or out-of-int8 cells, oversized or duplicated headers — comes back as a
/// Status (io_malformed) instead of an exception mid-parse. The throwing
/// overloads above are thin wrappers over these.
[[nodiscard]] robust::StatusOr<ScoreMatrix> try_parse_ncbi_matrix(
    std::string_view text, std::string name, GapPenalty default_gaps);
[[nodiscard]] robust::StatusOr<ScoreMatrix> try_parse_ncbi_matrix(
    std::istream& in, std::string name, GapPenalty default_gaps);

/// Renders a matrix back into NCBI text format (round-trips with the parser).
[[nodiscard]] std::string format_ncbi_matrix(const ScoreMatrix& m);

}  // namespace valign
