// Substitution matrices (BLOSUM family, DNA, identity) and lookups.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "valign/common.hpp"
#include "valign/io/alphabet.hpp"

namespace valign {

/// A residue-pair substitution score matrix plus its NCBI default gap
/// penalties (the defaults the paper uses in §VI-E / Fig. 5).
class ScoreMatrix {
 public:
  ScoreMatrix() = default;

  /// `scores` is row-major, size() x size() in the alphabet's code order.
  ScoreMatrix(std::string name, Alphabet alphabet,
              std::vector<std::int8_t> scores, GapPenalty default_gaps);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Alphabet& alphabet() const noexcept { return alphabet_; }
  [[nodiscard]] int size() const noexcept { return alphabet_.size(); }
  [[nodiscard]] GapPenalty default_gaps() const noexcept { return gaps_; }

  /// Score for the encoded residue pair (a, b).
  [[nodiscard]] std::int8_t score(int a, int b) const noexcept {
    return scores_[static_cast<std::size_t>(a) * static_cast<std::size_t>(size_) +
                   static_cast<std::size_t>(b)];
  }

  /// Score for a raw character pair (convenience; encodes through the alphabet).
  [[nodiscard]] std::int8_t score_chars(char a, char b) const;

  /// Row `a` of the matrix (used by profile construction).
  [[nodiscard]] std::span<const std::int8_t> row(int a) const noexcept {
    return {scores_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(size_),
            static_cast<std::size_t>(size_)};
  }

  [[nodiscard]] std::int8_t max_score() const noexcept { return max_; }
  [[nodiscard]] std::int8_t min_score() const noexcept { return min_; }

  /// True when score(a,b) == score(b,a) for all pairs.
  [[nodiscard]] bool symmetric() const noexcept;

  // --- Built-in matrices (NCBI data, §VI "Scoring Scheme Defaults") -------
  [[nodiscard]] static const ScoreMatrix& blosum45();
  [[nodiscard]] static const ScoreMatrix& blosum50();
  [[nodiscard]] static const ScoreMatrix& blosum62();
  [[nodiscard]] static const ScoreMatrix& blosum80();
  [[nodiscard]] static const ScoreMatrix& blosum90();

  /// Lookup by case-insensitive name ("blosum62", "BLOSUM80", …).
  /// Throws valign::Error for unknown names.
  [[nodiscard]] static const ScoreMatrix& from_name(std::string_view name);

  /// All built-in matrices, in the order the paper sweeps them (Fig. 5).
  [[nodiscard]] static std::span<const ScoreMatrix* const> builtins();

  /// Simple DNA matrix: `match` on the diagonal, `-mismatch` elsewhere,
  /// zero against the N wildcard.
  [[nodiscard]] static ScoreMatrix dna(std::int8_t match = 2, std::int8_t mismatch = 3);

 private:
  std::string name_;
  Alphabet alphabet_;
  std::vector<std::int8_t> scores_;
  GapPenalty gaps_{};
  int size_ = 0;
  std::int8_t max_ = 0;
  std::int8_t min_ = 0;
};

}  // namespace valign
