#include "valign/matrices/matrix.hpp"

#include <algorithm>
#include <cctype>

namespace valign {

ScoreMatrix::ScoreMatrix(std::string name, Alphabet alphabet,
                         std::vector<std::int8_t> scores, GapPenalty default_gaps)
    : name_(std::move(name)),
      alphabet_(std::move(alphabet)),
      scores_(std::move(scores)),
      gaps_(default_gaps),
      size_(alphabet_.size()) {
  const auto expected =
      static_cast<std::size_t>(size_) * static_cast<std::size_t>(size_);
  if (scores_.size() != expected) {
    throw Error("ScoreMatrix '" + name_ + "': got " + std::to_string(scores_.size()) +
                " scores, expected " + std::to_string(expected));
  }
  const auto [mn, mx] = std::minmax_element(scores_.begin(), scores_.end());
  min_ = *mn;
  max_ = *mx;
}

std::int8_t ScoreMatrix::score_chars(char a, char b) const {
  const int ca = alphabet_.encode(a);
  const int cb = alphabet_.encode(b);
  if (ca < 0 || cb < 0) {
    throw Error("ScoreMatrix '" + name_ + "': character outside alphabet");
  }
  return score(ca, cb);
}

bool ScoreMatrix::symmetric() const noexcept {
  for (int a = 0; a < size_; ++a)
    for (int b = a + 1; b < size_; ++b)
      if (score(a, b) != score(b, a)) return false;
  return true;
}

const ScoreMatrix& ScoreMatrix::from_name(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  for (const ScoreMatrix* m : builtins()) {
    if (m->name() == lower) return *m;
  }
  throw Error("unknown substitution matrix: " + std::string(name));
}

ScoreMatrix ScoreMatrix::dna(std::int8_t match, std::int8_t mismatch) {
  const Alphabet& a = Alphabet::dna();
  const int n = a.size();
  std::vector<std::int8_t> s(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  const int wild = a.encode(a.wildcard());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int8_t v = (i == j) ? match : static_cast<std::int8_t>(-mismatch);
      if (i == wild || j == wild) v = 0;
      s[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(j)] = v;
    }
  }
  return ScoreMatrix("dna", a, std::move(s), GapPenalty{10, 1});
}

}  // namespace valign
