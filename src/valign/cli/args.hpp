// Minimal command-line argument parser for the valign CLI.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "valign/common.hpp"
#include "valign/robust/status.hpp"

namespace valign::cli {

/// Parses `--flag value`, `--flag=value`, bare `--switch`, and positionals.
/// Flags must be registered before parse() so typos are diagnosed. All parse
/// failures throw robust::StatusError with code invalid_argument, which the
/// CLI maps to exit code 2 (usage error).
class ArgParser {
 public:
  /// Register a value-taking flag (e.g. "--matrix").
  void add_option(std::string name) { options_.insert(std::move(name)); }
  /// Register a boolean switch (e.g. "--traceback").
  void add_switch(std::string name) { switches_.insert(std::move(name)); }

  /// Throws robust::StatusError (invalid_argument) on unknown flags or
  /// missing values.
  void parse(std::span<const std::string_view> args) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string_view a = args[i];
      if (a.size() >= 2 && a.substr(0, 2) == "--") {
        const std::size_t eq = a.find('=');
        std::string name(eq == std::string_view::npos ? a : a.substr(0, eq));
        if (switches_.contains(name)) {
          if (eq != std::string_view::npos) {
            robust::throw_status(robust::invalid_argument(
                "switch " + name + " does not take a value"));
          }
          present_.insert(name);
        } else if (options_.contains(name)) {
          std::string value;
          if (eq != std::string_view::npos) {
            value = std::string(a.substr(eq + 1));
          } else {
            if (i + 1 >= args.size()) {
              robust::throw_status(
                  robust::invalid_argument("missing value for " + name));
            }
            value = std::string(args[++i]);
          }
          values_[name] = std::move(value);
        } else {
          robust::throw_status(robust::invalid_argument(
              "unknown flag: " + name + " (see valign --help)"));
        }
      } else {
        positionals_.emplace_back(a);
      }
    }
  }

  [[nodiscard]] bool has(std::string_view name) const {
    return present_.contains(std::string(name)) ||
           values_.contains(std::string(name));
  }

  [[nodiscard]] std::optional<std::string> value(std::string_view name) const {
    const auto it = values_.find(std::string(name));
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string value_or(std::string_view name,
                                     std::string fallback) const {
    return value(name).value_or(std::move(fallback));
  }

  [[nodiscard]] long int_value_or(std::string_view name, long fallback) const {
    const auto v = value(name);
    if (!v) return fallback;
    try {
      std::size_t pos = 0;
      const long r = std::stol(*v, &pos);
      if (pos != v->size()) throw Error("");
      return r;
    } catch (const robust::StatusError&) {
      throw;
    } catch (...) {
      robust::throw_status(robust::invalid_argument(
          "flag " + std::string(name) + " expects an integer, got '" + *v + "'"));
    }
  }

  [[nodiscard]] double double_value_or(std::string_view name, double fallback) const {
    const auto v = value(name);
    if (!v) return fallback;
    try {
      std::size_t pos = 0;
      const double r = std::stod(*v, &pos);
      if (pos != v->size()) throw Error("");
      return r;
    } catch (const robust::StatusError&) {
      throw;
    } catch (...) {
      robust::throw_status(robust::invalid_argument(
          "flag " + std::string(name) + " expects a number, got '" + *v + "'"));
    }
  }

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

 private:
  std::set<std::string> options_;
  std::set<std::string> switches_;
  std::set<std::string> present_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace valign::cli
