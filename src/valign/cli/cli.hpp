// The valign command-line interface, implemented as a library function so the
// tests can drive it directly.
//
//   valign align  <query.fa> <db.fa> | --q-seq SEQ --d-seq SEQ  [options]
//   valign search <queries.fa> <db.fa> [--top N] [options]
//   valign generate --out FILE [--count N] [--preset P] [--seed S] [--dna]
//   valign matrices [NAME]
//   valign stats [--matrix M] [--gap-open O] [--gap-extend E]
//   valign info
//
// Common options: --class nw|sg|sw, --matrix NAME, --gap-open N,
// --gap-extend N, --approach scalar|blocked|diagonal|striped|scan|auto,
// --isa emul|sse41|avx2|avx512|auto, --dna, --traceback (align only),
// --threads N / --top N / --pair-sched query|pair|auto /
// --cache-engines on|off / --stream (search only).
#pragma once

#include <iosfwd>
#include <span>
#include <string_view>

namespace valign::cli {

/// Runs the CLI. `args` excludes the program name. Writes results to `out`
/// and diagnostics to `err`; returns a process exit code.
int run(std::span<const std::string_view> args, std::ostream& out, std::ostream& err);

/// The usage text printed by `valign --help`.
[[nodiscard]] const char* usage();

}  // namespace valign::cli
