#include "valign/cli/cli.hpp"

#include <optional>
#include <ostream>
#include <sstream>

#include <fstream>

#include "valign/apps/bench_diff.hpp"
#include "valign/apps/db_search.hpp"
#include "valign/apps/homology.hpp"
#include "valign/cli/args.hpp"
#include "valign/core/calibrate.hpp"
#include "valign/core/dispatch.hpp"
#include "valign/core/scalar.hpp"
#include "valign/io/fasta.hpp"
#include "valign/matrices/parser.hpp"
#include "valign/obs/bench_report.hpp"
#include "valign/obs/flush.hpp"
#include "valign/obs/perf.hpp"
#include "valign/obs/query_trace.hpp"
#include "valign/obs/report.hpp"
#include "valign/obs/trace.hpp"
#include "valign/robust/failpoint.hpp"
#include "valign/robust/quarantine.hpp"
#include "valign/robust/status.hpp"
#include "valign/runtime/scheduler.hpp"
#include "valign/stats/karlin.hpp"
#include "valign/version.hpp"
#include "valign/workload/generator.hpp"

namespace valign::cli {

namespace {

constexpr const char* kUsage = R"(valign — SIMD pairwise sequence alignment

usage:
  valign align  <query.fa> <db.fa>            pairwise-align first records
  valign align  --q-seq SEQ --d-seq SEQ       pairwise-align literal sequences
  valign search <queries.fa> <db.fa>          database search with top hits
  valign detect <seqs.fa>                     all-to-all homology clustering
  valign generate --out FILE                  write a synthetic FASTA dataset
  valign matrices [NAME]                      list or print scoring matrices
  valign stats                                Karlin-Altschul parameters
  valign calibrate                            measure engine crossovers on this host
  valign bench-diff <base.json> <cur.json>    compare two bench reports
  valign info                                 version and CPU capabilities

common options:
  --class nw|sg|sw          alignment class (default sw)
  --matrix NAME             substitution matrix (default blosum62)
  --gap-open N --gap-extend N   penalties (default: matrix's NCBI defaults)
  --approach scalar|blocked|diagonal|striped|scan|deconstructed|auto   (default auto)
  --isa emul|sse41|avx2|avx512|auto                      (default auto)
  --dna                     DNA alphabet and +2/-3 matrix
  --metrics-out FILE        write a run report (JSON; CSV when FILE ends in .csv)
  --trace                   fine-grained spans; prints the per-stage time budget
  --perf-counters           attach hardware counters (perf_event_open) to stages
                            and the whole run; degrades to "hw": {"available":
                            false, ...} in the report where perf is unavailable
align options:
  --traceback               print the alignment itself
search/detect options:
  --top N                   hits per query (default 5; search only)
  --threshold N             homology edge score threshold (default 60; detect only)
  --threads N               worker threads (default 1)
  --pair-sched query|pair|auto   work partitioning granularity (default auto)
  --engine intra|inter|auto  engine family: one pair per engine vs lane-packed
                            batches (search only; default auto — see docs/interseq.md)
  --cache-engines on|off    reuse engines across width/approach switches (default on)
  --prefilter off|auto|force   two-stage search: i8 score-only prescreen, then
                            escalate survivors through the full ladder (search
                            only; default auto — see docs/prefilter.md)
  --stream                  stream the database FASTA through the runtime pipeline
  --trace-timeline FILE     per-query Chrome-trace/Perfetto timeline of the run
                            (search only; open in ui.perfetto.dev — see
                            docs/observability.md)
  --metrics-interval-ms N   rewrite --metrics-out atomically every N ms while
                            the search runs (search only; requires --metrics-out)
robustness options (search only; docs/robustness.md):
  --lenient                 quarantine malformed/oversized db records instead of
                            failing the run (tallied in the report)
  --max-errors N            tolerate up to N failed shards/blocks (default 0)
  --max-seq-len N           quarantine (lenient) or reject records longer than N
  --stall-timeout-ms N      watchdog: fail fast when the pipeline makes no
                            progress for N ms (default 0 = off; --stream only)
  --fail-inject SPEC[,..]   arm failpoints, SPEC = name[:prob[:count]]; needs a
                            build with -DVALIGN_ENABLE_FAILPOINTS=ON (also via
                            env VALIGN_FAILPOINTS / VALIGN_FAILPOINT_SEED)
generate options:
  --out FILE --count N --seed S --preset bacteria2k|uniprot --dna
bench-diff options:
  --threshold-pct P         median-seconds noise threshold in % (default 5);
                            exit code 1 when any scenario regresses beyond it
)";

/// Shorthand for a usage error (exit code 2 via the StatusError taxonomy).
[[noreturn]] void usage_error(const std::string& msg) {
  robust::throw_status(robust::invalid_argument(msg));
}

AlignClass parse_class(const std::string& s) {
  if (s == "nw" || s == "global") return AlignClass::Global;
  if (s == "sg" || s == "semiglobal") return AlignClass::SemiGlobal;
  if (s == "sw" || s == "local") return AlignClass::Local;
  usage_error("unknown alignment class: " + s + " (expected nw|sg|sw)");
}

Approach parse_approach(const std::string& s) {
  if (s == "scalar") return Approach::Scalar;
  if (s == "blocked") return Approach::Blocked;
  if (s == "diagonal") return Approach::Diagonal;
  if (s == "striped") return Approach::Striped;
  if (s == "scan") return Approach::Scan;
  if (s == "deconstructed") return Approach::Deconstructed;
  if (s == "auto") return Approach::Auto;
  usage_error("unknown approach: " + s +
              " (expected scalar|blocked|diagonal|striped|scan|deconstructed|auto)");
}

bool parse_on_off(const std::string& s, const char* flag) {
  if (s == "on" || s == "1" || s == "true") return true;
  if (s == "off" || s == "0" || s == "false") return false;
  usage_error(std::string(flag) + ": expected on|off, got " + s);
}

Isa parse_isa(const std::string& s) {
  if (s == "emul") return Isa::Emul;
  if (s == "sse41" || s == "sse4.1") return Isa::SSE41;
  if (s == "avx2") return Isa::AVX2;
  if (s == "avx512") return Isa::AVX512;
  if (s == "auto") return Isa::Auto;
  usage_error("unknown isa: " + s + " (expected emul|sse41|avx2|avx512|auto)");
}

/// Non-negative integer flag; anything else is a usage error.
std::uint64_t uint_flag_or(const ArgParser& args, const char* name,
                           std::uint64_t fallback) {
  const long v = args.int_value_or(name, -1);
  if (!args.has(name)) return fallback;
  if (v < 0) usage_error(std::string(name) + " must be >= 0");
  return static_cast<std::uint64_t>(v);
}

/// Resolves the degraded-mode policy flags (docs/robustness.md).
robust::RobustPolicy resolve_robust_policy(const ArgParser& args) {
  robust::RobustPolicy policy;
  policy.lenient = args.has("--lenient");
  policy.max_errors = uint_flag_or(args, "--max-errors", 0);
  policy.max_sequence_length = static_cast<std::size_t>(
      uint_flag_or(args, "--max-seq-len", policy.max_sequence_length));
  if (policy.max_sequence_length == 0) usage_error("--max-seq-len must be > 0");
  policy.stall_timeout_ms = uint_flag_or(args, "--stall-timeout-ms", 0);
  return policy;
}

/// Resolved scoring scheme. The DNA matrix is owned (value member) so the
/// struct is safely copyable/movable; mat() picks the right table.
struct Scoring {
  bool use_dna = false;
  ScoreMatrix dna_matrix;
  const ScoreMatrix* named = nullptr;
  GapPenalty gap{};

  [[nodiscard]] const ScoreMatrix& mat() const { return use_dna ? dna_matrix : *named; }
};

Scoring resolve_scoring(const ArgParser& args) {
  Scoring s;
  if (args.has("--dna")) {
    s.use_dna = true;
    s.dna_matrix = ScoreMatrix::dna();
  } else {
    s.named = &ScoreMatrix::from_name(args.value_or("--matrix", "blosum62"));
  }
  const long open = args.int_value_or("--gap-open", -1);
  const long extend = args.int_value_or("--gap-extend", -1);
  s.gap = s.mat().default_gaps();
  if (open >= 0) s.gap.open = static_cast<int>(open);
  if (extend >= 0) s.gap.extend = static_cast<int>(extend);
  return s;
}

Options resolve_options(const ArgParser& args, const Scoring& scoring) {
  Options opts;
  opts.klass = parse_class(args.value_or("--class", "sw"));
  opts.approach = parse_approach(args.value_or("--approach", "auto"));
  opts.isa = parse_isa(args.value_or("--isa", "auto"));
  opts.matrix = &scoring.mat();
  opts.gap = scoring.gap;
  return opts;
}

const Alphabet& alphabet_for(const ArgParser& args) {
  return args.has("--dna") ? Alphabet::dna() : Alphabet::protein();
}

/// RunReport skeleton shared by the search/detect drivers: identity and
/// configuration; the caller fills workload/perf and calls emit_run_report.
obs::RunReport make_run_report(const char* command, const Scoring& scoring,
                               const Options& opts, int threads,
                               runtime::PairSched sched, bool streamed,
                               EngineMode engine = EngineMode::Intra) {
  obs::RunReport rr;
  rr.command = command;
  rr.align_class = to_string(opts.klass);
  rr.approach = to_string(opts.approach);
  rr.isa = to_string(opts.isa == Isa::Auto ? simd::best_isa() : opts.isa);
  rr.matrix = scoring.mat().name();
  rr.gap_open = scoring.gap.open;
  rr.gap_extend = scoring.gap.extend;
  rr.threads = threads;
  rr.sched = runtime::to_string(sched);
  rr.engine = to_string(engine);
  rr.streamed = streamed;
  rr.cache_engines = opts.cache_engines;
  return rr;
}

void set_cache_stats(obs::RunReport& rr, const runtime::EngineCacheStats& c) {
  rr.cache_lookups = c.lookups;
  rr.cache_hits = c.hits;
  rr.cache_builds = c.builds;
  rr.cache_evictions = c.evictions;
  rr.cache_profile_sets = c.profile_sets;
}

void set_profile_cache_stats(obs::RunReport& rr, const ProfileCacheStats& c) {
  rr.profile_cache_lookups = c.lookups;
  rr.profile_cache_hits = c.hits;
  rr.profile_cache_builds = c.builds;
  rr.profile_cache_evictions = c.evictions;
  rr.profile_cache_fast_builds = c.fast_builds;
}

/// Captures the global stage table / registry into `rr`, writes the report
/// when --metrics-out was given, and prints the stage budget under --trace.
void emit_run_report(obs::RunReport& rr, const ArgParser& args, std::ostream& out) {
  rr.capture_environment();
  if (const auto path = args.value("--metrics-out")) rr.write_file(*path);
  if (obs::trace_enabled()) {
    out << "# stage budget (s):";
    for (int s = 0; s < obs::kStageCount; ++s) {
      out << " " << obs::to_string(static_cast<obs::Stage>(s)) << "="
          << rr.stages[static_cast<std::size_t>(s)].seconds();
    }
    out << "\n";
  }
}

int cmd_align(const ArgParser& args, std::ostream& out) {
  const Scoring scoring = resolve_scoring(args);
  const Options opts = resolve_options(args, scoring);
  const Alphabet& alpha = alphabet_for(args);

  Sequence q, d;
  if (args.has("--q-seq") || args.has("--d-seq")) {
    if (!args.has("--q-seq") || !args.has("--d-seq")) {
      usage_error("align: --q-seq and --d-seq must be given together");
    }
    q = Sequence("query", *args.value("--q-seq"), alpha);
    d = Sequence("subject", *args.value("--d-seq"), alpha);
  } else {
    if (args.positionals().size() != 3) {  // "align" + two paths
      usage_error("align: expected <query.fa> <db.fa> or --q-seq/--d-seq");
    }
    const Dataset qs = read_fasta_file(args.positionals()[1], alpha);
    const Dataset ds = read_fasta_file(args.positionals()[2], alpha);
    if (qs.empty() || ds.empty()) throw Error("align: empty FASTA input");
    q = qs[0];
    d = ds[0];
  }

  const AlignResult r = align(q, d, opts);
  out << "query   : " << q.name() << " (" << q.size() << " residues)\n";
  out << "subject : " << d.name() << " (" << d.size() << " residues)\n";
  out << "class   : " << to_string(opts.klass) << "  matrix: " << scoring.mat().name()
      << "  gaps: " << scoring.gap.open << "/" << scoring.gap.extend << "\n";
  out << "engine  : " << to_string(r.approach) << " @ " << to_string(r.isa) << ", "
      << r.lanes << " lanes x " << r.bits << "-bit\n";
  out << "score   : " << r.score;
  if (r.query_end >= 0) {
    out << "  (ends: query " << r.query_end << ", subject " << r.db_end << ")";
  }
  out << "\n";

  if (args.has("--traceback")) {
    const Traceback tb = align_traceback(opts.klass, scoring.mat(), scoring.gap,
                                         q, d, opts.sg_ends);
    out << "identity: " << static_cast<int>(100.0 * tb.identity())
        << "%  cigar: " << tb.cigar << "\n";
    // Wrap the alignment at 60 columns.
    const std::size_t len = tb.aligned_query.size();
    for (std::size_t i = 0; i < len; i += 60) {
      const std::size_t w = std::min<std::size_t>(60, len - i);
      out << "  " << tb.aligned_query.substr(i, w) << "\n";
      out << "  " << tb.midline.substr(i, w) << "\n";
      out << "  " << tb.aligned_db.substr(i, w) << "\n\n";
    }
  }
  return 0;
}

int cmd_search(const ArgParser& args, std::ostream& out) {
  if (args.positionals().size() != 3) {
    usage_error("search: expected <queries.fa> <db.fa>");
  }
  obs::PerfScope run_perf(obs::kHwRunSlot);
  const Scoring scoring = resolve_scoring(args);
  const Alphabet& alpha = alphabet_for(args);
  const bool streamed = args.has("--stream");

  apps::SearchConfig cfg;
  cfg.align = resolve_options(args, scoring);
  cfg.align.cache_engines = parse_on_off(args.value_or("--cache-engines", "on"),
                                         "--cache-engines");
  cfg.top_k = static_cast<int>(args.int_value_or("--top", 5));
  cfg.threads = static_cast<int>(args.int_value_or("--threads", 1));
  cfg.sched = runtime::parse_pair_sched(args.value_or("--pair-sched", "auto"));
  cfg.engine = runtime::parse_engine_mode(args.value_or("--engine", "auto"));
  cfg.prefilter = runtime::parse_prefilter_mode(args.value_or("--prefilter", "auto"));
  cfg.robust = resolve_robust_policy(args);
  if (cfg.robust.stall_timeout_ms > 0 && !streamed) {
    usage_error("--stall-timeout-ms requires --stream (the watchdog guards the "
                "streaming pipeline)");
  }

  const auto timeline_path = args.value("--trace-timeline");
  if (timeline_path) {
    if (!obs::query_trace_compiled()) {
      usage_error("--trace-timeline requires a build with request tracing "
                  "compiled in (configure with -DVALIGN_ENABLE_QUERY_TRACE=ON)");
    }
    obs::query_trace_reset();
    obs::set_query_trace_enabled(true);
    obs::set_trace_thread_name("main");
  }
  const std::uint64_t metrics_interval_ms =
      uint_flag_or(args, "--metrics-interval-ms", 0);
  if (metrics_interval_ms > 0 && !args.has("--metrics-out")) {
    usage_error("--metrics-interval-ms requires --metrics-out (the periodic "
                "flusher needs a snapshot path)");
  }
  std::optional<obs::MetricsFlusher> flusher;
  if (metrics_interval_ms > 0) {
    flusher.emplace(*args.value("--metrics-out"), metrics_interval_ms,
                    make_run_report("search", scoring, cfg.align, cfg.threads,
                                    cfg.sched, streamed, cfg.engine));
  }

  obs::StageSpan parse_span(obs::Stage::Parse);
  const Dataset queries = read_fasta_file(args.positionals()[1], alpha);
  Dataset db(alpha);
  apps::SearchReport rep;
  if (streamed) {
    parse_span.stop();  // search_stream times its own producer loop
    std::ifstream in(args.positionals()[2]);
    if (!in) {
      throw robust::StatusError(robust::StatusCode::IoTruncated,
                                "cannot open FASTA file: " + args.positionals()[2]);
    }
    rep = apps::search_stream(queries, in, alpha, cfg, &db);
  } else {
    // Lenient parsing applies to the database in batch mode too; queries stay
    // strict (silently dropping a query would change the answer's shape).
    const FastaReaderConfig db_cfg{cfg.robust.lenient,
                                   cfg.robust.max_sequence_length};
    robust::QuarantineStats quarantine;
    db = read_fasta_file(args.positionals()[2], alpha, db_cfg, &quarantine);
    parse_span.stop();
    rep = apps::search(queries, db, cfg);
    rep.quarantine = quarantine;
    robust::publish_quarantine_stats(rep.quarantine);
  }
  const stats::KarlinParams params = stats::lookup_params(scoring.mat(), scoring.gap);
  const std::uint64_t db_residues = db.total_residues();

  obs::StageSpan report_span(obs::Stage::Report);
  out << "# " << queries.size() << " queries x " << db.size() << " subjects, "
      << rep.alignments << " alignments in " << rep.seconds << " s ("
      << rep.gcups() << " GCUPS real, " << rep.gcups_padded() << " padded)\n";
  if (rep.prefilter.enabled) {
    out << "# prefilter: " << rep.prefilter.screened << " pairs screened, "
        << rep.prefilter.escaped << " escaped full DP, " << rep.prefilter.escalated
        << " escalated (" << static_cast<int>(100.0 * rep.prefilter.selectivity())
        << "% selectivity, " << rep.prefilter.saturated << " saturated)\n";
  }
  if (!rep.quarantine.empty() || rep.worker_errors > 0 || rep.shard_retries > 0) {
    out << "# degraded: " << rep.quarantine.records << " record(s) quarantined, "
        << rep.worker_errors << " shard failure(s), " << rep.records_dropped
        << " result(s) dropped, " << rep.shard_retries << " retrie(s)\n";
  }
  out << "# query\tsubject\tscore\tbits\tevalue\n";
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (const apps::SearchHit& h : rep.top_hits[qi]) {
      std::ostringstream ev;
      ev.precision(2);
      ev << std::scientific << stats::evalue(params, h.score, queries[qi].size(),
                                             db_residues);
      out << queries[qi].name() << "\t" << db[h.db_index].name() << "\t" << h.score
          << "\t" << static_cast<int>(stats::bit_score(params, h.score)) << "\t"
          << ev.str() << "\n";
    }
  }
  report_span.stop();

  obs::RunReport rr = make_run_report("search", scoring, cfg.align, cfg.threads,
                                      cfg.sched, streamed, cfg.engine);
  rr.queries = queries.size();
  rr.subjects = db.size();
  rr.alignments = rep.alignments;
  rr.cells_real = rep.cells_real;
  rr.seconds = rep.seconds;
  rr.gcups_real = rep.gcups();
  rr.gcups_padded = rep.gcups_padded();
  rr.width_counts = rep.width_counts;
  rr.totals = rep.totals;
  set_cache_stats(rr, rep.cache);
  set_profile_cache_stats(rr, rep.profile_cache);
  rr.lenient = cfg.robust.lenient;
  rr.max_errors = cfg.robust.max_errors;
  rr.quarantined = rep.quarantine.records;
  rr.quarantined_malformed = rep.quarantine.malformed;
  rr.quarantined_oversized = rep.quarantine.oversized;
  rr.quarantined_truncated = rep.quarantine.truncated;
  rr.worker_errors = rep.worker_errors;
  rr.shard_retries = rep.shard_retries;
  rr.records_dropped = rep.records_dropped;
  rr.prefilter_mode = to_string(cfg.prefilter);
  rr.prefilter_enabled = rep.prefilter.enabled;
  rr.prefilter_screened = rep.prefilter.screened;
  rr.prefilter_escaped = rep.prefilter.escaped;
  rr.prefilter_escalated = rep.prefilter.escalated;
  rr.prefilter_saturated = rep.prefilter.saturated;
  rr.prefilter_screen_failures = rep.prefilter.screen_failures;
  rr.prefilter_chunks = rep.prefilter.chunks;
  rr.prefilter_screen_cells = rep.prefilter.screen_cells;
  rr.prefilter_selectivity = rep.prefilter.selectivity();
  run_perf.stop();  // close the whole-run counter window before the snapshot
  // Final report last: the flusher's final live snapshot must not race the
  // exit-time report onto the same path.
  if (flusher.has_value()) {
    flusher->stop();
    rr.snapshot_seq = flusher->flushes();
  }
  emit_run_report(rr, args, out);
  if (timeline_path) {
    obs::set_query_trace_enabled(false);
    const obs::TimelineWriter writer(obs::collect_query_trace());
    writer.write_file(*timeline_path);
    out << "# trace timeline: " << writer.log().event_count() << " events ("
        << writer.log().dropped << " dropped) -> " << *timeline_path << "\n";
  }
  return 0;
}

int cmd_detect(const ArgParser& args, std::ostream& out) {
  if (args.positionals().size() != 2) {
    usage_error("detect: expected <seqs.fa>");
  }
  obs::PerfScope run_perf(obs::kHwRunSlot);
  const Scoring scoring = resolve_scoring(args);
  const Alphabet& alpha = alphabet_for(args);

  apps::HomologyConfig cfg;
  cfg.align = resolve_options(args, scoring);
  cfg.align.cache_engines = parse_on_off(args.value_or("--cache-engines", "on"),
                                         "--cache-engines");
  cfg.score_threshold = static_cast<std::int32_t>(args.int_value_or("--threshold", 60));
  cfg.threads = static_cast<int>(args.int_value_or("--threads", 1));
  cfg.sched = runtime::parse_pair_sched(args.value_or("--pair-sched", "auto"));

  obs::StageSpan parse_span(obs::Stage::Parse);
  const Dataset ds = read_fasta_file(args.positionals()[1], alpha);
  parse_span.stop();

  const apps::HomologyReport rep = apps::detect(ds, cfg);

  obs::StageSpan report_span(obs::Stage::Report);
  out << "# " << ds.size() << " sequences, " << rep.alignments << " alignments in "
      << rep.seconds << " s\n";
  out << "# threshold " << cfg.score_threshold << ": " << rep.edges.size()
      << " edges, " << rep.cluster_count << " clusters\n";
  out << "# a\tb\tscore\n";
  for (const apps::HomologyEdge& e : rep.edges) {
    out << ds[e.a].name() << "\t" << ds[e.b].name() << "\t" << e.score << "\n";
  }
  report_span.stop();

  obs::RunReport rr = make_run_report("detect", scoring, cfg.align, cfg.threads,
                                      cfg.sched, false);
  rr.queries = ds.size();
  rr.subjects = ds.size();
  rr.alignments = rep.alignments;
  rr.cells_real = rep.cells_real;
  rr.seconds = rep.seconds;
  if (rep.seconds > 0.0) {
    rr.gcups_real = static_cast<double>(rep.cells_real) / rep.seconds / 1e9;
    rr.gcups_padded = static_cast<double>(rep.totals.cells) / rep.seconds / 1e9;
  }
  rr.width_counts = rep.width_counts;
  rr.totals = rep.totals;
  set_cache_stats(rr, rep.cache);
  set_profile_cache_stats(rr, rep.profile_cache);
  run_perf.stop();  // close the whole-run counter window before the snapshot
  emit_run_report(rr, args, out);
  return 0;
}

int cmd_generate(const ArgParser& args, std::ostream& out) {
  const auto path = args.value("--out");
  if (!path) usage_error("generate: --out FILE is required");
  workload::GeneratorConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.int_value_or("--seed", 1));
  cfg.dna = args.has("--dna");
  const std::string preset = args.value_or("--preset", "bacteria2k");
  std::size_t count = 0;
  if (preset == "bacteria2k") {
    cfg.lengths = workload::LengthModel::bacteria_protein();
    count = 2000;
  } else if (preset == "uniprot") {
    cfg.lengths = workload::LengthModel::uniprot_protein();
    count = 10000;
  } else {
    usage_error("generate: unknown preset " + preset +
                " (expected bacteria2k|uniprot)");
  }
  count = static_cast<std::size_t>(args.int_value_or("--count", static_cast<long>(count)));
  const Dataset ds = workload::generate(count, cfg);
  write_fasta_file(*path, ds);
  out << "wrote " << ds.size() << " sequences (" << ds.total_residues()
      << " residues, mean " << static_cast<int>(ds.mean_length()) << ") to " << *path
      << "\n";
  return 0;
}

int cmd_bench_diff(const ArgParser& args, std::ostream& out) {
  if (args.positionals().size() != 3) {  // "bench-diff" + two report paths
    usage_error("bench-diff: expected <baseline.json> <current.json>");
  }
  const obs::BenchReport baseline =
      obs::BenchReport::read_file(args.positionals()[1]);
  const obs::BenchReport current =
      obs::BenchReport::read_file(args.positionals()[2]);
  apps::BenchDiffConfig cfg;
  if (const auto t = args.value("--threshold-pct")) {
    cfg.threshold_pct = args.double_value_or("--threshold-pct", 0.0);
    if (cfg.threshold_pct < 0.0) usage_error("bench-diff: --threshold-pct < 0");
  }
  const apps::BenchDiffResult result = apps::bench_diff(baseline, current, cfg);
  print_bench_diff(out, result, cfg);
  return result.has_regression() ? 1 : 0;
}

int cmd_matrices(const ArgParser& args, std::ostream& out) {
  if (args.positionals().size() >= 2) {
    const ScoreMatrix& m = ScoreMatrix::from_name(args.positionals()[1]);
    out << format_ncbi_matrix(m);
    return 0;
  }
  out << "built-in matrices (with NCBI default gap penalties):\n";
  for (const ScoreMatrix* m : ScoreMatrix::builtins()) {
    out << "  " << m->name() << "  gaps " << m->default_gaps().open << "/"
        << m->default_gaps().extend << "  scores [" << int{m->min_score()} << ", "
        << int{m->max_score()} << "]\n";
  }
  return 0;
}

int cmd_stats(const ArgParser& args, std::ostream& out) {
  const Scoring scoring = resolve_scoring(args);
  const stats::KarlinParams gapped = stats::lookup_params(scoring.mat(), scoring.gap);
  const stats::KarlinParams ungapped = stats::ungapped_params(scoring.mat());
  out << "matrix " << scoring.mat().name() << ", gaps " << scoring.gap.open << "/"
      << scoring.gap.extend << "\n";
  out << "ungapped: lambda=" << ungapped.lambda << " K=" << ungapped.k
      << " H=" << ungapped.h << "\n";
  out << "in use  : lambda=" << gapped.lambda << " K=" << gapped.k
      << (gapped.gapped ? " (published gapped)" : " (ungapped fallback)") << "\n";
  return 0;
}

int cmd_calibrate(std::ostream& out) {
  out << "measuring Striped/Scan crossovers on this host (a few seconds)...\n";
  const PrescriptionTable measured = calibrate();
  out << "measured:\n" << measured.to_string();
  out << "paper (Table IV):\n" << PrescriptionTable::paper().to_string();
  out << "measuring the three-engine model "
         "(striped/scan/deconstructed)...\n";
  const EngineModel engines = calibrate_engines();
  out << "measured:\n" << engines.to_string();
  out << "pinned (reference host):\n" << EngineModel::pinned().to_string();
  return 0;
}

int cmd_info(std::ostream& out) {
  out << "valign " << version() << "\n";
  const simd::CpuFeatures& f = simd::cpu_features();
  out << "cpu: sse4.1=" << (f.sse41 ? "yes" : "no") << " avx2="
      << (f.avx2 ? "yes" : "no") << " avx512bw=" << (f.avx512bw ? "yes" : "no")
      << "\n";
  out << "best isa: " << to_string(simd::best_isa()) << "\n";
  out << "lanes at 8/16/32-bit:";
  for (const Isa isa : {Isa::SSE41, Isa::AVX2, Isa::AVX512}) {
    if (!simd::isa_available(isa)) continue;
    out << "  " << to_string(isa) << "=" << simd::native_lanes(isa, 8) << "/"
        << simd::native_lanes(isa, 16) << "/" << simd::native_lanes(isa, 32);
  }
  out << "\n";
  return 0;
}

}  // namespace

const char* usage() { return kUsage; }

int run(std::span<const std::string_view> args, std::ostream& out, std::ostream& err) {
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "help") {
      out << kUsage;
      return args.empty() ? 2 : 0;
    }
    ArgParser parser;
    for (const char* opt :
         {"--class", "--matrix", "--gap-open", "--gap-extend", "--approach", "--isa",
          "--q-seq", "--d-seq", "--top", "--threads", "--out", "--count", "--seed",
          "--preset", "--pair-sched", "--engine", "--cache-engines", "--threshold",
          "--metrics-out", "--threshold-pct", "--fail-inject", "--max-errors",
          "--max-seq-len", "--stall-timeout-ms", "--prefilter", "--trace-timeline",
          "--metrics-interval-ms"}) {
      parser.add_option(opt);
    }
    for (const char* sw : {"--dna", "--traceback", "--stream", "--trace",
                           "--perf-counters", "--lenient"}) {
      parser.add_switch(sw);
    }
    parser.parse(args);
    obs::set_trace_enabled(parser.has("--trace"));
    obs::set_perf_enabled(parser.has("--perf-counters"));

    const std::string& cmd = parser.positionals().empty() ? std::string()
                                                          : parser.positionals()[0];
    // Flags whose semantics only exist under `search`: rejecting them early
    // beats silently ignoring a policy the user thought was in force.
    if (cmd != "search") {
      for (const char* f : {"--stream", "--engine", "--lenient", "--max-errors",
                            "--max-seq-len", "--stall-timeout-ms", "--prefilter",
                            "--trace-timeline", "--metrics-interval-ms"}) {
        if (parser.has(f)) {
          usage_error(std::string(f) + " is only valid with the search command");
        }
      }
    }

    // Failpoint arming: the env path is always consulted (chaos harnesses set
    // it around any command); the flag path additionally diagnoses builds
    // compiled without injection sites.
    if (const robust::Status s = robust::FailpointRegistry::global().arm_from_env();
        !s) {
      usage_error(s.message());
    }
    if (const auto spec = parser.value("--fail-inject")) {
      if (!robust::failpoints_compiled()) {
        usage_error("--fail-inject requires a build with failpoints compiled in "
                    "(configure with -DVALIGN_ENABLE_FAILPOINTS=ON)");
      }
      if (const robust::Status s =
              robust::FailpointRegistry::global().arm_specs(*spec);
          !s) {
        usage_error(s.message());
      }
    }

    if (cmd == "align") return cmd_align(parser, out);
    if (cmd == "search") return cmd_search(parser, out);
    if (cmd == "detect") return cmd_detect(parser, out);
    if (cmd == "generate") return cmd_generate(parser, out);
    if (cmd == "matrices") return cmd_matrices(parser, out);
    if (cmd == "stats") return cmd_stats(parser, out);
    if (cmd == "calibrate") return cmd_calibrate(out);
    if (cmd == "bench-diff") return cmd_bench_diff(parser, out);
    if (cmd == "info") return cmd_info(out);
    err << "unknown command: " << cmd << "\n" << kUsage;
    return 2;
  } catch (const robust::StatusError& e) {
    // Taxonomy-aware exit codes: usage errors are 2 (shell convention for
    // "you called it wrong"), runtime failures are 1.
    if (e.code() == robust::StatusCode::InvalidArgument) {
      err << "error: " << e.status().message() << "\n";
      err << "run 'valign --help' for usage\n";
      return 2;
    }
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace valign::cli
