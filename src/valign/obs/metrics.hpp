// Thread-safe metrics registry: named counters, gauges and fixed-bucket
// histograms shared by the runtime, the drivers and the benches.
//
// Design rules, in order of importance:
//   1. Updates are lock-free (single atomic RMW). Registration takes a mutex
//      but happens once per metric; hot paths hold a Counter&/Histogram&
//      obtained at setup, never a name lookup per increment.
//   2. Metric objects are never destroyed or moved while the registry lives,
//      so references handed out stay valid (node-stable storage).
//   3. Everything is exportable: snapshot() returns plain structs that the
//      RunReport serializes to JSON/CSV (see obs/report.hpp).
//
// Naming convention: dotted lowercase paths, unit as a suffix where one
// applies — e.g. "runtime.engine_cache.hits", "runtime.sched.block_cells",
// "runtime.pipeline.queue_depth_max". docs/observability.md lists them all.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace valign::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written (or maximum) signed level: queue depths, live engine counts.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raise to `v` if larger (CAS loop; used for high-water marks).
  void record_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one implicit
/// overflow bucket counts the rest. Bounds are set at registration and
/// immutable afterwards.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t sample) noexcept {
    // Linear scan: bucket lists are short (<= 16) and the loop is branch-
    // predictable; a binary search would cost more in practice.
    std::size_t b = 0;
    while (b < bounds_.size() && sample > bounds_[b]) ++b;
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// counts()[i] pairs with bounds()[i]; the final entry is the overflow
  /// bucket.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t total_count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> sum_{0};
};

/// Estimates the q-quantile (q in [0, 1]) of a fixed-bucket histogram by
/// linear interpolation inside the bucket holding the target rank: bucket i
/// spans (bounds[i-1], bounds[i]] (the first bucket starts at 0) and samples
/// are assumed uniform within it. Ranks landing in the unbounded overflow
/// bucket return the last finite bound — a deliberate *underestimate* that
/// says "at least this much" rather than inventing a tail shape. Returns 0
/// for an empty histogram. `counts` must have bounds.size() + 1 entries
/// (the registry snapshot layout).
[[nodiscard]] double histogram_quantile(std::span<const std::uint64_t> bounds,
                                        std::span<const std::uint64_t> counts,
                                        double q) noexcept;

/// One exported metric, ready for serialization.
struct MetricSample {
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  std::int64_t value = 0;  ///< Counter/Gauge value; Histogram total count.
  /// Histogram payload (empty otherwise). bucket_counts has one more entry
  /// than bucket_bounds (the overflow bucket).
  std::vector<std::uint64_t> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t sum = 0;  ///< Histogram sample sum.
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< Sorted by name.
};

/// Name-keyed registry. get-or-create semantics: the first caller fixes the
/// kind (and bounds, for histograms); a kind mismatch on a later call throws.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::span<const std::uint64_t> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zeroes every metric value (registrations and bounds are kept).
  void reset_values();
  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry used by the runtime and the drivers.
  [[nodiscard]] static Registry& global();

 private:
  struct Slot {
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace valign::obs
