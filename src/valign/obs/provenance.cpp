#include "valign/obs/provenance.hpp"

#include <ctime>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace valign::obs {

const std::string& hostname() {
  static const std::string name = [] {
#if defined(__unix__) || defined(__APPLE__)
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
      return std::string(buf);
    }
#endif
    return std::string("unknown");
  }();
  return name;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

const std::string& cpu_model() {
  static const std::string model = [] {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
      if (line.compare(0, 10, "model name") != 0) continue;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      if (start < line.size()) return line.substr(start);
    }
    return std::string("unknown");
  }();
  return model;
}

const char* git_describe() {
#if defined(VALIGN_GIT_DESCRIBE)
  return VALIGN_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

const char* compiler_id() {
#if defined(__clang__)
  return "clang " __VERSION__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace valign::obs
