// Run provenance: the "where did this number come from" fields every
// artifact (run report, bench report) carries so two JSON files can be
// compared knowing host, CPU, ISA, build and time. All accessors are cheap
// (cached after first use) and never throw — unknown values come back as
// "unknown" rather than failing a report write.
#pragma once

#include <string>

namespace valign::obs {

/// This machine's hostname ("unknown" when it cannot be read).
[[nodiscard]] const std::string& hostname();

/// Current UTC time, ISO 8601 with a Z suffix (e.g. "2026-08-07T12:34:56Z").
[[nodiscard]] std::string utc_timestamp();

/// CPU model string from /proc/cpuinfo ("unknown" off Linux).
[[nodiscard]] const std::string& cpu_model();

/// `git describe --always --dirty` captured at CMake configure time
/// (VALIGN_GIT_DESCRIBE); "unknown" when the build was not configured inside
/// a git checkout. Note: configure-time, so stale until the next CMake run.
[[nodiscard]] const char* git_describe();

/// Compiler identification (__VERSION__, prefixed with the compiler family).
[[nodiscard]] const char* compiler_id();

}  // namespace valign::obs
