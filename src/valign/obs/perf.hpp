// Hardware counter profiling via perf_event_open: cycles, instructions,
// branch misses and cache misses attributed to pipeline stages and whole
// runs, so wall-clock exhibits can be explained from instruction-level
// behavior (the argument Farrar 2007 and Rognes 2011 make for their
// speedups) instead of guessed at.
//
// Design rules:
//   - Per-thread counting. Each thread opens one *grouped* event set (all
//     counters scheduled together, one read() for a consistent snapshot)
//     lazily on first use; group file descriptors live in a thread_local and
//     close at thread exit. Only user-space work of this process is counted
//     (exclude_kernel/exclude_hv), which keeps the module usable at
//     perf_event_paranoid <= 2.
//   - Graceful degradation. perf_event_open is unavailable in many
//     containers, on non-Linux hosts, or under restrictive
//     perf_event_paranoid. The one-time probe records *why* it failed;
//     every PerfScope then degrades to a no-op and reports/benches emit a
//     clearly marked `"hw": {"available": false, ...}` stanza rather than
//     crashing or silently omitting the section. Tier-1 tests never depend
//     on counters being real.
//   - Off by default. Counting is gated on set_perf_enabled() (the CLI's
//     --perf-counters); a disabled PerfScope costs one relaxed atomic load,
//     preserving the tracing-off overhead budget (<= 2 % on bench_runtime).
//
// Attachment points: obs::StageSpan owns a PerfScope (per-stage counters,
// summed across every thread that executed spans of that stage) and the
// drivers wrap whole runs in PerfScope(kHwRunSlot). Benches read raw
// per-thread counters through read_thread_counters().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace valign::obs {

/// One set of hardware counter readings (cumulative or deltas). When the PMU
/// multiplexed the group (ns_running < ns_enabled), counter values are
/// already scaled by enabled/running at read time, the standard estimate.
struct HwCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t l1d_misses = 0;   ///< L1D read misses.
  std::uint64_t llc_misses = 0;   ///< Last-level cache misses.
  std::uint64_t ns_enabled = 0;   ///< Time the group was enabled.
  std::uint64_t ns_running = 0;   ///< Time it was actually on the PMU.

  /// Instructions per cycle; 0 when no cycles were counted.
  [[nodiscard]] double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  [[nodiscard]] bool any() const noexcept {
    return (cycles | instructions | branch_misses | l1d_misses | llc_misses) != 0;
  }
  HwCounts& operator+=(const HwCounts& o) noexcept;
  [[nodiscard]] HwCounts operator-(const HwCounts& o) const noexcept;
};

/// Result of the one-time availability probe (first open attempt).
struct PerfProbe {
  bool available = false;
  std::string reason;  ///< Why not, e.g. "permission denied (...)"; empty when available.
};

/// Probes perf_event_open once per process and caches the outcome.
[[nodiscard]] const PerfProbe& perf_probe();
[[nodiscard]] inline bool perf_available() { return perf_probe().available; }

/// Global switch for implicit counter attachment (StageSpan / run scopes).
/// Off by default; the CLI's --perf-counters turns it on. Enabling on a host
/// without perf support is harmless — scopes stay no-ops.
[[nodiscard]] bool perf_enabled() noexcept;
void set_perf_enabled(bool on) noexcept;

/// Reads this thread's cumulative counters, opening the thread's event group
/// on first use. Works whenever the probe succeeded, independent of
/// perf_enabled() (benches read explicitly without turning on the implicit
/// attachment). Returns false when unavailable or the read failed.
[[nodiscard]] bool read_thread_counters(HwCounts& out) noexcept;

/// Aggregation slots: slots [0, kHwRunSlot) mirror obs::Stage in order
/// (trace.hpp static_asserts the correspondence); kHwRunSlot accumulates
/// whole-run scopes opened by the drivers.
inline constexpr int kHwRunSlot = 5;
inline constexpr int kHwSlotCount = 6;

/// Fixed table of per-slot counter sums. Thread-safe (relaxed atomics), same
/// shape as StageTable.
class HwTable {
 public:
  void record(int slot, const HwCounts& delta) noexcept;
  [[nodiscard]] HwCounts stats(int slot) const noexcept;
  [[nodiscard]] std::array<HwCounts, kHwSlotCount> snapshot() const noexcept;
  void reset() noexcept;

  /// The process-wide table read by RunReport::capture_environment.
  [[nodiscard]] static HwTable& global();

 private:
  struct Slot {
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> instructions{0};
    std::atomic<std::uint64_t> branch_misses{0};
    std::atomic<std::uint64_t> l1d_misses{0};
    std::atomic<std::uint64_t> llc_misses{0};
    std::atomic<std::uint64_t> ns_enabled{0};
    std::atomic<std::uint64_t> ns_running{0};
  };
  std::array<Slot, kHwSlotCount> slots_{};
};

/// RAII counter attachment: reads this thread's group at construction and at
/// stop()/destruction and adds the delta to a HwTable slot. No-op (one
/// relaxed load) unless perf_enabled() and the probe succeeded.
class PerfScope {
 public:
  explicit PerfScope(int slot, HwTable& table = HwTable::global()) noexcept;
  ~PerfScope() { stop(); }

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  /// Ends the scope early (idempotent).
  void stop() noexcept;
  /// True when counters are actually being collected.
  [[nodiscard]] bool active() const noexcept { return table_ != nullptr; }

 private:
  HwCounts start_{};
  HwTable* table_ = nullptr;
  int slot_ = 0;
};

}  // namespace valign::obs
