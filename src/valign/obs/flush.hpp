// Crash-safe artifact writes and live metrics snapshots.
//
// atomic_write_file() is the one way any obs artifact reaches disk: the
// content is written to a temp file next to the target and renamed into
// place, so a reader (or a kill -9) never observes a truncated JSON/CSV
// document — only the previous complete version or the new one.
//
// MetricsFlusher turns the exit-only RunReport into live state: a background
// thread re-captures the global registry / stage table / HW counters every
// interval and atomically rewrites the report file (the CLI's
// --metrics-interval-ms). Long-running processes can then be observed by
// just reading the file; the final exit-time report overwrites the last
// snapshot through the same helper.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "valign/obs/report.hpp"

namespace valign::obs {

/// Writes `body(out)` to `path` atomically: temp file in the same directory
/// (`path` + ".tmp"), flushed, then renamed over `path`. Throws
/// valign::Error when the file cannot be opened, the stream fails, or the
/// rename fails (the temp file is removed on failure).
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& body);

/// Periodic snapshot writer. Copies `proto` (the run's static config /
/// workload fields), stamps it as a live snapshot, captures the current
/// global environment and atomically writes it to `path` every
/// `interval_ms` — plus once at stop(), so even runs shorter than one
/// interval leave a snapshot behind. Each flush bumps the
/// `runtime.metrics.flushes` counter and records a Flush trace instant.
class MetricsFlusher {
 public:
  MetricsFlusher(std::string path, std::uint64_t interval_ms, RunReport proto);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Stops the background thread after one final flush (idempotent).
  /// Flush errors are swallowed here — an unwritable snapshot must not
  /// abort the run it observes.
  void stop() noexcept;

  /// Completed flushes so far.
  [[nodiscard]] std::uint64_t flushes() const noexcept {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void flush_once();

  std::string path_;
  std::uint64_t interval_ms_;
  RunReport proto_;
  std::atomic<std::uint64_t> flushes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  ///< Guarded by mu_.
  std::thread thread_;
};

}  // namespace valign::obs
