// RunReport: the self-describing artifact every search/detect/bench run can
// emit (CLI --metrics-out). One flat struct of plain fields so producers fill
// exactly what they know; write_json()/write_csv() serialize all of it, with
// the schema documented in docs/observability.md.
//
// Schema id "valign.run_report/1": consumers should tolerate added keys
// within the same major version.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "valign/common.hpp"
#include "valign/instrument/counters.hpp"
#include "valign/obs/perf.hpp"
#include "valign/obs/trace.hpp"

namespace valign::obs {

/// Index into RunReport::width_counts for an element width in bits.
[[nodiscard]] constexpr int width_index(int bits) noexcept {
  return bits <= 8 ? 0 : (bits <= 16 ? 1 : 2);
}

inline constexpr std::array<int, 3> kWidthBits{8, 16, 32};

struct RunReport {
  // --- identity -----------------------------------------------------------
  std::string schema = "valign.run_report/1";
  std::string tool = "valign";
  std::string version;  ///< valign::version().
  std::string command;  ///< "search", "detect", "bench_runtime", ...

  // --- provenance (additive within run_report/1) ---------------------------
  std::string hostname;       ///< obs::hostname().
  std::string timestamp_utc;  ///< ISO 8601 Z, capture time.
  std::string cpu_isa_level;  ///< Detected best ISA on this host (simd::best_isa).
  std::string git_describe;   ///< Baked in at CMake configure time.

  // --- engine configuration ----------------------------------------------
  std::string align_class;  ///< "NW" | "SG" | "SW".
  std::string approach;     ///< Requested approach (may be "auto").
  std::string isa;          ///< Resolved ISA.
  std::string matrix;
  int gap_open = 0;
  int gap_extend = 0;
  int threads = 1;
  std::string sched;        ///< Pair-sched policy ("query" | "pair" | "auto").
  std::string engine;       ///< Engine family ("intra" | "inter" | "auto").
  std::string prefilter_mode = "off";  ///< Prescreen policy ("off"|"auto"|"force").
  bool streamed = false;
  bool cache_engines = true;

  // --- live snapshots (obs/flush.hpp, additive within run_report/1) --------
  /// True when this document is a periodic MetricsFlusher snapshot of a run
  /// still in progress rather than the exit-time report.
  bool live_snapshot = false;
  std::uint64_t snapshot_seq = 0;  ///< Flush ordinal within the run (0 = exit report).

  // --- workload ------------------------------------------------------------
  std::uint64_t queries = 0;
  std::uint64_t subjects = 0;
  std::uint64_t alignments = 0;
  std::uint64_t cells_real = 0;  ///< Unpadded DP cells (sum qlen*dlen).

  // --- performance ---------------------------------------------------------
  double seconds = 0.0;
  double gcups_real = 0.0;
  double gcups_padded = 0.0;

  /// Alignments answered at each element width (8/16/32 bits; see
  /// width_index). Documents the ladder: widths "tried" are those nonzero.
  std::array<std::uint64_t, 3> width_counts{};

  /// Engine work totals, including the lazy-F / prefix fix-up pass and hscan
  /// step histograms fed from the convergence loops and the per-approach
  /// census (totals.approach_counts → the JSON engine.approaches object).
  AlignStats totals{};

  // --- engine cache --------------------------------------------------------
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_builds = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_profile_sets = 0;

  // --- shared query-profile cache (core/profile_cache, docs/kernels.md) ----
  std::uint64_t profile_cache_lookups = 0;
  std::uint64_t profile_cache_hits = 0;
  std::uint64_t profile_cache_builds = 0;
  std::uint64_t profile_cache_evictions = 0;
  std::uint64_t profile_cache_fast_builds = 0;  ///< Small-alphabet fused builds.

  // --- degraded mode (docs/robustness.md) ----------------------------------
  bool lenient = false;               ///< Lenient parsing was requested.
  std::uint64_t max_errors = 0;       ///< Worker error budget in effect.
  std::uint64_t quarantined = 0;      ///< Records skipped by lenient parsing.
  std::uint64_t quarantined_malformed = 0;
  std::uint64_t quarantined_oversized = 0;
  std::uint64_t quarantined_truncated = 0;
  std::uint64_t worker_errors = 0;    ///< Shards/blocks whose results were lost.
  std::uint64_t shard_retries = 0;    ///< Transient failures that were retried.
  std::uint64_t records_dropped = 0;  ///< Alignment results lost to failures.

  // --- two-stage prescreen (docs/prefilter.md) -----------------------------
  bool prefilter_enabled = false;              ///< Prescreen ran for this run.
  std::uint64_t prefilter_screened = 0;        ///< Pairs submitted to the screen.
  std::uint64_t prefilter_escaped = 0;         ///< Pairs eliminated without full DP.
  std::uint64_t prefilter_escalated = 0;       ///< Pairs that went through full DP.
  std::uint64_t prefilter_saturated = 0;       ///< Screens that hit the i8 rail.
  std::uint64_t prefilter_screen_failures = 0; ///< Screen blocks degraded to full DP.
  std::uint64_t prefilter_chunks = 0;          ///< Escalation work blocks executed.
  std::uint64_t prefilter_screen_cells = 0;    ///< DP cells spent screening.
  double prefilter_selectivity = 0.0;          ///< escalated / screened, in [0, 1].

  /// Op-category census (instrument/). All-zero unless the run used
  /// instrumented engines (CountingVec); included so instrumented benches
  /// emit the same artifact.
  std::array<std::uint64_t, instrument::kOpCategoryCount> op_counts{};

  /// Per-stage time budget (parse/schedule/align/reduce/report).
  std::array<StageStats, kStageCount> stages{};

  /// Everything registered in the metrics registry at capture time.
  MetricsSnapshot metrics;

  // --- hardware counters (obs/perf) ---------------------------------------
  /// True when counters were requested (--perf-counters) AND the
  /// perf_event_open probe succeeded. When false, hw_reason says why and the
  /// hw section is still emitted — clearly marked unavailable, never absent.
  bool hw_available = false;
  std::string hw_reason;
  HwCounts hw_run{};  ///< Whole-run scope (the driver's calling thread).
  /// Per-stage counters, summed over every thread that executed spans of
  /// that stage (indexed like `stages`).
  std::array<HwCounts, kStageCount> hw_stages{};

  // --- capture helpers -----------------------------------------------------
  /// Copies the global stage table, the global registry snapshot, the global
  /// HW counter table, this thread's op counters, provenance and the library
  /// version into the report.
  void capture_environment();

  // --- serialization -------------------------------------------------------
  void write_json(std::ostream& out) const;
  /// Flat key,value rows (histograms expand to one row per bucket).
  void write_csv(std::ostream& out) const;
  /// Writes CSV when `path` ends in ".csv", JSON otherwise. Throws
  /// valign::Error when the file cannot be opened.
  void write_file(const std::string& path) const;
  [[nodiscard]] std::string json() const;
};

}  // namespace valign::obs
