// Dependency-free JSON utilities shared by every obs artifact that both
// writes and reads JSON (bench reports, trace timelines, metrics snapshots).
//
// The reader is a minimal strict recursive-descent parser: objects, arrays,
// strings, numbers, bools, null — enough for our own schemas, and strict on
// structure so malformed artifacts fail loudly instead of being half-read.
// The writer side is just the two escaping helpers every emitter needs;
// serialization itself stays hand-rolled per schema for deterministic key
// order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace valign::obs::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(const std::string& key) const;
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& fallback = "") const;
  [[nodiscard]] double num_or(const std::string& key, double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t u64_or(const std::string& key,
                                     std::uint64_t fallback = 0) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback = false) const;
};

/// Parses one complete JSON document (trailing garbage is an error). Throws
/// valign::Error with `what` as the message prefix on malformed input.
[[nodiscard]] Value parse(const std::string& text,
                          const std::string& what = "JSON");

/// Emits `s` as a quoted JSON string, escaping quotes/backslashes/control
/// characters.
void write_string(std::ostream& out, const std::string& s);

/// Emits a double with enough digits to round-trip (%.17g). Non-finite
/// values are emitted as 0 — JSON has no inf/nan.
void write_double(std::ostream& out, double v);

}  // namespace valign::obs::json
