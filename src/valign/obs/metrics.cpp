#include "valign/obs/metrics.hpp"

#include "valign/common.hpp"

namespace valign::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw Error("Histogram: bucket bounds must be strictly increasing");
    }
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::total_count() const noexcept {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    t += counts_[i].load(std::memory_order_relaxed);
  }
  return t;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

double histogram_quantile(std::span<const std::uint64_t> bounds,
                          std::span<const std::uint64_t> counts,
                          double q) noexcept {
  if (counts.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank in (0, total]; rank r means "the r-th smallest sample".
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c == 0.0) continue;
    if (cum + c >= rank) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      if (i >= bounds.size()) return lo;  // overflow bucket: saturate at lo
      const double hi = static_cast<double>(bounds[i]);
      const double frac = rank <= cum ? 0.0 : (rank - cum) / c;
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  // All mass below rank (floating-point edge): report the largest estimate.
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = slots_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::Counter;
    it->second.counter = std::make_unique<Counter>();
  } else if (it->second.kind != MetricSample::Kind::Counter) {
    throw Error("Registry: '" + name + "' already registered with another kind");
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = slots_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::Gauge;
    it->second.gauge = std::make_unique<Gauge>();
  } else if (it->second.kind != MetricSample::Kind::Gauge) {
    throw Error("Registry: '" + name + "' already registered with another kind");
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::span<const std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = slots_.try_emplace(name);
  if (inserted) {
    it->second.kind = MetricSample::Kind::Histogram;
    it->second.histogram = std::make_unique<Histogram>(
        std::vector<std::uint64_t>(bounds.begin(), bounds.end()));
  } else if (it->second.kind != MetricSample::Kind::Histogram) {
    throw Error("Registry: '" + name + "' already registered with another kind");
  }
  return *it->second.histogram;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {  // std::map: already name-sorted
    MetricSample s;
    s.name = name;
    s.kind = slot.kind;
    switch (slot.kind) {
      case MetricSample::Kind::Counter:
        s.value = static_cast<std::int64_t>(slot.counter->value());
        break;
      case MetricSample::Kind::Gauge:
        s.value = slot.gauge->value();
        break;
      case MetricSample::Kind::Histogram:
        s.bucket_bounds = slot.histogram->bounds();
        s.bucket_counts = slot.histogram->counts();
        s.sum = slot.histogram->sum();
        s.value = static_cast<std::int64_t>(slot.histogram->total_count());
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case MetricSample::Kind::Counter: slot.counter->reset(); break;
      case MetricSample::Kind::Gauge: slot.gauge->reset(); break;
      case MetricSample::Kind::Histogram: slot.histogram->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

}  // namespace valign::obs
