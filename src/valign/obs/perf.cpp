#include "valign/obs/perf.hpp"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace valign::obs {

HwCounts& HwCounts::operator+=(const HwCounts& o) noexcept {
  cycles += o.cycles;
  instructions += o.instructions;
  branch_misses += o.branch_misses;
  l1d_misses += o.l1d_misses;
  llc_misses += o.llc_misses;
  ns_enabled += o.ns_enabled;
  ns_running += o.ns_running;
  return *this;
}

HwCounts HwCounts::operator-(const HwCounts& o) const noexcept {
  // Saturating: counter wraps/multiplex scaling jitter must not produce huge
  // unsigned deltas.
  const auto sub = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : 0;
  };
  HwCounts d;
  d.cycles = sub(cycles, o.cycles);
  d.instructions = sub(instructions, o.instructions);
  d.branch_misses = sub(branch_misses, o.branch_misses);
  d.l1d_misses = sub(l1d_misses, o.l1d_misses);
  d.llc_misses = sub(llc_misses, o.llc_misses);
  d.ns_enabled = sub(ns_enabled, o.ns_enabled);
  d.ns_running = sub(ns_running, o.ns_running);
  return d;
}

namespace {

std::atomic<bool> g_perf_enabled{false};

}  // namespace

bool perf_enabled() noexcept {
  return g_perf_enabled.load(std::memory_order_relaxed);
}

void set_perf_enabled(bool on) noexcept {
  g_perf_enabled.store(on, std::memory_order_relaxed);
}

void HwTable::record(int slot, const HwCounts& d) noexcept {
  if (slot < 0 || slot >= kHwSlotCount) return;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.cycles.fetch_add(d.cycles, std::memory_order_relaxed);
  s.instructions.fetch_add(d.instructions, std::memory_order_relaxed);
  s.branch_misses.fetch_add(d.branch_misses, std::memory_order_relaxed);
  s.l1d_misses.fetch_add(d.l1d_misses, std::memory_order_relaxed);
  s.llc_misses.fetch_add(d.llc_misses, std::memory_order_relaxed);
  s.ns_enabled.fetch_add(d.ns_enabled, std::memory_order_relaxed);
  s.ns_running.fetch_add(d.ns_running, std::memory_order_relaxed);
}

HwCounts HwTable::stats(int slot) const noexcept {
  HwCounts out;
  if (slot < 0 || slot >= kHwSlotCount) return out;
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  out.cycles = s.cycles.load(std::memory_order_relaxed);
  out.instructions = s.instructions.load(std::memory_order_relaxed);
  out.branch_misses = s.branch_misses.load(std::memory_order_relaxed);
  out.l1d_misses = s.l1d_misses.load(std::memory_order_relaxed);
  out.llc_misses = s.llc_misses.load(std::memory_order_relaxed);
  out.ns_enabled = s.ns_enabled.load(std::memory_order_relaxed);
  out.ns_running = s.ns_running.load(std::memory_order_relaxed);
  return out;
}

std::array<HwCounts, kHwSlotCount> HwTable::snapshot() const noexcept {
  std::array<HwCounts, kHwSlotCount> out{};
  for (int s = 0; s < kHwSlotCount; ++s) out[static_cast<std::size_t>(s)] = stats(s);
  return out;
}

void HwTable::reset() noexcept {
  for (Slot& s : slots_) {
    s.cycles.store(0, std::memory_order_relaxed);
    s.instructions.store(0, std::memory_order_relaxed);
    s.branch_misses.store(0, std::memory_order_relaxed);
    s.l1d_misses.store(0, std::memory_order_relaxed);
    s.llc_misses.store(0, std::memory_order_relaxed);
    s.ns_enabled.store(0, std::memory_order_relaxed);
    s.ns_running.store(0, std::memory_order_relaxed);
  }
}

HwTable& HwTable::global() {
  static HwTable t;
  return t;
}

#if defined(__linux__)

namespace {

/// The grouped events, in open order (= read order under PERF_FORMAT_GROUP).
/// The leader (cycles) must open for the group to exist; siblings that the
/// PMU rejects (e.g. LLC misses on some VMs) are skipped and read as zero.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
  std::uint64_t HwCounts::* field;
};

constexpr EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, &HwCounts::cycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, &HwCounts::instructions},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, &HwCounts::branch_misses},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
     &HwCounts::l1d_misses},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, &HwCounts::llc_misses},
};
constexpr int kMaxEvents = static_cast<int>(std::size(kEvents));

int sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                        unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

perf_event_attr make_attr(const EventSpec& ev, bool leader) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = ev.type;
  attr.config = ev.config;
  // Only user-space work of this thread: keeps the module usable at
  // perf_event_paranoid <= 2 and attributes counts to our code, not the
  // kernel's page-cache work.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // The whole group starts disabled and is enabled once, via the leader.
  attr.disabled = leader ? 1 : 0;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

/// One thread's counter group. Opened lazily, closed at thread exit.
class ThreadGroup {
 public:
  ThreadGroup() {
    int opened = 0;
    for (int i = 0; i < kMaxEvents; ++i) {
      perf_event_attr attr = make_attr(kEvents[i], /*leader=*/i == 0);
      const int fd = sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                         /*group_fd=*/i == 0 ? -1 : fds_[0],
                                         /*flags=*/0);
      fds_[i] = fd;
      if (fd >= 0) {
        ++opened;
      } else if (i == 0) {
        errno_ = errno;
        return;  // no leader, no group
      }
    }
    if (ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      errno_ = errno;
      close_all();
      return;
    }
    ok_ = opened > 0;
  }

  ~ThreadGroup() { close_all(); }

  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] int open_errno() const noexcept { return errno_; }

  [[nodiscard]] bool read_counts(HwCounts& out) const noexcept {
    if (!ok_) return false;
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
    std::uint64_t buf[3 + kMaxEvents];
    const ssize_t n = ::read(fds_[0], buf, sizeof(buf));
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return false;
    const std::uint64_t nr = buf[0];
    const std::uint64_t enabled = buf[1];
    const std::uint64_t running = buf[2];
    // Multiplex scaling: when the PMU time-sliced the group, extrapolate by
    // enabled/running (the kernel-documented estimate).
    const double scale =
        (running > 0 && running < enabled)
            ? static_cast<double>(enabled) / static_cast<double>(running)
            : 1.0;
    out = HwCounts{};
    out.ns_enabled = enabled;
    out.ns_running = running;
    std::uint64_t vi = 0;  // index into the packed value[] array
    for (int i = 0; i < kMaxEvents && vi < nr; ++i) {
      if (fds_[i] < 0) continue;  // rejected sibling: not in the read buffer
      const auto raw = static_cast<double>(buf[3 + vi]);
      out.*(kEvents[i].field) = static_cast<std::uint64_t>(raw * scale);
      ++vi;
    }
    return true;
  }

 private:
  void close_all() noexcept {
    for (int& fd : fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    ok_ = false;
  }

  int fds_[kMaxEvents] = {-1, -1, -1, -1, -1};
  bool ok_ = false;
  int errno_ = 0;
};

/// This thread's group, opened on first use. Returns nullptr when the open
/// failed (the probe then carries the reason).
const ThreadGroup* thread_group() noexcept {
  thread_local ThreadGroup group;
  return group.ok() ? &group : nullptr;
}

std::string describe_open_errno(int err) {
  switch (err) {
    case EACCES:
    case EPERM:
      return "permission denied (raise /proc/sys/kernel/perf_event_paranoid or "
             "grant CAP_PERFMON)";
    case ENOSYS:
      return "perf_event_open not supported by this kernel";
    case ENOENT:
    case EOPNOTSUPP:
      return "hardware counters not supported on this machine (no PMU; VM?)";
    default:
      return std::string("perf_event_open failed: ") + std::strerror(err);
  }
}

}  // namespace

const PerfProbe& perf_probe() {
  static const PerfProbe probe = [] {
    PerfProbe p;
    // Probe with a throwaway group on this thread; the real groups are
    // per-thread and open lazily. A group that opens but cannot be read
    // (seccomp allowing the syscall but a broken PMU) also counts as
    // unavailable.
    ThreadGroup g;
    if (!g.ok()) {
      p.available = false;
      p.reason = describe_open_errno(g.open_errno());
      return p;
    }
    HwCounts c;
    if (!g.read_counts(c)) {
      p.available = false;
      p.reason = "perf event group opened but could not be read";
      return p;
    }
    p.available = true;
    return p;
  }();
  return probe;
}

bool read_thread_counters(HwCounts& out) noexcept {
  if (!perf_available()) return false;
  const ThreadGroup* g = thread_group();
  return g != nullptr && g->read_counts(out);
}

PerfScope::PerfScope(int slot, HwTable& table) noexcept {
  if (!perf_enabled()) return;
  if (!read_thread_counters(start_)) return;
  table_ = &table;
  slot_ = slot;
}

void PerfScope::stop() noexcept {
  if (table_ == nullptr) return;
  HwCounts end;
  if (read_thread_counters(end)) table_->record(slot_, end - start_);
  table_ = nullptr;
}

#else  // !defined(__linux__)

// Non-Linux stub: the probe reports why, every scope is a no-op.

const PerfProbe& perf_probe() {
  static const PerfProbe probe{false,
                               "perf_event_open requires Linux (hardware "
                               "counters unavailable on this platform)"};
  return probe;
}

bool read_thread_counters(HwCounts&) noexcept { return false; }

PerfScope::PerfScope(int, HwTable&) noexcept {}

void PerfScope::stop() noexcept { table_ = nullptr; }

#endif

}  // namespace valign::obs
