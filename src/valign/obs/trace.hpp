// Lightweight stage tracing: RAII spans timed with the steady clock,
// aggregated into a fixed per-stage time budget.
//
// Two tiers:
//   - StageSpan: coarse pipeline stages (parse -> schedule -> align ->
//     reduce -> report). A handful per run, so these are always on; the cost
//     is two steady_clock reads plus three relaxed atomic adds per span.
//   - TraceSpan: fine-grained work-unit spans (one per schedule block).
//     Gated on trace_enabled() (the CLI's --trace); when off the constructor
//     is a single relaxed load and no clock is read.
//
// Stages may overlap in wall time (the streaming pipeline parses while
// workers align), so per-stage totals are CPU-side budgets, not a partition
// of the run's wall clock.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "valign/obs/metrics.hpp"
#include "valign/obs/perf.hpp"
#include "valign/obs/query_trace.hpp"

namespace valign::obs {

/// Pipeline stages recognized by the run report.
enum class Stage : std::uint8_t {
  Parse,     ///< FASTA reading / sequence encoding.
  Schedule,  ///< Work partitioning (runtime::make_*_schedule).
  Align,     ///< Engine execution, including profile builds.
  Reduce,    ///< Hit merging, top-k selection, clustering.
  Report,    ///< Output formatting and metrics export.
  kCount_,
};

inline constexpr int kStageCount = static_cast<int>(Stage::kCount_);

// HwTable slots [0, kHwRunSlot) mirror the Stage enum one-to-one; StageSpan
// relies on the cast below staying valid.
static_assert(kStageCount == kHwRunSlot,
              "obs::Stage and the HwTable stage slots must stay in sync");

[[nodiscard]] const char* to_string(Stage s);

/// Aggregated timings of one stage.
struct StageStats {
  std::uint64_t spans = 0;   ///< Completed spans.
  std::uint64_t ns_total = 0;
  std::uint64_t ns_max = 0;  ///< Longest single span.

  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(ns_total) / 1e9;
  }
};

/// Fixed table of per-stage aggregates. Thread-safe (relaxed atomics).
class StageTable {
 public:
  void record(Stage s, std::uint64_t ns) noexcept {
    auto& slot = slots_[static_cast<std::size_t>(s)];
    slot.spans.fetch_add(1, std::memory_order_relaxed);
    slot.ns_total.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = slot.ns_max.load(std::memory_order_relaxed);
    while (ns > cur &&
           !slot.ns_max.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] StageStats stats(Stage s) const noexcept;
  [[nodiscard]] std::array<StageStats, kStageCount> snapshot() const noexcept;
  void reset() noexcept;

  /// The process-wide table used by the drivers (and read by RunReport).
  [[nodiscard]] static StageTable& global();

 private:
  struct Slot {
    std::atomic<std::uint64_t> spans{0};
    std::atomic<std::uint64_t> ns_total{0};
    std::atomic<std::uint64_t> ns_max{0};
  };
  std::array<Slot, kStageCount> slots_{};
};

/// Global switch for fine-grained tracing (TraceSpan). Coarse StageSpans are
/// unaffected. Off by default.
[[nodiscard]] bool trace_enabled() noexcept;
void set_trace_enabled(bool on) noexcept;

/// RAII span for a coarse pipeline stage; always records wall time into a
/// StageTable (the global one by default). When --perf-counters is on
/// (obs::perf_enabled()), the embedded PerfScope additionally attributes this
/// thread's hardware counters to the stage's HwTable slot; when off, that
/// attachment is a single relaxed load.
class StageSpan {
 public:
  explicit StageSpan(Stage s, StageTable& table = StageTable::global()) noexcept
      : table_(&table), stage_(s), perf_(static_cast<int>(s)),
        trace_(TraceEventKind::Stage, TraceContext{}, static_cast<int>(s)),
        t0_(std::chrono::steady_clock::now()) {}
  ~StageSpan() { stop(); }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// Ends the span early (idempotent).
  void stop() noexcept {
    if (table_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    table_->record(stage_, static_cast<std::uint64_t>(ns));
    table_ = nullptr;
    perf_.stop();
    trace_.stop();
  }

 private:
  StageTable* table_;
  Stage stage_;
  PerfScope perf_;
  /// When --trace-timeline is active, the stage also appears as a timeline
  /// slice on this thread's track (one relaxed load otherwise).
  TraceSlice trace_;
  std::chrono::steady_clock::time_point t0_;
};

/// RAII span recording its duration (in microseconds) into a histogram —
/// only when trace_enabled(); otherwise construction and destruction are a
/// relaxed load each.
class TraceSpan {
 public:
  explicit TraceSpan(Histogram& hist) noexcept
      : hist_(trace_enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() {
    if (hist_ == nullptr) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    hist_->record(static_cast<std::uint64_t>(us));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point t0_{};
};

/// Bucket bounds (microseconds) for work-unit latency histograms: ~4x steps
/// from 10us to 40ms.
[[nodiscard]] std::span<const std::uint64_t> block_latency_bounds_us() noexcept;

}  // namespace valign::obs
